package intervaljoin

// One benchmark per table and figure of the paper's evaluation, each
// running the experiment's compared algorithms on a scaled-down instance of
// its workload. Besides ns/op, every benchmark reports the communication
// metrics the paper's results are built on: intermediate key-value pairs
// ("pairs/op"), replicated intervals ("repl/op") and reducer load imbalance
// ("imbalance"). Regenerate everything with:
//
//	go test -bench=. -benchmem
//
// The full experiment tables (all sizes, all rows) come from
// cmd/experiments; these benchmarks pin one representative configuration
// per artefact so regressions are visible in CI.

import (
	"fmt"
	"testing"

	"intervaljoin/internal/core"
	"intervaljoin/internal/dfs"
	"intervaljoin/internal/mr"
	"intervaljoin/internal/obs"
	"intervaljoin/internal/query"
	"intervaljoin/internal/relation"
	"intervaljoin/internal/trace"
	"intervaljoin/internal/workload"
)

// benchRun executes one algorithm repeatedly on the prepared inputs.
func benchRun(b *testing.B, alg core.Algorithm, q *query.Query, rels []*relation.Relation, opts core.Options) {
	b.Helper()
	var lastPairs, lastRepl int64
	var lastImb float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		engine := mr.NewEngine(mr.Config{Store: dfs.NewMem()})
		ctx, err := core.NewContext(engine, q, rels, opts)
		if err != nil {
			b.Fatal(err)
		}
		res, err := alg.Run(ctx)
		if err != nil {
			b.Fatal(err)
		}
		lastPairs = res.Metrics.IntermediatePairs
		lastRepl = res.ReplicatedIntervals
		lastImb = res.Metrics.LoadImbalance()
	}
	b.ReportMetric(float64(lastPairs), "pairs/op")
	b.ReportMetric(float64(lastRepl), "repl/op")
	b.ReportMetric(lastImb, "imbalance")
}

// table1Data builds Q1's synthetic relations at a benchmark-friendly size.
func table1Data(b *testing.B, n int) (*query.Query, []*relation.Relation) {
	b.Helper()
	q := query.MustParse("R1 overlaps R2 and R2 overlaps R3")
	rels := make([]*relation.Relation, 3)
	for i := range rels {
		r, err := workload.Generate(workload.Table1Spec(fmt.Sprintf("R%d", i+1), n, int64(i+1)))
		if err != nil {
			b.Fatal(err)
		}
		rels[i] = r
	}
	return q, rels
}

// BenchmarkTable1 is Table 1: Q1 colocation chain, 2-way Cascade vs
// All-Replicate vs RCCIS on 16 reducers.
func BenchmarkTable1(b *testing.B) {
	q, rels := table1Data(b, 2_000)
	opts := core.Options{Partitions: 16}
	b.Run("cascade", func(b *testing.B) { benchRun(b, core.Cascade{}, q, rels, opts) })
	b.Run("all-rep", func(b *testing.B) { benchRun(b, core.AllRep{}, q, rels, opts) })
	b.Run("rccis", func(b *testing.B) { benchRun(b, core.RCCIS{}, q, rels, opts) })
}

// BenchmarkTable2 is Table 2: the star overlap self-join over simulated P04
// packet trains, Cascade vs RCCIS.
func BenchmarkTable2(b *testing.B) {
	profile, err := trace.ProfileByName("P04")
	if err != nil {
		b.Fatal(err)
	}
	packets, err := trace.Synthesize(profile, 0.01, 1)
	if err != nil {
		b.Fatal(err)
	}
	trains := trace.ReplicateTrains(trace.BuildTrains(packets, trace.DefaultCutoffMs), 3_000, profile.DurationMs, 1)
	q := query.MustParse("T1 overlaps T2 and T2 overlaps T3")
	rels := []*relation.Relation{
		trace.TrainsRelation("T1", trains),
		trace.TrainsRelation("T2", trains),
		trace.TrainsRelation("T3", trains),
	}
	opts := core.Options{Partitions: 16}
	b.Run("cascade", func(b *testing.B) { benchRun(b, core.Cascade{}, q, rels, opts) })
	b.Run("rccis", func(b *testing.B) { benchRun(b, core.RCCIS{}, q, rels, opts) })
}

// BenchmarkFigure4 is Figure 4: the 2-way before join, All-Replicate's
// skewed 1-D reducers vs All-Matrix's balanced grid (watch "imbalance").
func BenchmarkFigure4(b *testing.B) {
	q := query.MustParse("R1 before R2")
	rels := make([]*relation.Relation, 2)
	for i := range rels {
		r, err := workload.Generate(workload.Spec{
			Name: fmt.Sprintf("R%d", i+1), NumIntervals: 400,
			StartDist: workload.Uniform, LengthDist: workload.Uniform,
			TMin: 0, TMax: 10_000, IMin: 1, IMax: 100, Seed: int64(i + 1),
		})
		if err != nil {
			b.Fatal(err)
		}
		rels[i] = r
	}
	b.Run("all-rep", func(b *testing.B) { benchRun(b, core.AllRep{}, q, rels, core.Options{Partitions: 6}) })
	b.Run("all-matrix", func(b *testing.B) { benchRun(b, core.AllMatrix{}, q, rels, core.Options{PartitionsPerDim: 3}) })
}

// figure5Data builds Q2's relations.
func figure5Data(b *testing.B, n int) (*query.Query, []*relation.Relation) {
	b.Helper()
	q := query.MustParse("R1 before R2 and R2 before R3")
	rels := make([]*relation.Relation, 3)
	for i := range rels {
		r, err := workload.Generate(workload.Figure5Spec(fmt.Sprintf("R%d", i+1), n, int64(i+1)))
		if err != nil {
			b.Fatal(err)
		}
		rels[i] = r
	}
	return q, rels
}

// BenchmarkFigure5a is Figure 5(a): Q2 sequence chain on synthetic data,
// All-Matrix (6^3 grid) vs matrix-stepped Cascade (11^2 per step) vs
// All-Replicate (64 reducers).
func BenchmarkFigure5a(b *testing.B) {
	q, rels := figure5Data(b, 100)
	b.Run("all-matrix", func(b *testing.B) { benchRun(b, core.AllMatrix{}, q, rels, core.Options{PartitionsPerDim: 6}) })
	b.Run("cascade-matrix", func(b *testing.B) {
		benchRun(b, core.Cascade{MatrixSteps: true}, q, rels, core.Options{Partitions: 16, PartitionsPerDim: 11})
	})
	b.Run("all-rep", func(b *testing.B) { benchRun(b, core.AllRep{}, q, rels, core.Options{Partitions: 64}) })
}

// BenchmarkFigure5b is Figure 5(b): Q2 over simulated P04 packet trains.
func BenchmarkFigure5b(b *testing.B) {
	profile, err := trace.ProfileByName("P04")
	if err != nil {
		b.Fatal(err)
	}
	packets, err := trace.Synthesize(profile, 0.005, 1)
	if err != nil {
		b.Fatal(err)
	}
	trains := trace.BuildTrains(packets, trace.DefaultCutoffMs)
	if len(trains) > 100 {
		trains = trains[:100]
	}
	q := query.MustParse("R1 before R2 and R2 before R3")
	rels := []*relation.Relation{
		trace.TrainsRelation("R1", trains),
		trace.TrainsRelation("R2", trains),
		trace.TrainsRelation("R3", trains),
	}
	b.Run("all-matrix", func(b *testing.B) { benchRun(b, core.AllMatrix{}, q, rels, core.Options{PartitionsPerDim: 6}) })
	b.Run("cascade-matrix", func(b *testing.B) {
		benchRun(b, core.Cascade{MatrixSteps: true}, q, rels, core.Options{Partitions: 16, PartitionsPerDim: 11})
	})
	b.Run("all-rep", func(b *testing.B) { benchRun(b, core.AllRep{}, q, rels, core.Options{Partitions: 64}) })
}

// table3Data builds Q4's relations with the paper's size ratios and a given
// R3 maximum interval length.
func table3Data(b *testing.B, maxLen int64) (*query.Query, []*relation.Relation) {
	b.Helper()
	q := query.MustParse("R1 before R2 and R1 overlaps R3")
	r1, err := workload.Generate(workload.Table3Spec("R1", 5_000, 1000, 1))
	if err != nil {
		b.Fatal(err)
	}
	r2, err := workload.Generate(workload.Table3Spec("R2", 100, 1000, 2))
	if err != nil {
		b.Fatal(err)
	}
	r3, err := workload.Generate(workload.Table3Spec("R3", 1_000, maxLen, 3))
	if err != nil {
		b.Fatal(err)
	}
	return q, []*relation.Relation{r1, r2, r3}
}

// BenchmarkTable3 is Table 3: the hybrid Q4 at both ends of the pruning
// spectrum — long R3 intervals (little pruning, FCTS drowned by its
// materialised component outputs) and short ones (strong pruning, PASM
// ahead) — FCTS vs All-Seq-Matrix vs PASM.
func BenchmarkTable3(b *testing.B) {
	for _, maxLen := range []int64{1000, 200} {
		q, rels := table3Data(b, maxLen)
		opts := core.Options{PartitionsPerDim: 6}
		b.Run(fmt.Sprintf("maxlen=%d/fcts", maxLen), func(b *testing.B) { benchRun(b, core.FCTS{}, q, rels, opts) })
		b.Run(fmt.Sprintf("maxlen=%d/all-seq-matrix", maxLen), func(b *testing.B) { benchRun(b, core.SeqMatrix{}, q, rels, opts) })
		b.Run(fmt.Sprintf("maxlen=%d/pasm", maxLen), func(b *testing.B) { benchRun(b, core.PASM{}, q, rels, opts) })
	}
}

// BenchmarkTable4 is Table 4: Gen-Matrix on the 4-attribute Q5, 5 partitions
// per dimension (375 of 625 cells consistent).
func BenchmarkTable4(b *testing.B) {
	q := query.MustParse("R1.I before R2.I and R1.I overlaps R3.I and R1.A = R3.A and R2.B = R3.B")
	specs := workload.Table4Specs(1_000, 100, 1_000, 50, 1)
	rels := make([]*relation.Relation, len(specs))
	for i, s := range specs {
		r, err := workload.GenerateMulti(s)
		if err != nil {
			b.Fatal(err)
		}
		rels[i] = r
	}
	opts := core.Options{PartitionsPerDim: 5}
	b.Run("gen-matrix", func(b *testing.B) { benchRun(b, core.GenMatrix{}, q, rels, opts) })
}

// BenchmarkAblationD1D2 measures All-Matrix's routing conditions: dropping
// D1 (consistency filter) or D2 (pin-own-dimension) inflates pairs/op while
// producing the same output.
func BenchmarkAblationD1D2(b *testing.B) {
	q, rels := figure5Data(b, 100)
	opts := core.Options{PartitionsPerDim: 6}
	b.Run("full", func(b *testing.B) { benchRun(b, core.AllMatrix{}, q, rels, opts) })
	b.Run("no-d1", func(b *testing.B) {
		benchRun(b, core.AllMatrix{DisableConsistencyFilter: true}, q, rels, opts)
	})
	b.Run("no-d2", func(b *testing.B) {
		benchRun(b, core.AllMatrix{BroadcastAllCells: true}, q, rels, opts)
	})
}

// BenchmarkAblationPartitions sweeps o, the grid partitions per dimension.
func BenchmarkAblationPartitions(b *testing.B) {
	q, rels := figure5Data(b, 100)
	for _, o := range []int{2, 4, 6, 8, 12} {
		b.Run(fmt.Sprintf("o=%d", o), func(b *testing.B) {
			benchRun(b, core.AllMatrix{}, q, rels, core.Options{PartitionsPerDim: o})
		})
	}
}

// BenchmarkAblationSkew compares uniform-width and equi-depth partitioning
// for RCCIS on zipf-skewed starts (watch the imbalance metric).
func BenchmarkAblationSkew(b *testing.B) {
	q := query.MustParse("R1 overlaps R2 and R2 overlaps R3")
	rels := make([]*relation.Relation, 3)
	for i := range rels {
		r, err := workload.Generate(workload.Spec{
			Name: fmt.Sprintf("R%d", i+1), NumIntervals: 500,
			StartDist: workload.Zipf, LengthDist: workload.Uniform,
			TMin: 0, TMax: 10_000, IMin: 1, IMax: 5, Seed: int64(i + 1),
		})
		if err != nil {
			b.Fatal(err)
		}
		rels[i] = r
	}
	b.Run("uniform", func(b *testing.B) {
		benchRun(b, core.RCCIS{}, q, rels, core.Options{Partitions: 16})
	})
	b.Run("equi-depth", func(b *testing.B) {
		benchRun(b, core.RCCIS{}, q, rels, core.Options{Partitions: 16, EquiDepth: true})
	})
}

// BenchmarkAblationPASMNoPruning is the adversarial Table 3 counterpart: R3
// as dense and long as R1, so PASM's pruning cycle buys nothing.
func BenchmarkAblationPASMNoPruning(b *testing.B) {
	q := query.MustParse("R1 before R2 and R1 overlaps R3")
	r1, err := workload.Generate(workload.Table3Spec("R1", 1_000, 1000, 1))
	if err != nil {
		b.Fatal(err)
	}
	r2, err := workload.Generate(workload.Table3Spec("R2", 100, 1000, 2))
	if err != nil {
		b.Fatal(err)
	}
	r3, err := workload.Generate(workload.Spec{
		Name: "R3", NumIntervals: 2_000,
		StartDist: workload.Uniform, LengthDist: workload.Uniform,
		TMin: 0, TMax: 200_000, IMin: 1000, IMax: 2000, Seed: 3,
	})
	if err != nil {
		b.Fatal(err)
	}
	rels := []*relation.Relation{r1, r2, r3}
	opts := core.Options{PartitionsPerDim: 6}
	b.Run("all-seq-matrix", func(b *testing.B) { benchRun(b, core.SeqMatrix{}, q, rels, opts) })
	b.Run("pasm", func(b *testing.B) { benchRun(b, core.PASM{}, q, rels, opts) })
}

// benchSkewRun is benchRun for the skew scenarios: besides the pair-based
// imbalance it reports the wall-clock reducer imbalance (max/mean reduce
// wall, "time_imbalance") the skew-aware executor is gated on.
func benchSkewRun(b *testing.B, alg core.Algorithm, q *query.Query, rels []*relation.Relation, opts core.Options) {
	b.Helper()
	var lastPairs int64
	var lastImb, lastTimeImb float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		engine := mr.NewEngine(mr.Config{Store: dfs.NewMem()})
		ctx, err := core.NewContext(engine, q, rels, opts)
		if err != nil {
			b.Fatal(err)
		}
		res, err := alg.Run(ctx)
		if err != nil {
			b.Fatal(err)
		}
		lastPairs = res.Metrics.IntermediatePairs
		skew := obs.NewSkewReport(res.Metrics.ReducerPairs, res.Metrics.ReducerTime, 0)
		lastImb = skew.Imbalance
		lastTimeImb = skew.TimeImbalance
	}
	b.ReportMetric(float64(lastPairs), "pairs/op")
	b.ReportMetric(lastImb, "imbalance")
	b.ReportMetric(lastTimeImb, "time_imbalance")
}

// BenchmarkReduceSkewZipf pits uniform execution against the skew-aware
// plan on the Zipf heavy-tail scenario: most starts pile into the first
// partitions, so uniform boundaries produce a straggler reducer that
// adaptive boundaries plus virtual splitting flatten out.
func BenchmarkReduceSkewZipf(b *testing.B) {
	q := query.MustParse("R1 overlaps R2")
	rels := []*relation.Relation{
		workload.MustGenerate(workload.HeavyTailSpec("R1", 4_000, 1)),
		workload.MustGenerate(workload.HeavyTailSpec("R2", 4_000, 2)),
	}
	b.Run("uniform", func(b *testing.B) {
		benchSkewRun(b, core.TwoWay{}, q, rels, core.Options{Partitions: 16})
	})
	b.Run("adaptive", func(b *testing.B) {
		benchSkewRun(b, core.TwoWay{}, q, rels, core.Options{Partitions: 16, Adaptive: true, MaxVirtual: 32})
	})
}

// BenchmarkReduceSkewMAWI replays the P04 packet-train trace (Table 2):
// bursty flow arrivals skew the train starts without any synthetic knob.
func BenchmarkReduceSkewMAWI(b *testing.B) {
	q := query.MustParse("R1 overlaps R2")
	r1, err := workload.MAWIReplay("R1", "P04", 0.05, 4_000, 1)
	if err != nil {
		b.Fatal(err)
	}
	r2, err := workload.MAWIReplay("R2", "P04", 0.05, 4_000, 2)
	if err != nil {
		b.Fatal(err)
	}
	rels := []*relation.Relation{r1, r2}
	b.Run("uniform", func(b *testing.B) {
		benchSkewRun(b, core.TwoWay{}, q, rels, core.Options{Partitions: 16})
	})
	b.Run("adaptive", func(b *testing.B) {
		benchSkewRun(b, core.TwoWay{}, q, rels, core.Options{Partitions: 16, Adaptive: true, MaxVirtual: 32})
	})
}
