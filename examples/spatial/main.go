// Spatial: the paper's cities-and-rivers example (Section 1).
//
// A rectangle is two intervals — its x extent and its y extent — so the
// spatial join "find all cities intersecting a river" becomes a two
// interval-attribute join. Allen's overlaps is directional, so the
// symmetric "rectangles intersect" is the disjunction of several Allen
// relations per axis; this example demonstrates the Gen-Matrix machinery on
// the paper's literal query
//
//	city.x overlaps river.x and city.y overlaps river.y
//
// (city starts first and the river extends past it on both axes) and then
// widens to full symmetric intersection by running the remaining per-axis
// relation combinations and unioning the results.
//
// Run with: go run ./examples/spatial
package main

import (
	"fmt"
	"log"
	"math/rand"

	"intervaljoin"
)

func main() {
	rng := rand.New(rand.NewSource(7))

	// A 10,000 x 10,000 map: compact square-ish cities, long thin rivers.
	cities := intervaljoin.NewRelation(intervaljoin.NewSchema("city", "x", "y"))
	for i := 0; i < 3000; i++ {
		cities.Append(box(rng, 10_000, 100, 400), box(rng, 10_000, 100, 400))
	}
	rivers := intervaljoin.NewRelation(intervaljoin.NewSchema("river", "x", "y"))
	for i := 0; i < 40; i++ {
		rivers.Append(box(rng, 10_000, 2_000, 6_000), box(rng, 10_000, 100, 400))
	}

	eng := intervaljoin.MustNewEngine(intervaljoin.EngineOptions{})
	opts := intervaljoin.RunOptions{PartitionsPerDim: 4}

	// The paper's literal query: one Allen relation per axis.
	q, err := intervaljoin.ParseQuery("city.x overlaps river.x and city.y overlaps river.y")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("query: %s\nplanner: %s (2 interval attributes -> 4-D grid)\n", q, intervaljoin.Plan(q).Name())
	res, err := eng.Run(q, []*intervaljoin.Relation{cities, rivers}, opts)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("strict-overlaps matches: %d pairs (%s)\n\n", len(res.Tuples), res.Metrics)

	// Symmetric intersection = any colocation relation on both axes. Run
	// the per-axis colocation combinations and union the pairs.
	colocs := []string{"overlaps", "overlappedby", "contains", "containedby",
		"meets", "metby", "starts", "startedby", "finishes", "finishedby", "equals"}
	seen := make(map[[2]int64]bool)
	for _, px := range colocs {
		for _, py := range colocs {
			qs := fmt.Sprintf("city.x %s river.x and city.y %s river.y", px, py)
			q, err := intervaljoin.ParseQuery(qs)
			if err != nil {
				log.Fatal(err)
			}
			r, err := eng.Run(q, []*intervaljoin.Relation{cities, rivers}, opts)
			if err != nil {
				log.Fatalf("%s: %v", qs, err)
			}
			for _, t := range r.Tuples {
				seen[[2]int64{t[0], t[1]}] = true
			}
		}
	}
	fmt.Printf("symmetric intersection (all %d x %d Allen colocation combos): %d city-river pairs\n",
		len(colocs), len(colocs), len(seen))

	// Cross-check against direct rectangle intersection.
	want := 0
	for _, c := range cities.Tuples {
		for _, r := range rivers.Tuples {
			if c.Attrs[0].Intersects(r.Attrs[0]) && c.Attrs[1].Intersects(r.Attrs[1]) {
				want++
			}
		}
	}
	if want != len(seen) {
		log.Fatalf("symmetric join found %d pairs, geometry says %d", len(seen), want)
	}
	fmt.Println("verified against direct rectangle intersection ✓")
}

// box returns a random extent within [0, span] with side length in
// [minSide, maxSide].
func box(rng *rand.Rand, span, minSide, maxSide int64) intervaljoin.Interval {
	side := minSide + rng.Int63n(maxSide-minSide+1)
	start := rng.Int63n(span - side)
	return intervaljoin.NewInterval(start, start+side)
}
