// Quickstart: the smallest end-to-end use of the intervaljoin public API.
//
// Three event logs are joined with the colocation chain query
// "R1 overlaps R2 and R2 overlaps R3"; the planner picks RCCIS (the paper's
// algorithm for multi-way colocation joins) and the result is verified
// against the in-memory oracle.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"intervaljoin"
)

func main() {
	eng := intervaljoin.MustNewEngine(intervaljoin.EngineOptions{})

	q, err := intervaljoin.ParseQuery("R1 overlaps R2 and R2 overlaps R3")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("query: %s (class handled by %s)\n", q, intervaljoin.Plan(q).Name())

	r1 := intervaljoin.FromIntervals("R1", []intervaljoin.Interval{
		intervaljoin.NewInterval(0, 10),
		intervaljoin.NewInterval(40, 55),
		intervaljoin.NewInterval(100, 130),
	})
	r2 := intervaljoin.FromIntervals("R2", []intervaljoin.Interval{
		intervaljoin.NewInterval(5, 25),  // overlaps r1[0]
		intervaljoin.NewInterval(50, 70), // overlaps r1[1]
		intervaljoin.NewInterval(300, 310),
	})
	r3 := intervaljoin.FromIntervals("R3", []intervaljoin.Interval{
		intervaljoin.NewInterval(20, 35), // overlaps r2[0]
		intervaljoin.NewInterval(60, 90), // overlaps r2[1]
	})

	res, err := eng.Run(q, []*intervaljoin.Relation{r1, r2, r3}, intervaljoin.RunOptions{Partitions: 4})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("output tuples (ids per relation):\n")
	for _, t := range res.Tuples {
		fmt.Printf("  R1[%d] %v  R2[%d] %v  R3[%d] %v\n",
			t[0], r1.Tuples[t[0]].Key(),
			t[1], r2.Tuples[t[1]].Key(),
			t[2], r3.Tuples[t[2]].Key())
	}
	fmt.Printf("metrics: %s, intervals replicated: %d\n", res.Metrics, res.ReplicatedIntervals)

	// Sanity: the distributed result matches the nested-loop oracle.
	oracle, err := eng.Oracle(q, []*intervaljoin.Relation{r1, r2, r3}, intervaljoin.RunOptions{})
	if err != nil {
		log.Fatal(err)
	}
	if len(oracle.Tuples) != len(res.Tuples) {
		log.Fatalf("oracle disagrees: %d vs %d tuples", len(oracle.Tuples), len(res.Tuples))
	}
	fmt.Println("verified against the oracle ✓")
}
