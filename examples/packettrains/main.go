// Packettrains: the paper's real-data workload (Section 6.2).
//
// A trans-Pacific backbone trace is simulated against the P04 profile from
// Table 2, packet trains are built with the 500 ms inter-arrival cut-off,
// and two of the paper's experiments run on them:
//
//  1. the star overlap self-join (which trains were on the wire together —
//     Table 2's query), solved by RCCIS; and
//  2. the sequence chain T1 before T2 and T2 before T3 (causally ordered
//     train triples — Figure 5(b)'s query), solved by All-Matrix, with the
//     load-balance comparison against All-Replicate that motivates it.
//
// Run with: go run ./examples/packettrains
package main

import (
	"fmt"
	"log"

	"intervaljoin"
	"intervaljoin/mawi"
)

func main() {
	profile, err := mawi.ProfileByName("P04")
	if err != nil {
		log.Fatal(err)
	}
	packets, err := mawi.Synthesize(profile, 0.01, 1)
	if err != nil {
		log.Fatal(err)
	}
	trains := mawi.BuildTrains(packets, mawi.DefaultCutoffMs)
	fmt.Printf("simulated %s (%s): %d packets -> %d packet trains (cut-off %d ms)\n",
		profile.Name, profile.Date, len(packets), len(trains), mawi.DefaultCutoffMs)

	eng := intervaljoin.MustNewEngine(intervaljoin.EngineOptions{})

	// Experiment 1: star overlap self-join. As in the paper, the train set
	// is first replicated to a dense fixed-size dataset; a self-join then
	// registers it under three names.
	dense := mawi.ReplicateTrains(trains, 3000, profile.DurationMs, 1)
	rels := []*intervaljoin.Relation{
		mawi.TrainsRelation("T1", dense),
		mawi.TrainsRelation("T2", dense),
		mawi.TrainsRelation("T3", dense),
	}
	q1, err := intervaljoin.ParseQuery("T1 overlaps T2 and T2 overlaps T3")
	if err != nil {
		log.Fatal(err)
	}
	res1, err := eng.Run(q1, rels, intervaljoin.RunOptions{Partitions: 16})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\noverlap star self-join on %d replicated trains (%s): %d concurrent train triples\n  %s\n  replicated %d of %d intervals\n",
		len(dense), intervaljoin.Plan(q1).Name(), len(res1.Tuples), res1.Metrics, res1.ReplicatedIntervals, 3*len(dense))

	// Experiment 2: sequence chain on a sample (the output is cubic in
	// the sample size).
	sample := trains
	if len(sample) > 120 {
		sample = sample[:120]
	}
	seqRels := []*intervaljoin.Relation{
		mawi.TrainsRelation("T1", sample),
		mawi.TrainsRelation("T2", sample),
		mawi.TrainsRelation("T3", sample),
	}
	q2, err := intervaljoin.ParseQuery("T1 before T2 and T2 before T3")
	if err != nil {
		log.Fatal(err)
	}
	matrix, err := eng.Run(q2, seqRels, intervaljoin.RunOptions{PartitionsPerDim: 6})
	if err != nil {
		log.Fatal(err)
	}
	allrep, err := intervaljoin.AlgorithmByName("all-rep")
	if err != nil {
		log.Fatal(err)
	}
	rep, err := eng.RunWith(allrep, q2, seqRels, intervaljoin.RunOptions{Partitions: 56})
	if err != nil {
		log.Fatal(err)
	}
	if len(rep.Tuples) != len(matrix.Tuples) {
		log.Fatalf("algorithms disagree: %d vs %d", len(rep.Tuples), len(matrix.Tuples))
	}
	fmt.Printf("\nsequence chain on %d sampled trains: %d ordered triples\n", len(sample), len(matrix.Tuples))
	fmt.Printf("  all-matrix load: %s\n", intervaljoin.SummarizeLoad(matrix.Metrics.ReducerLoadVector()))
	fmt.Printf("  all-rep    load: %s\n", intervaljoin.SummarizeLoad(rep.Metrics.ReducerLoadVector()))
	fmt.Println("the grid flattens the straggler All-Replicate piles onto its right-most reducer")
}
