// Pollution: the paper's introductory spatio-temporal scenario.
//
// From environment-monitoring data we have, per site, the time intervals
// during which high wind speed, high temperature and high pollutant
// concentration were observed. The interval join
//
//	temp containedby wind and pollutant containedby wind
//
// finds every triple where both the temperature and the pollutant episodes
// fall entirely within one wind episode — the correlations a predictive
// pollution model would train on. The query is a colocation star, so the
// planner runs RCCIS.
//
// Run with: go run ./examples/pollution
package main

import (
	"fmt"
	"log"
	"math/rand"

	"intervaljoin"
)

func main() {
	rng := rand.New(rand.NewSource(42))

	// A day of measurements in minutes: long windy episodes, shorter
	// temperature and pollution spikes scattered through the day.
	const day = 24 * 60
	wind := intervaljoin.FromIntervals("wind", episodes(rng, 40, day, 60, 180))
	temp := intervaljoin.FromIntervals("temp", episodes(rng, 120, day, 10, 45))
	pollutant := intervaljoin.FromIntervals("pollutant", episodes(rng, 120, day, 10, 45))

	q, err := intervaljoin.ParseQuery("temp containedby wind and pollutant containedby wind")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("query: %s\nplanner: %s\n", q, intervaljoin.Plan(q).Name())

	eng := intervaljoin.MustNewEngine(intervaljoin.EngineOptions{})
	res, err := eng.Run(q, []*intervaljoin.Relation{temp, wind, pollutant},
		intervaljoin.RunOptions{Partitions: 16})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("found %d (temp, wind, pollutant) correlations; first few:\n", len(res.Tuples))
	for i, t := range res.Tuples {
		if i == 5 {
			fmt.Println("  ...")
			break
		}
		// Relation order in the query: temp, wind, pollutant.
		fmt.Printf("  wind %v ⊇ temp %v and pollutant %v\n",
			wind.Tuples[t[1]].Key(), temp.Tuples[t[0]].Key(), pollutant.Tuples[t[2]].Key())
	}
	fmt.Printf("cost: %s\nRCCIS replicated only %d of %d intervals\n",
		res.Metrics, res.ReplicatedIntervals, wind.Len()+temp.Len()+pollutant.Len())
}

// episodes generates n random high-reading episodes within [0, span] with
// durations in [minLen, maxLen].
func episodes(rng *rand.Rand, n int, span, minLen, maxLen int64) []intervaljoin.Interval {
	out := make([]intervaljoin.Interval, n)
	for i := range out {
		length := minLen + rng.Int63n(maxLen-minLen+1)
		start := rng.Int63n(span - length)
		out[i] = intervaljoin.NewInterval(start, start+length)
	}
	return out
}
