// Tuning: the library's decision-support features around the paper's
// algorithms — satisfiability reasoning, the cost-model advisor, and
// equi-depth partitioning for skewed data.
//
//  1. A contradictory query is proven empty by Allen-algebra path
//     consistency before any data is touched.
//  2. The cost model ranks the applicable algorithms for a colocation
//     query from relation statistics and is checked against real runs.
//  3. On zipf-skewed data, quantile (equi-depth) partition boundaries
//     repair the reducer load imbalance that uniform-width partitions
//     suffer, without changing the output.
//
// Run with: go run ./examples/tuning
package main

import (
	"fmt"
	"log"

	"intervaljoin"
	"intervaljoin/gen"
)

func main() {
	// 1. Reasoning: a provably empty query never needs to run.
	contradiction, err := intervaljoin.ParseQuery("A before B and B before C and C before A")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%q provably empty: %v\n\n", contradiction, intervaljoin.ProvablyEmpty(contradiction))

	// 2. The advisor on a Table-1-style workload.
	q, err := intervaljoin.ParseQuery("R1 overlaps R2 and R2 overlaps R3")
	if err != nil {
		log.Fatal(err)
	}
	rels := make([]*intervaljoin.Relation, 3)
	for i := range rels {
		r, err := gen.Generate(gen.Table1Spec(fmt.Sprintf("R%d", i+1), 3000, int64(i+1)))
		if err != nil {
			log.Fatal(err)
		}
		rels[i] = r
	}
	ests, err := intervaljoin.Advise(q, rels, 16, 6)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("cost-model ranking (straggler load first):")
	for _, e := range ests {
		fmt.Printf("  %-14s est_pairs=%-9.0f est_max_load=%-8.0f cycles=%d\n",
			e.Algorithm, e.Pairs, e.MaxReducerLoad, e.Cycles)
	}
	eng := intervaljoin.MustNewEngine(intervaljoin.EngineOptions{})
	best, err := intervaljoin.AlgorithmByName(ests[0].Algorithm)
	if err != nil {
		log.Fatal(err)
	}
	res, err := eng.RunWith(best, q, rels, intervaljoin.RunOptions{Partitions: 16})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("ran %s: %d tuples, %d pairs measured\n\n", ests[0].Algorithm, len(res.Tuples), res.Metrics.IntermediatePairs)

	// 3. Equi-depth partitioning on zipf-skewed starts.
	skewed := make([]*intervaljoin.Relation, 3)
	for i := range skewed {
		r, err := gen.Generate(gen.Spec{
			Name: fmt.Sprintf("R%d", i+1), NumIntervals: 1200,
			StartDist: gen.Zipf, LengthDist: gen.Uniform,
			TMin: 0, TMax: 10_000, IMin: 1, IMax: 10, Seed: int64(i + 1),
		})
		if err != nil {
			log.Fatal(err)
		}
		skewed[i] = r
	}
	for _, equi := range []bool{false, true} {
		opts := intervaljoin.RunOptions{Partitions: 16, EquiDepth: equi}
		r, err := eng.Run(q, skewed, opts)
		if err != nil {
			log.Fatal(err)
		}
		name := "uniform-width"
		if equi {
			name = "equi-depth   "
		}
		fmt.Printf("%s partitions: output=%d %s\n", name, len(r.Tuples),
			intervaljoin.SummarizeLoad(r.Metrics.ReducerLoadVector()))
	}
	fmt.Println("quantile boundaries even out the zipf hot spot without changing the join result")
}
