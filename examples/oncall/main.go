// Oncall: interval joins over real timestamps.
//
// On-call shifts and production incidents are written in the text
// interchange format with RFC 3339 timestamps (parsed to Unix
// milliseconds); the colocation query
//
//	incident containedby shift
//
// attributes every incident to the shift it fell inside, and a second
// sequence query finds incident pairs separated by quiet time on the same
// timeline ("which incidents preceded which").
//
// Run with: go run ./examples/oncall
package main

import (
	"fmt"
	"log"
	"os"
	"path/filepath"
	"time"

	"intervaljoin"
)

const shiftsData = `# on-call shifts (start,end)
2024-03-01T00:00:00Z,2024-03-01T08:00:00Z
2024-03-01T08:00:00Z,2024-03-01T16:00:00Z
2024-03-01T16:00:00Z,2024-03-02T00:00:00Z
`

const incidentsData = `# incidents (detected,resolved)
2024-03-01T02:15:00Z,2024-03-01T03:05:00Z
2024-03-01T09:30:00Z,2024-03-01T09:45:00Z
2024-03-01T10:10:00Z,2024-03-01T12:00:00Z
2024-03-01T21:00:00Z,2024-03-01T21:20:00Z
`

func main() {
	dir, err := os.MkdirTemp("", "oncall")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)
	shiftsPath := filepath.Join(dir, "shifts.txt")
	incidentsPath := filepath.Join(dir, "incidents.txt")
	os.WriteFile(shiftsPath, []byte(shiftsData), 0o644)
	os.WriteFile(incidentsPath, []byte(incidentsData), 0o644)

	q, err := intervaljoin.ParseQuery("incident containedby shift")
	if err != nil {
		log.Fatal(err)
	}
	shifts, err := intervaljoin.LoadRelation(intervaljoin.NewSchema("shift"), shiftsPath)
	if err != nil {
		log.Fatal(err)
	}
	incidents, err := intervaljoin.LoadRelation(intervaljoin.NewSchema("incident"), incidentsPath)
	if err != nil {
		log.Fatal(err)
	}

	eng := intervaljoin.MustNewEngine(intervaljoin.EngineOptions{})
	res, err := eng.Run(q, []*intervaljoin.Relation{incidents, shifts}, intervaljoin.RunOptions{Partitions: 4})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("incident → shift attribution:")
	for _, t := range res.Tuples {
		inc := incidents.Tuples[t[0]].Key()
		sh := shifts.Tuples[t[1]].Key()
		fmt.Printf("  incident %s–%s  →  shift starting %s\n",
			fmtTime(inc.Start), fmtTime(inc.End), fmtTime(sh.Start))
	}

	q2, err := intervaljoin.ParseQuery("first before second")
	if err != nil {
		log.Fatal(err)
	}
	// A self-join: the incident set registered under two names.
	res2, err := eng.Run(q2, []*intervaljoin.Relation{
		renamed(incidents, "first"), renamed(incidents, "second"),
	}, intervaljoin.RunOptions{PartitionsPerDim: 4})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nincident orderings (before, with quiet time between): %d pairs\n", len(res2.Tuples))
	for _, t := range res2.Tuples {
		a := incidents.Tuples[t[0]].Key()
		b := incidents.Tuples[t[1]].Key()
		gap := time.Duration(b.Start-a.End) * time.Millisecond
		fmt.Printf("  %s resolved %s before %s began\n", fmtTime(a.End), gap, fmtTime(b.Start))
	}
}

// renamed shallow-copies a relation under a new schema name so a self-join
// can bind it twice.
func renamed(r *intervaljoin.Relation, name string) *intervaljoin.Relation {
	cp := *r
	cp.Schema.Name = name
	return &cp
}

func fmtTime(ms int64) string {
	return time.UnixMilli(ms).UTC().Format("15:04")
}
