package core

import (
	"slices"
	"strconv"
	"strings"

	"intervaljoin/internal/query"
)

// CanonicalPlan renders a query as the canonical plan string the cache
// service keys result segments on. The query is normalized first
// (query.Normalize: inverse-form predicates swap operands), the relation
// list is rendered in query order — relation order is semantic, it fixes
// the output tuple's id positions — and the conjuncts are rendered on
// operand indices and sorted, so conjunct order does not fragment the
// cache. Two queries produce the same plan string exactly when their
// normalized conjunctions over the same ordered relation list are
// identical: "R2 after R1" and "R1 before R2" share a plan, while any
// change in predicates, operands, attributes, or relation order does not.
func CanonicalPlan(q *query.Query) string {
	n := q.Normalize()
	var b strings.Builder
	for i, s := range n.Relations {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(s.Name)
		b.WriteByte('(')
		b.WriteString(strings.Join(s.Attrs, " "))
		b.WriteByte(')')
	}
	b.WriteByte('|')
	conds := make([]string, len(n.Conds))
	for i, c := range n.Conds {
		conds[i] = renderCond(c)
	}
	slices.Sort(conds)
	b.WriteString(strings.Join(conds, "&"))
	return b.String()
}

// renderCond renders one normalized conjunct on operand indices:
// "r0.a0 overlaps r1.a0".
func renderCond(c query.Condition) string {
	var b strings.Builder
	b.WriteByte('r')
	b.WriteString(strconv.Itoa(c.Left.Rel))
	b.WriteString(".a")
	b.WriteString(strconv.Itoa(c.Left.Attr))
	b.WriteByte(' ')
	b.WriteString(c.Pred.String())
	b.WriteByte(' ')
	b.WriteByte('r')
	b.WriteString(strconv.Itoa(c.Right.Rel))
	b.WriteString(".a")
	b.WriteString(strconv.Itoa(c.Right.Attr))
	return b.String()
}
