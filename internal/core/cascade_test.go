package core

import (
	"strings"
	"testing"

	"intervaljoin/internal/dfs"
	"intervaljoin/internal/interval"
	"intervaljoin/internal/mr"
	"intervaljoin/internal/query"
	"intervaljoin/internal/relation"
)

func TestPlanCascadeChain(t *testing.T) {
	q := query.MustParse("R1 overlaps R2 and R2 contains R3 and R3 overlaps R4")
	steps, err := planCascade(q)
	if err != nil {
		t.Fatal(err)
	}
	if len(steps) != 3 {
		t.Fatalf("steps = %d, want 3", len(steps))
	}
	// Chain binds left to right.
	wantNovel := []int{1, 2, 3}
	for i, s := range steps {
		if s.novel != wantNovel[i] {
			t.Fatalf("step %d binds %d, want %d", i, s.novel, wantNovel[i])
		}
		if len(s.checkConds) == 0 {
			t.Fatalf("step %d has no conditions to check", i)
		}
	}
}

func TestPlanCascadeStar(t *testing.T) {
	q := query.MustParse("R2 contains R1 and R2 overlaps R3 and R2 overlaps R4")
	steps, err := planCascade(q)
	if err != nil {
		t.Fatal(err)
	}
	if len(steps) != 3 {
		t.Fatalf("steps = %d, want 3", len(steps))
	}
	// The hub R2 is bound first (left operand of the first condition).
	if steps[0].existing != 0 && steps[0].existing != 1 {
		t.Fatalf("first step existing = %d", steps[0].existing)
	}
}

func TestPlanCascadeTriangleChecksAllConditions(t *testing.T) {
	// A cycle: the third condition closes the triangle and must be checked
	// when its later relation binds, not dropped.
	q := query.MustParse("R1 overlaps R2 and R2 overlaps R3 and R1 contains R3")
	steps, err := planCascade(q)
	if err != nil {
		t.Fatal(err)
	}
	if len(steps) != 2 {
		t.Fatalf("steps = %d, want 2 (3 relations)", len(steps))
	}
	last := steps[len(steps)-1]
	if len(last.checkConds) != 2 {
		t.Fatalf("final step checks %d conditions, want 2 (driving + triangle closure)", len(last.checkConds))
	}
}

func TestPlanCascadeDisconnected(t *testing.T) {
	q := query.MustParse("R1 overlaps R2 and R3 overlaps R4")
	if _, err := planCascade(q); err == nil || !strings.Contains(err.Error(), "connected") {
		t.Fatalf("disconnected query accepted: %v", err)
	}
}

func TestCascadeNames(t *testing.T) {
	if (Cascade{}).Name() != "2way-cascade" || (Cascade{MatrixSteps: true}).Name() != "2way-cascade-matrix" {
		t.Fatal("cascade names wrong")
	}
}

func TestCascadeRejectsGeneral(t *testing.T) {
	q := query.MustParse("R1.I overlaps R2.I and R1.A = R2.A")
	engine := mr.NewEngine(mr.Config{Store: dfs.NewMem()})
	rels := genMultiRels(t, q)
	ctx, err := NewContext(engine, q, rels, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := (Cascade{}).Run(ctx); err == nil {
		t.Fatal("cascade accepted a general query")
	}
	if _, err := (AllRep{}).Run(ctx); err == nil {
		t.Fatal("all-rep accepted a general query")
	}
	if _, err := (SeqMatrix{}).Run(ctx); err == nil {
		t.Fatal("all-seq-matrix accepted a general query")
	}
	if _, err := (PASM{}).Run(ctx); err == nil {
		t.Fatal("pasm accepted a general query")
	}
	if _, err := (FCTS{}).Run(ctx); err == nil {
		t.Fatal("fcts accepted a general query")
	}
}

func genMultiRels(t *testing.T, q *query.Query) []*relation.Relation {
	t.Helper()
	rels := make([]*relation.Relation, len(q.Relations))
	for i, s := range q.Relations {
		r := relation.New(s)
		r.Append(interval.New(0, 10), interval.PointInterval(1))
		rels[i] = r
	}
	return rels
}
