package core

import (
	"fmt"
	"strconv"
	"strings"
	"sync"

	"intervaljoin/internal/relation"
)

// The intermediate record formats the algorithms ship between map and reduce
// and across cycle boundaries. All are line records on the dfs store:
//
//	tagged tuple:  "<rel>;<tuple>"
//	flagged tuple: "<rel>;<flag>;<tuple>"         (RCCIS cycle-1 output)
//	vector tuple:  "<rel>;<f0f1...>;<tuple>"      (Gen-Matrix flag vector)
//
// where <tuple> is relation.EncodeTuple's "id|s,e|s,e|..." form and flags
// are '0'/'1' runes. The tag is the relation's index in the query.

// encBuf pools the scratch buffer the encoders assemble records in, so the
// only per-record allocation in steady state is the final exact-size string.
// The map phase emits one record per tuple replica, which made the previous
// concatenation-based encoders a measurable share of map-side allocation.
var encBuf = sync.Pool{New: func() any { b := make([]byte, 0, 128); return &b }}

// finishRecord converts the assembled record to a string and recycles the
// buffer.
func finishRecord(bp *[]byte, b []byte) string {
	s := string(b)
	*bp = b[:0]
	encBuf.Put(bp)
	return s
}

// encodeTagged prefixes a tuple with its relation index.
func encodeTagged(rel int, t relation.Tuple) string {
	bp := encBuf.Get().(*[]byte)
	b := strconv.AppendInt(*bp, int64(rel), 10)
	b = append(b, ';')
	b = relation.AppendTuple(b, t)
	return finishRecord(bp, b)
}

// splitTagged splits a tagged record into its relation tag and the raw
// tuple body, without decoding the tuple — the columnar reduce path hands
// the body straight to the arena decoder (relation.Arena.AppendDecode).
func splitTagged(s string) (rel int, body string, err error) {
	sep := strings.IndexByte(s, ';')
	if sep < 0 {
		return 0, "", fmt.Errorf("core: malformed tagged tuple %q", s)
	}
	rel, err = strconv.Atoi(s[:sep])
	if err != nil {
		return 0, "", fmt.Errorf("core: bad relation tag in %q: %v", s, err)
	}
	return rel, s[sep+1:], nil
}

// decodeTagged parses encodeTagged's output.
func decodeTagged(s string) (rel int, t relation.Tuple, err error) {
	rel, body, err := splitTagged(s)
	if err != nil {
		return 0, relation.Tuple{}, err
	}
	t, err = relation.DecodeTuple(body)
	return rel, t, err
}

func flagByte(f bool) byte {
	if f {
		return '1'
	}
	return '0'
}

// encodeFlagged carries a single replicate flag (RCCIS cycle-1 output).
func encodeFlagged(rel int, replicate bool, t relation.Tuple) string {
	bp := encBuf.Get().(*[]byte)
	b := strconv.AppendInt(*bp, int64(rel), 10)
	b = append(b, ';', flagByte(replicate), ';')
	b = relation.AppendTuple(b, t)
	return finishRecord(bp, b)
}

// encodeFlaggedBody is encodeFlagged for a tuple whose canonical encoded
// body is already at hand (the mark reducer re-emits the body it received):
// the record is assembled by splicing, with no per-endpoint formatting, and
// is byte-identical to encodeFlagged of the decoded tuple.
func encodeFlaggedBody(rel int, replicate bool, body string) string {
	bp := encBuf.Get().(*[]byte)
	b := strconv.AppendInt(*bp, int64(rel), 10)
	b = append(b, ';', flagByte(replicate), ';')
	b = append(b, body...)
	return finishRecord(bp, b)
}

// decodeFlagged parses encodeFlagged's output.
func decodeFlagged(s string) (rel int, replicate bool, t relation.Tuple, err error) {
	first := strings.IndexByte(s, ';')
	if first < 0 {
		return 0, false, relation.Tuple{}, fmt.Errorf("core: malformed flagged tuple %q", s)
	}
	second := strings.IndexByte(s[first+1:], ';')
	if second < 0 {
		return 0, false, relation.Tuple{}, fmt.Errorf("core: malformed flagged tuple %q", s)
	}
	second += first + 1
	rel, err = strconv.Atoi(s[:first])
	if err != nil {
		return 0, false, relation.Tuple{}, fmt.Errorf("core: bad relation tag in %q: %v", s, err)
	}
	switch s[first+1 : second] {
	case "0":
		replicate = false
	case "1":
		replicate = true
	default:
		return 0, false, relation.Tuple{}, fmt.Errorf("core: bad flag in %q", s)
	}
	t, err = relation.DecodeTuple(s[second+1:])
	return rel, replicate, t, err
}

// encodeVertexFlagged carries a replicate flag for one (relation, attribute)
// vertex of a tuple — the Gen-Matrix cycle-1 output, one record per vertex.
func encodeVertexFlagged(rel, attr int, replicate bool, t relation.Tuple) string {
	bp := encBuf.Get().(*[]byte)
	b := strconv.AppendInt(*bp, int64(rel), 10)
	b = append(b, ';')
	b = strconv.AppendInt(b, int64(attr), 10)
	b = append(b, ';', flagByte(replicate), ';')
	b = relation.AppendTuple(b, t)
	return finishRecord(bp, b)
}

// decodeVertexFlagged parses encodeVertexFlagged's output.
func decodeVertexFlagged(s string) (rel, attr int, replicate bool, t relation.Tuple, err error) {
	parts := strings.SplitN(s, ";", 4)
	if len(parts) != 4 {
		return 0, 0, false, relation.Tuple{}, fmt.Errorf("core: malformed vertex-flagged tuple %q", s)
	}
	rel, err = strconv.Atoi(parts[0])
	if err != nil {
		return 0, 0, false, relation.Tuple{}, fmt.Errorf("core: bad relation tag in %q: %v", s, err)
	}
	attr, err = strconv.Atoi(parts[1])
	if err != nil {
		return 0, 0, false, relation.Tuple{}, fmt.Errorf("core: bad attribute tag in %q: %v", s, err)
	}
	switch parts[2] {
	case "0":
	case "1":
		replicate = true
	default:
		return 0, 0, false, relation.Tuple{}, fmt.Errorf("core: bad flag in %q", s)
	}
	t, err = relation.DecodeTuple(parts[3])
	return rel, attr, replicate, t, err
}

// encodeVector carries one flag per vertex of the relation (Gen-Matrix).
// The flag order is the relation's vertex order (sorted by component id then
// attribute index).
func encodeVector(rel int, flags []bool, t relation.Tuple) string {
	bp := encBuf.Get().(*[]byte)
	b := strconv.AppendInt(*bp, int64(rel), 10)
	b = append(b, ';')
	for _, f := range flags {
		b = append(b, flagByte(f))
	}
	b = append(b, ';')
	b = relation.AppendTuple(b, t)
	return finishRecord(bp, b)
}

// decodeVector parses encodeVector's output.
func decodeVector(s string) (rel int, flags []bool, t relation.Tuple, err error) {
	first := strings.IndexByte(s, ';')
	if first < 0 {
		return 0, nil, relation.Tuple{}, fmt.Errorf("core: malformed vector tuple %q", s)
	}
	second := strings.IndexByte(s[first+1:], ';')
	if second < 0 {
		return 0, nil, relation.Tuple{}, fmt.Errorf("core: malformed vector tuple %q", s)
	}
	second += first + 1
	rel, err = strconv.Atoi(s[:first])
	if err != nil {
		return 0, nil, relation.Tuple{}, fmt.Errorf("core: bad relation tag in %q: %v", s, err)
	}
	raw := s[first+1 : second]
	flags = make([]bool, len(raw))
	for i := 0; i < len(raw); i++ {
		switch raw[i] {
		case '0':
		case '1':
			flags[i] = true
		default:
			return 0, nil, relation.Tuple{}, fmt.Errorf("core: bad flag vector in %q", s)
		}
	}
	t, err = relation.DecodeTuple(s[second+1:])
	return rel, flags, t, err
}
