package core

import (
	"fmt"

	"intervaljoin/internal/interval"
	"intervaljoin/internal/mr"
	"intervaljoin/internal/query"
	"intervaljoin/internal/relation"
)

// TwoWay computes a single-condition 2-way interval join in one MR cycle
// using the Figure 1 strategy table: depending on the Allen predicate, the
// two relations are projected, split or replicated so that every satisfying
// pair meets at exactly one reducer (Section 4).
type TwoWay struct{}

// Name implements Algorithm.
func (TwoWay) Name() string { return "two-way" }

// Run implements Algorithm.
func (tw TwoWay) Run(ctx *Context) (*Result, error) {
	opts := ctx.Opts.withDefaults(tw.Name())
	if len(ctx.Query.Conds) != 1 || len(ctx.Rels) != 2 {
		return nil, fmt.Errorf("core: two-way requires exactly one condition over two relations")
	}
	if cls := ctx.Query.Classify(); cls == query.General {
		return nil, fmt.Errorf("core: two-way handles single-attribute queries only, got %v", cls)
	}
	if err := ctx.Stage(); err != nil {
		return nil, err
	}
	plan, err := ctx.makePlan(tw.Name(), opts.Partitions, 2)
	if err != nil {
		return nil, err
	}
	part := plan.part

	cond := ctx.Query.Conds[0]
	strategy := interval.JoinStrategy(cond.Pred)
	opOf := map[int]interval.Op{
		cond.Left.Rel:  strategy.Left,
		cond.Right.Rel: strategy.Right,
	}

	// Shared across reduce calls: the plan is static and per-run state is
	// pooled inside the enumerator. Binding order is (left, right), so the
	// right relation's level gets the specialized columnar kernel.
	e := newEnumerator(ctx.Query.Conds, []int{cond.Left.Rel, cond.Right.Rel}).
		withTracer(ctx.Engine.Tracer())
	lvl := make([]int, len(ctx.Rels))
	for r := range lvl {
		lvl[r] = -1
	}
	lvl[cond.Left.Rel] = 0
	lvl[cond.Right.Rel] = 1

	job := mr.Job{
		Name: opts.Scratch + "/join",
		Inputs: []mr.Input{
			ctx.relInput(0, 0),
			ctx.relInput(1, 1),
		},
		Map: func(tag int, record string, emit mr.Emitter) error {
			t, err := relation.DecodeTuple(record)
			if err != nil {
				return err
			}
			first, last := part.Apply(opOf[tag], t.Attrs[0])
			plan.emitRange(emit, first, last, tag, encodeTagged(tag, t))
			return nil
		},
		Resplit: resplitValues(2, streamOfTagged),
		Reduce: func(key int64, values []string, write func(string) error) error {
			// Exactly one reducer sees each satisfying pair: the strategy
			// projects at least one side, so no dedup filter is needed.
			var outErr error
			err := e.runTagged(values, lvl, func(asg []relation.Tuple) {
				if outErr != nil {
					return
				}
				out := make(OutputTuple, 2)
				out[cond.Left.Rel] = asg[0].ID
				out[cond.Right.Rel] = asg[1].ID
				outErr = write(out.Key())
			})
			if err != nil {
				return err
			}
			return outErr
		},
		Output:     opts.Scratch + "/output",
		SortValues: opts.SortValues,
		Meta:       ctx.jobMeta(tw.Name(), 1),
	}
	metrics, err := ctx.Engine.Run(job)
	if err != nil {
		return nil, err
	}
	metrics.Plan = plan.info()
	res := &Result{Algorithm: tw.Name(), Metrics: metrics, PerCycle: []*mr.Metrics{metrics}}
	if err := readOutput(ctx, job.Output, res); err != nil {
		return nil, err
	}
	res.SortTuples()
	return res, nil
}
