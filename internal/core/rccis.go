package core

import (
	"fmt"

	"intervaljoin/internal/interval"
	"intervaljoin/internal/mr"
	"intervaljoin/internal/query"
	"intervaljoin/internal/relation"
)

// RCCIS — Replicate Consistent And Crossing Interval Sets (Section 6.1) —
// computes a multi-way colocation join in two MR cycles.
//
// Cycle 1 splits every relation over the partitioning; each reducer p then
// decides which of the intervals starting in p must be replicated: exactly
// those that belong to some interval-set that is (C1) consistent and (C2)
// crosses p. Every interval is written out exactly once (by its start
// partition's reducer) with a replicate flag.
//
// Cycle 2 replicates the flagged intervals, projects the rest, and joins at
// each reducer, emitting an output tuple at the partition in which its
// right-most interval starts.
type RCCIS struct{}

// Name implements Algorithm.
func (RCCIS) Name() string { return "rccis" }

// Run implements Algorithm.
func (r RCCIS) Run(ctx *Context) (*Result, error) {
	opts := ctx.Opts.withDefaults(r.Name())
	if cls := ctx.Query.Classify(); cls != query.Colocation {
		return nil, fmt.Errorf("core: rccis handles colocation queries, got %v", cls)
	}
	if err := ctx.Stage(); err != nil {
		return nil, err
	}
	m := len(ctx.Rels)
	// The join cycle takes the skew-adaptive plan (one stream per
	// relation). The mark cycle keeps the plain one-key-per-partition
	// layout: its reducer needs every tuple split onto a partition in one
	// place to decide crossing-set membership, so it is not decomposable.
	plan, err := ctx.makePlan(r.Name(), opts.Partitions, m)
	if err != nil {
		return nil, err
	}
	part := plan.part
	inputs := make([]mr.Input, m)
	for ri := range ctx.Rels {
		inputs[ri] = ctx.relInput(ri, ri)
	}
	marked := opts.Scratch + "/marked"

	markJob := mr.Job{
		Name:   opts.Scratch + "/mark",
		Inputs: inputs,
		Map: func(tag int, record string, emit mr.Emitter) error {
			t, err := relation.DecodeTuple(record)
			if err != nil {
				return err
			}
			first, last := part.Split(t.Key())
			emit.EmitRange(int64(first), int64(last), encodeTagged(tag, t))
			return nil
		},
		Reduce:     markReducer(ctx.Query, part, allRelations(m)),
		Output:     marked,
		SortValues: opts.SortValues,
		Meta:       ctx.jobMeta(r.Name(), 1),
	}

	joinJob := mr.Job{
		Name:   opts.Scratch + "/join",
		Inputs: []mr.Input{{File: marked}},
		Map: func(_ int, record string, emit mr.Emitter) error {
			rel, replicate, t, err := decodeFlagged(record)
			if err != nil {
				return err
			}
			op := interval.OpProject
			if replicate {
				op = interval.OpReplicate
			}
			first, last := part.Apply(op, t.Key())
			plan.emitRange(emit, first, last, rel, encodeTagged(rel, t))
			return nil
		},
		Resplit:    resplitValues(m, streamOfTagged),
		Reduce:     reduceJoinAtPartition(ctx, plan),
		Output:     opts.Scratch + "/output",
		SortValues: opts.SortValues,
		Meta:       ctx.jobMeta(r.Name(), 2),
	}

	perCycle, agg, replicated, err := runMarkedChain(ctx, opts, marked, markJob, mr.Stage{Job: joinJob})
	if err != nil {
		return nil, err
	}
	agg.Plan = plan.info()
	res := &Result{Algorithm: r.Name(), Metrics: agg, PerCycle: perCycle, ReplicatedIntervals: replicated}
	if err := readOutput(ctx, joinJob.Output, res); err != nil {
		return nil, err
	}
	res.SortTuples()
	return res, nil
}

func allRelations(m int) []int {
	rels := make([]int, m)
	for i := range rels {
		rels[i] = i
	}
	return rels
}

// countFlagged counts the replicate-flagged records of a marking output —
// the paper's "# Intervals Replicated" statistic.
func countFlagged(ctx *Context, file string) (int64, error) {
	it, err := ctx.Engine.Store().Open(file)
	if err != nil {
		return 0, err
	}
	defer it.Close()
	var n int64
	for {
		rec, ok, err := it.Next()
		if err != nil {
			return 0, err
		}
		if !ok {
			return n, nil
		}
		_, replicate, _, err := decodeFlagged(rec)
		if err != nil {
			return 0, err
		}
		if replicate {
			n++
		}
	}
}

// markReducer builds the RCCIS cycle-1 reduce function for the given
// condition set and relation subset (the hybrid algorithms reuse it per
// colocation component). The reducer receives all tuples split onto its
// partition and writes every tuple that *starts* there, flagged with the
// replication decision.
//
// attrOf selects which attribute of a relation's tuple is the join interval;
// for the single-attribute algorithms it is attribute 0 throughout.
func markReducer(q *query.Query, part interval.Partitioning, rels []int) mr.ReduceFunc {
	return markReducerAttrs(q.Conds, part, rels, uniformAttr0(rels))
}

func uniformAttr0(rels []int) map[int]int {
	m := make(map[int]int, len(rels))
	for _, r := range rels {
		m[r] = 0
	}
	return m
}

// markReducerAttrs is the attribute-aware form used by Gen-Matrix, where the
// join interval of relation r is t.Attrs[attrOf[r]].
func markReducerAttrs(conds []query.Condition, part interval.Partitioning, rels []int, attrOf map[int]int) mr.ReduceFunc {
	return func(key int64, values []string, write func(string) error) error {
		p := int(key)
		// Decode through a per-call arena: one flat interval column for the
		// whole candidate list instead of one Attrs slice per record. The
		// raw bodies ride along so survivors are re-emitted by splicing the
		// flag in (encodeFlaggedBody) — byte-identical to re-encoding, with
		// no per-endpoint formatting.
		var arena relation.Arena
		cands := make(map[int][]relation.Tuple, len(rels))
		bodies := make(map[int][]string, len(rels))
		for _, v := range values {
			rel, body, err := splitTagged(v)
			if err != nil {
				return err
			}
			ref, err := arena.AppendDecode(body)
			if err != nil {
				return err
			}
			cands[rel] = append(cands[rel], arena.Tuple(ref))
			bodies[rel] = append(bodies[rel], body)
		}
		replicate := markCrossingParticipants(conds, part, p, rels, attrOf, cands)
		// Write every tuple that starts in this partition, flagged.
		for _, rel := range rels {
			attr := attrOf[rel]
			for i, t := range cands[rel] {
				if part.IndexOf(t.Attrs[attr].Start) != p {
					continue
				}
				if err := write(encodeFlaggedBody(rel, replicate[rel][t.ID], bodies[rel][i])); err != nil {
					return err
				}
			}
		}
		return nil
	}
}

// markCrossingParticipants returns, per relation, the ids of the tuples at
// partition p that belong to at least one consistent interval-set crossing p
// (conditions C1 and C2 of RCCIS). It enumerates every proper non-empty
// subset S of the relation set; for each it applies the unary boundary
// filters B1/B2 derived from the conditions between S and its complement,
// then keeps the tuples participating in a satisfying assignment over S via
// a semi-join fixpoint (exact for the acyclic condition graphs of the
// paper's queries, a safe superset otherwise).
func markCrossingParticipants(conds []query.Condition, part interval.Partitioning, p int,
	rels []int, attrOf map[int]int, cands map[int][]relation.Tuple) map[int]map[int64]bool {

	marked := make(map[int]map[int64]bool, len(rels))
	for _, r := range rels {
		marked[r] = make(map[int64]bool)
	}
	m := len(rels)
	inS := make(map[int]bool, m)
	// Iterate proper non-empty subsets of rels via bitmasks. An output
	// tuple (S = full set) is not a crossing set — its computation needs
	// no replication — so the full mask is excluded.
	for mask := 1; mask < (1<<m)-1; mask++ {
		var sub []int
		for i, r := range rels {
			inS[r] = mask&(1<<i) != 0
			if inS[r] {
				sub = append(sub, r)
			}
		}
		// Derive per-relation boundary requirements from conditions with
		// exactly one endpoint in S.
		needRight := make(map[int]bool)
		needLeft := make(map[int]bool)
		subConds := conds[:0:0]
		for _, c := range conds {
			lIn, rIn := inS[c.Left.Rel], inS[c.Right.Rel]
			switch {
			case lIn && rIn:
				subConds = append(subConds, c)
			case lIn || rIn:
				inside := c.Left
				if rIn {
					inside = c.Right
				}
				// Determine whether the inside relation is the lesser or
				// the greater operand of the condition.
				insideIsLeft := inside == c.Left
				lesserIsLeft := c.Pred.LessThanOrder() == interval.LeftLess
				if insideIsLeft == lesserIsLeft {
					// Inside relation is in less-than order with the
					// outside one: B1, cross the right boundary.
					needRight[inside.Rel] = true
				} else {
					// Outside relation is lesser: B2, cross the left
					// boundary.
					needLeft[inside.Rel] = true
				}
			}
			// A subset with no condition leaving it crosses p vacuously;
			// only the full relation set is excluded (an output tuple is
			// not a crossing set).
		}
		// Unary filters, then participation.
		filtered := make([][]relation.Tuple, len(sub))
		empty := false
		for i, r := range sub {
			attr := attrOf[r]
			var keep []relation.Tuple
			for _, t := range cands[r] {
				iv := t.Attrs[attr]
				if needRight[r] && !part.CrossesRight(iv, p) {
					continue
				}
				if needLeft[r] && !part.CrossesLeft(iv, p) {
					continue
				}
				keep = append(keep, t)
			}
			if len(keep) == 0 {
				empty = true
				break
			}
			filtered[i] = keep
		}
		if empty {
			continue
		}
		surviving := semijoinReduce(subConds, sub, filtered)
		for i, r := range sub {
			for _, t := range surviving[i] {
				marked[r][t.ID] = true
			}
		}
	}
	return marked
}
