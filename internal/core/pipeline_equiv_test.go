package core

import (
	"math/rand"
	"testing"

	"intervaljoin/internal/dfs"
	"intervaljoin/internal/mr"
	"intervaljoin/internal/query"
	"intervaljoin/internal/relation"
)

// runSingle executes one algorithm on a fresh store with a pinned scratch
// directory and returns the result plus the final output file's lines.
func runSingle(t *testing.T, alg Algorithm, q *query.Query, rels []*relation.Relation, opts Options) (*Result, []string) {
	t.Helper()
	store := dfs.NewMem()
	engine := mr.NewEngine(mr.Config{Store: store, Workers: 4})
	ctx, err := NewContext(engine, q, rels, opts)
	if err != nil {
		t.Fatal(err)
	}
	res, err := alg.Run(ctx)
	if err != nil {
		t.Fatalf("%s: %v", alg.Name(), err)
	}
	lines, err := dfs.ReadAll(store, opts.Scratch+"/output")
	if err != nil {
		t.Fatalf("%s: reading output: %v", alg.Name(), err)
	}
	return res, lines
}

// TestPipelinedMatchesMaterialized runs every multi-cycle algorithm twice —
// once through the pipelined executor (the default) and once with
// Materialize: true (sequential RunChain, every boundary written) — and
// requires byte-identical final output plus identical result statistics.
// SortValues pins reduce-value order so both modes are deterministic.
func TestPipelinedMatchesMaterialized(t *testing.T) {
	cases := []struct {
		name  string
		alg   Algorithm
		query string
	}{
		{"cascade", Cascade{}, "R1 overlaps R2 and R2 overlaps R3"},
		{"cascade-matrix", Cascade{MatrixSteps: true}, "R1 before R2 and R2 before R3"},
		{"rccis", RCCIS{}, "R1 overlaps R2 and R2 overlaps R3"},
		{"all-seq-matrix", SeqMatrix{}, "R1 overlaps R2 and R2 overlaps R3"},
		{"all-seq-matrix-hybrid", SeqMatrix{}, "R1 before R2 and R1 overlaps R3"},
		{"fcts", FCTS{}, "R1 overlaps R2 and R2 overlaps R3"},
		{"fcts-hybrid", FCTS{}, "R1 before R2 and R1 overlaps R3"},
		{"pasm", PASM{}, "R1 overlaps R2 and R2 overlaps R3"},
		{"pasm-hybrid", PASM{}, "R1 before R2 and R1 overlaps R3"},
		{"gen-matrix", GenMatrix{}, "R1 before R2 and R1 overlaps R3"},
	}
	rng := rand.New(rand.NewSource(42))
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			q := query.MustParse(tc.query)
			rels := make([]*relation.Relation, len(q.Relations))
			for i, s := range q.Relations {
				rels[i] = randomRelation(rng, s.Name, 45, 160, 30)
			}
			opts := Options{
				Partitions: 6, PartitionsPerDim: 4,
				Scratch: "equiv", SortValues: true,
			}
			seq := opts
			seq.Materialize = true
			wantRes, wantLines := runSingle(t, tc.alg, q, rels, seq)
			gotRes, gotLines := runSingle(t, tc.alg, q, rels, opts)

			if len(gotLines) != len(wantLines) {
				t.Fatalf("output has %d lines pipelined, %d materialized", len(gotLines), len(wantLines))
			}
			for i := range gotLines {
				if gotLines[i] != wantLines[i] {
					t.Fatalf("output line %d differs:\npipelined:    %q\nmaterialized: %q",
						i, gotLines[i], wantLines[i])
				}
			}
			if len(gotRes.Tuples) != len(wantRes.Tuples) {
				t.Errorf("tuples: %d pipelined, %d materialized", len(gotRes.Tuples), len(wantRes.Tuples))
			}
			if gotRes.ReplicatedIntervals != wantRes.ReplicatedIntervals {
				t.Errorf("replicated: %d pipelined, %d materialized",
					gotRes.ReplicatedIntervals, wantRes.ReplicatedIntervals)
			}
			for _, rels := range [][]map[int]int64{{gotRes.PrunedIntervals, wantRes.PrunedIntervals}} {
				got, want := rels[0], rels[1]
				for k, v := range want {
					if got[k] != v {
						t.Errorf("pruned[%d]: %d pipelined, %d materialized", k, got[k], v)
					}
				}
				for k, v := range got {
					if v != 0 && want[k] != v {
						t.Errorf("pruned[%d]: %d pipelined, %d materialized", k, v, want[k])
					}
				}
			}
			if gotRes.Metrics.StreamedPairs == 0 {
				t.Error("pipelined run streamed no pairs across cycle boundaries")
			}
			if wantRes.Metrics.StreamedPairs != 0 {
				t.Errorf("materialized run streamed %d pairs, want 0", wantRes.Metrics.StreamedPairs)
			}
			if gotRes.Metrics.Cycles != wantRes.Metrics.Cycles {
				t.Errorf("cycles: %d pipelined, %d materialized",
					gotRes.Metrics.Cycles, wantRes.Metrics.Cycles)
			}
		})
	}
}
