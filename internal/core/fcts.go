package core

import (
	"fmt"

	"intervaljoin/internal/grid"
	"intervaljoin/internal/interval"
	"intervaljoin/internal/mr"
	"intervaljoin/internal/query"
	"intervaljoin/internal/relation"
)

// FCTS — First Colocation Then Sequence — is the hybrid baseline of
// Section 8: every colocation component's sub-query is computed first (via
// RCCIS), materialising the component outputs as intermediate relations of
// partial assignments; a final matrix cycle then joins the component outputs
// on the sequence conditions. Like 2-way Cascade it pays for reading and
// shuffling large intermediate results, which is what All-Seq-Matrix
// removes. (FSTC, the mirror-image baseline, is strictly analogous and is
// not evaluated in the paper's tables; it is not implemented.)
//
// Three MR cycles: component RCCIS marking; component joins (all components
// in one job, keyed by component x partition); sequence grid join over the
// materialised component outputs.
type FCTS struct{}

// Name implements Algorithm.
func (FCTS) Name() string { return "fcts" }

// Run implements Algorithm.
func (a FCTS) Run(ctx *Context) (*Result, error) {
	opts := ctx.Opts.withDefaults(a.Name())
	if cls := ctx.Query.Classify(); cls == query.General {
		return nil, fmt.Errorf("core: fcts handles single-attribute queries, got %v", cls)
	}
	if err := ctx.Stage(); err != nil {
		return nil, err
	}
	d := query.Decompose(ctx.Query)
	if d.Contradictory {
		return &Result{Algorithm: a.Name(), Metrics: mr.NewMetrics(a.Name())}, nil
	}
	part, err := ctx.makePartitioning(opts.PartitionsPerDim)
	if err != nil {
		return nil, err
	}

	marked := opts.Scratch + "/marked"
	compOut := opts.Scratch + "/components"
	markJob := componentMarkJob(ctx, opts, part, d, marked)
	markJob.Meta = ctx.jobMeta(a.Name(), 1)
	compJob := a.componentOutputJob(ctx, opts, part, d, marked, compOut)
	compJob.Meta = ctx.jobMeta(a.Name(), 2)
	seqJob, err := a.sequenceJob(ctx, opts, part, d, compOut, opts.Scratch+"/output")
	if err != nil {
		return nil, err
	}
	seqJob.Meta = ctx.jobMeta(a.Name(), 3)
	perCycle, agg, replicated, err := runMarkedChain(ctx, opts, marked, markJob,
		mr.Stage{Job: compJob}, mr.Stage{Job: seqJob})
	if err != nil {
		return nil, err
	}
	res := &Result{Algorithm: a.Name(), Metrics: agg, PerCycle: perCycle, ReplicatedIntervals: replicated}
	if err := readOutput(ctx, seqJob.Output, res); err != nil {
		return nil, err
	}
	res.SortTuples()
	return res, nil
}

// componentOutputJob materialises every component sub-query's output as
// partial-assignment records (cycle 2). Keys are component*o + partition;
// each reducer enumerates the component's satisfying assignments among the
// tuples routed to it and emits those whose right-most member starts here.
func (FCTS) componentOutputJob(ctx *Context, opts Options, part interval.Partitioning,
	d *query.Decomposition, marked, output string) mr.Job {

	comp := compOfRel(d)
	o := int64(part.Len())
	compRels := make([][]int, len(d.Components))
	compConds := make([][]query.Condition, len(d.Components))
	for ci := range d.Components {
		for _, v := range d.Components[ci].Vertices {
			compRels[ci] = append(compRels[ci], v.Rel)
		}
		compConds[ci] = d.SubQueryConds(ci)
	}
	// One shared enumerator per component: plans are static and per-run
	// state is pooled inside each enumerator. lvls[ci] maps a global
	// relation tag to its binding level within component ci's enumerator
	// (-1 for relations of other components).
	enums := make([]*enumerator, len(d.Components))
	lvls := make([][]int, len(d.Components))
	for ci := range d.Components {
		enums[ci] = newEnumerator(compConds[ci], compRels[ci]).withTracer(ctx.Engine.Tracer())
		lvls[ci] = make([]int, len(ctx.Rels))
		for r := range lvls[ci] {
			lvls[ci][r] = -1
		}
		for i, r := range compRels[ci] {
			lvls[ci][r] = i
		}
	}

	return mr.Job{
		Name:   opts.Scratch + "/component-join",
		Inputs: []mr.Input{{File: marked}},
		Map: func(_ int, record string, emit mr.Emitter) error {
			rel, replicate, t, err := decodeFlagged(record)
			if err != nil {
				return err
			}
			ci := comp[rel]
			q := part.Project(t.Key())
			last := q
			if replicate {
				last = int(o) - 1
			}
			// Keys within one component block are contiguous.
			emit.EmitRange(int64(ci)*o+int64(q), int64(ci)*o+int64(last), encodeTagged(rel, t))
			return nil
		},
		Reduce: func(key int64, values []string, write func(string) error) error {
			ci := int(key / o)
			p := int(key % o)
			rels := compRels[ci]
			var outErr error
			err := enums[ci].runTagged(values, lvls[ci], func(asg []relation.Tuple) {
				if outErr != nil {
					return
				}
				maxStart := asg[0].Key().Start
				for _, t := range asg[1:] {
					if s := t.Key().Start; s > maxStart {
						maxStart = s
					}
				}
				if part.IndexOf(maxStart) != p {
					return
				}
				pa := make(partialAssignment, len(asg))
				for i, t := range asg {
					pa[i] = boundTuple{rel: rels[i], tuple: t}
				}
				outErr = write(encodePartial(pa))
			})
			if err != nil {
				return err
			}
			return outErr
		},
		Output:     output,
		SortValues: opts.SortValues,
	}
}

// sequenceJob joins the materialised component outputs on the sequence
// conditions in an l-dimensional consistent-cell grid (cycle 3). Each
// component record is pinned along its own dimension at the partition of its
// right-most member's start; full assignments therefore form at exactly one
// cell.
func (FCTS) sequenceJob(ctx *Context, opts Options, part interval.Partitioning,
	d *query.Decomposition, compOut, output string) (mr.Job, error) {

	comp := compOfRel(d)
	l := d.NumComponents()
	g, err := grid.NewUniform(l, part.Len())
	if err != nil {
		return mr.Job{}, err
	}
	cons := soundComponentLess(d)
	m := len(ctx.Rels)
	seqConds := make([]query.Condition, 0, len(d.SeqCondIdx))
	for _, i := range d.SeqCondIdx {
		seqConds = append(seqConds, d.Query.Conds[i])
	}

	mapFn := func(_ int, record string, emit mr.Emitter) error {
		pa, err := decodePartial(record)
		if err != nil {
			return err
		}
		ci := comp[pa[0].rel]
		maxStart := pa[0].tuple.Key().Start
		for _, bt := range pa[1:] {
			if s := bt.tuple.Key().Start; s > maxStart {
				maxStart = s
			}
		}
		q := part.IndexOf(maxStart)
		bounds := g.FreeBounds()
		bounds[ci] = grid.Bound{Min: q, Max: q}
		g.EnumerateRuns(bounds, cons, func(lo, hi int64) { emit.EmitRange(lo, hi, record) })
		return nil
	}

	reduceFn := func(key int64, values []string, write func(string) error) error {
		byComp := make([][]partialAssignment, l)
		for _, v := range values {
			pa, err := decodePartial(v)
			if err != nil {
				return err
			}
			ci := comp[pa[0].rel]
			byComp[ci] = append(byComp[ci], pa)
		}
		// Backtracking across components, checking sequence conditions as
		// soon as both operand components are bound.
		asg := make([]relation.Tuple, m)
		var outErr error
		var rec func(ci int)
		rec = func(ci int) {
			if outErr != nil {
				return
			}
			if ci == l {
				out := make(OutputTuple, m)
				for i, t := range asg {
					out[i] = t.ID
				}
				outErr = write(out.Key())
				return
			}
		next:
			for _, pa := range byComp[ci] {
				for _, bt := range pa {
					asg[bt.rel] = bt.tuple
				}
				for _, c := range seqConds {
					lc, rc := comp[c.Left.Rel], comp[c.Right.Rel]
					if lc > ci || rc > ci {
						continue
					}
					if !c.Pred.Eval(asg[c.Left.Rel].Attrs[c.Left.Attr], asg[c.Right.Rel].Attrs[c.Right.Attr]) {
						continue next
					}
				}
				rec(ci + 1)
			}
		}
		rec(0)
		return outErr
	}

	return mr.Job{
		Name:       opts.Scratch + "/sequence-join",
		Inputs:     []mr.Input{{File: compOut}},
		Map:        mapFn,
		Reduce:     reduceFn,
		Output:     output,
		SortValues: opts.SortValues,
	}, nil
}
