package core

import (
	"sort"
	"strconv"
	"strings"

	"intervaljoin/internal/cost"
	"intervaljoin/internal/grid"
	"intervaljoin/internal/interval"
	"intervaljoin/internal/mr"
	"intervaljoin/internal/obs"
)

// Skew-aware execution plan. The paper's partitioning maps partition
// interval i to reduce key i; on heavy-tailed data a few partitions then
// dominate reduce wall no matter where the boundaries sit. An execPlan
// widens that mapping: every partition owns a contiguous block of reduce
// keys [base[i], base[i+1]) — one key for cold partitions, a
// 1-Bucket-Theta-style cell grid of "virtual reducers" for hot ones. A
// record of input stream d routes to the cells whose dimension-d
// coordinate equals its deterministic row hash, so any complete
// assignment (one record per stream) still meets at exactly one cell and
// the drivers' exactly-once output rules carry over verbatim. With no
// splits the plan degenerates to the identity key mapping and the
// emissions are bit-identical to the unplanned ones.
type execPlan struct {
	part    interval.Partitioning
	streams int

	vcount []int      // virtual reducers per partition (>= 1)
	base   []int64    // prefix sums: partition i owns keys [base[i], base[i+1])
	cells  []cellRuns // precomputed cell cover per split partition (nil runs when vcount == 1)

	hasSplits bool
	splitten  int // partitions with vcount > 1

	source     string // boundaryUniform or boundaryEquiDepth
	autoK      bool
	threshold  float64
	maxVirtual int
}

const (
	boundaryUniform   = "uniform"
	boundaryEquiDepth = "equi-depth"
)

// keyRun is one contiguous run of partition-relative reduce keys.
type keyRun struct{ lo, hi int64 }

// cellRuns is a split partition's precomputed cell cover: for a record of
// stream d with row r, runs[d][r] lists the key runs of the cells whose
// dimension-d coordinate is r. Built once at plan time so the map hot
// path only hashes the record and walks a read-only slice — no per-record
// grid enumeration or allocation.
type cellRuns struct {
	dims []int
	runs [][][]keyRun // [stream][row][]keyRun
}

func newCellRuns(g grid.Grid) cellRuns {
	dims := g.Dims()
	cr := cellRuns{dims: dims, runs: make([][][]keyRun, len(dims))}
	for d, dim := range dims {
		cr.runs[d] = make([][]keyRun, dim)
		for r := 0; r < dim; r++ {
			bounds := g.FreeBounds()
			bounds[d] = grid.Bound{Min: r, Max: r}
			g.EnumerateRuns(bounds, nil, func(lo, hi int64) {
				cr.runs[d][r] = append(cr.runs[d][r], keyRun{lo, hi})
			})
		}
	}
	return cr
}

// newExecPlan assembles the key layout. vcounts may be nil (no splits) or
// shorter than part.Len(); missing entries mean 1. A partition's actual
// virtual-reducer count is rounded up to its cell grid's size.
func newExecPlan(part interval.Partitioning, vcounts []int, streams int, source string) *execPlan {
	n := part.Len()
	if streams < 1 {
		streams = 1
	}
	pl := &execPlan{
		part:    part,
		streams: streams,
		vcount:  make([]int, n),
		base:    make([]int64, n+1),
		cells:   make([]cellRuns, n),
		source:  source,
	}
	for i := 0; i < n; i++ {
		v := 1
		if i < len(vcounts) {
			v = vcounts[i]
		}
		if v > 1 {
			g := grid.MustNew(balancedDims(streams, v))
			pl.cells[i] = newCellRuns(g)
			v = int(g.NumCells())
			pl.splitten++
		} else {
			v = 1
		}
		pl.vcount[i] = v
		pl.base[i+1] = pl.base[i] + int64(v)
	}
	pl.hasSplits = pl.splitten > 0
	return pl
}

// keys is the total reduce-key count.
func (pl *execPlan) keys() int64 { return pl.base[len(pl.base)-1] }

// partitionOf inverts the key layout: the partition owning a reduce key.
func (pl *execPlan) partitionOf(key int64) int {
	if !pl.hasSplits {
		return int(key)
	}
	// Greatest i with base[i] <= key.
	i := sort.Search(len(pl.base), func(i int) bool { return pl.base[i] > key }) - 1
	if i < 0 {
		return 0
	}
	if i >= len(pl.vcount) {
		return len(pl.vcount) - 1
	}
	return i
}

// emitRange routes one record of the given input stream to partitions
// [first, last], expanding split partitions into the record's cell-cover
// rows. Runs of consecutive keys are coalesced so the physical shuffle
// stays range-replicated (one stored record per contiguous key range),
// exactly like the direct Emitter.EmitRange call it generalises.
func (pl *execPlan) emitRange(emit mr.Emitter, first, last, stream int, value string) {
	if !pl.hasSplits {
		emit.EmitRange(int64(first), int64(last), value)
		return
	}
	runLo, runHi := int64(-1), int64(-1)
	add := func(lo, hi int64) {
		if runLo >= 0 && lo == runHi+1 {
			runHi = hi
			return
		}
		if runLo >= 0 {
			emit.EmitRange(runLo, runHi, value)
		}
		runLo, runHi = lo, hi
	}
	for p := first; p <= last; p++ {
		off := pl.base[p]
		if pl.vcount[p] == 1 {
			add(off, off)
			continue
		}
		cr := &pl.cells[p]
		row := rowOf(value, virtualSalt+uint64(stream), cr.dims[stream])
		for _, r := range cr.runs[stream][row] {
			add(off+r.lo, off+r.hi)
		}
	}
	if runLo >= 0 {
		emit.EmitRange(runLo, runHi, value)
	}
}

// info summarises the plan for metrics.json.
func (pl *execPlan) info() *obs.PlanInfo {
	return &obs.PlanInfo{
		Partitions:      pl.part.Len(),
		BoundarySource:  pl.source,
		AutoK:           pl.autoK,
		VirtualReducers: int(pl.keys()),
		SplitPartitions: pl.splitten,
		Streams:         pl.streams,
		SplitThreshold:  pl.threshold,
		MaxVirtual:      pl.maxVirtual,
	}
}

// balancedDims picks cell-grid dimensions for a split partition: one
// dimension per input stream, grown one at a time until the cell count
// reaches v — the near-cubic cover 1-Bucket-Theta uses for unknown
// selectivities, which bounds every stream's per-cell fan-out by
// ceil(v^(1/streams)).
func balancedDims(streams, v int) []int {
	dims := make([]int, streams)
	for i := range dims {
		dims[i] = 1
	}
	product := 1
	for product < v {
		smallest := 0
		for i, d := range dims {
			if d < dims[smallest] {
				smallest = i
			}
		}
		product = product / dims[smallest] * (dims[smallest] + 1)
		dims[smallest]++
	}
	return dims
}

// Hash salts separating the two cell covers: a reduce task that was
// already virtually split at map time must not re-split along the same
// rows at run time, or every value would land in a single sub-shard.
const (
	virtualSalt uint64 = 0x01
	resplitSalt uint64 = 0x9e00
)

// rowOf deterministically assigns a record to one row of a cell-grid
// dimension. FNV-1a over the record bytes with a splitmix64 finish —
// stable across runs and processes, so re-executed map attempts (task
// retry) route identically.
func rowOf(value string, salt uint64, dim int) int {
	if dim <= 1 {
		return 0
	}
	const (
		offset64 uint64 = 14695981039346656037
		prime64  uint64 = 1099511628211
	)
	h := offset64
	for i := 0; i < len(value); i++ {
		h ^= uint64(value[i])
		h *= prime64
	}
	h ^= salt * 0x9e3779b97f4a7c15
	h ^= h >> 30
	h *= 0xbf58476d1ce4e5b9
	h ^= h >> 27
	h *= 0x94d049bb133111eb
	h ^= h >> 31
	return int(h % uint64(dim))
}

// boundaries builds n partition boundaries and names their source:
// quantile-based when Options.EquiDepth demands it, or when Options.
// Adaptive is set and the start-point histogram predicts a straggler
// factor worth acting on (cost.RecommendEquiDepth); uniform otherwise.
func (c *Context) boundaries(n int) (interval.Partitioning, string, error) {
	t0, tn, err := c.timeRange()
	if err != nil {
		return interval.Partitioning{}, "", err
	}
	if c.Opts.EquiDepth {
		p, err := interval.NewEquiDepth(t0, tn, n, c.sampleStarts())
		return p, boundaryEquiDepth, err
	}
	if c.Opts.Adaptive {
		return c.pickBoundaries(t0, tn, n)
	}
	p, err := interval.MakeUniform(t0, tn, n)
	return p, boundaryUniform, err
}

// pickBoundaries chooses between uniform and equi-depth boundaries by
// estimated post-split makespan rather than by a histogram heuristic:
// quantile boundaries flatten the per-partition input counts, but when
// starts pile up they collapse partition widths far below the interval
// length, and every interval then replicates across all of the narrow
// partitions — often costlier than leaving the hot region in one wide
// partition and splitting it over virtual reducers. Each candidate is
// scored by the largest per-virtual-reducer pair load its plan would
// leave, with the sampled replica volume (shuffle cost) as tie-breaker;
// equi-depth quantiles use interval midpoints, which spread half a length
// further than starts and so track mass without collapsing quite as hard.
func (c *Context) pickBoundaries(t0, tn interval.Point, n int) (interval.Partitioning, string, error) {
	uni, err := interval.MakeUniform(t0, tn, n)
	if err != nil {
		return interval.Partitioning{}, "", err
	}
	equi, err := interval.NewEquiDepth(t0, tn, n, c.sampleMidpoints())
	if err != nil {
		return uni, boundaryUniform, nil
	}
	sample, scale := c.sampleIntervals()
	if len(sample) == 0 {
		return uni, boundaryUniform, nil
	}
	meanLen := sampleMeanLength(sample)
	score := func(part interval.Partitioning) (makespan, volume float64) {
		loads := cost.PartitionLoads(sample, part, scale)
		pairs := cost.PairLoads(loads, part, meanLen)
		splits := cost.RecommendSplits(pairs, c.Opts.SplitThreshold, c.Opts.MaxVirtual)
		for i, p := range pairs {
			if cell := p / float64(splits[i]); cell > makespan {
				makespan = cell
			}
			volume += loads[i]
		}
		return makespan, volume
	}
	uniMax, uniVol := score(uni)
	equiMax, equiVol := score(equi)
	if equiMax < uniMax || (equiMax == uniMax && equiVol < uniVol) {
		return equi, boundaryEquiDepth, nil
	}
	return uni, boundaryUniform, nil
}

func sampleMeanLength(sample []interval.Interval) float64 {
	if len(sample) == 0 {
		return 0
	}
	var meanLen float64
	for _, iv := range sample {
		meanLen += float64(iv.End-iv.Start) + 1
	}
	return meanLen / float64(len(sample))
}

// makePlan builds the skew-aware execution plan of a 1-D join cycle with
// the given input stream count: boundary selection via boundaries, then —
// under Options.Adaptive — per-partition load estimation over an interval
// sample and virtual splitting of the partitions the planner flags. The
// planning work is recorded as a virtual_split span with
// virtual_reducers / split_partitions counters.
func (c *Context) makePlan(alg string, n, streams int) (*execPlan, error) {
	tracer := c.Engine.Tracer()
	lane := tracer.Acquire()
	start := lane.Begin()
	part, source, err := c.boundaries(n)
	if err != nil {
		tracer.Release(lane)
		return nil, err
	}
	var vcounts []int
	if c.Opts.Adaptive {
		sample, scale := c.sampleIntervals()
		loads := cost.PartitionLoads(sample, part, scale)
		pairs := cost.PairLoads(loads, part, sampleMeanLength(sample))
		vcounts = cost.RecommendSplits(pairs, c.Opts.SplitThreshold, c.Opts.MaxVirtual)
	}
	pl := newExecPlan(part, vcounts, streams, source)
	pl.threshold = c.Opts.SplitThreshold
	pl.maxVirtual = c.Opts.MaxVirtual
	pl.autoK = c.Opts.AutoPartitions
	if c.Opts.Adaptive {
		lane.End(obs.CatVirtualSplit, "plan:"+alg, start,
			obs.Arg{Key: "boundaries", Val: source},
			obs.Arg{Key: "virtual_reducers", Val: strconv.FormatInt(pl.keys(), 10)})
		lane.Count("virtual_reducers", pl.keys())
		lane.Count("split_partitions", int64(pl.splitten))
	}
	tracer.Release(lane)
	return pl, nil
}

// sampleMidpoints stride-samples first-attribute interval midpoints for
// the adaptive boundary builder.
func (c *Context) sampleMidpoints() []interval.Point {
	sample, _ := c.sampleIntervals()
	mids := make([]interval.Point, len(sample))
	for i, iv := range sample {
		mids[i] = iv.Start + (iv.End-iv.Start)/2
	}
	return mids
}

// sampleIntervals stride-samples the first-attribute intervals of every
// relation for the load planner, returning the sample and its inverse
// sampling rate (population / sample size).
func (c *Context) sampleIntervals() ([]interval.Interval, float64) {
	total := 0
	for _, r := range c.Rels {
		total += r.Len()
	}
	if total == 0 {
		return nil, 1
	}
	stride := total/sampleBudget + 1
	var sample []interval.Interval
	i := 0
	for _, r := range c.Rels {
		for _, t := range r.Tuples {
			if i%stride == 0 {
				sample = append(sample, t.Attrs[0])
			}
			i++
		}
	}
	if len(sample) == 0 {
		return nil, 1
	}
	return sample, float64(total) / float64(len(sample))
}

// resplitValues builds a mr.Job.Resplit hook: the run-time counterpart of
// the plan-time cell cover, applied to one oversized reduce task's value
// list. The task's values are spread over a cell grid with one dimension
// per input stream (each value replicated to the cells matching its row),
// so reducing every shard independently and concatenating the outputs
// yields exactly the single task's output set — each complete assignment
// meets in exactly one shard. streamOf classifies a value; a negative
// return (malformed record) replicates the value to every shard, which
// is always safe.
func resplitValues(streams int, streamOf func(string) int) func(key int64, values []string, parts int) [][]string {
	return func(key int64, values []string, parts int) [][]string {
		if parts < 2 {
			return nil
		}
		g := grid.MustNew(balancedDims(streams, parts))
		dims := g.Dims()
		shards := make([][]string, g.NumCells())
		free := g.FreeBounds()
		bounds := g.FreeBounds()
		for _, v := range values {
			d := streamOf(v)
			if d < 0 || d >= streams {
				for i := range shards {
					shards[i] = append(shards[i], v)
				}
				continue
			}
			copy(bounds, free)
			row := rowOf(v, resplitSalt+uint64(d), dims[d])
			bounds[d] = grid.Bound{Min: row, Max: row}
			g.EnumerateRuns(bounds, nil, func(lo, hi int64) {
				for id := lo; id <= hi; id++ {
					shards[id] = append(shards[id], v)
				}
			})
		}
		return shards
	}
}

// streamOfTagged classifies a tagged record ("<rel>;...") by its relation
// tag — the stream function of the single-cycle join jobs.
func streamOfTagged(v string) int {
	sep := strings.IndexByte(v, ';')
	if sep <= 0 {
		return -1
	}
	rel, err := strconv.Atoi(v[:sep])
	if err != nil {
		return -1
	}
	return rel
}

// cascadeStreams classifies a cascade step's values: stream 0 carries the
// partial assignments, stream 1 the novel relation's tuples — mirroring
// the reduce function's own partial/novel separation.
func cascadeStreams(novel, existing int) func(string) int {
	return func(v string) int {
		if strings.IndexByte(v, '#') >= 0 {
			return 0 // multi-tuple partial assignment
		}
		rel := streamOfTagged(v)
		if rel < 0 {
			return -1
		}
		if rel == novel && novel != existing {
			return 1
		}
		return 0
	}
}
