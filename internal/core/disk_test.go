package core

import (
	"testing"

	"intervaljoin/internal/dfs"
	"intervaljoin/internal/mr"
	"intervaljoin/internal/query"
	"intervaljoin/internal/relation"
	"intervaljoin/internal/workload"
)

// TestDiskStoreWithSpillEndToEnd runs the paper's Q1 on an engine whose
// store is on disk and whose shuffle spills, end to end: the most
// Hadoop-like configuration the engine supports. Guarded by -short.
func TestDiskStoreWithSpillEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("disk+spill integration test skipped in -short mode")
	}
	disk, err := dfs.NewDisk(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	engine := mr.NewEngine(mr.Config{
		Store:              disk,
		Workers:            4,
		SpillPairThreshold: 512,
		MaxTaskAttempts:    2,
	})
	q := query.MustParse("R1 overlaps R2 and R2 overlaps R3")
	rels := make([]*relation.Relation, 3)
	for i, s := range q.Relations {
		r, err := workload.Generate(workload.Table1Spec(s.Name, 3_000, int64(i+1)))
		if err != nil {
			t.Fatal(err)
		}
		rels[i] = r
	}
	refCtx, err := NewContext(engine, q, rels, Options{Partitions: 16})
	if err != nil {
		t.Fatal(err)
	}
	want, err := Reference{}.Run(refCtx)
	if err != nil {
		t.Fatal(err)
	}
	for _, alg := range []Algorithm{RCCIS{}, AllRep{}, Cascade{}} {
		ctx, err := NewContext(engine, q, rels, Options{Partitions: 16})
		if err != nil {
			t.Fatal(err)
		}
		got, err := alg.Run(ctx)
		if err != nil {
			t.Fatalf("%s: %v", alg.Name(), err)
		}
		if got.Metrics.SpillRuns == 0 {
			t.Errorf("%s: expected shuffle spills at threshold 512", alg.Name())
		}
		if len(got.TupleSet()) != len(want.Tuples) {
			t.Fatalf("%s on disk+spill: %d tuples, oracle %d", alg.Name(), len(got.TupleSet()), len(want.Tuples))
		}
	}
}
