package core

import (
	"math/rand"
	"testing"

	"intervaljoin/internal/interval"
	"intervaljoin/internal/query"
	"intervaljoin/internal/relation"
)

func mkTuple(id int64, ivs ...interval.Interval) relation.Tuple {
	return relation.Tuple{ID: id, Attrs: ivs}
}

func TestEnumeratorChain(t *testing.T) {
	q := query.MustParse("R1 overlaps R2 and R2 overlaps R3")
	cands := [][]relation.Tuple{
		{mkTuple(0, interval.New(0, 10)), mkTuple(1, interval.New(50, 60))},
		{mkTuple(0, interval.New(5, 20)), mkTuple(1, interval.New(55, 70))},
		{mkTuple(0, interval.New(15, 30)), mkTuple(1, interval.New(65, 80))},
	}
	e := newEnumerator(q.Conds, []int{0, 1, 2})
	var got []string
	e.run(cands, func(asg []relation.Tuple) {
		got = append(got, OutputTuple{asg[0].ID, asg[1].ID, asg[2].ID}.Key())
	})
	want := map[string]bool{"0,0,0": true, "1,1,1": true}
	if len(got) != 2 || !want[got[0]] || !want[got[1]] {
		t.Fatalf("assignments = %v, want the two diagonal chains", got)
	}
}

func TestEnumeratorSubset(t *testing.T) {
	// An enumerator over a subset of relations ignores conditions that
	// reach outside the subset.
	q := query.MustParse("R1 overlaps R2 and R2 overlaps R3")
	e := newEnumerator(q.Conds, []int{1, 2})
	cands := [][]relation.Tuple{
		{mkTuple(7, interval.New(0, 10))},
		{mkTuple(9, interval.New(5, 20))},
	}
	n := 0
	e.run(cands, func(asg []relation.Tuple) {
		if asg[0].ID != 7 || asg[1].ID != 9 {
			t.Fatalf("unexpected assignment %v", asg)
		}
		n++
	})
	if n != 1 {
		t.Fatalf("assignments = %d, want 1", n)
	}
}

func TestEnumeratorEmptyCandidates(t *testing.T) {
	q := query.MustParse("R1 overlaps R2")
	e := newEnumerator(q.Conds, []int{0, 1})
	n := 0
	e.run([][]relation.Tuple{nil, {mkTuple(0, interval.New(0, 5))}}, func([]relation.Tuple) { n++ })
	if n != 0 {
		t.Fatalf("assignments over empty relation = %d, want 0", n)
	}
}

func TestSemijoinReduceChain(t *testing.T) {
	q := query.MustParse("R1 overlaps R2 and R2 overlaps R3")
	cands := [][]relation.Tuple{
		{mkTuple(0, interval.New(0, 10)), mkTuple(1, interval.New(100, 110))}, // id 1 has no R2 partner
		{mkTuple(0, interval.New(5, 20))},
		{mkTuple(0, interval.New(15, 30)), mkTuple(1, interval.New(500, 600))}, // id 1 dangling
	}
	out := semijoinReduce(q.Conds, []int{0, 1, 2}, cands)
	if len(out[0]) != 1 || out[0][0].ID != 0 {
		t.Fatalf("R1 survivors = %v", out[0])
	}
	if len(out[1]) != 1 || len(out[2]) != 1 || out[2][0].ID != 0 {
		t.Fatalf("survivors = %v / %v", out[1], out[2])
	}
}

func TestSemijoinReduceEmptiesAll(t *testing.T) {
	q := query.MustParse("R1 overlaps R2 and R2 overlaps R3")
	cands := [][]relation.Tuple{
		{mkTuple(0, interval.New(0, 10))},
		{mkTuple(0, interval.New(5, 20))},
		{mkTuple(0, interval.New(500, 600))}, // breaks the chain
	}
	out := semijoinReduce(q.Conds, []int{0, 1, 2}, cands)
	for i := range out {
		if len(out[i]) != 0 {
			t.Fatalf("relation %d kept %d tuples after chain break", i, len(out[i]))
		}
	}
}

// TestSemijoinExactOnTrees: on acyclic (tree) condition graphs, the
// survivors of the fixpoint are exactly the tuples participating in some
// satisfying assignment.
func TestSemijoinExactOnTrees(t *testing.T) {
	queries := []*query.Query{
		query.MustParse("R1 overlaps R2 and R2 overlaps R3"),
		query.MustParse("R1 overlaps R2 and R2 contains R3 and R3 overlaps R4"),
		query.MustParse("R2 contains R1 and R2 overlaps R3"), // star
	}
	rng := rand.New(rand.NewSource(42))
	for qi, q := range queries {
		m := len(q.Relations)
		rels := make([]int, m)
		for i := range rels {
			rels[i] = i
		}
		for trial := 0; trial < 30; trial++ {
			cands := make([][]relation.Tuple, m)
			for i := range cands {
				n := 1 + rng.Intn(12)
				for j := 0; j < n; j++ {
					s := rng.Int63n(100)
					cands[i] = append(cands[i], mkTuple(int64(j), interval.New(s, s+1+rng.Int63n(30))))
				}
			}
			survivors := semijoinReduce(q.Conds, rels, cands)
			// Brute-force participation.
			e := newEnumerator(q.Conds, rels)
			participates := make([]map[int64]bool, m)
			for i := range participates {
				participates[i] = make(map[int64]bool)
			}
			e.run(cands, func(asg []relation.Tuple) {
				for i, tp := range asg {
					participates[i][tp.ID] = true
				}
			})
			for i := range survivors {
				if len(survivors[i]) != len(participates[i]) {
					t.Fatalf("query %d trial %d: relation %d survivors %d, participants %d",
						qi, trial, i, len(survivors[i]), len(participates[i]))
				}
				for _, tp := range survivors[i] {
					if !participates[i][tp.ID] {
						t.Fatalf("query %d trial %d: tuple %d of relation %d survived but does not participate",
							qi, trial, tp.ID, i)
					}
				}
			}
		}
	}
}

func TestProjectableRightmost(t *testing.T) {
	cases := []struct {
		q    string
		want int
	}{
		{"R1 overlaps R2 and R2 overlaps R3", 2},                     // chain: R3 right-most
		{"R1 before R2 and R2 before R3", 2},                         // sequence chain
		{"R1 overlaps R2 and R3 overlaps R2", 1},                     // star into R2
		{"R1 overlaps R2 and R3 overlaps R4", -1},                    // disconnected: two maxima
		{"R1 overlaps R2 and R2 overlaps R1x", 2},                    // chain with odd names
		{"R2 containedby R1 and R2 overlaps R3", 2},                  // containedby flips order
		{"R1 starts R2 and R2 overlaps R3", 2},                       // tie-friendly predicates
		{"R1 overlaps R2 and R2 overlaps R3 and R3 overlaps R1", -1}, // cycle
	}
	for _, tc := range cases {
		q := query.MustParse(tc.q)
		if got := projectableRightmost(q); got != tc.want {
			t.Errorf("projectableRightmost(%q) = %d, want %d", tc.q, got, tc.want)
		}
	}
}

func TestSoundComponentLess(t *testing.T) {
	// Q4: C0 = {R1, R3} via overlaps, C1 = {R2}; R1 before R2 with R1's
	// direct neighbour R3 covered -> constraint sound.
	d := query.Decompose(query.MustParse("R1 before R2 and R1 overlaps R3"))
	cons := soundComponentLess(d)
	if len(cons) != 1 {
		t.Fatalf("Q4 constraints = %v, want 1", cons)
	}
	// Two colocation hops away from the sequence operand: the transitive
	// member can start arbitrarily late, so the constraint must NOT be
	// derived.
	d2 := query.Decompose(query.MustParse("A overlaps B and B overlaps B2 and A before D"))
	if cons2 := soundComponentLess(d2); len(cons2) != 0 {
		t.Fatalf("unsound constraint derived: %v", cons2)
	}
	// But if the 2-hop member is provably earlier (order edge towards the
	// operand), the constraint is sound again: B2 contains B, B contains A
	// puts B2 <= B <= A... here we make A the order maximum.
	d3 := query.Decompose(query.MustParse("B contains A and B2 contains B and A before D"))
	// Order: B < A (contains: B starts first), B2 < B. A is order-max and
	// the sequence operand: everything is provably <= A.
	if cons3 := soundComponentLess(d3); len(cons3) != 1 {
		t.Fatalf("sound constraint missed: %v", cons3)
	}
}

func TestCountBound(t *testing.T) {
	if countBound([]bool{true, false, true}) != 2 {
		t.Fatal("countBound broken")
	}
}
