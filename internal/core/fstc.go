package core

import (
	"fmt"
	"strconv"

	"intervaljoin/internal/grid"
	"intervaljoin/internal/interval"
	"intervaljoin/internal/mr"
	"intervaljoin/internal/query"
	"intervaljoin/internal/relation"
)

// FSTC — First Sequence Then Colocation — is the second naive hybrid
// approach Section 8 names: the sequence conditions are executed first with
// All-Matrix over the relations they touch, materialising a partial-
// assignment intermediate; the colocation conditions are then applied as a
// cascade of 2-way steps binding the remaining relations (each step uses
// the Figure 1 split/project strategy on the member interval the condition
// touches). Like FCTS it suffers from reading and shuffling materialised
// intermediate results, which All-Seq-Matrix avoids.
//
// Cycles: 1 (sequence matrix) + one per remaining relation.
type FSTC struct{}

// Name implements Algorithm.
func (FSTC) Name() string { return "fstc" }

// Run implements Algorithm.
func (a FSTC) Run(ctx *Context) (*Result, error) {
	opts := ctx.Opts.withDefaults(a.Name())
	if cls := ctx.Query.Classify(); cls != query.Hybrid {
		return nil, fmt.Errorf("core: fstc handles hybrid queries, got %v", cls)
	}
	if err := ctx.Stage(); err != nil {
		return nil, err
	}
	d := query.Decompose(ctx.Query)
	if d.Contradictory {
		return &Result{Algorithm: a.Name(), Metrics: mr.NewMetrics(a.Name())}, nil
	}
	part, err := ctx.makePartitioning(opts.PartitionsPerDim)
	if err != nil {
		return nil, err
	}

	// Relations touched by sequence conditions, in first-appearance order.
	var seqRels []int
	seen := make(map[int]bool)
	var seqConds []query.Condition
	for _, si := range d.SeqCondIdx {
		c := ctx.Query.Conds[si]
		seqConds = append(seqConds, c)
		for _, r := range []int{c.Left.Rel, c.Right.Rel} {
			if !seen[r] {
				seen[r] = true
				seqRels = append(seqRels, r)
			}
		}
	}
	if len(seqRels) == 0 {
		return nil, fmt.Errorf("core: fstc: hybrid query without sequence conditions")
	}

	res := &Result{Algorithm: a.Name(), Metrics: mr.NewMetrics(a.Name())}
	res.Metrics.Cycles = 0

	// Phase 1: All-Matrix over the sequence relations, emitting partial
	// assignments. Conditions checked: every query condition whose both
	// endpoints are sequence relations (sequence and colocation alike).
	inter := opts.Scratch + "/seq-inter"
	seqJob, err := a.sequenceJob(ctx, opts, part, seqRels, inter)
	if err != nil {
		return nil, err
	}
	seqJob.Meta = ctx.jobMeta(a.Name(), 1)
	m, err := ctx.Engine.Run(seqJob)
	if err != nil {
		return nil, err
	}
	res.PerCycle = append(res.PerCycle, m)
	res.Metrics.Merge(m)

	// Phase 2: cascade the remaining relations over colocation conditions.
	bound := make([]bool, len(ctx.Rels))
	for _, r := range seqRels {
		bound[r] = true
	}
	current := inter
	step := 0
	for countBound(bound) < len(ctx.Rels) {
		novel, driving, checks := nextColocStep(ctx.Query, bound)
		if novel < 0 {
			return nil, fmt.Errorf("core: fstc requires a connected query: %s", ctx.Query)
		}
		step++
		output := opts.Scratch + "/coloc-" + strconv.Itoa(step)
		last := countBound(bound) == len(ctx.Rels)-1
		if last {
			output = opts.Scratch + "/output"
		}
		job := a.colocStepJob(ctx, opts, part, current, output, novel, driving, checks, last)
		job.Meta = ctx.jobMeta(a.Name(), step+1)
		m, err := ctx.Engine.Run(job)
		if err != nil {
			return nil, err
		}
		res.PerCycle = append(res.PerCycle, m)
		res.Metrics.Merge(m)
		bound[novel] = true
		current = output
	}
	if err := readOutput(ctx, current, res); err != nil {
		return nil, err
	}
	res.SortTuples()
	return res, nil
}

// sequenceJob runs the multi-way join over the sequence relations on a
// consistent-cell grid (one dimension per sequence relation), checking all
// conditions local to those relations.
func (FSTC) sequenceJob(ctx *Context, opts Options, part interval.Partitioning,
	seqRels []int, output string) (mr.Job, error) {

	dim := make(map[int]int, len(seqRels))
	for i, r := range seqRels {
		dim[r] = i
	}
	o := part.Len()
	g, err := grid.NewUniform(len(seqRels), o)
	if err != nil {
		return mr.Job{}, err
	}
	// Local conditions and order constraints among sequence relations.
	var conds []query.Condition
	var cons []grid.Less
	for _, c := range ctx.Query.Conds {
		di, iok := dim[c.Left.Rel]
		dj, jok := dim[c.Right.Rel]
		if !iok || !jok {
			continue
		}
		conds = append(conds, c)
		if c.Pred.IsSequence() {
			if c.Pred.LessThanOrder() == interval.LeftLess {
				cons = append(cons, grid.Less{A: di, B: dj})
			} else {
				cons = append(cons, grid.Less{A: dj, B: di})
			}
		}
	}
	inputs := make([]mr.Input, len(seqRels))
	for i, r := range seqRels {
		inputs[i] = ctx.relInput(r, r)
	}

	// Shared across reduce calls: the plan is static and per-run state is
	// pooled inside the enumerator. lvl maps a global relation tag to its
	// grid dimension / binding level (-1 for colocation-only relations).
	seqEnum := newEnumerator(conds, seqRels).withTracer(ctx.Engine.Tracer())
	lvl := make([]int, len(ctx.Rels))
	for r := range lvl {
		lvl[r] = -1
	}
	for i, r := range seqRels {
		lvl[r] = i
	}

	return mr.Job{
		Name:   opts.Scratch + "/sequence",
		Inputs: inputs,
		Map: func(tag int, record string, emit mr.Emitter) error {
			t, err := relation.DecodeTuple(record)
			if err != nil {
				return err
			}
			q := part.Project(t.Key())
			bounds := g.FreeBounds()
			bounds[dim[tag]] = grid.Bound{Min: q, Max: q}
			enc := encodeTagged(tag, t)
			g.EnumerateRuns(bounds, cons, func(lo, hi int64) { emit.EmitRange(lo, hi, enc) })
			return nil
		},
		Reduce: func(key int64, values []string, write func(string) error) error {
			var outErr error
			err := seqEnum.runTagged(values, lvl, func(asg []relation.Tuple) {
				if outErr != nil {
					return
				}
				pa := make(partialAssignment, len(asg))
				for i, t := range asg {
					pa[i] = boundTuple{rel: seqRels[i], tuple: t}
				}
				outErr = write(encodePartial(pa))
			})
			if err != nil {
				return err
			}
			return outErr
		},
		Output:     output,
		SortValues: opts.SortValues,
	}, nil
}

// nextColocStep picks the next unbound relation reachable through a
// condition from the bound set, returning the driving condition and every
// condition checkable once it binds.
func nextColocStep(q *query.Query, bound []bool) (novel int, driving query.Condition, checks []query.Condition) {
	for _, c := range q.Conds {
		li, ri := c.Left.Rel, c.Right.Rel
		switch {
		case bound[li] && !bound[ri]:
			novel = ri
		case bound[ri] && !bound[li]:
			novel = li
		default:
			continue
		}
		driving = c
		for _, c2 := range q.Conds {
			l2, r2 := c2.Left.Rel, c2.Right.Rel
			if (l2 == novel && bound[r2]) || (r2 == novel && bound[l2]) {
				checks = append(checks, c2)
			}
		}
		return novel, driving, checks
	}
	return -1, query.Condition{}, nil
}

// colocStepJob binds one new relation to the partial assignments via the
// Figure 1 strategy of the driving condition.
func (FSTC) colocStepJob(ctx *Context, opts Options, part interval.Partitioning,
	current, output string, novel int, driving query.Condition, checks []query.Condition, last bool) mr.Job {

	boundIsLeft := driving.Right.Rel == novel
	strategy := interval.JoinStrategy(driving.Pred)
	boundOp, novelOp := strategy.Left, strategy.Right
	boundRel := driving.Left.Rel
	if !boundIsLeft {
		boundOp, novelOp = novelOp, boundOp
		boundRel = driving.Right.Rel
	}

	step := cascadeStep{existing: boundRel, novel: novel, driving: driving, checkConds: checks}
	return mr.Job{
		Name: opts.Scratch + "/coloc-step-" + strconv.Itoa(novel),
		Inputs: []mr.Input{
			{File: current, Tag: intermediateTag},
			ctx.relInput(novel, novel),
		},
		Map: func(tag int, record string, emit mr.Emitter) error {
			if tag == intermediateTag {
				pa, err := decodePartial(record)
				if err != nil {
					return err
				}
				first, lastP := part.Apply(boundOp, pa.intervalOf(boundRel))
				emit.EmitRange(int64(first), int64(lastP), record)
				return nil
			}
			t, err := relation.DecodeTuple(record)
			if err != nil {
				return err
			}
			first, lastP := part.Apply(novelOp, t.Key())
			emit.EmitRange(int64(first), int64(lastP), encodePartial(partialAssignment{{rel: novel, tuple: t}}))
			return nil
		},
		Reduce: func(key int64, values []string, write func(string) error) error {
			var partials []partialAssignment
			var tuples []relation.Tuple
			for _, v := range values {
				pa, err := decodePartial(v)
				if err != nil {
					return err
				}
				if len(pa) == 1 && pa[0].rel == novel {
					tuples = append(tuples, pa[0].tuple)
					continue
				}
				partials = append(partials, pa)
			}
			for _, pa := range partials {
				for _, t := range tuples {
					if !satisfiesStep(pa, t, step) {
						continue
					}
					merged := append(append(partialAssignment{}, pa...), boundTuple{rel: novel, tuple: t})
					var rec string
					if last {
						out := make(OutputTuple, len(ctx.Rels))
						for i := range out {
							out[i] = -1
						}
						for _, bt := range merged {
							out[bt.rel] = bt.tuple.ID
						}
						rec = out.Key()
					} else {
						rec = encodePartial(merged)
					}
					if err := write(rec); err != nil {
						return err
					}
				}
			}
			return nil
		},
		Output:     output,
		SortValues: opts.SortValues,
	}
}
