package core

import (
	"fmt"

	"intervaljoin/internal/grid"
	"intervaljoin/internal/interval"
	"intervaljoin/internal/mr"
	"intervaljoin/internal/query"
	"intervaljoin/internal/relation"
)

// SeqMatrix is All-Seq-Matrix (Section 8.1): hybrid queries run in two MR
// cycles. Cycle 1 runs the RCCIS marking per colocation component (one job,
// keyed by component x partition). Cycle 2 routes every tuple into an
// l-dimensional consistent-cell grid — dimension k belongs to component k;
// a tuple is pinned to its start partition along its component's dimension
// (or to the partitions at and after it when RCCIS flagged it for
// replication, condition E2) — and each cell joins what it receives. An
// output tuple is emitted at the unique cell whose k-th coordinate is the
// start partition of the right-most interval among its component-k members.
//
// Deviation from the paper (documented in DESIGN.md): the paper prunes cells
// with i_j > i_k for every component order C_j < C_k. That constraint is
// unsound for components where an interval two colocation hops away from
// the sequence condition's operand can start after the other component's
// intervals; we therefore add the constraint only when a static analysis
// proves every member of C_j must start before C_k's right-most member.
// All the paper's example queries pass the analysis and keep full pruning.
type SeqMatrix struct{}

// Name implements Algorithm.
func (SeqMatrix) Name() string { return "all-seq-matrix" }

// Run implements Algorithm.
func (s SeqMatrix) Run(ctx *Context) (*Result, error) {
	opts := ctx.Opts.withDefaults(s.Name())
	if cls := ctx.Query.Classify(); cls == query.General {
		return nil, fmt.Errorf("core: all-seq-matrix handles single-attribute queries, got %v", cls)
	}
	if err := ctx.Stage(); err != nil {
		return nil, err
	}
	d := query.Decompose(ctx.Query)
	if d.Contradictory {
		// Two sequence conditions enforce opposite orders between the same
		// components: the output is provably empty (Section 9).
		return &Result{Algorithm: s.Name(), Metrics: mr.NewMetrics(s.Name())}, nil
	}
	part, err := ctx.makePartitioning(opts.PartitionsPerDim)
	if err != nil {
		return nil, err
	}
	marked := opts.Scratch + "/marked"
	markJob := componentMarkJob(ctx, opts, part, d, marked)
	markJob.Meta = ctx.jobMeta(s.Name(), 1)
	joinJob, err := componentJoinJob(ctx, opts, part, d, marked, opts.Scratch+"/output", nil)
	if err != nil {
		return nil, err
	}
	joinJob.Meta = ctx.jobMeta(s.Name(), 2)
	perCycle, agg, replicated, err := runMarkedChain(ctx, opts, marked, markJob, mr.Stage{Job: joinJob})
	if err != nil {
		return nil, err
	}
	res := &Result{Algorithm: s.Name(), Metrics: agg, PerCycle: perCycle, ReplicatedIntervals: replicated}
	if err := readOutput(ctx, joinJob.Output, res); err != nil {
		return nil, err
	}
	res.SortTuples()
	return res, nil
}

// compOfRel maps relation index -> component id for single-attribute
// decompositions (every relation has exactly one vertex, at attribute 0).
func compOfRel(d *query.Decomposition) map[int]int {
	m := make(map[int]int)
	for op, ci := range d.CompOf {
		m[op.Rel] = ci
	}
	return m
}

// componentMarkJob builds the cycle-1 job: split every relation within its
// component's partitioning (key = component*o + partition) and run the RCCIS
// marking per (component, partition). Its output holds every tuple exactly
// once, flagged for replication.
func componentMarkJob(ctx *Context, opts Options, part interval.Partitioning,
	d *query.Decomposition, output string) mr.Job {

	comp := compOfRel(d)
	o := int64(part.Len())
	inputs := make([]mr.Input, len(ctx.Rels))
	for ri := range ctx.Rels {
		inputs[ri] = ctx.relInput(ri, ri)
	}

	// Per-component reducers, built once.
	reducers := make([]mr.ReduceFunc, len(d.Components))
	for ci := range d.Components {
		rels := make([]int, 0, len(d.Components[ci].Vertices))
		for _, v := range d.Components[ci].Vertices {
			rels = append(rels, v.Rel)
		}
		reducers[ci] = markReducerAttrs(d.SubQueryConds(ci), part, rels, uniformAttr0(rels))
	}

	return mr.Job{
		Name:   opts.Scratch + "/mark",
		Inputs: inputs,
		Map: func(tag int, record string, emit mr.Emitter) error {
			t, err := relation.DecodeTuple(record)
			if err != nil {
				return err
			}
			ci := comp[tag]
			first, last := part.Split(t.Key())
			// Keys within one component block are contiguous.
			emit.EmitRange(int64(ci)*o+int64(first), int64(ci)*o+int64(last), encodeTagged(tag, t))
			return nil
		},
		Reduce: func(key int64, values []string, write func(string) error) error {
			ci := int(key / o)
			partKey := key % o
			return reducers[ci](partKey, values, write)
		},
		Output:     output,
		SortValues: opts.SortValues,
	}
}

// componentJoinJob builds the final routing-and-join cycle shared by
// All-Seq-Matrix and PASM. pruned, when non-nil, maps relation -> set of
// tuple ids that cannot contribute to any output and are dropped map-side.
func componentJoinJob(ctx *Context, opts Options, part interval.Partitioning,
	d *query.Decomposition, marked, output string, pruned []map[int64]bool) (mr.Job, error) {

	comp := compOfRel(d)
	l := d.NumComponents()
	o := part.Len()
	g, err := grid.NewUniform(l, o)
	if err != nil {
		return mr.Job{}, err
	}
	cons := soundComponentLess(d)
	m := len(ctx.Rels)

	mapFn := func(_ int, record string, emit mr.Emitter) error {
		rel, replicate, t, err := decodeFlagged(record)
		if err != nil {
			return err
		}
		if pruned != nil && pruned[rel] != nil && pruned[rel][t.ID] {
			return nil
		}
		k := comp[rel]
		q := part.Project(t.Key())
		bounds := g.FreeBounds()
		if replicate {
			bounds[k] = grid.Bound{Min: q, Max: o - 1} // E2, replicated
		} else {
			bounds[k] = grid.Bound{Min: q, Max: q} // E2, projected
		}
		enc := encodeTagged(rel, t)
		g.EnumerateRuns(bounds, cons, func(lo, hi int64) { emit.EmitRange(lo, hi, enc) })
		return nil
	}

	// Shared across reduce calls: the plan is static and per-run state is
	// pooled inside the enumerator.
	e := newEnumerator(ctx.Query.Conds, allRelations(m)).withTracer(ctx.Engine.Tracer())
	lvl := identityLevels(m)
	reduceFn := func(key int64, values []string, write func(string) error) error {
		coord := g.Coord(key, nil)
		var outErr error
		err := e.runTagged(values, lvl, func(asg []relation.Tuple) {
			if outErr != nil {
				return
			}
			// Exactly-once: this cell's coordinate along every component
			// dimension must equal the start partition of the component's
			// right-most member.
			for ci := range d.Components {
				maxStart := interval.Point(0)
				first := true
				for _, v := range d.Components[ci].Vertices {
					s := asg[v.Rel].Key().Start
					if first || s > maxStart {
						maxStart, first = s, false
					}
				}
				if part.IndexOf(maxStart) != coord[ci] {
					return
				}
			}
			out := make(OutputTuple, len(asg))
			for i, t := range asg {
				out[i] = t.ID
			}
			outErr = write(out.Key())
		})
		if err != nil {
			return err
		}
		return outErr
	}

	return mr.Job{
		Name:       opts.Scratch + "/join",
		Inputs:     []mr.Input{{File: marked}},
		Map:        mapFn,
		Reduce:     reduceFn,
		Output:     output,
		SortValues: opts.SortValues,
	}, nil
}

// soundComponentLess derives the grid consistency constraints (E1) that are
// provably sound. For a sequence condition a-before-b with a in component j
// and b in component k, the constraint i_j <= i_k is sound when every vertex
// of component j provably starts no later than b starts in every satisfying
// assignment. The proof rules are:
//
//	(1) a itself: end(a) < start(b) implies start(a) < start(b);
//	(2) any vertex with a colocation condition directly to a shares a
//	    point with a, so it starts at or before end(a) < start(b);
//	(3) any vertex that is in less-than order with an already-proven
//	    vertex starts no later than it.
//
// Since start(b) <= the start of component k's right-most member, covered
// components give max-start(C_j) <= max-start(C_k), i.e. q_j <= q_k.
func soundComponentLess(d *query.Decomposition) []grid.Less {
	type pair struct{ a, b int }
	seen := make(map[pair]bool)
	var out []grid.Less
	for _, si := range d.SeqCondIdx {
		c := d.Query.Conds[si]
		var aOp, bOp query.Operand
		if c.Pred.LessThanOrder() == interval.LeftLess {
			aOp, bOp = c.Left, c.Right
		} else {
			aOp, bOp = c.Right, c.Left
		}
		j, k := d.CompOf[aOp], d.CompOf[bOp]
		if j == k || seen[pair{j, k}] {
			continue
		}
		if componentCoveredBy(d, j, aOp) {
			seen[pair{j, k}] = true
			out = append(out, grid.Less{A: j, B: k})
		}
	}
	return out
}

// componentCoveredBy reports whether every vertex of component ci is proven
// to start no later than start(b) given that a's end precedes start(b),
// using the three rules of soundComponentLess.
func componentCoveredBy(d *query.Decomposition, ci int, a query.Operand) bool {
	verts := d.Components[ci].Vertices
	proven := map[query.Operand]bool{a: true}
	// Rule 2: direct colocation neighbours of a.
	conds := d.SubQueryConds(ci)
	for _, c := range conds {
		if c.Left == a {
			proven[c.Right] = true
		}
		if c.Right == a {
			proven[c.Left] = true
		}
	}
	// Rule 3: close backwards along less-than order edges to a fixpoint.
	for changed := true; changed; {
		changed = false
		for _, c := range conds {
			var lesser, greater query.Operand
			if c.Pred.LessThanOrder() == interval.LeftLess {
				lesser, greater = c.Left, c.Right
			} else {
				lesser, greater = c.Right, c.Left
			}
			if proven[greater] && !proven[lesser] {
				proven[lesser] = true
				changed = true
			}
		}
	}
	for _, v := range verts {
		if !proven[v] {
			return false
		}
	}
	return true
}
