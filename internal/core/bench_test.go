package core

import (
	"math/rand"
	"testing"

	"intervaljoin/internal/dfs"
	"intervaljoin/internal/interval"
	"intervaljoin/internal/mr"
	"intervaljoin/internal/query"
	"intervaljoin/internal/relation"
)

func benchCands(n int) [][]relation.Tuple {
	rng := rand.New(rand.NewSource(1))
	mk := func() []relation.Tuple {
		out := make([]relation.Tuple, n)
		for i := range out {
			s := rng.Int63n(100_000)
			out[i] = mkTuple(int64(i), interval.New(s, s+rng.Int63n(100)))
		}
		return out
	}
	return [][]relation.Tuple{mk(), mk(), mk()}
}

// BenchmarkEnumeratorChain measures the reduce-side join core: a 3-way
// overlaps chain over sorted range-pruned candidate lists.
func BenchmarkEnumeratorChain(b *testing.B) {
	q := query.MustParse("R1 overlaps R2 and R2 overlaps R3")
	cands := benchCands(2_000)
	e := newEnumerator(q.Conds, []int{0, 1, 2})
	b.ReportAllocs()
	b.ResetTimer()
	count := 0
	for i := 0; i < b.N; i++ {
		e.run(cands, func([]relation.Tuple) { count++ })
	}
	b.ReportMetric(float64(count)/float64(b.N), "pairs/op")
}

// BenchmarkEnumeratorSequence: a before-chain, whose output is much denser.
func BenchmarkEnumeratorSequence(b *testing.B) {
	q := query.MustParse("R1 before R2 and R2 before R3")
	cands := benchCands(60)
	e := newEnumerator(q.Conds, []int{0, 1, 2})
	b.ReportAllocs()
	b.ResetTimer()
	count := 0
	for i := 0; i < b.N; i++ {
		e.run(cands, func([]relation.Tuple) { count++ })
	}
	b.ReportMetric(float64(count)/float64(b.N), "pairs/op")
}

// BenchmarkEnumeratorMixed covers the probe fallback: a query mixing
// colocation and sequence predicates on the same level so the sweep windows
// degrade gracefully to binary-searched bounds.
func BenchmarkEnumeratorMixed(b *testing.B) {
	q := query.MustParse("R1 overlaps R2 and R1 before R3 and R2 overlaps R3")
	cands := benchCands(700)
	e := newEnumerator(q.Conds, []int{0, 1, 2})
	b.ReportAllocs()
	b.ResetTimer()
	count := 0
	for i := 0; i < b.N; i++ {
		e.run(cands, func([]relation.Tuple) { count++ })
	}
	b.ReportMetric(float64(count)/float64(b.N), "pairs/op")
}

// benchReduceKernel measures one whole reduce task through the columnar
// kernel: tagged-record decode into the arena, endpoint-column seal, and
// the specialized sweep over a 3-way overlaps chain. n is the per-relation
// candidate-list length; density is held constant as n scales so the three
// sizes expose the decode-, seal- and sweep-dominated regimes.
func benchReduceKernel(b *testing.B, n int) {
	q := query.MustParse("R1 overlaps R2 and R2 overlaps R3")
	rng := rand.New(rand.NewSource(4))
	values := make([]string, 0, 3*n)
	for rel := 0; rel < 3; rel++ {
		for i := 0; i < n; i++ {
			s := rng.Int63n(int64(n) * 20)
			values = append(values, encodeTagged(rel, mkTuple(int64(i), interval.New(s, s+rng.Int63n(40)))))
		}
	}
	e := newEnumerator(q.Conds, []int{0, 1, 2})
	lvl := identityLevels(3)
	b.ReportAllocs()
	b.ResetTimer()
	count := 0
	for i := 0; i < b.N; i++ {
		if err := e.runTagged(values, lvl, func([]relation.Tuple) { count++ }); err != nil {
			b.Fatal(err)
		}
	}
	sweep, merge, generic := e.kernelHitCounts()
	b.ReportMetric(float64(count)/float64(b.N), "pairs/op")
	b.ReportMetric(float64(sweep)/float64(b.N), "sweep/op")
	b.ReportMetric(float64(merge)/float64(b.N), "merge/op")
	b.ReportMetric(float64(generic)/float64(b.N), "generic/op")
}

func BenchmarkReduceKernel16(b *testing.B)   { benchReduceKernel(b, 16) }
func BenchmarkReduceKernel256(b *testing.B)  { benchReduceKernel(b, 256) }
func BenchmarkReduceKernel4096(b *testing.B) { benchReduceKernel(b, 4096) }

// BenchmarkSemijoinReduce measures the RCCIS marking primitive.
func BenchmarkSemijoinReduce(b *testing.B) {
	q := query.MustParse("R1 overlaps R2 and R2 overlaps R3")
	cands := benchCands(2_000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		semijoinReduce(q.Conds, []int{0, 1, 2}, cands)
	}
}

// BenchmarkMarkCrossingParticipants measures RCCIS cycle-1 decision making
// for one partition.
func BenchmarkMarkCrossingParticipants(b *testing.B) {
	q := query.MustParse("R1 overlaps R2 and R2 overlaps R3")
	lists := benchCands(2_000)
	cands := map[int][]relation.Tuple{0: lists[0], 1: lists[1], 2: lists[2]}
	part := interval.NewUniform(0, 100_100, 16)
	rels := []int{0, 1, 2}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		markCrossingParticipants(q.Conds, part, 4, rels, uniformAttr0(rels), cands)
	}
}

// BenchmarkEncodeTagged measures the hot map-side record codec; the point of
// interest is allocs/op (one exact-size string per record in steady state).
func BenchmarkEncodeTagged(b *testing.B) {
	t := relation.Tuple{ID: 123456, Attrs: []interval.Interval{
		interval.New(987654, 998765), interval.New(12, 64000),
	}}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s := encodeTagged(7, t)
		if len(s) == 0 {
			b.Fatal("empty record")
		}
	}
}

// BenchmarkEncodeVector measures the Gen-Matrix flag-vector codec.
func BenchmarkEncodeVector(b *testing.B) {
	t := relation.Tuple{ID: 123456, Attrs: []interval.Interval{
		interval.New(987654, 998765), interval.New(12, 64000),
	}}
	flags := []bool{true, false, true, true}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s := encodeVector(3, flags, t)
		if len(s) == 0 {
			b.Fatal("empty record")
		}
	}
}

// benchChainAlg runs a multi-cycle algorithm end-to-end on a fresh engine,
// either pipelined (the default) or with materialised cycle boundaries
// (sequential RunChain, Hadoop parity). The delta between the two is what
// the pipelined executor buys on a whole chain.
func benchChainAlg(b *testing.B, alg Algorithm, materialize bool) {
	b.Helper()
	rng := rand.New(rand.NewSource(2))
	q := query.MustParse("R1 overlaps R2 and R2 overlaps R3")
	rels := make([]*relation.Relation, len(q.Relations))
	for i, s := range q.Relations {
		rels[i] = randomRelation(rng, s.Name, 20_000, 400_000, 12)
	}
	opts := Options{Partitions: 16, Materialize: materialize}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		// Disk-backed store: cycle boundaries cost what they cost on a real
		// cluster filesystem, which is exactly what pipelining elides.
		store, err := dfs.NewDisk(b.TempDir())
		if err != nil {
			b.Fatal(err)
		}
		engine := mr.NewEngine(mr.Config{Store: store})
		ctx, err := NewContext(engine, q, rels, opts)
		if err != nil {
			b.Fatal(err)
		}
		b.StartTimer()
		res, err := alg.Run(ctx)
		if err != nil {
			b.Fatal(err)
		}
		if len(res.Tuples) == 0 {
			b.Fatal("empty join output")
		}
	}
}

// benchShuffleAlg runs a replication-heavy sequence join and reports the
// logical vs physical shuffle volume: logicalB/op is what a per-partition
// emit ships (one record copy per covered reducer), physB/op is what the
// range-coalesced shuffle actually stores. The Expanded variants run with
// ExpandRangeEmits for the pre-coalescing baseline, so logicalB == physB
// there and the coalesced physB/op against it is the measured saving.
func benchShuffleAlg(b *testing.B, alg Algorithm, expand bool) {
	b.Helper()
	rng := rand.New(rand.NewSource(3))
	q := query.MustParse("R1 before R2 and R2 before R3")
	rels := make([]*relation.Relation, len(q.Relations))
	for i, s := range q.Relations {
		rels[i] = randomRelation(rng, s.Name, 60, 400_000, 12)
	}
	opts := Options{Partitions: 16, PartitionsPerDim: 16}
	b.ReportAllocs()
	b.ResetTimer()
	var m *mr.Metrics
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		store := dfs.NewMem()
		engine := mr.NewEngine(mr.Config{Store: store, ExpandRangeEmits: expand})
		ctx, err := NewContext(engine, q, rels, opts)
		if err != nil {
			b.Fatal(err)
		}
		b.StartTimer()
		res, err := alg.Run(ctx)
		if err != nil {
			b.Fatal(err)
		}
		if len(res.Tuples) == 0 {
			b.Fatal("empty join output")
		}
		m = res.Metrics
	}
	b.ReportMetric(float64(m.IntermediateBytes), "logicalB/op")
	b.ReportMetric(float64(m.PhysicalBytes), "physB/op")
	b.ReportMetric(m.ReplicationFactor(), "repl")
}

func BenchmarkShuffleAllRep(b *testing.B)            { benchShuffleAlg(b, AllRep{}, false) }
func BenchmarkShuffleAllRepExpanded(b *testing.B)    { benchShuffleAlg(b, AllRep{}, true) }
func BenchmarkShuffleAllMatrix(b *testing.B)         { benchShuffleAlg(b, AllMatrix{}, false) }
func BenchmarkShuffleAllMatrixExpanded(b *testing.B) { benchShuffleAlg(b, AllMatrix{}, true) }

func BenchmarkChainRCCISSequential(b *testing.B) { benchChainAlg(b, RCCIS{}, true) }
func BenchmarkChainRCCISPipelined(b *testing.B)  { benchChainAlg(b, RCCIS{}, false) }
func BenchmarkChainPASMSequential(b *testing.B)  { benchChainAlg(b, PASM{}, true) }
func BenchmarkChainPASMPipelined(b *testing.B)   { benchChainAlg(b, PASM{}, false) }
