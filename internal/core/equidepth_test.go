package core

import (
	"math/rand"
	"testing"

	"intervaljoin/internal/dfs"
	"intervaljoin/internal/interval"
	"intervaljoin/internal/mr"
	"intervaljoin/internal/query"
	"intervaljoin/internal/relation"
	"intervaljoin/internal/workload"
)

// zipfRelation builds a heavily skewed single-attribute relation.
func zipfRelation(t testing.TB, name string, n int, seed int64) *relation.Relation {
	t.Helper()
	r, err := workload.Generate(workload.Spec{
		Name: name, NumIntervals: n,
		StartDist: workload.Zipf, LengthDist: workload.Uniform,
		TMin: 0, TMax: 10_000, IMin: 1, IMax: 50, Seed: seed,
	})
	if err != nil {
		t.Fatal(err)
	}
	return r
}

// TestEquiDepthCorrectness: every algorithm must produce the oracle output
// under quantile partitioning, on skewed data, across query classes.
func TestEquiDepthCorrectness(t *testing.T) {
	cases := []struct {
		qs   string
		algs []Algorithm
	}{
		{"R1 overlaps R2 and R2 overlaps R3", []Algorithm{RCCIS{}, AllRep{}, Cascade{}}},
		{"R1 before R2 and R2 before R3", []Algorithm{AllMatrix{}, Cascade{MatrixSteps: true}}},
		{"R1 before R2 and R1 overlaps R3", []Algorithm{SeqMatrix{}, PASM{}, FCTS{}}},
	}
	for _, tc := range cases {
		q := query.MustParse(tc.qs)
		rels := make([]*relation.Relation, len(q.Relations))
		for i, s := range q.Relations {
			rels[i] = zipfRelation(t, s.Name, 60, int64(i+1))
		}
		opts := Options{Partitions: 6, PartitionsPerDim: 4, EquiDepth: true}
		crossValidate(t, q, rels, opts, tc.algs...)
	}
	// Gen-Matrix with per-component equi-depth.
	q := query.MustParse("R1.I overlaps R2.I and R1.A = R2.A")
	rng := rand.New(rand.NewSource(5))
	mk := func(name string) *relation.Relation {
		r := relation.New(relation.NewSchema(name, "I", "A"))
		for i := 0; i < 60; i++ {
			s := rng.Int63n(100) // clustered starts
			r.Append(interval.New(s, s+rng.Int63n(40)), interval.PointInterval(rng.Int63n(4)))
		}
		return r
	}
	crossValidate(t, q, []*relation.Relation{mk("R1"), mk("R2")},
		Options{Partitions: 5, PartitionsPerDim: 4, EquiDepth: true}, GenMatrix{})
}

// TestEquiDepthImprovesBalanceOnSkew: on zipf-skewed data, quantile
// boundaries must cut the load imbalance of the split/replicate routing
// compared with uniform-width partitions.
func TestEquiDepthImprovesBalanceOnSkew(t *testing.T) {
	// Zipf clustering makes the hot region's join output explode
	// combinatorially, so the relations stay small and the intervals
	// short; the routing imbalance signal is already clear at this size.
	q := query.MustParse("R1 overlaps R2 and R2 overlaps R3")
	rels := make([]*relation.Relation, 3)
	for i := range rels {
		r, err := workload.Generate(workload.Spec{
			Name: q.Relations[i].Name, NumIntervals: 1200,
			StartDist: workload.Zipf, LengthDist: workload.Uniform,
			TMin: 0, TMax: 10_000, IMin: 1, IMax: 10, Seed: int64(i + 1),
		})
		if err != nil {
			t.Fatal(err)
		}
		rels[i] = r
	}
	run := func(equiDepth bool) float64 {
		engine := mr.NewEngine(mr.Config{Store: dfs.NewMem(), Workers: 4})
		ctx, err := NewContext(engine, q, rels, Options{Partitions: 12, EquiDepth: equiDepth})
		if err != nil {
			t.Fatal(err)
		}
		res, err := (RCCIS{}).Run(ctx)
		if err != nil {
			t.Fatal(err)
		}
		return res.Metrics.LoadImbalance()
	}
	uniform := run(false)
	equi := run(true)
	if equi >= uniform {
		t.Fatalf("equi-depth imbalance %.2f not below uniform %.2f on zipf data", equi, uniform)
	}
	// The skew must actually be a problem for uniform partitioning.
	if uniform < 2 {
		t.Fatalf("uniform imbalance only %.2f — workload not skewed enough to be meaningful", uniform)
	}
}
