package core

import (
	"fmt"
	"strconv"
	"strings"

	"intervaljoin/internal/interval"
	"intervaljoin/internal/mr"
	"intervaljoin/internal/query"
	"intervaljoin/internal/relation"
)

// PASM is Pruned-All-Seq-Matrix (Section 8.2): All-Seq-Matrix extended with
// a pruning cycle. A tuple that does not appear in the output of its
// colocation component's sub-query cannot appear in the hybrid query's
// output, so it need not be routed into the grid at all.
//
// Three MR cycles:
//
//  1. the RCCIS marking per component (same as All-Seq-Matrix cycle 1);
//  2. per component and partition, replicate/project the flagged tuples in
//     one dimension and decide, for every tuple at its home partition,
//     whether it participates in any component sub-query output. The
//     pruned ids are published as a side file (Hadoop would use the
//     distributed cache);
//  3. the All-Seq-Matrix grid join with pruned tuples dropped map-side.
//
// When pruning removes little, the extra cycle makes PASM slightly slower
// than All-Seq-Matrix — exactly the trade-off Table 3 explores.
type PASM struct{}

// Name implements Algorithm.
func (PASM) Name() string { return "pasm" }

// Run implements Algorithm.
func (a PASM) Run(ctx *Context) (*Result, error) {
	opts := ctx.Opts.withDefaults(a.Name())
	if cls := ctx.Query.Classify(); cls == query.General {
		return nil, fmt.Errorf("core: pasm handles single-attribute queries, got %v", cls)
	}
	if err := ctx.Stage(); err != nil {
		return nil, err
	}
	d := query.Decompose(ctx.Query)
	if d.Contradictory {
		return &Result{Algorithm: a.Name(), Metrics: mr.NewMetrics(a.Name())}, nil
	}
	part, err := ctx.makePartitioning(opts.PartitionsPerDim)
	if err != nil {
		return nil, err
	}

	marked := opts.Scratch + "/marked"
	prunedFile := opts.Scratch + "/pruned"
	markJob := componentMarkJob(ctx, opts, part, d, marked)
	markJob.Meta = ctx.jobMeta(a.Name(), 1)
	pJob := pruneJob(ctx, opts, part, d, marked, prunedFile)
	pJob.Meta = ctx.jobMeta(a.Name(), 2)
	output := opts.Scratch + "/output"

	var (
		perCycle     []*mr.Metrics
		agg          *mr.Metrics
		prunedCounts map[int]int64
		replicated   int64
	)
	if opts.Materialize {
		perCycle, agg, err = ctx.Engine.RunChain(markJob, pJob)
		if err != nil {
			return nil, err
		}
		pruned, counts, err := loadPruned(ctx, prunedFile, len(ctx.Rels))
		if err != nil {
			return nil, err
		}
		prunedCounts = counts
		joinJob, err := componentJoinJob(ctx, opts, part, d, marked, output, pruned)
		if err != nil {
			return nil, err
		}
		joinJob.Meta = ctx.jobMeta(a.Name(), 3)
		m, err := ctx.Engine.Run(joinJob)
		if err != nil {
			return nil, err
		}
		perCycle = append(perCycle, m)
		agg.Merge(m)
		replicated, err = countFlagged(ctx, marked)
		if err != nil {
			return nil, err
		}
	} else {
		// Pipelined: the marking streams into the prune cycle (and is
		// still materialised because the join cycle re-reads it), the
		// prune records never touch the store — a tap fills the id sets
		// the join cycle's map consults — and the prune→join boundary is
		// a barrier, so the sets are complete before any join map runs.
		pruned := make([]map[int64]bool, len(ctx.Rels))
		prunedCounts = make(map[int]int64)
		pJob.Output = ""
		joinJob, err := componentJoinJob(ctx, opts, part, d, marked, output, pruned)
		if err != nil {
			return nil, err
		}
		joinJob.Meta = ctx.jobMeta(a.Name(), 3)
		perCycle, agg, err = ctx.Engine.RunPipeline(
			mr.Stage{Job: markJob, Tap: replicateFlagTap(&replicated)},
			mr.Stage{Job: pJob, Tap: prunedTap(pruned, prunedCounts)},
			mr.Stage{Job: joinJob},
		)
		if err != nil {
			return nil, err
		}
	}

	res := &Result{
		Algorithm:           a.Name(),
		Metrics:             agg,
		PerCycle:            perCycle,
		PrunedIntervals:     prunedCounts,
		ReplicatedIntervals: replicated,
	}
	if err := readOutput(ctx, output, res); err != nil {
		return nil, err
	}
	res.SortTuples()
	return res, nil
}

// prunedTap collects the prune records streaming out of cycle 2 into the
// per-relation id sets the join cycle's map consults — the pipelined
// stand-in for loadPruned's distributed-cache read. Malformed records are
// impossible by construction (the tap sees exactly what the prune reducer
// wrote) and are ignored.
func prunedTap(pruned []map[int64]bool, counts map[int]int64) func(string) {
	return func(rec string) {
		comma := strings.IndexByte(rec, ',')
		if comma < 0 {
			return
		}
		rel, err := strconv.Atoi(rec[:comma])
		if err != nil || rel < 0 || rel >= len(pruned) {
			return
		}
		id, err := strconv.ParseInt(rec[comma+1:], 10, 64)
		if err != nil {
			return
		}
		if pruned[rel] == nil {
			pruned[rel] = make(map[int64]bool)
		}
		if !pruned[rel][id] {
			pruned[rel][id] = true
			counts[rel]++
		}
	}
}

// pruneJob builds PASM's cycle 2. Key space: component*o + partition. Each
// reducer receives the component's tuples routed exactly as RCCIS cycle 2
// would route them in one dimension, and decides for every tuple whose home
// partition this is whether it participates in any output of the
// component's colocation sub-query. Non-participating tuples are published
// as "rel,id" prune records.
//
// The decision is exact for unreplicated tuples (all assignments containing
// them are local to their home partition) and conservative (never pruned)
// for replicated ones, which are few by RCCIS's construction. Singleton
// components are skipped entirely: their sub-query output is the relation
// itself, so nothing can be pruned.
func pruneJob(ctx *Context, opts Options, part interval.Partitioning,
	d *query.Decomposition, marked, output string) mr.Job {

	comp := compOfRel(d)
	o := int64(part.Len())
	multi := make(map[int]bool) // components with >1 vertex
	for ci := range d.Components {
		if len(d.Components[ci].Vertices) > 1 {
			multi[ci] = true
		}
	}
	compRels := make([][]int, len(d.Components))
	compConds := make([][]query.Condition, len(d.Components))
	for ci := range d.Components {
		for _, v := range d.Components[ci].Vertices {
			compRels[ci] = append(compRels[ci], v.Rel)
		}
		compConds[ci] = d.SubQueryConds(ci)
	}

	return mr.Job{
		Name:   opts.Scratch + "/prune",
		Inputs: []mr.Input{{File: marked}},
		Map: func(_ int, record string, emit mr.Emitter) error {
			rel, replicate, t, err := decodeFlagged(record)
			if err != nil {
				return err
			}
			ci := comp[rel]
			if !multi[ci] {
				return nil // singleton component: nothing can be pruned
			}
			q := part.Project(t.Key())
			last := q
			if replicate {
				last = int(o) - 1
			}
			// Keys within one component block are contiguous.
			emit.EmitRange(int64(ci)*o+int64(q), int64(ci)*o+int64(last), record)
			return nil
		},
		Reduce: func(key int64, values []string, write func(string) error) error {
			ci := int(key / o)
			p := int(key % o)
			rels := compRels[ci]
			cands := make([][]relation.Tuple, len(rels))
			pos := make(map[int]int, len(rels))
			for i, r := range rels {
				pos[r] = i
			}
			type home struct {
				rel int
				id  int64
			}
			var homes []home
			replicatedHome := make(map[home]bool)
			for _, v := range values {
				rel, replicate, t, err := decodeFlagged(v)
				if err != nil {
					return err
				}
				cands[pos[rel]] = append(cands[pos[rel]], t)
				if part.IndexOf(t.Key().Start) == p {
					h := home{rel: rel, id: t.ID}
					homes = append(homes, h)
					if replicate {
						replicatedHome[h] = true
					}
				}
			}
			surviving := semijoinReduce(compConds[ci], rels, cands)
			kept := make(map[home]bool)
			for i, r := range rels {
				for _, t := range surviving[i] {
					kept[home{rel: r, id: t.ID}] = true
				}
			}
			for _, h := range homes {
				if replicatedHome[h] || kept[h] {
					continue
				}
				if err := write(strconv.Itoa(h.rel) + "," + strconv.FormatInt(h.id, 10)); err != nil {
					return err
				}
			}
			return nil
		},
		Output:     output,
		SortValues: opts.SortValues,
	}
}

// loadPruned reads the prune records into per-relation id sets (the
// driver-side stand-in for Hadoop's distributed cache).
func loadPruned(ctx *Context, file string, m int) ([]map[int64]bool, map[int]int64, error) {
	pruned := make([]map[int64]bool, m)
	counts := make(map[int]int64)
	it, err := ctx.Engine.Store().Open(file)
	if err != nil {
		return nil, nil, err
	}
	defer it.Close()
	for {
		rec, ok, err := it.Next()
		if err != nil {
			return nil, nil, err
		}
		if !ok {
			return pruned, counts, nil
		}
		comma := strings.IndexByte(rec, ',')
		if comma < 0 {
			return nil, nil, fmt.Errorf("core: malformed prune record %q", rec)
		}
		rel, err := strconv.Atoi(rec[:comma])
		if err != nil || rel < 0 || rel >= m {
			return nil, nil, fmt.Errorf("core: bad relation in prune record %q", rec)
		}
		id, err := strconv.ParseInt(rec[comma+1:], 10, 64)
		if err != nil {
			return nil, nil, fmt.Errorf("core: bad id in prune record %q", rec)
		}
		if pruned[rel] == nil {
			pruned[rel] = make(map[int64]bool)
		}
		if !pruned[rel][id] {
			pruned[rel][id] = true
			counts[rel]++
		}
	}
}
