package core

import (
	"fmt"
	"math/rand"
	"sort"
	"testing"

	"intervaljoin/internal/interval"
	"intervaljoin/internal/mr"
	"intervaljoin/internal/query"
	"intervaljoin/internal/relation"
)

// Adaptive-plan equivalence: the skew-aware planner only rearranges the
// reduce-key layout (boundaries, virtual reducers, mid-job re-splits) —
// it must never change WHICH tuples come out. Virtual splitting and
// re-splitting do reorder output lines across (sub-)reducers, so these
// tests compare the sorted line sets plus the logical counts, unlike the
// range-emit tests' exact positional comparison.

// requireSameOutputSet asserts both runs produced the same multiset of
// output lines and agree on every logical statistic.
func requireSameOutputSet(t *testing.T, base, adapt *Result, baseLines, adaptLines []string) {
	t.Helper()
	if len(baseLines) != len(adaptLines) {
		t.Fatalf("output has %d lines uniform, %d adaptive", len(baseLines), len(adaptLines))
	}
	bs := append([]string(nil), baseLines...)
	as := append([]string(nil), adaptLines...)
	sort.Strings(bs)
	sort.Strings(as)
	for i := range bs {
		if bs[i] != as[i] {
			t.Fatalf("sorted output line %d differs:\nuniform:  %q\nadaptive: %q", i, bs[i], as[i])
		}
	}
	if len(base.Tuples) != len(adapt.Tuples) {
		t.Errorf("tuples: %d uniform, %d adaptive", len(base.Tuples), len(adapt.Tuples))
	}
	if base.Metrics.OutputRecords != adapt.Metrics.OutputRecords {
		t.Errorf("output records: %d uniform, %d adaptive",
			base.Metrics.OutputRecords, adapt.Metrics.OutputRecords)
	}
}

// adaptiveVariants enumerates the plan perturbations every algorithm must
// be invariant under. forceSplit drives SplitThreshold to near zero so
// even balanced partitions expand into virtual reducers; forceResplit
// re-shards every reduce task at run time.
var adaptiveVariants = []struct {
	name string
	mut  func(*Options, *mr.Config)
}{
	{"adaptive", func(o *Options, _ *mr.Config) { o.Adaptive = true }},
	{"equidepth", func(o *Options, _ *mr.Config) { o.EquiDepth = true }},
	{"force-split", func(o *Options, _ *mr.Config) {
		o.Adaptive = true
		o.SplitThreshold = 0.01
		o.MaxVirtual = 3
	}},
	{"force-resplit", func(_ *Options, c *mr.Config) { c.ResplitPairThreshold = 1 }},
}

// TestAdaptiveMatchesUniformAllenPredicates joins two Zipf-skewed
// relations under each of the thirteen Allen predicates, once with the
// uniform unsplit plan and once per adaptive variant, requiring the same
// output set.
func TestAdaptiveMatchesUniformAllenPredicates(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	r1 := skewedRelation(rng, "R1", 80, 160, 35)
	r2 := skewedRelation(rng, "R2", 80, 160, 35)
	rels := []*relation.Relation{r1, r2}
	for p := interval.Predicate(0); p < interval.NumPredicates; p++ {
		q := query.MustParse(fmt.Sprintf("R1 %s R2", p))
		base := Options{Partitions: 8, Scratch: "adapt", SortValues: true}
		baseRes, baseLines := runWithConfig(t, TwoWay{}, q, rels, base, mr.Config{})
		for _, v := range adaptiveVariants {
			t.Run(p.String()+"/"+v.name, func(t *testing.T) {
				opts, cfg := base, mr.Config{}
				v.mut(&opts, &cfg)
				res, lines := runWithConfig(t, TwoWay{}, q, rels, opts, cfg)
				requireSameOutputSet(t, baseRes, res, baseLines, lines)
			})
		}
	}
}

// TestAdaptiveMatchesUniformAlgorithms covers every algorithm and query
// class under the pipelined, materialized, and spilling engines — the
// adaptive key layout must be invisible across all execution modes.
func TestAdaptiveMatchesUniformAlgorithms(t *testing.T) {
	cases := []struct {
		name  string
		alg   Algorithm
		query string
	}{
		{"two-way-seq", TwoWay{}, "R1 before R2"},
		{"all-rep-coloc", AllRep{}, "R1 overlaps R2 and R2 overlaps R3"},
		{"all-rep-seq", AllRep{}, "R1 before R2 and R2 before R3"},
		{"all-matrix", AllMatrix{}, "R1 before R2 and R2 before R3"},
		{"cascade", Cascade{}, "R1 overlaps R2 and R2 overlaps R3"},
		{"cascade-matrix", Cascade{MatrixSteps: true}, "R1 before R2 and R2 before R3"},
		{"rccis", RCCIS{}, "R1 overlaps R2 and R2 overlaps R3"},
		{"all-seq-matrix", SeqMatrix{}, "R1 overlaps R2 and R2 overlaps R3"},
		{"all-seq-matrix-hybrid", SeqMatrix{}, "R1 before R2 and R1 overlaps R3"},
		{"fcts", FCTS{}, "R1 overlaps R2 and R2 overlaps R3"},
		{"fcts-hybrid", FCTS{}, "R1 before R2 and R1 overlaps R3"},
		{"pasm-hybrid", PASM{}, "R1 before R2 and R1 overlaps R3"},
		{"gen-matrix", GenMatrix{}, "R1 before R2 and R1 overlaps R3"},
	}
	modes := []struct {
		name        string
		materialize bool
		spill       int
	}{
		{"pipelined", false, 0},
		{"materialized", true, 0},
		{"spilled", false, 200},
	}
	rng := rand.New(rand.NewSource(41))
	for _, tc := range cases {
		q := query.MustParse(tc.query)
		rels := make([]*relation.Relation, len(q.Relations))
		for i, s := range q.Relations {
			rels[i] = skewedRelation(rng, s.Name, 40, 150, 30)
		}
		for _, mode := range modes {
			base := Options{
				Partitions: 6, PartitionsPerDim: 4,
				Scratch: "adapt", SortValues: true,
				Materialize: mode.materialize,
			}
			baseRes, baseLines := runWithConfig(t, tc.alg, q, rels, base,
				mr.Config{SpillPairThreshold: mode.spill})
			for _, v := range adaptiveVariants {
				t.Run(tc.name+"/"+mode.name+"/"+v.name, func(t *testing.T) {
					opts, cfg := base, mr.Config{SpillPairThreshold: mode.spill}
					v.mut(&opts, &cfg)
					res, lines := runWithConfig(t, tc.alg, q, rels, opts, cfg)
					requireSameOutputSet(t, baseRes, res, baseLines, lines)
				})
			}
		}
	}
}

// TestAdaptiveSplitsActuallyFire guards the tests above against becoming
// vacuous: the force-split variant must actually expand partitions into
// virtual reducers (more distinct reduce keys than partitions), and on
// the Zipf input the default adaptive plan must split at least one hot
// partition.
func TestAdaptiveSplitsActuallyFire(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	rels := []*relation.Relation{
		skewedRelation(rng, "R1", 80, 160, 35),
		skewedRelation(rng, "R2", 80, 160, 35),
	}
	q := query.MustParse("R1 overlaps R2")
	opts := Options{Partitions: 8, Scratch: "adapt", SortValues: true,
		Adaptive: true, SplitThreshold: 0.01, MaxVirtual: 3}
	res, _ := runWithConfig(t, TwoWay{}, q, rels, opts, mr.Config{})
	if res.Metrics.DistinctKeys <= opts.Partitions {
		t.Fatalf("force-split run used %d reduce keys for %d partitions — no virtual split fired",
			res.Metrics.DistinctKeys, opts.Partitions)
	}
	opts = Options{Partitions: 8, Scratch: "adapt", SortValues: true, Adaptive: true}
	res, _ = runWithConfig(t, TwoWay{}, q, rels, opts, mr.Config{})
	if res.Metrics.DistinctKeys <= opts.Partitions {
		t.Fatalf("adaptive run on Zipf input used %d reduce keys for %d partitions — planner never split",
			res.Metrics.DistinctKeys, opts.Partitions)
	}
}

// skewedRelation draws starts from a Zipf distribution over the time
// range so uniform boundaries produce genuinely hot partitions, giving
// the adaptive planner something to act on.
func skewedRelation(rng *rand.Rand, name string, n int, tmax, lmax int64) *relation.Relation {
	z := rand.NewZipf(rng, 1.2, 1, uint64(tmax-1))
	ivs := make([]interval.Interval, n)
	for i := range ivs {
		s := int64(z.Uint64())
		ivs[i] = interval.New(s, s+1+rng.Int63n(lmax))
	}
	return relation.FromIntervals(name, ivs)
}
