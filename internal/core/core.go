// Package core implements the paper's contribution: the map-reduce interval
// join algorithms. It contains the 2-way strategies of Figure 1, the naive
// baselines (2-way Cascade and All-Replicate), and the four main algorithms
// RCCIS (Section 6), All-Matrix (Section 7), All-Seq-Matrix and
// Pruned-All-Seq-Matrix (Section 8) and Gen-Matrix (Section 9), plus a
// nested-loop reference join used as a correctness oracle.
//
// All algorithms implement the Algorithm interface and run on the mr.Engine
// against relations staged on its dfs.Store, producing a Result: the decoded
// output tuples plus the engine metrics the paper's evaluation compares
// (intermediate pairs, replicated intervals, per-reducer load, cycles).
package core

import (
	"cmp"
	"fmt"
	"slices"
	"strconv"
	"strings"
	"sync/atomic"

	"intervaljoin/internal/interval"
	"intervaljoin/internal/mr"
	"intervaljoin/internal/query"
	"intervaljoin/internal/relation"
)

// Options tune an algorithm run.
type Options struct {
	// Partitions is the number of partition-intervals (= reducers) for the
	// one-dimensional algorithms and for each RCCIS sub-run. Defaults to
	// 16, the paper's cluster size.
	Partitions int
	// PartitionsPerDim is o, the number of partitions per grid dimension
	// for the matrix algorithms. Defaults to 6 (the paper's Section 7.1
	// configuration).
	PartitionsPerDim int
	// Range optionally pins the time range [Range[0], Range[1]) used to
	// build partitionings. When nil it is derived from the data.
	Range *[2]interval.Point
	// Scratch prefixes the intermediate and output file names on the
	// store, so concurrent runs do not collide. Defaults to the
	// algorithm name.
	Scratch string
	// SortValues makes every MR cycle deterministic; costs a sort.
	SortValues bool
	// EquiDepth derives partition boundaries from quantiles of the data's
	// start points instead of splitting the range uniformly, so skewed
	// data still loads reducers evenly (the skew handling the paper notes
	// that "uniformly distributed data vs skewed data will need to be
	// processed differently").
	EquiDepth bool
	// Materialize runs multi-cycle algorithms as sequential MR cycles with
	// every cycle boundary written to the store and re-read — Hadoop's
	// HDFS-barrier behaviour. By default the cycles run on the engine's
	// pipelined executor, which streams cycle boundaries and overlaps one
	// cycle's reduce phase with the next cycle's map phase.
	Materialize bool
	// Adaptive turns on the skew-aware planner: partition boundaries fall
	// back to equi-depth when the start-point histogram predicts a
	// straggler factor worth acting on, and partitions whose projected
	// load exceeds SplitThreshold× the mean are expanded into up to
	// MaxVirtual virtual reducers via a cell cover over the join's input
	// streams. Output is identical to the non-adaptive run; only the
	// reduce-key layout (and so the load balance) changes.
	Adaptive bool
	// SplitThreshold is the load/mean ratio beyond which the adaptive
	// planner splits a partition (0 selects cost.DefaultSplitThreshold).
	SplitThreshold float64
	// MaxVirtual caps the virtual reducers one partition may expand into
	// (0 selects cost.DefaultMaxVirtual).
	MaxVirtual int
	// AutoPartitions records that Partitions was chosen by
	// cost.AdvisePartitions (the -partitions auto CLI mode); it only
	// annotates the reported plan.
	AutoPartitions bool
	// Window, when set, restricts the run to the closed time window
	// [Window[0], Window[1]]: the anchor relation (WindowRel) is filtered
	// at map-feed time to tuples whose first interval attribute intersects
	// the window, so the output is exactly the join rows anchored in the
	// window — including rows whose anchor straddles a window boundary
	// (the tuple is fed whole; callers merging adjacent windows dedup).
	// This is the cache service's delta-window execution path.
	Window *[2]interval.Point
	// WindowRel is the index of the anchor relation the Window filter
	// applies to. The cache service always anchors on relation 0.
	WindowRel int
	// ResidentInputs maps relation index -> pre-staged store file. A
	// non-empty entry makes Stage skip writing that relation and the
	// drivers map over the named file instead of "input/<name>" — the
	// resident-relation path: stage once at registration, reuse across
	// queries. Entries beyond the slice (or empty strings) stage normally.
	ResidentInputs []string
}

// scratchSeq disambiguates the scratch namespaces of concurrent runs that
// share one store.
var scratchSeq atomic.Int64

func (o Options) withDefaults(name string) Options {
	if o.Partitions <= 0 {
		o.Partitions = 16
	}
	if o.PartitionsPerDim <= 0 {
		o.PartitionsPerDim = 6
	}
	if o.Scratch == "" {
		o.Scratch = name + "-" + strconv.FormatInt(scratchSeq.Add(1), 10)
	}
	return o
}

// Context is everything an algorithm needs: the engine, the validated
// query, and the relations bound positionally to the query's relation list.
type Context struct {
	Engine *mr.Engine
	Query  *query.Query
	Rels   []*relation.Relation
	Opts   Options
}

// NewContext validates and assembles a run context. Relations are matched to
// the query's relation list by name.
func NewContext(engine *mr.Engine, q *query.Query, rels []*relation.Relation, opts Options) (*Context, error) {
	if err := q.Validate(); err != nil {
		return nil, err
	}
	bound := make([]*relation.Relation, len(q.Relations))
	for _, r := range rels {
		i := q.RelIndex(r.Schema.Name)
		if i < 0 {
			return nil, fmt.Errorf("core: relation %s does not appear in the query", r.Schema.Name)
		}
		if bound[i] != nil {
			return nil, fmt.Errorf("core: relation %s bound twice", r.Schema.Name)
		}
		if r.Schema.Arity() < q.Relations[i].Arity() {
			return nil, fmt.Errorf("core: relation %s has arity %d, query needs %d",
				r.Schema.Name, r.Schema.Arity(), q.Relations[i].Arity())
		}
		if err := r.Validate(); err != nil {
			return nil, err
		}
		bound[i] = r
	}
	for i, r := range bound {
		if r == nil {
			return nil, fmt.Errorf("core: no relation bound for %s", q.Relations[i].Name)
		}
	}
	return &Context{Engine: engine, Query: q, Rels: bound, Opts: opts}, nil
}

// inputFile is where relation ri lives on the store: the resident file
// when one is registered, the per-run staging name otherwise.
func (c *Context) inputFile(ri int) string {
	if f := c.residentFile(ri); f != "" {
		return f
	}
	return "input/" + c.Query.Relations[ri].Name
}

// residentFile returns the pre-staged store file for relation ri, or ""
// when the relation is not resident.
func (c *Context) residentFile(ri int) string {
	if ri < len(c.Opts.ResidentInputs) {
		return c.Opts.ResidentInputs[ri]
	}
	return ""
}

// relInput builds the map input for relation ri carrying map tag. When the
// run is windowed (Options.Window) and ri is the anchor relation, the input
// gets a feed-time filter that drops tuples whose anchor attribute misses
// the window — the delta-window path of the cache service. Every driver
// site that maps over a relation's staged file goes through here so the
// window semantics hold for all algorithms.
func (c *Context) relInput(ri, tag int) mr.Input {
	in := mr.Input{File: c.inputFile(ri), Tag: tag}
	if c.Opts.Window != nil && ri == c.Opts.WindowRel {
		in.Where = windowFilter(c.Opts.Window[0], c.Opts.Window[1])
	}
	return in
}

// windowFilter returns a record predicate keeping tuples whose first
// interval attribute intersects the closed window [lo, hi]. Records are the
// engine's canonical tuple encoding "id|s,e|..." (relation.EncodeTuple);
// the first attribute is parsed in place. Malformed records pass through:
// the map side owns format errors and reports them with its usual context.
func windowFilter(lo, hi interval.Point) func(string) bool {
	return func(rec string) bool {
		b := strings.IndexByte(rec, '|')
		if b < 0 {
			return true
		}
		body := rec[b+1:]
		if e := strings.IndexByte(body, '|'); e >= 0 {
			body = body[:e]
		}
		comma := strings.IndexByte(body, ',')
		if comma < 0 {
			return true
		}
		s, err := strconv.ParseInt(body[:comma], 10, 64)
		if err != nil {
			return true
		}
		e, err := strconv.ParseInt(body[comma+1:], 10, 64)
		if err != nil {
			return true
		}
		return s <= hi && e >= lo
	}
}

// Stage writes every relation to the store in the engine's record format.
// It is idempotent per store; callers sharing a store across algorithm runs
// stage once. Relations with a resident input registered in the options are
// skipped: their file was written at registration time and is shared across
// runs.
func (c *Context) Stage() error {
	for ri, r := range c.Rels {
		if c.residentFile(ri) != "" {
			continue
		}
		w, err := c.Engine.Store().Create(c.inputFile(ri))
		if err != nil {
			return err
		}
		for _, t := range r.Tuples {
			if err := w.Write(relation.EncodeTuple(t)); err != nil {
				w.Close()
				return err
			}
		}
		if err := w.Close(); err != nil {
			return err
		}
	}
	return nil
}

// timeRange returns the partitioning range: the explicit option if set,
// otherwise the bounds of all staged relations (padded by one so every end
// point falls strictly inside).
func (c *Context) timeRange() (t0, tn interval.Point, err error) {
	if c.Opts.Range != nil {
		return c.Opts.Range[0], c.Opts.Range[1], nil
	}
	t0, tn, ok := relation.Bounds(c.Rels...)
	if !ok {
		return 0, 1, nil // all-empty inputs: any non-empty range works
	}
	return t0, tn, nil
}

// sampleBudget bounds the driver-side start-point sample used by equi-depth
// partitioning.
const sampleBudget = 8192

// sampleStarts stride-samples the start points of every relation's first
// attribute (the single-attribute algorithms' join column).
func (c *Context) sampleStarts() []interval.Point {
	total := 0
	for _, r := range c.Rels {
		total += r.Len()
	}
	if total == 0 {
		return nil
	}
	stride := total/sampleBudget + 1
	var sample []interval.Point
	i := 0
	for _, r := range c.Rels {
		for _, t := range r.Tuples {
			if i%stride == 0 {
				sample = append(sample, t.Attrs[0].Start)
			}
			i++
		}
	}
	return sample
}

// makePartitioning builds the shared 1-D partitioning of n partitions:
// uniform-width by default, quantile-based under Options.EquiDepth — or
// under Options.Adaptive when the data's histogram recommends it (see
// boundaries in adaptive.go). The result may hold fewer than n partitions
// when quantiles collapse.
func (c *Context) makePartitioning(n int) (interval.Partitioning, error) {
	part, _, err := c.boundaries(n)
	return part, err
}

// jobMeta annotates one cycle's job for observability: traces and profiles
// attribute its spans to (algorithm, 1-based cycle, predicate family).
func (c *Context) jobMeta(alg string, cycle int) mr.JobMeta {
	return mr.JobMeta{Algorithm: alg, Cycle: cycle, Family: c.Query.Classify().String()}
}

// OutputTuple is one join result: the tuple id per relation, in query
// relation order.
type OutputTuple []int64

// Key renders the canonical form used for set comparison.
func (o OutputTuple) Key() string {
	parts := make([]string, len(o))
	for i, id := range o {
		parts[i] = strconv.FormatInt(id, 10)
	}
	return strings.Join(parts, ",")
}

// ParseOutputTuple parses the canonical form.
func ParseOutputTuple(s string) (OutputTuple, error) {
	parts := strings.Split(s, ",")
	out := make(OutputTuple, len(parts))
	for i, p := range parts {
		id, err := strconv.ParseInt(p, 10, 64)
		if err != nil {
			return nil, fmt.Errorf("core: bad output tuple %q: %v", s, err)
		}
		out[i] = id
	}
	return out, nil
}

// Result is what an algorithm run produces.
type Result struct {
	// Algorithm is the algorithm's name.
	Algorithm string
	// Tuples is the decoded join output.
	Tuples []OutputTuple
	// Metrics aggregates all MR cycles of the run.
	Metrics *mr.Metrics
	// PerCycle holds the metrics of each individual cycle.
	PerCycle []*mr.Metrics
	// ReplicatedIntervals counts the intervals selected for replication
	// (the paper's Table 1 "# Intervals Replicated" column). Zero for
	// algorithms that do not replicate.
	ReplicatedIntervals int64
	// PrunedIntervals maps relation index -> number of tuples PASM proved
	// cannot appear in any output and dropped before the join cycle
	// (the paper's Table 3 "% intervals pruned" column).
	PrunedIntervals map[int]int64
}

// SortTuples orders the output canonically for comparison and display.
func (r *Result) SortTuples() {
	slices.SortFunc(r.Tuples, func(a, b OutputTuple) int {
		for k := range a {
			if c := cmp.Compare(a[k], b[k]); c != 0 {
				return c
			}
		}
		return 0
	})
}

// TupleSet returns the output as a set of canonical keys.
func (r *Result) TupleSet() map[string]struct{} {
	set := make(map[string]struct{}, len(r.Tuples))
	for _, t := range r.Tuples {
		set[t.Key()] = struct{}{}
	}
	return set
}

// Algorithm is a runnable join algorithm.
type Algorithm interface {
	// Name identifies the algorithm ("rccis", "all-matrix", ...).
	Name() string
	// Run executes the algorithm and returns its result.
	Run(ctx *Context) (*Result, error)
}

// runMarkedChain executes a mark cycle followed by downstream cycles. In
// the default pipelined mode the marking output streams straight into the
// next cycle's map feed and the replicate-flag count is computed by a tap
// on the fly; under Options.Materialize the chain runs sequentially and the
// count is read back from the marked file, exactly as a Hadoop driver would
// re-scan the HDFS intermediate.
func runMarkedChain(ctx *Context, opts Options, marked string, markJob mr.Job,
	rest ...mr.Stage) ([]*mr.Metrics, *mr.Metrics, int64, error) {

	if opts.Materialize {
		jobs := make([]mr.Job, 0, len(rest)+1)
		jobs = append(jobs, markJob)
		for _, s := range rest {
			jobs = append(jobs, s.Job)
		}
		perCycle, agg, err := ctx.Engine.RunChain(jobs...)
		if err != nil {
			return nil, nil, 0, err
		}
		replicated, err := countFlagged(ctx, marked)
		if err != nil {
			return nil, nil, 0, err
		}
		return perCycle, agg, replicated, nil
	}
	var replicated int64
	stages := append([]mr.Stage{{Job: markJob, Tap: replicateFlagTap(&replicated)}}, rest...)
	perCycle, agg, err := ctx.Engine.RunPipeline(stages...)
	if err != nil {
		return nil, nil, 0, err
	}
	return perCycle, agg, replicated, nil
}

// replicateFlagTap counts replicate-flagged records streaming out of a mark
// cycle — the pipelined stand-in for countFlagged, which would force the
// marked intermediate onto the store. Records are "<rel>;<flag>;<tuple>".
func replicateFlagTap(n *int64) func(string) {
	return func(rec string) {
		if i := strings.IndexByte(rec, ';'); i >= 0 && i+2 < len(rec) && rec[i+1] == '1' && rec[i+2] == ';' {
			*n++
		}
	}
}

// readOutput decodes the final job output file into Result.Tuples.
func readOutput(ctx *Context, file string, res *Result) error {
	it, err := ctx.Engine.Store().Open(file)
	if err != nil {
		return err
	}
	defer it.Close()
	for {
		rec, ok, err := it.Next()
		if err != nil {
			return err
		}
		if !ok {
			return nil
		}
		t, err := ParseOutputTuple(rec)
		if err != nil {
			return err
		}
		res.Tuples = append(res.Tuples, t)
	}
}
