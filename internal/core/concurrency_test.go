package core

import (
	"math/rand"
	"sync"
	"testing"

	"intervaljoin/internal/dfs"
	"intervaljoin/internal/mr"
	"intervaljoin/internal/query"
	"intervaljoin/internal/relation"
)

// TestConcurrentRunsShareEngine: several runs — including the same
// algorithm — execute concurrently against one engine and store without
// interfering; every result matches the oracle. This exercises the default
// scratch namespacing.
func TestConcurrentRunsShareEngine(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	q := query.MustParse("R1 overlaps R2 and R2 overlaps R3")
	rels := make([]*relation.Relation, 3)
	for i, s := range q.Relations {
		rels[i] = randomRelation(rng, s.Name, 60, 150, 25)
	}
	engine := mr.NewEngine(mr.Config{Store: dfs.NewMem(), Workers: 4})
	refCtx, err := NewContext(engine, q, rels, Options{Partitions: 6})
	if err != nil {
		t.Fatal(err)
	}
	want, err := Reference{}.Run(refCtx)
	if err != nil {
		t.Fatal(err)
	}

	algs := []Algorithm{RCCIS{}, RCCIS{}, RCCIS{}, AllRep{}, AllRep{}, SeqMatrix{}, Cascade{}}
	var wg sync.WaitGroup
	errs := make(chan error, len(algs))
	counts := make([]int, len(algs))
	for i, alg := range algs {
		wg.Add(1)
		go func(i int, alg Algorithm) {
			defer wg.Done()
			ctx, err := NewContext(engine, q, rels, Options{Partitions: 6, PartitionsPerDim: 4})
			if err != nil {
				errs <- err
				return
			}
			res, err := alg.Run(ctx)
			if err != nil {
				errs <- err
				return
			}
			counts[i] = len(res.TupleSet())
		}(i, alg)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	for i, c := range counts {
		if c != len(want.Tuples) {
			t.Fatalf("concurrent run %d (%s) produced %d tuples, oracle %d",
				i, algs[i].Name(), c, len(want.Tuples))
		}
	}
}

// TestExplicitScratchIsolation: runs with distinct explicit scratch
// prefixes do not clobber each other's files.
func TestExplicitScratchIsolation(t *testing.T) {
	rng := rand.New(rand.NewSource(32))
	q := query.MustParse("R1 overlaps R2")
	rels := []*relation.Relation{
		randomRelation(rng, "R1", 40, 100, 20),
		randomRelation(rng, "R2", 40, 100, 20),
	}
	engine := mr.NewEngine(mr.Config{Store: dfs.NewMem(), Workers: 2})
	run := func(scratch string) int {
		ctx, err := NewContext(engine, q, rels, Options{Partitions: 4, Scratch: scratch})
		if err != nil {
			t.Fatal(err)
		}
		res, err := (TwoWay{}).Run(ctx)
		if err != nil {
			t.Fatal(err)
		}
		return len(res.Tuples)
	}
	a := run("runA")
	b := run("runB")
	if a != b {
		t.Fatalf("scratch-isolated runs disagree: %d vs %d", a, b)
	}
	// Both scratch outputs still exist independently.
	for _, name := range []string{"runA/output", "runB/output"} {
		if !engine.Store().Exists(name) {
			t.Fatalf("output %s missing", name)
		}
	}
}
