package core

import (
	"cmp"
	"fmt"
	"math"
	"slices"
	"sort"
	"sync"
	"sync/atomic"

	"intervaljoin/internal/interval"
	"intervaljoin/internal/obs"
	"intervaljoin/internal/query"
	"intervaljoin/internal/relation"
)

// enumerator performs a backtracking multi-way join over an arbitrary subset
// of the query's relations. It is the work-horse of every reduce function
// (each reducer joins the tuples it received) and of the reference oracle.
//
// Relations are bound in the order given at construction; each condition is
// checked as soon as both of its operands are bound, pruning the search.
//
// Construction derives a static plan (per-level sort attribute, condition
// orientation, kernel dispatch) that is immutable afterwards, so one
// enumerator can be shared by concurrent reduce tasks; all per-run state
// lives in the preparedJoin that get returns. Candidate tuples are held in
// columnar form — a relation.Arena for payloads plus per-level endpoint
// columns (sweep.go) — so the enumeration loops touch only int64 columns
// until an assignment is emitted.
type enumerator struct {
	rels []int // relation indices, in binding order
	pos  map[int]int
	// condsAt[i] lists the conditions checkable once binding position i is
	// filled.
	condsAt [][]query.Condition
	// plans[i] is the compiled form of condsAt[i].
	plans []levelPlan
	// tr, when set, receives the per-family kernel hit counters
	// (colkernel_sweep / colkernel_merge / colkernel_generic), flushed once
	// per run. Nil is a valid disabled tracer.
	tr *obs.Tracer
	// hitSweep/hitMerge/hitGeneric total the level dispatches per kernel
	// family over the enumerator's lifetime (benchmarks report them).
	hitSweep, hitMerge, hitGeneric atomic.Int64
	// pool recycles preparedJoins (and all their column/window buffers)
	// across the single-shot runs reduce functions issue.
	pool sync.Pool
}

// condEval is a condition compiled for the generic enumeration loop: operand
// positions resolved to binding levels so no map lookups happen per
// candidate.
type condEval struct {
	lLevel, lAttr int
	rLevel, rAttr int
	pred          interval.Predicate
}

// plannedCond is one condition applicable at a binding level, oriented so
// that pred(bound, candidate) is the application whose candidate window
// bounds the candidate side: partner/battr locate the already-bound operand,
// and onSort reports whether the candidate-side operand is the level's sort
// attribute (only those conditions can prune by endpoint windows).
type plannedCond struct {
	eval    condEval
	partner int
	battr   int
	pred    interval.Predicate
	onSort  bool
}

// levelPlan is the static per-binding-level plan.
type levelPlan struct {
	// sortAttr is the attribute the level's candidate column is sorted by
	// (the first applicable condition's operand attribute), or -1 when the
	// level has no applicable conditions.
	sortAttr int
	conds    []plannedCond
	// sweep is true when every applicable condition constrains the single
	// sort attribute: the level then uses exact precomputed endpoint
	// windows. Multi-attribute levels (General-class queries) fall back to
	// the generic probe, which handles per-condition attributes.
	sweep bool
	// kernel is the planner's dispatch choice for this level (planner.go).
	kernel kernelKind
}

// newEnumerator prepares an enumerator over the given relation indices using
// exactly those conditions whose operands both lie within rels.
func newEnumerator(conds []query.Condition, rels []int) *enumerator {
	e := &enumerator{
		rels:    rels,
		pos:     make(map[int]int, len(rels)),
		condsAt: make([][]query.Condition, len(rels)),
		plans:   make([]levelPlan, len(rels)),
	}
	for i, r := range rels {
		e.pos[r] = i
	}
	for _, c := range conds {
		li, lok := e.pos[c.Left.Rel]
		ri, rok := e.pos[c.Right.Rel]
		if !lok || !rok {
			continue
		}
		later := li
		if ri > later {
			later = ri
		}
		e.condsAt[later] = append(e.condsAt[later], c)
	}
	for i := range e.rels {
		e.plans[i] = e.compileLevel(i)
	}
	return e
}

// withTracer wires the engine's tracer into the enumerator so kernel hit
// counts land in the metrics report. Returns e for call-site chaining.
func (e *enumerator) withTracer(tr *obs.Tracer) *enumerator {
	e.tr = tr
	return e
}

// compileLevel builds the static plan for binding level i.
func (e *enumerator) compileLevel(i int) levelPlan {
	lp := levelPlan{sortAttr: -1}
	conds := e.condsAt[i]
	if len(conds) == 0 {
		return lp
	}
	// The level's candidates are sorted by the attribute the first
	// applicable condition constrains.
	first := conds[0]
	if e.pos[first.Left.Rel] == i {
		lp.sortAttr = first.Left.Attr
	} else {
		lp.sortAttr = first.Right.Attr
	}
	lp.sweep = true
	for _, c := range conds {
		pc := plannedCond{
			eval: condEval{
				lLevel: e.pos[c.Left.Rel], lAttr: c.Left.Attr,
				rLevel: e.pos[c.Right.Rel], rAttr: c.Right.Attr,
				pred: c.Pred,
			},
		}
		if e.pos[c.Left.Rel] == i {
			// Candidate is the left operand: p(x, b) == p'(b, x).
			pc.partner = e.pos[c.Right.Rel]
			pc.battr = c.Right.Attr
			pc.pred = c.Pred.Inverse()
			pc.onSort = c.Left.Attr == lp.sortAttr
		} else {
			pc.partner = e.pos[c.Left.Rel]
			pc.battr = c.Left.Attr
			pc.pred = c.Pred
			pc.onSort = c.Right.Attr == lp.sortAttr
		}
		if !pc.onSort {
			lp.sweep = false
		}
		lp.conds = append(lp.conds, pc)
	}
	lp.kernel = chooseKernel(lp)
	return lp
}

// preparedJoin carries one run's mutable state in struct-of-arrays form:
// the shared payload arena, per-level arrival-order refs, and the
// endpoint-sorted gapless columns loCol/hiCol/refCol the kernels scan. A
// preparedJoin belongs to a single goroutine; the enumerator it came from
// may be shared.
type preparedJoin struct {
	e *enumerator
	// arena holds every candidate tuple's payload; kernels carry int32 refs
	// into it and materialise tuples only at emission.
	arena relation.Arena
	// raw[i] is level i's refs in arrival order, before seal sorts them.
	raw [][]int32
	// loCol/hiCol[i] are the Start/End columns of level i's sort attribute,
	// sorted by Start; refCol[i] is the parallel payload ref column. For
	// unconstrained levels (sortAttr < 0) the columns are nil and refCol
	// aliases raw.
	loCol  [][]int64
	hiCol  [][]int64
	refCol [][]int32
	refBuf [][]int32 // owned backing for sorted refCol entries
	// wins[i][k] is condition k's window table at level i, built on the
	// first visit to level i so candidate sets pruned away by earlier
	// levels never pay for their windows.
	wins    [][]condWindow
	built   []bool
	pairs   []keyIdx // sort scratch
	los     []int64  // window-build scratch
	empties []int32  // window-build scratch: partners with empty windows
	asg     []relation.Tuple
	idx     []int   // idx[j]: current index of the level-j binding within its column
	bref    []int32 // bref[j]: arena ref of the level-j binding
	fn      func(asg []relation.Tuple)
	// per-run kernel dispatch counts, flushed by put.
	nSweep, nMerge, nGeneric int64
}

// get returns an empty pooled preparedJoin ready for add/addTuple calls.
func (e *enumerator) get() *preparedJoin {
	p, _ := e.pool.Get().(*preparedJoin)
	if p == nil {
		p = &preparedJoin{e: e}
	}
	p.arena.Reset()
	p.raw = sized(p.raw, len(e.rels))
	for i := range p.raw {
		p.raw[i] = p.raw[i][:0]
	}
	return p
}

// put flushes the run's kernel hit counts and recycles the prepared state.
func (e *enumerator) put(p *preparedJoin) {
	if p.nSweep != 0 {
		e.hitSweep.Add(p.nSweep)
		e.tr.Count("colkernel_sweep", p.nSweep)
	}
	if p.nMerge != 0 {
		e.hitMerge.Add(p.nMerge)
		e.tr.Count("colkernel_merge", p.nMerge)
	}
	if p.nGeneric != 0 {
		e.hitGeneric.Add(p.nGeneric)
		e.tr.Count("colkernel_generic", p.nGeneric)
	}
	p.nSweep, p.nMerge, p.nGeneric = 0, 0, 0
	e.pool.Put(p)
}

// kernelHitCounts returns the enumerator's lifetime per-family dispatch
// totals (sweep, merge, generic) — benchmarks report them per op.
func (e *enumerator) kernelHitCounts() (sweep, merge, generic int64) {
	return e.hitSweep.Load(), e.hitMerge.Load(), e.hitGeneric.Load()
}

// add decodes one tuple record straight into the arena and appends its ref
// to the level's candidate list — the zero-copy path reduce functions feed
// tagged values through.
func (p *preparedJoin) add(level int, body string) error {
	ref, err := p.arena.AppendDecode(body)
	if err != nil {
		return err
	}
	p.raw[level] = append(p.raw[level], ref)
	return nil
}

// addTuple copies an in-memory tuple into the arena (the compatibility path
// for callers that already hold decoded tuples).
func (p *preparedJoin) addTuple(level int, t relation.Tuple) {
	p.raw[level] = append(p.raw[level], p.arena.Append(t))
}

// seal freezes the candidate sets into the columnar layout: each
// constrained level's refs are sorted by the sort attribute's start and
// gathered into gapless lo/hi/ref columns. The sort permutes packed
// (start, ref) pairs and gathers the columns once, which is markedly
// cheaper than sorting tuple structs.
func (p *preparedJoin) seal() {
	n := len(p.e.rels)
	p.loCol = sized(p.loCol, n)
	p.hiCol = sized(p.hiCol, n)
	p.refCol = sized(p.refCol, n)
	p.refBuf = sized(p.refBuf, n)
	p.wins = sized(p.wins, n)
	p.built = sized(p.built, n)
	p.asg = sized(p.asg, n)
	p.idx = sized(p.idx, n)
	p.bref = sized(p.bref, n)
	for i := 0; i < n; i++ {
		p.built[i] = false
		attr := p.e.plans[i].sortAttr
		src := p.raw[i]
		if attr < 0 {
			p.refCol[i] = src
			p.loCol[i] = nil
			p.hiCol[i] = nil
			continue
		}
		p.pairs = sized(p.pairs, len(src))
		pairs := p.pairs
		for k, ref := range src {
			pairs[k] = keyIdx{key: p.arena.Start(ref, attr), idx: ref}
		}
		slices.SortFunc(pairs, func(a, b keyIdx) int { return cmp.Compare(a.key, b.key) })
		lo := sized(p.loCol[i], len(src))
		hi := sized(p.hiCol[i], len(src))
		refs := sized(p.refBuf[i], len(src))
		for k, pr := range pairs {
			lo[k] = pr.key
			hi[k] = p.arena.End(pr.idx, attr)
			refs[k] = pr.idx
		}
		p.loCol[i] = lo
		p.hiCol[i] = hi
		p.refBuf[i] = refs
		p.refCol[i] = refs
	}
}

// buildWindows runs the endpoint sweeps for level i: one window table per
// applicable condition, each mapping a partner tuple to the exact candidate
// window its predicate admits (condWindows). Partners whose window is empty
// (saturated strict bounds) get their from patched past the end of the
// column, which the max-of-froms intersection in rec turns into an empty
// scan.
func (p *preparedJoin) buildWindows(i int) {
	lp := &p.e.plans[i]
	nCand := int32(len(p.loCol[i]))
	p.wins[i] = sized(p.wins[i], len(lp.conds))
	for k := range lp.conds {
		c := &lp.conds[k]
		w := &p.wins[i][k]
		prefs := p.refCol[c.partner]
		nt := len(prefs)
		shape := shapeOf(c.pred)
		w.sHi = windCol(w.sHi, nt, shape.sHi)
		w.eLo = windCol(w.eLo, nt, shape.eLo)
		w.eHi = windCol(w.eHi, nt, shape.eHi)
		p.los = sized(p.los, nt)
		p.empties = p.empties[:0]
		// When the condition reads the partner's own sort attribute, the
		// bound interval comes straight off the partner's endpoint columns.
		pOnCols := p.loCol[c.partner] != nil && p.e.plans[c.partner].sortAttr == c.battr
		for t := 0; t < nt; t++ {
			var b interval.Interval
			if pOnCols {
				b = interval.Interval{Start: p.loCol[c.partner][t], End: p.hiCol[c.partner][t]}
			} else {
				b = p.arena.Attr(prefs[t], c.battr)
			}
			sLo, sHi, eLo, eHi, ok := condWindows(c.pred, b)
			if !ok {
				p.los[t] = math.MaxInt64
				p.empties = append(p.empties, int32(t))
				continue
			}
			p.los[t] = sLo
			if w.sHi != nil {
				w.sHi[t] = sHi
			}
			if w.eLo != nil {
				w.eLo[t] = eLo
			}
			if w.eHi != nil {
				w.eHi[t] = eHi
			}
		}
		w.from = sized(w.from, nt)
		sweepFromsInto(w.from, p.los, p.loCol[i])
		for _, t := range p.empties {
			w.from[t] = nCand
		}
	}
	p.built[i] = true
}

// windCol sizes a window bound column, or drops it when the predicate's
// shape leaves that edge unbounded.
func windCol(s []int64, n int, need bool) []int64 {
	if !need {
		return nil
	}
	return sized(s, n)
}

// run enumerates every assignment (one tuple per relation, from the sealed
// candidate columns) satisfying all applicable conditions, invoking fn with
// the assignment parallel to rels. fn must not retain asg (its tuples alias
// the arena). run may be called repeatedly; the sorted columns and sweep
// windows are reused.
func (p *preparedJoin) run(fn func(asg []relation.Tuple)) {
	p.fn = fn
	p.rec(0)
	p.fn = nil
}

func (p *preparedJoin) rec(i int) {
	if i == len(p.asg) {
		// Each level materialised its binding when the candidate was
		// accepted, so the full assignment is already in place.
		p.fn(p.asg)
		return
	}
	lp := &p.e.plans[i]
	switch lp.kernel {
	case kindSweep, kindMerge:
		// Intersect the precomputed per-partner windows across the level's
		// conditions; everything below this point reads only int64 columns.
		if !p.built[i] {
			p.buildWindows(i)
		}
		from := 0
		sHi := int64(math.MaxInt64)
		eLo := int64(math.MinInt64)
		eHi := int64(math.MaxInt64)
		wins := p.wins[i]
		for k := range lp.conds {
			w := &wins[k]
			t := p.idx[lp.conds[k].partner]
			if f := int(w.from[t]); f > from {
				from = f
			}
			if w.sHi != nil && w.sHi[t] < sHi {
				sHi = w.sHi[t]
			}
			if w.eLo != nil && w.eLo[t] > eLo {
				eLo = w.eLo[t]
			}
			if w.eHi != nil && w.eHi[t] < eHi {
				eHi = w.eHi[t]
			}
		}
		if lp.kernel == kindMerge {
			p.nMerge++
			p.kernelMerge(i, from, sHi, eLo, eHi)
		} else {
			p.nSweep++
			p.kernelSweep(i, from, sHi, eLo, eHi)
		}
	default:
		p.nGeneric++
		p.kernelGeneric(i)
	}
}

// kernelGeneric is the fallback enumeration loop: multi-attribute levels
// (General-class queries), whose conditions constrain attributes other than
// the sort attribute, and condition-free levels. It intersects the start
// ranges the sort-attribute conditions impose, binary-searches the scan
// start, and evaluates every condition per candidate — reading all
// attributes through the arena, never through tuple structs.
func (p *preparedJoin) kernelGeneric(i int) {
	lp := &p.e.plans[i]
	refs := p.refCol[i]
	col := p.loCol[i] // nil only for unconstrained levels, where hiBound stays +inf
	from := 0
	hiBound := int64(math.MaxInt64)
	if lp.sortAttr >= 0 {
		lo := int64(math.MinInt64)
		for k := range lp.conds {
			c := &lp.conds[k]
			if !c.onSort {
				continue
			}
			l, h := startRange(c.pred, p.arena.Attr(p.bref[c.partner], c.battr))
			if l > lo {
				lo = l
			}
			if h < hiBound {
				hiBound = h
			}
		}
		if lo > hiBound {
			return
		}
		if lo > math.MinInt64 {
			from = sort.Search(len(col), func(k int) bool { return col[k] >= lo })
		}
	}
next:
	for k := from; k < len(refs); k++ {
		if col != nil && col[k] > hiBound {
			break
		}
		p.bref[i] = refs[k]
		p.idx[i] = k
		for _, c := range lp.conds {
			u := p.arena.Attr(p.bref[c.eval.lLevel], c.eval.lAttr)
			v := p.arena.Attr(p.bref[c.eval.rLevel], c.eval.rAttr)
			if !c.eval.pred.Eval(u, v) {
				continue next
			}
		}
		p.asg[i] = p.arena.Tuple(refs[k])
		p.rec(i + 1)
	}
}

// run loads cands and enumerates once — the single-shot form used by
// callers that already hold decoded tuples (the reference oracle, tests).
// The prepared state comes from a pool, so steady-state runs allocate
// nothing beyond arena growth.
func (e *enumerator) run(cands [][]relation.Tuple, fn func(asg []relation.Tuple)) {
	if len(cands) != len(e.rels) {
		panic("core: enumerator candidate arity mismatch")
	}
	p := e.get()
	for i := range cands {
		for _, t := range cands[i] {
			p.addTuple(i, t)
		}
	}
	p.seal()
	p.run(fn)
	e.put(p)
}

// runTagged is the reduce-side fast path: decode each tagged value once,
// straight into the columnar layout, and enumerate. lvl maps a relation tag
// to its binding level (-1 for tags the enumerator does not bind); tags
// outside lvl are an error, as reducers only ever receive the relations
// their job routed to them.
func (e *enumerator) runTagged(values []string, lvl []int, fn func(asg []relation.Tuple)) error {
	p := e.get()
	for _, v := range values {
		rel, body, err := splitTagged(v)
		if err != nil {
			e.put(p)
			return err
		}
		if rel < 0 || rel >= len(lvl) || lvl[rel] < 0 {
			e.put(p)
			return fmt.Errorf("core: unexpected relation tag %d in %q", rel, v)
		}
		if err := p.add(lvl[rel], body); err != nil {
			e.put(p)
			return err
		}
	}
	p.seal()
	p.run(fn)
	e.put(p)
	return nil
}

// identityLevels returns the tag->level map for enumerators whose binding
// order is the relation order (allRelations): level i binds tag i.
func identityLevels(m int) []int {
	lvl := make([]int, m)
	for i := range lvl {
		lvl[i] = i
	}
	return lvl
}

// startRange bounds the start point of the unbound interval x for the
// predicate application p(b, x) with b bound: p(b, x) can only hold when
// lo <= x.Start <= hi. The residual conditions are still checked by Eval;
// the range is a sound filter, exact on the start coordinate. (The
// specialized kernels use condWindows instead, which is exact on both
// endpoints; startRange remains for the generic path.)
func startRange(p interval.Predicate, b interval.Interval) (lo, hi interval.Point) {
	const (
		negInf = math.MinInt64
		posInf = math.MaxInt64
	)
	switch p {
	case interval.Before: // x starts after b ends
		return satAdd(b.End, 1), posInf
	case interval.After: // x ends before b starts
		return negInf, satAdd(b.Start, -1)
	case interval.Meets: // x starts exactly at b's end
		return b.End, b.End
	case interval.MetBy: // x ends at b's start
		return negInf, b.Start
	case interval.Overlaps: // b.s < x.s < b.e
		return satAdd(b.Start, 1), satAdd(b.End, -1)
	case interval.OverlappedBy: // x.s < b.s
		return negInf, satAdd(b.Start, -1)
	case interval.Contains: // b.s < x.s (and x.e < b.e)
		return satAdd(b.Start, 1), satAdd(b.End, -1)
	case interval.ContainedBy: // x.s < b.s
		return negInf, satAdd(b.Start, -1)
	case interval.Starts, interval.StartedBy, interval.Equals:
		return b.Start, b.Start
	case interval.Finishes: // x.s < b.s... Finishes(b,x): b.e==x.e, b.s > x.s
		return negInf, satAdd(b.Start, -1)
	case interval.FinishedBy: // x.s > b.s and x.e == b.e
		return satAdd(b.Start, 1), b.End
	}
	return negInf, posInf
}

// satAdd adds with saturation at the int64 extremes.
func satAdd(a interval.Point, d int64) interval.Point {
	s := a + d
	if d > 0 && s < a {
		return math.MaxInt64
	}
	if d < 0 && s > a {
		return math.MinInt64
	}
	return s
}

// semijoinReduce prunes each candidate list to tuples that have at least one
// partner under every incident condition, iterating to a fixpoint. For an
// acyclic condition graph the surviving tuples are exactly those that
// participate in some satisfying assignment; for cyclic graphs the result is
// a superset (safe for RCCIS: replicating extra intervals never loses
// output, it only costs communication). All paper queries are acyclic.
//
// Partner search uses the same sweep kernel as the enumerator: one endpoint
// sweep per pruning pass computes every tuple's candidate window into the
// partner list (sorted by the condition's attribute start), so each
// existence check is a bounded scan of its precomputed window rather than a
// fresh binary search.
//
// conds must only mention relations in rels. cands is parallel to rels and
// is not modified; the pruned lists are returned. If any list empties, all
// returned lists are empty (no assignment exists).
func semijoinReduce(conds []query.Condition, rels []int, cands [][]relation.Tuple) [][]relation.Tuple {
	pos := make(map[int]int, len(rels))
	for i, r := range rels {
		pos[r] = i
	}
	cur := make([][]relation.Tuple, len(cands))
	for i := range cands {
		cur[i] = cands[i]
	}
	// side prunes relPos against otherPos: a tuple u survives if some v in
	// the other list satisfies the condition with u on side "uIsLeft".
	type side struct {
		relPos, attr        int
		otherPos, otherAttr int
		pred                interval.Predicate
		uIsLeft             bool
	}
	var sides []side
	for _, c := range conds {
		li, lok := pos[c.Left.Rel]
		ri, rok := pos[c.Right.Rel]
		if !lok || !rok {
			continue
		}
		sides = append(sides,
			side{li, c.Left.Attr, ri, c.Right.Attr, c.Pred, true},
			side{ri, c.Right.Attr, li, c.Left.Attr, c.Pred, false})
	}
	// sortedByStart caches, per (relPos, attr), the current list's endpoint
	// columns sorted by start — the survival scan below never touches the
	// tuples themselves; invalidated when the list shrinks.
	type sortedList struct {
		starts []int64
		ends   []int64
	}
	sortCache := make(map[[2]int]sortedList)
	sortedByStart := func(relPos, attr int) sortedList {
		key := [2]int{relPos, attr}
		if s, ok := sortCache[key]; ok {
			return s
		}
		src := cur[relPos]
		pairs := make([]keyIdx, len(src))
		for k := range src {
			pairs[k] = keyIdx{key: src[k].Attrs[attr].Start, idx: int32(k)}
		}
		slices.SortFunc(pairs, func(a, b keyIdx) int { return cmp.Compare(a.key, b.key) })
		s := sortedList{
			starts: make([]int64, len(src)),
			ends:   make([]int64, len(src)),
		}
		for k, pr := range pairs {
			s.starts[k] = pr.key
			s.ends[k] = src[pr.idx].Attrs[attr].End
		}
		sortCache[key] = s
		return s
	}
	invalidate := func(relPos int) {
		for key := range sortCache {
			if key[0] == relPos {
				delete(sortCache, key)
			}
		}
	}
	for changed := true; changed; {
		changed = false
		for _, s := range sides {
			src := cur[s.relPos]
			if len(src) == 0 {
				continue
			}
			sorted := sortedByStart(s.otherPos, s.otherAttr)
			// Exact partner windows from the application with u bound:
			// p(u, x) when u is the left operand, p'(u, x) otherwise —
			// condWindows makes the survival scan a pure column test.
			p := s.pred
			if !s.uIsLeft {
				p = p.Inverse()
			}
			los := make([]int64, len(src))
			shi := make([]int64, len(src))
			elo := make([]int64, len(src))
			ehi := make([]int64, len(src))
			for ui := range src {
				sLo, sHi, eLo, eHi, ok := condWindows(p, src[ui].Attrs[s.attr])
				if !ok {
					los[ui], shi[ui] = math.MaxInt64, math.MinInt64
					continue
				}
				los[ui], shi[ui], elo[ui], ehi[ui] = sLo, sHi, eLo, eHi
			}
			froms := sweepFroms(los, sorted.starts)
			kept := src[:0:0]
			for ui, u := range src {
				if kernelSemijoin(sorted.starts, sorted.ends, int(froms[ui]), shi[ui], elo[ui], ehi[ui]) {
					kept = append(kept, u)
				}
			}
			if len(kept) != len(src) {
				cur[s.relPos] = kept
				invalidate(s.relPos)
				changed = true
			}
		}
	}
	for i := range cur {
		if len(cur[i]) == 0 {
			empty := make([][]relation.Tuple, len(cur))
			for j := range empty {
				empty[j] = nil
			}
			return empty
		}
	}
	return cur
}
