package core

import (
	"math"
	"sort"

	"intervaljoin/internal/interval"
	"intervaljoin/internal/query"
	"intervaljoin/internal/relation"
)

// enumerator performs a backtracking multi-way join over an arbitrary subset
// of the query's relations. It is the work-horse of every reduce function
// (each reducer joins the tuples it received) and of the reference oracle.
//
// Relations are bound in the order given at construction; each condition is
// checked as soon as both of its operands are bound, pruning the search.
type enumerator struct {
	rels []int // relation indices, in binding order
	pos  map[int]int
	// condsAt[i] lists the conditions checkable once binding position i is
	// filled.
	condsAt [][]query.Condition
}

// newEnumerator prepares an enumerator over the given relation indices using
// exactly those conditions whose operands both lie within rels.
func newEnumerator(conds []query.Condition, rels []int) *enumerator {
	e := &enumerator{
		rels:    rels,
		pos:     make(map[int]int, len(rels)),
		condsAt: make([][]query.Condition, len(rels)),
	}
	for i, r := range rels {
		e.pos[r] = i
	}
	for _, c := range conds {
		li, lok := e.pos[c.Left.Rel]
		ri, rok := e.pos[c.Right.Rel]
		if !lok || !rok {
			continue
		}
		later := li
		if ri > later {
			later = ri
		}
		e.condsAt[later] = append(e.condsAt[later], c)
	}
	return e
}

// run enumerates every assignment (one tuple per relation, from cands, which
// is parallel to the constructor's rels) satisfying all applicable
// conditions, invoking fn with the assignment parallel to rels. fn must not
// retain asg.
//
// Each candidate list is sorted by the start point of the attribute its
// first applicable condition constrains; at every level, the Allen
// predicates against already-bound operands bound the legal start range, so
// only the candidates inside the intersected range are visited (a binary
// search plus a bounded scan rather than a full pass).
func (e *enumerator) run(cands [][]relation.Tuple, fn func(asg []relation.Tuple)) {
	if len(cands) != len(e.rels) {
		panic("core: enumerator candidate arity mismatch")
	}
	// Sort level i's candidates by the attribute constrained at level i
	// (the first applicable condition's operand attribute); levels with no
	// condition stay unsorted.
	sortAttr := make([]int, len(e.rels))
	for i := range e.rels {
		sortAttr[i] = -1
		if len(e.condsAt[i]) > 0 {
			c := e.condsAt[i][0]
			if e.pos[c.Left.Rel] == i {
				sortAttr[i] = c.Left.Attr
			} else {
				sortAttr[i] = c.Right.Attr
			}
		}
	}
	sorted := make([][]relation.Tuple, len(cands))
	for i := range cands {
		if sortAttr[i] < 0 {
			sorted[i] = cands[i]
			continue
		}
		cp := make([]relation.Tuple, len(cands[i]))
		copy(cp, cands[i])
		attr := sortAttr[i]
		sort.Slice(cp, func(a, b int) bool { return cp[a].Attrs[attr].Start < cp[b].Attrs[attr].Start })
		sorted[i] = cp
	}

	asg := make([]relation.Tuple, len(e.rels))
	var rec func(i int)
	rec = func(i int) {
		if i == len(e.rels) {
			fn(asg)
			return
		}
		list := sorted[i]
		lo, hi := int64(math.MinInt64), int64(math.MaxInt64)
		if sortAttr[i] >= 0 {
			// Intersect the start ranges the conditions impose on this
			// level's sort attribute.
			for _, c := range e.condsAt[i] {
				var l, h interval.Point
				if e.pos[c.Left.Rel] == i {
					if c.Left.Attr != sortAttr[i] {
						continue
					}
					b := asg[e.pos[c.Right.Rel]].Attrs[c.Right.Attr]
					l, h = startRange(c.Pred.Inverse(), b)
				} else {
					if c.Right.Attr != sortAttr[i] {
						continue
					}
					b := asg[e.pos[c.Left.Rel]].Attrs[c.Left.Attr]
					l, h = startRange(c.Pred, b)
				}
				if l > lo {
					lo = l
				}
				if h < hi {
					hi = h
				}
			}
			if lo > hi {
				return
			}
		}
		start := 0
		if sortAttr[i] >= 0 && lo > math.MinInt64 {
			attr := sortAttr[i]
			start = sort.Search(len(list), func(k int) bool { return list[k].Attrs[attr].Start >= lo })
		}
	next:
		for k := start; k < len(list); k++ {
			t := list[k]
			if sortAttr[i] >= 0 && t.Attrs[sortAttr[i]].Start > hi {
				break
			}
			asg[i] = t
			for _, c := range e.condsAt[i] {
				u := asg[e.pos[c.Left.Rel]].Attrs[c.Left.Attr]
				v := asg[e.pos[c.Right.Rel]].Attrs[c.Right.Attr]
				if !c.Pred.Eval(u, v) {
					continue next
				}
			}
			rec(i + 1)
		}
	}
	rec(0)
}

// startRange bounds the start point of the unbound interval x for the
// predicate application p(b, x) with b bound: p(b, x) can only hold when
// lo <= x.Start <= hi. The residual conditions are still checked by Eval;
// the range is a sound filter, exact on the start coordinate.
func startRange(p interval.Predicate, b interval.Interval) (lo, hi interval.Point) {
	const (
		negInf = math.MinInt64
		posInf = math.MaxInt64
	)
	switch p {
	case interval.Before: // x starts after b ends
		return satAdd(b.End, 1), posInf
	case interval.After: // x ends before b starts
		return negInf, satAdd(b.Start, -1)
	case interval.Meets: // x starts exactly at b's end
		return b.End, b.End
	case interval.MetBy: // x ends at b's start
		return negInf, b.Start
	case interval.Overlaps: // b.s < x.s < b.e
		return satAdd(b.Start, 1), satAdd(b.End, -1)
	case interval.OverlappedBy: // x.s < b.s
		return negInf, satAdd(b.Start, -1)
	case interval.Contains: // b.s < x.s (and x.e < b.e)
		return satAdd(b.Start, 1), satAdd(b.End, -1)
	case interval.ContainedBy: // x.s < b.s
		return negInf, satAdd(b.Start, -1)
	case interval.Starts, interval.StartedBy, interval.Equals:
		return b.Start, b.Start
	case interval.Finishes: // x.s < b.s... Finishes(b,x): b.e==x.e, b.s > x.s
		return negInf, satAdd(b.Start, -1)
	case interval.FinishedBy: // x.s > b.s and x.e == b.e
		return satAdd(b.Start, 1), b.End
	}
	return negInf, posInf
}

// satAdd adds with saturation at the int64 extremes.
func satAdd(a interval.Point, d int64) interval.Point {
	s := a + d
	if d > 0 && s < a {
		return math.MaxInt64
	}
	if d < 0 && s > a {
		return math.MinInt64
	}
	return s
}

// semijoinReduce prunes each candidate list to tuples that have at least one
// partner under every incident condition, iterating to a fixpoint. For an
// acyclic condition graph the surviving tuples are exactly those that
// participate in some satisfying assignment; for cyclic graphs the result is
// a superset (safe for RCCIS: replicating extra intervals never loses
// output, it only costs communication). All paper queries are acyclic.
//
// Partner search uses the same start-range bounds as the enumerator: the
// partner list is kept sorted by the start of the condition's attribute, so
// each existence check is a binary search plus a bounded scan.
//
// conds must only mention relations in rels. cands is parallel to rels and
// is not modified; the pruned lists are returned. If any list empties, all
// returned lists are empty (no assignment exists).
func semijoinReduce(conds []query.Condition, rels []int, cands [][]relation.Tuple) [][]relation.Tuple {
	pos := make(map[int]int, len(rels))
	for i, r := range rels {
		pos[r] = i
	}
	cur := make([][]relation.Tuple, len(cands))
	for i := range cands {
		cur[i] = cands[i]
	}
	// side prunes relPos against otherPos: a tuple u survives if some v in
	// the other list satisfies the condition with u on side "uIsLeft".
	type side struct {
		relPos, attr        int
		otherPos, otherAttr int
		pred                interval.Predicate
		uIsLeft             bool
	}
	var sides []side
	for _, c := range conds {
		li, lok := pos[c.Left.Rel]
		ri, rok := pos[c.Right.Rel]
		if !lok || !rok {
			continue
		}
		sides = append(sides,
			side{li, c.Left.Attr, ri, c.Right.Attr, c.Pred, true},
			side{ri, c.Right.Attr, li, c.Left.Attr, c.Pred, false})
	}
	hasPartner := func(s side, u relation.Tuple, other []relation.Tuple) bool {
		b := u.Attrs[s.attr]
		// Range of the partner's start: partner is the opposite operand.
		p := s.pred
		if !s.uIsLeft {
			p = p.Inverse() // partner is the left operand: p(x, b) == p'(b, x)
		}
		lo, hi := startRange(p, b)
		start := 0
		if lo > math.MinInt64 {
			start = sort.Search(len(other), func(k int) bool {
				return other[k].Attrs[s.otherAttr].Start >= lo
			})
		}
		for k := start; k < len(other); k++ {
			v := other[k]
			if v.Attrs[s.otherAttr].Start > hi {
				return false
			}
			var ok bool
			if s.uIsLeft {
				ok = s.pred.Eval(b, v.Attrs[s.otherAttr])
			} else {
				ok = s.pred.Eval(v.Attrs[s.otherAttr], b)
			}
			if ok {
				return true
			}
		}
		return false
	}
	// sortedByStart caches, per (relPos, attr), the current list sorted by
	// that attribute's start; invalidated when the list shrinks.
	sortCache := make(map[[2]int][]relation.Tuple)
	sortedByStart := func(relPos, attr int) []relation.Tuple {
		key := [2]int{relPos, attr}
		if s, ok := sortCache[key]; ok {
			return s
		}
		cp := make([]relation.Tuple, len(cur[relPos]))
		copy(cp, cur[relPos])
		sort.Slice(cp, func(a, b int) bool { return cp[a].Attrs[attr].Start < cp[b].Attrs[attr].Start })
		sortCache[key] = cp
		return cp
	}
	invalidate := func(relPos int) {
		for key := range sortCache {
			if key[0] == relPos {
				delete(sortCache, key)
			}
		}
	}
	for changed := true; changed; {
		changed = false
		for _, s := range sides {
			src := cur[s.relPos]
			other := sortedByStart(s.otherPos, s.otherAttr)
			kept := src[:0:0]
			for _, u := range src {
				if hasPartner(s, u, other) {
					kept = append(kept, u)
				}
			}
			if len(kept) != len(src) {
				cur[s.relPos] = kept
				invalidate(s.relPos)
				changed = true
			}
		}
	}
	for i := range cur {
		if len(cur[i]) == 0 {
			empty := make([][]relation.Tuple, len(cur))
			for j := range empty {
				empty[j] = nil
			}
			return empty
		}
	}
	return cur
}
