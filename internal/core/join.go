package core

import (
	"cmp"
	"math"
	"slices"
	"sort"
	"sync"

	"intervaljoin/internal/interval"
	"intervaljoin/internal/query"
	"intervaljoin/internal/relation"
)

// enumerator performs a backtracking multi-way join over an arbitrary subset
// of the query's relations. It is the work-horse of every reduce function
// (each reducer joins the tuples it received) and of the reference oracle.
//
// Relations are bound in the order given at construction; each condition is
// checked as soon as both of its operands are bound, pruning the search.
//
// Construction derives a static plan (per-level sort attribute, condition
// orientation, sweep eligibility) that is immutable afterwards, so one
// enumerator can be shared by concurrent reduce tasks; all per-run state
// lives in the preparedJoin that prepare returns.
type enumerator struct {
	rels []int // relation indices, in binding order
	pos  map[int]int
	// condsAt[i] lists the conditions checkable once binding position i is
	// filled.
	condsAt [][]query.Condition
	// plans[i] is the compiled form of condsAt[i].
	plans []levelPlan
	// pool recycles preparedJoins (and all their sort/window buffers)
	// across the single-shot runs reduce functions issue.
	pool sync.Pool
}

// condEval is a condition compiled for the inner enumeration loop: operand
// positions resolved to binding levels so no map lookups happen per
// candidate.
type condEval struct {
	lLevel, lAttr int
	rLevel, rAttr int
	pred          interval.Predicate
}

// plannedCond is one condition applicable at a binding level, oriented so
// that pred(bound, candidate) is the application whose startRange bounds the
// candidate side: partner/battr locate the already-bound operand, and onSort
// reports whether the candidate-side operand is the level's sort attribute
// (only those conditions can prune by start range).
type plannedCond struct {
	eval    condEval
	partner int
	battr   int
	pred    interval.Predicate
	onSort  bool
}

// levelPlan is the static per-binding-level plan.
type levelPlan struct {
	// sortAttr is the attribute the level's candidate list is sorted by
	// (the first applicable condition's operand attribute), or -1 when the
	// level has no applicable conditions.
	sortAttr int
	conds    []plannedCond
	// sweep is true when every applicable condition constrains the single
	// sort attribute: the level then uses precomputed sweep windows.
	// Multi-attribute levels (General-class queries) fall back to the
	// binary-search probe, which handles per-condition attributes.
	sweep bool
}

// newEnumerator prepares an enumerator over the given relation indices using
// exactly those conditions whose operands both lie within rels.
func newEnumerator(conds []query.Condition, rels []int) *enumerator {
	e := &enumerator{
		rels:    rels,
		pos:     make(map[int]int, len(rels)),
		condsAt: make([][]query.Condition, len(rels)),
		plans:   make([]levelPlan, len(rels)),
	}
	for i, r := range rels {
		e.pos[r] = i
	}
	for _, c := range conds {
		li, lok := e.pos[c.Left.Rel]
		ri, rok := e.pos[c.Right.Rel]
		if !lok || !rok {
			continue
		}
		later := li
		if ri > later {
			later = ri
		}
		e.condsAt[later] = append(e.condsAt[later], c)
	}
	for i := range e.rels {
		e.plans[i] = e.compileLevel(i)
	}
	return e
}

// compileLevel builds the static plan for binding level i.
func (e *enumerator) compileLevel(i int) levelPlan {
	lp := levelPlan{sortAttr: -1}
	conds := e.condsAt[i]
	if len(conds) == 0 {
		return lp
	}
	// The level's candidates are sorted by the attribute the first
	// applicable condition constrains.
	first := conds[0]
	if e.pos[first.Left.Rel] == i {
		lp.sortAttr = first.Left.Attr
	} else {
		lp.sortAttr = first.Right.Attr
	}
	lp.sweep = true
	for _, c := range conds {
		pc := plannedCond{
			eval: condEval{
				lLevel: e.pos[c.Left.Rel], lAttr: c.Left.Attr,
				rLevel: e.pos[c.Right.Rel], rAttr: c.Right.Attr,
				pred: c.Pred,
			},
		}
		if e.pos[c.Left.Rel] == i {
			// Candidate is the left operand: p(x, b) == p'(b, x).
			pc.partner = e.pos[c.Right.Rel]
			pc.battr = c.Right.Attr
			pc.pred = c.Pred.Inverse()
			pc.onSort = c.Left.Attr == lp.sortAttr
		} else {
			pc.partner = e.pos[c.Left.Rel]
			pc.battr = c.Left.Attr
			pc.pred = c.Pred
			pc.onSort = c.Right.Attr == lp.sortAttr
		}
		if !pc.onSort {
			lp.sweep = false
		}
		lp.conds = append(lp.conds, pc)
	}
	return lp
}

// preparedJoin carries one run's mutable state: the start-sorted candidate
// lists (hoisted out of the enumeration so repeated runs over the same
// candidates sort once) and the lazily built sweep windows. A preparedJoin
// belongs to a single goroutine; the enumerator it came from may be shared.
type preparedJoin struct {
	e     *enumerator
	lists [][]relation.Tuple
	// bufs[i] is the owned backing array lists[i] points at when level i is
	// sorted (lists[i] aliases the caller's slice otherwise); kept separate
	// so pooled reuse never writes into caller-owned memory.
	bufs [][]relation.Tuple
	// starts[i] is the sorted column lists[i][.].Attrs[sortAttr].Start —
	// the only data the sweeps and probes touch, so window building never
	// walks tuple structs. nil for unconstrained levels.
	starts [][]int64
	// wins[i][k] is condition k's window table at level i: per partner
	// tuple (by its index in lists[plans[i].conds[k].partner]), the first
	// candidate index and the start bound the enumeration scan stops at.
	// Built on the first visit to level i, so candidate sets pruned away by
	// earlier levels never pay for their windows.
	wins  [][]condWindow
	built []bool
	pairs []keyIdx // sort scratch
	los   []int64  // window-build scratch
	asg   []relation.Tuple
	idx   []int // idx[j]: current index of asg[j] within lists[j]
	fn    func(asg []relation.Tuple)
}

// prepare sorts each level's candidate list by its sort attribute and
// returns the reusable per-run state. cands is parallel to the constructor's
// rels; levels with no applicable condition keep their input order.
func (e *enumerator) prepare(cands [][]relation.Tuple) *preparedJoin {
	p := &preparedJoin{e: e}
	p.load(cands)
	return p
}

// load (re)initialises the prepared state for a fresh candidate set,
// reusing every buffer whose capacity suffices. The sort permutes packed
// (start, index) pairs and gathers the tuples once, which is markedly
// cheaper than sorting the tuple structs directly.
func (p *preparedJoin) load(cands [][]relation.Tuple) {
	if len(cands) != len(p.e.rels) {
		panic("core: enumerator candidate arity mismatch")
	}
	n := len(cands)
	p.lists = sized(p.lists, n)
	p.bufs = sized(p.bufs, n)
	p.starts = sized(p.starts, n)
	p.wins = sized(p.wins, n)
	p.built = sized(p.built, n)
	p.asg = sized(p.asg, n)
	p.idx = sized(p.idx, n)
	for i := range cands {
		p.built[i] = false
		attr := p.e.plans[i].sortAttr
		if attr < 0 {
			p.lists[i] = cands[i]
			p.starts[i] = nil
			continue
		}
		src := cands[i]
		p.pairs = sized(p.pairs, len(src))
		pairs := p.pairs
		for k := range src {
			pairs[k] = keyIdx{key: src[k].Attrs[attr].Start, idx: int32(k)}
		}
		slices.SortFunc(pairs, func(a, b keyIdx) int { return cmp.Compare(a.key, b.key) })
		cp := sized(p.bufs[i], len(src))
		col := sized(p.starts[i], len(src))
		for k, pr := range pairs {
			cp[k] = src[pr.idx]
			col[k] = pr.key
		}
		p.bufs[i] = cp
		p.lists[i] = cp
		p.starts[i] = col
	}
}

// buildWindows runs the endpoint sweeps for level i: one window table per
// applicable condition, each mapping a partner tuple to its candidate
// window.
func (p *preparedJoin) buildWindows(i int) {
	lp := &p.e.plans[i]
	p.wins[i] = sized(p.wins[i], len(lp.conds))
	for k := range lp.conds {
		c := &lp.conds[k]
		w := &p.wins[i][k]
		plist := p.lists[c.partner]
		nt := len(plist)
		fam := familyOf(c.pred)
		if fam == sweepLoOnly {
			w.hi = nil
		} else {
			w.hi = sized(w.hi, nt)
		}
		p.los = sized(p.los, nt)
		for t := range plist {
			lo, hi := startRange(c.pred, plist[t].Attrs[c.battr])
			p.los[t] = lo
			if w.hi != nil {
				w.hi[t] = hi
			}
		}
		w.from = sized(w.from, nt)
		if fam == sweepHiOnly {
			clear(w.from) // every window starts at 0
		} else {
			sweepFromsInto(w.from, p.los, p.starts[i])
		}
	}
	p.built[i] = true
}

// run enumerates every assignment (one tuple per relation, from the prepared
// candidate lists) satisfying all applicable conditions, invoking fn with
// the assignment parallel to rels. fn must not retain asg. run may be called
// repeatedly; the sorted orders and sweep windows are reused.
func (p *preparedJoin) run(fn func(asg []relation.Tuple)) {
	p.fn = fn
	p.rec(0)
	p.fn = nil
}

func (p *preparedJoin) rec(i int) {
	if i == len(p.lists) {
		p.fn(p.asg)
		return
	}
	lp := &p.e.plans[i]
	list := p.lists[i]
	from := 0
	hiBound := int64(math.MaxInt64)
	switch {
	case lp.sweep && len(lp.conds) > 0:
		// Sweep path: intersect the precomputed per-partner windows.
		if !p.built[i] {
			p.buildWindows(i)
		}
		wins := p.wins[i]
		for k := range lp.conds {
			w := &wins[k]
			t := p.idx[lp.conds[k].partner]
			if f := int(w.from[t]); f > from {
				from = f
			}
			if w.hi != nil && w.hi[t] < hiBound {
				hiBound = w.hi[t]
			}
		}
	case lp.sortAttr >= 0:
		// Probe fallback (multi-attribute levels): intersect the start
		// ranges the sort-attribute conditions impose, binary-search the
		// window start and let the scan break on the upper bound.
		lo := int64(math.MinInt64)
		for k := range lp.conds {
			c := &lp.conds[k]
			if !c.onSort {
				continue
			}
			l, h := startRange(c.pred, p.asg[c.partner].Attrs[c.battr])
			if l > lo {
				lo = l
			}
			if h < hiBound {
				hiBound = h
			}
		}
		if lo > hiBound {
			return
		}
		if lo > math.MinInt64 {
			col := p.starts[i]
			from = sort.Search(len(col), func(k int) bool { return col[k] >= lo })
		}
	}
	col := p.starts[i] // nil only for unconstrained levels, where hiBound stays +inf
next:
	for k := from; k < len(list); k++ {
		if col != nil && col[k] > hiBound {
			break
		}
		p.asg[i] = list[k]
		p.idx[i] = k
		for _, c := range lp.conds {
			u := p.asg[c.eval.lLevel].Attrs[c.eval.lAttr]
			v := p.asg[c.eval.rLevel].Attrs[c.eval.rAttr]
			if !c.eval.pred.Eval(u, v) {
				continue next
			}
		}
		p.rec(i + 1)
	}
}

// run prepares cands and enumerates once — the single-shot form used by
// reduce functions, which see each candidate set exactly once. The prepared
// state comes from a pool, so steady-state runs allocate nothing.
func (e *enumerator) run(cands [][]relation.Tuple, fn func(asg []relation.Tuple)) {
	p, _ := e.pool.Get().(*preparedJoin)
	if p == nil {
		p = &preparedJoin{e: e}
	}
	p.load(cands)
	p.run(fn)
	e.pool.Put(p)
}

// startRange bounds the start point of the unbound interval x for the
// predicate application p(b, x) with b bound: p(b, x) can only hold when
// lo <= x.Start <= hi. The residual conditions are still checked by Eval;
// the range is a sound filter, exact on the start coordinate.
func startRange(p interval.Predicate, b interval.Interval) (lo, hi interval.Point) {
	const (
		negInf = math.MinInt64
		posInf = math.MaxInt64
	)
	switch p {
	case interval.Before: // x starts after b ends
		return satAdd(b.End, 1), posInf
	case interval.After: // x ends before b starts
		return negInf, satAdd(b.Start, -1)
	case interval.Meets: // x starts exactly at b's end
		return b.End, b.End
	case interval.MetBy: // x ends at b's start
		return negInf, b.Start
	case interval.Overlaps: // b.s < x.s < b.e
		return satAdd(b.Start, 1), satAdd(b.End, -1)
	case interval.OverlappedBy: // x.s < b.s
		return negInf, satAdd(b.Start, -1)
	case interval.Contains: // b.s < x.s (and x.e < b.e)
		return satAdd(b.Start, 1), satAdd(b.End, -1)
	case interval.ContainedBy: // x.s < b.s
		return negInf, satAdd(b.Start, -1)
	case interval.Starts, interval.StartedBy, interval.Equals:
		return b.Start, b.Start
	case interval.Finishes: // x.s < b.s... Finishes(b,x): b.e==x.e, b.s > x.s
		return negInf, satAdd(b.Start, -1)
	case interval.FinishedBy: // x.s > b.s and x.e == b.e
		return satAdd(b.Start, 1), b.End
	}
	return negInf, posInf
}

// satAdd adds with saturation at the int64 extremes.
func satAdd(a interval.Point, d int64) interval.Point {
	s := a + d
	if d > 0 && s < a {
		return math.MaxInt64
	}
	if d < 0 && s > a {
		return math.MinInt64
	}
	return s
}

// semijoinReduce prunes each candidate list to tuples that have at least one
// partner under every incident condition, iterating to a fixpoint. For an
// acyclic condition graph the surviving tuples are exactly those that
// participate in some satisfying assignment; for cyclic graphs the result is
// a superset (safe for RCCIS: replicating extra intervals never loses
// output, it only costs communication). All paper queries are acyclic.
//
// Partner search uses the same sweep kernel as the enumerator: one endpoint
// sweep per pruning pass computes every tuple's candidate window into the
// partner list (sorted by the condition's attribute start), so each
// existence check is a bounded scan of its precomputed window rather than a
// fresh binary search.
//
// conds must only mention relations in rels. cands is parallel to rels and
// is not modified; the pruned lists are returned. If any list empties, all
// returned lists are empty (no assignment exists).
func semijoinReduce(conds []query.Condition, rels []int, cands [][]relation.Tuple) [][]relation.Tuple {
	pos := make(map[int]int, len(rels))
	for i, r := range rels {
		pos[r] = i
	}
	cur := make([][]relation.Tuple, len(cands))
	for i := range cands {
		cur[i] = cands[i]
	}
	// side prunes relPos against otherPos: a tuple u survives if some v in
	// the other list satisfies the condition with u on side "uIsLeft".
	type side struct {
		relPos, attr        int
		otherPos, otherAttr int
		pred                interval.Predicate
		uIsLeft             bool
	}
	var sides []side
	for _, c := range conds {
		li, lok := pos[c.Left.Rel]
		ri, rok := pos[c.Right.Rel]
		if !lok || !rok {
			continue
		}
		sides = append(sides,
			side{li, c.Left.Attr, ri, c.Right.Attr, c.Pred, true},
			side{ri, c.Right.Attr, li, c.Left.Attr, c.Pred, false})
	}
	// sortedByStart caches, per (relPos, attr), the current list sorted by
	// that attribute's start plus the sorted start column; invalidated when
	// the list shrinks.
	type sortedList struct {
		tuples []relation.Tuple
		starts []int64
	}
	sortCache := make(map[[2]int]sortedList)
	sortedByStart := func(relPos, attr int) sortedList {
		key := [2]int{relPos, attr}
		if s, ok := sortCache[key]; ok {
			return s
		}
		src := cur[relPos]
		pairs := make([]keyIdx, len(src))
		for k := range src {
			pairs[k] = keyIdx{key: src[k].Attrs[attr].Start, idx: int32(k)}
		}
		slices.SortFunc(pairs, func(a, b keyIdx) int { return cmp.Compare(a.key, b.key) })
		s := sortedList{
			tuples: make([]relation.Tuple, len(src)),
			starts: make([]int64, len(src)),
		}
		for k, pr := range pairs {
			s.tuples[k] = src[pr.idx]
			s.starts[k] = pr.key
		}
		sortCache[key] = s
		return s
	}
	invalidate := func(relPos int) {
		for key := range sortCache {
			if key[0] == relPos {
				delete(sortCache, key)
			}
		}
	}
	for changed := true; changed; {
		changed = false
		for _, s := range sides {
			src := cur[s.relPos]
			if len(src) == 0 {
				continue
			}
			sorted := sortedByStart(s.otherPos, s.otherAttr)
			other := sorted.tuples
			// Partner start ranges come from the application with u bound:
			// p(u, x) when u is the left operand, p'(u, x) otherwise.
			p := s.pred
			if !s.uIsLeft {
				p = p.Inverse()
			}
			los := make([]int64, len(src))
			his := make([]int64, len(src))
			for ui := range src {
				los[ui], his[ui] = startRange(p, src[ui].Attrs[s.attr])
			}
			froms := sweepFroms(los, sorted.starts)
			kept := src[:0:0]
			for ui, u := range src {
				b := u.Attrs[s.attr]
				found := false
				hi := his[ui]
				for k := int(froms[ui]); k < len(other) && sorted.starts[k] <= hi; k++ {
					v := other[k].Attrs[s.otherAttr]
					if s.uIsLeft {
						found = s.pred.Eval(b, v)
					} else {
						found = s.pred.Eval(v, b)
					}
					if found {
						break
					}
				}
				if found {
					kept = append(kept, u)
				}
			}
			if len(kept) != len(src) {
				cur[s.relPos] = kept
				invalidate(s.relPos)
				changed = true
			}
		}
	}
	for i := range cur {
		if len(cur[i]) == 0 {
			empty := make([][]relation.Tuple, len(cur))
			for j := range empty {
				empty[j] = nil
			}
			return empty
		}
	}
	return cur
}
