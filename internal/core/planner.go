package core

import "intervaljoin/internal/query"

// Plan selects the paper's recommended algorithm for a query's class:
// RCCIS for colocation queries, All-Matrix for sequence queries,
// All-Seq-Matrix for hybrid queries (PASM when PreferPruning is set), and
// Gen-Matrix for general multi-attribute queries. Two-relation
// single-condition queries use the one-cycle 2-way strategy table directly.
func Plan(q *query.Query, preferPruning bool) Algorithm {
	if len(q.Conds) == 1 && len(q.Relations) == 2 && q.Classify() != query.General {
		return TwoWay{}
	}
	switch q.Classify() {
	case query.Colocation:
		return RCCIS{}
	case query.Sequence:
		return AllMatrix{}
	case query.Hybrid:
		if preferPruning {
			return PASM{}
		}
		return SeqMatrix{}
	default:
		return GenMatrix{}
	}
}

// Algorithms returns every distributed algorithm applicable to the query,
// the paper's recommended one first. The reference oracle is not included.
func Algorithms(q *query.Query) []Algorithm {
	switch q.Classify() {
	case query.Colocation:
		algs := []Algorithm{RCCIS{}}
		if len(q.Conds) == 1 && len(q.Relations) == 2 {
			algs = append(algs, TwoWay{})
		}
		return append(algs, SeqMatrix{}, PASM{}, FCTS{}, AllRep{}, Cascade{})
	case query.Sequence:
		algs := []Algorithm{AllMatrix{}}
		if len(q.Conds) == 1 && len(q.Relations) == 2 {
			algs = append(algs, TwoWay{})
		}
		return append(algs, SeqMatrix{}, PASM{}, AllRep{}, Cascade{}, Cascade{MatrixSteps: true})
	case query.Hybrid:
		return []Algorithm{SeqMatrix{}, PASM{}, FCTS{}, FSTC{}, AllRep{}, Cascade{}, Cascade{MatrixSteps: true}}
	default:
		return []Algorithm{GenMatrix{}}
	}
}
