package core

import "intervaljoin/internal/query"

// kernelKind is the planner's dispatch choice for one binding level of the
// reduce-side enumerator — which inner loop shape the level runs
// (sweep.go). The dispatch table, by the oriented predicates applicable at
// the level:
//
//	level shape                                  kernel
//	─────────────────────────────────────────────────────────
//	any condition off the sort attribute,        kindGeneric
//	or no conditions at all
//	all conditions pin the candidate start       kindMerge
//	to one point (meets / starts / started-by
//	/ equals applications)
//	everything else (overlap-class, before /     kindSweep
//	after, contains, finishes families)
type kernelKind uint8

const (
	// kindGeneric: binary-search probe plus per-candidate Eval through the
	// arena — the only kernel that handles conditions over attributes other
	// than the level's sort attribute (General-class queries), and the
	// trivial scan for condition-free levels.
	kindGeneric kernelKind = iota
	// kindSweep: the Piatov-style columnar sweep — scan the start column
	// within the intersected exact window, filter on the end column.
	kindSweep
	// kindMerge: the tight merge loop over the equal-start run when every
	// condition pins the candidate start to a single point.
	kindMerge
)

// String names the kernel kind for diagnostics and counters.
func (k kernelKind) String() string {
	switch k {
	case kindSweep:
		return "sweep"
	case kindMerge:
		return "merge"
	default:
		return "generic"
	}
}

// chooseKernel picks the inner-loop shape for a compiled level. Exactness
// of the specialized kernels rests on condWindows (sweep.go): for
// conditions over the level's single sort attribute, the Allen predicate
// decomposes exactly into endpoint windows, so no per-candidate Eval is
// needed. Levels where that precondition fails keep the generic path.
func chooseKernel(lp levelPlan) kernelKind {
	if !lp.sweep || len(lp.conds) == 0 {
		return kindGeneric
	}
	for _, c := range lp.conds {
		if !pointStart(c.pred) {
			return kindSweep
		}
	}
	return kindMerge
}

// Plan selects the paper's recommended algorithm for a query's class:
// RCCIS for colocation queries, All-Matrix for sequence queries,
// All-Seq-Matrix for hybrid queries (PASM when PreferPruning is set), and
// Gen-Matrix for general multi-attribute queries. Two-relation
// single-condition queries use the one-cycle 2-way strategy table directly.
func Plan(q *query.Query, preferPruning bool) Algorithm {
	if len(q.Conds) == 1 && len(q.Relations) == 2 && q.Classify() != query.General {
		return TwoWay{}
	}
	switch q.Classify() {
	case query.Colocation:
		return RCCIS{}
	case query.Sequence:
		return AllMatrix{}
	case query.Hybrid:
		if preferPruning {
			return PASM{}
		}
		return SeqMatrix{}
	default:
		return GenMatrix{}
	}
}

// Algorithms returns every distributed algorithm applicable to the query,
// the paper's recommended one first. The reference oracle is not included.
func Algorithms(q *query.Query) []Algorithm {
	switch q.Classify() {
	case query.Colocation:
		algs := []Algorithm{RCCIS{}}
		if len(q.Conds) == 1 && len(q.Relations) == 2 {
			algs = append(algs, TwoWay{})
		}
		return append(algs, SeqMatrix{}, PASM{}, FCTS{}, AllRep{}, Cascade{})
	case query.Sequence:
		algs := []Algorithm{AllMatrix{}}
		if len(q.Conds) == 1 && len(q.Relations) == 2 {
			algs = append(algs, TwoWay{})
		}
		return append(algs, SeqMatrix{}, PASM{}, AllRep{}, Cascade{}, Cascade{MatrixSteps: true})
	case query.Hybrid:
		return []Algorithm{SeqMatrix{}, PASM{}, FCTS{}, FSTC{}, AllRep{}, Cascade{}, Cascade{MatrixSteps: true}}
	default:
		return []Algorithm{GenMatrix{}}
	}
}
