package core

import (
	"testing"
	"testing/quick"

	"intervaljoin/internal/interval"
	"intervaljoin/internal/relation"
)

func TestTaggedRoundTrip(t *testing.T) {
	f := func(rel uint8, id int64, s, l uint16) bool {
		tu := mkTuple(id, interval.New(int64(s), int64(s)+int64(l)))
		r, got, err := decodeTagged(encodeTagged(int(rel), tu))
		return err == nil && r == int(rel) && got.ID == id && got.Attrs[0] == tu.Attrs[0]
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestFlaggedRoundTrip(t *testing.T) {
	f := func(rel uint8, repl bool, id int64, s, l uint16) bool {
		tu := mkTuple(id, interval.New(int64(s), int64(s)+int64(l)))
		r, gotRepl, got, err := decodeFlagged(encodeFlagged(int(rel), repl, tu))
		return err == nil && r == int(rel) && gotRepl == repl && got.ID == id && got.Attrs[0] == tu.Attrs[0]
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestVertexFlaggedRoundTrip(t *testing.T) {
	f := func(rel, attr uint8, repl bool, id int64, s, l uint16) bool {
		tu := mkTuple(id, interval.New(int64(s), int64(s)+int64(l)))
		r, a, gotRepl, got, err := decodeVertexFlagged(encodeVertexFlagged(int(rel), int(attr), repl, tu))
		return err == nil && r == int(rel) && a == int(attr) && gotRepl == repl && got.ID == id
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestVectorRoundTrip(t *testing.T) {
	tu := relation.Tuple{ID: 42, Attrs: []interval.Interval{
		interval.New(0, 5), interval.New(7, 7),
	}}
	for _, flags := range [][]bool{{}, {true}, {false, true, false}} {
		rel, gotFlags, got, err := decodeVector(encodeVector(3, flags, tu))
		if err != nil || rel != 3 || got.ID != 42 || len(gotFlags) != len(flags) {
			t.Fatalf("vector round trip failed: %v %v %v %v", rel, gotFlags, got, err)
		}
		for i := range flags {
			if gotFlags[i] != flags[i] {
				t.Fatalf("flag %d mismatch", i)
			}
		}
	}
}

func TestDecodeTaggedErrors(t *testing.T) {
	for _, s := range []string{"", "noseparator", "x;1|0,1", "1;garbage"} {
		if _, _, err := decodeTagged(s); err == nil {
			t.Errorf("decodeTagged(%q) succeeded", s)
		}
	}
	for _, s := range []string{"", "1;2", "1;x;3|0,1", "y;0;3|0,1", "1;0;bad"} {
		if _, _, _, err := decodeFlagged(s); err == nil {
			t.Errorf("decodeFlagged(%q) succeeded", s)
		}
	}
	for _, s := range []string{"", "1;01", "1;0x1;3|0,1", "z;01;3|0,1"} {
		if _, _, _, err := decodeVector(s); err == nil {
			t.Errorf("decodeVector(%q) succeeded", s)
		}
	}
	for _, s := range []string{"", "1;2;3", "a;0;1;3|0,1", "1;b;1;3|0,1", "1;0;x;3|0,1"} {
		if _, _, _, _, err := decodeVertexFlagged(s); err == nil {
			t.Errorf("decodeVertexFlagged(%q) succeeded", s)
		}
	}
}

func TestPartialRoundTrip(t *testing.T) {
	pa := partialAssignment{
		{rel: 0, tuple: mkTuple(5, interval.New(0, 9))},
		{rel: 2, tuple: mkTuple(7, interval.New(3, 4))},
	}
	got, err := decodePartial(encodePartial(pa))
	if err != nil || len(got) != 2 || got[0].rel != 0 || got[1].tuple.ID != 7 {
		t.Fatalf("partial round trip: %v %v", got, err)
	}
	if got.intervalOf(2) != interval.New(3, 4) {
		t.Fatalf("intervalOf(2) = %v", got.intervalOf(2))
	}
}

func TestOutputTupleRoundTrip(t *testing.T) {
	o := OutputTuple{3, -1, 99}
	got, err := ParseOutputTuple(o.Key())
	if err != nil || len(got) != 3 || got[0] != 3 || got[1] != -1 || got[2] != 99 {
		t.Fatalf("output tuple round trip: %v %v", got, err)
	}
	if _, err := ParseOutputTuple("1,x"); err == nil {
		t.Error("bad output tuple accepted")
	}
}
