package core

import (
	"math/rand"
	"testing"

	"intervaljoin/internal/dfs"
	"intervaljoin/internal/mr"
	"intervaljoin/internal/obs"
	"intervaljoin/internal/query"
	"intervaljoin/internal/relation"
)

// runSingleTraced mirrors runSingle with a tracer attached, returning the
// tracer alongside the result and output lines.
func runSingleTraced(t *testing.T, alg Algorithm, q *query.Query, rels []*relation.Relation, opts Options) (*Result, []string, *obs.Tracer) {
	t.Helper()
	store := dfs.NewMem()
	tr := obs.New(obs.Options{})
	engine := mr.NewEngine(mr.Config{Store: store, Workers: 4, Tracer: tr})
	ctx, err := NewContext(engine, q, rels, opts)
	if err != nil {
		t.Fatal(err)
	}
	res, err := alg.Run(ctx)
	if err != nil {
		t.Fatalf("%s: %v", alg.Name(), err)
	}
	lines, err := dfs.ReadAll(store, opts.Scratch+"/output")
	if err != nil {
		t.Fatalf("%s: reading output: %v", alg.Name(), err)
	}
	return res, lines, tr
}

// TestTracedDriverMatchesUntraced runs representative algorithms (single
// cycle, pipelined multi-cycle, grid-keyed) with and without a tracer and
// requires byte-identical output — tracing must be purely observational —
// plus driver-annotated cycle spans in the trace.
func TestTracedDriverMatchesUntraced(t *testing.T) {
	cases := []struct {
		name   string
		alg    Algorithm
		query  string
		cycles int
	}{
		{"all-rep", AllRep{}, "R1 overlaps R2", 1},
		{"rccis", RCCIS{}, "R1 overlaps R2 and R2 overlaps R3", 2},
		{"pasm", PASM{}, "R1 before R2 and R1 overlaps R3", 3},
	}
	rng := rand.New(rand.NewSource(7))
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			q := query.MustParse(tc.query)
			rels := make([]*relation.Relation, len(q.Relations))
			for i, s := range q.Relations {
				rels[i] = randomRelation(rng, s.Name, 45, 160, 30)
			}
			opts := Options{
				Partitions: 6, PartitionsPerDim: 4,
				Scratch: "traced-equiv", SortValues: true,
			}
			_, wantLines := runSingle(t, tc.alg, q, rels, opts)
			res, gotLines, tr := runSingleTraced(t, tc.alg, q, rels, opts)

			if len(gotLines) != len(wantLines) {
				t.Fatalf("output has %d lines traced, %d untraced", len(gotLines), len(wantLines))
			}
			for i := range gotLines {
				if gotLines[i] != wantLines[i] {
					t.Fatalf("output line %d differs:\ntraced:   %q\nuntraced: %q", i, gotLines[i], wantLines[i])
				}
			}
			if res.Metrics.TrueWalls.Zero() {
				t.Error("traced run has no TrueWalls")
			}
			// Every cycle span must carry the driver's algorithm annotation.
			var cycles int
			for _, sp := range tr.Snapshot().Spans {
				if sp.Cat != obs.CatCycle {
					continue
				}
				cycles++
				var alg string
				for _, a := range sp.Args {
					if a.Key == "algorithm" {
						alg = a.Val
					}
				}
				if alg != tc.alg.Name() {
					t.Errorf("cycle span %q algorithm = %q, want %q", sp.Name, alg, tc.alg.Name())
				}
			}
			if cycles != tc.cycles {
				t.Errorf("trace has %d cycle spans, want %d", cycles, tc.cycles)
			}
		})
	}
}
