package core

import (
	"fmt"

	"intervaljoin/internal/interval"
	"intervaljoin/internal/mr"
	"intervaljoin/internal/query"
	"intervaljoin/internal/relation"
)

// AllRep is the All-Replicate baseline of Section 6: a single MR cycle that
// replicates every relation (or, when the query's less-than order has a
// unique right-most relation reachable from all others, projects that one
// and replicates the rest — the optimisation the paper applies to chain
// queries). It is correct for every single-interval-attribute query class
// but pays a huge communication cost, and for sequence queries it piles the
// whole load onto the right-most reducers (Figure 4).
type AllRep struct{}

// Name implements Algorithm.
func (AllRep) Name() string { return "all-rep" }

// Run implements Algorithm.
func (a AllRep) Run(ctx *Context) (*Result, error) {
	opts := ctx.Opts.withDefaults(a.Name())
	if cls := ctx.Query.Classify(); cls == query.General {
		return nil, fmt.Errorf("core: all-rep handles single-attribute queries only, got %v", cls)
	}
	if err := ctx.Stage(); err != nil {
		return nil, err
	}
	projectRel := projectableRightmost(ctx.Query)
	m := len(ctx.Rels)
	plan, err := ctx.makePlan(a.Name(), opts.Partitions, m)
	if err != nil {
		return nil, err
	}
	part := plan.part

	var replicated int64
	inputs := make([]mr.Input, m)
	for ri := range ctx.Rels {
		inputs[ri] = ctx.relInput(ri, ri)
		if ri != projectRel {
			replicated += int64(ctx.Rels[ri].Len())
		}
	}

	job := mr.Job{
		Name:   opts.Scratch + "/join",
		Inputs: inputs,
		Map: func(tag int, record string, emit mr.Emitter) error {
			t, err := relation.DecodeTuple(record)
			if err != nil {
				return err
			}
			op := interval.OpReplicate
			if tag == projectRel {
				op = interval.OpProject
			}
			first, last := part.Apply(op, t.Key())
			// Destination partitions are contiguous, so one range record
			// stands in for the per-partition broadcast (split partitions
			// expand to the record's cell-cover rows, still run-coalesced).
			plan.emitRange(emit, first, last, tag, encodeTagged(tag, t))
			return nil
		},
		Resplit:    resplitValues(m, streamOfTagged),
		Reduce:     reduceJoinAtPartition(ctx, plan),
		Output:     opts.Scratch + "/output",
		SortValues: opts.SortValues,
		Meta:       ctx.jobMeta(a.Name(), 1),
	}
	metrics, err := ctx.Engine.Run(job)
	if err != nil {
		return nil, err
	}
	metrics.Plan = plan.info()
	res := &Result{
		Algorithm:           a.Name(),
		Metrics:             metrics,
		PerCycle:            []*mr.Metrics{metrics},
		ReplicatedIntervals: replicated,
	}
	if err := readOutput(ctx, job.Output, res); err != nil {
		return nil, err
	}
	res.SortTuples()
	return res, nil
}

// projectableRightmost returns the index of the unique relation that is
// maximal in the query's less-than order and reachable from every other
// relation (so its interval always carries the assignment's maximal start
// point), or -1 when no such relation exists and every relation must be
// replicated.
func projectableRightmost(q *query.Query) int {
	m := len(q.Relations)
	adj := make([][]bool, m)
	for i := range adj {
		adj[i] = make([]bool, m)
	}
	isLesser := make([]bool, m)
	for _, p := range q.LessThanPairs() {
		adj[p[0]][p[1]] = true
		isLesser[p[0]] = true
	}
	candidate := -1
	for r := 0; r < m; r++ {
		if !isLesser[r] {
			if candidate >= 0 {
				return -1 // multiple right-most relations
			}
			candidate = r
		}
	}
	if candidate < 0 {
		return -1 // cyclic order; replicate everything
	}
	// Every other relation must reach the candidate.
	reached := make([]bool, m)
	var visit func(int)
	visit = func(x int) {
		if reached[x] {
			return
		}
		reached[x] = true
		for y := 0; y < m; y++ {
			if adj[y][x] { // walk edges backwards from the candidate
				visit(y)
			}
		}
	}
	visit(candidate)
	for r := 0; r < m; r++ {
		if !reached[r] {
			return -1
		}
	}
	return candidate
}

// reduceJoinAtPartition returns the reduce function shared by All-Rep and
// RCCIS cycle 2: group the received tagged tuples by relation, enumerate
// satisfying assignments, and emit exactly those whose right-most interval
// (maximal start point) lies in this reducer's partition — the paper's
// "computing output tuple" rule, which guarantees exactly-once output.
// Under a virtual-split plan several reduce keys share one partition; the
// cell cover guarantees each assignment materialises at exactly one of
// them, and the filter tests the partition the key belongs to.
func reduceJoinAtPartition(ctx *Context, plan *execPlan) mr.ReduceFunc {
	m := len(ctx.Rels)
	part := plan.part
	// One shared enumerator: the query plan is static across reduce calls
	// and the enumerator is safe for concurrent use (all per-run state
	// lives in pooled preparedJoins).
	e := newEnumerator(ctx.Query.Conds, allRelations(m)).withTracer(ctx.Engine.Tracer())
	lvl := identityLevels(m)
	return func(key int64, values []string, write func(string) error) error {
		p := plan.partitionOf(key)
		var outErr error
		err := e.runTagged(values, lvl, func(asg []relation.Tuple) {
			if outErr != nil {
				return
			}
			maxStart := asg[0].Key().Start
			for _, t := range asg[1:] {
				if s := t.Key().Start; s > maxStart {
					maxStart = s
				}
			}
			if part.IndexOf(maxStart) != p {
				return
			}
			out := make(OutputTuple, len(asg))
			for i, t := range asg {
				out[i] = t.ID
			}
			outErr = write(out.Key())
		})
		if err != nil {
			return err
		}
		return outErr
	}
}
