package core

import (
	"fmt"
	"math/rand"
	"testing"

	"intervaljoin/internal/dfs"
	"intervaljoin/internal/interval"
	"intervaljoin/internal/mr"
	"intervaljoin/internal/query"
	"intervaljoin/internal/relation"
)

// runWithConfig executes one algorithm against a fresh store with the given
// engine configuration and returns the result plus the output file's lines.
func runWithConfig(t *testing.T, alg Algorithm, q *query.Query, rels []*relation.Relation,
	opts Options, cfg mr.Config) (*Result, []string) {
	t.Helper()
	store := dfs.NewMem()
	cfg.Store = store
	cfg.Workers = 4
	engine := mr.NewEngine(cfg)
	ctx, err := NewContext(engine, q, rels, opts)
	if err != nil {
		t.Fatal(err)
	}
	res, err := alg.Run(ctx)
	if err != nil {
		t.Fatalf("%s: %v", alg.Name(), err)
	}
	lines, err := dfs.ReadAll(store, opts.Scratch+"/output")
	if err != nil {
		t.Fatalf("%s: reading output: %v", alg.Name(), err)
	}
	return res, lines
}

// requireSameRun asserts the range-coalesced run matched the expanded run
// byte for byte and on every logical statistic, and that coalescing only ever
// shrinks the physical shuffle.
func requireSameRun(t *testing.T, rangeRes, expandRes *Result, rangeLines, expandLines []string) {
	t.Helper()
	if len(rangeLines) != len(expandLines) {
		t.Fatalf("output has %d lines coalesced, %d expanded", len(rangeLines), len(expandLines))
	}
	for i := range rangeLines {
		if rangeLines[i] != expandLines[i] {
			t.Fatalf("output line %d differs:\ncoalesced: %q\nexpanded:  %q",
				i, rangeLines[i], expandLines[i])
		}
	}
	rm, em := rangeRes.Metrics, expandRes.Metrics
	if rm.IntermediatePairs != em.IntermediatePairs {
		t.Errorf("logical pairs: %d coalesced, %d expanded", rm.IntermediatePairs, em.IntermediatePairs)
	}
	if rm.IntermediateBytes != em.IntermediateBytes {
		t.Errorf("logical bytes: %d coalesced, %d expanded", rm.IntermediateBytes, em.IntermediateBytes)
	}
	if rm.DistinctKeys != em.DistinctKeys {
		t.Errorf("keys: %d coalesced, %d expanded", rm.DistinctKeys, em.DistinctKeys)
	}
	if rm.OutputRecords != em.OutputRecords {
		t.Errorf("output records: %d coalesced, %d expanded", rm.OutputRecords, em.OutputRecords)
	}
	if rangeRes.ReplicatedIntervals != expandRes.ReplicatedIntervals {
		t.Errorf("replicated: %d coalesced, %d expanded",
			rangeRes.ReplicatedIntervals, expandRes.ReplicatedIntervals)
	}
	if rm.PhysicalPairs > rm.IntermediatePairs {
		t.Errorf("coalesced physical pairs %d exceed logical %d", rm.PhysicalPairs, rm.IntermediatePairs)
	}
	if rm.PhysicalBytes > em.PhysicalBytes {
		t.Errorf("coalesced physical bytes %d exceed expanded %d", rm.PhysicalBytes, em.PhysicalBytes)
	}
}

// TestRangeEmitMatchesExpandedAllenPredicates joins two relations under each
// of the thirteen Allen predicates, once with range coalescing (the default)
// and once with ExpandRangeEmits, requiring byte-identical output.
func TestRangeEmitMatchesExpandedAllenPredicates(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	r1 := randomRelation(rng, "R1", 70, 160, 35)
	r2 := randomRelation(rng, "R2", 70, 160, 35)
	for p := interval.Predicate(0); p < interval.NumPredicates; p++ {
		t.Run(p.String(), func(t *testing.T) {
			q := query.MustParse(fmt.Sprintf("R1 %s R2", p))
			opts := Options{Partitions: 8, Scratch: "equiv", SortValues: true}
			rels := []*relation.Relation{r1, r2}
			expandRes, expandLines := runWithConfig(t, TwoWay{}, q, rels, opts,
				mr.Config{ExpandRangeEmits: true})
			rangeRes, rangeLines := runWithConfig(t, TwoWay{}, q, rels, opts, mr.Config{})
			requireSameRun(t, rangeRes, expandRes, rangeLines, expandLines)
		})
	}
}

// TestRangeEmitMatchesExpandedAlgorithms covers every algorithm and query
// class, in the pipelined (default) and materialized execution modes, plus a
// spilling engine — the coalesced shuffle must be invisible everywhere.
func TestRangeEmitMatchesExpandedAlgorithms(t *testing.T) {
	cases := []struct {
		name  string
		alg   Algorithm
		query string
	}{
		{"two-way-seq", TwoWay{}, "R1 before R2"},
		{"all-rep-coloc", AllRep{}, "R1 overlaps R2 and R2 overlaps R3"},
		{"all-rep-seq", AllRep{}, "R1 before R2 and R2 before R3"},
		{"all-matrix", AllMatrix{}, "R1 before R2 and R2 before R3"},
		{"cascade", Cascade{}, "R1 overlaps R2 and R2 overlaps R3"},
		{"cascade-matrix", Cascade{MatrixSteps: true}, "R1 before R2 and R2 before R3"},
		{"rccis", RCCIS{}, "R1 overlaps R2 and R2 overlaps R3"},
		{"all-seq-matrix", SeqMatrix{}, "R1 overlaps R2 and R2 overlaps R3"},
		{"all-seq-matrix-hybrid", SeqMatrix{}, "R1 before R2 and R1 overlaps R3"},
		{"fcts", FCTS{}, "R1 overlaps R2 and R2 overlaps R3"},
		{"fcts-hybrid", FCTS{}, "R1 before R2 and R1 overlaps R3"},
		{"pasm-hybrid", PASM{}, "R1 before R2 and R1 overlaps R3"},
		{"gen-matrix", GenMatrix{}, "R1 before R2 and R1 overlaps R3"},
	}
	modes := []struct {
		name        string
		materialize bool
		spill       int
	}{
		{"pipelined", false, 0},
		{"materialized", false, 0}, // overwritten below
		{"spilled", false, 200},
	}
	modes[1].materialize = true
	rng := rand.New(rand.NewSource(99))
	for _, tc := range cases {
		q := query.MustParse(tc.query)
		rels := make([]*relation.Relation, len(q.Relations))
		for i, s := range q.Relations {
			rels[i] = randomRelation(rng, s.Name, 40, 150, 30)
		}
		for _, mode := range modes {
			t.Run(tc.name+"/"+mode.name, func(t *testing.T) {
				opts := Options{
					Partitions: 6, PartitionsPerDim: 4,
					Scratch: "equiv", SortValues: true,
					Materialize: mode.materialize,
				}
				expandRes, expandLines := runWithConfig(t, tc.alg, q, rels, opts,
					mr.Config{ExpandRangeEmits: true, SpillPairThreshold: mode.spill})
				rangeRes, rangeLines := runWithConfig(t, tc.alg, q, rels, opts,
					mr.Config{SpillPairThreshold: mode.spill})
				requireSameRun(t, rangeRes, expandRes, rangeLines, expandLines)
			})
		}
	}
}

// TestRangeEmitShrinksReplicateHeavyShuffle pins the headline win: on the
// replication-heavy baselines the physical shuffle must be at most half the
// logical volume.
func TestRangeEmitShrinksReplicateHeavyShuffle(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	cases := []struct {
		name  string
		alg   Algorithm
		query string
	}{
		{"all-rep", AllRep{}, "R1 before R2 and R2 before R3"},
		{"all-matrix", AllMatrix{}, "R1 before R2 and R2 before R3"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			q := query.MustParse(tc.query)
			rels := make([]*relation.Relation, len(q.Relations))
			for i, s := range q.Relations {
				rels[i] = randomRelation(rng, s.Name, 80, 200, 25)
			}
			// A finer grid lengthens the consistent-cell runs, which is what
			// amortises the 16-byte range header over more covered keys.
			opts := Options{Partitions: 12, PartitionsPerDim: 16, Scratch: "equiv", SortValues: true}
			res, _ := runWithConfig(t, tc.alg, q, rels, opts, mr.Config{})
			m := res.Metrics
			if m.PhysicalPairs == 0 {
				t.Fatal("no physical pair accounting")
			}
			if m.PhysicalBytes*2 > m.IntermediateBytes {
				t.Errorf("physical bytes %d not under half of logical %d (repl %.2fx)",
					m.PhysicalBytes, m.IntermediateBytes, m.ReplicationFactor())
			}
		})
	}
}
