package core

import (
	"fmt"

	"intervaljoin/internal/grid"
	"intervaljoin/internal/mr"
	"intervaljoin/internal/query"
	"intervaljoin/internal/relation"
)

// AllMatrix handles multi-way sequence join queries in a single MR cycle
// (Section 7.1). The m relations span an m-dimensional cross-product space;
// each axis is divided into o partitions, every cell is a reducer, and only
// the cells consistent with the less-than order of the query's predicates
// receive any data (condition D1). A tuple of relation k whose interval
// starts in partition q is sent to every consistent cell whose k-th
// coordinate equals q (condition D2), which routes each output tuple to
// exactly one reducer and spreads the load that All-Replicate piles onto the
// right-most reducers evenly across the grid (Figure 4).
type AllMatrix struct {
	// DisableConsistencyFilter drops condition D1 (ablation): tuples are
	// routed to every cell with the matching coordinate, including cells
	// that provably produce no output.
	DisableConsistencyFilter bool
	// BroadcastAllCells drops condition D2 (ablation): every tuple goes to
	// every consistent cell, demonstrating why D2 matters. Output is
	// deduplicated by designating the cell that matches every tuple's
	// start partition.
	BroadcastAllCells bool
}

// Name implements Algorithm.
func (a AllMatrix) Name() string {
	switch {
	case a.DisableConsistencyFilter:
		return "all-matrix-nofilter"
	case a.BroadcastAllCells:
		return "all-matrix-broadcast"
	}
	return "all-matrix"
}

// Run implements Algorithm.
func (a AllMatrix) Run(ctx *Context) (*Result, error) {
	opts := ctx.Opts.withDefaults(a.Name())
	if cls := ctx.Query.Classify(); cls != query.Sequence {
		return nil, fmt.Errorf("core: all-matrix handles sequence queries, got %v", cls)
	}
	if err := ctx.Stage(); err != nil {
		return nil, err
	}
	m := len(ctx.Rels)
	part, err := ctx.makePartitioning(opts.PartitionsPerDim)
	if err != nil {
		return nil, err
	}
	o := part.Len()
	g, err := grid.NewUniform(m, o)
	if err != nil {
		return nil, err
	}

	// Less-than order constraints: dimension k carries relation k.
	var cons []grid.Less
	if !a.DisableConsistencyFilter {
		for _, p := range ctx.Query.LessThanPairs() {
			cons = append(cons, grid.Less{A: p[0], B: p[1]})
		}
	}

	inputs := make([]mr.Input, m)
	for ri := range ctx.Rels {
		inputs[ri] = ctx.relInput(ri, ri)
	}

	// Shared across reduce calls: the plan is static and per-run state is
	// pooled inside the enumerator.
	e := newEnumerator(ctx.Query.Conds, allRelations(m)).withTracer(ctx.Engine.Tracer())
	lvl := identityLevels(m)

	job := mr.Job{
		Name:   opts.Scratch + "/join",
		Inputs: inputs,
		Map: func(tag int, record string, emit mr.Emitter) error {
			t, err := relation.DecodeTuple(record)
			if err != nil {
				return err
			}
			q := part.Project(t.Key())
			enc := encodeTagged(tag, t)
			bounds := g.FreeBounds()
			if !a.BroadcastAllCells {
				bounds[tag] = grid.Bound{Min: q, Max: q} // condition D2
			}
			g.EnumerateRuns(bounds, cons, func(lo, hi int64) { emit.EmitRange(lo, hi, enc) })
			return nil
		},
		Reduce: func(key int64, values []string, write func(string) error) error {
			coord := g.Coord(key, nil)
			var outErr error
			err := e.runTagged(values, lvl, func(asg []relation.Tuple) {
				if outErr != nil {
					return
				}
				// Exactly-once: the designated cell matches every
				// tuple's start partition. Under D2 routing this holds
				// automatically; under the broadcast ablation it filters
				// the duplicates.
				for k, t := range asg {
					if part.Project(t.Key()) != coord[k] {
						return
					}
				}
				out := make(OutputTuple, len(asg))
				for i, t := range asg {
					out[i] = t.ID
				}
				outErr = write(out.Key())
			})
			if err != nil {
				return err
			}
			return outErr
		},
		Output:     opts.Scratch + "/output",
		SortValues: opts.SortValues,
		Meta:       ctx.jobMeta(a.Name(), 1),
	}
	metrics, err := ctx.Engine.Run(job)
	if err != nil {
		return nil, err
	}
	res := &Result{Algorithm: a.Name(), Metrics: metrics, PerCycle: []*mr.Metrics{metrics}}
	if err := readOutput(ctx, job.Output, res); err != nil {
		return nil, err
	}
	res.SortTuples()
	return res, nil
}
