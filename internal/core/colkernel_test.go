package core

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
	"testing"

	"intervaljoin/internal/interval"
	"intervaljoin/internal/query"
	"intervaljoin/internal/relation"
)

// The columnar-kernel property suite: the specialized sweep/merge loops,
// the generic Eval path, and a nested-loop oracle must produce identical
// assignment sets across all 13 Allen predicates, single- and
// multi-attribute levels, and adversarial endpoint layouts (duplicates,
// equal-start runs, point intervals, int64 extremes).

// forceGeneric downgrades every level of a fresh enumerator to the generic
// kernel, so a run exercises the Eval path over the same columnar state.
func forceGeneric(e *enumerator) *enumerator {
	for i := range e.plans {
		e.plans[i].kernel = kindGeneric
	}
	return e
}

// enumKeys collects the sorted output keys of one enumerator run.
func enumKeys(e *enumerator, cands [][]relation.Tuple) []string {
	var out []string
	e.run(cands, func(asg []relation.Tuple) {
		key := make(OutputTuple, len(asg))
		for j, t := range asg {
			key[j] = t.ID
		}
		out = append(out, key.Key())
	})
	sort.Strings(out)
	return out
}

// nestedLoopKeys is the oracle: the full cross product, every applicable
// condition checked by Eval, no sorting, no windows.
func nestedLoopKeys(conds []query.Condition, rels []int, cands [][]relation.Tuple) []string {
	pos := make(map[int]int, len(rels))
	for i, r := range rels {
		pos[r] = i
	}
	var out []string
	asg := make([]relation.Tuple, len(rels))
	var rec func(i int)
	rec = func(i int) {
		if i == len(rels) {
			for _, c := range conds {
				li, lok := pos[c.Left.Rel]
				ri, rok := pos[c.Right.Rel]
				if !lok || !rok {
					continue
				}
				if !c.Pred.Eval(asg[li].Attrs[c.Left.Attr], asg[ri].Attrs[c.Right.Attr]) {
					return
				}
			}
			key := make(OutputTuple, len(rels))
			for j, t := range asg {
				key[j] = t.ID
			}
			out = append(out, key.Key())
			return
		}
		for _, t := range cands[i] {
			asg[i] = t
			rec(i + 1)
		}
	}
	rec(0)
	sort.Strings(out)
	return out
}

// adversarialTuples builds a single-attribute candidate list stacked with
// the layouts that break window arithmetic: duplicate intervals, equal-start
// runs, point intervals, and valid intervals touching the int64 extremes
// (where strict window bounds saturate), padded with clustered random
// intervals so every predicate finds matches.
func adversarialTuples(rng *rand.Rand, n int) []relation.Tuple {
	const (
		minI = math.MinInt64
		maxI = math.MaxInt64
	)
	fixed := []interval.Interval{
		{Start: 0, End: 0}, {Start: 0, End: 0}, // duplicate points
		{Start: 0, End: 10}, {Start: 0, End: 10}, // duplicate intervals
		{Start: 0, End: 5}, {Start: 0, End: 7}, // equal-start run
		{Start: 5, End: 5}, {Start: 5, End: 9},
		{Start: 10, End: 10}, {Start: 10, End: 12},
		{Start: minI, End: minI}, {Start: maxI, End: maxI},
		{Start: minI, End: maxI},
		{Start: minI, End: 0}, {Start: 0, End: maxI},
		{Start: minI + 1, End: minI + 1}, {Start: maxI - 1, End: maxI},
	}
	ts := make([]relation.Tuple, 0, len(fixed)+n)
	for _, iv := range fixed {
		ts = append(ts, mkTuple(int64(len(ts)), iv))
	}
	for i := 0; i < n; i++ {
		s := rng.Int63n(41) - 20
		ts = append(ts, mkTuple(int64(len(ts)), interval.Interval{Start: s, End: s + rng.Int63n(16)}))
	}
	return ts
}

// adversarialTuples2 is the two-attribute variant (I plus a point-valued
// category attribute A) for General-class multi-attribute levels.
func adversarialTuples2(rng *rand.Rand, n int) []relation.Tuple {
	base := adversarialTuples(rng, n)
	out := make([]relation.Tuple, len(base))
	for i, t := range base {
		cat := interval.PointInterval(int64(i % 3))
		out[i] = mkTuple(t.ID, t.Attrs[0], cat)
	}
	return out
}

// checkAgreement runs the three evaluators and requires identical key sets.
func checkAgreement(t *testing.T, q *query.Query, rels []int, cands [][]relation.Tuple) {
	t.Helper()
	spec := enumKeys(newEnumerator(q.Conds, rels), cands)
	gen := enumKeys(forceGeneric(newEnumerator(q.Conds, rels)), cands)
	oracle := nestedLoopKeys(q.Conds, rels, cands)
	if len(oracle) == 0 {
		t.Logf("note: empty oracle output")
	}
	if !equalStrings(spec, gen) {
		t.Fatalf("specialized kernel (%d rows) != generic kernel (%d rows)\nspec: %v\ngen:  %v",
			len(spec), len(gen), head(spec), head(gen))
	}
	if !equalStrings(spec, oracle) {
		t.Fatalf("columnar kernel (%d rows) != nested-loop oracle (%d rows)\nkernel: %v\noracle: %v",
			len(spec), len(oracle), head(spec), head(oracle))
	}
}

func equalStrings(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func head(s []string) []string {
	if len(s) > 8 {
		return s[:8]
	}
	return s
}

// TestColumnarKernelAllPredicates covers every Allen predicate on a 2-way
// join over adversarial candidate lists.
func TestColumnarKernelAllPredicates(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for p := interval.Predicate(0); p < interval.NumPredicates; p++ {
		t.Run(p.String(), func(t *testing.T) {
			q := query.MustParse(fmt.Sprintf("R1 %s R2", p))
			cands := [][]relation.Tuple{
				adversarialTuples(rng, 25),
				adversarialTuples(rng, 25),
			}
			checkAgreement(t, q, []int{0, 1}, cands)
		})
	}
}

// TestColumnarKernelChains covers every predicate in a 3-way chain, where
// the middle level intersects two windows per assignment.
func TestColumnarKernelChains(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for p := interval.Predicate(0); p < interval.NumPredicates; p++ {
		t.Run(p.String(), func(t *testing.T) {
			q := query.MustParse(fmt.Sprintf("R1 %s R2 and R2 %s R3", p, p))
			cands := [][]relation.Tuple{
				adversarialTuples(rng, 12),
				adversarialTuples(rng, 12),
				adversarialTuples(rng, 12),
			}
			checkAgreement(t, q, []int{0, 1, 2}, cands)
		})
	}
}

// TestColumnarKernelStar binds two windows on the same level from distinct
// partners, including mixed-predicate intersections.
func TestColumnarKernelStar(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	queries := []string{
		"R1 overlaps R3 and R2 contains R3",
		"R1 meets R3 and R2 equals R3",
		"R1 starts R3 and R2 startedby R3",
		"R1 before R3 and R2 after R3",
		"R1 overlaps R2 and R1 before R3 and R2 overlaps R3",
	}
	for _, qs := range queries {
		t.Run(qs, func(t *testing.T) {
			q := query.MustParse(qs)
			cands := [][]relation.Tuple{
				adversarialTuples(rng, 12),
				adversarialTuples(rng, 12),
				adversarialTuples(rng, 12),
			}
			checkAgreement(t, q, []int{0, 1, 2}, cands)
		})
	}
}

// TestColumnarKernelMultiAttr covers General-class queries whose levels mix
// the sort attribute with a second equality attribute — the planner must
// route these to the generic kernel, and the result must still match the
// oracle.
func TestColumnarKernelMultiAttr(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for p := interval.Predicate(0); p < interval.NumPredicates; p++ {
		t.Run(p.String(), func(t *testing.T) {
			q := query.MustParse(fmt.Sprintf("R1.I %s R2.I and R1.A = R2.A", p))
			cands := [][]relation.Tuple{
				adversarialTuples2(rng, 20),
				adversarialTuples2(rng, 20),
			}
			checkAgreement(t, q, []int{0, 1}, cands)
		})
	}
	t.Run("general-3way", func(t *testing.T) {
		q := query.MustParse("R1.I before R2.I and R1.I overlaps R3.I and R1.A = R3.A and R2.B = R3.B")
		cands := [][]relation.Tuple{
			adversarialTuples2(rng, 15),
			adversarialTuples2(rng, 15),
		}
		// R3 needs three attributes: I, A and B.
		r3 := adversarialTuples2(rng, 15)
		for i := range r3 {
			r3[i] = mkTuple(r3[i].ID, r3[i].Attrs[0], r3[i].Attrs[1], interval.PointInterval(int64(i%2)))
		}
		// R2's second attribute is B in this query's schema order.
		checkAgreement(t, q, []int{0, 1, 2}, [][]relation.Tuple{cands[0], cands[1], r3})
	})
}

// TestKernelDispatch pins the planner's kernel choice per level shape and
// the per-family hit counters.
func TestKernelDispatch(t *testing.T) {
	cases := []struct {
		query string
		want  []kernelKind // per binding level
	}{
		{"R1 overlaps R2", []kernelKind{kindGeneric, kindSweep}},
		{"R1 before R2", []kernelKind{kindGeneric, kindSweep}},
		{"R1 equals R2", []kernelKind{kindGeneric, kindMerge}},
		{"R1 meets R2", []kernelKind{kindGeneric, kindMerge}},
		{"R1 starts R2 and R2 startedby R3", []kernelKind{kindGeneric, kindMerge, kindMerge}},
		{"R1.I overlaps R2.I and R1.A = R2.A", []kernelKind{kindGeneric, kindGeneric}},
	}
	for _, tc := range cases {
		q := query.MustParse(tc.query)
		rels := make([]int, len(q.Relations))
		for i := range rels {
			rels[i] = i
		}
		e := newEnumerator(q.Conds, rels)
		for i, want := range tc.want {
			if e.plans[i].kernel != want {
				t.Errorf("%s: level %d kernel = %v, want %v", tc.query, i, e.plans[i].kernel, want)
			}
		}
	}

	// Counters: a sweep-dispatch query must count sweep hits, and the
	// merge/generic counters must track their own families.
	rng := rand.New(rand.NewSource(4))
	q := query.MustParse("R1 overlaps R2")
	e := newEnumerator(q.Conds, []int{0, 1})
	cands := [][]relation.Tuple{adversarialTuples(rng, 10), adversarialTuples(rng, 10)}
	e.run(cands, func([]relation.Tuple) {})
	sweep, merge, generic := e.kernelHitCounts()
	if sweep == 0 {
		t.Errorf("overlaps run recorded no sweep-kernel hits (got sweep=%d merge=%d generic=%d)",
			sweep, merge, generic)
	}
	if merge != 0 {
		t.Errorf("overlaps run recorded %d merge-kernel hits, want 0", merge)
	}
	// Level 0 is condition-free: every run dispatches it generically once.
	if generic == 0 {
		t.Errorf("condition-free root level recorded no generic hits")
	}
}

// TestRunTaggedMatchesRun feeds the same candidates through the tagged
// zero-copy decode path and the in-memory path; outputs must be identical,
// and malformed records must surface as errors.
func TestRunTaggedMatchesRun(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	q := query.MustParse("R1 overlaps R2 and R2 before R3")
	cands := [][]relation.Tuple{
		adversarialTuples(rng, 15),
		adversarialTuples(rng, 15),
		adversarialTuples(rng, 15),
	}
	var values []string
	for rel, list := range cands {
		for _, tup := range list {
			values = append(values, encodeTagged(rel, tup))
		}
	}
	e := newEnumerator(q.Conds, []int{0, 1, 2})
	want := enumKeys(e, cands)

	var got []string
	err := e.runTagged(values, identityLevels(3), func(asg []relation.Tuple) {
		key := make(OutputTuple, len(asg))
		for j, tup := range asg {
			key[j] = tup.ID
		}
		got = append(got, key.Key())
	})
	if err != nil {
		t.Fatalf("runTagged: %v", err)
	}
	sort.Strings(got)
	if !equalStrings(got, want) {
		t.Fatalf("runTagged produced %d rows, run produced %d", len(got), len(want))
	}

	for _, bad := range []string{"", "x;0|1,2", "0;garbage", "9;0|1,2", "-1;0|1,2"} {
		if err := e.runTagged([]string{bad}, identityLevels(3), func([]relation.Tuple) {}); err == nil {
			t.Errorf("runTagged(%q) succeeded, want error", bad)
		}
	}
}
