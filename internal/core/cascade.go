package core

import (
	"fmt"
	"strconv"
	"strings"

	"intervaljoin/internal/grid"
	"intervaljoin/internal/interval"
	"intervaljoin/internal/mr"
	"intervaljoin/internal/query"
	"intervaljoin/internal/relation"
)

// Cascade is the 2-way Cascade baseline: it processes a multi-way query as a
// series of 2-way joins, materialising every intermediate result on the file
// store between cycles. Each step binds one new relation, checking every
// condition between it and the already-bound set. The paper's critique —
// that the big intermediate results are read and shuffled again and again —
// falls straight out of the pair counts the engine reports.
//
// With MatrixSteps set, steps whose driving predicate is a sequence
// predicate run as 2-dimensional All-Matrix joins (the configuration of the
// Figure 5 experiment); otherwise every step uses the Figure 1
// project/split/replicate strategies.
type Cascade struct {
	// MatrixSteps runs sequence-predicate steps on a 2-D consistent-cell
	// grid with Options.PartitionsPerDim partitions per axis.
	MatrixSteps bool
}

// Name implements Algorithm.
func (c Cascade) Name() string {
	if c.MatrixSteps {
		return "2way-cascade-matrix"
	}
	return "2way-cascade"
}

// intermediateTag marks records of the partial-assignment input in cascade
// map functions.
const intermediateTag = -1

// Run implements Algorithm.
func (c Cascade) Run(ctx *Context) (*Result, error) {
	opts := ctx.Opts.withDefaults(c.Name())
	if cls := ctx.Query.Classify(); cls == query.General {
		return nil, fmt.Errorf("core: cascade handles single-attribute queries only, got %v", cls)
	}
	if err := ctx.Stage(); err != nil {
		return nil, err
	}
	// One shared plan for all non-matrix steps: each step joins two input
	// streams (the running partial assignments and the novel relation).
	plan, err := ctx.makePlan(c.Name(), opts.Partitions, 2)
	if err != nil {
		return nil, err
	}
	gridPart, err := ctx.makePartitioning(opts.PartitionsPerDim)
	if err != nil {
		return nil, err
	}

	steps, err := planCascade(ctx.Query)
	if err != nil {
		return nil, err
	}

	// Build every step's job up front; each step's partial-assignment
	// input is the previous step's output, which the pipelined executor
	// streams instead of materialising.
	jobs := make([]mr.Job, len(steps))
	current := "" // intermediate file of partial assignments
	bound := []int{steps[0].existing}
	for si, step := range steps {
		jobName := opts.Scratch + "/step-" + strconv.Itoa(si)
		output := opts.Scratch + "/inter-" + strconv.Itoa(si)
		last := si == len(steps)-1
		if last {
			output = opts.Scratch + "/output"
		}
		jobs[si] = c.stepJob(ctx, opts, plan, gridPart, jobName, output, current, bound, step, last)
		jobs[si].Meta = ctx.jobMeta(c.Name(), si+1)
		bound = append(bound, step.novel)
		current = output
	}

	var perCycle []*mr.Metrics
	var agg *mr.Metrics
	if opts.Materialize {
		perCycle, agg, err = ctx.Engine.RunChain(jobs...)
	} else {
		perCycle, agg, err = ctx.Engine.RunPipeline(mr.ChainStages(jobs...)...)
	}
	if err != nil {
		return nil, err
	}
	agg.Job = c.Name()
	agg.Plan = plan.info()
	res := &Result{Algorithm: c.Name(), Metrics: agg, PerCycle: perCycle}
	if err := readOutput(ctx, current, res); err != nil {
		return nil, err
	}
	res.SortTuples()
	return res, nil
}

// cascadeStep binds relation novel to the running partial assignment via the
// driving condition; checkConds are all query conditions between novel and
// the previously bound relations (the driving one included).
type cascadeStep struct {
	existing   int // already-bound relation the driving condition touches
	novel      int // relation bound by this step
	driving    query.Condition
	checkConds []query.Condition
}

// planCascade orders the conditions into binding steps. The first step's
// "existing" relation is the driving condition's left operand.
func planCascade(q *query.Query) ([]cascadeStep, error) {
	m := len(q.Relations)
	boundSet := make([]bool, m)
	used := make([]bool, len(q.Conds))
	var steps []cascadeStep

	first := q.Conds[0]
	boundSet[first.Left.Rel] = true
	used[0] = true
	steps = append(steps, cascadeStep{
		existing: first.Left.Rel,
		novel:    first.Right.Rel,
		driving:  first,
	})
	boundAfter := func(novel int) []query.Condition {
		var conds []query.Condition
		for _, c := range q.Conds {
			li, ri := c.Left.Rel, c.Right.Rel
			if (li == novel && boundSet[ri]) || (ri == novel && boundSet[li]) {
				conds = append(conds, c)
			}
		}
		return conds
	}
	steps[0].checkConds = boundAfter(first.Right.Rel)
	boundSet[first.Right.Rel] = true

	for countBound(boundSet) < m {
		progress := false
		for i, cnd := range q.Conds {
			if used[i] {
				continue
			}
			li, ri := cnd.Left.Rel, cnd.Right.Rel
			var existing, novel int
			switch {
			case boundSet[li] && !boundSet[ri]:
				existing, novel = li, ri
			case boundSet[ri] && !boundSet[li]:
				existing, novel = ri, li
			default:
				if boundSet[li] && boundSet[ri] {
					used[i] = true // already checked when its later side bound
				}
				continue
			}
			used[i] = true
			steps = append(steps, cascadeStep{
				existing:   existing,
				novel:      novel,
				driving:    cnd,
				checkConds: boundAfter(novel),
			})
			boundSet[novel] = true
			progress = true
			break
		}
		if !progress {
			return nil, fmt.Errorf("core: cascade requires a connected query: %s", q)
		}
	}
	return steps, nil
}

func countBound(b []bool) int {
	n := 0
	for _, x := range b {
		if x {
			n++
		}
	}
	return n
}

// stepJob builds the MR job for one cascade step. For the first step the
// partial-assignment input is the existing relation itself.
func (c Cascade) stepJob(ctx *Context, opts Options, plan *execPlan, gridPart interval.Partitioning,
	name, output, current string, bound []int, step cascadeStep, last bool) mr.Job {

	part := plan.part

	// Which operand of the driving condition is the bound side?
	boundIsLeft := step.driving.Left.Rel == step.existing
	matrix := c.MatrixSteps && step.driving.Pred.IsSequence()

	var inputs []mr.Input
	if current == "" {
		inputs = append(inputs, ctx.relInput(step.existing, intermediateTag))
	} else {
		inputs = append(inputs, mr.Input{File: current, Tag: intermediateTag})
	}
	inputs = append(inputs, ctx.relInput(step.novel, step.novel))

	firstStep := current == ""
	strategy := interval.JoinStrategy(step.driving.Pred)
	boundOp, novelOp := strategy.Left, strategy.Right
	if !boundIsLeft {
		boundOp, novelOp = novelOp, boundOp
	}

	// The 2-D matrix variant projects both sides into a consistent-cell
	// grid instead (Section 7.2 configuration for the cascade baseline).
	g, err := grid.New([]int{gridPart.Len(), gridPart.Len()})
	if err != nil {
		// A partitioner always has at least one bucket per dimension, so a
		// grid over two copies of it can only fail on a planner bug.
		panic("core: cascade grid construction failed: " + err.Error())
	}
	// Dimension 0 carries the lesser operand of the driving condition.
	boundLesser := (step.driving.Pred.LessThanOrder() == interval.LeftLess) == boundIsLeft
	cons := []grid.Less{{A: 0, B: 1}}

	emitMatrix := func(q int, dimIsLesser bool, enc string, emit mr.Emitter) {
		dim := 0
		if !dimIsLesser {
			dim = 1
		}
		bounds := g.FreeBounds()
		bounds[dim] = grid.Bound{Min: q, Max: q}
		g.EnumerateRuns(bounds, cons, func(lo, hi int64) { emit.EmitRange(lo, hi, enc) })
	}

	mapFn := func(tag int, record string, emit mr.Emitter) error {
		if tag == intermediateTag {
			var pa partialAssignment
			var err error
			if firstStep {
				var t relation.Tuple
				t, err = relation.DecodeTuple(record)
				pa = partialAssignment{{rel: step.existing, tuple: t}}
			} else {
				pa, err = decodePartial(record)
			}
			if err != nil {
				return err
			}
			iv := pa.intervalOf(step.existing)
			enc := encodePartial(pa)
			if matrix {
				emitMatrix(gridPart.Project(iv), boundLesser, enc, emit)
				return nil
			}
			first, lastP := part.Apply(boundOp, iv)
			plan.emitRange(emit, first, lastP, 0, enc)
			return nil
		}
		t, err := relation.DecodeTuple(record)
		if err != nil {
			return err
		}
		enc := encodePartial(partialAssignment{{rel: step.novel, tuple: t}})
		if matrix {
			emitMatrix(gridPart.Project(t.Key()), !boundLesser, enc, emit)
			return nil
		}
		first, lastP := part.Apply(novelOp, t.Key())
		plan.emitRange(emit, first, lastP, 1, enc)
		return nil
	}

	reduceFn := func(key int64, values []string, write func(string) error) error {
		var partials []partialAssignment
		var tuples []relation.Tuple
		for _, v := range values {
			pa, err := decodePartial(v)
			if err != nil {
				return err
			}
			if len(pa) == 1 && pa[0].rel == step.novel && step.novel != step.existing {
				tuples = append(tuples, pa[0].tuple)
				continue
			}
			partials = append(partials, pa)
		}
		for _, pa := range partials {
			for _, t := range tuples {
				if !satisfiesStep(pa, t, step) {
					continue
				}
				merged := append(append(partialAssignment{}, pa...), boundTuple{rel: step.novel, tuple: t})
				var rec string
				if last {
					out := make(OutputTuple, len(ctx.Rels))
					for i := range out {
						out[i] = -1
					}
					for _, bt := range merged {
						out[bt.rel] = bt.tuple.ID
					}
					rec = out.Key()
				} else {
					rec = encodePartial(merged)
				}
				if err := write(rec); err != nil {
					return err
				}
			}
		}
		return nil
	}

	job := mr.Job{
		Name:       name,
		Inputs:     inputs,
		Map:        mapFn,
		Reduce:     reduceFn,
		Output:     output,
		SortValues: opts.SortValues,
	}
	if !matrix {
		// The key-independent pair loop decomposes cleanly; matrix steps
		// already spread load over the 2-D grid.
		job.Resplit = resplitValues(2, cascadeStreams(step.novel, step.existing))
	}
	return job
}

// satisfiesStep checks every condition between the novel tuple and the
// partial assignment.
func satisfiesStep(pa partialAssignment, t relation.Tuple, step cascadeStep) bool {
	for _, c := range step.checkConds {
		var u, v interval.Interval
		if c.Left.Rel == step.novel {
			u = t.Attrs[c.Left.Attr]
			v = pa.mustIntervalOf(c.Right.Rel, c.Right.Attr)
		} else {
			u = pa.mustIntervalOf(c.Left.Rel, c.Left.Attr)
			v = t.Attrs[c.Right.Attr]
		}
		if !c.Pred.Eval(u, v) {
			return false
		}
	}
	return true
}

// boundTuple is one bound relation of a partial assignment.
type boundTuple struct {
	rel   int
	tuple relation.Tuple
}

// partialAssignment is the cascade's intermediate record: the tuples bound
// so far.
type partialAssignment []boundTuple

func (pa partialAssignment) intervalOf(rel int) interval.Interval {
	return pa.mustIntervalOf(rel, 0)
}

func (pa partialAssignment) mustIntervalOf(rel, attr int) interval.Interval {
	for _, bt := range pa {
		if bt.rel == rel {
			return bt.tuple.Attrs[attr]
		}
	}
	//lint:ignore hotpathban cold path: formats a panic message for a planner bug, never reached per tuple
	panic(fmt.Sprintf("core: relation %d not bound in partial assignment", rel))
}

// encodePartial joins the tagged tuples with '#'.
func encodePartial(pa partialAssignment) string {
	parts := make([]string, len(pa))
	for i, bt := range pa {
		parts[i] = encodeTagged(bt.rel, bt.tuple)
	}
	return strings.Join(parts, "#")
}

// decodePartial parses encodePartial's output.
func decodePartial(s string) (partialAssignment, error) {
	parts := strings.Split(s, "#")
	pa := make(partialAssignment, len(parts))
	for i, p := range parts {
		rel, t, err := decodeTagged(p)
		if err != nil {
			return nil, err
		}
		pa[i] = boundTuple{rel: rel, tuple: t}
	}
	return pa, nil
}
