package core

import (
	"intervaljoin/internal/mr"
	"intervaljoin/internal/relation"
)

// Reference is the correctness oracle: a direct in-memory backtracking
// nested-loop join, with no MapReduce involved. Every distributed algorithm
// in this package must produce exactly Reference's output set; the property
// tests enforce this.
type Reference struct{}

// Name implements Algorithm.
func (Reference) Name() string { return "reference" }

// Run implements Algorithm.
func (Reference) Run(ctx *Context) (*Result, error) {
	res := &Result{Algorithm: "reference", Metrics: mr.NewMetrics("reference")}
	res.Metrics.Cycles = 0
	rels := make([]int, len(ctx.Rels))
	cands := make([][]relation.Tuple, len(ctx.Rels))
	for i, r := range ctx.Rels {
		rels[i] = i
		cands[i] = r.Tuples
	}
	// Honor the delta-window restriction the engine drivers apply at feed
	// time: the anchor relation keeps only tuples whose first attribute
	// intersects the closed window.
	if w := ctx.Opts.Window; w != nil && ctx.Opts.WindowRel < len(cands) {
		src := cands[ctx.Opts.WindowRel]
		kept := make([]relation.Tuple, 0, len(src))
		for _, t := range src {
			if t.Attrs[0].Start <= w[1] && t.Attrs[0].End >= w[0] {
				kept = append(kept, t)
			}
		}
		cands[ctx.Opts.WindowRel] = kept
	}
	e := newEnumerator(ctx.Query.Conds, rels)
	e.run(cands, func(asg []relation.Tuple) {
		out := make(OutputTuple, len(asg))
		for i, t := range asg {
			out[i] = t.ID
		}
		res.Tuples = append(res.Tuples, out)
	})
	res.SortTuples()
	return res, nil
}
