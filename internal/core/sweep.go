package core

// Sweep-based reduce-side join kernel.
//
// Every reducer joins its received tuples with the backtracking enumerator
// (join.go). Its hot operation is: given a bound partner tuple, find the
// candidates of the next binding level whose constrained attribute starts
// inside the legal range [lo, hi] the Allen predicate imposes. The original
// kernel answered that with one binary search per partial assignment plus a
// bounded scan over tuple structs; this file replaces it with an
// endpoint-ordered plane sweep in the style of Piatov et al.,
// "Cache-Efficient Sweeping-Based Interval Joins for Extended Allen
// Relation Predicates": every partner's window start into the start-sorted
// candidate column is precomputed by advancing one cursor over two
// endpoint-ordered int64 sequences (the flattened form of a sweep's gapless
// active list), and the window end is enforced during enumeration by
// breaking the scan on the precomputed per-partner upper bound — exactly
// the bounded scan the probe did, but over a contiguous int64 column
// instead of tuple structs.
//
// startRange is monotone in the partner endpoint it reads, so when the
// partner list is sorted by the attribute the lower bound derives from
// (colocation predicates constrain the candidate start by the partner's
// start, and partner lists are start-sorted), the bound sequence is already
// nondecreasing and the whole window table costs one linear two-cursor
// pass with no sorting and no searching — the common case for the paper's
// single-attribute queries, detected by a linear monotonicity scan. Bounds
// that arrive out of order (the sequence family's end-derived lower
// bounds) fall back to one inline binary search per partner, still touching
// only the int64 column.
//
// The predicate families need different window shapes:
//
//   - colocation predicates (overlaps / contains / starts / finishes /
//     meets / equals families) bound the candidate start on both sides;
//   - the sequence predicate before only bounds it from below (the match
//     may lie arbitrarily far right), and the after / met-by /
//     overlapped-by / contained-by / finishes applications only from above,
//     so one window edge is the whole list.
//
// Exactness is preserved for all 13 Allen relations because the window is
// only the start-coordinate filter the probe used; the residual predicate
// conditions are still evaluated on every windowed candidate.

import (
	"intervaljoin/internal/interval"
)

// sweepFamily classifies a predicate application p(bound, candidate) by
// which edges of the candidate start range are real bounds.
type sweepFamily uint8

const (
	// sweepBoth: the colocation and meets/equals families — the candidate
	// start is bounded on both sides by the partner's endpoints.
	sweepBoth sweepFamily = iota
	// sweepLoOnly: the "before" application — only a lower bound.
	sweepLoOnly
	// sweepHiOnly: the "after"-side family — only an upper bound.
	sweepHiOnly
)

// familyOf returns the sweep family of the application p(bound, candidate),
// mirroring the ranges startRange produces.
func familyOf(p interval.Predicate) sweepFamily {
	switch p {
	case interval.Before:
		return sweepLoOnly
	case interval.After, interval.MetBy, interval.OverlappedBy,
		interval.ContainedBy, interval.Finishes:
		return sweepHiOnly
	case interval.Meets, interval.Overlaps, interval.Contains,
		interval.Starts, interval.StartedBy, interval.FinishedBy,
		interval.Equals:
		return sweepBoth
	default:
		panic("core: familyOf: predicate outside the 13 Allen relations")
	}
}

// condWindow is one condition's window table: for partner tuple t (by its
// index in the partner's prepared list), candidates from[t] onward start no
// earlier than the partner's lower bound, and the enumeration scan stops
// once a candidate start exceeds hi[t]. hi is nil for lower-bound-only
// (before) applications, whose scans run to the end of the list.
type condWindow struct {
	from []int32
	hi   []int64
}

// keyIdx pairs a range endpoint with the partner index it belongs to.
type keyIdx struct {
	key int64
	idx int32
}

// sweepFroms computes, for every lower bound, the index of the first
// candidate start >= it.
func sweepFroms(los []int64, candStarts []int64) []int32 {
	froms := make([]int32, len(los))
	sweepFromsInto(froms, los, candStarts)
	return froms
}

// sweepFromsInto fills froms[t] with the index of the first candidate start
// >= los[t]. Nondecreasing bounds (the sorted-partner fast path) take a
// single two-cursor sweep; out-of-order bounds take one inline binary
// search each.
func sweepFromsInto(froms []int32, los []int64, candStarts []int64) {
	nc := int32(len(candStarts))
	if nonDecreasing(los) {
		k := int32(0)
		for t, lo := range los {
			for k < nc && candStarts[k] < lo {
				k++
			}
			froms[t] = k
		}
		return
	}
	for t, lo := range los {
		i, j := int32(0), nc
		for i < j {
			h := (i + j) >> 1
			if candStarts[h] < lo {
				i = h + 1
			} else {
				j = h
			}
		}
		froms[t] = i
	}
}

// nonDecreasing reports whether vals is already in sweep order.
func nonDecreasing(vals []int64) bool {
	for i := 1; i < len(vals); i++ {
		if vals[i] < vals[i-1] {
			return false
		}
	}
	return true
}

// sized returns s with length n, reusing the backing array when it has the
// capacity. Callers fully overwrite the returned slice: stale contents are
// not cleared.
func sized[T any](s []T, n int) []T {
	if cap(s) >= n {
		return s[:n]
	}
	return make([]T, n)
}
