package core

// Columnar sweep-based reduce-side join kernel.
//
// Every reducer joins its received tuples with the backtracking enumerator
// (join.go). Candidate lists are decoded once into struct-of-arrays columns
// — start column lo[], end column hi[], and payload refs into a shared
// relation.Arena — endpoint-sorted and gapless, in the style of Piatov et
// al., "Cache-Efficient Sweeping-Based Interval Joins for Extended Allen
// Relation Predicates": the enumeration loops touch only the int64 endpoint
// columns until a pair is confirmed, and the tuple payload is materialised
// lazily from the arena at emission.
//
// For a condition application p(bound, candidate) over the candidate
// level's sort attribute, the 13 Allen relations each decompose EXACTLY
// into a conjunction of closed ranges on the candidate's endpoints
// (condWindows): sLo <= cand.Start <= sHi and eLo <= cand.End <= eHi, with
// missing edges at the int64 infinities. Exactness (for valid intervals,
// Start <= End — guaranteed by the codecs, which reject inverted
// intervals) means the specialized loops never evaluate the predicate per
// pair; multi-attribute levels keep the generic Eval path (join.go).
//
// The per-partner window starts are precomputed by one endpoint sweep
// (sweepFromsInto): startRange-style lower bounds are monotone in the
// partner endpoint they derive from, so when the partner list is sorted by
// that endpoint the window table costs a single two-cursor pass over two
// int64 sequences; out-of-order bound sequences fall back to one inline
// binary search per partner, still touching only the column.
//
// Dispatch between the loop shapes is planned statically (planner.go):
//
//   - kindSweep — the general columnar loop: scan candidates from the
//     window start while Start <= sHi, filtering on the End range;
//   - kindMerge — all conditions pin the candidate start to a single point
//     (meets / starts / started-by / equals applications): the scan is a
//     tight merge over the equal-start run;
//   - kindGeneric — multi-attribute levels (General-class queries) and
//     condition-free levels: binary-search probe plus per-candidate Eval,
//     reading attributes through the arena.

import (
	"math"

	"intervaljoin/internal/interval"
)

// windowShape records which edges of a predicate's candidate window are
// real bounds, i.e. which window columns buildWindows must fill. The start
// lower edge always is (a before-style application's sLo bound is the whole
// point of the sweep; unbounded edges are the only exception and stay at
// index 0 via an all -inf bound column).
type windowShape struct {
	sHi, eLo, eHi bool
}

// shapeOf returns the window shape of the application p(bound, candidate),
// mirroring condWindows.
func shapeOf(p interval.Predicate) windowShape {
	switch p {
	case interval.Before:
		return windowShape{}
	case interval.After:
		return windowShape{sHi: true, eHi: true}
	case interval.Meets:
		return windowShape{sHi: true}
	case interval.MetBy:
		return windowShape{sHi: true, eLo: true, eHi: true}
	case interval.Overlaps:
		return windowShape{sHi: true, eLo: true}
	case interval.OverlappedBy:
		return windowShape{sHi: true, eLo: true, eHi: true}
	case interval.Contains:
		return windowShape{sHi: true, eHi: true}
	case interval.ContainedBy:
		return windowShape{sHi: true, eLo: true}
	case interval.Starts:
		return windowShape{sHi: true, eLo: true}
	case interval.StartedBy:
		return windowShape{sHi: true, eHi: true}
	case interval.Finishes:
		return windowShape{sHi: true, eLo: true, eHi: true}
	case interval.FinishedBy:
		return windowShape{sHi: true, eLo: true, eHi: true}
	case interval.Equals:
		return windowShape{sHi: true, eLo: true, eHi: true}
	default:
		panic("core: shapeOf: predicate outside the 13 Allen relations")
	}
}

// pointStart reports whether the application p(bound, candidate) pins the
// candidate start to a single point (sLo == sHi for every bound) — the
// merge-loop family.
func pointStart(p interval.Predicate) bool {
	switch p {
	case interval.Meets, interval.Starts, interval.StartedBy, interval.Equals:
		return true
	case interval.Before, interval.After, interval.MetBy, interval.Overlaps,
		interval.OverlappedBy, interval.Contains, interval.ContainedBy,
		interval.Finishes, interval.FinishedBy:
		return false
	default:
		panic("core: pointStart: predicate outside the 13 Allen relations")
	}
}

// condWindows returns the exact candidate window of the application
// p(b, x) for valid x (x.Start <= x.End): p(b, x) holds if and only if
// sLo <= x.Start <= sHi and eLo <= x.End <= eHi. Unbounded edges are the
// int64 infinities. ok is false when the window is empty because a strict
// bound saturates at the int64 extremes (e.g. before(b, x) with
// b.End == MaxInt64 admits no x at all); callers must then emit nothing
// for this partner rather than use the returned bounds.
func condWindows(p interval.Predicate, b interval.Interval) (sLo, sHi, eLo, eHi int64, ok bool) {
	const (
		negInf = math.MinInt64
		posInf = math.MaxInt64
	)
	sLo, sHi, eLo, eHi, ok = negInf, posInf, negInf, posInf, true
	switch p {
	case interval.Before: // b.e < x.s
		sLo, ok = incOK(b.End)
	case interval.After: // x.e < b.s; validity bounds x.s too
		eHi, ok = decOK(b.Start)
		sHi = eHi
	case interval.Meets: // x.s == b.e
		sLo, sHi = b.End, b.End
	case interval.MetBy: // x.e == b.s; validity: x.s <= b.s
		eLo, eHi = b.Start, b.Start
		sHi = b.Start
	case interval.Overlaps: // b.s < x.s && x.s < b.e && b.e < x.e
		sLo, ok = incOK(b.Start)
		if ok {
			sHi, ok = decOK(b.End)
		}
		if ok {
			eLo, ok = incOK(b.End)
		}
	case interval.OverlappedBy: // x.s < b.s && b.s < x.e && x.e < b.e
		sHi, ok = decOK(b.Start)
		if ok {
			eLo, ok = incOK(b.Start)
		}
		if ok {
			eHi, ok = decOK(b.End)
		}
	case interval.Contains: // b.s < x.s && x.e < b.e; validity: x.s <= b.e-1
		sLo, ok = incOK(b.Start)
		if ok {
			eHi, ok = decOK(b.End)
		}
		sHi = eHi
	case interval.ContainedBy: // x.s < b.s && b.e < x.e
		sHi, ok = decOK(b.Start)
		if ok {
			eLo, ok = incOK(b.End)
		}
	case interval.Starts: // x.s == b.s && b.e < x.e
		sLo, sHi = b.Start, b.Start
		eLo, ok = incOK(b.End)
	case interval.StartedBy: // x.s == b.s && x.e < b.e
		sLo, sHi = b.Start, b.Start
		eHi, ok = decOK(b.End)
	case interval.Finishes: // x.e == b.e && x.s < b.s
		eLo, eHi = b.End, b.End
		sHi, ok = decOK(b.Start)
	case interval.FinishedBy: // x.e == b.e && b.s < x.s; validity: x.s <= b.e
		eLo, eHi = b.End, b.End
		sLo, ok = incOK(b.Start)
		sHi = b.End
	case interval.Equals:
		sLo, sHi = b.Start, b.Start
		eLo, eHi = b.End, b.End
	default:
		panic("core: condWindows: predicate outside the 13 Allen relations")
	}
	return sLo, sHi, eLo, eHi, ok
}

// incOK is v+1 with ok=false when v is already MaxInt64 (the strict bound
// admits nothing).
func incOK(v int64) (int64, bool) {
	if v == math.MaxInt64 {
		return v, false
	}
	return v + 1, true
}

// decOK is v-1 with ok=false when v is already MinInt64.
func decOK(v int64) (int64, bool) {
	if v == math.MinInt64 {
		return v, false
	}
	return v - 1, true
}

// condWindow is one condition's window table at one binding level: for
// partner tuple t (by its index in the partner's prepared column), the
// candidate window is candidates from[t] onward whose sort-attribute Start
// is at most sHi[t] and whose End lies in [eLo[t], eHi[t]]. Bound columns
// are nil when the predicate's shape leaves that edge unbounded; from is
// patched past the end of the list for partners whose window is empty
// (condWindows ok=false).
type condWindow struct {
	from []int32
	sHi  []int64
	eLo  []int64
	eHi  []int64
}

// keyIdx pairs a range endpoint with the partner index it belongs to.
type keyIdx struct {
	key int64
	idx int32
}

// sweepFroms computes, for every lower bound, the index of the first
// candidate start >= it.
func sweepFroms(los []int64, candStarts []int64) []int32 {
	froms := make([]int32, len(los))
	sweepFromsInto(froms, los, candStarts)
	return froms
}

// sweepFromsInto fills froms[t] with the index of the first candidate start
// >= los[t]. Nondecreasing bounds (the sorted-partner fast path) take a
// single two-cursor sweep; out-of-order bounds take one inline binary
// search each.
func sweepFromsInto(froms []int32, los []int64, candStarts []int64) {
	nc := int32(len(candStarts))
	if nonDecreasing(los) {
		k := int32(0)
		for t, lo := range los {
			for k < nc && candStarts[k] < lo {
				k++
			}
			froms[t] = k
		}
		return
	}
	for t, lo := range los {
		i, j := int32(0), nc
		for i < j {
			h := (i + j) >> 1
			if candStarts[h] < lo {
				i = h + 1
			} else {
				j = h
			}
		}
		froms[t] = i
	}
}

// nonDecreasing reports whether vals is already in sweep order.
func nonDecreasing(vals []int64) bool {
	for i := 1; i < len(vals); i++ {
		if vals[i] < vals[i-1] {
			return false
		}
	}
	return true
}

// sized returns s with length n, reusing the backing array when it has the
// capacity. Callers fully overwrite the returned slice: stale contents are
// not cleared.
func sized[T any](s []T, n int) []T {
	if cap(s) >= n {
		return s[:n]
	}
	return make([]T, n)
}

// kernelSemijoin reports whether any candidate at or after from in the
// start-sorted endpoint columns falls inside the exact condWindows window
// (start <= sHi, end in [eLo, eHi]). It is the survival scan of the
// semijoin marking cycle: a pure column test, no tuple loads and no
// per-candidate predicate evaluation.
func kernelSemijoin(starts, ends []int64, from int, sHi, eLo, eHi int64) bool {
	for k := from; k < len(starts) && starts[k] <= sHi; k++ {
		if e := ends[k]; e >= eLo && e <= eHi {
			return true
		}
	}
	return false
}

// kernelSweep is the specialized columnar inner loop for level i: scan the
// start column from the intersected window start while it stays within
// sHi, filter on the end column, and only then bind the payload. No tuple
// fields are read inside the scan (enforced by ijlint's colkernel rule);
// the accepted candidate is materialised from its arena ref exactly once,
// so rejected candidates never leave the endpoint columns.
func (p *preparedJoin) kernelSweep(i, from int, sHi, eLo, eHi int64) {
	lo, hi, refs := p.loCol[i], p.hiCol[i], p.refCol[i]
	for k := from; k < len(lo) && lo[k] <= sHi; k++ {
		if e := hi[k]; e < eLo || e > eHi {
			continue
		}
		p.idx[i] = k
		p.bref[i] = refs[k]
		p.asg[i] = p.arena.Tuple(refs[k])
		p.rec(i + 1)
	}
}

// kernelMerge is the tight merge loop for levels whose conditions all pin
// the candidate start to one point (meets / starts / started-by / equals
// applications): the scan is the equal-start run at the window start, with
// the end-column filter deciding each candidate.
func (p *preparedJoin) kernelMerge(i, from int, pt, eLo, eHi int64) {
	lo, hi, refs := p.loCol[i], p.hiCol[i], p.refCol[i]
	for k := from; k < len(lo) && lo[k] == pt; k++ {
		if e := hi[k]; e < eLo || e > eHi {
			continue
		}
		p.idx[i] = k
		p.bref[i] = refs[k]
		p.asg[i] = p.arena.Tuple(refs[k])
		p.rec(i + 1)
	}
}
