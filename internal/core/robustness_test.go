package core

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"intervaljoin/internal/dfs"
	"intervaljoin/internal/interval"
	"intervaljoin/internal/mr"
	"intervaljoin/internal/query"
	"intervaljoin/internal/relation"
)

// TestAlgorithmsUnderSpillAndRetry runs the main algorithms on an engine
// configured with an external-spill shuffle, transient failure injection and
// task retries, and checks the output still matches the oracle exactly —
// the engine's fault-tolerance features must be invisible to the
// algorithms.
func TestAlgorithmsUnderSpillAndRetry(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	cases := []struct {
		qs   string
		algs []Algorithm
	}{
		{"R1 overlaps R2 and R2 overlaps R3", []Algorithm{RCCIS{}, AllRep{}, Cascade{}}},
		{"R1 before R2 and R2 before R3", []Algorithm{AllMatrix{}, Cascade{MatrixSteps: true}}},
		{"R1 before R2 and R1 overlaps R3", []Algorithm{SeqMatrix{}, PASM{}, FCTS{}}},
		{"R1.I overlaps R2.I and R1.A = R2.A", []Algorithm{GenMatrix{}}},
	}
	for _, tc := range cases {
		q := query.MustParse(tc.qs)
		rels := make([]*relation.Relation, len(q.Relations))
		for i, s := range q.Relations {
			if s.Arity() == 1 {
				rels[i] = randomRelation(rng, s.Name, 60, 150, 30)
				continue
			}
			r := relation.New(s)
			for j := 0; j < 60; j++ {
				r.Append(randomAttrs(rng, s.Arity())...)
			}
			rels[i] = r
		}

		refCtx, err := NewContext(mr.NewEngine(mr.Config{Store: dfs.NewMem()}), q, rels,
			Options{Partitions: 5, PartitionsPerDim: 4})
		if err != nil {
			t.Fatal(err)
		}
		want, err := Reference{}.Run(refCtx)
		if err != nil {
			t.Fatal(err)
		}
		for _, alg := range tc.algs {
			// A fresh flaky injector per run: every task's first attempt
			// fails transiently; plus a spilling shuffle and retries.
			var mu sync.Mutex
			seen := make(map[string]bool)
			inject := func(phase mr.Phase, task, attempt int) error {
				mu.Lock()
				defer mu.Unlock()
				key := fmt.Sprintf("%s/%d", phase, task)
				if seen[key] {
					return nil
				}
				seen[key] = true
				return mr.ErrTransient
			}
			engine := mr.NewEngine(mr.Config{
				Store:              dfs.NewMem(),
				Workers:            4,
				SpillPairThreshold: 64,
				MaxTaskAttempts:    3,
				FailureInjector:    inject,
			})
			ctx, err := NewContext(engine, q, rels, Options{Partitions: 5, PartitionsPerDim: 4})
			if err != nil {
				t.Fatal(err)
			}
			got, err := alg.Run(ctx)
			if err != nil {
				t.Fatalf("%s on %q: %v", alg.Name(), tc.qs, err)
			}
			if got.Metrics.TaskRetries == 0 {
				t.Errorf("%s on %q: injector never triggered a retry", alg.Name(), tc.qs)
			}
			gw, ww := got.TupleSet(), want.TupleSet()
			if len(got.Tuples) != len(gw) {
				t.Errorf("%s on %q: duplicates under retry", alg.Name(), tc.qs)
			}
			if len(gw) != len(ww) {
				t.Errorf("%s on %q: %d tuples, oracle %d", alg.Name(), tc.qs, len(gw), len(ww))
				continue
			}
			for k := range ww {
				if _, ok := gw[k]; !ok {
					t.Errorf("%s on %q: missing tuple %s", alg.Name(), tc.qs, k)
					break
				}
			}
		}
	}
}

// randomAttrs builds arity random interval attributes; the second and later
// attributes use a small point domain so equality predicates match.
func randomAttrs(rng *rand.Rand, arity int) []interval.Interval {
	out := make([]interval.Interval, arity)
	for i := range out {
		if i == 0 {
			s := rng.Int63n(150)
			out[i] = interval.New(s, s+rng.Int63n(30))
			continue
		}
		p := rng.Int63n(4)
		out[i] = interval.PointInterval(p)
	}
	return out
}
