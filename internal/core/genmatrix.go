package core

import (
	"cmp"
	"fmt"
	"slices"

	"intervaljoin/internal/grid"
	"intervaljoin/internal/interval"
	"intervaljoin/internal/mr"
	"intervaljoin/internal/query"
	"intervaljoin/internal/relation"
)

// GenMatrix generalises All-Seq-Matrix to queries over multiple interval
// attributes and real-valued attributes (Section 9). The join graph's
// vertices are (relation, attribute) pairs; dropping sequence edges yields l
// colocation components, each with its own attribute range and partitioning,
// spanning an l-dimensional consistent-cell grid.
//
// Because a relation may own vertices in several components, a tuple's grid
// routing depends on the RCCIS flags of all its vertices jointly; the flags
// are computed per component in cycle 1 (one record per vertex) and
// assembled per tuple in a short merge cycle before the grid join — the one
// mechanical step the paper leaves implicit. Relations whose every vertex
// sits in a distinct component need the merge only when they have more than
// one vertex; single-attribute queries degrade to All-Seq-Matrix's two
// cycles.
//
// Real-valued attributes are length-zero intervals: they never cross a
// partition boundary, so their components replicate nothing and the grid
// dimension degenerates to hash partitioning, exactly as Section 9 argues.
type GenMatrix struct{}

// Name implements Algorithm.
func (GenMatrix) Name() string { return "gen-matrix" }

// vertexInfo locates one vertex of a relation: its component and attribute.
type vertexInfo struct {
	comp, attr int
}

// relVertices returns, per relation, its vertices sorted by (component,
// attribute) — the canonical flag-vector order.
func relVertices(d *query.Decomposition, m int) [][]vertexInfo {
	out := make([][]vertexInfo, m)
	for op, ci := range d.CompOf {
		out[op.Rel] = append(out[op.Rel], vertexInfo{comp: ci, attr: op.Attr})
	}
	for r := range out {
		vs := out[r]
		slices.SortFunc(vs, func(a, b vertexInfo) int {
			if c := cmp.Compare(a.comp, b.comp); c != 0 {
				return c
			}
			return cmp.Compare(a.attr, b.attr)
		})
	}
	return out
}

// Run implements Algorithm.
func (a GenMatrix) Run(ctx *Context) (*Result, error) {
	opts := ctx.Opts.withDefaults(a.Name())
	if err := ctx.Stage(); err != nil {
		return nil, err
	}
	d := query.Decompose(ctx.Query)
	if d.Contradictory {
		return &Result{Algorithm: a.Name(), Metrics: mr.NewMetrics(a.Name())}, nil
	}
	m := len(ctx.Rels)
	verts := relVertices(d, m)
	for ci := range d.Components {
		seenRel := make(map[int]bool)
		for _, v := range d.Components[ci].Vertices {
			if seenRel[v.Rel] {
				return nil, fmt.Errorf("core: gen-matrix does not support two attributes of %s in one colocation component",
					ctx.Query.Relations[v.Rel].Name)
			}
			seenRel[v.Rel] = true
		}
	}

	// Per-component partitionings over the component's own attribute range.
	parts, err := componentPartitionings(ctx, d, opts.PartitionsPerDim)
	if err != nil {
		return nil, err
	}

	marked := opts.Scratch + "/marked"
	merged := opts.Scratch + "/merged"
	markJob := a.markJob(ctx, opts, d, parts, marked)
	markJob.Meta = ctx.jobMeta(a.Name(), 1)
	mergeJob := a.mergeJob(ctx, opts, verts, marked, merged)
	mergeJob.Meta = ctx.jobMeta(a.Name(), 2)
	joinJob, err := a.joinJob(ctx, opts, d, parts, verts, merged, opts.Scratch+"/output")
	if err != nil {
		return nil, err
	}
	joinJob.Meta = ctx.jobMeta(a.Name(), 3)

	var perCycle []*mr.Metrics
	var agg *mr.Metrics
	var replicated int64
	if opts.Materialize {
		perCycle, agg, err = ctx.Engine.RunChain(markJob, mergeJob, joinJob)
		if err != nil {
			return nil, err
		}
		replicated, err = a.countReplicated(ctx, merged)
		if err != nil {
			return nil, err
		}
	} else {
		perCycle, agg, err = ctx.Engine.RunPipeline(
			mr.Stage{Job: markJob},
			mr.Stage{Job: mergeJob, Tap: func(rec string) {
				// Count tuples with a replicate-flagged vertex on the fly
				// (countReplicated's store scan, without the store).
				if _, flags, _, err := decodeVector(rec); err == nil {
					for _, f := range flags {
						if f {
							replicated++
							break
						}
					}
				}
			}},
			mr.Stage{Job: joinJob},
		)
		if err != nil {
			return nil, err
		}
	}
	res := &Result{Algorithm: a.Name(), Metrics: agg, PerCycle: perCycle, ReplicatedIntervals: replicated}
	if err := readOutput(ctx, joinJob.Output, res); err != nil {
		return nil, err
	}
	res.SortTuples()
	return res, nil
}

// componentPartitionings builds one o-partition partitioning per component,
// spanning the bounds of the component's vertex columns. Components related
// by a sequence order constraint compare partition indices across their two
// grid dimensions, so every group of order-connected components shares one
// partitioning over the union of the group's bounds (the paper's "each
// dimension spanning identical temporal range").
func componentPartitionings(ctx *Context, d *query.Decomposition, o int) ([]interval.Partitioning, error) {
	l := len(d.Components)
	// Union-find over components along order edges.
	group := make([]int, l)
	for i := range group {
		group[i] = i
	}
	var find func(int) int
	find = func(x int) int {
		for group[x] != x {
			group[x] = group[group[x]]
			x = group[x]
		}
		return x
	}
	for _, e := range d.Less {
		a, b := find(e[0]), find(e[1])
		if a != b {
			group[b] = a
		}
	}
	// Per-group bounds over all member components' vertex columns.
	type bounds struct {
		t0, tn interval.Point
		set    bool
	}
	groupBounds := make(map[int]*bounds)
	for ci := range d.Components {
		g := find(ci)
		gb := groupBounds[g]
		if gb == nil {
			gb = &bounds{}
			groupBounds[g] = gb
		}
		for _, v := range d.Components[ci].Vertices {
			a0, an, ok := relation.AttrBounds(ctx.Rels[v.Rel], v.Attr)
			if !ok {
				continue
			}
			if !gb.set {
				gb.t0, gb.tn, gb.set = a0, an, true
				continue
			}
			if a0 < gb.t0 {
				gb.t0 = a0
			}
			if an > gb.tn {
				gb.tn = an
			}
		}
	}
	// With equi-depth partitioning, each group's boundaries come from the
	// quantiles of its own vertex columns' start points.
	groupSamples := make(map[int][]interval.Point)
	if ctx.Opts.EquiDepth {
		for ci := range d.Components {
			g := find(ci)
			for _, v := range d.Components[ci].Vertices {
				rel := ctx.Rels[v.Rel]
				stride := rel.Len()/sampleBudget + 1
				for i, t := range rel.Tuples {
					if i%stride == 0 {
						groupSamples[g] = append(groupSamples[g], t.Attrs[v.Attr].Start)
					}
				}
			}
		}
	}
	groupParts := make(map[int]interval.Partitioning)
	parts := make([]interval.Partitioning, l)
	for ci := range d.Components {
		g := find(ci)
		if p, ok := groupParts[g]; ok {
			parts[ci] = p // order-related components share one partitioning
			continue
		}
		gb := groupBounds[g]
		t0, tn := gb.t0, gb.tn
		if !gb.set {
			t0, tn = 0, 1 // empty component data; any range works
		}
		var p interval.Partitioning
		var err error
		if ctx.Opts.EquiDepth {
			p, err = interval.NewEquiDepth(t0, tn, o, groupSamples[g])
		} else {
			p, err = interval.MakeUniform(t0, tn, o)
		}
		if err != nil {
			return nil, err
		}
		groupParts[g] = p
		parts[ci] = p
	}
	return parts, nil
}

// markJob is cycle 1: RCCIS marking per component over vertex values. The
// output holds one flagged record per (tuple, vertex).
func (GenMatrix) markJob(ctx *Context, opts Options, d *query.Decomposition,
	parts []interval.Partitioning, output string) mr.Job {

	inputs := make([]mr.Input, len(ctx.Rels))
	for ri := range ctx.Rels {
		inputs[ri] = ctx.relInput(ri, ri)
	}
	// Vertices per relation per component, and per-component reducers.
	attrOfComp := make([]map[int]int, len(d.Components)) // comp -> rel -> attr
	relsOfComp := make([][]int, len(d.Components))
	for op, ci := range d.CompOf {
		if attrOfComp[ci] == nil {
			attrOfComp[ci] = make(map[int]int)
		}
		attrOfComp[ci][op.Rel] = op.Attr
		relsOfComp[ci] = append(relsOfComp[ci], op.Rel)
	}
	reducers := make([]mr.ReduceFunc, len(d.Components))
	for ci := range d.Components {
		slices.Sort(relsOfComp[ci])
		inner := markReducerAttrs(d.SubQueryConds(ci), parts[ci], relsOfComp[ci], attrOfComp[ci])
		ci := ci
		reducers[ci] = func(key int64, values []string, write func(string) error) error {
			// Re-wrap the inner writer so the output records carry the
			// vertex attribute (needed by the merge cycle).
			return inner(key, values, func(rec string) error {
				rel, replicate, t, err := decodeFlagged(rec)
				if err != nil {
					return err
				}
				return write(encodeVertexFlagged(rel, attrOfComp[ci][rel], replicate, t))
			})
		}
	}
	o := int64(opts.PartitionsPerDim)
	compOfVertex := d.CompOf

	return mr.Job{
		Name:   opts.Scratch + "/mark",
		Inputs: inputs,
		Map: func(tag int, record string, emit mr.Emitter) error {
			t, err := relation.DecodeTuple(record)
			if err != nil {
				return err
			}
			for op, ci := range compOfVertex {
				if op.Rel != tag {
					continue
				}
				first, last := parts[ci].Split(t.Attrs[op.Attr])
				// Keys within one component block are contiguous.
				emit.EmitRange(int64(ci)*o+int64(first), int64(ci)*o+int64(last), encodeTagged(tag, t))
			}
			return nil
		},
		Reduce: func(key int64, values []string, write func(string) error) error {
			ci := int(key / o)
			return reducers[ci](key%o, values, write)
		},
		Output:     output,
		SortValues: opts.SortValues,
	}
}

// mergeJob is cycle 2: group the per-vertex flags by tuple and emit one
// flag-vector record per tuple.
func (GenMatrix) mergeJob(ctx *Context, opts Options, verts [][]vertexInfo, input, output string) mr.Job {
	m := int64(len(ctx.Rels))
	return mr.Job{
		Name:   opts.Scratch + "/merge",
		Inputs: []mr.Input{{File: input}},
		Map: func(_ int, record string, emit mr.Emitter) error {
			rel, _, _, t, err := decodeVertexFlagged(record)
			if err != nil {
				return err
			}
			emit.Emit(t.ID*m+int64(rel), record)
			return nil
		},
		Reduce: func(key int64, values []string, write func(string) error) error {
			rel := int(key % m)
			vs := verts[rel]
			flags := make([]bool, len(vs))
			var tuple relation.Tuple
			for i, v := range values {
				r, attr, replicate, t, err := decodeVertexFlagged(v)
				if err != nil {
					return err
				}
				if r != rel {
					return fmt.Errorf("core: gen-matrix merge: relation mismatch %d vs %d", r, rel)
				}
				if i == 0 {
					tuple = t
				}
				found := false
				for vi, info := range vs {
					if info.attr == attr {
						flags[vi] = flags[vi] || replicate
						found = true
						break
					}
				}
				if !found {
					return fmt.Errorf("core: gen-matrix merge: unknown vertex attribute %d of relation %d", attr, rel)
				}
			}
			return write(encodeVector(rel, flags, tuple))
		},
		Output:     output,
		SortValues: opts.SortValues,
	}
}

// joinJob is cycle 3: route each tuple into the grid jointly per its vertex
// flags and join per cell.
func (GenMatrix) joinJob(ctx *Context, opts Options, d *query.Decomposition,
	parts []interval.Partitioning, verts [][]vertexInfo, input, output string) (mr.Job, error) {

	l := d.NumComponents()
	dims := make([]int, l)
	for i := range dims {
		dims[i] = parts[i].Len()
	}
	g, err := grid.New(dims)
	if err != nil {
		return mr.Job{}, err
	}
	cons := soundComponentLess(d)
	m := len(ctx.Rels)

	mapFn := func(_ int, record string, emit mr.Emitter) error {
		rel, flags, t, err := decodeVector(record)
		if err != nil {
			return err
		}
		if len(flags) != len(verts[rel]) {
			return fmt.Errorf("core: gen-matrix: flag vector arity %d, want %d", len(flags), len(verts[rel]))
		}
		bounds := g.FreeBounds()
		for vi, info := range verts[rel] {
			q := parts[info.comp].Project(t.Attrs[info.attr])
			if flags[vi] {
				b := bounds[info.comp]
				if q > b.Min {
					b.Min = q
				}
				bounds[info.comp] = b // E2, replicated: i_k >= q
			} else {
				bounds[info.comp] = grid.Bound{Min: q, Max: q} // E2: i_k = q
			}
		}
		enc := encodeTagged(rel, t)
		g.EnumerateRuns(bounds, cons, func(lo, hi int64) { emit.EmitRange(lo, hi, enc) })
		return nil
	}

	// Shared across reduce calls: the plan is static and per-run state is
	// pooled inside the enumerator.
	e := newEnumerator(ctx.Query.Conds, allRelations(m)).withTracer(ctx.Engine.Tracer())
	lvl := identityLevels(m)
	reduceFn := func(key int64, values []string, write func(string) error) error {
		coord := g.Coord(key, nil)
		var outErr error
		err := e.runTagged(values, lvl, func(asg []relation.Tuple) {
			if outErr != nil {
				return
			}
			for ci := range d.Components {
				maxStart := interval.Point(0)
				first := true
				for _, v := range d.Components[ci].Vertices {
					s := asg[v.Rel].Attrs[v.Attr].Start
					if first || s > maxStart {
						maxStart, first = s, false
					}
				}
				if parts[ci].IndexOf(maxStart) != coord[ci] {
					return
				}
			}
			out := make(OutputTuple, len(asg))
			for i, t := range asg {
				out[i] = t.ID
			}
			outErr = write(out.Key())
		})
		if err != nil {
			return err
		}
		return outErr
	}

	return mr.Job{
		Name:       opts.Scratch + "/join",
		Inputs:     []mr.Input{{File: input}},
		Map:        mapFn,
		Reduce:     reduceFn,
		Output:     output,
		SortValues: opts.SortValues,
	}, nil
}

// countReplicated counts tuples with at least one replicate-flagged vertex.
func (GenMatrix) countReplicated(ctx *Context, merged string) (int64, error) {
	it, err := ctx.Engine.Store().Open(merged)
	if err != nil {
		return 0, err
	}
	defer it.Close()
	var n int64
	for {
		rec, ok, err := it.Next()
		if err != nil {
			return 0, err
		}
		if !ok {
			return n, nil
		}
		_, flags, _, err := decodeVector(rec)
		if err != nil {
			return 0, err
		}
		for _, f := range flags {
			if f {
				n++
				break
			}
		}
	}
}
