package core

import (
	"fmt"
	"math/rand"
	"testing"

	"intervaljoin/internal/dfs"
	"intervaljoin/internal/interval"
	"intervaljoin/internal/mr"
	"intervaljoin/internal/query"
	"intervaljoin/internal/relation"
)

// randomRelation builds a single-attribute relation with n tuples over
// [0, domain) with lengths in [0, maxLen].
func randomRelation(rng *rand.Rand, name string, n int, domain, maxLen int64) *relation.Relation {
	ivs := make([]interval.Interval, n)
	for i := range ivs {
		s := rng.Int63n(domain)
		ivs[i] = interval.New(s, s+rng.Int63n(maxLen+1))
	}
	return relation.FromIntervals(name, ivs)
}

// crossValidate runs every algorithm against the oracle on the given query
// and relations and fails on any output-set difference or duplicate.
func crossValidate(t *testing.T, q *query.Query, rels []*relation.Relation, opts Options, algs ...Algorithm) {
	t.Helper()
	engine := mr.NewEngine(mr.Config{Store: dfs.NewMem(), Workers: 4})
	refCtx, err := NewContext(engine, q, rels, opts)
	if err != nil {
		t.Fatal(err)
	}
	want, err := Reference{}.Run(refCtx)
	if err != nil {
		t.Fatal(err)
	}
	wantSet := want.TupleSet()
	for _, alg := range algs {
		o := opts
		o.Scratch = "" // per-algorithm default scratch
		ctx, err := NewContext(engine, q, rels, o)
		if err != nil {
			t.Fatal(err)
		}
		got, err := alg.Run(ctx)
		if err != nil {
			t.Fatalf("%s: %v", alg.Name(), err)
		}
		gotSet := got.TupleSet()
		if len(got.Tuples) != len(gotSet) {
			t.Errorf("%s: %d tuples but %d distinct — duplicates emitted (query %s)",
				alg.Name(), len(got.Tuples), len(gotSet), q)
		}
		if len(gotSet) != len(wantSet) {
			t.Errorf("%s: %d tuples, oracle has %d (query %s)", alg.Name(), len(gotSet), len(wantSet), q)
		}
		for k := range wantSet {
			if _, ok := gotSet[k]; !ok {
				t.Errorf("%s: missing output tuple %s (query %s)", alg.Name(), k, q)
				break
			}
		}
		for k := range gotSet {
			if _, ok := wantSet[k]; !ok {
				t.Errorf("%s: spurious output tuple %s (query %s)", alg.Name(), k, q)
				break
			}
		}
	}
}

func TestTwoWayAllPredicates(t *testing.T) {
	rng := rand.New(rand.NewSource(100))
	for p := interval.Predicate(0); p < interval.NumPredicates; p++ {
		p := p
		t.Run(p.String(), func(t *testing.T) {
			q := query.MustParse("R1 " + p.String() + " R2")
			for trial := 0; trial < 3; trial++ {
				rels := []*relation.Relation{
					randomRelation(rng, "R1", 60, 150, 40),
					randomRelation(rng, "R2", 60, 150, 40),
				}
				algs := []Algorithm{TwoWay{}, Cascade{}}
				if p.IsColocation() {
					algs = append(algs, RCCIS{}, SeqMatrix{}, PASM{}, FCTS{}, AllRep{})
				} else {
					algs = append(algs, AllMatrix{}, SeqMatrix{}, PASM{}, AllRep{}, Cascade{MatrixSteps: true})
				}
				crossValidate(t, q, rels, Options{Partitions: 7, PartitionsPerDim: 5}, algs...)
			}
		})
	}
}

func TestColocationChainQ1(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	q := query.MustParse("R1 overlaps R2 and R2 overlaps R3")
	for trial := 0; trial < 5; trial++ {
		rels := []*relation.Relation{
			randomRelation(rng, "R1", 50, 200, 30),
			randomRelation(rng, "R2", 50, 200, 30),
			randomRelation(rng, "R3", 50, 200, 30),
		}
		crossValidate(t, q, rels, Options{Partitions: 8, PartitionsPerDim: 4},
			RCCIS{}, AllRep{}, Cascade{}, SeqMatrix{}, PASM{}, FCTS{})
	}
}

func TestColocationQ0(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	q := query.MustParse("R1 overlaps R2 and R2 contains R3 and R3 overlaps R4")
	for trial := 0; trial < 4; trial++ {
		rels := []*relation.Relation{
			randomRelation(rng, "R1", 40, 160, 40),
			randomRelation(rng, "R2", 40, 160, 40),
			randomRelation(rng, "R3", 40, 160, 15),
			randomRelation(rng, "R4", 40, 160, 40),
		}
		crossValidate(t, q, rels, Options{Partitions: 6, PartitionsPerDim: 4},
			RCCIS{}, AllRep{}, Cascade{}, SeqMatrix{})
	}
}

func TestColocationMixedPredicates(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	queries := []string{
		"R1 meets R2 and R2 overlaps R3",
		"R1 starts R2 and R2 contains R3",
		"R1 finishes R2 and R2 overlaps R3",
		"R2 containedby R1 and R2 equals R3",
		"R1 overlappedby R2 and R2 metby R3",
		"R1 finishedby R2 and R2 startedby R3",
	}
	for _, qs := range queries {
		q := query.MustParse(qs)
		for trial := 0; trial < 2; trial++ {
			rels := make([]*relation.Relation, len(q.Relations))
			for i, s := range q.Relations {
				rels[i] = randomRelation(rng, s.Name, 45, 100, 20)
			}
			crossValidate(t, q, rels, Options{Partitions: 5, PartitionsPerDim: 4},
				RCCIS{}, AllRep{}, Cascade{}, SeqMatrix{})
		}
	}
}

func TestSequenceChainQ2(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	q := query.MustParse("R1 before R2 and R2 before R3")
	for trial := 0; trial < 4; trial++ {
		rels := []*relation.Relation{
			randomRelation(rng, "R1", 25, 200, 20),
			randomRelation(rng, "R2", 25, 200, 20),
			randomRelation(rng, "R3", 25, 200, 20),
		}
		crossValidate(t, q, rels, Options{Partitions: 6, PartitionsPerDim: 4},
			AllMatrix{}, AllRep{}, Cascade{}, Cascade{MatrixSteps: true}, SeqMatrix{}, PASM{},
			AllMatrix{DisableConsistencyFilter: true}, AllMatrix{BroadcastAllCells: true})
	}
}

func TestSequenceWithAfter(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	q := query.MustParse("R2 after R1 and R3 after R2")
	for trial := 0; trial < 3; trial++ {
		rels := []*relation.Relation{
			randomRelation(rng, "R2", 25, 180, 15),
			randomRelation(rng, "R1", 25, 180, 15),
			randomRelation(rng, "R3", 25, 180, 15),
		}
		crossValidate(t, q, rels, Options{Partitions: 5, PartitionsPerDim: 4},
			AllMatrix{}, AllRep{}, Cascade{}, SeqMatrix{})
	}
}

func TestHybridQ4(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	q := query.MustParse("R1 before R2 and R1 overlaps R3")
	for trial := 0; trial < 5; trial++ {
		rels := []*relation.Relation{
			randomRelation(rng, "R1", 40, 200, 30),
			randomRelation(rng, "R2", 40, 200, 30),
			randomRelation(rng, "R3", 40, 200, 30),
		}
		crossValidate(t, q, rels, Options{Partitions: 6, PartitionsPerDim: 4},
			SeqMatrix{}, PASM{}, FCTS{}, FSTC{}, AllRep{}, Cascade{}, Cascade{MatrixSteps: true})
	}
}

func TestHybridQ3(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	q := query.MustParse("R1 overlaps R2 and R2 overlaps R3 and R2 before R4 and R4 overlaps R5")
	for trial := 0; trial < 3; trial++ {
		rels := make([]*relation.Relation, 5)
		for i, s := range q.Relations {
			rels[i] = randomRelation(rng, s.Name, 25, 150, 25)
		}
		crossValidate(t, q, rels, Options{Partitions: 5, PartitionsPerDim: 3},
			SeqMatrix{}, PASM{}, FCTS{}, FSTC{}, AllRep{}, Cascade{})
	}
}

// TestHybridUnsoundConstraintScenario exercises the query shape for which
// the paper's component-order cell pruning would lose output: a colocation
// member two hops from the sequence operand can start after the other
// component's intervals. Our sound analysis must keep such outputs.
func TestHybridUnsoundConstraintScenario(t *testing.T) {
	q := query.MustParse("A overlaps B and B overlaps B2 and A before D")
	relA := relation.FromIntervals("A", []interval.Interval{{Start: 0, End: 5}})
	relB := relation.FromIntervals("B", []interval.Interval{{Start: 3, End: 100}})
	relB2 := relation.FromIntervals("B2", []interval.Interval{{Start: 50, End: 200}})
	relD := relation.FromIntervals("D", []interval.Interval{{Start: 10, End: 20}})
	// A o B (0<3<5<100), B o B2 (3<50<100<200), A before D (5<10): exactly
	// one output tuple, whose component C{A,B,B2} right-most member (B2,
	// start 50) starts AFTER component C{D}'s member (start 10).
	rels := []*relation.Relation{relA, relB, relB2, relD}
	crossValidate(t, q, rels, Options{Partitions: 6, PartitionsPerDim: 6},
		SeqMatrix{}, PASM{}, FCTS{}, AllRep{}, Cascade{})
	// And with random data around the same shape.
	rng := rand.New(rand.NewSource(14))
	for trial := 0; trial < 3; trial++ {
		rels := []*relation.Relation{
			randomRelation(rng, "A", 30, 150, 20),
			randomRelation(rng, "B", 30, 150, 60),
			randomRelation(rng, "B2", 30, 150, 60),
			randomRelation(rng, "D", 30, 150, 20),
		}
		crossValidate(t, q, rels, Options{Partitions: 5, PartitionsPerDim: 4},
			SeqMatrix{}, PASM{}, FCTS{})
	}
}

func TestGeneralQ5(t *testing.T) {
	rng := rand.New(rand.NewSource(15))
	q := query.MustParse("R1.I before R2.I and R1.I overlaps R3.I and R1.A = R3.A and R2.B = R3.B")
	for trial := 0; trial < 4; trial++ {
		mkRel := func(name string, attrs []string, n int) *relation.Relation {
			r := relation.New(relation.NewSchema(name, attrs...))
			for i := 0; i < n; i++ {
				vals := make([]interval.Interval, len(attrs))
				for j, a := range attrs {
					if a == "I" {
						s := rng.Int63n(150)
						vals[j] = interval.New(s, s+rng.Int63n(40))
					} else {
						vals[j] = interval.PointInterval(rng.Int63n(4)) // few values -> matches
					}
				}
				r.Append(vals...)
			}
			return r
		}
		rels := []*relation.Relation{
			mkRel("R1", []string{"I", "A"}, 35),
			mkRel("R2", []string{"I", "B"}, 35),
			mkRel("R3", []string{"I", "A", "B"}, 35),
		}
		crossValidate(t, q, rels, Options{Partitions: 5, PartitionsPerDim: 4}, GenMatrix{})
	}
}

func TestGenMatrixOnSingleAttributeQueries(t *testing.T) {
	// Gen-Matrix generalises the others; on single-attribute queries it
	// must agree with them.
	rng := rand.New(rand.NewSource(16))
	for _, qs := range []string{
		"R1 overlaps R2 and R2 overlaps R3",
		"R1 before R2 and R1 overlaps R3",
		"R1 before R2 and R2 before R3",
	} {
		q := query.MustParse(qs)
		rels := make([]*relation.Relation, len(q.Relations))
		for i, s := range q.Relations {
			rels[i] = randomRelation(rng, s.Name, 35, 150, 25)
		}
		crossValidate(t, q, rels, Options{Partitions: 5, PartitionsPerDim: 4}, GenMatrix{})
	}
}

func TestGenMatrixPureEquiJoin(t *testing.T) {
	// Real-valued equality joins are the degenerate case: length-zero
	// intervals, no replication, pure hash partitioning.
	rng := rand.New(rand.NewSource(17))
	q := query.MustParse("R1.A = R2.A and R2.B = R3.B")
	mk := func(name, attr string) *relation.Relation {
		r := relation.New(relation.NewSchema(name, attr))
		for i := 0; i < 50; i++ {
			r.Append(interval.PointInterval(rng.Int63n(8)))
		}
		return r
	}
	rels := []*relation.Relation{mk("R1", "A"), mk("R2", "A"), mk("R3", "B")}
	// R2 needs both A and B: rebuild with two attrs.
	r2 := relation.New(relation.NewSchema("R2", "A", "B"))
	for i := 0; i < 50; i++ {
		r2.Append(interval.PointInterval(rng.Int63n(8)), interval.PointInterval(rng.Int63n(8)))
	}
	rels[1] = r2
	res := func() *Result {
		engine := mr.NewEngine(mr.Config{Store: dfs.NewMem(), Workers: 4})
		ctx, err := NewContext(engine, q, rels, Options{Partitions: 4, PartitionsPerDim: 4})
		if err != nil {
			t.Fatal(err)
		}
		r, err := (GenMatrix{}).Run(ctx)
		if err != nil {
			t.Fatal(err)
		}
		return r
	}()
	if res.ReplicatedIntervals != 0 {
		t.Errorf("equi-join replicated %d tuples, want 0", res.ReplicatedIntervals)
	}
	crossValidate(t, q, rels, Options{Partitions: 4, PartitionsPerDim: 4}, GenMatrix{})
}

func TestContradictoryQueryEmpty(t *testing.T) {
	q := query.MustParse("R1 before R2 and R2 before R1x and R1x overlaps R1")
	rng := rand.New(rand.NewSource(18))
	rels := make([]*relation.Relation, len(q.Relations))
	for i, s := range q.Relations {
		rels[i] = randomRelation(rng, s.Name, 20, 100, 20)
	}
	crossValidate(t, q, rels, Options{Partitions: 4, PartitionsPerDim: 3}, SeqMatrix{}, PASM{}, FCTS{})
}

func TestEmptyRelations(t *testing.T) {
	q := query.MustParse("R1 overlaps R2 and R2 overlaps R3")
	rels := []*relation.Relation{
		relation.FromIntervals("R1", nil),
		relation.FromIntervals("R2", []interval.Interval{{Start: 0, End: 5}}),
		relation.FromIntervals("R3", nil),
	}
	crossValidate(t, q, rels, Options{Partitions: 4, PartitionsPerDim: 3},
		RCCIS{}, AllRep{}, Cascade{}, SeqMatrix{}, PASM{}, GenMatrix{})
}

func TestSinglePartition(t *testing.T) {
	// With one partition every algorithm degenerates to a local join.
	rng := rand.New(rand.NewSource(19))
	q := query.MustParse("R1 overlaps R2 and R2 overlaps R3")
	rels := make([]*relation.Relation, 3)
	for i, s := range q.Relations {
		rels[i] = randomRelation(rng, s.Name, 30, 80, 20)
	}
	crossValidate(t, q, rels, Options{Partitions: 1, PartitionsPerDim: 1},
		RCCIS{}, AllRep{}, Cascade{}, SeqMatrix{}, PASM{}, FCTS{}, GenMatrix{})
}

func TestManyPartitions(t *testing.T) {
	// More partitions than distinct points stress boundary handling.
	rng := rand.New(rand.NewSource(20))
	q := query.MustParse("R1 overlaps R2")
	rels := []*relation.Relation{
		randomRelation(rng, "R1", 25, 30, 10),
		randomRelation(rng, "R2", 25, 30, 10),
	}
	crossValidate(t, q, rels, Options{Partitions: 64, PartitionsPerDim: 16},
		TwoWay{}, RCCIS{}, AllRep{}, SeqMatrix{})
}

func TestPointIntervalData(t *testing.T) {
	// Length-zero intervals (real-valued points) through the interval
	// algorithms: colocation reduces to equality, sequence to inequality.
	rng := rand.New(rand.NewSource(21))
	mk := func(name string) *relation.Relation {
		ivs := make([]interval.Interval, 40)
		for i := range ivs {
			ivs[i] = interval.PointInterval(rng.Int63n(25))
		}
		return relation.FromIntervals(name, ivs)
	}
	q := query.MustParse("R1 equals R2 and R2 equals R3")
	rels := []*relation.Relation{mk("R1"), mk("R2"), mk("R3")}
	crossValidate(t, q, rels, Options{Partitions: 5, PartitionsPerDim: 4},
		RCCIS{}, AllRep{}, Cascade{}, SeqMatrix{})

	qs := query.MustParse("R1 before R2 and R2 before R3")
	crossValidate(t, qs, rels, Options{Partitions: 5, PartitionsPerDim: 4},
		AllMatrix{}, AllRep{}, Cascade{})
}

func TestRandomQueriesPropertyStyle(t *testing.T) {
	// Random chain queries over random predicates: the broad net.
	rng := rand.New(rand.NewSource(22))
	for trial := 0; trial < 10; trial++ {
		m := 2 + rng.Intn(3)
		qs := ""
		for i := 1; i < m; i++ {
			p := interval.Predicate(rng.Intn(int(interval.NumPredicates)))
			if qs != "" {
				qs += " and "
			}
			qs += fmt.Sprintf("R%d %s R%d", i, p, i+1)
		}
		q := query.MustParse(qs)
		rels := make([]*relation.Relation, len(q.Relations))
		for i, s := range q.Relations {
			rels[i] = randomRelation(rng, s.Name, 35, 120, 25)
		}
		algs := []Algorithm{SeqMatrix{}, PASM{}, AllRep{}, Cascade{}, GenMatrix{}}
		switch q.Classify() {
		case query.Colocation:
			algs = append(algs, RCCIS{}, FCTS{})
		case query.Sequence:
			algs = append(algs, AllMatrix{})
		case query.Hybrid:
			algs = append(algs, FCTS{}, FSTC{})
		}
		crossValidate(t, q, rels, Options{Partitions: 5, PartitionsPerDim: 3}, algs...)
	}
}

// nestedLoopOracle enumerates the full cross product of the candidate lists
// and keeps every assignment satisfying all conditions, evaluated directly
// with Predicate.Eval — no sorting, windows, or pruning. It is the ground
// truth for the sweep-based join kernel; values are occurrence counts so
// duplicates are caught too.
func nestedLoopOracle(conds []query.Condition, cands [][]relation.Tuple) map[string]int {
	out := make(map[string]int)
	m := len(cands)
	asg := make([]relation.Tuple, m)
	var rec func(i int)
	rec = func(i int) {
		if i == m {
			for _, c := range conds {
				u := asg[c.Left.Rel].Attrs[c.Left.Attr]
				v := asg[c.Right.Rel].Attrs[c.Right.Attr]
				if !c.Pred.Eval(u, v) {
					return
				}
			}
			key := ""
			for _, tp := range asg {
				key += fmt.Sprintf("%d,", tp.ID)
			}
			out[key]++
			return
		}
		for _, tp := range cands[i] {
			asg[i] = tp
			rec(i + 1)
		}
	}
	rec(0)
	return out
}

// sweepKernel runs the production enumerator over the same inputs and
// returns the same keyed occurrence counts.
func sweepKernel(conds []query.Condition, cands [][]relation.Tuple) map[string]int {
	rels := make([]int, len(cands))
	for i := range rels {
		rels[i] = i
	}
	e := newEnumerator(conds, rels)
	out := make(map[string]int)
	e.run(cands, func(asg []relation.Tuple) {
		key := ""
		for _, tp := range asg {
			key += fmt.Sprintf("%d,", tp.ID)
		}
		out[key]++
	})
	return out
}

func diffAssignmentSets(t *testing.T, label string, want, got map[string]int) {
	t.Helper()
	for k, n := range want {
		if got[k] != n {
			t.Errorf("%s: assignment %s: kernel %d, oracle %d", label, k, got[k], n)
			return
		}
	}
	for k, n := range got {
		if want[k] != n {
			t.Errorf("%s: assignment %s: kernel %d, oracle %d", label, k, n, want[k])
			return
		}
	}
}

// randomTuples builds n single-attribute tuples over a deliberately small
// domain so exact-boundary predicates (meets, starts, finishes, equals) fire.
func randomTuples(rng *rand.Rand, n int, domain, maxLen int64) []relation.Tuple {
	out := make([]relation.Tuple, n)
	for i := range out {
		s := rng.Int63n(domain)
		out[i] = mkTuple(int64(i), interval.New(s, s+rng.Int63n(maxLen+1)))
	}
	return out
}

// TestSweepKernelVsNestedLoopOracle cross-checks the sweep-based join kernel
// directly (no MR machinery) against the brute-force oracle, over randomized
// inputs covering every Allen predicate individually, random conjunctions
// from all four query classes, and multi-attribute conditions that force the
// probe fallback.
func TestSweepKernelVsNestedLoopOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(23))

	check := func(label string, conds []query.Condition, cands [][]relation.Tuple) {
		t.Helper()
		diffAssignmentSets(t, label, nestedLoopOracle(conds, cands), sweepKernel(conds, cands))
	}
	cond := func(l int, p interval.Predicate, r int) query.Condition {
		return query.Condition{Left: query.Operand{Rel: l}, Pred: p, Right: query.Operand{Rel: r}}
	}

	// Every Allen predicate alone, both orientations, tight domain.
	for p := interval.Predicate(0); p < interval.NumPredicates; p++ {
		for trial := 0; trial < 4; trial++ {
			cands := [][]relation.Tuple{
				randomTuples(rng, 30, 25, 8),
				randomTuples(rng, 30, 25, 8),
			}
			check("single "+p.String(), []query.Condition{cond(0, p, 1)}, cands)
			check("single-rev "+p.String(), []query.Condition{cond(1, p, 0)}, cands)
		}
	}

	// Random conjunctions over three relations: chains, triangles, and
	// fan-outs drawn from all 13 predicates — this hits the colocation
	// sweep, the sequence families, hybrid mixes on one level, and the
	// multi-condition intersection paths.
	pairs := [][2]int{{0, 1}, {1, 2}, {0, 2}, {1, 0}, {2, 1}, {2, 0}}
	for trial := 0; trial < 60; trial++ {
		nc := 1 + rng.Intn(3)
		conds := make([]query.Condition, nc)
		for i := range conds {
			pr := pairs[rng.Intn(len(pairs))]
			p := interval.Predicate(rng.Intn(int(interval.NumPredicates)))
			conds[i] = cond(pr[0], p, pr[1])
		}
		cands := [][]relation.Tuple{
			randomTuples(rng, 20, 30, 10),
			randomTuples(rng, 20, 30, 10),
			randomTuples(rng, 20, 30, 10),
		}
		check(fmt.Sprintf("random trial %d %v", trial, conds), conds, cands)
	}

	// Multi-attribute (general class): two-attribute tuples with conditions
	// targeting different attributes of the same level, which exercises the
	// probe fallback (no single sort order serves both).
	mk2 := func(n int) []relation.Tuple {
		out := make([]relation.Tuple, n)
		for i := range out {
			s1 := rng.Int63n(25)
			out[i] = relation.Tuple{ID: int64(i), Attrs: []interval.Interval{
				interval.New(s1, s1+rng.Int63n(8)),
				interval.PointInterval(rng.Int63n(5)),
			}}
		}
		return out
	}
	for trial := 0; trial < 20; trial++ {
		p1 := interval.Predicate(rng.Intn(int(interval.NumPredicates)))
		p2 := interval.Predicate(rng.Intn(int(interval.NumPredicates)))
		conds := []query.Condition{
			{Left: query.Operand{Rel: 0, Attr: 0}, Pred: p1, Right: query.Operand{Rel: 1, Attr: 0}},
			{Left: query.Operand{Rel: 0, Attr: 1}, Pred: interval.Equals, Right: query.Operand{Rel: 1, Attr: 1}},
			{Left: query.Operand{Rel: 1, Attr: 0}, Pred: p2, Right: query.Operand{Rel: 2, Attr: 1}},
		}
		cands := [][]relation.Tuple{mk2(18), mk2(18), mk2(18)}
		check(fmt.Sprintf("multiattr trial %d %s/%s", trial, p1, p2), conds, cands)
	}

	// Degenerate shapes: empty lists, singletons, all-identical intervals.
	empty := [][]relation.Tuple{{}, randomTuples(rng, 10, 20, 5)}
	check("empty list", []query.Condition{cond(0, interval.Overlaps, 1)}, empty)
	same := make([]relation.Tuple, 12)
	for i := range same {
		same[i] = mkTuple(int64(i), interval.New(5, 9))
	}
	dup := [][]relation.Tuple{same, same, randomTuples(rng, 12, 20, 6)}
	check("identical intervals",
		[]query.Condition{cond(0, interval.Equals, 1), cond(1, interval.Overlaps, 2)}, dup)
}

func TestPlanPicksByClass(t *testing.T) {
	cases := []struct {
		q    string
		want string
	}{
		{"R1 overlaps R2", "two-way"},
		{"R1 overlaps R2 and R2 overlaps R3", "rccis"},
		{"R1 before R2 and R2 before R3", "all-matrix"},
		{"R1 before R2 and R1 overlaps R3", "all-seq-matrix"},
		{"R1.I before R2.I and R1.A = R2.A", "gen-matrix"},
	}
	for _, tc := range cases {
		if got := Plan(query.MustParse(tc.q), false).Name(); got != tc.want {
			t.Errorf("Plan(%q) = %s, want %s", tc.q, got, tc.want)
		}
	}
	if got := Plan(query.MustParse("R1 before R2 and R1 overlaps R3"), true).Name(); got != "pasm" {
		t.Errorf("Plan with pruning = %s, want pasm", got)
	}
}

func TestContextValidation(t *testing.T) {
	engine := mr.NewEngine(mr.Config{Store: dfs.NewMem()})
	q := query.MustParse("R1 overlaps R2")
	r1 := relation.FromIntervals("R1", []interval.Interval{{Start: 0, End: 1}})
	r2 := relation.FromIntervals("R2", []interval.Interval{{Start: 0, End: 1}})
	rX := relation.FromIntervals("RX", []interval.Interval{{Start: 0, End: 1}})
	if _, err := NewContext(engine, q, []*relation.Relation{r1, rX}, Options{}); err == nil {
		t.Error("unknown relation accepted")
	}
	if _, err := NewContext(engine, q, []*relation.Relation{r1}, Options{}); err == nil {
		t.Error("missing relation accepted")
	}
	if _, err := NewContext(engine, q, []*relation.Relation{r1, r1}, Options{}); err == nil {
		t.Error("duplicate binding accepted")
	}
	if _, err := NewContext(engine, q, []*relation.Relation{r2, r1}, Options{}); err != nil {
		t.Errorf("order-independent binding failed: %v", err)
	}
}

func TestAlgorithmClassGuards(t *testing.T) {
	engine := mr.NewEngine(mr.Config{Store: dfs.NewMem()})
	seqQ := query.MustParse("R1 before R2 and R2 before R3")
	rels := []*relation.Relation{
		relation.FromIntervals("R1", []interval.Interval{{Start: 0, End: 1}}),
		relation.FromIntervals("R2", []interval.Interval{{Start: 5, End: 6}}),
		relation.FromIntervals("R3", []interval.Interval{{Start: 9, End: 10}}),
	}
	ctx, err := NewContext(engine, seqQ, rels, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := (RCCIS{}).Run(ctx); err == nil {
		t.Error("RCCIS accepted a sequence query")
	}
	colQ := query.MustParse("R1 overlaps R2 and R2 overlaps R3")
	ctx2, err := NewContext(engine, colQ, rels, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := (AllMatrix{}).Run(ctx2); err == nil {
		t.Error("All-Matrix accepted a colocation query")
	}
}
