package cache

import (
	"math/rand"
	"testing"

	"intervaljoin/internal/core"
	"intervaljoin/internal/dfs"
	"intervaljoin/internal/interval"
	"intervaljoin/internal/mr"
	"intervaljoin/internal/query"
	"intervaljoin/internal/relation"
)

// adversarialRelation builds tuples that stress the delta-boundary
// handling: interval endpoints pinned exactly on the window boundaries the
// test queries use (multiples of 100 over [0,400]), degenerate points on
// boundaries, long stradlers spanning several windows, plus seeded random
// fill.
func adversarialRelation(name string, seed int64) *relation.Relation {
	rng := rand.New(rand.NewSource(seed))
	var ivs []interval.Interval
	for b := interval.Point(0); b <= 400; b += 100 {
		ivs = append(ivs,
			interval.New(b, b),        // point on the boundary
			interval.New(b, b+100),    // starts on a boundary, ends on the next
			interval.New(max(0, b-1), b+1), // straddles by one
		)
	}
	ivs = append(ivs,
		interval.New(0, 400),  // spans everything
		interval.New(99, 301), // straddles three boundaries
		interval.New(100, 299),
		interval.New(101, 298),
	)
	for i := 0; i < 40; i++ {
		s := interval.Point(rng.Intn(400))
		e := s + interval.Point(rng.Intn(150))
		ivs = append(ivs, interval.New(s, e))
	}
	return relation.FromIntervals(name, ivs)
}

func max(a, b interval.Point) interval.Point {
	if a > b {
		return a
	}
	return b
}

func newTestService(t *testing.T, rels ...*relation.Relation) *Service {
	t.Helper()
	eng := mr.NewEngine(mr.Config{Store: dfs.NewMem(), Workers: 4})
	svc, err := NewService(ServiceConfig{Engine: eng, Opts: core.Options{Partitions: 4, PartitionsPerDim: 3}})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rels {
		if _, err := svc.Register(r); err != nil {
			t.Fatal(err)
		}
	}
	return svc
}

func predQuery(t *testing.T, pred interval.Predicate) *query.Query {
	t.Helper()
	q := query.New()
	if err := q.AddCondition("R1", "", pred, "R2", ""); err != nil {
		t.Fatal(err)
	}
	return q
}

// oracleWindow computes the expected windowed answer with the in-memory
// reference join: the window filter restricts relation 0 exactly as the
// engine's feed-time filter does.
func oracleWindow(t *testing.T, svc *Service, q *query.Query, rels []*relation.Relation, w Window) map[string]struct{} {
	t.Helper()
	opts := core.Options{Window: &[2]interval.Point{w.Lo, w.Hi}}
	ctx, err := core.NewContext(svc.engine, q, rels, opts)
	if err != nil {
		t.Fatal(err)
	}
	res, err := core.Reference{}.Run(ctx)
	if err != nil {
		t.Fatal(err)
	}
	return res.TupleSet()
}

func answerSet(a *Answer) map[string]struct{} {
	set := make(map[string]struct{}, len(a.Rows))
	for _, r := range a.Rows {
		set[r.Key()] = struct{}{}
	}
	return set
}

func diffSets(t *testing.T, label string, got, want map[string]struct{}) {
	t.Helper()
	for k := range want {
		if _, ok := got[k]; !ok {
			t.Fatalf("%s: missing row %s (got %d rows, want %d)", label, k, len(got), len(want))
		}
	}
	for k := range got {
		if _, ok := want[k]; !ok {
			t.Fatalf("%s: extra row %s (got %d rows, want %d)", label, k, len(got), len(want))
		}
	}
}

// windowMix is a query sequence engineered to produce cold misses, partial
// hits with boundary-straddling gaps, and exact full hits.
var windowMix = []Window{
	{0, 199},   // cold
	{100, 299}, // partial: [200,299] is the gap, stradlers cross 200
	{50, 249},  // full hit (covered by [0,199]+[200,299])
	{0, 399},   // partial: gap [300,399]
	{150, 250}, // full hit
	{100, 299}, // exact repeat: full hit
	{380, 400}, // partial overhang: gap [400,400]
	{0, 400},   // full hit of everything
}

// TestCachedMergePlusDeltaEqualsColdRun is the equivalence property test:
// for every one of the 13 Allen predicates, a service answering the window
// mix from its evolving cache must produce, for each query, exactly the
// cold windowed result — sorted-set identical — despite boundary-straddling
// anchors appearing in multiple segments. The anti-vacuity guard asserts
// the mix actually exercised partial hits, full hits and cached segments,
// so the equivalence is not vacuously about empty caches.
func TestCachedMergePlusDeltaEqualsColdRun(t *testing.T) {
	for p := interval.Predicate(0); p < interval.NumPredicates; p++ {
		p := p
		t.Run(p.String(), func(t *testing.T) {
			t.Parallel()
			r1 := adversarialRelation("R1", 7)
			r2 := adversarialRelation("R2", 11)
			svc := newTestService(t, r1, r2)
			q := predQuery(t, p)
			rels := []*relation.Relation{r1, r2}

			sawPartial := false
			for i, w := range windowMix {
				ans, err := svc.Query(q, w)
				if err != nil {
					t.Fatal(err)
				}
				if ans.HitSegments > 0 && len(ans.DeltaWindows) > 0 {
					sawPartial = true
				}
				want := oracleWindow(t, svc, q, rels, w)
				diffSets(t, p.String()+" window "+w.string()+" (query "+itoa(i)+")", answerSet(ans), want)
			}
			st := svc.Stats()
			if st.FullHits == 0 || st.PartialHits == 0 || st.HitSegments == 0 {
				t.Fatalf("anti-vacuity: mix never exercised the cache: %+v", st)
			}
			if !sawPartial {
				t.Fatal("anti-vacuity: no query merged cached segments with delta joins")
			}
			if st.DeltaRows == 0 && st.CachedRows == 0 {
				t.Fatalf("anti-vacuity: no rows flowed at all: %+v", st)
			}
		})
	}
}

func (w Window) string() string { return "[" + itoa(int(w.Lo)) + "," + itoa(int(w.Hi)) + "]" }

func itoa(i int) string {
	if i == 0 {
		return "0"
	}
	neg := i < 0
	if neg {
		i = -i
	}
	var b [20]byte
	n := len(b)
	for i > 0 {
		n--
		b[n] = byte('0' + i%10)
		i /= 10
	}
	if neg {
		n--
		b[n] = '-'
	}
	return string(b[n:])
}

// TestWarmAnswerMatchesColdEngineRun pins the other leg of the equivalence:
// the service's warm answer equals a from-scratch engine run of the same
// windowed query on a fresh service (cold cache), exercising the feed-time
// window filter rather than the in-memory oracle.
func TestWarmAnswerMatchesColdEngineRun(t *testing.T) {
	r1 := adversarialRelation("R1", 3)
	r2 := adversarialRelation("R2", 5)
	q := predQuery(t, interval.Overlaps)

	warm := newTestService(t, r1, r2)
	for _, w := range windowMix {
		if _, err := warm.Query(q, w); err != nil {
			t.Fatal(err)
		}
	}
	for _, w := range []Window{{60, 260}, {0, 400}, {199, 201}} {
		warmAns, err := warm.Query(q, w)
		if err != nil {
			t.Fatal(err)
		}
		cold := newTestService(t, r1, r2)
		coldAns, err := cold.Query(q, w)
		if err != nil {
			t.Fatal(err)
		}
		if coldAns.HitSegments != 0 {
			t.Fatalf("cold service reported cache hits: %+v", coldAns)
		}
		diffSets(t, "warm vs cold "+w.string(), answerSet(warmAns), answerSet(coldAns))
	}
}

// TestVersionBumpInvalidates ensures a re-registered relation changes the
// cache key: stale segments stop matching and answers reflect new data.
func TestVersionBumpInvalidates(t *testing.T) {
	r1 := adversarialRelation("R1", 13)
	r2 := adversarialRelation("R2", 17)
	svc := newTestService(t, r1, r2)
	q := predQuery(t, interval.Before)
	w := Window{0, 400}
	first, err := svc.Query(q, w)
	if err != nil {
		t.Fatal(err)
	}
	// Replace R2 with a single tuple; every cached row is now stale.
	r2b := relation.FromIntervals("R2", []interval.Interval{interval.New(350, 360)})
	if _, err := svc.Register(r2b); err != nil {
		t.Fatal(err)
	}
	second, err := svc.Query(q, w)
	if err != nil {
		t.Fatal(err)
	}
	if second.HitSegments != 0 {
		t.Fatalf("query after re-registration hit stale segments: %+v", second)
	}
	if first.Key == second.Key {
		t.Fatalf("cache key did not change across versions: %+v", first.Key)
	}
	want := oracleWindow(t, svc, q, []*relation.Relation{r1, r2b}, w)
	diffSets(t, "post-bump", answerSet(second), want)
}

// TestThreeWayHybridWindow covers a multi-relation hybrid query through the
// cached path.
func TestThreeWayHybridWindow(t *testing.T) {
	r1 := adversarialRelation("R1", 19)
	r2 := adversarialRelation("R2", 23)
	r3 := adversarialRelation("R3", 29)
	svc := newTestService(t, r1, r2, r3)
	q := query.New()
	if err := q.AddCondition("R1", "", interval.Overlaps, "R2", ""); err != nil {
		t.Fatal(err)
	}
	if err := q.AddCondition("R2", "", interval.Before, "R3", ""); err != nil {
		t.Fatal(err)
	}
	rels := []*relation.Relation{r1, r2, r3}
	for _, w := range []Window{{0, 199}, {100, 299}, {0, 299}, {0, 299}} {
		ans, err := svc.Query(q, w)
		if err != nil {
			t.Fatal(err)
		}
		diffSets(t, "hybrid "+w.string(), answerSet(ans), oracleWindow(t, svc, q, rels, w))
	}
	if st := svc.Stats(); st.FullHits == 0 || st.HitSegments == 0 {
		t.Fatalf("hybrid mix never hit the cache: %+v", st)
	}
}

// TestUnregisteredRelationRejected pins the service's binding error.
func TestUnregisteredRelationRejected(t *testing.T) {
	svc := newTestService(t, adversarialRelation("R1", 31))
	if _, err := svc.Query(predQuery(t, interval.Meets), Window{0, 10}); err == nil {
		t.Fatal("query over unregistered relation succeeded")
	}
	if _, err := svc.Query(predQuery(t, interval.Meets), Window{10, 0}); err == nil {
		t.Fatal("empty window accepted")
	}
}
