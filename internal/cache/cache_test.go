package cache

import (
	"testing"

	"intervaljoin/internal/core"
	"intervaljoin/internal/interval"
)

func mkRows(n int, anchor interval.Interval) []Row {
	rows := make([]Row, n)
	for i := range rows {
		rows[i] = Row{IDs: core.OutputTuple{int64(i), int64(i)}, Anchor: anchor}
	}
	return rows
}

var testKey = Key{Plan: "R1(I),R2(I)|r0.a0 overlaps r1.a0", Family: "colocation", Versions: "R1@v1,R2@v1"}

func TestLookupDecomposition(t *testing.T) {
	c := New(1 << 20)
	// Cold: the whole window is one gap.
	hits, gaps := c.Lookup(testKey, Window{0, 99})
	if len(hits) != 0 || len(gaps) != 1 || gaps[0] != (Window{0, 99}) {
		t.Fatalf("cold lookup: hits=%v gaps=%v", hits, gaps)
	}
	c.Insert(testKey, Window{0, 99}, mkRows(3, interval.New(10, 20)))
	c.Insert(testKey, Window{200, 299}, mkRows(2, interval.New(210, 220)))

	// Full hit inside a segment.
	hits, gaps = c.Lookup(testKey, Window{10, 50})
	if len(hits) != 1 || len(gaps) != 0 {
		t.Fatalf("full hit: hits=%d gaps=%v", len(hits), gaps)
	}
	// Partial: the hole between segments plus overhang on the right.
	hits, gaps = c.Lookup(testKey, Window{50, 350})
	if len(hits) != 2 {
		t.Fatalf("partial hit: hits=%d", len(hits))
	}
	want := []Window{{100, 199}, {300, 350}}
	if len(gaps) != 2 || gaps[0] != want[0] || gaps[1] != want[1] {
		t.Fatalf("partial gaps=%v want %v", gaps, want)
	}
	// Disjoint key spaces do not mix.
	other := Key{Plan: testKey.Plan, Family: testKey.Family, Versions: "R1@v2,R2@v1"}
	if hits, _ := c.Lookup(other, Window{0, 99}); len(hits) != 0 {
		t.Fatalf("version-bumped key hit stale segments: %v", hits)
	}

	st := c.Stats()
	if st.Lookups != 4 || st.FullHits != 1 || st.PartialHits != 1 || st.Misses != 2 {
		t.Fatalf("stats = %+v", st)
	}
	if st.SpanRequested == 0 || st.SpanCovered == 0 || st.HitRatio() <= 0 || st.HitRatio() >= 1 {
		t.Fatalf("span accounting = %+v ratio=%v", st, st.HitRatio())
	}
}

func TestInsertOverlapDropped(t *testing.T) {
	c := New(1 << 20)
	if seg := c.Insert(testKey, Window{0, 99}, mkRows(1, interval.New(1, 2))); seg == nil {
		t.Fatal("first insert dropped")
	}
	// A racing insert overlapping an existing segment must be dropped to
	// keep per-key windows disjoint.
	if seg := c.Insert(testKey, Window{50, 150}, mkRows(1, interval.New(60, 70))); seg != nil {
		t.Fatal("overlapping insert accepted")
	}
	if c.Len() != 1 {
		t.Fatalf("segments = %d, want 1", c.Len())
	}
}

func TestByteBudgetLRUEviction(t *testing.T) {
	rows := mkRows(10, interval.New(0, 5)) // 10*56 + 128 = 688 bytes per segment
	var segBytes int64 = segmentOverhead
	for _, r := range rows {
		segBytes += rowBytes(r)
	}
	c := New(3 * segBytes)
	c.Insert(testKey, Window{0, 9}, mkRows(10, interval.New(0, 5)))
	c.Insert(testKey, Window{10, 19}, mkRows(10, interval.New(12, 15)))
	c.Insert(testKey, Window{20, 29}, mkRows(10, interval.New(22, 25)))
	// Touch the oldest segment so the middle one becomes LRU.
	c.Lookup(testKey, Window{0, 9})
	c.Insert(testKey, Window{30, 39}, mkRows(10, interval.New(32, 35)))
	st := c.Stats()
	if st.Evictions != 1 {
		t.Fatalf("evictions = %d, want 1", st.Evictions)
	}
	if st.BytesInUse > st.BytesBudget {
		t.Fatalf("bytes in use %d exceeds budget %d", st.BytesInUse, st.BytesBudget)
	}
	// The untouched middle segment [10,19] is the one that went.
	_, gaps := c.Lookup(testKey, Window{0, 39})
	if len(gaps) != 1 || gaps[0] != (Window{10, 19}) {
		t.Fatalf("gaps after eviction = %v, want [{10 19}]", gaps)
	}
}

func TestOversizedSegmentStaysCold(t *testing.T) {
	c := New(100) // smaller than any 10-row segment
	c.Insert(testKey, Window{0, 9}, mkRows(10, interval.New(0, 5)))
	if c.Len() != 0 {
		t.Fatalf("oversized segment retained; len=%d", c.Len())
	}
	if st := c.Stats(); st.BytesInUse != 0 || st.Evictions != 1 {
		t.Fatalf("stats after oversized insert = %+v", st)
	}
}
