// Package cache implements the semantic result cache behind the ijoind
// join service: completed join results stored as time-range segments,
// keyed by (canonical plan, predicate family, resident-relation versions),
// with byte-budgeted LRU eviction.
//
// Window semantics. A windowed query over the closed time range [lo, hi]
// returns exactly the join rows whose anchor — the first interval
// attribute of the query's first relation — intersects the window. That
// definition makes results segment-decomposable: the answer for a window
// is the union of the answers for any cover of it, with duplicates only
// for rows whose anchor straddles a piece boundary (the "halo"; anchors
// are joined whole, never clipped, so a straddling row appears in every
// adjacent piece and merging dedups on the output-tuple key). A cached
// segment therefore serves any later window by clipping: keep the rows
// whose anchor intersects the query window.
//
// Segments of one key are kept window-disjoint by construction — a miss
// inserts only the uncovered gap windows — so covered/uncovered
// decomposition is a linear scan of the sorted segment list.
package cache

import (
	"container/list"
	"slices"
	"sync"

	"intervaljoin/internal/core"
	"intervaljoin/internal/interval"
)

// Key identifies the result space a segment belongs to. Two queries share
// a key exactly when their canonical plans coincide over identical
// resident-relation versions; any re-registration of an input bumps the
// version string and orphans prior segments (they age out via LRU).
// Construct Keys with every field set — the cachekey lint analyzer
// enforces that Versions and Family are never omitted, since a key that
// drops either would serve stale or cross-family rows.
type Key struct {
	// Plan is core.CanonicalPlan of the query: normalized conjuncts over
	// the ordered relation list.
	Plan string
	// Family is the query's predicate family ("colocation", "sequence",
	// "hybrid", "general").
	Family string
	// Versions renders the resident inputs as "name@vN" in query relation
	// order.
	Versions string
}

// Window is a closed time range [Lo, Hi].
type Window struct {
	Lo, Hi interval.Point
}

// Span is the window's closed length.
func (w Window) Span() int64 { return int64(w.Hi-w.Lo) + 1 }

// Row is one cached join result row: the output tuple plus its anchor
// interval (the first attribute of the first relation's tuple), kept so a
// later query can clip the segment to its own window.
type Row struct {
	IDs    core.OutputTuple
	Anchor interval.Interval
}

// Segment is one cached result range: every row whose anchor intersects
// Win. Segments are immutable after insertion, so lookups may share them
// outside the cache lock.
type Segment struct {
	Key  Key
	Win  Window
	Rows []Row

	bytes int64
	elem  *list.Element
}

// rowBytes approximates a row's resident size: anchor (16) + id slice
// header (24) + ids.
func rowBytes(r Row) int64 { return 40 + 8*int64(len(r.IDs)) }

// segmentOverhead approximates a segment's fixed cost in the budget.
const segmentOverhead = 128

// Stats is the cache's cumulative accounting. Hit counters map onto the
// obs counters the service exports (cache_hit_segments, cache_delta_rows,
// ...); the span pair defines the semantic hit ratio.
type Stats struct {
	// Lookups counts queries; FullHits/PartialHits/Misses classify them by
	// whether the cache covered all, some, or none of the window span.
	Lookups, FullHits, PartialHits, Misses int64
	// HitSegments counts segments handed to queries for merging.
	HitSegments int64
	// CachedRows counts rows served from segments (before clipping);
	// DeltaRows counts rows inserted from delta-window joins.
	CachedRows, DeltaRows int64
	// SpanRequested/SpanCovered accumulate closed window lengths.
	SpanRequested, SpanCovered int64
	// Insertions/Evictions/BytesInUse track the byte-budgeted LRU.
	Insertions, Evictions int64
	BytesInUse            int64
	BytesBudget           int64
}

// HitRatio is the fraction of requested window span served from cache.
func (s Stats) HitRatio() float64 {
	if s.SpanRequested == 0 {
		return 0
	}
	return float64(s.SpanCovered) / float64(s.SpanRequested)
}

// Cache is the byte-budgeted LRU segment store. Safe for concurrent use.
type Cache struct {
	mu     sync.Mutex
	budget int64
	bytes  int64
	lru    *list.List          // of *Segment; front = most recently used
	segs   map[Key][]*Segment  // per key, sorted by Win.Lo, windows disjoint
	stats  Stats
}

// DefaultBudget is the byte budget used when New is given a non-positive
// one.
const DefaultBudget int64 = 64 << 20

// New makes an empty cache with the given byte budget.
func New(budgetBytes int64) *Cache {
	if budgetBytes <= 0 {
		budgetBytes = DefaultBudget
	}
	return &Cache{budget: budgetBytes, lru: list.New(), segs: make(map[Key][]*Segment)}
}

// Lookup returns the cached segments intersecting the window (oldest window
// first) and the uncovered gap windows, and updates the hit accounting.
// Returned segments are immutable shared views; the caller clips their rows
// to its own window and dedups against the gaps' delta results.
func (c *Cache) Lookup(k Key, w Window) (hits []*Segment, gaps []Window) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.stats.Lookups++
	c.stats.SpanRequested += w.Span()
	cur := w.Lo
	for _, s := range c.segs[k] {
		if s.Win.Hi < w.Lo || s.Win.Lo > w.Hi {
			continue
		}
		if s.Win.Lo > cur {
			gaps = append(gaps, Window{Lo: cur, Hi: s.Win.Lo - 1})
		}
		hits = append(hits, s)
		c.lru.MoveToFront(s.elem)
		c.stats.CachedRows += int64(len(s.Rows))
		if s.Win.Hi >= cur {
			cur = s.Win.Hi + 1
		}
		if cur > w.Hi {
			break
		}
	}
	if cur <= w.Hi {
		gaps = append(gaps, Window{Lo: cur, Hi: w.Hi})
	}
	covered := w.Span()
	for _, g := range gaps {
		covered -= g.Span()
	}
	c.stats.SpanCovered += covered
	c.stats.HitSegments += int64(len(hits))
	switch {
	case len(gaps) == 0:
		c.stats.FullHits++
	case len(hits) > 0:
		c.stats.PartialHits++
	default:
		c.stats.Misses++
	}
	return hits, gaps
}

// Insert caches rows as the segment for window w under the key. The window
// must be one of the gaps a Lookup returned; if it meanwhile overlaps an
// existing segment (two queries raced on the same gap), the insert is
// dropped — the disjointness invariant wins over the duplicate work.
func (c *Cache) Insert(k Key, w Window, rows []Row) *Segment {
	// Segments hold rows in canonical order so lookups merge sorted runs.
	// Engine results arrive sorted already; re-sorting here is a no-op
	// guard on the cold path.
	if !slices.IsSortedFunc(rows, compareRowIDs) {
		slices.SortFunc(rows, compareRowIDs)
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	segs := c.segs[k]
	at := len(segs)
	for i, s := range segs {
		if s.Win.Hi >= w.Lo && s.Win.Lo <= w.Hi {
			return nil
		}
		if s.Win.Lo > w.Hi {
			at = i
			break
		}
	}
	seg := &Segment{Key: k, Win: w, Rows: rows, bytes: segmentOverhead}
	for _, r := range rows {
		seg.bytes += rowBytes(r)
	}
	c.segs[k] = append(segs[:at:at], append([]*Segment{seg}, segs[at:]...)...)
	seg.elem = c.lru.PushFront(seg)
	c.bytes += seg.bytes
	c.stats.Insertions++
	c.stats.DeltaRows += int64(len(rows))
	c.evictLocked()
	return seg
}

// evictLocked drops least-recently-used segments until the budget holds.
// A single segment larger than the whole budget is evicted immediately
// after insertion — correct (the cache just stays cold) and simple.
func (c *Cache) evictLocked() {
	for c.bytes > c.budget && c.lru.Len() > 0 {
		s := c.lru.Back().Value.(*Segment)
		c.removeLocked(s)
		c.stats.Evictions++
	}
}

// removeLocked unlinks the segment from the LRU and the per-key list.
// Callers hold c.mu (the Locked suffix is the contract).
func (c *Cache) removeLocked(s *Segment) {
	c.lru.Remove(s.elem)
	segs := c.segs[s.Key]
	for i, t := range segs {
		if t == s {
			//lint:ignore shardlock called with c.mu held by evictLocked's callers
			c.segs[s.Key] = append(segs[:i:i], segs[i+1:]...)
			break
		}
	}
	if len(c.segs[s.Key]) == 0 {
		//lint:ignore shardlock called with c.mu held by evictLocked's callers
		delete(c.segs, s.Key)
	}
	//lint:ignore shardlock called with c.mu held by evictLocked's callers
	c.bytes -= s.bytes
}

func compareRowIDs(a, b Row) int { return compareTuples(a.IDs, b.IDs) }

// Stats returns a snapshot of the cumulative accounting.
func (c *Cache) Stats() Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	s := c.stats
	s.BytesInUse = c.bytes
	s.BytesBudget = c.budget
	return s
}

// Len reports the number of resident segments.
func (c *Cache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.lru.Len()
}
