package cache

import "intervaljoin/internal/obs/live"

// RegisterLive bridges the service's cache accounting into a live
// telemetry registry: it registers the ij_cache_* gauges and hooks a
// collector that refreshes them from Service.Stats right before every
// scrape, so /metrics always shows current accounting without the query
// path paying for a second set of counters. No-op on a nil registry or
// service.
func RegisterLive(r *live.Registry, s *Service) {
	if r == nil || s == nil {
		return
	}
	lookups := r.Gauge("ij_cache_lookups", "cumulative cache lookups")
	fullHits := r.Gauge("ij_cache_full_hits", "lookups fully covered by cached segments")
	partialHits := r.Gauge("ij_cache_partial_hits", "lookups partially covered by cached segments")
	misses := r.Gauge("ij_cache_misses", "lookups with no covering segment")
	hitSegments := r.Gauge("ij_cache_hit_segments", "segments handed to queries for merging")
	cachedRows := r.Gauge("ij_cache_cached_rows", "rows served from cached segments")
	deltaRows := r.Gauge("ij_cache_delta_rows", "rows inserted from delta-window joins")
	insertions := r.Gauge("ij_cache_insertions", "segments inserted")
	evictions := r.Gauge("ij_cache_evictions", "segments evicted by the byte budget")
	bytesInUse := r.Gauge("ij_cache_bytes_in_use", "resident segment bytes")
	bytesBudget := r.Gauge("ij_cache_bytes_budget", "segment cache byte budget")
	hitRatio := r.FloatGauge("ij_cache_hit_ratio", "fraction of requested window span served from cache")
	r.OnCollect(func() {
		st := s.Stats()
		lookups.Set(st.Lookups)
		fullHits.Set(st.FullHits)
		partialHits.Set(st.PartialHits)
		misses.Set(st.Misses)
		hitSegments.Set(st.HitSegments)
		cachedRows.Set(st.CachedRows)
		deltaRows.Set(st.DeltaRows)
		insertions.Set(st.Insertions)
		evictions.Set(st.Evictions)
		bytesInUse.Set(st.BytesInUse)
		bytesBudget.Set(st.BytesBudget)
		hitRatio.Set(st.HitRatio())
	})
}
