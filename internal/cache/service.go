package cache

import (
	"cmp"
	"fmt"
	"slices"
	"strconv"
	"sync"
	"time"

	"intervaljoin/internal/core"
	"intervaljoin/internal/dfs"
	"intervaljoin/internal/interval"
	"intervaljoin/internal/mr"
	"intervaljoin/internal/obs"
	"intervaljoin/internal/query"
	"intervaljoin/internal/relation"
)

// Service is the resident-relation join service: relations register once
// (staged to the store under a versioned resident file), and windowed
// queries answer from the semantic segment cache, running the join engine
// only over the uncovered delta windows. It is the transport-free core of
// cmd/ijoind and directly usable in tests and benchmarks.
type Service struct {
	engine    *mr.Engine
	residents *dfs.Residents
	cache     *Cache
	tracer    *obs.Tracer
	opts      core.Options
	algorithm func(*query.Query) core.Algorithm

	// runMu serializes engine executions: the MapReduce engine models one
	// cluster, so delta joins queue while cache-served queries proceed
	// concurrently.
	runMu sync.Mutex

	mu   sync.Mutex
	rels map[string]*residentRel
}

// residentRel is one registered relation: the in-memory copy (bound into
// run contexts for planning), its staged store file + version, and the
// id → anchor index used to attach clip anchors to delta rows.
type residentRel struct {
	rel     *relation.Relation
	file    string
	version int
	anchors map[int64]interval.Interval
}

// ServiceConfig configures a Service.
type ServiceConfig struct {
	// Engine runs the delta joins. Required; its store receives the
	// resident files.
	Engine *mr.Engine
	// CacheBytes is the segment cache's byte budget (0 → DefaultBudget).
	CacheBytes int64
	// Tracer, when non-nil, receives the cache_* counters per query.
	Tracer *obs.Tracer
	// Opts are the base run options applied to every delta join; Window,
	// WindowRel, ResidentInputs and Scratch are overwritten per run.
	Opts core.Options
	// Algorithm optionally overrides the planner's choice per query; nil
	// uses core.Plan.
	Algorithm func(*query.Query) core.Algorithm
}

// NewService builds a service over the engine's store.
func NewService(cfg ServiceConfig) (*Service, error) {
	if cfg.Engine == nil {
		return nil, fmt.Errorf("cache: ServiceConfig.Engine is required")
	}
	alg := cfg.Algorithm
	if alg == nil {
		alg = func(q *query.Query) core.Algorithm { return core.Plan(q, false) }
	}
	return &Service{
		engine:    cfg.Engine,
		residents: dfs.NewResidents(cfg.Engine.Store()),
		cache:     New(cfg.CacheBytes),
		tracer:    cfg.Tracer,
		opts:      cfg.Opts,
		algorithm: alg,
		rels:      make(map[string]*residentRel),
	}, nil
}

// Register stages the relation as the next version of its name and makes
// it queryable. Re-registering a name bumps the version: cached segments
// built on the old version stop matching new queries' keys and age out of
// the LRU; in-flight queries keep reading the old resident file.
func (s *Service) Register(rel *relation.Relation) (version int, err error) {
	if err := rel.Validate(); err != nil {
		return 0, err
	}
	records := make([]string, rel.Len())
	anchors := make(map[int64]interval.Interval, rel.Len())
	for i, t := range rel.Tuples {
		records[i] = relation.EncodeTuple(t)
		anchors[t.ID] = t.Attrs[0]
	}
	file, version, err := s.residents.Register(rel.Schema.Name, records)
	if err != nil {
		return 0, err
	}
	s.mu.Lock()
	s.rels[rel.Schema.Name] = &residentRel{rel: rel, file: file, version: version, anchors: anchors}
	s.mu.Unlock()
	return version, nil
}

// Relations lists the registered relation names, sorted.
func (s *Service) Relations() []string { return s.residents.Names() }

// Stats snapshots the segment cache accounting.
func (s *Service) Stats() Stats { return s.cache.Stats() }

// Answer is one query's result and its cache provenance.
type Answer struct {
	// Rows is the deduplicated result: every join row whose anchor (first
	// attribute of the first relation's tuple) intersects the query
	// window. Sorted canonically.
	Rows []core.OutputTuple
	// Window echoes the queried window.
	Window Window
	// Key is the cache key the query resolved to.
	Key Key
	// HitSegments is the number of cached segments merged in;
	// DeltaWindows are the uncovered gaps the engine re-joined.
	HitSegments  int
	DeltaWindows []Window
	// CachedRows / DeltaRows count merged rows by provenance, before
	// clipping and dedup.
	CachedRows, DeltaRows int64
	// Algorithm is the driver that ran the delta joins ("" on a full hit).
	Algorithm string
	// Engine aggregates the engine metrics of the query's delta runs (one
	// Merge per gap window). Nil when the cache covered the whole window —
	// the telemetry bridge in cmd/ijoind publishes it after each query.
	Engine *mr.Metrics
	// Wall is the query's service-side latency.
	Wall time.Duration
}

// Query answers a windowed query: rows whose anchor intersects the closed
// window [w.Lo, w.Hi]. Every relation the query names must be registered.
// Cache-covered spans merge without touching the engine; uncovered gaps
// run as delta-window joins over the resident files and populate the cache
// for the next query.
func (s *Service) Query(q *query.Query, w Window) (*Answer, error) {
	return s.queryOn(s.engine, q, w)
}

// QueryTraced answers exactly like Query but runs the query's delta joins
// on an engine derived with tr, so a sampled request's execution spans
// land in a tracer of their own (dumped as a per-query Chrome trace by
// cmd/ijoind). Rows are byte-identical to an untraced Query — tracing
// never changes results, only what gets recorded.
func (s *Service) QueryTraced(q *query.Query, w Window, tr *obs.Tracer) (*Answer, error) {
	return s.queryOn(s.engine.WithTracer(tr), q, w)
}

func (s *Service) queryOn(engine *mr.Engine, q *query.Query, w Window) (*Answer, error) {
	start := time.Now()
	if w.Hi < w.Lo {
		return nil, fmt.Errorf("cache: window [%d,%d] is empty", w.Lo, w.Hi)
	}
	if err := q.Validate(); err != nil {
		return nil, err
	}
	rels, files, versions, anchors, err := s.bind(q)
	if err != nil {
		return nil, err
	}
	key := Key{
		Plan:     core.CanonicalPlan(q),
		Family:   q.Classify().String(),
		Versions: versions,
	}
	ans := &Answer{Window: w, Key: key}
	if query.ProvablyEmpty(q) {
		ans.Wall = time.Since(start)
		return ans, nil
	}

	hits, gaps := s.cache.Lookup(key, w)
	ans.HitSegments = len(hits)
	ans.DeltaWindows = gaps

	// Merge: clip cached rows to the query window, then union in the delta
	// rows. Segment rows and engine results are already in canonical order
	// (the drivers sort, Insert re-checks), so the answer is a k-way merge
	// of sorted runs; the halo — rows whose anchor straddles a segment/gap
	// boundary arrive from both sides — dedups by dropping equal heads.
	runs := make([][]core.OutputTuple, 0, len(hits)+len(gaps))
	for _, seg := range hits {
		run := make([]core.OutputTuple, 0, len(seg.Rows))
		for _, r := range seg.Rows {
			if r.Anchor.Start > w.Hi || r.Anchor.End < w.Lo {
				continue
			}
			run = append(run, r.IDs)
		}
		runs = append(runs, run)
		ans.CachedRows += int64(len(seg.Rows))
	}
	for _, gap := range gaps {
		rows, algName, em, err := s.runDelta(engine, q, rels, files, gap)
		if err != nil {
			return nil, err
		}
		ans.Algorithm = algName
		ans.mergeEngine(em)
		ans.DeltaRows += int64(len(rows))
		cached := make([]Row, len(rows))
		for i, t := range rows {
			cached[i] = Row{IDs: t, Anchor: anchors[t[0]]}
		}
		s.cache.Insert(key, gap, cached)
		runs = append(runs, rows)
	}
	ans.Rows = mergeRuns(runs)

	s.tracer.Count("cache_lookups", 1)
	s.tracer.Count("cache_hit_segments", int64(len(hits)))
	s.tracer.Count("cache_delta_rows", ans.DeltaRows)
	s.tracer.Count("cache_cached_rows", ans.CachedRows)
	if len(gaps) == 0 {
		s.tracer.Count("cache_full_hits", 1)
	}
	ans.Wall = time.Since(start)
	return ans, nil
}

// RunCold answers the windowed query with a single engine run over the
// whole window, bypassing the cache entirely — neither reading nor
// populating it. It is the benchmark's cold control and the equivalence
// tests' engine-side oracle; Query with a warm cache must produce exactly
// this row set.
func (s *Service) RunCold(q *query.Query, w Window) (*Answer, error) {
	start := time.Now()
	if w.Hi < w.Lo {
		return nil, fmt.Errorf("cache: window [%d,%d] is empty", w.Lo, w.Hi)
	}
	if err := q.Validate(); err != nil {
		return nil, err
	}
	rels, files, versions, _, err := s.bind(q)
	if err != nil {
		return nil, err
	}
	ans := &Answer{Window: w, Key: Key{Plan: core.CanonicalPlan(q), Family: q.Classify().String(), Versions: versions}}
	if query.ProvablyEmpty(q) {
		ans.Wall = time.Since(start)
		return ans, nil
	}
	rows, algName, em, err := s.runDelta(s.engine, q, rels, files, w)
	if err != nil {
		return nil, err
	}
	ans.Rows = rows
	ans.Algorithm = algName
	ans.mergeEngine(em)
	ans.DeltaWindows = []Window{w}
	ans.DeltaRows = int64(len(rows))
	slices.SortFunc(ans.Rows, compareTuples)
	ans.Wall = time.Since(start)
	return ans, nil
}

// mergeRuns merges sorted duplicate-free runs into one sorted run,
// dropping cross-run duplicates (the boundary halo). Runs are tiny in
// number — one per merged segment or delta window — so the linear
// min-scan beats a heap.
func mergeRuns(runs [][]core.OutputTuple) []core.OutputTuple {
	switch len(runs) {
	case 0:
		return nil
	case 1:
		return runs[0]
	}
	total := 0
	idx := make([]int, len(runs))
	for _, r := range runs {
		total += len(r)
	}
	out := make([]core.OutputTuple, 0, total)
	for {
		best := -1
		for i, r := range runs {
			if idx[i] >= len(r) {
				continue
			}
			if best < 0 || compareTuples(r[idx[i]], runs[best][idx[best]]) < 0 {
				best = i
			}
		}
		if best < 0 {
			return out
		}
		t := runs[best][idx[best]]
		idx[best]++
		if n := len(out); n == 0 || compareTuples(out[n-1], t) != 0 {
			out = append(out, t)
		}
	}
}

// compareTuples orders output tuples lexicographically by id.
func compareTuples(a, b core.OutputTuple) int {
	for k := range a {
		if k >= len(b) {
			return 1
		}
		if c := cmp.Compare(a[k], b[k]); c != 0 {
			return c
		}
	}
	if len(a) < len(b) {
		return -1
	}
	return 0
}

// bind resolves the query's relations against the registry, returning the
// bound relations, their resident files (query relation order), the
// version string for the cache key, and the anchor index of relation 0.
func (s *Service) bind(q *query.Query) ([]*relation.Relation, []string, string, map[int64]interval.Interval, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	rels := make([]*relation.Relation, len(q.Relations))
	files := make([]string, len(q.Relations))
	versions := make([]byte, 0, 32)
	var anchors map[int64]interval.Interval
	for i, schema := range q.Relations {
		r, ok := s.rels[schema.Name]
		if !ok {
			return nil, nil, "", nil, fmt.Errorf("cache: relation %s is not registered", schema.Name)
		}
		rels[i] = r.rel
		files[i] = r.file
		if i > 0 {
			versions = append(versions, ',')
		}
		versions = append(versions, schema.Name...)
		versions = append(versions, "@v"...)
		versions = strconv.AppendInt(versions, int64(r.version), 10)
		if i == 0 {
			anchors = r.anchors
		}
	}
	return rels, files, string(versions), anchors, nil
}

// runDelta executes the join restricted to the gap window over the
// resident files, on the given engine (the shared one, or a per-query
// traced derivation). Engine runs serialize on runMu; the result is
// exactly the rows whose anchor intersects the gap, including whole
// (unclipped) straddling anchors — the halo the merge dedups — plus the
// run's engine metrics for the telemetry bridge.
func (s *Service) runDelta(engine *mr.Engine, q *query.Query, rels []*relation.Relation, files []string, gap Window) ([]core.OutputTuple, string, *mr.Metrics, error) {
	opts := s.opts
	opts.Window = &[2]interval.Point{gap.Lo, gap.Hi}
	opts.WindowRel = 0
	opts.ResidentInputs = files
	opts.Scratch = "" // per-run unique scratch namespace
	ctx, err := core.NewContext(engine, q, rels, opts)
	if err != nil {
		return nil, "", nil, err
	}
	alg := s.algorithm(q)
	s.runMu.Lock()
	res, err := alg.Run(ctx)
	s.runMu.Unlock()
	if err != nil {
		return nil, "", nil, err
	}
	return res.Tuples, res.Algorithm, res.Metrics, nil
}

// mergeEngine folds one delta run's engine metrics into the answer.
func (a *Answer) mergeEngine(m *mr.Metrics) {
	if m == nil {
		return
	}
	if a.Engine == nil {
		a.Engine = mr.NewMetrics("query")
		a.Engine.Cycles = 0
	}
	a.Engine.Merge(m)
}
