package cache

import (
	"testing"

	"intervaljoin/internal/interval"
	"intervaljoin/internal/obs"
)

// TestQueryTracedMatchesUntraced pins the telemetry non-interference
// contract the service instrumentation rides on: running a query under a
// per-query tracer (the sampled-tracing path ijoind takes) must return the
// exact same answer — same rows in the same canonical order, same cache
// provenance — as the plain path on an identically warmed twin service.
// It also pins the engine-metrics bridge: delta-running queries must carry
// aggregated engine counters on the Answer, full hits must not, and a
// sampled tracer must actually have recorded spans.
func TestQueryTracedMatchesUntraced(t *testing.T) {
	r1a, r2a := adversarialRelation("R1", 31), adversarialRelation("R2", 37)
	r1b, r2b := adversarialRelation("R1", 31), adversarialRelation("R2", 37)
	plain := newTestService(t, r1a, r2a)
	traced := newTestService(t, r1b, r2b)
	q := predQuery(t, interval.Overlaps)

	sawDelta, sawFullHit := false, false
	for i, w := range windowMix {
		want, err := plain.Query(q, w)
		if err != nil {
			t.Fatal(err)
		}
		tr := obs.New(obs.Options{})
		got, err := traced.QueryTraced(q, w, tr)
		if err != nil {
			t.Fatal(err)
		}
		if len(got.Rows) != len(want.Rows) {
			t.Fatalf("query %d window [%d,%d]: traced %d rows, untraced %d",
				i, w.Lo, w.Hi, len(got.Rows), len(want.Rows))
		}
		for j := range want.Rows {
			if got.Rows[j].Key() != want.Rows[j].Key() {
				t.Fatalf("query %d window [%d,%d] row %d: traced %s, untraced %s",
					i, w.Lo, w.Hi, j, got.Rows[j].Key(), want.Rows[j].Key())
			}
		}
		if got.HitSegments != want.HitSegments || len(got.DeltaWindows) != len(want.DeltaWindows) {
			t.Fatalf("query %d: traced provenance (%d segments, %d deltas) != untraced (%d, %d)",
				i, got.HitSegments, len(got.DeltaWindows), want.HitSegments, len(want.DeltaWindows))
		}
		if len(got.DeltaWindows) > 0 {
			sawDelta = true
			if got.Engine == nil {
				t.Fatalf("query %d ran %d delta joins but Answer.Engine is nil", i, len(got.DeltaWindows))
			}
			if got.Engine.OutputRecords != got.DeltaRows {
				t.Fatalf("query %d: engine bridge reports %d output records, answer has %d delta rows",
					i, got.Engine.OutputRecords, got.DeltaRows)
			}
			if snap := tr.Snapshot(); len(snap.Spans) == 0 {
				t.Fatalf("query %d ran delta joins under a tracer but recorded no spans", i)
			}
		} else {
			sawFullHit = true
			if got.Engine != nil {
				t.Fatalf("query %d was a full hit but carries engine metrics", i)
			}
		}
	}
	// Anti-vacuity: the mix must have exercised both paths.
	if !sawDelta || !sawFullHit {
		t.Fatalf("window mix exercised delta=%v fullHit=%v; want both", sawDelta, sawFullHit)
	}
}
