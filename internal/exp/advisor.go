package exp

import (
	"fmt"

	"intervaljoin/internal/core"
	"intervaljoin/internal/cost"
	"intervaljoin/internal/query"
	"intervaljoin/internal/relation"
	"intervaljoin/internal/workload"
)

// AdvisorValidation compares the cost model's predicted pair volumes with
// measured ones for every applicable algorithm on the Table 1 workload —
// the calibration check for the Zhang-style model the paper plans to
// integrate (Section 7.2).
func AdvisorValidation(cfg Config) (*Table, error) {
	cfg = cfg.withDefaults()
	q := query.MustParse("R1 overlaps R2 and R2 overlaps R3")
	n := cfg.scaled(1_000_000)
	rels := make([]*relation.Relation, 3)
	stats := make([]cost.RelStats, 3)
	for i := range rels {
		r, err := workload.Generate(workload.Table1Spec(fmt.Sprintf("R%d", i+1), n, cfg.Seed+int64(i)))
		if err != nil {
			return nil, err
		}
		rels[i] = r
		stats[i] = cost.Analyze(r, 0)
	}
	const k = 16
	t := &Table{
		ID:      "advisor",
		Title:   "cost model vs measurement on Q1 (16 reducers)",
		Columns: []string{"algorithm", "est_pairs", "meas_pairs", "ratio", "est_max_load", "meas_max_load"},
		Notes: []string{
			"expected shape: every ratio within [0.5, 2]; the advisor's ranking matches the measured ranking",
		},
	}
	type contender struct {
		alg core.Algorithm
		est cost.Estimate
	}
	contenders := []contender{
		{core.RCCIS{}, cost.EstimateRCCIS(stats, k, 1)},
		{core.AllRep{}, cost.EstimateAllRep(stats, k)},
		{core.Cascade{}, cost.EstimateCascade(stats, q, k)},
	}
	opts := core.Options{Partitions: k}
	for _, c := range contenders {
		run, err := execute(cfg, c.alg, q, rels, opts)
		if err != nil {
			return nil, err
		}
		ratio := c.est.Pairs / float64(run.Pairs)
		t.AddRow(
			c.alg.Name(),
			fmt.Sprintf("%.0f", c.est.Pairs),
			fmtCount(run.Pairs),
			fmt.Sprintf("%.2f", ratio),
			fmt.Sprintf("%.0f", c.est.MaxReducerLoad),
			fmtCount(run.Result.Metrics.MaxReducerPairs()),
		)
	}
	return t, nil
}
