package exp

import (
	"fmt"

	"intervaljoin/internal/core"
	"intervaljoin/internal/query"
	"intervaljoin/internal/relation"
	"intervaljoin/internal/workload"
)

// Table1Params reproduces the parameter sweep Section 6.2 mentions without
// printing ("we also carried out experiments varying other parameters like
// distribution of start-point of intervals (dS), max interval length
// (i_max) etc and we observed similar results"): Q1 at a fixed size with
// dS ∈ {uniform, normal, zipf, exponential} and i_max ∈ {50, 100, 400},
// comparing RCCIS against All-Replicate on every combination.
func Table1Params(cfg Config) (*Table, error) {
	cfg = cfg.withDefaults()
	q := query.MustParse("R1 overlaps R2 and R2 overlaps R3")
	// The sweep runs 24 joins including zipf's combinatorial hot cluster,
	// so it uses a smaller instance than Table 1 proper, capped outright.
	n := cfg.scaled(250_000)
	if n > 2_000 {
		n = 2_000
	}
	t := &Table{
		ID:    "table1-params",
		Title: "Q1 parameter sweep: start distribution x max interval length (16 reducers)",
		Columns: []string{
			"dS", "i_max", "rccis_ms", "allrep_ms", "repl_rccis", "repl_allrep",
			"pairs_rccis", "pairs_allrep", "imb_rccis", "imb_allrep",
		},
		Notes: []string{
			"expected shape: rccis beats all-rep on pairs and replication for every distribution and length;",
			"longer intervals cross more boundaries, so rccis replication grows with i_max but stays far below all-rep's",
		},
	}
	t.Notes = append(t.Notes,
		"zipf rows use shorter intervals (5/10/25): the distribution's hot cluster makes the join output combinatorial in interval length")
	opts := core.Options{Partitions: 16}
	dists := []workload.Distribution{workload.Uniform, workload.Normal, workload.Zipf, workload.Exponential}
	for di, dist := range dists {
		lengths := []int64{50, 100, 400}
		if dist == workload.Zipf {
			lengths = []int64{5, 10, 25}
		}
		for li, maxLen := range lengths {
			rels := make([]*relation.Relation, 3)
			for i := range rels {
				r, err := workload.Generate(workload.Spec{
					Name: fmt.Sprintf("R%d", i+1), NumIntervals: n,
					StartDist: dist, LengthDist: workload.Uniform,
					TMin: 0, TMax: 100_000, IMin: 1, IMax: maxLen,
					Seed: cfg.Seed + int64(di*100+li*10+i),
				})
				if err != nil {
					return nil, err
				}
				rels[i] = r
			}
			rccis, err := execute(cfg, core.RCCIS{}, q, rels, opts)
			if err != nil {
				return nil, err
			}
			allrep, err := execute(cfg, core.AllRep{}, q, rels, opts)
			if err != nil {
				return nil, err
			}
			t.AddRow(
				dist.String(),
				fmt.Sprintf("%d", maxLen),
				fmt.Sprintf("%d", rccis.WallMs),
				fmt.Sprintf("%d", allrep.WallMs),
				fmtCount(rccis.Replicated),
				fmtCount(allrep.Replicated),
				fmtCount(rccis.Pairs),
				fmtCount(allrep.Pairs),
				fmt.Sprintf("%.1f", rccis.Imbalance),
				fmt.Sprintf("%.1f", allrep.Imbalance),
			)
		}
	}
	return t, nil
}
