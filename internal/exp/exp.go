// Package exp contains one runner per table and figure of the paper's
// evaluation. Each runner generates the experiment's workload (scaled by a
// configurable factor so it fits a single machine), executes the compared
// algorithms on the MapReduce engine, and returns a Table whose rows mirror
// the paper's: who wins, by what factor, and where the crossovers fall.
//
// Times are reported as local wall-clock milliseconds and as the simulated
// cluster makespan (the slowest reduce task per cycle, modelling one reduce
// node per key as on the paper's 16-core Hadoop cluster), alongside the
// communication metrics (intermediate key-value pairs, replicated
// intervals) that drive them.
package exp

import (
	"encoding/json"
	"fmt"
	"io"
	"strings"
	"time"

	"intervaljoin/internal/cluster"
	"intervaljoin/internal/core"
	"intervaljoin/internal/dfs"
	"intervaljoin/internal/mr"
	"intervaljoin/internal/obs"
	"intervaljoin/internal/query"
	"intervaljoin/internal/relation"
)

// Config scales and seeds an experiment.
type Config struct {
	// Scale multiplies the paper's dataset sizes (1.0 = full size). The
	// default 0.002 keeps every experiment in seconds on a laptop while
	// preserving the relative shapes.
	Scale float64
	// Seed makes workloads deterministic.
	Seed int64
	// Workers bounds engine parallelism; 0 means GOMAXPROCS.
	Workers int
	// Verify additionally runs the reference oracle and fails the
	// experiment if any algorithm's output differs. Expensive; intended
	// for tests.
	Verify bool
	// Adaptive enables skew-aware execution for every run: histogram-
	// driven partition boundaries plus virtual splitting of hot partitions
	// (core.Options.Adaptive).
	Adaptive bool
	// Materialize runs multi-cycle algorithms with every cycle boundary
	// written to the store (sequential RunChain) instead of the default
	// pipelined executor — for measuring what the pipelining buys.
	Materialize bool
	// Tracer, when non-nil, records execution spans for every engine the
	// experiments construct — one shared timeline across all runs, so a
	// whole experiment can be inspected in Perfetto. Nil disables tracing.
	Tracer *obs.Tracer
}

func (c Config) withDefaults() Config {
	if c.Scale <= 0 {
		c.Scale = 0.002
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	return c
}

// scaled returns n scaled, at least 1.
func (c Config) scaled(n int) int {
	v := int(float64(n) * c.Scale)
	if v < 1 {
		v = 1
	}
	return v
}

// Table is a rendered experiment result.
type Table struct {
	// ID is the paper artefact id ("table1", "figure5a", ...).
	ID string
	// Title describes the experiment.
	Title string
	// Columns are the header names.
	Columns []string
	// Rows are the data rows, parallel to Columns.
	Rows [][]string
	// Notes carry the expected shape and any caveats.
	Notes []string
}

// AddRow appends a row.
func (t *Table) AddRow(cells ...string) { t.Rows = append(t.Rows, cells) }

// RowMaps returns the rows as column-name -> cell maps, the structure the
// JSON output serialises.
func (t *Table) RowMaps() []map[string]string {
	out := make([]map[string]string, len(t.Rows))
	for i, row := range t.Rows {
		m := make(map[string]string, len(t.Columns))
		for j, c := range t.Columns {
			if j < len(row) {
				m[c] = row[j]
			}
		}
		out[i] = m
	}
	return out
}

// JSON renders the table as indented JSON with named row fields.
func (t *Table) JSON() ([]byte, error) {
	return json.MarshalIndent(struct {
		ID    string              `json:"id"`
		Title string              `json:"title"`
		Rows  []map[string]string `json:"rows"`
		Notes []string            `json:"notes,omitempty"`
	}{t.ID, t.Title, t.RowMaps(), t.Notes}, "", "  ")
}

// Render writes the table as aligned text.
func (t *Table) Render(w io.Writer) {
	fmt.Fprintf(w, "== %s: %s ==\n", t.ID, t.Title)
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	line := func(cells []string) {
		parts := make([]string, len(cells))
		for i, c := range cells {
			parts[i] = fmt.Sprintf("%-*s", widths[i], c)
		}
		fmt.Fprintln(w, strings.TrimRight(strings.Join(parts, "  "), " "))
	}
	line(t.Columns)
	sep := make([]string, len(t.Columns))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, row := range t.Rows {
		line(row)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(w, "note: %s\n", n)
	}
	fmt.Fprintln(w)
}

// Run is one algorithm execution's cost profile.
type Run struct {
	Algorithm  string
	WallMs     int64
	MakespanMs float64
	Pairs      int64
	// PhysPairs / ReplFactor profile the range-coalesced shuffle: the
	// records it actually stored versus the logical Pairs, and their ratio.
	PhysPairs  int64
	ReplFactor float64
	Replicated int64
	OutputRows int64
	Imbalance  float64
	Cycles     int
	// ClusterEst is the modelled wall time on the paper's 2014 cluster
	// (internal/cluster), rendered hh:mm in the tables.
	ClusterEst time.Duration
	Result     *core.Result
}

// execute runs one algorithm on a fresh in-memory engine and profiles it.
func execute(cfg Config, alg core.Algorithm, q *query.Query, rels []*relation.Relation, opts core.Options) (Run, error) {
	engine := mr.NewEngine(mr.Config{Store: dfs.NewMem(), Workers: cfg.Workers, Tracer: cfg.Tracer})
	opts.Materialize = cfg.Materialize
	opts.Adaptive = cfg.Adaptive
	ctx, err := core.NewContext(engine, q, rels, opts)
	if err != nil {
		return Run{}, err
	}
	start := time.Now()
	res, err := alg.Run(ctx)
	if err != nil {
		return Run{}, fmt.Errorf("exp: %s: %w", alg.Name(), err)
	}
	wall := time.Since(start)
	if cfg.Verify {
		refCtx, err := core.NewContext(engine, q, rels, opts)
		if err != nil {
			return Run{}, err
		}
		want, err := (core.Reference{}).Run(refCtx)
		if err != nil {
			return Run{}, err
		}
		if err := sameOutput(res, want); err != nil {
			return Run{}, fmt.Errorf("exp: %s: %w", alg.Name(), err)
		}
	}
	est, err := cluster.Estimate(cluster.Paper2014(), scaleMetrics(res.Metrics, 1/cfg.Scale))
	if err != nil {
		return Run{}, err
	}
	return Run{
		Algorithm:  alg.Name(),
		WallMs:     wall.Milliseconds(),
		MakespanMs: float64(res.Metrics.SimulatedMakespan().Microseconds()) / 1000,
		Pairs:      res.Metrics.IntermediatePairs,
		PhysPairs:  res.Metrics.PhysicalPairs,
		ReplFactor: res.Metrics.ReplicationFactor(),
		Replicated: res.ReplicatedIntervals,
		OutputRows: int64(len(res.Tuples)),
		Imbalance:  res.Metrics.LoadImbalance(),
		Cycles:     res.Metrics.Cycles,
		ClusterEst: est,
		Result:     res,
	}, nil
}

// scaleMetrics linearly extrapolates a scaled-down run's communication
// metrics back to full size, so the cluster-time model speaks in the
// paper's magnitudes. Communication volumes scale linearly with data size
// under the experiments' uniform workloads; join output (not modelled) can
// scale faster, so the estimates are lower bounds at full scale.
func scaleMetrics(m *mr.Metrics, f float64) *mr.Metrics {
	out := mr.NewMetrics(m.Job + "-scaled")
	out.Cycles = m.Cycles
	out.MapInputRecords = int64(float64(m.MapInputRecords) * f)
	out.IntermediatePairs = int64(float64(m.IntermediatePairs) * f)
	for k, v := range m.ReducerPairs {
		out.ReducerPairs[k] = int64(float64(v) * f)
	}
	return out
}

func sameOutput(got, want *core.Result) error {
	g, w := got.TupleSet(), want.TupleSet()
	if len(got.Tuples) != len(g) {
		return fmt.Errorf("emitted %d tuples, %d distinct (duplicates)", len(got.Tuples), len(g))
	}
	if len(g) != len(w) {
		return fmt.Errorf("output has %d tuples, oracle %d", len(g), len(w))
	}
	for k := range w {
		if _, ok := g[k]; !ok {
			return fmt.Errorf("missing output tuple %s", k)
		}
	}
	return nil
}

// fmtCount renders large counts compactly (12.3K, 4.5M).
func fmtCount(n int64) string {
	switch {
	case n >= 10_000_000:
		return fmt.Sprintf("%.1fM", float64(n)/1e6)
	case n >= 10_000:
		return fmt.Sprintf("%.1fK", float64(n)/1e3)
	}
	return fmt.Sprintf("%d", n)
}

// Experiment is a named runner.
type Experiment struct {
	ID    string
	Title string
	Run   func(cfg Config) (*Table, error)
}

// All lists every experiment in paper order.
func All() []Experiment {
	return []Experiment{
		{"table1", "Q1 colocation join, varying data size (Section 6.2)", Table1},
		{"table1-params", "Q1 sweep over start distributions and max lengths (Section 6.2, unprinted)", Table1Params},
		{"table2", "star overlap self-join on packet-train traces (Section 6.2)", Table2},
		{"figure4", "load balance: All-Rep vs All-Matrix on a 2-way before join (Section 7)", Figure4},
		{"figure5a", "Q2 sequence join on synthetic data (Section 7.1)", Figure5a},
		{"figure5b", "Q2 sequence join on trace P04 samples (Section 7.1)", Figure5b},
		{"table3", "Q4 hybrid join, varying R3 max length (Section 8.2)", Table3},
		{"table4", "Q5 Gen-Matrix, varying relation sizes (Section 9.1)", Table4},
		{"ablation-d1d2", "All-Matrix without D1/D2 routing conditions (DESIGN §6)", AblationD1D2},
		{"ablation-partitions", "All-Matrix partitions-per-dimension sweep (DESIGN §6)", AblationPartitions},
		{"ablation-pruning", "PASM under zero-pruning adversarial workload (DESIGN §6)", AblationPruning},
		{"ablation-skew", "equi-depth vs uniform partitioning on zipf-skewed data (DESIGN §6)", AblationSkew},
		{"ablation-range-shuffle", "range-coalesced shuffle: logical vs physical volume per algorithm", AblationRangeShuffle},
		{"querymix", "semantic segment cache on zipfian query mixes (ijoind, DESIGN §cache)", QueryMix},
		{"advisor", "cost model predictions vs measurements (Section 7.2 future work)", AdvisorValidation},
	}
}

// ByID returns the named experiment.
func ByID(id string) (Experiment, error) {
	for _, e := range All() {
		if e.ID == id {
			return e, nil
		}
	}
	return Experiment{}, fmt.Errorf("exp: unknown experiment %q", id)
}
