package exp

import (
	"bytes"
	"encoding/json"
	"strconv"
	"strings"
	"testing"

	"intervaljoin/internal/core"
	"intervaljoin/internal/query"
	"intervaljoin/internal/relation"
	"intervaljoin/internal/workload"
)

// tiny is the configuration used by the experiment smoke tests: very small,
// deterministic, and oracle-verified.
var tiny = Config{Scale: 0.0005, Seed: 3, Workers: 4, Verify: true}

func cell(t *Table, row int, col string) string {
	for i, c := range t.Columns {
		if c == col {
			return t.Rows[row][i]
		}
	}
	return ""
}

func cellFloat(t *testing.T, tab *Table, row int, col string) float64 {
	t.Helper()
	s := cell(tab, row, col)
	s = strings.TrimSuffix(s, "K")
	s = strings.TrimSuffix(s, "M")
	v, err := strconv.ParseFloat(s, 64)
	if err != nil {
		t.Fatalf("cell %s[%d] = %q not numeric", col, row, cell(tab, row, col))
	}
	raw := cell(tab, row, col)
	switch {
	case strings.HasSuffix(raw, "K"):
		v *= 1e3
	case strings.HasSuffix(raw, "M"):
		v *= 1e6
	}
	return v
}

func TestTable1Shape(t *testing.T) {
	tab, err := Table1(tiny)
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 4 {
		t.Fatalf("rows = %d, want 4", len(tab.Rows))
	}
	for r := range tab.Rows {
		replRCCIS := cellFloat(t, tab, r, "repl_rccis")
		replAllRep := cellFloat(t, tab, r, "repl_allrep")
		if replRCCIS >= replAllRep {
			t.Errorf("row %d: RCCIS replicated %v >= All-Rep %v", r, replRCCIS, replAllRep)
		}
		pairsRCCIS := cellFloat(t, tab, r, "pairs_rccis")
		pairsAllRep := cellFloat(t, tab, r, "pairs_allrep")
		if pairsRCCIS >= pairsAllRep {
			t.Errorf("row %d: RCCIS pairs %v >= All-Rep pairs %v", r, pairsRCCIS, pairsAllRep)
		}
	}
	// Sizes rise monotonically.
	if cellFloat(t, tab, 0, "nI") >= cellFloat(t, tab, 3, "nI") {
		t.Error("size ladder not rising")
	}
}

func TestTable1ParamsShape(t *testing.T) {
	tab, err := Table1Params(tiny)
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 12 {
		t.Fatalf("rows = %d, want 4 distributions x 3 lengths", len(tab.Rows))
	}
	for r := range tab.Rows {
		if cellFloat(t, tab, r, "repl_rccis") >= cellFloat(t, tab, r, "repl_allrep") {
			t.Errorf("row %d (%s, i_max=%s): RCCIS replication not below All-Rep",
				r, cell(tab, r, "dS"), cell(tab, r, "i_max"))
		}
		if cellFloat(t, tab, r, "pairs_rccis") >= cellFloat(t, tab, r, "pairs_allrep") {
			t.Errorf("row %d: RCCIS pairs not below All-Rep", r)
		}
	}
	// Replication grows with interval length within each distribution.
	for d := 0; d < 4; d++ {
		short := cellFloat(t, tab, d*3, "repl_rccis")
		long := cellFloat(t, tab, d*3+2, "repl_rccis")
		if long < short {
			t.Errorf("distribution %s: longer intervals replicated less (%v vs %v)",
				cell(tab, d*3, "dS"), long, short)
		}
	}
}

func TestTable2Shape(t *testing.T) {
	cfg := tiny
	cfg.Scale = 0.0004 // enough packets to form trains, small enough to verify
	tab, err := Table2(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 6 {
		t.Fatalf("rows = %d, want 6 traces", len(tab.Rows))
	}
	for r := range tab.Rows {
		if cellFloat(t, tab, r, "pairs_rccis") >= cellFloat(t, tab, r, "pairs_cascade") {
			t.Errorf("trace %s: RCCIS pairs not below cascade", cell(tab, r, "trace"))
		}
	}
	if cell(tab, 0, "trace") != "P03" || cell(tab, 5, "trace") != "P08" {
		t.Error("trace order wrong")
	}
}

func TestFigure4Shape(t *testing.T) {
	tab, err := Figure4(tiny)
	if err != nil {
		t.Fatal(err)
	}
	// 6 all-rep rows + 6 all-matrix rows.
	if len(tab.Rows) != 12 {
		t.Fatalf("rows = %d, want 12", len(tab.Rows))
	}
	// All-Rep load rises towards the right-most reducer; the last reducer
	// holds the maximum.
	var allrep []float64
	var matrix []float64
	for r := range tab.Rows {
		v := cellFloat(t, tab, r, "pairs_received")
		if cell(tab, r, "algorithm") == "all-rep" {
			allrep = append(allrep, v)
		} else {
			matrix = append(matrix, v)
		}
	}
	maxAt := 0
	for i, v := range allrep {
		if v > allrep[maxAt] {
			maxAt = i
		}
	}
	if maxAt != len(allrep)-1 {
		t.Errorf("all-rep maximum at reducer %d, want the right-most", maxAt)
	}
	spread := func(v []float64) float64 {
		min, max := v[0], v[0]
		for _, x := range v {
			if x < min {
				min = x
			}
			if x > max {
				max = x
			}
		}
		if min == 0 {
			min = 1
		}
		return max / min
	}
	if spread(matrix) >= spread(allrep) {
		t.Errorf("all-matrix spread %.2f not tighter than all-rep %.2f", spread(matrix), spread(allrep))
	}
}

func TestFigure5aShape(t *testing.T) {
	cfg := tiny
	cfg.Scale = 0.002 // imbalance needs enough tuples per reducer to show
	tab, err := Figure5a(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 4 {
		t.Fatalf("rows = %d, want 4", len(tab.Rows))
	}
	// The largest step carries the signal; small steps are noisy.
	last := len(tab.Rows) - 1
	if cellFloat(t, tab, last, "imb_matrix") >= cellFloat(t, tab, last, "imb_allrep") {
		t.Errorf("all-matrix imbalance %s not below all-rep %s",
			cell(tab, last, "imb_matrix"), cell(tab, last, "imb_allrep"))
	}
	for r := range tab.Rows {
		if cellFloat(t, tab, r, "pairs_matrix") >= cellFloat(t, tab, r, "pairs_allrep") {
			t.Errorf("row %d: all-matrix pairs not below all-rep", r)
		}
	}
}

func TestFigure5bShape(t *testing.T) {
	cfg := tiny
	cfg.Scale = 0.0008
	tab, err := Figure5b(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 6 {
		t.Fatalf("rows = %d, want 6 sample steps", len(tab.Rows))
	}
	if cellFloat(t, tab, 0, "trains") > cellFloat(t, tab, 5, "trains") {
		t.Error("sample ladder not rising")
	}
}

func TestTable3Shape(t *testing.T) {
	cfg := tiny
	cfg.Scale = 0.002 // needs enough R3 intervals to measure pruning
	tab, err := Table3(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 5 {
		t.Fatalf("rows = %d, want 5", len(tab.Rows))
	}
	// Pruned percentage rises as max length falls (monotone within noise:
	// compare the ends).
	first := cellFloat(t, tab, 0, "pct_R1_pruned")
	last := cellFloat(t, tab, len(tab.Rows)-1, "pct_R1_pruned")
	if last <= first {
		t.Errorf("pruned%% did not rise: maxlen=1000 -> %.1f%%, maxlen=200 -> %.1f%%", first, last)
	}
	if last < 30 {
		t.Errorf("short-R3 pruning only %.1f%%, expected a large fraction", last)
	}
}

func TestTable4Shape(t *testing.T) {
	tab, err := Table4(tiny)
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 5 {
		t.Fatalf("rows = %d, want 5", len(tab.Rows))
	}
	found := false
	for _, n := range tab.Notes {
		if strings.Contains(n, "375 of 625") && strings.Contains(n, "consistent reducers: 375") {
			found = true
		}
	}
	if !found {
		t.Errorf("consistent-cell note missing or wrong: %v", tab.Notes)
	}
	for r := range tab.Rows {
		if cell(tab, r, "cycles") != "3" {
			t.Errorf("row %d: gen-matrix cycles = %s, want 3", r, cell(tab, r, "cycles"))
		}
	}
}

func TestAblationD1D2Shape(t *testing.T) {
	tab, err := AblationD1D2(tiny)
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 3 {
		t.Fatalf("rows = %d, want 3", len(tab.Rows))
	}
	full := cellFloat(t, tab, 0, "pairs")
	noD1 := cellFloat(t, tab, 1, "pairs")
	noD2 := cellFloat(t, tab, 2, "pairs")
	if !(full < noD1 && full < noD2) {
		t.Errorf("routing conditions not saving pairs: full=%v noD1=%v noD2=%v", full, noD1, noD2)
	}
	// Identical outputs across variants.
	out := cell(tab, 0, "output")
	if cell(tab, 1, "output") != out || cell(tab, 2, "output") != out {
		t.Error("ablation variants disagree on output size")
	}
}

func TestAblationPartitionsShape(t *testing.T) {
	tab, err := AblationPartitions(tiny)
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 5 {
		t.Fatalf("rows = %d, want 5", len(tab.Rows))
	}
	// Fan-out rises with o.
	if cellFloat(t, tab, 0, "pairs") >= cellFloat(t, tab, len(tab.Rows)-1, "pairs") {
		t.Error("pairs did not rise with o")
	}
}

func TestAblationPruningShape(t *testing.T) {
	tab, err := AblationPruning(tiny)
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 2 {
		t.Fatalf("rows = %d, want 2", len(tab.Rows))
	}
	if cell(tab, 1, "cycles") != "3" || cell(tab, 0, "cycles") != "2" {
		t.Errorf("cycle counts = %s/%s, want 2/3", cell(tab, 0, "cycles"), cell(tab, 1, "cycles"))
	}
	if pct := cellFloat(t, tab, 1, "pct_R1_pruned"); pct > 20 {
		t.Errorf("adversarial workload pruned %.1f%%, expected little", pct)
	}
}

func TestAblationSkewShape(t *testing.T) {
	// Zipf clustering makes the hot partition's join quadratic; keep the
	// workload small and skip the oracle (correctness under equi-depth is
	// covered by core's TestEquiDepthCorrectness).
	cfg := tiny
	cfg.Scale = 0.0002
	cfg.Verify = false
	tab, err := AblationSkew(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 2 {
		t.Fatalf("rows = %d, want 2", len(tab.Rows))
	}
	uniform := cellFloat(t, tab, 0, "imbalance")
	equi := cellFloat(t, tab, 1, "imbalance")
	if equi >= uniform {
		t.Errorf("equi-depth imbalance %.2f not below uniform %.2f", equi, uniform)
	}
	if cell(tab, 0, "output") != cell(tab, 1, "output") {
		t.Error("partitioning strategy changed the output")
	}
}

func TestAblationRangeShuffleShape(t *testing.T) {
	tab, err := AblationRangeShuffle(tiny)
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 4 {
		t.Fatalf("rows = %d, want 4", len(tab.Rows))
	}
	for r := range tab.Rows {
		logical := cellFloat(t, tab, r, "pairs")
		phys := cellFloat(t, tab, r, "phys_pairs")
		if phys > logical {
			t.Errorf("row %d (%s): physical pairs %v exceed logical %v",
				r, cell(tab, r, "algorithm"), phys, logical)
		}
	}
	// The replicate-heavy baselines (rows 0 and 1) must coalesce
	// substantially.
	for r := 0; r < 2; r++ {
		logical := cellFloat(t, tab, r, "pairs")
		phys := cellFloat(t, tab, r, "phys_pairs")
		if phys*2 > logical {
			t.Errorf("row %d (%s): physical pairs %v not under half of logical %v",
				r, cell(tab, r, "algorithm"), phys, logical)
		}
	}
}

func TestAdvisorValidationShape(t *testing.T) {
	cfg := tiny
	cfg.Scale = 0.002
	cfg.Verify = false
	tab, err := AdvisorValidation(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 3 {
		t.Fatalf("rows = %d, want 3", len(tab.Rows))
	}
	for r := range tab.Rows {
		ratio := cellFloat(t, tab, r, "ratio")
		if ratio < 0.5 || ratio > 2 {
			t.Errorf("%s: est/meas ratio %.2f outside [0.5, 2]", cell(tab, r, "algorithm"), ratio)
		}
	}
}

func TestTableJSON(t *testing.T) {
	tab := &Table{ID: "x", Title: "t", Columns: []string{"a", "bb"}}
	tab.AddRow("1", "2")
	b, err := tab.JSON()
	if err != nil {
		t.Fatal(err)
	}
	var decoded struct {
		ID   string              `json:"id"`
		Rows []map[string]string `json:"rows"`
	}
	if err := json.Unmarshal(b, &decoded); err != nil {
		t.Fatal(err)
	}
	if decoded.ID != "x" || len(decoded.Rows) != 1 || decoded.Rows[0]["bb"] != "2" {
		t.Fatalf("JSON = %s", b)
	}
	maps := tab.RowMaps()
	if maps[0]["a"] != "1" {
		t.Fatalf("RowMaps = %v", maps)
	}
}

func TestRenderAndRegistry(t *testing.T) {
	tab := &Table{ID: "x", Title: "t", Columns: []string{"a", "bb"}}
	tab.AddRow("1", "2")
	tab.Notes = append(tab.Notes, "hello")
	var buf bytes.Buffer
	tab.Render(&buf)
	out := buf.String()
	for _, want := range []string{"== x: t ==", "a", "bb", "note: hello"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q in:\n%s", want, out)
		}
	}
	if len(All()) != 15 {
		t.Fatalf("experiments = %d, want 15", len(All()))
	}
	if _, err := ByID("table1"); err != nil {
		t.Fatal(err)
	}
	if _, err := ByID("table9"); err == nil {
		t.Fatal("unknown experiment accepted")
	}
}

func TestExecuteVerifyCatchesBadAlgorithm(t *testing.T) {
	// A deliberately broken "algorithm" (oracle truncated) must be caught
	// by Verify.
	q := query.MustParse("R1 overlaps R2")
	r, err := workload.Generate(workload.Table1Spec("R1", 50, 1))
	if err != nil {
		t.Fatal(err)
	}
	r2, err := workload.Generate(workload.Table1Spec("R2", 50, 2))
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{Scale: 1, Seed: 1, Verify: true}
	if _, err := execute(cfg, truncatingAlgorithm{}, q, []*relation.Relation{r, r2}, core.Options{Partitions: 4}); err == nil {
		t.Fatal("verify did not catch a truncated output")
	}
}

// truncatingAlgorithm drops one tuple from the oracle's output.
type truncatingAlgorithm struct{}

func (truncatingAlgorithm) Name() string { return "truncating" }

func (truncatingAlgorithm) Run(ctx *core.Context) (*core.Result, error) {
	res, err := core.Reference{}.Run(ctx)
	if err != nil {
		return nil, err
	}
	if len(res.Tuples) > 0 {
		res.Tuples = res.Tuples[1:]
	}
	return res, nil
}
