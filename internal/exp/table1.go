package exp

import (
	"fmt"

	"intervaljoin/internal/cluster"
	"intervaljoin/internal/core"
	"intervaljoin/internal/query"
	"intervaljoin/internal/relation"
	"intervaljoin/internal/workload"
)

// Table1 reproduces Table 1: query Q1 = R1 overlaps R2 and R2 overlaps R3
// over synthetic data (dS, dI uniform, range [0, 100K], lengths [1, 100]),
// all three relations the same size, size rising in four steps (the paper's
// 0.5M–1.25M scaled by Config.Scale). Compared: 2-way Cascade,
// All-Replicate and RCCIS, with the replicated-interval and key-value-pair
// counts that explain the times.
func Table1(cfg Config) (*Table, error) {
	cfg = cfg.withDefaults()
	q := query.MustParse("R1 overlaps R2 and R2 overlaps R3")
	t := &Table{
		ID:    "table1",
		Title: "Q1 varying data size (dS,dI uniform, range [0,100K], len [1,100], 16 reducers)",
		Columns: []string{
			"nI", "cascade_ms", "allrep_ms", "rccis_ms",
			"est_cascade", "est_allrep", "est_rccis",
			"repl_rccis", "repl_allrep", "pairs_cascade", "pairs_allrep", "pairs_rccis",
		},
		Notes: []string{
			"expected shape: rccis < allrep < cascade in time; rccis replicates a tiny fraction of allrep",
			"est_* columns are hh:mm on the modelled 2014 cluster, linearly extrapolated to the paper's full sizes",
			"cascade's intermediate results grow super-linearly with size, so est_cascade is a strong underestimate (the paper measures 84.6M-517M cascade pairs vs 10.5M-26.4M for all-rep)",
			fmt.Sprintf("sizes are the paper's 0.5M-1.25M scaled by %g", cfg.Scale),
		},
	}
	opts := core.Options{Partitions: 16}
	for step, paperSize := range []int{500_000, 750_000, 1_000_000, 1_250_000} {
		n := cfg.scaled(paperSize)
		rels := make([]*relation.Relation, 3)
		for i := range rels {
			name := fmt.Sprintf("R%d", i+1)
			r, err := workload.Generate(workload.Table1Spec(name, n, cfg.Seed+int64(step*3+i)))
			if err != nil {
				return nil, err
			}
			rels[i] = r
		}
		cascade, err := execute(cfg, core.Cascade{}, q, rels, opts)
		if err != nil {
			return nil, err
		}
		allrep, err := execute(cfg, core.AllRep{}, q, rels, opts)
		if err != nil {
			return nil, err
		}
		rccis, err := execute(cfg, core.RCCIS{}, q, rels, opts)
		if err != nil {
			return nil, err
		}
		t.AddRow(
			fmtCount(int64(n)),
			fmt.Sprintf("%d", cascade.WallMs),
			fmt.Sprintf("%d", allrep.WallMs),
			fmt.Sprintf("%d", rccis.WallMs),
			cluster.FormatHHMM(cascade.ClusterEst),
			cluster.FormatHHMM(allrep.ClusterEst),
			cluster.FormatHHMM(rccis.ClusterEst),
			fmtCount(rccis.Replicated),
			fmtCount(allrep.Replicated),
			fmtCount(cascade.Pairs),
			fmtCount(allrep.Pairs),
			fmtCount(rccis.Pairs),
		)
	}
	return t, nil
}
