package exp

import (
	"fmt"
	"strings"

	"intervaljoin/internal/core"
	"intervaljoin/internal/query"
	"intervaljoin/internal/relation"
	"intervaljoin/internal/stats"
	"intervaljoin/internal/workload"
)

// Figure4 reproduces the load-balancing illustration of Section 7: the
// 2-way sequence query R1 before R2 run with All-Replicate (one-dimensional
// partitioning; the right-most reducers drown) and with All-Matrix (2-D
// consistent-cell grid; load spreads evenly). The table reports each
// reducer's received pair count plus the straggler statistics.
func Figure4(cfg Config) (*Table, error) {
	cfg = cfg.withDefaults()
	q := query.MustParse("R1 before R2")
	n := cfg.scaled(200_000)
	rels := make([]*relation.Relation, 2)
	for i := range rels {
		r, err := workload.Generate(workload.Spec{
			Name: fmt.Sprintf("R%d", i+1), NumIntervals: n,
			StartDist: workload.Uniform, LengthDist: workload.Uniform,
			TMin: 0, TMax: 10_000, IMin: 1, IMax: 100,
			Seed: cfg.Seed + int64(i),
		})
		if err != nil {
			return nil, err
		}
		rels[i] = r
	}
	// 6 one-dimensional reducers for All-Rep vs a 3x3 grid (6 consistent
	// cells) for All-Matrix — the figure's configuration.
	allrep, err := execute(cfg, core.AllRep{}, q, rels, core.Options{Partitions: 6})
	if err != nil {
		return nil, err
	}
	matrix, err := execute(cfg, core.AllMatrix{}, q, rels, core.Options{PartitionsPerDim: 3})
	if err != nil {
		return nil, err
	}

	t := &Table{
		ID:      "figure4",
		Title:   "per-reducer load: All-Rep (6 reducers) vs All-Matrix (3x3 grid, 6 consistent cells)",
		Columns: []string{"algorithm", "reducer", "pairs_received"},
		Notes: []string{
			"expected shape: All-Rep load rises monotonically to the right-most reducer; All-Matrix is near-uniform",
		},
	}
	for _, run := range []Run{allrep, matrix} {
		loads := run.Result.Metrics.ReducerLoadVector()
		for i, v := range loads {
			t.AddRow(run.Algorithm, fmt.Sprintf("%d", i), fmtCount(v))
		}
		s := stats.Summarize(loads)
		t.Notes = append(t.Notes, fmt.Sprintf("%s: %s (wall %dms)", run.Algorithm, s, run.WallMs))
		// Render the figure itself as a text histogram (one bar per
		// reducer), matching the paper's visual.
		for _, line := range strings.Split(strings.TrimRight(stats.Histogram(loads, 40), "\n"), "\n") {
			t.Notes = append(t.Notes, run.Algorithm+" "+line)
		}
	}
	return t, nil
}
