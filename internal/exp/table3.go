package exp

import (
	"fmt"

	"intervaljoin/internal/core"
	"intervaljoin/internal/query"
	"intervaljoin/internal/relation"
	"intervaljoin/internal/workload"
)

// Table3 reproduces Table 3: the hybrid query Q4 = R1 before R2 and R1
// overlaps R3, with relation sizes fixed at the paper's (5M, 100K, 1K)
// scaled ratios, range [0, 200K], and R3's maximum interval length stepping
// 1000 → 200. Short R3 intervals overlap fewer R1 intervals, so PASM prunes
// more of R1 and pulls further ahead of plain All-Seq-Matrix; FCTS pays for
// its materialised intermediates throughout.
func Table3(cfg Config) (*Table, error) {
	cfg = cfg.withDefaults()
	q := query.MustParse("R1 before R2 and R1 overlaps R3")
	t := &Table{
		ID:    "table3",
		Title: "Q4 hybrid join, nI=(5M,100K,1K) scaled, varying R3 max interval length",
		Columns: []string{
			"max_len", "fcts_ms", "asm_ms", "pasm_ms", "pct_R1_pruned",
			"pairs_fcts", "pairs_asm", "pairs_pasm",
		},
		Notes: []string{
			"expected shape: pruned fraction rises as max_len falls and pasm's shuffled pairs drop below asm's;",
			"at cluster scale the pair saving dominates wall time (paper rows), at local scale the extra cycle's overhead partly offsets it",
			fmt.Sprintf("sizes scaled by %g from the paper's (5M, 100K, 1K)", cfg.Scale),
		},
	}
	n1 := cfg.scaled(5_000_000)
	n2 := cfg.scaled(100_000)
	// R3's pruning power is its coverage of the time range (n3 x mean
	// length / range). Scaling n3 down with the other relations would wipe
	// out the maxLen gradient the experiment studies, so R3 keeps the
	// paper's absolute cardinality.
	n3 := 1_000
	t.Notes = append(t.Notes, "R3 keeps the paper's absolute 1K intervals so its range coverage (and thus the pruning gradient) is scale-independent")
	opts := core.Options{PartitionsPerDim: 6}
	for step, maxLen := range []int64{1000, 800, 600, 400, 200} {
		seed := cfg.Seed + int64(step)*7
		r1, err := workload.Generate(workload.Table3Spec("R1", n1, 1000, seed))
		if err != nil {
			return nil, err
		}
		r2, err := workload.Generate(workload.Table3Spec("R2", n2, 1000, seed+1))
		if err != nil {
			return nil, err
		}
		r3, err := workload.Generate(workload.Table3Spec("R3", n3, maxLen, seed+2))
		if err != nil {
			return nil, err
		}
		rels := []*relation.Relation{r1, r2, r3}
		fcts, err := execute(cfg, core.FCTS{}, q, rels, opts)
		if err != nil {
			return nil, err
		}
		asm, err := execute(cfg, core.SeqMatrix{}, q, rels, opts)
		if err != nil {
			return nil, err
		}
		pasm, err := execute(cfg, core.PASM{}, q, rels, opts)
		if err != nil {
			return nil, err
		}
		pct := 100 * float64(pasm.Result.PrunedIntervals[0]) / float64(n1)
		t.AddRow(
			fmt.Sprintf("%d", maxLen),
			fmt.Sprintf("%d", fcts.WallMs),
			fmt.Sprintf("%d", asm.WallMs),
			fmt.Sprintf("%d", pasm.WallMs),
			fmt.Sprintf("%.1f", pct),
			fmtCount(fcts.Pairs),
			fmtCount(asm.Pairs),
			fmtCount(pasm.Pairs),
		)
	}
	return t, nil
}
