package exp

import (
	"fmt"
	"math/rand"

	"intervaljoin/internal/core"
	"intervaljoin/internal/query"
	"intervaljoin/internal/relation"
	"intervaljoin/internal/trace"
	"intervaljoin/internal/workload"
)

// figure5Algorithms runs the three contenders of Figure 5 with the paper's
// partitioning choices: All-Matrix on a 6x6x6 grid (56 consistent cells),
// 2-way Cascade whose sequence steps use 11x11 2-D matrices (66 consistent
// cells per step), and All-Replicate on 64 one-dimensional reducers — the
// counts chosen so every approach has a comparable number of active
// reducers.
func figure5Algorithms(cfg Config, q *query.Query, rels []*relation.Relation) (matrix, cascade, allrep Run, err error) {
	matrix, err = execute(cfg, core.AllMatrix{}, q, rels, core.Options{PartitionsPerDim: 6})
	if err != nil {
		return
	}
	cascade, err = execute(cfg, core.Cascade{MatrixSteps: true}, q, rels, core.Options{Partitions: 16, PartitionsPerDim: 11})
	if err != nil {
		return
	}
	allrep, err = execute(cfg, core.AllRep{}, q, rels, core.Options{Partitions: 64})
	return
}

// Figure5a reproduces Figure 5(a): the 3-way sequence query Q2 = R1 before
// R2 and R2 before R3 on synthetic data (range [0,1000], max length 100,
// uniform), relation size rising in steps.
func Figure5a(cfg Config) (*Table, error) {
	cfg = cfg.withDefaults()
	q := query.MustParse("R1 before R2 and R2 before R3")
	t := &Table{
		ID:    "figure5a",
		Title: "Q2 sequence join on synthetic data (range [0,1000], max len 100)",
		Columns: []string{
			"nI", "allmatrix_ms", "cascade_ms", "allrep_ms",
			"imb_matrix", "imb_allrep", "pairs_matrix", "pairs_allrep",
		},
		Notes: []string{
			"expected shape: all-matrix fastest; all-rep dominated by its lagging right-most reducers (high imbalance)",
			"sizes: a sequence join's output is cubic in nI, so the local ladder is 30K-75K (the paper's cluster used 100K-400K)",
		},
	}
	for step, paperSize := range []int{30_000, 45_000, 60_000, 75_000} {
		n := cfg.scaled(paperSize)
		rels := make([]*relation.Relation, 3)
		for i := range rels {
			r, err := workload.Generate(workload.Figure5Spec(fmt.Sprintf("R%d", i+1), n, cfg.Seed+int64(step*3+i)))
			if err != nil {
				return nil, err
			}
			rels[i] = r
		}
		matrix, cascade, allrep, err := figure5Algorithms(cfg, q, rels)
		if err != nil {
			return nil, err
		}
		t.AddRow(
			fmtCount(int64(n)),
			fmt.Sprintf("%d", matrix.WallMs),
			fmt.Sprintf("%d", cascade.WallMs),
			fmt.Sprintf("%d", allrep.WallMs),
			fmt.Sprintf("%.1f", matrix.Imbalance),
			fmt.Sprintf("%.1f", allrep.Imbalance),
			fmtCount(matrix.Pairs),
			fmtCount(allrep.Pairs),
		)
	}
	return t, nil
}

// Figure5b reproduces Figure 5(b): Q2 over the P04 packet-train trace,
// sampling the trains in rising steps (the paper samples 18K trains in 3K
// steps).
func Figure5b(cfg Config) (*Table, error) {
	cfg = cfg.withDefaults()
	q := query.MustParse("R1 before R2 and R2 before R3")
	profile, err := trace.ProfileByName("P04")
	if err != nil {
		return nil, err
	}
	// Synthesise the full (scaled) P04 and sample in six steps like the
	// paper.
	packets, err := trace.Synthesize(profile, clampScale(cfg.Scale*5), cfg.Seed)
	if err != nil {
		return nil, err
	}
	trains := trace.BuildTrains(packets, trace.DefaultCutoffMs)
	// The paper samples trains randomly in steps; shuffle once so each
	// step's prefix is a uniform sample.
	rng := rand.New(rand.NewSource(cfg.Seed + 99))
	rng.Shuffle(len(trains), func(i, j int) { trains[i], trains[j] = trains[j], trains[i] })
	t := &Table{
		ID:      "figure5b",
		Title:   "Q2 sequence join on simulated trace P04, sampled in steps",
		Columns: []string{"trains", "allmatrix_ms", "cascade_ms", "allrep_ms", "imb_matrix", "imb_allrep"},
		Notes: []string{
			"expected shape: same ordering as figure5a on real-shaped (bursty) interval data",
			fmt.Sprintf("full simulated P04 train count at this scale: %d", len(trains)),
		},
	}
	for step := 1; step <= 6; step++ {
		k := len(trains) * step / 6
		if k < 3 {
			k = min(3, len(trains))
		}
		sample := trains[:k]
		rels := []*relation.Relation{
			trace.TrainsRelation("R1", sample),
			trace.TrainsRelation("R2", sample),
			trace.TrainsRelation("R3", sample),
		}
		matrix, cascade, allrep, err := figure5Algorithms(cfg, q, rels)
		if err != nil {
			return nil, err
		}
		t.AddRow(
			fmtCount(int64(k)),
			fmt.Sprintf("%d", matrix.WallMs),
			fmt.Sprintf("%d", cascade.WallMs),
			fmt.Sprintf("%d", allrep.WallMs),
			fmt.Sprintf("%.1f", matrix.Imbalance),
			fmt.Sprintf("%.1f", allrep.Imbalance),
		)
	}
	return t, nil
}

func clampScale(s float64) float64 {
	if s > 1 {
		return 1
	}
	return s
}
