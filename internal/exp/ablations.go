package exp

import (
	"fmt"

	"intervaljoin/internal/core"
	"intervaljoin/internal/query"
	"intervaljoin/internal/relation"
	"intervaljoin/internal/workload"
)

// AblationD1D2 quantifies All-Matrix's two routing conditions on Q2: with
// D1 off, tuples are also sent to provably output-free (inconsistent)
// cells; with D2 off, every tuple is broadcast to every consistent cell.
// Both ablations return the same output (exactly-once is restored by the
// designated-cell filter) at a strictly higher communication cost — the
// paper's argument for the two conditions, measured.
func AblationD1D2(cfg Config) (*Table, error) {
	cfg = cfg.withDefaults()
	q := query.MustParse("R1 before R2 and R2 before R3")
	n := cfg.scaled(50_000)
	rels := make([]*relation.Relation, 3)
	for i := range rels {
		r, err := workload.Generate(workload.Figure5Spec(fmt.Sprintf("R%d", i+1), n, cfg.Seed+int64(i)))
		if err != nil {
			return nil, err
		}
		rels[i] = r
	}
	t := &Table{
		ID:      "ablation-d1d2",
		Title:   "All-Matrix routing conditions on Q2 (6x6x6 grid)",
		Columns: []string{"variant", "pairs", "keys", "wall_ms", "output"},
		Notes: []string{
			"expected shape: pairs(full) < pairs(no D1) and pairs(full) << pairs(no D2); identical outputs",
		},
	}
	opts := core.Options{PartitionsPerDim: 6}
	for _, alg := range []core.Algorithm{
		core.AllMatrix{},
		core.AllMatrix{DisableConsistencyFilter: true},
		core.AllMatrix{BroadcastAllCells: true},
	} {
		run, err := execute(cfg, alg, q, rels, opts)
		if err != nil {
			return nil, err
		}
		t.AddRow(run.Algorithm, fmtCount(run.Pairs),
			fmt.Sprintf("%d", run.Result.Metrics.DistinctKeys),
			fmt.Sprintf("%d", run.WallMs), fmtCount(run.OutputRows))
	}
	return t, nil
}

// AblationPartitions sweeps o, the partitions per grid dimension, for
// All-Matrix on Q2. Small o under-parallelises (few consistent cells);
// large o multiplies routing fan-out (each tuple reaches more cells).
func AblationPartitions(cfg Config) (*Table, error) {
	cfg = cfg.withDefaults()
	q := query.MustParse("R1 before R2 and R2 before R3")
	n := cfg.scaled(50_000)
	rels := make([]*relation.Relation, 3)
	for i := range rels {
		r, err := workload.Generate(workload.Figure5Spec(fmt.Sprintf("R%d", i+1), n, cfg.Seed+int64(i)))
		if err != nil {
			return nil, err
		}
		rels[i] = r
	}
	t := &Table{
		ID:      "ablation-partitions",
		Title:   "All-Matrix partitions-per-dimension sweep on Q2",
		Columns: []string{"o", "consistent_cells", "pairs", "imbalance", "wall_ms"},
		Notes: []string{
			"expected shape: pairs grow ~quadratically in o (fan-out per tuple ~ o^(m-1)/2); imbalance falls as o rises",
		},
	}
	for _, o := range []int{2, 4, 6, 8, 12} {
		run, err := execute(cfg, core.AllMatrix{}, q, rels, core.Options{PartitionsPerDim: o})
		if err != nil {
			return nil, err
		}
		t.AddRow(
			fmt.Sprintf("%d", o),
			fmt.Sprintf("%d", run.Result.Metrics.DistinctKeys),
			fmtCount(run.Pairs),
			fmt.Sprintf("%.2f", run.Imbalance),
			fmt.Sprintf("%d", run.WallMs),
		)
	}
	return t, nil
}

// AblationSkew measures the equi-depth partitioning extension on
// zipf-skewed data: with uniform-width partitions most intervals land in
// the first few reducers (the skew problem the paper notes requires
// different processing); quantile boundaries restore balance without
// changing the output.
func AblationSkew(cfg Config) (*Table, error) {
	cfg = cfg.withDefaults()
	q := query.MustParse("R1 overlaps R2 and R2 overlaps R3")
	// Zipf clustering makes the hot region's join output grow
	// combinatorially, so the relations stay modest and the intervals
	// short; the routing imbalance is what the experiment measures.
	n := cfg.scaled(500_000)
	if n > 5_000 {
		n = 5_000
	}
	rels := make([]*relation.Relation, 3)
	for i := range rels {
		r, err := workload.Generate(workload.Spec{
			Name: fmt.Sprintf("R%d", i+1), NumIntervals: n,
			StartDist: workload.Zipf, LengthDist: workload.Uniform,
			TMin: 0, TMax: 100_000, IMin: 1, IMax: 10, Seed: cfg.Seed + int64(i),
		})
		if err != nil {
			return nil, err
		}
		rels[i] = r
	}
	t := &Table{
		ID:      "ablation-skew",
		Title:   "RCCIS on zipf-skewed starts: uniform-width vs equi-depth partitioning (16 reducers)",
		Columns: []string{"partitioning", "imbalance", "max_reducer_pairs", "pairs", "wall_ms", "output"},
		Notes: []string{
			"expected shape: equi-depth cuts imbalance by several x with identical output",
		},
	}
	for _, equi := range []bool{false, true} {
		name := "uniform"
		opts := core.Options{Partitions: 16}
		if equi {
			name = "equi-depth"
			opts.EquiDepth = true
		}
		run, err := execute(cfg, core.RCCIS{}, q, rels, opts)
		if err != nil {
			return nil, err
		}
		t.AddRow(name,
			fmt.Sprintf("%.2f", run.Imbalance),
			fmtCount(run.Result.Metrics.MaxReducerPairs()),
			fmtCount(run.Pairs),
			fmt.Sprintf("%d", run.WallMs),
			fmtCount(run.OutputRows))
	}
	return t, nil
}

// AblationRangeShuffle measures what the range-coalesced shuffle saves per
// algorithm: each map function emits one record per contiguous destination
// range instead of one per reducer, so the physical pair count divided into
// the logical one is the replication factor recovered. Output is unchanged
// by construction (the reduce sweep re-expands ranges); this table records
// the communication side of that trade.
func AblationRangeShuffle(cfg Config) (*Table, error) {
	cfg = cfg.withDefaults()
	n := cfg.scaled(50_000)
	rels := make([]*relation.Relation, 3)
	for i := range rels {
		r, err := workload.Generate(workload.Figure5Spec(fmt.Sprintf("R%d", i+1), n, cfg.Seed+int64(i)))
		if err != nil {
			return nil, err
		}
		rels[i] = r
	}
	t := &Table{
		ID:      "ablation-range-shuffle",
		Title:   "Range-coalesced shuffle: logical vs physically stored pairs per algorithm",
		Columns: []string{"algorithm", "query", "pairs", "phys_pairs", "repl", "pct_saved"},
		Notes: []string{
			"expected shape: replicate-heavy algorithms (all-rep, all-matrix) recover several x; project/split-dominated ones stay near 1x",
		},
	}
	seq := query.MustParse("R1 before R2 and R2 before R3")
	coloc := query.MustParse("R1 overlaps R2 and R2 overlaps R3")
	cases := []struct {
		alg  core.Algorithm
		q    *query.Query
		opts core.Options
	}{
		{core.AllRep{}, seq, core.Options{Partitions: 16}},
		// A finer grid lengthens the consistent-cell runs and with them the
		// coalescing win (cf. the partitions sweep above).
		{core.AllMatrix{}, seq, core.Options{PartitionsPerDim: 12}},
		{core.RCCIS{}, coloc, core.Options{Partitions: 16}},
		{core.SeqMatrix{}, coloc, core.Options{Partitions: 16, PartitionsPerDim: 6}},
	}
	for _, c := range cases {
		run, err := execute(cfg, c.alg, c.q, rels, c.opts)
		if err != nil {
			return nil, err
		}
		saved := 0.0
		if run.Pairs > 0 {
			saved = 100 * float64(run.Pairs-run.PhysPairs) / float64(run.Pairs)
		}
		t.AddRow(run.Algorithm, c.q.String(),
			fmtCount(run.Pairs), fmtCount(run.PhysPairs),
			fmt.Sprintf("%.2fx", run.ReplFactor),
			fmt.Sprintf("%.1f", saved))
	}
	return t, nil
}

// AblationPruning runs PASM and All-Seq-Matrix on a Q4 workload where R3 is
// as large and long as R1, so almost every R1 interval overlaps some R3
// interval, pruning removes very little, and PASM's third cycle is mostly
// overhead — the trade-off Section 8.2 warns about (Table 3 explores the
// opposite, pruning-friendly regime).
func AblationPruning(cfg Config) (*Table, error) {
	cfg = cfg.withDefaults()
	q := query.MustParse("R1 before R2 and R1 overlaps R3")
	n1 := cfg.scaled(500_000)
	n2 := cfg.scaled(100_000)
	r1, err := workload.Generate(workload.Table3Spec("R1", n1, 1000, cfg.Seed))
	if err != nil {
		return nil, err
	}
	r2, err := workload.Generate(workload.Table3Spec("R2", n2, 1000, cfg.Seed+1))
	if err != nil {
		return nil, err
	}
	// R3 denser than R1 (floored so its range coverage is
	// scale-independent) and strictly longer: nearly every R1 interval has
	// an R3 starting inside it and outlasting it, so almost no R1 prunes.
	n3 := 2 * n1
	if n3 < 2000 {
		n3 = 2000
	}
	r3, err := workload.Generate(workload.Spec{
		Name: "R3", NumIntervals: n3,
		StartDist: workload.Uniform, LengthDist: workload.Uniform,
		TMin: 0, TMax: 200_000, IMin: 1000, IMax: 2000, Seed: cfg.Seed + 2,
	})
	if err != nil {
		return nil, err
	}
	rels := []*relation.Relation{r1, r2, r3}
	t := &Table{
		ID:      "ablation-pruning",
		Title:   "PASM vs All-Seq-Matrix under near-zero pruning (R3 as dense as R1)",
		Columns: []string{"algorithm", "cycles", "pct_R1_pruned", "pairs", "wall_ms"},
		Notes: []string{
			"expected shape: little pruned; pasm pays an extra cycle for almost nothing and is not faster than asm",
		},
	}
	opts := core.Options{PartitionsPerDim: 6}
	asm, err := execute(cfg, core.SeqMatrix{}, q, rels, opts)
	if err != nil {
		return nil, err
	}
	pasm, err := execute(cfg, core.PASM{}, q, rels, opts)
	if err != nil {
		return nil, err
	}
	t.AddRow(asm.Algorithm, fmt.Sprintf("%d", asm.Cycles), "-", fmtCount(asm.Pairs), fmt.Sprintf("%d", asm.WallMs))
	pct := 100 * float64(pasm.Result.PrunedIntervals[0]) / float64(n1)
	t.AddRow(pasm.Algorithm, fmt.Sprintf("%d", pasm.Cycles), fmt.Sprintf("%.2f", pct), fmtCount(pasm.Pairs), fmt.Sprintf("%d", pasm.WallMs))
	return t, nil
}
