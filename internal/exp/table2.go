package exp

import (
	"fmt"

	"intervaljoin/internal/cluster"
	"intervaljoin/internal/core"
	"intervaljoin/internal/query"
	"intervaljoin/internal/relation"
	"intervaljoin/internal/trace"
)

// Table2 reproduces Table 2: for each simulated MAWI trace P03–P08, packets
// are synthesised to the trace's published packet count, packet trains are
// built with the 500 ms cut-off, the train set is replicated to a fixed 3M
// intervals (all scaled by Config.Scale), and the star overlap self-join
// T1 overlaps T2 and T2 overlaps T3 is computed with 2-way Cascade and
// RCCIS on 16 reducers.
func Table2(cfg Config) (*Table, error) {
	cfg = cfg.withDefaults()
	q := query.MustParse("T1 overlaps T2 and T2 overlaps T3")
	t := &Table{
		ID:    "table2",
		Title: "star overlap self-join over packet trains (500ms cut-off, 16 reducers)",
		Columns: []string{
			"trace", "date", "pkts", "trains", "copies", "dur_min", "joined_trains",
			"cascade_ms", "rccis_ms", "est_cascade", "est_rccis", "pairs_cascade", "pairs_rccis",
		},
		Notes: []string{
			"expected shape: rccis beats cascade on every trace, gap widening with trace size",
			fmt.Sprintf("traces synthesised to the paper's per-trace packet/train counts, scaled by %g; train set replicated to 3M x scale", cfg.Scale),
		},
	}
	opts := core.Options{Partitions: 16}
	target := cfg.scaled(3_000_000)
	for ti, profile := range trace.MAWI {
		packets, err := trace.Synthesize(profile, cfg.Scale, cfg.Seed+int64(ti))
		if err != nil {
			return nil, err
		}
		trains := trace.BuildTrains(packets, trace.DefaultCutoffMs)
		joined := trace.ReplicateTrains(trains, target, profile.DurationMs, cfg.Seed+int64(ti))
		rels := []*relation.Relation{
			trace.TrainsRelation("T1", joined),
			trace.TrainsRelation("T2", joined),
			trace.TrainsRelation("T3", joined),
		}
		cascade, err := execute(cfg, core.Cascade{}, q, rels, opts)
		if err != nil {
			return nil, err
		}
		rccis, err := execute(cfg, core.RCCIS{}, q, rels, opts)
		if err != nil {
			return nil, err
		}
		// The paper's "# Copies & Total Duration" column: how many copies
		// of the 15-minute trace the replication represents.
		copies := (len(joined) + len(trains) - 1) / max(len(trains), 1)
		t.AddRow(
			profile.Name,
			profile.Date,
			fmtCount(int64(len(packets))),
			fmtCount(int64(len(trains))),
			fmt.Sprintf("%d", copies),
			fmt.Sprintf("%d", copies*15),
			fmtCount(int64(len(joined))),
			fmt.Sprintf("%d", cascade.WallMs),
			fmt.Sprintf("%d", rccis.WallMs),
			cluster.FormatHHMM(cascade.ClusterEst),
			cluster.FormatHHMM(rccis.ClusterEst),
			fmtCount(cascade.Pairs),
			fmtCount(rccis.Pairs),
		)
	}
	return t, nil
}
