package exp

import (
	"fmt"

	"intervaljoin/internal/core"
	"intervaljoin/internal/grid"
	"intervaljoin/internal/query"
	"intervaljoin/internal/relation"
	"intervaljoin/internal/workload"
)

// Table4 reproduces Table 4: Gen-Matrix on the 4-attribute query
// Q5 = R1.I before R2.I and R1.I overlaps R3.I and R1.A = R3.A and
// R2.B = R3.B, with relation sizes stepping (100K,10K,100K) → (140K,14K,
// 140K) scaled. The grid is 4-dimensional with 5 partitions per dimension;
// the single order constraint C1 < C2 leaves 375 of 625 cells consistent,
// as the paper reports. Time should grow roughly linearly with size.
func Table4(cfg Config) (*Table, error) {
	cfg = cfg.withDefaults()
	q := query.MustParse("R1.I before R2.I and R1.I overlaps R3.I and R1.A = R3.A and R2.B = R3.B")

	// Document the consistent-cell count the paper quotes.
	g, err := grid.NewUniform(4, 5)
	if err != nil {
		return nil, err
	}
	consistent := g.CountConsistent([]grid.Less{{A: 0, B: 1}})

	t := &Table{
		ID:      "table4",
		Title:   "Q5 Gen-Matrix, 4-D grid, 5 partitions per dimension",
		Columns: []string{"nI", "genmatrix_ms", "pairs", "output", "cycles"},
		Notes: []string{
			fmt.Sprintf("consistent reducers: %d of %d (paper: 375 of 625)", consistent, g.NumCells()),
			"expected shape: time grows roughly linearly with relation size",
			fmt.Sprintf("sizes scaled by %g from the paper's (100K,10K,100K)..(140K,14K,140K)", cfg.Scale),
		},
	}
	opts := core.Options{PartitionsPerDim: 5}
	// The real-valued attribute domain is fixed small: the conjunction of
	// a before, an overlaps and two equalities is very selective, and a
	// scaled-down run needs dense equality groups to produce any output.
	const domainAB = 5
	t.Notes = append(t.Notes, fmt.Sprintf("real-valued attribute domain fixed at %d values so the 4-condition conjunction yields output at local scale", domainAB))
	for step := 0; step < 5; step++ {
		n1 := cfg.scaled(100_000 + 10_000*step)
		n2 := cfg.scaled(10_000 + 1_000*step)
		n3 := n1
		specs := workload.Table4Specs(n1, n2, n3, domainAB, cfg.Seed+int64(step)*11)
		rels := make([]*relation.Relation, len(specs))
		for i, s := range specs {
			r, err := workload.GenerateMulti(s)
			if err != nil {
				return nil, err
			}
			rels[i] = r
		}
		run, err := execute(cfg, core.GenMatrix{}, q, rels, opts)
		if err != nil {
			return nil, err
		}
		t.AddRow(
			fmt.Sprintf("%s,%s,%s", fmtCount(int64(n1)), fmtCount(int64(n2)), fmtCount(int64(n3))),
			fmt.Sprintf("%d", run.WallMs),
			fmtCount(run.Pairs),
			fmtCount(run.OutputRows),
			fmt.Sprintf("%d", run.Cycles),
		)
	}
	return t, nil
}
