package exp

import (
	"fmt"

	"intervaljoin/internal/cache"
	"intervaljoin/internal/core"
	"intervaljoin/internal/dfs"
	"intervaljoin/internal/mr"
	"intervaljoin/internal/query"
	"intervaljoin/internal/relation"
	"intervaljoin/internal/workload"
)

// QueryMix measures the ijoind semantic segment cache on a zipfian
// time-range query mix (workload.ZipfQueryMix): each window runs once cold
// (whole-window engine run, cache bypassed) and once through the cache,
// which merges covered segments and re-joins only the uncovered gaps. The
// sweep over the zipf exponent shows the cache's leverage growing with
// access skew: hotter mixes re-visit the same ranges, so the span hit
// ratio climbs and the warm mean latency collapses.
func QueryMix(cfg Config) (*Table, error) {
	cfg = cfg.withDefaults()
	q := query.MustParse("R1 overlaps R2")
	n := cfg.scaled(500_000)
	rels := make([]*relation.Relation, 2)
	for i := range rels {
		r, err := workload.Generate(workload.Table1Spec(fmt.Sprintf("R%d", i+1), n, cfg.Seed+int64(i)))
		if err != nil {
			return nil, err
		}
		rels[i] = r
	}
	tmin, tmax, ok := relation.Bounds(rels...)
	if !ok {
		return nil, fmt.Errorf("exp: querymix relations are empty")
	}
	t := &Table{
		ID:      "querymix",
		Title:   "semantic segment cache on zipfian query mixes (ijoind)",
		Columns: []string{"skew", "queries", "hit_ratio", "full_hits", "delta_rows", "cold_ms", "warm_ms", "speedup"},
		Notes: []string{
			"expected shape: hit ratio and speedup rise with skew; every warm answer is verified row-identical to its cold run",
		},
	}
	queries := cfg.scaled(20_000)
	if queries < 20 {
		queries = 20
	}
	for _, skew := range []float64{1.2, 1.5, 2.5} {
		svc, err := cache.NewService(cache.ServiceConfig{
			Engine: mr.NewEngine(mr.Config{Store: dfs.NewMem(), Workers: cfg.Workers, Tracer: cfg.Tracer}),
			Tracer: cfg.Tracer,
			Opts:   core.Options{Partitions: 16, PartitionsPerDim: 6, Adaptive: cfg.Adaptive, Materialize: cfg.Materialize},
		})
		if err != nil {
			return nil, err
		}
		for _, r := range rels {
			if _, err := svc.Register(r); err != nil {
				return nil, err
			}
		}
		mix, err := workload.ZipfQueryMix(workload.QueryMixSpec{
			N: queries, TMin: int64(tmin), TMax: int64(tmax), Skew: skew, Seed: cfg.Seed,
		})
		if err != nil {
			return nil, err
		}
		var coldNS, warmNS int64
		for _, w := range mix {
			win := cache.Window{Lo: w.Lo, Hi: w.Hi}
			cold, err := svc.RunCold(q, win)
			if err != nil {
				return nil, err
			}
			warm, err := svc.Query(q, win)
			if err != nil {
				return nil, err
			}
			if err := sameRows(cold.Rows, warm.Rows); err != nil {
				return nil, fmt.Errorf("exp: querymix skew %.1f window [%d,%d]: %w", skew, w.Lo, w.Hi, err)
			}
			coldNS += cold.Wall.Nanoseconds()
			warmNS += warm.Wall.Nanoseconds()
		}
		st := svc.Stats()
		coldMS := float64(coldNS) / 1e6
		warmMS := float64(warmNS) / 1e6
		speedup := "-"
		if warmNS > 0 {
			speedup = fmt.Sprintf("%.1fx", float64(coldNS)/float64(warmNS))
		}
		t.AddRow(fmt.Sprintf("%.1f", skew), fmt.Sprintf("%d", queries),
			fmt.Sprintf("%.3f", st.HitRatio()), fmt.Sprintf("%d", st.FullHits),
			fmtCount(st.DeltaRows), fmt.Sprintf("%.1f", coldMS),
			fmt.Sprintf("%.1f", warmMS), speedup)
	}
	return t, nil
}

// sameRows checks two sorted answer row sets are identical.
func sameRows(want, got []core.OutputTuple) error {
	if len(want) != len(got) {
		return fmt.Errorf("warm answer has %d rows, cold %d", len(got), len(want))
	}
	for i := range want {
		if len(want[i]) != len(got[i]) {
			return fmt.Errorf("row %d arity differs", i)
		}
		for j := range want[i] {
			if want[i][j] != got[i][j] {
				return fmt.Errorf("row %d differs: %v vs %v", i, got[i], want[i])
			}
		}
	}
	return nil
}
