package query

import (
	"math/rand"
	"testing"

	"intervaljoin/internal/interval"
	"intervaljoin/internal/relation"
)

func TestProvablyEmptyDetectsContradictions(t *testing.T) {
	empty := []string{
		// Direct cycle of before.
		"A before B and B before C and C before A",
		// Mutual containment.
		"A contains B and B contains A",
		// A before B but B also contains A.
		"A before B and B contains A",
		// Transitive clash: A before B before C and C meets A.
		"A before B and B before C and C meets A",
		// Equality chain clashing with strict order.
		"A equals B and B equals C and A contains C",
	}
	for _, qs := range empty {
		q := MustParse(qs)
		if !ProvablyEmpty(q) {
			t.Errorf("ProvablyEmpty(%q) = false, want true", qs)
		}
	}
	satisfiable := []string{
		"A overlaps B and B overlaps C",
		"A before B and B before C",
		"A contains B and A contains C",
		"A before B and B after A", // same constraint twice, inverted
		"A equals B and B equals C",
		// Point-satisfiable only: A equals B and A meets B holds for two
		// identical points, so it must NOT be proven empty by the sound
		// table.
		"A equals B and A meets B and A.X overlaps C.X",
	}
	for _, qs := range satisfiable {
		q := MustParse(qs)
		if ProvablyEmpty(q) {
			t.Errorf("ProvablyEmpty(%q) = true, want false", qs)
		}
	}
}

func TestAssumeProperTightens(t *testing.T) {
	// equals + meets between the same pair is satisfiable by points
	// (u = v = [5,5] satisfies both) but impossible for proper intervals.
	q := MustParse("A equals B and A meets B and B overlaps C")
	if ProvablyEmpty(q) {
		t.Fatal("sound reasoning proved a point-satisfiable query empty")
	}
	if !ProvablyEmptyProper(q) {
		t.Fatal("proper-interval reasoning failed to prove emptiness")
	}
}

// TestProvablyEmptySoundOnRandomQueries: whenever the reasoner proves a
// query empty, a brute-force search over a small dense domain must find no
// satisfying assignment.
func TestProvablyEmptySoundOnRandomQueries(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	names := []string{"A", "B", "C"}
	provedEmpty := 0
	for trial := 0; trial < 400; trial++ {
		// Random 3-condition query over a triangle of 3 relations.
		q := New()
		pairs := [][2]int{{0, 1}, {1, 2}, {0, 2}}
		for _, pr := range pairs {
			p := interval.Predicate(rng.Intn(int(interval.NumPredicates)))
			if err := q.AddCondition(names[pr[0]], "", p, names[pr[1]], ""); err != nil {
				t.Fatal(err)
			}
		}
		if !ProvablyEmpty(q) {
			continue
		}
		provedEmpty++
		// Exhaustive refutation over all interval triples in [0, 8).
		var ivs []interval.Interval
		for s := int64(0); s < 8; s++ {
			for e := s; e < 8; e++ {
				ivs = append(ivs, interval.New(s, e))
			}
		}
		tuples := make([]relation.Tuple, 3)
		for _, a := range ivs {
			for _, b := range ivs {
				for _, c := range ivs {
					tuples[0] = relation.Tuple{Attrs: []interval.Interval{a}}
					tuples[1] = relation.Tuple{Attrs: []interval.Interval{b}}
					tuples[2] = relation.Tuple{Attrs: []interval.Interval{c}}
					if q.EvalTuples(tuples) {
						t.Fatalf("query %q proven empty but satisfied by %v, %v, %v", q, a, b, c)
					}
				}
			}
		}
	}
	if provedEmpty == 0 {
		t.Fatal("no random query was proven empty — test exercised nothing")
	}
}

func TestNetworkFeasible(t *testing.T) {
	q := MustParse("A overlaps B and B before C")
	n := NewNetwork(q, false)
	a, b := q.Conds[0].Left, q.Conds[0].Right
	if got := n.Feasible(a, b); got != interval.NewPredicateSet(interval.Overlaps) {
		t.Fatalf("Feasible(A,B) = %v", got)
	}
	if got := n.Feasible(b, a); got != interval.NewPredicateSet(interval.OverlappedBy) {
		t.Fatalf("Feasible(B,A) = %v", got)
	}
	if !n.Propagate() {
		t.Fatal("satisfiable query refuted")
	}
	// After propagation, A-C is constrained: A overlaps B, B before C
	// forces A strictly before C.
	c := q.Conds[1].Right
	ac := n.Feasible(a, c)
	if ac.Contains(interval.After) || ac.Contains(interval.Contains) {
		t.Fatalf("Feasible(A,C) = %v still allows after/contains", ac)
	}
	// Unknown vertices are unconstrained.
	if n.Feasible(Operand{Rel: 9, Attr: 0}, a) != interval.AllSet {
		t.Fatal("unknown vertex not unconstrained")
	}
}

func TestProvablyEmptyNoConditions(t *testing.T) {
	if ProvablyEmpty(New()) {
		t.Fatal("empty query proven empty")
	}
}
