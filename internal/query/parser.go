package query

import (
	"fmt"
	"strings"
	"unicode"

	"intervaljoin/internal/interval"
)

// Parse builds a Query from the small textual language used throughout the
// paper's examples:
//
//	R1 overlaps R2 and R2 contains R3 and R3 overlaps R4
//	R1.I before R2.I and R1.A equals R3.A
//
// Grammar:
//
//	query   := cond ("and" cond)*
//	cond    := operand PRED operand
//	operand := IDENT ("." IDENT)?
//	PRED    := any Allen predicate name or alias ("<", ">", "=", "during", ...)
//
// Relation and attribute names are registered in order of first appearance.
// Keywords are case-insensitive; identifiers are case-sensitive.
func Parse(input string) (*Query, error) {
	toks, err := tokenize(input)
	if err != nil {
		return nil, err
	}
	if len(toks) == 0 {
		return nil, fmt.Errorf("query: empty input")
	}
	q := New()
	p := &parser{toks: toks}
	for {
		if err := p.cond(q); err != nil {
			return nil, err
		}
		if p.done() {
			break
		}
		if !p.eatKeyword("and") {
			return nil, fmt.Errorf("query: expected 'and' at %q", p.peek())
		}
	}
	if err := q.Validate(); err != nil {
		return nil, err
	}
	return q, nil
}

// MustParse is Parse for tests and examples; it panics on error.
func MustParse(input string) *Query {
	q, err := Parse(input)
	if err != nil {
		panic(err)
	}
	return q
}

type parser struct {
	toks []string
	pos  int
}

func (p *parser) done() bool { return p.pos >= len(p.toks) }

func (p *parser) peek() string {
	if p.done() {
		return "<end>"
	}
	return p.toks[p.pos]
}

func (p *parser) next() (string, error) {
	if p.done() {
		return "", fmt.Errorf("query: unexpected end of input")
	}
	t := p.toks[p.pos]
	p.pos++
	return t, nil
}

func (p *parser) eatKeyword(kw string) bool {
	if !p.done() && strings.EqualFold(p.toks[p.pos], kw) {
		p.pos++
		return true
	}
	return false
}

func (p *parser) cond(q *Query) error {
	lRel, lAttr, err := p.operand()
	if err != nil {
		return err
	}
	predTok, err := p.next()
	if err != nil {
		return fmt.Errorf("query: missing predicate after %s: %v", lRel, err)
	}
	pred, err := interval.ParsePredicate(predTok)
	if err != nil {
		return err
	}
	rRel, rAttr, err := p.operand()
	if err != nil {
		return err
	}
	return q.AddCondition(lRel, lAttr, pred, rRel, rAttr)
}

func (p *parser) operand() (rel, attr string, err error) {
	tok, err := p.next()
	if err != nil {
		return "", "", err
	}
	if strings.EqualFold(tok, "and") {
		return "", "", fmt.Errorf("query: expected operand, got keyword %q", tok)
	}
	if dot := strings.IndexByte(tok, '.'); dot >= 0 {
		rel, attr = tok[:dot], tok[dot+1:]
		if rel == "" || attr == "" {
			return "", "", fmt.Errorf("query: malformed operand %q", tok)
		}
		return rel, attr, nil
	}
	return tok, "", nil
}

// tokenize splits the input into identifiers (possibly dotted), operator
// symbols and keywords.
func tokenize(input string) ([]string, error) {
	var toks []string
	i := 0
	for i < len(input) {
		r := rune(input[i])
		switch {
		case unicode.IsSpace(r):
			i++
		case r == '<' || r == '>' || r == '=':
			j := i
			for j < len(input) && (input[j] == '<' || input[j] == '>' || input[j] == '=') {
				j++
			}
			toks = append(toks, input[i:j])
			i = j
		case isIdentRune(r):
			j := i
			for j < len(input) && (isIdentRune(rune(input[j])) || input[j] == '.') {
				j++
			}
			toks = append(toks, input[i:j])
			i = j
		default:
			return nil, fmt.Errorf("query: unexpected character %q at offset %d", r, i)
		}
	}
	return toks, nil
}

func isIdentRune(r rune) bool {
	return unicode.IsLetter(r) || unicode.IsDigit(r) || r == '_' || r == '-'
}
