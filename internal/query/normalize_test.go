package query

import (
	"math/rand"
	"testing"

	"intervaljoin/internal/interval"
	"intervaljoin/internal/relation"
)

func TestNormalizeCanonicalises(t *testing.T) {
	q := MustParse("R2 after R1 and R2 overlappedby R3 and R1 containedby R3 and R1 startedby R2 and R2 metby R3 and R1 finishedby R2")
	n := q.Normalize()
	if len(n.Conds) != len(q.Conds) {
		t.Fatalf("condition count changed")
	}
	for _, c := range n.Conds {
		if !canonicalPredicate(c.Pred) {
			t.Errorf("condition %v %v %v not canonical", c.Left, c.Pred, c.Right)
		}
	}
	// after(R2, R1) -> before(R1, R2).
	if n.Conds[0].Pred != interval.Before || n.Conds[0].Left.Rel != q.Conds[0].Right.Rel {
		t.Fatalf("after not flipped: %+v", n.Conds[0])
	}
	// Canonical conditions are untouched.
	q2 := MustParse("R1 before R2 and R1 overlaps R3")
	n2 := q2.Normalize()
	for i := range q2.Conds {
		if n2.Conds[i] != q2.Conds[i] {
			t.Fatalf("canonical condition %d changed", i)
		}
	}
}

// TestNormalizePreservesSemantics: the normalised query accepts exactly the
// same assignments.
func TestNormalizePreservesSemantics(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	for trial := 0; trial < 200; trial++ {
		// Random 2-condition query over 3 relations.
		q := New()
		for _, pr := range [][2]string{{"A", "B"}, {"B", "C"}} {
			p := interval.Predicate(rng.Intn(int(interval.NumPredicates)))
			if err := q.AddCondition(pr[0], "", p, pr[1], ""); err != nil {
				t.Fatal(err)
			}
		}
		n := q.Normalize()
		tuples := make([]relation.Tuple, 3)
		for probe := 0; probe < 300; probe++ {
			for i := range tuples {
				s := rng.Int63n(30)
				tuples[i] = relation.Tuple{Attrs: []interval.Interval{interval.New(s, s+rng.Int63n(10))}}
			}
			if q.EvalTuples(tuples) != n.EvalTuples(tuples) {
				t.Fatalf("normalisation changed semantics of %q -> %q", q, n)
			}
		}
	}
}

func TestNormalizeDoesNotMutateOriginal(t *testing.T) {
	q := MustParse("R2 after R1")
	before := q.String()
	_ = q.Normalize()
	if q.String() != before {
		t.Fatal("Normalize mutated its receiver")
	}
}

func TestNormalizeClassUnchanged(t *testing.T) {
	for _, qs := range []string{
		"R2 after R1 and R3 after R2",
		"R1 overlappedby R2 and R2 containedby R3",
		"R2 after R1 and R1 overlaps R3",
	} {
		q := MustParse(qs)
		if q.Normalize().Classify() != q.Classify() {
			t.Errorf("Normalize changed class of %q", qs)
		}
	}
}
