// Package query represents multi-way interval join queries: conjunctions of
// Allen-predicate conditions over relation attributes. It classifies queries
// into the paper's four classes (Colocation, Sequence, Hybrid, General),
// builds the join graph, extracts colocation components (Sections 8 and 9),
// and derives the less-than orders used to identify consistent reducers.
package query

import (
	"fmt"
	"strings"

	"intervaljoin/internal/interval"
	"intervaljoin/internal/relation"
)

// Operand names one side of a join condition: an attribute of a relation,
// both by index into the query's relation list / schema.
type Operand struct {
	Rel  int // index into Query.Relations
	Attr int // index into the relation's schema attributes
}

// Condition is one conjunct of the query: Left Pred Right.
type Condition struct {
	Left  Operand
	Pred  interval.Predicate
	Right Operand
}

// Class is the paper's query taxonomy.
type Class uint8

const (
	// Colocation: single interval attribute, colocation predicates only.
	Colocation Class = iota
	// Sequence: single interval attribute, sequence predicates only.
	Sequence
	// Hybrid: single interval attribute, both kinds of predicates.
	Hybrid
	// General: more than one attribute involved (interval and/or
	// real-valued); handled by Gen-Matrix.
	General
)

// String names the class.
func (c Class) String() string {
	switch c {
	case Colocation:
		return "colocation"
	case Sequence:
		return "sequence"
	case Hybrid:
		return "hybrid"
	case General:
		return "general"
	}
	return fmt.Sprintf("class(%d)", uint8(c))
}

// Query is a conjunctive multi-way interval join query.
type Query struct {
	Relations []relation.Schema
	Conds     []Condition
}

// New starts an empty query.
func New() *Query { return &Query{} }

// AddRelation registers a relation schema and returns its index.
func (q *Query) AddRelation(s relation.Schema) int {
	q.Relations = append(q.Relations, s)
	return len(q.Relations) - 1
}

// RelIndex returns the index of the named relation, or -1.
func (q *Query) RelIndex(name string) int {
	for i, s := range q.Relations {
		if s.Name == name {
			return i
		}
	}
	return -1
}

// AddCondition appends the conjunct "left pred right" with operands given by
// relation and attribute name. Unknown relations are registered on the fly
// with a single default attribute.
func (q *Query) AddCondition(leftRel, leftAttr string, pred interval.Predicate, rightRel, rightAttr string) error {
	l, err := q.resolve(leftRel, leftAttr)
	if err != nil {
		return err
	}
	r, err := q.resolve(rightRel, rightAttr)
	if err != nil {
		return err
	}
	if l.Rel == r.Rel {
		return fmt.Errorf("query: condition relates %s to itself; register self-join inputs under distinct names", leftRel)
	}
	q.Conds = append(q.Conds, Condition{Left: l, Pred: pred, Right: r})
	return nil
}

func (q *Query) resolve(rel, attr string) (Operand, error) {
	ri := q.RelIndex(rel)
	if ri < 0 {
		if attr == "" {
			ri = q.AddRelation(relation.NewSchema(rel))
		} else {
			// First seen with an explicit attribute: no default column.
			ri = q.AddRelation(relation.Schema{Name: rel, Attrs: []string{attr}})
		}
	}
	if attr == "" {
		attr = q.Relations[ri].Attrs[0]
	}
	ai := q.Relations[ri].AttrIndex(attr)
	if ai < 0 {
		// Grow the schema: parsing "R1.A" before any data is bound.
		q.Relations[ri].Attrs = append(q.Relations[ri].Attrs, attr)
		ai = len(q.Relations[ri].Attrs) - 1
	}
	return Operand{Rel: ri, Attr: ai}, nil
}

// Validate checks that every condition references valid operands and that
// the query has at least one condition and two relations.
func (q *Query) Validate() error {
	if len(q.Conds) == 0 {
		return fmt.Errorf("query: no conditions")
	}
	if len(q.Relations) < 2 {
		return fmt.Errorf("query: fewer than two relations")
	}
	for i, c := range q.Conds {
		for _, op := range []Operand{c.Left, c.Right} {
			if op.Rel < 0 || op.Rel >= len(q.Relations) {
				return fmt.Errorf("query: condition %d references relation %d of %d", i, op.Rel, len(q.Relations))
			}
			if op.Attr < 0 || op.Attr >= q.Relations[op.Rel].Arity() {
				return fmt.Errorf("query: condition %d references attribute %d of relation %s",
					i, op.Attr, q.Relations[op.Rel].Name)
			}
		}
		if c.Left.Rel == c.Right.Rel {
			return fmt.Errorf("query: condition %d relates relation %s to itself", i, q.Relations[c.Left.Rel].Name)
		}
	}
	return nil
}

// Classify returns the paper's class of the query. A query is General as
// soon as any relation has more than one attribute participating in
// conditions or any schema has arity above one; otherwise it is Colocation,
// Sequence or Hybrid according to its predicate kinds.
func (q *Query) Classify() Class {
	attrsPerRel := make(map[int]map[int]struct{})
	note := func(op Operand) {
		m := attrsPerRel[op.Rel]
		if m == nil {
			m = make(map[int]struct{})
			attrsPerRel[op.Rel] = m
		}
		m[op.Attr] = struct{}{}
	}
	anySeq, anyColoc := false, false
	for _, c := range q.Conds {
		note(c.Left)
		note(c.Right)
		if c.Pred.IsSequence() {
			anySeq = true
		} else {
			anyColoc = true
		}
	}
	for ri, m := range attrsPerRel {
		if len(m) > 1 || q.Relations[ri].Arity() > 1 {
			return General
		}
	}
	switch {
	case anySeq && anyColoc:
		return Hybrid
	case anySeq:
		return Sequence
	default:
		return Colocation
	}
}

// EvalTuples reports whether the assignment (one tuple per relation, indexed
// by relation) satisfies every condition of the query.
func (q *Query) EvalTuples(tuples []relation.Tuple) bool {
	for _, c := range q.Conds {
		u := tuples[c.Left.Rel].Attrs[c.Left.Attr]
		v := tuples[c.Right.Rel].Attrs[c.Right.Attr]
		if !c.Pred.Eval(u, v) {
			return false
		}
	}
	return true
}

// EvalPartial reports whether the conditions whose relations are all present
// in the partial assignment hold. present[i] states whether tuples[i] is
// bound. This is the consistency check A2 of Section 5.2 restricted to a
// subset of relations.
func (q *Query) EvalPartial(tuples []relation.Tuple, present []bool) bool {
	for _, c := range q.Conds {
		if !present[c.Left.Rel] || !present[c.Right.Rel] {
			continue
		}
		u := tuples[c.Left.Rel].Attrs[c.Left.Attr]
		v := tuples[c.Right.Rel].Attrs[c.Right.Attr]
		if !c.Pred.Eval(u, v) {
			return false
		}
	}
	return true
}

// LessThanPairs returns, for each condition, the directed pair (lesser,
// greater) of relation indices implied by the predicate's less-than order.
func (q *Query) LessThanPairs() [][2]int {
	out := make([][2]int, 0, len(q.Conds))
	for _, c := range q.Conds {
		if c.Pred.LessThanOrder() == interval.LeftLess {
			out = append(out, [2]int{c.Left.Rel, c.Right.Rel})
		} else {
			out = append(out, [2]int{c.Right.Rel, c.Left.Rel})
		}
	}
	return out
}

// String renders the query in the parser's input language.
func (q *Query) String() string {
	var b strings.Builder
	for i, c := range q.Conds {
		if i > 0 {
			b.WriteString(" and ")
		}
		b.WriteString(q.operandString(c.Left))
		b.WriteByte(' ')
		b.WriteString(c.Pred.String())
		b.WriteByte(' ')
		b.WriteString(q.operandString(c.Right))
	}
	return b.String()
}

func (q *Query) operandString(op Operand) string {
	s := q.Relations[op.Rel]
	if s.Arity() == 1 {
		return s.Name
	}
	return s.Name + "." + s.Attrs[op.Attr]
}
