package query

import (
	"cmp"
	"fmt"
	"slices"

	"intervaljoin/internal/interval"
)

// Component is a connected component of the join graph after removing
// sequence edges (Sections 8 and 9): a set of (relation, attribute) vertices
// linked by colocation conditions, encapsulating one colocation sub-query.
type Component struct {
	ID       int
	Vertices []Operand // sorted by (Rel, Attr)
	CondIdx  []int     // indices into Query.Conds of the colocation conditions inside
}

// ContainsRel reports whether any vertex of the component belongs to the
// given relation.
func (c Component) ContainsRel(rel int) bool {
	for _, v := range c.Vertices {
		if v.Rel == rel {
			return true
		}
	}
	return false
}

// Decomposition is the join graph G of a query, its colocation components
// (graph G' of the paper), and the less-than order among components implied
// by the sequence conditions.
type Decomposition struct {
	Query      *Query
	Components []Component
	// CompOf maps every vertex to its component id.
	CompOf map[Operand]int
	// SeqCondIdx are the indices of the sequence conditions in Query.Conds.
	SeqCondIdx []int
	// Less holds the directed component pairs {lesser, greater} derived
	// from the sequence conditions, deduplicated.
	Less [][2]int
	// Contradictory is true when two sequence conditions enforce opposite
	// orders between the same pair of components; the query output is then
	// provably empty (Section 9).
	Contradictory bool
}

// Decompose builds the decomposition of q. Every vertex that appears in any
// condition gets a component; vertices connected by colocation conditions
// share one.
func Decompose(q *Query) *Decomposition {
	// Collect vertices in first-appearance order for deterministic ids.
	var verts []Operand
	seen := make(map[Operand]int)
	note := func(op Operand) {
		if _, ok := seen[op]; !ok {
			seen[op] = len(verts)
			verts = append(verts, op)
		}
	}
	for _, c := range q.Conds {
		note(c.Left)
		note(c.Right)
	}

	// Union-find over vertex indices, merging along colocation edges.
	parent := make([]int, len(verts))
	for i := range parent {
		parent[i] = i
	}
	var find func(int) int
	find = func(x int) int {
		for parent[x] != x {
			parent[x] = parent[parent[x]]
			x = parent[x]
		}
		return x
	}
	union := func(a, b int) {
		ra, rb := find(a), find(b)
		if ra != rb {
			if rb < ra {
				ra, rb = rb, ra
			}
			parent[rb] = ra
		}
	}
	var seqIdx []int
	for i, c := range q.Conds {
		if c.Pred.IsSequence() {
			seqIdx = append(seqIdx, i)
			continue
		}
		union(seen[c.Left], seen[c.Right])
	}

	// Materialise components ordered by their smallest vertex index so the
	// decomposition is deterministic.
	rootToComp := make(map[int]int)
	d := &Decomposition{Query: q, CompOf: make(map[Operand]int), SeqCondIdx: seqIdx}
	for vi, op := range verts {
		root := find(vi)
		ci, ok := rootToComp[root]
		if !ok {
			ci = len(d.Components)
			rootToComp[root] = ci
			d.Components = append(d.Components, Component{ID: ci})
		}
		d.Components[ci].Vertices = append(d.Components[ci].Vertices, op)
		d.CompOf[op] = ci
	}
	for ci := range d.Components {
		vs := d.Components[ci].Vertices
		slices.SortFunc(vs, func(a, b Operand) int {
			if c := cmp.Compare(a.Rel, b.Rel); c != 0 {
				return c
			}
			return cmp.Compare(a.Attr, b.Attr)
		})
	}
	for i, c := range q.Conds {
		if c.Pred.IsSequence() {
			continue
		}
		ci := d.CompOf[c.Left]
		d.Components[ci].CondIdx = append(d.Components[ci].CondIdx, i)
	}

	// Derive the component less-than order from sequence conditions and
	// detect contradictions.
	type pair struct{ a, b int }
	lessSet := make(map[pair]struct{})
	for _, i := range seqIdx {
		c := q.Conds[i]
		lc, rc := d.CompOf[c.Left], d.CompOf[c.Right]
		var lesser, greater int
		if c.Pred.LessThanOrder() == interval.LeftLess {
			lesser, greater = lc, rc
		} else {
			lesser, greater = rc, lc
		}
		if lesser == greater {
			// A sequence condition within one component: its two vertices
			// were merged via colocation edges. Cell consistency cannot
			// help; the condition is still checked at the reducer.
			continue
		}
		if _, conflict := lessSet[pair{greater, lesser}]; conflict {
			d.Contradictory = true
		}
		if _, dup := lessSet[pair{lesser, greater}]; !dup {
			lessSet[pair{lesser, greater}] = struct{}{}
			d.Less = append(d.Less, [2]int{lesser, greater})
		}
	}
	slices.SortFunc(d.Less, func(a, b [2]int) int {
		if c := cmp.Compare(a[0], b[0]); c != 0 {
			return c
		}
		return cmp.Compare(a[1], b[1])
	})
	return d
}

// NumComponents is the dimensionality l of the reducer space used by
// All-Seq-Matrix and Gen-Matrix.
func (d *Decomposition) NumComponents() int { return len(d.Components) }

// VerticesOfRel returns the vertices of relation rel grouped by the
// component they belong to. Gen-Matrix routes each tuple according to all of
// its attributes jointly.
func (d *Decomposition) VerticesOfRel(rel int) map[int][]Operand {
	out := make(map[int][]Operand)
	for op, ci := range d.CompOf {
		if op.Rel == rel {
			out[ci] = append(out[ci], op)
		}
	}
	return out
}

// SubQueryConds returns the conditions of component ci's encapsulated
// colocation query Q_C.
func (d *Decomposition) SubQueryConds(ci int) []Condition {
	conds := make([]Condition, 0, len(d.Components[ci].CondIdx))
	for _, i := range d.Components[ci].CondIdx {
		conds = append(conds, d.Query.Conds[i])
	}
	return conds
}

// String summarises the decomposition.
func (d *Decomposition) String() string {
	var b []byte
	for _, c := range d.Components {
		b = append(b, fmt.Sprintf("C%d{", c.ID)...)
		for i, v := range c.Vertices {
			if i > 0 {
				b = append(b, ' ')
			}
			b = append(b, d.Query.operandString(v)...)
		}
		b = append(b, "} "...)
	}
	for _, l := range d.Less {
		b = append(b, fmt.Sprintf("C%d<C%d ", l[0], l[1])...)
	}
	return string(b)
}
