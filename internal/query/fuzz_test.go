package query

import (
	"testing"
)

// FuzzParse checks that arbitrary input never panics the parser and that
// every successfully parsed query round-trips through its String form.
func FuzzParse(f *testing.F) {
	for _, seed := range []string{
		"R1 overlaps R2",
		"R1 overlaps R2 and R2 contains R3 and R3 overlaps R4",
		"R1.I before R2.I and R1.A = R3.A",
		"a < b AND b Overlapped-By c",
		"",
		"and and and",
		"R1..A overlaps R2",
		"R1 overlaps R1",
		"R1 \x00 R2",
		"R1 overlaps R2 and",
		"🚀 overlaps R2",
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, input string) {
		q, err := Parse(input)
		if err != nil {
			return
		}
		if err := q.Validate(); err != nil {
			t.Fatalf("Parse(%q) returned an invalid query: %v", input, err)
		}
		rendered := q.String()
		q2, err := Parse(rendered)
		if err != nil {
			t.Fatalf("re-parse of %q (from %q) failed: %v", rendered, input, err)
		}
		if q2.String() != rendered {
			t.Fatalf("String round trip unstable: %q -> %q", rendered, q2.String())
		}
		if len(q2.Conds) != len(q.Conds) || len(q2.Relations) != len(q.Relations) {
			t.Fatalf("round trip changed shape: %q vs %q", input, rendered)
		}
	})
}
