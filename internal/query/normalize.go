package query

import (
	"intervaljoin/internal/interval"
	"intervaljoin/internal/relation"
)

// Normalize returns an equivalent query in which every condition uses the
// canonical direction of its predicate — the form whose less-than order
// runs left to right (before, meets, overlaps, contains, starts, finishes
// with swapped operands, equals) — by swapping operands of inverse-form
// conditions. Relation order and indices are preserved; only conditions
// change. Normalisation makes queries comparable ("R2 after R1" and
// "R1 before R2" normalise identically up to operand order) and simplifies
// downstream pattern matching.
func (q *Query) Normalize() *Query {
	out := &Query{}
	// Schemas are immutable after parsing; copy the slice header level.
	out.Relations = make([]relation.Schema, len(q.Relations))
	copy(out.Relations, q.Relations)
	out.Conds = make([]Condition, len(q.Conds))
	for i, c := range q.Conds {
		out.Conds[i] = normalizeCondition(c)
	}
	return out
}

// normalizeCondition swaps the operands of inverse-form predicates.
func normalizeCondition(c Condition) Condition {
	if canonicalPredicate(c.Pred) {
		return c
	}
	return Condition{Left: c.Right, Pred: c.Pred.Inverse(), Right: c.Left}
}

// canonicalPredicate reports whether p is kept as-is: the seven relations
// whose inverse is listed second in each Allen pair, plus equals.
func canonicalPredicate(p interval.Predicate) bool {
	switch p {
	case interval.Before, interval.Meets, interval.Overlaps, interval.Contains,
		interval.Starts, interval.Finishes, interval.Equals:
		return true
	case interval.After, interval.MetBy, interval.OverlappedBy,
		interval.ContainedBy, interval.StartedBy, interval.FinishedBy:
		return false
	default:
		panic("query: canonicalPredicate: predicate outside the 13 Allen relations")
	}
}
