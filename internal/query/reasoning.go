package query

import (
	"intervaljoin/internal/interval"
)

// This file implements satisfiability reasoning over a query's condition
// graph with Allen's composition table (Allen, CACM 1983): path-consistency
// propagation tightens the feasible relation set between every pair of
// (relation, attribute) vertices; an empty set proves the query's output is
// empty for every possible input, letting a driver skip the join entirely.
// The check is sound but not complete — path consistency over the full
// interval algebra does not decide satisfiability in general — so a true
// Propagate result means "not provably empty".
//
// The network tracks the *canonical* relation (interval.Relate) between
// vertex pairs. Canonical relations are unique per pair even for degenerate
// point intervals — where several Allen predicates can hold at once — so a
// condition constrains a pair to interval.CanonicalSet(pred), and the
// composition table over canonical relations stays sound for real-valued
// attributes. AssumeProper switches both to the tighter textbook semantics,
// valid only when no interval is a point.

// Network is the constraint network of a query: feasible canonical Allen
// relation sets between every pair of vertices.
type Network struct {
	verts []Operand
	index map[Operand]int
	// feasible[i][j] is the set of canonical relations possible between
	// vertex i's interval and vertex j's.
	feasible [][]interval.PredicateSet
	proper   bool
}

// NewNetwork builds the constraint network of q: every condition restricts
// its vertex pair to the canonical relations consistent with its predicate
// (intersected when several conditions relate the same pair); all other
// pairs start fully unconstrained. With assumeProper, conditions pin pairs
// to exactly their predicate and the textbook composition table is used —
// tighter, but only sound when every data interval has non-zero length.
func NewNetwork(q *Query, assumeProper bool) *Network {
	n := &Network{index: make(map[Operand]int), proper: assumeProper}
	note := func(op Operand) {
		if _, ok := n.index[op]; !ok {
			n.index[op] = len(n.verts)
			n.verts = append(n.verts, op)
		}
	}
	for _, c := range q.Conds {
		note(c.Left)
		note(c.Right)
	}
	size := len(n.verts)
	n.feasible = make([][]interval.PredicateSet, size)
	for i := range n.feasible {
		n.feasible[i] = make([]interval.PredicateSet, size)
		for j := range n.feasible[i] {
			if i == j {
				n.feasible[i][j] = interval.NewPredicateSet(interval.Equals)
			} else {
				n.feasible[i][j] = interval.AllSet
			}
		}
	}
	for _, c := range q.Conds {
		li, ri := n.index[c.Left], n.index[c.Right]
		allowed := interval.CanonicalSet(c.Pred)
		if assumeProper {
			allowed = interval.NewPredicateSet(c.Pred)
		}
		n.feasible[li][ri] = n.feasible[li][ri].Intersect(allowed)
		n.feasible[ri][li] = n.feasible[li][ri].Inverse()
	}
	return n
}

// Feasible returns the current canonical relation set between two vertices
// (in the order given). Unknown vertices yield the full set.
func (n *Network) Feasible(a, b Operand) interval.PredicateSet {
	ai, aok := n.index[a]
	bi, bok := n.index[b]
	if !aok || !bok {
		return interval.AllSet
	}
	return n.feasible[ai][bi]
}

// Propagate runs path-consistency to a fixpoint: for every vertex triple
// (i, j, k), the feasible set between i and k is intersected with the
// composition of (i, j) and (j, k). It returns false as soon as any pair's
// set empties — the query is then provably unsatisfiable.
func (n *Network) Propagate() bool {
	size := len(n.verts)
	for i := 0; i < size; i++ {
		for j := 0; j < size; j++ {
			if i != j && n.feasible[i][j].Empty() {
				return false // contradictory conditions on one pair
			}
		}
	}
	compose := interval.ComposeSets
	if n.proper {
		compose = interval.ComposeSetsProper
	}
	for changed := true; changed; {
		changed = false
		for i := 0; i < size; i++ {
			for j := 0; j < size; j++ {
				if i == j {
					continue
				}
				for k := 0; k < size; k++ {
					if k == i || k == j {
						continue
					}
					composed := compose(n.feasible[i][j], n.feasible[j][k])
					tightened := n.feasible[i][k].Intersect(composed)
					if tightened != n.feasible[i][k] {
						n.feasible[i][k] = tightened
						n.feasible[k][i] = tightened.Inverse()
						changed = true
					}
					if tightened.Empty() {
						return false
					}
				}
			}
		}
	}
	return true
}

// ProvablyEmpty reports whether path-consistency reasoning proves the
// query's output empty for every input, including inputs with degenerate
// (real-valued) intervals. The converse does not hold: a false result does
// not guarantee a non-empty output.
func ProvablyEmpty(q *Query) bool {
	if len(q.Conds) == 0 {
		return false
	}
	return !NewNetwork(q, false).Propagate()
}

// ProvablyEmptyProper is ProvablyEmpty under the additional assumption that
// every data interval is proper (Start < End); it proves strictly more
// queries empty (e.g. "A equals B and A meets B", satisfiable only by
// points).
func ProvablyEmptyProper(q *Query) bool {
	if len(q.Conds) == 0 {
		return false
	}
	return !NewNetwork(q, true).Propagate()
}
