package query

import (
	"strings"
	"testing"

	"intervaljoin/internal/interval"
	"intervaljoin/internal/relation"
)

func TestParsePaperQueries(t *testing.T) {
	cases := []struct {
		name  string
		input string
		rels  int
		conds int
		class Class
	}{
		{"Q0", "R1 overlaps R2 and R2 contains R3 and R3 overlaps R4", 4, 3, Colocation},
		{"Q1", "R1 overlaps R2 and R2 overlaps R3", 3, 2, Colocation},
		{"Q2", "R1 before R2 and R2 before R3", 3, 2, Sequence},
		{"Q3", "R1 overlaps R2 and R2 overlaps R3 and R2 before R4 and R4 overlaps R5", 5, 4, Hybrid},
		{"Q4", "R1 before R2 and R1 overlaps R3", 3, 2, Hybrid},
		{"Q5", "R1.I before R2.I and R1.I overlaps R3.I and R1.A = R3.A and R2.B = R3.B", 3, 4, General},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			q, err := Parse(tc.input)
			if err != nil {
				t.Fatalf("Parse: %v", err)
			}
			if len(q.Relations) != tc.rels {
				t.Errorf("relations = %d, want %d", len(q.Relations), tc.rels)
			}
			if len(q.Conds) != tc.conds {
				t.Errorf("conditions = %d, want %d", len(q.Conds), tc.conds)
			}
			if got := q.Classify(); got != tc.class {
				t.Errorf("class = %v, want %v", got, tc.class)
			}
		})
	}
}

func TestParseErrors(t *testing.T) {
	for _, input := range []string{
		"",
		"R1",
		"R1 overlaps",
		"R1 overlaps R2 and",
		"R1 sideways R2",
		"R1 overlaps R1",       // self-reference
		"R1 overlaps R2 or R3", // 'or' is an operand here, then input ends mid-condition
		"R1 . overlaps R2",
		"R1 overlaps R2 # comment",
	} {
		if _, err := Parse(input); err == nil {
			t.Errorf("Parse(%q) succeeded, want error", input)
		}
	}
}

func TestParseOperatorsAndCase(t *testing.T) {
	q, err := Parse("R1 < R2 AND R2 Overlapped-By R3 and R1.A == R3.A")
	if err != nil {
		t.Fatal(err)
	}
	if q.Conds[0].Pred != interval.Before {
		t.Errorf("pred 0 = %v, want before", q.Conds[0].Pred)
	}
	if q.Conds[1].Pred != interval.OverlappedBy {
		t.Errorf("pred 1 = %v, want overlappedby", q.Conds[1].Pred)
	}
	if q.Conds[2].Pred != interval.Equals {
		t.Errorf("pred 2 = %v, want equals", q.Conds[2].Pred)
	}
}

func TestStringRoundTrip(t *testing.T) {
	for _, input := range []string{
		"R1 overlaps R2 and R2 contains R3",
		"R1 before R2 and R1 overlaps R3",
	} {
		q := MustParse(input)
		q2, err := Parse(q.String())
		if err != nil {
			t.Fatalf("re-parse of %q: %v", q.String(), err)
		}
		if q2.String() != q.String() {
			t.Errorf("round trip changed query: %q -> %q", q.String(), q2.String())
		}
	}
}

func TestClassifyGeneralByArity(t *testing.T) {
	// A query whose conditions use one attribute each but whose schema has
	// extra attributes is still General (Gen-Matrix handles payload attrs).
	q := New()
	q.AddRelation(relation.NewSchema("R1", "I", "A"))
	q.AddRelation(relation.NewSchema("R2"))
	if err := q.AddCondition("R1", "I", interval.Overlaps, "R2", ""); err != nil {
		t.Fatal(err)
	}
	if got := q.Classify(); got != General {
		t.Errorf("class = %v, want general", got)
	}
}

func TestEvalTuples(t *testing.T) {
	q := MustParse("R1 overlaps R2 and R2 contains R3")
	mk := func(s, e int64) relation.Tuple {
		return relation.Tuple{Attrs: []interval.Interval{interval.New(s, e)}}
	}
	if !q.EvalTuples([]relation.Tuple{mk(0, 10), mk(5, 30), mk(8, 20)}) {
		t.Error("satisfying assignment rejected")
	}
	if q.EvalTuples([]relation.Tuple{mk(0, 10), mk(20, 30), mk(22, 25)}) {
		t.Error("non-overlapping assignment accepted")
	}
}

func TestEvalPartial(t *testing.T) {
	q := MustParse("R1 overlaps R2 and R2 contains R3")
	mk := func(s, e int64) relation.Tuple {
		return relation.Tuple{Attrs: []interval.Interval{interval.New(s, e)}}
	}
	tuples := []relation.Tuple{mk(0, 10), mk(20, 30), {}}
	present := []bool{true, true, false}
	// R1 overlaps R2 fails and both are present -> partial eval fails.
	if q.EvalPartial(tuples, present) {
		t.Error("partial eval accepted a violated bound condition")
	}
	// Only R2 present: the R1-R2 and R2-R3 conditions are unbound.
	present = []bool{false, true, false}
	if !q.EvalPartial(tuples, present) {
		t.Error("partial eval rejected with no bound condition")
	}
}

func TestLessThanPairs(t *testing.T) {
	q := MustParse("R1 overlaps R2 and R3 containedby R2")
	got := q.LessThanPairs()
	// overlaps: R1 < R2. containedby(R3, R2): R2 < R3.
	want := [][2]int{{0, 1}, {1, 2}}
	if len(got) != 2 || got[0] != want[0] || got[1] != want[1] {
		t.Fatalf("LessThanPairs = %v, want %v", got, want)
	}
}

func TestDecomposeQ3(t *testing.T) {
	// Q3 (Figure 6): components C1={R1,R2,R3}, C2={R4,R5}, C1 < C2.
	q := MustParse("R1 overlaps R2 and R2 overlaps R3 and R2 before R4 and R4 overlaps R5")
	d := Decompose(q)
	if d.NumComponents() != 2 {
		t.Fatalf("components = %d, want 2; %s", d.NumComponents(), d)
	}
	if len(d.Components[0].Vertices) != 3 || len(d.Components[1].Vertices) != 2 {
		t.Fatalf("component sizes wrong: %s", d)
	}
	if len(d.Less) != 1 || d.Less[0] != [2]int{0, 1} {
		t.Fatalf("Less = %v, want [[0 1]]", d.Less)
	}
	if d.Contradictory {
		t.Fatal("Q3 flagged contradictory")
	}
	if len(d.SeqCondIdx) != 1 || d.SeqCondIdx[0] != 2 {
		t.Fatalf("SeqCondIdx = %v", d.SeqCondIdx)
	}
	if got := len(d.SubQueryConds(0)); got != 2 {
		t.Fatalf("component 0 sub-query has %d conditions, want 2", got)
	}
}

func TestDecomposeQ5(t *testing.T) {
	// Q5 (Section 9): four components C1={R1.I,R3.I}, C2={R2.I},
	// C3={R1.A,R3.A}, C4={R2.B,R3.B}; only C1 < C2 ordered.
	q := MustParse("R1.I before R2.I and R1.I overlaps R3.I and R1.A = R3.A and R2.B = R3.B")
	d := Decompose(q)
	if d.NumComponents() != 4 {
		t.Fatalf("components = %d, want 4; %s", d.NumComponents(), d)
	}
	sizes := []int{}
	for _, c := range d.Components {
		sizes = append(sizes, len(c.Vertices))
	}
	// Deterministic order of first appearance: C(R1.I,R3.I), C(R2.I),
	// C(R1.A,R3.A), C(R2.B,R3.B).
	want := []int{2, 1, 2, 2}
	for i := range want {
		if sizes[i] != want[i] {
			t.Fatalf("component sizes = %v, want %v (%s)", sizes, want, d)
		}
	}
	if len(d.Less) != 1 || d.Less[0] != [2]int{0, 1} {
		t.Fatalf("Less = %v, want [[0 1]]", d.Less)
	}
}

func TestDecomposeContradiction(t *testing.T) {
	q := MustParse("R1 before R2 and R2 before R1x and R1x overlaps R1")
	// Components: {R1, R1x} (via overlaps), {R2}. R1's component < R2's
	// component (before), and R2's component < R1x's = R1's component:
	// contradiction.
	d := Decompose(q)
	if !d.Contradictory {
		t.Fatalf("contradiction not detected: %s", d)
	}
}

func TestDecomposePureColocation(t *testing.T) {
	q := MustParse("R1 overlaps R2 and R2 contains R3 and R3 overlaps R4")
	d := Decompose(q)
	if d.NumComponents() != 1 {
		t.Fatalf("components = %d, want 1", d.NumComponents())
	}
	if len(d.Less) != 0 || len(d.SeqCondIdx) != 0 {
		t.Fatal("pure colocation query has sequence artifacts")
	}
}

func TestDecomposePureSequence(t *testing.T) {
	q := MustParse("R1 before R2 and R2 before R3")
	d := Decompose(q)
	if d.NumComponents() != 3 {
		t.Fatalf("components = %d, want 3", d.NumComponents())
	}
	if len(d.Less) != 2 {
		t.Fatalf("Less = %v, want two ordered pairs", d.Less)
	}
}

func TestVerticesOfRel(t *testing.T) {
	q := MustParse("R1.I before R2.I and R1.A = R3.A")
	d := Decompose(q)
	m := d.VerticesOfRel(0) // R1 has two vertices in two components
	if len(m) != 2 {
		t.Fatalf("R1 vertices span %d components, want 2", len(m))
	}
	total := 0
	for _, vs := range m {
		total += len(vs)
	}
	if total != 2 {
		t.Fatalf("R1 has %d vertices, want 2", total)
	}
}

func TestValidate(t *testing.T) {
	q := New()
	if err := q.Validate(); err == nil {
		t.Error("empty query validated")
	}
	q = MustParse("R1 overlaps R2")
	q.Conds[0].Right.Rel = 99
	if err := q.Validate(); err == nil || !strings.Contains(err.Error(), "relation") {
		t.Errorf("out-of-range relation not caught: %v", err)
	}
}
