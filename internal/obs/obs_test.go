package obs

import (
	"bytes"
	"encoding/json"
	"os"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestDisabledTracerIsNilSafe(t *testing.T) {
	var tr *Tracer
	if tr.Enabled() {
		t.Fatal("nil tracer reports enabled")
	}
	if tr.PprofLabels() {
		t.Fatal("nil tracer wants pprof labels")
	}
	l := tr.Acquire()
	if l != nil {
		t.Fatalf("nil tracer handed out lane %v", l)
	}
	if got := l.ID(); got != -1 {
		t.Fatalf("nil lane ID = %d, want -1", got)
	}
	start := l.Begin()
	if !start.IsZero() {
		t.Fatal("nil lane Begin read the clock")
	}
	l.End(CatMap, "task", start)
	l.Event(CatMap, "retry")
	l.Count("pairs", 3)
	l.Observe("width", 17)
	tr.Release(l)
	if s := tr.Snapshot(); s != nil {
		t.Fatalf("nil tracer snapshot = %v, want nil", s)
	}
	if tr.Now() != 0 {
		t.Fatal("nil tracer Now != 0")
	}
}

// TestDisabledTracerZeroCost is the overhead smoke check scripts/check.sh
// runs: the disabled tracing path must not allocate, so the engine's
// always-compiled instrumentation stays near-free when no tracer is
// attached.
func TestDisabledTracerZeroCost(t *testing.T) {
	var tr *Tracer
	allocs := testing.AllocsPerRun(1000, func() {
		l := tr.Acquire()
		start := l.Begin()
		l.End(CatReduce, "task", start)
		l.Event(CatMap, "retry")
		l.Count("pairs", 1)
		l.Observe("width", 42)
		tr.Release(l)
	})
	if allocs != 0 {
		t.Fatalf("disabled tracer path allocates %.1f per op, want 0", allocs)
	}
}

func TestLaneSpansAndSnapshot(t *testing.T) {
	tr := New(Options{})
	l := tr.Acquire()
	start := l.Begin()
	time.Sleep(time.Millisecond)
	l.End(CatMap, "map:task0", start, Arg{Key: "algorithm", Val: "rccis"})
	l.Event(CatMap, "retry")
	l.Count("retries", 2)
	l.Observe("width", 0)
	l.Observe("width", 5)
	l.Observe("width", 1024)
	tr.Release(l)

	s := tr.Snapshot()
	if len(s.Spans) != 2 {
		t.Fatalf("got %d spans, want 2", len(s.Spans))
	}
	sp := s.Spans[0]
	if sp.Cat != CatMap || sp.Name != "map:task0" || sp.Dur <= 0 {
		t.Fatalf("bad span %+v", sp)
	}
	if len(sp.Args) != 1 || sp.Args[0].Val != "rccis" {
		t.Fatalf("bad span args %+v", sp.Args)
	}
	if s.Counters["retries"] != 2 {
		t.Fatalf("counters = %v", s.Counters)
	}
	h := s.Hists["width"]
	if h.Count != 3 || h.Min != 0 || h.Max != 1024 || h.Sum != 1029 {
		t.Fatalf("hist = %+v", h)
	}
	if h.Buckets[0] != 1 || h.Buckets[3] != 1 || h.Buckets[11] != 1 {
		t.Fatalf("hist buckets = %v", h.Buckets)
	}
}

func TestLanePoolReuse(t *testing.T) {
	tr := New(Options{})
	a := tr.Acquire()
	id := a.ID()
	tr.Release(a)
	b := tr.Acquire()
	if b.ID() != id {
		t.Fatalf("released lane not reused: got id %d, want %d", b.ID(), id)
	}
	c := tr.Acquire() // b still held: must be a fresh lane
	if c.ID() == b.ID() {
		t.Fatal("two held lanes share an id")
	}
}

func TestConcurrentLanesRaceFree(t *testing.T) {
	tr := New(Options{LaneSpanCap: 64})
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			l := tr.Acquire()
			defer tr.Release(l)
			for i := 0; i < 200; i++ {
				start := l.Begin()
				l.End(CatReduce, "task", start)
				l.Observe("pairs", int64(i))
			}
		}()
	}
	wg.Wait()
	s := tr.Snapshot()
	if len(s.Lanes) == 0 || len(s.Lanes) > 8 {
		t.Fatalf("lanes = %d, want 1..8", len(s.Lanes))
	}
	// 200 spans per goroutine with cap 64: rings must have wrapped and
	// counted drops, retaining exactly cap spans per lane.
	var dropped int64
	for _, l := range s.Lanes {
		dropped += l.Dropped
	}
	if want := int64(8*200) - int64(len(s.Lanes)*64); dropped != want {
		t.Fatalf("dropped = %d, want %d", dropped, want)
	}
	if s.Hists["pairs"].Count != 8*200 {
		t.Fatalf("hist count = %d, want %d", s.Hists["pairs"].Count, 8*200)
	}
}

func TestPhaseWallsUnion(t *testing.T) {
	s := &Snapshot{Spans: []Span{
		{Cat: CatMap, Start: 0, Dur: 10 * time.Millisecond},
		{Cat: CatMap, Start: 5 * time.Millisecond, Dur: 10 * time.Millisecond}, // overlaps: union 0..15
		{Cat: CatMap, Start: 20 * time.Millisecond, Dur: 5 * time.Millisecond}, // disjoint: +5
		{Cat: CatReduce, Start: 8 * time.Millisecond, Dur: 4 * time.Millisecond},
	}}
	walls := s.PhaseWalls(0)
	if got, want := walls[CatMap], 20*time.Millisecond; got != want {
		t.Fatalf("map wall = %v, want %v", got, want)
	}
	if got, want := walls[CatReduce], 4*time.Millisecond; got != want {
		t.Fatalf("reduce wall = %v, want %v", got, want)
	}
	// A mark clips spans: only the tail past the mark counts.
	walls = s.PhaseWalls(12 * time.Millisecond)
	if got, want := walls[CatMap], 8*time.Millisecond; got != want {
		t.Fatalf("marked map wall = %v, want %v", got, want)
	}
	if _, ok := walls[CatReduce]; ok {
		t.Fatal("reduce span fully before mark still counted")
	}
}

func TestChromeTraceRoundTrips(t *testing.T) {
	tr := New(Options{})
	l := tr.Acquire()
	start := l.Begin()
	l.End(CatCycle, "cycle:test/join", start, Arg{Key: "cycle", Val: "1"})
	l.Event(CatMap, "retry")
	tr.Release(l)

	var buf bytes.Buffer
	if err := WriteChromeTrace(&buf, tr.Snapshot()); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("trace is not valid JSON: %v", err)
	}
	var phases []string
	for _, ev := range doc.TraceEvents {
		phases = append(phases, ev["ph"].(string))
	}
	joined := strings.Join(phases, "")
	// Metadata (process + thread names), one complete event, one instant.
	if !strings.Contains(joined, "M") || !strings.Contains(joined, "X") || !strings.Contains(joined, "i") {
		t.Fatalf("trace event phases = %v", phases)
	}
	for _, ev := range doc.TraceEvents {
		if ev["ph"] == "X" {
			if ev["name"] != "cycle:test/join" {
				t.Fatalf("X event name = %v", ev["name"])
			}
			args := ev["args"].(map[string]any)
			if args["cycle"] != "1" {
				t.Fatalf("X event args = %v", args)
			}
		}
	}
}

func TestSkewReport(t *testing.T) {
	pairs := map[int64]int64{0: 10, 1: 10, 2: 100, 3: 10}
	times := map[int64]time.Duration{2: time.Second}
	r := NewSkewReport(pairs, times, 2)
	if r.Reducers != 4 || r.TotalPairs != 130 || r.MaxPairs != 100 {
		t.Fatalf("report = %+v", r)
	}
	if want := 100 / 32.5; r.Imbalance != want {
		t.Fatalf("imbalance = %v, want %v", r.Imbalance, want)
	}
	if len(r.Top) != 2 || r.Top[0].Key != 2 || r.Top[0].Time != time.Second {
		t.Fatalf("top = %+v", r.Top)
	}
	if r.Top[1].Key != 0 { // ties broken by ascending key
		t.Fatalf("top = %+v", r.Top)
	}
	var buf bytes.Buffer
	r.WriteTable(&buf)
	out := buf.String()
	for _, want := range []string{"imbalance=3.08", "straggler", "#"} {
		if !strings.Contains(out, want) {
			t.Fatalf("table missing %q:\n%s", want, out)
		}
	}

	empty := NewSkewReport(nil, nil, 5)
	if empty.Reducers != 0 || empty.Imbalance != 0 {
		t.Fatalf("empty report = %+v", empty)
	}
	empty.WriteTable(&buf) // must not panic
}

func TestReportJSONRoundTrip(t *testing.T) {
	tr := New(Options{})
	l := tr.Acquire()
	start := l.Begin()
	l.End(CatReduce, "task", start)
	l.Observe("range_emit_width", 7)
	l.Count("spill_records", 3)
	tr.Release(l)

	r := NewReport("test-run", tr.Snapshot())
	r.Skew = NewSkewReport(map[int64]int64{1: 5}, nil, 3)
	r.Model = &SerializedModel{Cycles: 2, Pairs: 100}

	dir := t.TempDir()
	path := dir + "/metrics.json"
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := r.WriteJSON(f); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	got, err := LoadReport(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Name != "test-run" || got.Model.Cycles != 2 || got.Model.Pairs != 100 {
		t.Fatalf("round trip = %+v", got)
	}
	if got.Phases[CatReduce].Spans != 1 || got.Phases[CatReduce].WallNS <= 0 {
		t.Fatalf("phases = %+v", got.Phases)
	}
	if got.Hists["range_emit_width"].Sum != 7 || got.Counters["spill_records"] != 3 {
		t.Fatalf("hists/counters = %+v / %+v", got.Hists, got.Counters)
	}
	if got.Skew.Reducers != 1 {
		t.Fatalf("skew = %+v", got.Skew)
	}
}
