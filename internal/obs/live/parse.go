package live

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
)

// Sample is one parsed exposition sample line.
type Sample struct {
	// Name is the sample's full name (histogram series keep their
	// _bucket/_sum/_count suffix).
	Name string
	// Labels are the sample's labels in source order.
	Labels []Label
	// Value is the sample value.
	Value float64
}

// Label returns the value of the named label ("" when absent).
func (s Sample) Label(name string) string {
	for _, l := range s.Labels {
		if l.Name == name {
			return l.Value
		}
	}
	return ""
}

// Parse reads a Prometheus text-format (v0.0.4) exposition document and
// returns its samples, validating as it goes. It rejects what a strict
// scraper would: invalid metric or label names, malformed label syntax,
// unparseable values, an unknown TYPE, a TYPE or HELP line after the
// family's first sample, duplicate TYPE/HELP lines, duplicate series
// (same name and label set twice), and histograms whose cumulative
// buckets decrease, lack a +Inf bucket, or disagree with _count.
func Parse(r io.Reader) ([]Sample, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	var samples []Sample
	seenSeries := make(map[string]int) // name + label set -> line
	typeOf := make(map[string]string)  // family -> type
	helpOf := make(map[string]bool)    // family -> HELP seen
	familySampled := make(map[string]bool)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimRight(sc.Text(), " \t")
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			if err := parseMetaLine(line, lineNo, typeOf, helpOf, familySampled); err != nil {
				return nil, err
			}
			continue
		}
		s, err := parseSampleLine(line, lineNo)
		if err != nil {
			return nil, err
		}
		fam := familyOf(s.Name, typeOf)
		familySampled[fam] = true
		key := s.Name + "\x00" + canonicalLabels(s.Labels)
		if prev, dup := seenSeries[key]; dup {
			return nil, fmt.Errorf("line %d: duplicate series %s (first at line %d)", lineNo, s.Name, prev)
		}
		seenSeries[key] = lineNo
		samples = append(samples, s)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if err := checkHistograms(samples, typeOf); err != nil {
		return nil, err
	}
	return samples, nil
}

// Validate checks the document and discards the samples.
func Validate(r io.Reader) error {
	_, err := Parse(r)
	return err
}

// parseMetaLine handles # HELP / # TYPE lines (other comments pass).
func parseMetaLine(line string, lineNo int, typeOf map[string]string, helpOf, familySampled map[string]bool) error {
	fields := strings.SplitN(line, " ", 4)
	if len(fields) < 2 {
		return nil
	}
	switch fields[1] {
	case "TYPE":
		if len(fields) < 4 {
			return fmt.Errorf("line %d: malformed TYPE line", lineNo)
		}
		name, typ := fields[2], strings.TrimSpace(fields[3])
		if !ValidName(name) {
			return fmt.Errorf("line %d: invalid metric name %q in TYPE line", lineNo, name)
		}
		switch typ {
		case TypeCounter, TypeGauge, TypeHistogram, "summary", "untyped":
		default:
			return fmt.Errorf("line %d: unknown metric type %q", lineNo, typ)
		}
		if _, dup := typeOf[name]; dup {
			return fmt.Errorf("line %d: duplicate TYPE line for %s", lineNo, name)
		}
		if familySampled[name] {
			return fmt.Errorf("line %d: TYPE line for %s after its samples", lineNo, name)
		}
		typeOf[name] = typ
	case "HELP":
		if len(fields) < 3 {
			return fmt.Errorf("line %d: malformed HELP line", lineNo)
		}
		name := fields[2]
		if !ValidName(name) {
			return fmt.Errorf("line %d: invalid metric name %q in HELP line", lineNo, name)
		}
		if helpOf[name] {
			return fmt.Errorf("line %d: duplicate HELP line for %s", lineNo, name)
		}
		if familySampled[name] {
			return fmt.Errorf("line %d: HELP line for %s after its samples", lineNo, name)
		}
		helpOf[name] = true
	}
	return nil
}

// parseSampleLine parses `name{label="value",...} value [timestamp]`.
func parseSampleLine(line string, lineNo int) (Sample, error) {
	var s Sample
	rest := line
	brace := strings.IndexByte(rest, '{')
	space := strings.IndexByte(rest, ' ')
	if brace >= 0 && (space < 0 || brace < space) {
		s.Name = rest[:brace]
		rest = rest[brace+1:]
		labels, tail, err := parseLabels(rest, lineNo)
		if err != nil {
			return s, err
		}
		s.Labels = labels
		rest = tail
	} else {
		if space < 0 {
			return s, fmt.Errorf("line %d: sample line has no value", lineNo)
		}
		s.Name = rest[:space]
		rest = rest[space:]
	}
	if !ValidName(s.Name) {
		return s, fmt.Errorf("line %d: invalid metric name %q", lineNo, s.Name)
	}
	fields := strings.Fields(rest)
	if len(fields) < 1 || len(fields) > 2 {
		return s, fmt.Errorf("line %d: want value [timestamp] after series, got %q", lineNo, strings.TrimSpace(rest))
	}
	v, err := parseValue(fields[0])
	if err != nil {
		return s, fmt.Errorf("line %d: bad sample value %q", lineNo, fields[0])
	}
	s.Value = v
	if len(fields) == 2 {
		if _, err := strconv.ParseInt(fields[1], 10, 64); err != nil {
			return s, fmt.Errorf("line %d: bad timestamp %q", lineNo, fields[1])
		}
	}
	return s, nil
}

// parseLabels consumes `label="value",...}` and returns the remainder of
// the line after the closing brace.
func parseLabels(rest string, lineNo int) ([]Label, string, error) {
	var labels []Label
	for {
		rest = strings.TrimLeft(rest, " \t")
		if rest == "" {
			return nil, "", fmt.Errorf("line %d: unterminated label set", lineNo)
		}
		if rest[0] == '}' {
			return labels, rest[1:], nil
		}
		eq := strings.IndexByte(rest, '=')
		if eq < 0 {
			return nil, "", fmt.Errorf("line %d: label without =", lineNo)
		}
		name := strings.TrimSpace(rest[:eq])
		if !ValidLabel(name) && name != "le" && name != "quantile" {
			return nil, "", fmt.Errorf("line %d: invalid label name %q", lineNo, name)
		}
		rest = rest[eq+1:]
		if rest == "" || rest[0] != '"' {
			return nil, "", fmt.Errorf("line %d: label %s value is not quoted", lineNo, name)
		}
		rest = rest[1:]
		var val strings.Builder
		for {
			if rest == "" {
				return nil, "", fmt.Errorf("line %d: unterminated label value for %s", lineNo, name)
			}
			c := rest[0]
			if c == '"' {
				rest = rest[1:]
				break
			}
			if c == '\\' {
				if len(rest) < 2 {
					return nil, "", fmt.Errorf("line %d: dangling escape in label %s", lineNo, name)
				}
				switch rest[1] {
				case '\\':
					val.WriteByte('\\')
				case '"':
					val.WriteByte('"')
				case 'n':
					val.WriteByte('\n')
				default:
					return nil, "", fmt.Errorf("line %d: bad escape \\%c in label %s", lineNo, rest[1], name)
				}
				rest = rest[2:]
				continue
			}
			val.WriteByte(c)
			rest = rest[1:]
		}
		labels = append(labels, Label{Name: name, Value: val.String()})
		rest = strings.TrimLeft(rest, " \t")
		if rest != "" && rest[0] == ',' {
			rest = rest[1:]
		}
	}
}

func parseValue(s string) (float64, error) {
	switch s {
	case "+Inf", "Inf":
		return math.Inf(1), nil
	case "-Inf":
		return math.Inf(-1), nil
	case "NaN", "nan":
		return math.NaN(), nil
	}
	return strconv.ParseFloat(s, 64)
}

// familyOf strips a histogram sample suffix when the base family is
// declared as a histogram, so _bucket/_sum/_count samples attach to it.
func familyOf(name string, typeOf map[string]string) string {
	for _, suf := range []string{"_bucket", "_sum", "_count"} {
		if base, ok := strings.CutSuffix(name, suf); ok {
			if typeOf[base] == TypeHistogram {
				return base
			}
		}
	}
	return name
}

// canonicalLabels renders a sorted label key for duplicate detection.
func canonicalLabels(labels []Label) string {
	if len(labels) == 0 {
		return ""
	}
	sorted := append([]Label(nil), labels...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Name < sorted[j].Name })
	var b strings.Builder
	for _, l := range sorted {
		b.WriteString(l.Name)
		b.WriteByte('\xfe')
		b.WriteString(l.Value)
		b.WriteByte('\xff')
	}
	return b.String()
}

// checkHistograms verifies every declared histogram family: per series
// group, bucket le bounds parse and ascend, cumulative counts never
// decrease, a +Inf bucket exists, and its count equals the _count sample.
func checkHistograms(samples []Sample, typeOf map[string]string) error {
	type group struct {
		les    []float64
		cums   []float64
		hasInf bool
		infVal float64
		count  float64
		seenCt bool
	}
	groups := make(map[string]*group)
	key := func(base string, labels []Label) string {
		var kept []Label
		for _, l := range labels {
			if l.Name != "le" {
				kept = append(kept, l)
			}
		}
		return base + "\x00" + canonicalLabels(kept)
	}
	for _, s := range samples {
		if base, ok := strings.CutSuffix(s.Name, "_bucket"); ok && typeOf[base] == TypeHistogram {
			g := groups[key(base, s.Labels)]
			if g == nil {
				g = &group{}
				groups[key(base, s.Labels)] = g
			}
			le := s.Label("le")
			if le == "" {
				return fmt.Errorf("histogram %s has a bucket without an le label", base)
			}
			b, err := parseValue(le)
			if err != nil {
				return fmt.Errorf("histogram %s has unparseable le %q", base, le)
			}
			if math.IsInf(b, 1) {
				g.hasInf = true
				g.infVal = s.Value
			} else {
				g.les = append(g.les, b)
				g.cums = append(g.cums, s.Value)
			}
			continue
		}
		if base, ok := strings.CutSuffix(s.Name, "_count"); ok && typeOf[base] == TypeHistogram {
			g := groups[key(base, s.Labels)]
			if g == nil {
				g = &group{}
				groups[key(base, s.Labels)] = g
			}
			g.count = s.Value
			g.seenCt = true
		}
	}
	for k, g := range groups {
		base := k[:strings.IndexByte(k, '\x00')]
		prev := math.Inf(-1)
		var prevCum float64
		for i, le := range g.les {
			if le <= prev {
				return fmt.Errorf("histogram %s buckets out of order (le %g after %g)", base, le, prev)
			}
			if g.cums[i] < prevCum {
				return fmt.Errorf("histogram %s cumulative bucket counts decrease at le %g", base, le)
			}
			prev, prevCum = le, g.cums[i]
		}
		if !g.hasInf {
			return fmt.Errorf("histogram %s has no +Inf bucket", base)
		}
		if g.infVal < prevCum {
			return fmt.Errorf("histogram %s +Inf bucket below its last finite bucket", base)
		}
		if g.seenCt && g.infVal != g.count {
			return fmt.Errorf("histogram %s +Inf bucket %g disagrees with _count %g", base, g.infVal, g.count)
		}
	}
	return nil
}
