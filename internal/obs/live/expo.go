package live

import (
	"bufio"
	"io"
	"math"
	"strconv"
	"strings"
)

// ContentType is the HTTP Content-Type of the text exposition format.
const ContentType = "text/plain; version=0.0.4; charset=utf-8"

// WriteText renders the snapshot in the Prometheus text exposition format
// (v0.0.4): a # HELP and # TYPE line per family, then its series, with
// histograms expanded into cumulative _bucket{le=...} series plus _sum
// and _count. Output is deterministic (families by name, series by label
// values, buckets by bound) so golden tests can diff it. A nil snapshot
// writes nothing.
func WriteText(w io.Writer, s *Snapshot) error {
	bw := bufio.NewWriter(w)
	if s != nil {
		for _, f := range s.Families {
			bw.WriteString("# HELP ")
			bw.WriteString(f.Name)
			bw.WriteByte(' ')
			bw.WriteString(escapeHelp(f.Help))
			bw.WriteByte('\n')
			bw.WriteString("# TYPE ")
			bw.WriteString(f.Name)
			bw.WriteByte(' ')
			bw.WriteString(f.Type)
			bw.WriteByte('\n')
			for _, sr := range f.Series {
				if sr.Hist != nil {
					writeHistSeries(bw, f.Name, sr)
					continue
				}
				writeSample(bw, f.Name, sr.Labels, "", "", sr.Value)
			}
		}
	}
	return bw.Flush()
}

// writeHistSeries expands one histogram series into its exposition form.
func writeHistSeries(bw *bufio.Writer, name string, sr Series) {
	h := sr.Hist
	var cum int64
	for i, b := range h.Bounds {
		cum += h.Counts[i]
		writeSample(bw, name+"_bucket", sr.Labels, "le", formatFloat(b), float64(cum))
	}
	// The +Inf bucket equals _count by construction.
	if len(h.Counts) > len(h.Bounds) {
		cum += h.Counts[len(h.Bounds)]
	}
	writeSample(bw, name+"_bucket", sr.Labels, "le", "+Inf", float64(cum))
	writeSample(bw, name+"_sum", sr.Labels, "", "", h.Sum)
	writeSample(bw, name+"_count", sr.Labels, "", "", float64(h.Count))
}

// writeSample writes one sample line, appending the extra label (le)
// when set.
func writeSample(bw *bufio.Writer, name string, labels []Label, extraName, extraVal string, v float64) {
	bw.WriteString(name)
	if len(labels) > 0 || extraName != "" {
		bw.WriteByte('{')
		first := true
		for _, l := range labels {
			if !first {
				bw.WriteByte(',')
			}
			first = false
			bw.WriteString(l.Name)
			bw.WriteString(`="`)
			bw.WriteString(escapeLabelValue(l.Value))
			bw.WriteByte('"')
		}
		if extraName != "" {
			if !first {
				bw.WriteByte(',')
			}
			bw.WriteString(extraName)
			bw.WriteString(`="`)
			bw.WriteString(extraVal)
			bw.WriteByte('"')
		}
		bw.WriteByte('}')
	}
	bw.WriteByte(' ')
	bw.WriteString(formatFloat(v))
	bw.WriteByte('\n')
}

// formatFloat renders a sample value: integral values print without a
// fraction, specials per the exposition format.
func formatFloat(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	case math.IsNaN(v):
		return "NaN"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// escapeHelp escapes backslash and newline in a HELP text.
func escapeHelp(s string) string {
	if !strings.ContainsAny(s, "\\\n") {
		return s
	}
	var b strings.Builder
	for _, r := range s {
		switch r {
		case '\\':
			b.WriteString(`\\`)
		case '\n':
			b.WriteString(`\n`)
		default:
			b.WriteRune(r)
		}
	}
	return b.String()
}

// escapeLabelValue escapes backslash, double quote and newline in a label
// value.
func escapeLabelValue(s string) string {
	if !strings.ContainsAny(s, "\\\"\n") {
		return s
	}
	var b strings.Builder
	for _, r := range s {
		switch r {
		case '\\':
			b.WriteString(`\\`)
		case '"':
			b.WriteString(`\"`)
		case '\n':
			b.WriteString(`\n`)
		default:
			b.WriteRune(r)
		}
	}
	return b.String()
}
