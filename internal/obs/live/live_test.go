package live

import (
	"math"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestCounterGaugeConcurrent(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("ij_test_ops_total", "operations")
	g := r.Gauge("ij_test_depth", "queue depth")
	const goroutines, perG = 8, 10_000
	var wg sync.WaitGroup
	for i := 0; i < goroutines; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < perG; j++ {
				c.Inc()
				g.Inc()
				g.Dec()
			}
		}()
	}
	wg.Wait()
	if got := c.Value(); got != goroutines*perG {
		t.Errorf("counter lost increments: got %d, want %d", got, goroutines*perG)
	}
	if got := g.Value(); got != 0 {
		t.Errorf("gauge drifted: got %d, want 0", got)
	}
	if c.Add(-5); c.Value() != goroutines*perG {
		t.Error("counter accepted a negative delta")
	}
}

func TestHistConcurrentAndBuckets(t *testing.T) {
	r := NewRegistry()
	h := r.Hist("ij_test_width", "sample widths")
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func(base int64) {
			defer wg.Done()
			for v := int64(0); v < 1000; v++ {
				h.Observe(base + v)
			}
		}(int64(i) * 1000)
	}
	wg.Wait()
	d := h.snapshot()
	if d.Count != 4000 {
		t.Fatalf("hist count %d, want 4000", d.Count)
	}
	var bucketSum int64
	for _, n := range d.Counts {
		bucketSum += n
	}
	if bucketSum != d.Count {
		t.Errorf("bucket sum %d != count %d", bucketSum, d.Count)
	}
	wantSum := float64(3999*4000/2) + 0 // sum of 0..3999
	if d.Sum != wantSum {
		t.Errorf("hist sum %g, want %g", d.Sum, wantSum)
	}
}

// TestLatencyQuantileBounds checks the quantile estimate lands inside the
// bucket that truly contains the quantile: the estimate of the
// q-quantile of a known sample set must lie within the bucket bounds
// bracketing the exact value.
func TestLatencyQuantileBounds(t *testing.T) {
	r := NewRegistry()
	h := r.Latency("ij_test_latency_seconds", "latencies")
	// 1..1000 ms uniformly: exact p50 = 500ms (bucket (0.25, 0.5]),
	// p95 = 950ms (bucket (0.5, 1]), p99 = 990ms (same).
	for ms := 1; ms <= 1000; ms++ {
		h.Observe(time.Duration(ms) * time.Millisecond)
	}
	d := h.snapshot()
	cases := []struct {
		q      float64
		lo, hi float64 // bucket bounds bracketing the exact quantile
	}{
		{0.50, 0.25, 0.5},
		{0.95, 0.5, 1},
		{0.99, 0.5, 1},
	}
	for _, c := range cases {
		got := d.Quantile(c.q)
		if got < c.lo || got > c.hi {
			t.Errorf("p%g = %g, want within (%g, %g]", c.q*100, got, c.lo, c.hi)
		}
	}
	if mean := d.Mean(); math.Abs(mean-0.5005) > 1e-9 {
		t.Errorf("mean %g, want 0.5005", mean)
	}
}

func TestHistQuantileEmpty(t *testing.T) {
	var d *HistData
	if d.Quantile(0.5) != 0 || d.Mean() != 0 {
		t.Error("nil HistData quantile/mean not zero")
	}
}

func TestSnapshotMerge(t *testing.T) {
	mk := func(c1, g1 int64, obs []time.Duration) *Snapshot {
		r := NewRegistry()
		r.Counter("ij_m_total", "c").Add(c1)
		r.Gauge("ij_m_inflight", "g").Set(g1)
		h := r.Latency("ij_m_latency_seconds", "h")
		for _, d := range obs {
			h.Observe(d)
		}
		v := r.CounterVec("ij_m_requests_total", "v", "code")
		v.With("200").Add(c1)
		return r.Snapshot()
	}
	a := mk(3, 1, []time.Duration{time.Millisecond, time.Second})
	b := mk(5, 2, []time.Duration{10 * time.Millisecond})
	a.Merge(b)

	if f := a.Family("ij_m_total"); f == nil || f.Series[0].Value != 8 {
		t.Fatalf("merged counter: %+v", f)
	}
	if f := a.Family("ij_m_inflight"); f == nil || f.Series[0].Value != 3 {
		t.Fatalf("merged gauge: %+v", f)
	}
	f := a.Family("ij_m_latency_seconds")
	if f == nil || f.Series[0].Hist == nil {
		t.Fatal("merged histogram missing")
	}
	if got := f.Series[0].Hist.Count; got != 3 {
		t.Errorf("merged hist count %d, want 3", got)
	}
	wantSum := 1.011
	if got := f.Series[0].Hist.Sum; math.Abs(got-wantSum) > 1e-9 {
		t.Errorf("merged hist sum %g, want %g", got, wantSum)
	}
	if f := a.Family("ij_m_requests_total"); f == nil || f.Series[0].Value != 8 {
		t.Fatalf("merged labeled counter: %+v", f)
	}
	// Merged snapshots must still expose cleanly.
	var sb strings.Builder
	if err := WriteText(&sb, a); err != nil {
		t.Fatal(err)
	}
	if err := Validate(strings.NewReader(sb.String())); err != nil {
		t.Fatalf("merged snapshot fails validation: %v", err)
	}
}

func TestRegistryPanicsOnBadRegistration(t *testing.T) {
	cases := []struct {
		name string
		fn   func(r *Registry)
	}{
		{"invalid name", func(r *Registry) { r.Counter("ij_bad-name", "h") }},
		{"empty help", func(r *Registry) { r.Counter("ij_ok_total", "") }},
		{"duplicate", func(r *Registry) { r.Counter("ij_dup_total", "h"); r.Counter("ij_dup_total", "h") }},
		{"bad label", func(r *Registry) { r.CounterVec("ij_vec_total", "h", "__reserved") }},
		{"no labels", func(r *Registry) { r.CounterVec("ij_vec2_total", "h") }},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: no panic", c.name)
				}
			}()
			c.fn(NewRegistry())
		})
	}
}

func TestVecReusesSeries(t *testing.T) {
	r := NewRegistry()
	v := r.CounterVec("ij_codes_total", "by code", "code")
	v.With("200").Inc()
	v.With("200").Inc()
	v.With("500").Inc()
	s := r.Snapshot()
	f := s.Family("ij_codes_total")
	if f == nil || len(f.Series) != 2 {
		t.Fatalf("want 2 series, got %+v", f)
	}
	if f.Series[0].Value != 2 || f.Series[0].Labels[0].Value != "200" {
		t.Errorf("code=200 series: %+v", f.Series[0])
	}
}

func TestCollectorRunsAtSnapshot(t *testing.T) {
	r := NewRegistry()
	g := r.FloatGauge("ij_bridge_ratio", "bridged ratio")
	calls := 0
	r.OnCollect(func() { calls++; g.Set(0.25) })
	s := r.Snapshot()
	if calls != 1 {
		t.Fatalf("collector ran %d times, want 1", calls)
	}
	if f := s.Family("ij_bridge_ratio"); f == nil || f.Series[0].Value != 0.25 {
		t.Fatalf("bridged gauge: %+v", f)
	}
}

func TestValidNames(t *testing.T) {
	for _, ok := range []string{"ij_x", "a:b", "_x", "ij_query_latency_seconds"} {
		if !ValidName(ok) {
			t.Errorf("ValidName(%q) = false", ok)
		}
	}
	for _, bad := range []string{"", "1x", "ij-x", "ij x", "ij_x\n"} {
		if ValidName(bad) {
			t.Errorf("ValidName(%q) = true", bad)
		}
	}
	for _, ok := range []string{"code", "x_1"} {
		if !ValidLabel(ok) {
			t.Errorf("ValidLabel(%q) = false", ok)
		}
	}
	for _, bad := range []string{"", "__name__", "1x", "a-b"} {
		if ValidLabel(bad) {
			t.Errorf("ValidLabel(%q) = true", bad)
		}
	}
}
