// Package live is the engine's service-facing telemetry layer: a
// stdlib-only, lock-free metrics registry whose series are scraped over
// HTTP in the Prometheus text exposition format (v0.0.4).
//
// Where the parent obs package records *per-run* execution spans for
// post-mortem analysis, live holds *cumulative* process-lifetime series —
// counters, gauges, and histograms with snapshot quantiles — that a
// long-running service (cmd/ijoind, and the coming master/worker split)
// exposes on GET /metrics. The design rules:
//
//   - The hot path is lock-free: counters, gauges and histogram buckets
//     are plain atomics; the only mutexes guard registration and labeled
//     series creation, which happen at startup or at worst once per new
//     label value.
//   - Disabled telemetry costs a nil check and zero allocations: every
//     method is safe on a nil *Registry, nil metric handle, or nil vec,
//     mirroring the parent package's nil-tracer contract.
//     TestLiveDisabledZeroCost pins this.
//   - Metric names are validated strictly at registration (and the
//     metricname ijlint analyzer additionally demands literal, ij_-prefixed
//     names at every call site), so a scrape can never emit a series the
//     exposition format rejects.
//
// Snapshots are mergeable (counters and histograms sum, gauges add),
// which is what a master aggregating worker scrapes will need.
package live

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// ValidName reports whether s is a valid Prometheus metric name:
// [a-zA-Z_:][a-zA-Z0-9_:]*.
func ValidName(s string) bool {
	if s == "" {
		return false
	}
	for i := 0; i < len(s); i++ {
		c := s[i]
		ok := c == '_' || c == ':' ||
			(c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
			(i > 0 && c >= '0' && c <= '9')
		if !ok {
			return false
		}
	}
	return true
}

// ValidLabel reports whether s is a valid Prometheus label name:
// [a-zA-Z_][a-zA-Z0-9_]*. Names starting with __ are reserved.
func ValidLabel(s string) bool {
	if s == "" || strings.HasPrefix(s, "__") {
		return false
	}
	for i := 0; i < len(s); i++ {
		c := s[i]
		ok := c == '_' ||
			(c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
			(i > 0 && c >= '0' && c <= '9')
		if !ok {
			return false
		}
	}
	return true
}

// Metric family types, as exposed on the TYPE line.
const (
	TypeCounter   = "counter"
	TypeGauge     = "gauge"
	TypeHistogram = "histogram"
)

// Registry holds metric families and hands out their series handles. A
// nil *Registry is a valid, disabled registry: every constructor returns
// a nil handle (itself a valid no-op), Snapshot returns nil, and OnCollect
// does nothing.
type Registry struct {
	mu         sync.Mutex
	byName     map[string]*family
	collectors []func()
}

// NewRegistry returns an empty, enabled registry.
func NewRegistry() *Registry {
	return &Registry{byName: make(map[string]*family)}
}

// family is one registered metric family: a name/help/type triple plus
// its series children (one for unlabeled metrics, one per label-value
// combination for vecs).
type family struct {
	name   string
	help   string
	typ    string
	labels []string

	mu    sync.Mutex
	byKey map[string]*child
	order []*child
}

// child is one concrete series of a family.
type child struct {
	labelVals []string
	counter   *Counter
	gauge     *Gauge
	fgauge    *FloatGauge
	hist      *Hist
	latency   *LatencyHist
}

// register panics on an invalid or duplicate name — registration happens
// at startup, and a bad metric name must fail loudly, not at scrape time.
func (r *Registry) register(name, help, typ string, labels []string) *family {
	if !ValidName(name) {
		panic(fmt.Sprintf("live: invalid metric name %q", name))
	}
	if help == "" {
		panic(fmt.Sprintf("live: metric %s has no help string", name))
	}
	for _, l := range labels {
		if !ValidLabel(l) {
			panic(fmt.Sprintf("live: metric %s has invalid label name %q", name, l))
		}
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, dup := r.byName[name]; dup {
		panic(fmt.Sprintf("live: metric %s registered twice", name))
	}
	f := &family{name: name, help: help, typ: typ, labels: labels, byKey: make(map[string]*child)}
	r.byName[name] = f
	return f
}

// Counter registers and returns an unlabeled counter. Panics on an
// invalid or duplicate name; nil registries return a nil (no-op) handle.
func (r *Registry) Counter(name, help string) *Counter {
	if r == nil {
		return nil
	}
	f := r.register(name, help, TypeCounter, nil)
	c := &Counter{}
	f.addChild(nil, &child{counter: c})
	return c
}

// Gauge registers and returns an unlabeled integer gauge.
func (r *Registry) Gauge(name, help string) *Gauge {
	if r == nil {
		return nil
	}
	f := r.register(name, help, TypeGauge, nil)
	g := &Gauge{}
	f.addChild(nil, &child{gauge: g})
	return g
}

// FloatGauge registers and returns an unlabeled float gauge (ratios,
// fractions).
func (r *Registry) FloatGauge(name, help string) *FloatGauge {
	if r == nil {
		return nil
	}
	f := r.register(name, help, TypeGauge, nil)
	g := &FloatGauge{}
	f.addChild(nil, &child{fgauge: g})
	return g
}

// Hist registers and returns a power-of-two histogram of int64 samples
// (pair counts, window spans): bucket i holds 2^(i-1) <= v < 2^i, matching
// the parent obs package's bucketing.
func (r *Registry) Hist(name, help string) *Hist {
	if r == nil {
		return nil
	}
	f := r.register(name, help, TypeHistogram, nil)
	h := &Hist{}
	f.addChild(nil, &child{hist: h})
	return h
}

// Latency registers and returns a latency histogram observing seconds
// over fixed exponential bounds, with p50/p95/p99 available from its
// snapshot.
func (r *Registry) Latency(name, help string) *LatencyHist {
	if r == nil {
		return nil
	}
	f := r.register(name, help, TypeHistogram, nil)
	h := &LatencyHist{}
	f.addChild(nil, &child{latency: h})
	return h
}

// CounterVec registers a labeled counter family; series are created by
// With. Panics unless at least one label name is given.
func (r *Registry) CounterVec(name, help string, labels ...string) *CounterVec {
	if r == nil {
		return nil
	}
	if len(labels) == 0 {
		panic(fmt.Sprintf("live: counter vec %s needs at least one label", name))
	}
	return &CounterVec{fam: r.register(name, help, TypeCounter, labels)}
}

// GaugeVec registers a labeled gauge family; series are created by With.
func (r *Registry) GaugeVec(name, help string, labels ...string) *GaugeVec {
	if r == nil {
		return nil
	}
	if len(labels) == 0 {
		panic(fmt.Sprintf("live: gauge vec %s needs at least one label", name))
	}
	return &GaugeVec{fam: r.register(name, help, TypeGauge, labels)}
}

// OnCollect registers fn to run at the start of every Snapshot — the hook
// that bridges pull-model stats (cache accounting, runtime stats) into
// gauges right before a scrape.
func (r *Registry) OnCollect(fn func()) {
	if r == nil || fn == nil {
		return
	}
	r.mu.Lock()
	r.collectors = append(r.collectors, fn)
	r.mu.Unlock()
}

// addChild links a series into the family. Label values arrive validated
// by the vec lookup.
func (f *family) addChild(vals []string, c *child) {
	c.labelVals = vals
	f.mu.Lock()
	f.byKey[labelKey(vals)] = c
	f.order = append(f.order, c)
	f.mu.Unlock()
}

// labelKey joins label values into a map key; \xff cannot appear in a
// validated label value's UTF-8.
func labelKey(vals []string) string { return strings.Join(vals, "\xff") }

// lookup returns the child for the label values, creating it via mk on
// first use.
func (f *family) lookup(vals []string, mk func() *child) *child {
	if len(vals) != len(f.labels) {
		panic(fmt.Sprintf("live: metric %s wants %d label values, got %d", f.name, len(f.labels), len(vals)))
	}
	key := labelKey(vals)
	f.mu.Lock()
	defer f.mu.Unlock()
	if c, ok := f.byKey[key]; ok {
		return c
	}
	c := mk()
	c.labelVals = append([]string(nil), vals...)
	f.byKey[key] = c
	f.order = append(f.order, c)
	return c
}

// CounterVec is a labeled counter family.
type CounterVec struct{ fam *family }

// With returns the counter for the given label values, creating the
// series on first use. Nil vecs return a nil (no-op) counter. Hot paths
// should resolve their handles once at startup, not per operation.
func (v *CounterVec) With(values ...string) *Counter {
	if v == nil {
		return nil
	}
	return v.fam.lookup(values, func() *child { return &child{counter: &Counter{}} }).counter
}

// GaugeVec is a labeled gauge family.
type GaugeVec struct{ fam *family }

// With returns the gauge for the given label values, creating the series
// on first use. Nil vecs return a nil (no-op) gauge.
func (v *GaugeVec) With(values ...string) *Gauge {
	if v == nil {
		return nil
	}
	return v.fam.lookup(values, func() *child { return &child{gauge: &Gauge{}} }).gauge
}

// Counter is a monotonically increasing series. All methods are safe on a
// nil receiver and safe for concurrent use.
type Counter struct{ v atomic.Int64 }

// Inc adds one.
func (c *Counter) Inc() {
	if c != nil {
		c.v.Add(1)
	}
}

// Add adds n; negative deltas are ignored (counters are monotone).
func (c *Counter) Add(n int64) {
	if c != nil && n > 0 {
		c.v.Add(n)
	}
}

// Value returns the current count.
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a series that can go up and down.
type Gauge struct{ v atomic.Int64 }

// Set stores v.
func (g *Gauge) Set(v int64) {
	if g != nil {
		g.v.Store(v)
	}
}

// Add adds n (negative to subtract).
func (g *Gauge) Add(n int64) {
	if g != nil {
		g.v.Add(n)
	}
}

// Inc adds one.
func (g *Gauge) Inc() { g.Add(1) }

// Dec subtracts one.
func (g *Gauge) Dec() { g.Add(-1) }

// Value returns the current value.
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// FloatGauge is a float-valued gauge (ratios); stored as math.Float64bits
// in a uint64 atomic.
type FloatGauge struct{ bits atomic.Uint64 }

// Set stores v.
func (g *FloatGauge) Set(v float64) {
	if g != nil {
		g.bits.Store(math.Float64bits(v))
	}
}

// Value returns the current value.
func (g *FloatGauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

// ---- snapshots ----

// Label is one name=value pair on a series.
type Label struct {
	Name  string
	Value string
}

// Series is one series in a snapshot: either a scalar Value
// (counter/gauge) or histogram data.
type Series struct {
	Labels []Label
	Value  float64
	Hist   *HistData
}

// Family is one metric family in a snapshot.
type Family struct {
	Name   string
	Help   string
	Type   string
	Series []Series
}

// Snapshot is a point-in-time copy of every registered series, ordered by
// family name and series label values — deterministic, so exposition
// output is stable and diffable.
type Snapshot struct {
	Families []Family
}

// Snapshot runs the collectors, then copies every family. Returns nil on
// a disabled registry.
func (r *Registry) Snapshot() *Snapshot {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	collectors := append([]func(){}, r.collectors...)
	r.mu.Unlock()
	for _, fn := range collectors {
		fn()
	}
	r.mu.Lock()
	fams := make([]*family, 0, len(r.byName))
	for _, f := range r.byName {
		fams = append(fams, f)
	}
	r.mu.Unlock()
	sort.Slice(fams, func(i, j int) bool { return fams[i].name < fams[j].name })
	s := &Snapshot{Families: make([]Family, 0, len(fams))}
	for _, f := range fams {
		s.Families = append(s.Families, f.snapshot())
	}
	return s
}

func (f *family) snapshot() Family {
	f.mu.Lock()
	children := append([]*child(nil), f.order...)
	f.mu.Unlock()
	sort.Slice(children, func(i, j int) bool {
		return labelKey(children[i].labelVals) < labelKey(children[j].labelVals)
	})
	out := Family{Name: f.name, Help: f.help, Type: f.typ}
	for _, c := range children {
		s := Series{}
		for i, v := range c.labelVals {
			s.Labels = append(s.Labels, Label{Name: f.labels[i], Value: v})
		}
		switch {
		case c.counter != nil:
			s.Value = float64(c.counter.Value())
		case c.gauge != nil:
			s.Value = float64(c.gauge.Value())
		case c.fgauge != nil:
			s.Value = c.fgauge.Value()
		case c.hist != nil:
			s.Hist = c.hist.snapshot()
		case c.latency != nil:
			s.Hist = c.latency.snapshot()
		}
		out.Series = append(out.Series, s)
	}
	return out
}

// Merge accumulates other into s: families match by name, series by label
// set. Counters and histograms sum; gauges add too (inflight across
// workers aggregates additively — a max-merging consumer can recompute
// from per-worker snapshots). Families or series only present in other
// are appended.
func (s *Snapshot) Merge(other *Snapshot) {
	if s == nil || other == nil {
		return
	}
	byName := make(map[string]int, len(s.Families))
	for i, f := range s.Families {
		byName[f.Name] = i
	}
	for _, of := range other.Families {
		i, ok := byName[of.Name]
		if !ok {
			s.Families = append(s.Families, of)
			continue
		}
		f := &s.Families[i]
		byKey := make(map[string]int, len(f.Series))
		for j, sr := range f.Series {
			byKey[seriesKey(sr.Labels)] = j
		}
		for _, osr := range of.Series {
			j, ok := byKey[seriesKey(osr.Labels)]
			if !ok {
				f.Series = append(f.Series, osr)
				continue
			}
			sr := &f.Series[j]
			if sr.Hist != nil || osr.Hist != nil {
				if sr.Hist == nil {
					sr.Hist = osr.Hist
				} else {
					sr.Hist.merge(osr.Hist)
				}
				continue
			}
			sr.Value += osr.Value
		}
	}
	sort.Slice(s.Families, func(i, j int) bool { return s.Families[i].Name < s.Families[j].Name })
}

func seriesKey(labels []Label) string {
	var b strings.Builder
	for _, l := range labels {
		b.WriteString(l.Name)
		b.WriteByte('\xfe')
		b.WriteString(l.Value)
		b.WriteByte('\xff')
	}
	return b.String()
}

// Family returns the named family, or nil.
func (s *Snapshot) Family(name string) *Family {
	if s == nil {
		return nil
	}
	for i := range s.Families {
		if s.Families[i].Name == name {
			return &s.Families[i]
		}
	}
	return nil
}
