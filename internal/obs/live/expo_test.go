package live

import (
	"strings"
	"testing"
	"time"
)

// TestExpositionGolden pins the exact text-format output of a small
// registry: family ordering (by name), TYPE/HELP lines, label rendering,
// histogram expansion into cumulative buckets, escaping. Any drift in the
// exposition writer shows up as a readable diff here.
func TestExpositionGolden(t *testing.T) {
	r := NewRegistry()
	r.Counter("ij_requests_total", "requests served").Add(42)
	r.Gauge("ij_inflight", "queries in the join path").Set(3)
	r.FloatGauge("ij_hit_ratio", "span hit ratio").Set(0.75)
	v := r.CounterVec("ij_codes_total", "responses by status code", "code")
	v.With("200").Add(40)
	v.With("429").Add(2)
	h := r.Hist("ij_span", "window spans")
	h.Observe(0)
	h.Observe(1)
	h.Observe(3)
	h.Observe(3)
	e := r.GaugeVec("ij_esc", "label \\ escaping\ncheck", "q")
	e.With(`a"b\c`).Set(1)

	var sb strings.Builder
	if err := WriteText(&sb, r.Snapshot()); err != nil {
		t.Fatal(err)
	}
	const want = `# HELP ij_codes_total responses by status code
# TYPE ij_codes_total counter
ij_codes_total{code="200"} 40
ij_codes_total{code="429"} 2
# HELP ij_esc label \\ escaping\ncheck
# TYPE ij_esc gauge
ij_esc{q="a\"b\\c"} 1
# HELP ij_hit_ratio span hit ratio
# TYPE ij_hit_ratio gauge
ij_hit_ratio 0.75
# HELP ij_inflight queries in the join path
# TYPE ij_inflight gauge
ij_inflight 3
# HELP ij_requests_total requests served
# TYPE ij_requests_total counter
ij_requests_total 42
# HELP ij_span window spans
# TYPE ij_span histogram
ij_span_bucket{le="0"} 1
ij_span_bucket{le="1"} 2
ij_span_bucket{le="3"} 4
ij_span_bucket{le="+Inf"} 4
ij_span_sum 7
ij_span_count 4
`
	if got := sb.String(); got != want {
		t.Errorf("exposition drifted:\n--- got ---\n%s--- want ---\n%s", got, want)
	}
	if err := Validate(strings.NewReader(sb.String())); err != nil {
		t.Errorf("golden output fails its own validator: %v", err)
	}
}

// TestParseRoundTrip checks a realistic snapshot (latency histogram
// included) survives write → parse with values intact.
func TestParseRoundTrip(t *testing.T) {
	r := NewRegistry()
	lat := r.Latency("ij_query_latency_seconds", "query latency")
	lat.Observe(2 * time.Millisecond)
	lat.Observe(40 * time.Millisecond)
	lat.Observe(3 * time.Second)
	r.Counter("ij_admission_rejected_total", "rejected").Add(7)

	var sb strings.Builder
	if err := WriteText(&sb, r.Snapshot()); err != nil {
		t.Fatal(err)
	}
	samples, err := Parse(strings.NewReader(sb.String()))
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	byName := make(map[string][]Sample)
	for _, s := range samples {
		byName[s.Name] = append(byName[s.Name], s)
	}
	if v := byName["ij_admission_rejected_total"]; len(v) != 1 || v[0].Value != 7 {
		t.Errorf("counter round trip: %+v", v)
	}
	if v := byName["ij_query_latency_seconds_count"]; len(v) != 1 || v[0].Value != 3 {
		t.Errorf("hist count round trip: %+v", v)
	}
	buckets := byName["ij_query_latency_seconds_bucket"]
	if len(buckets) != len(latencyBounds)+1 {
		t.Fatalf("want %d bucket samples, got %d", len(latencyBounds)+1, len(buckets))
	}
	if inf := buckets[len(buckets)-1]; inf.Label("le") != "+Inf" || inf.Value != 3 {
		t.Errorf("+Inf bucket: %+v", inf)
	}
}

func TestValidatorRejects(t *testing.T) {
	cases := []struct {
		name string
		doc  string
		frag string
	}{
		{
			"duplicate series",
			"a_total 1\na_total 2\n",
			"duplicate series",
		},
		{
			"duplicate labeled series",
			`a{x="1",y="2"} 1` + "\n" + `a{y="2",x="1"} 1` + "\n",
			"duplicate series",
		},
		{
			"invalid name",
			"bad-name 1\n",
			"invalid metric name",
		},
		{
			"bad value",
			"a_total abc\n",
			"bad sample value",
		},
		{
			"unknown type",
			"# TYPE a_total pie\n",
			"unknown metric type",
		},
		{
			"type after samples",
			"a_total 1\n# TYPE a_total counter\n",
			"after its samples",
		},
		{
			"unterminated labels",
			`a{x="1` + "\n",
			"unterminated",
		},
		{
			"bucket order",
			"# TYPE h histogram\n" + `h_bucket{le="2"} 1` + "\n" + `h_bucket{le="1"} 2` + "\n" + `h_bucket{le="+Inf"} 3` + "\n",
			"out of order",
		},
		{
			"cumulative decrease",
			"# TYPE h histogram\n" + `h_bucket{le="1"} 5` + "\n" + `h_bucket{le="2"} 3` + "\n" + `h_bucket{le="+Inf"} 5` + "\n",
			"decrease",
		},
		{
			"missing inf",
			"# TYPE h histogram\n" + `h_bucket{le="1"} 5` + "\n",
			"+Inf",
		},
		{
			"count mismatch",
			"# TYPE h histogram\n" + `h_bucket{le="+Inf"} 5` + "\nh_count 4\n",
			"disagrees with _count",
		},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			err := Validate(strings.NewReader(c.doc))
			if err == nil {
				t.Fatalf("validator accepted %q", c.doc)
			}
			if !strings.Contains(err.Error(), c.frag) {
				t.Errorf("error %q does not mention %q", err, c.frag)
			}
		})
	}
	// And a healthy document passes.
	ok := "# HELP a_total fine\n# TYPE a_total counter\na_total 3\n" +
		`b{code="200"} 1.5 1700000000000` + "\n"
	if err := Validate(strings.NewReader(ok)); err != nil {
		t.Errorf("validator rejected a healthy document: %v", err)
	}
}

func TestCumulativeQuantile(t *testing.T) {
	les := []float64{1, 2, 4}
	cums := []float64{10, 30, 40}
	// Median rank 20 falls in the (1,2] bucket, halfway through it.
	if got := CumulativeQuantile(les, cums, 40, 0.5); got < 1 || got > 2 {
		t.Errorf("p50 = %g, want within (1,2]", got)
	}
	if got := CumulativeQuantile(les, cums, 40, 1); got != 4 {
		t.Errorf("p100 = %g, want 4", got)
	}
	if got := CumulativeQuantile(nil, nil, 0, 0.5); got != 0 {
		t.Errorf("empty quantile = %g, want 0", got)
	}
}
