package live

import (
	"math"
	"math/bits"
	"sync/atomic"
	"time"
)

// Hist is a lock-free power-of-two histogram of int64 samples: bucket 0
// counts v <= 0, bucket i counts 2^(i-1) <= v < 2^i — the same bucketing
// as the parent obs package's per-run histograms, so live and per-run
// views of the same quantity line up.
type Hist struct {
	count   atomic.Int64
	sum     atomic.Int64
	buckets [65]atomic.Int64
}

// Observe records one sample. Safe on a nil receiver and for concurrent
// use.
func (h *Hist) Observe(v int64) {
	if h == nil {
		return
	}
	h.count.Add(1)
	h.sum.Add(v)
	h.buckets[pow2Bucket(v)].Add(1)
}

// pow2Bucket maps a sample to its bucket index; non-positive samples
// clamp to bucket 0.
func pow2Bucket(v int64) int {
	if v <= 0 {
		return 0
	}
	return bits.Len64(uint64(v))
}

// snapshot renders the histogram's occupied prefix as HistData: the upper
// bound of bucket i is 2^i - 1 (inclusive, exact for integer samples);
// trailing empty buckets are dropped and the final bucket acts as +Inf.
func (h *Hist) snapshot() *HistData {
	top := 0
	var counts [65]int64
	for i := range h.buckets {
		if n := h.buckets[i].Load(); n > 0 {
			counts[i] = n
			top = i
		}
	}
	d := &HistData{
		Count: h.count.Load(),
		Sum:   float64(h.sum.Load()),
	}
	for i := 0; i <= top; i++ {
		if i < 64 {
			d.Bounds = append(d.Bounds, float64(uint64(1)<<uint(i)-1))
		}
		d.Counts = append(d.Counts, counts[i])
	}
	// Counts has one entry per bound plus the +Inf overflow bucket.
	if len(d.Counts) == len(d.Bounds) {
		d.Counts = append(d.Counts, 0)
	}
	return d
}

// latencyBounds are the upper bucket bounds, in seconds, of a
// LatencyHist: 100µs to 60s, roughly 2.5x apart, chosen to straddle the
// service's observed query walls (sub-millisecond cache hits up to
// multi-second cold scans). The +Inf bucket is implicit.
var latencyBounds = [...]float64{
	0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05,
	0.1, 0.25, 0.5, 1, 2.5, 5, 10, 30, 60,
}

// LatencyHist is a lock-free histogram of durations exposed in seconds,
// with quantile estimation over its fixed exponential bounds.
type LatencyHist struct {
	count   atomic.Int64
	sumNS   atomic.Int64
	buckets [len(latencyBounds) + 1]atomic.Int64
}

// Observe records one duration. Safe on a nil receiver and for concurrent
// use.
func (h *LatencyHist) Observe(d time.Duration) {
	if h == nil {
		return
	}
	h.count.Add(1)
	h.sumNS.Add(d.Nanoseconds())
	s := d.Seconds()
	i := 0
	for i < len(latencyBounds) && s > latencyBounds[i] {
		i++
	}
	h.buckets[i].Add(1)
}

func (h *LatencyHist) snapshot() *HistData {
	d := &HistData{
		Bounds: latencyBounds[:],
		Counts: make([]int64, len(latencyBounds)+1),
		Count:  h.count.Load(),
		Sum:    float64(h.sumNS.Load()) / 1e9,
	}
	for i := range h.buckets {
		d.Counts[i] = h.buckets[i].Load()
	}
	return d
}

// HistData is a histogram's snapshot: per-bucket (non-cumulative) counts
// over ascending inclusive upper bounds, with Counts carrying one extra
// final entry for the +Inf overflow bucket.
type HistData struct {
	Bounds []float64
	Counts []int64
	Count  int64
	Sum    float64
}

// Mean returns the mean sample.
func (d *HistData) Mean() float64 {
	if d == nil || d.Count == 0 {
		return 0
	}
	return d.Sum / float64(d.Count)
}

// Quantile estimates the q-quantile (0 < q <= 1) by linear interpolation
// inside the bucket holding the target rank; the +Inf bucket reports its
// lower bound. Returns 0 on an empty histogram.
func (d *HistData) Quantile(q float64) float64 {
	if d == nil || d.Count == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := q * float64(d.Count)
	var cum float64
	lower := 0.0
	for i, n := range d.Counts {
		upper := math.Inf(1)
		if i < len(d.Bounds) {
			upper = d.Bounds[i]
		}
		next := cum + float64(n)
		if next >= rank && n > 0 {
			if math.IsInf(upper, 1) {
				return lower
			}
			frac := 0.0
			if n > 0 {
				frac = (rank - cum) / float64(n)
			}
			return lower + (upper-lower)*frac
		}
		cum = next
		if !math.IsInf(upper, 1) {
			lower = upper
		}
	}
	return lower
}

// merge accumulates other into d, aligning buckets by bound value so
// snapshots from histograms with different occupied prefixes still merge
// exactly.
func (d *HistData) merge(other *HistData) {
	if other == nil || other.Count == 0 && other.Sum == 0 {
		return
	}
	byBound := make(map[float64]int64, len(d.Bounds)+len(other.Bounds))
	var inf int64
	add := func(h *HistData) {
		for i, n := range h.Counts {
			if i < len(h.Bounds) {
				byBound[h.Bounds[i]] += n
			} else {
				inf += n
			}
		}
	}
	add(d)
	add(other)
	bounds := make([]float64, 0, len(byBound))
	for b := range byBound {
		bounds = append(bounds, b)
	}
	sortFloats(bounds)
	d.Bounds = bounds
	d.Counts = make([]int64, 0, len(bounds)+1)
	for _, b := range bounds {
		d.Counts = append(d.Counts, byBound[b])
	}
	d.Counts = append(d.Counts, inf)
	d.Count += other.Count
	d.Sum += other.Sum
}

func sortFloats(v []float64) {
	for i := 1; i < len(v); i++ {
		for j := i; j > 0 && v[j] < v[j-1]; j-- {
			v[j], v[j-1] = v[j-1], v[j]
		}
	}
}

// CumulativeQuantile estimates the q-quantile from parsed exposition
// bucket series: les are the ascending le bounds (excluding +Inf) and
// cums the matching cumulative counts, with total the +Inf count. It is
// the scrape-side twin of HistData.Quantile, used by benchsummary
// -serve-stats to render quantiles from a .prom file.
func CumulativeQuantile(les []float64, cums []float64, total float64, q float64) float64 {
	if total <= 0 {
		return 0
	}
	rank := q * total
	lower := 0.0
	prev := 0.0
	for i, le := range les {
		if cums[i] >= rank {
			n := cums[i] - prev
			frac := 0.0
			if n > 0 {
				frac = (rank - prev) / n
			}
			return lower + (le-lower)*frac
		}
		prev = cums[i]
		lower = le
	}
	return lower
}
