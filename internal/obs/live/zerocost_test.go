package live

import (
	"testing"
	"time"
)

// TestLiveDisabledZeroCost pins the package contract that check.sh gates:
// with telemetry disabled (a nil registry, and therefore nil metric
// handles), every instrumentation point on the query hot path costs a nil
// check and zero allocations — exactly the parent obs package's
// nil-tracer rule.
func TestLiveDisabledZeroCost(t *testing.T) {
	var r *Registry
	c := r.Counter("ij_disabled_total", "disabled")
	g := r.Gauge("ij_disabled_inflight", "disabled")
	fg := r.FloatGauge("ij_disabled_ratio", "disabled")
	h := r.Hist("ij_disabled_span", "disabled")
	lat := r.Latency("ij_disabled_latency_seconds", "disabled")
	vec := r.CounterVec("ij_disabled_codes_total", "disabled", "code")
	pre := vec.With("200") // handles pre-resolved at startup, as ijoind does
	r.OnCollect(func() { t.Error("collector ran on a disabled registry") })

	allocs := testing.AllocsPerRun(1000, func() {
		c.Inc()
		c.Add(3)
		g.Inc()
		g.Set(7)
		g.Dec()
		fg.Set(0.5)
		h.Observe(12345)
		lat.Observe(3 * time.Millisecond)
		pre.Inc()
	})
	if allocs != 0 {
		t.Fatalf("disabled telemetry allocated %.1f times per op, want 0", allocs)
	}
	if s := r.Snapshot(); s != nil {
		t.Fatalf("disabled registry snapshot = %+v, want nil", s)
	}
}
