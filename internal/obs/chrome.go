package obs

import (
	"encoding/json"
	"io"
	"strconv"
)

// Chrome trace_event export. The output is the JSON Object Format of the
// Trace Event specification — a {"traceEvents": [...]} document — which
// both chrome://tracing and Perfetto's UI open directly. Every lane
// becomes one timeline track (a "thread" of the single engine
// "process"), so a pipelined chain renders as worker-slot lanes whose
// reduce spans of cycle k visibly overlap the map spans of cycle k+1.

// chromeEvent is one trace_event entry. Timestamps and durations are in
// microseconds per the spec.
type chromeEvent struct {
	Name string            `json:"name"`
	Cat  string            `json:"cat,omitempty"`
	Ph   string            `json:"ph"`
	TS   float64           `json:"ts"`
	Dur  float64           `json:"dur,omitempty"`
	PID  int               `json:"pid"`
	TID  int               `json:"tid"`
	Args map[string]string `json:"args,omitempty"`
}

type chromeTrace struct {
	TraceEvents     []chromeEvent `json:"traceEvents"`
	DisplayTimeUnit string        `json:"displayTimeUnit"`
}

const enginePID = 1

// WriteChromeTrace renders the snapshot as a Chrome trace_event JSON
// document on w. Nil snapshots (disabled tracer) write an empty trace.
func WriteChromeTrace(w io.Writer, s *Snapshot) error {
	trace := chromeTrace{DisplayTimeUnit: "ms", TraceEvents: []chromeEvent{}}
	if s != nil {
		trace.TraceEvents = make([]chromeEvent, 0, len(s.Spans)+len(s.Lanes)+1)
		trace.TraceEvents = append(trace.TraceEvents, chromeEvent{
			Name: "process_name", Ph: "M", PID: enginePID,
			Args: map[string]string{"name": "mr-engine"},
		})
		for _, l := range s.Lanes {
			trace.TraceEvents = append(trace.TraceEvents, chromeEvent{
				Name: "thread_name", Ph: "M", PID: enginePID, TID: l.ID,
				Args: map[string]string{"name": laneName(l.ID)},
			})
		}
		for _, sp := range s.Spans {
			ev := chromeEvent{
				Name: sp.Name,
				Cat:  sp.Cat,
				Ph:   "X",
				TS:   float64(sp.Start.Nanoseconds()) / 1e3,
				Dur:  float64(sp.Dur.Nanoseconds()) / 1e3,
				PID:  enginePID,
				TID:  sp.Lane,
			}
			if sp.Dur == 0 {
				// Instantaneous events (retries, faults) render as instants.
				ev.Ph = "i"
				ev.Dur = 0
			}
			if len(sp.Args) > 0 {
				ev.Args = make(map[string]string, len(sp.Args))
				for _, a := range sp.Args {
					ev.Args[a.Key] = a.Val
				}
			}
			trace.TraceEvents = append(trace.TraceEvents, ev)
		}
	}
	enc := json.NewEncoder(w)
	return enc.Encode(trace)
}

// laneName renders the stable track label for a lane id, zero-padded so
// tracks sort numerically in the viewer.
func laneName(id int) string {
	s := strconv.Itoa(id)
	if len(s) < 2 {
		s = "0" + s
	}
	return "lane-" + s
}
