// Package obs is the engine's always-compiled observability layer:
// structured execution spans, counters and histograms, collected through
// lock-cheap per-worker ring buffers and rendered as Chrome trace_event
// timelines (chrome://tracing, Perfetto), reducer-skew tables, and a
// machine-readable metrics report.
//
// The design rule is that a disabled tracer costs a nil check and nothing
// else: every method is safe on a nil *Tracer or nil *Lane and returns
// immediately, so instrumentation stays in the engine unconditionally and
// the hot paths never pay for timestamps they do not use. When enabled,
// recording is lock-free after lane acquisition — each Lane is owned by
// exactly one goroutine and appends into its own ring buffer; the only
// locks are taken at lane acquire/release and snapshot time, which happen
// at phase granularity, not task granularity.
package obs

import (
	"math/bits"
	"sort"
	"sync"
	"time"
)

// Arg is one key-value annotation on a span, rendered into the Chrome
// trace "args" object.
type Arg struct {
	Key string
	Val string
}

// Span is one completed timed region of engine execution.
type Span struct {
	// Cat is the span's phase category — one of the Cat* constants — used
	// to group spans into per-phase wall-clock unions.
	Cat string
	// Name identifies the work, e.g. "reduce:rccis-1/join k=12".
	Name string
	// Lane is the id of the lane (worker slot) that recorded the span.
	Lane int
	// Start is the span's start offset from the tracer epoch.
	Start time.Duration
	// Dur is the span's duration.
	Dur time.Duration
	// Args carry span-specific annotations (algorithm, cycle, key, ...).
	Args []Arg
}

// End returns the span's end offset from the tracer epoch.
func (s Span) End() time.Duration { return s.Start + s.Dur }

// Span categories: the engine's phase taxonomy. Every span the MR engine
// records carries one of these, so exporters and the per-phase wall-clock
// union can treat the categories as a closed set.
const (
	CatChain   = "chain"   // a whole RunChain / RunPipeline execution
	CatCycle   = "cycle"   // one job (MR cycle)
	CatFeed    = "feed"    // map input file/stream reading
	CatMap     = "map"     // one map task (record batch)
	CatCombine = "combine" // map-side combiner fold
	CatSpill   = "spill"   // writing one sorted run to the store
	CatMerge   = "merge"   // shuffle merge (per-shard or k-way spill merge)
	CatReduce  = "reduce"  // one reduce task (key)
	CatOutput  = "output"  // committing reduce output to the store
	CatBarrier = "barrier" // non-streamed boundary between pipeline groups

	// Skew-adaptive execution phases (PR 7).
	CatVirtualSplit = "virtual_split" // plan-time virtual-reducer splitting of hot partitions
	CatResplit      = "resplit"       // mid-job re-split of an oversized reduce task
)

// Options configure a Tracer.
type Options struct {
	// LaneSpanCap bounds the spans each lane retains; beyond it the ring
	// wraps and the oldest spans are dropped (counted per lane). 0 means
	// the default of 16384.
	LaneSpanCap int
	// PprofLabels makes the engine attach runtime/pprof labels
	// (algorithm, cycle, phase) to reduce task execution, so CPU profiles
	// taken during a traced run attribute samples to join cycles.
	PprofLabels bool
}

const defaultLaneSpanCap = 16384

// Tracer collects spans and aggregate statistics for one engine. A nil
// *Tracer is a valid, disabled tracer: every method no-ops.
type Tracer struct {
	opts  Options
	epoch time.Time

	mu     sync.Mutex
	lanes  []*Lane // every lane ever created, in id order
	free   []*Lane // released lanes available for reuse
	counts map[string]int64
}

// New returns an enabled tracer whose epoch is now.
func New(opts Options) *Tracer {
	if opts.LaneSpanCap <= 0 {
		opts.LaneSpanCap = defaultLaneSpanCap
	}
	return &Tracer{opts: opts, epoch: time.Now()}
}

// Enabled reports whether the tracer records anything.
func (t *Tracer) Enabled() bool { return t != nil }

// PprofLabels reports whether reduce tasks should run under pprof labels.
func (t *Tracer) PprofLabels() bool { return t != nil && t.opts.PprofLabels }

// Epoch returns the tracer's time origin (zero for a disabled tracer).
func (t *Tracer) Epoch() time.Time {
	if t == nil {
		return time.Time{}
	}
	return t.epoch
}

// Now returns the current offset from the tracer epoch — a cheap
// monotonic mark usable with Snapshot.PhaseWalls.
func (t *Tracer) Now() time.Duration {
	if t == nil {
		return 0
	}
	return time.Since(t.epoch)
}

// Acquire hands out a lane for one goroutine's exclusive use. Lanes are
// pooled: a released lane's ring buffer is reused by the next acquire, so
// the lane count is bounded by the peak concurrency, not the task count.
// Returns nil (a valid no-op lane) on a disabled tracer.
func (t *Tracer) Acquire() *Lane {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if n := len(t.free); n > 0 {
		l := t.free[n-1]
		t.free = t.free[:n-1]
		return l
	}
	l := &Lane{
		id:    len(t.lanes),
		epoch: t.epoch,
		spans: make([]Span, 0, min(t.opts.LaneSpanCap, 256)),
		cap:   t.opts.LaneSpanCap,
	}
	t.lanes = append(t.lanes, l)
	return l
}

// Release returns a lane to the pool. Safe on nil lanes and tracers.
func (t *Tracer) Release(l *Lane) {
	if t == nil || l == nil {
		return
	}
	t.mu.Lock()
	t.free = append(t.free, l)
	t.mu.Unlock()
}

// Count adds delta to a tracer-level shared counter, for callers without a
// lane of their own (e.g. the join kernel's per-family hit counts, flushed
// once per reduce task from whatever goroutine ran it). Mutex-guarded —
// callers must batch, not count per item. Merged into Snapshot.Counters
// alongside the lane-local counters. Safe on a nil tracer.
func (t *Tracer) Count(name string, delta int64) {
	if t == nil {
		return
	}
	t.mu.Lock()
	if t.counts == nil {
		t.counts = make(map[string]int64, 8)
	}
	t.counts[name] += delta
	t.mu.Unlock()
}

// Lane is a single-goroutine span and statistics collector: a ring buffer
// of spans plus lane-local counters and histograms, merged at snapshot
// time. A nil *Lane is a valid, disabled lane.
type Lane struct {
	id      int
	epoch   time.Time
	spans   []Span
	next    int // ring write index once len(spans) == cap
	cap     int
	dropped int64
	counts  map[string]int64
	hists   map[string]*Hist
}

// ID returns the lane id (-1 for a disabled lane).
func (l *Lane) ID() int {
	if l == nil {
		return -1
	}
	return l.id
}

// Begin marks the start of a span. On a disabled lane it returns the zero
// time without reading the clock — the entire cost of disabled tracing.
func (l *Lane) Begin() time.Time {
	if l == nil {
		return time.Time{}
	}
	return time.Now()
}

// End records a completed span that began at start (a Begin result).
// No-op on a disabled lane or a zero start.
func (l *Lane) End(cat, name string, start time.Time, args ...Arg) {
	if l == nil || start.IsZero() {
		return
	}
	l.record(Span{
		Cat:   cat,
		Name:  name,
		Lane:  l.id,
		Start: start.Sub(l.epoch),
		Dur:   time.Since(start),
		Args:  args,
	})
}

// Event records an instantaneous span (zero duration) at the current
// time — retry and fault events use it.
func (l *Lane) Event(cat, name string, args ...Arg) {
	if l == nil {
		return
	}
	l.record(Span{Cat: cat, Name: name, Lane: l.id, Start: time.Since(l.epoch), Args: args})
}

func (l *Lane) record(s Span) {
	if len(l.spans) < l.cap {
		l.spans = append(l.spans, s)
		return
	}
	l.spans[l.next] = s
	l.next = (l.next + 1) % l.cap
	l.dropped++
}

// Count adds delta to the named lane-local counter.
func (l *Lane) Count(name string, delta int64) {
	if l == nil {
		return
	}
	if l.counts == nil {
		l.counts = make(map[string]int64, 8)
	}
	l.counts[name] += delta
}

// Observe records one sample into the named lane-local histogram.
func (l *Lane) Observe(name string, v int64) {
	if l == nil {
		return
	}
	if l.hists == nil {
		l.hists = make(map[string]*Hist, 8)
	}
	h := l.hists[name]
	if h == nil {
		h = &Hist{Min: v, Max: v}
		l.hists[name] = h
	}
	h.observe(v)
}

// Hist is a power-of-two-bucketed histogram of int64 samples. Bucket i
// counts samples v with bits.Len64(v) == i, i.e. bucket 0 holds v == 0,
// bucket i holds 2^(i-1) <= v < 2^i.
type Hist struct {
	Count   int64
	Sum     int64
	Min     int64
	Max     int64
	Buckets [65]int64
}

func (h *Hist) observe(v int64) {
	if h.Count == 0 || v < h.Min {
		h.Min = v
	}
	if v > h.Max {
		h.Max = v
	}
	h.Count++
	h.Sum += v
	h.Buckets[bucketOf(v)]++
}

// bucketOf maps a sample to its bucket index; negative samples clamp to
// bucket 0.
func bucketOf(v int64) int {
	if v <= 0 {
		return 0
	}
	return bits.Len64(uint64(v))
}

// Mean returns the histogram's mean sample.
func (h Hist) Mean() float64 {
	if h.Count == 0 {
		return 0
	}
	return float64(h.Sum) / float64(h.Count)
}

// merge accumulates other into h.
func (h *Hist) merge(other *Hist) {
	if other.Count == 0 {
		return
	}
	if h.Count == 0 || other.Min < h.Min {
		h.Min = other.Min
	}
	if other.Max > h.Max {
		h.Max = other.Max
	}
	h.Count += other.Count
	h.Sum += other.Sum
	for i, n := range other.Buckets {
		h.Buckets[i] += n
	}
}

// LaneSnap describes one lane in a snapshot.
type LaneSnap struct {
	ID      int
	Dropped int64
}

// Snapshot is a point-in-time copy of everything a tracer collected.
type Snapshot struct {
	Epoch    time.Time
	Spans    []Span // all lanes merged, sorted by Start
	Lanes    []LaneSnap
	Counters map[string]int64
	Hists    map[string]Hist
}

// Snapshot copies the tracer's state. It must not run concurrently with
// span recording on acquired lanes — take it between runs, as the CLIs
// do, or after Release. Returns nil on a disabled tracer.
func (t *Tracer) Snapshot() *Snapshot {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	s := &Snapshot{
		Epoch:    t.epoch,
		Counters: make(map[string]int64),
		Hists:    make(map[string]Hist),
	}
	for _, l := range t.lanes {
		s.Lanes = append(s.Lanes, LaneSnap{ID: l.id, Dropped: l.dropped})
		// Ring order: the oldest retained span is at next once wrapped.
		if len(l.spans) == l.cap && l.dropped > 0 {
			s.Spans = append(s.Spans, l.spans[l.next:]...)
			s.Spans = append(s.Spans, l.spans[:l.next]...)
		} else {
			s.Spans = append(s.Spans, l.spans...)
		}
		for name, v := range l.counts {
			s.Counters[name] += v
		}
		for name, h := range l.hists {
			merged := s.Hists[name]
			merged.merge(h)
			s.Hists[name] = merged
		}
	}
	for name, v := range t.counts {
		s.Counters[name] += v
	}
	sort.Slice(s.Spans, func(i, j int) bool { return s.Spans[i].Start < s.Spans[j].Start })
	return s
}

// PhaseWalls returns, per span category, the wall-clock union of the
// category's spans clipped to start at or after mark (a Tracer.Now
// result; 0 means everything). Unlike summing span durations, overlapping
// spans — concurrent workers, pipelined cycles — are counted once, so the
// result is the true elapsed time the phase had work in flight.
func (s *Snapshot) PhaseWalls(mark time.Duration) map[string]time.Duration {
	type iv struct{ lo, hi time.Duration }
	byCat := make(map[string][]iv)
	for _, sp := range s.Spans {
		lo, hi := sp.Start, sp.End()
		if hi <= mark {
			continue
		}
		if lo < mark {
			lo = mark
		}
		byCat[sp.Cat] = append(byCat[sp.Cat], iv{lo, hi})
	}
	walls := make(map[string]time.Duration, len(byCat))
	for cat, ivs := range byCat {
		sort.Slice(ivs, func(i, j int) bool { return ivs[i].lo < ivs[j].lo })
		var union time.Duration
		curLo, curHi := ivs[0].lo, ivs[0].hi
		for _, x := range ivs[1:] {
			if x.lo > curHi {
				union += curHi - curLo
				curLo, curHi = x.lo, x.hi
				continue
			}
			if x.hi > curHi {
				curHi = x.hi
			}
		}
		union += curHi - curLo
		walls[cat] = union
	}
	return walls
}
