package obs

import (
	"fmt"
	"io"
	"sort"
	"strings"
	"time"
)

// Reducer skew diagnostics: the per-reducer load distribution the paper's
// Figure 4 reasons about, rendered as a power-of-two histogram plus a
// top-K straggler table so a skewed run names the reducers that stretched
// the phase.

// ReducerLoad is one reducer's measured load.
type ReducerLoad struct {
	Key   int64         `json:"key"`
	Pairs int64         `json:"pairs"`
	Time  time.Duration `json:"time_ns"`
}

// SkewBucket is one row of the load histogram: reducers whose pair count
// falls in [Lo, Hi].
type SkewBucket struct {
	Lo       int64 `json:"lo"`
	Hi       int64 `json:"hi"`
	Reducers int   `json:"reducers"`
}

// SkewReport summarises the per-reducer load distribution of a run.
type SkewReport struct {
	Reducers   int     `json:"reducers"`
	TotalPairs int64   `json:"total_pairs"`
	MaxPairs   int64   `json:"max_pairs"`
	MeanPairs  float64 `json:"mean_pairs"`
	Imbalance  float64 `json:"imbalance"` // max/mean; 1.0 is perfectly balanced
	// Wall-clock counterparts of the pair stats, from the measured
	// per-reducer reduce times: the makespan gate ("max reducer wall
	// within 1.5× of mean") reads TimeImbalance.
	MaxTimeNS     int64         `json:"max_time_ns,omitempty"`
	MeanTimeNS    float64       `json:"mean_time_ns,omitempty"`
	TimeImbalance float64       `json:"time_imbalance,omitempty"` // max/mean reducer wall
	Histogram     []SkewBucket  `json:"histogram,omitempty"`
	Top           []ReducerLoad `json:"top,omitempty"` // heaviest reducers, descending
}

// NewSkewReport builds the report from per-reducer pair counts and
// (optionally nil) per-reducer reduce times, keeping the topK heaviest
// reducers in the straggler table.
func NewSkewReport(pairs map[int64]int64, times map[int64]time.Duration, topK int) *SkewReport {
	r := &SkewReport{Reducers: len(pairs)}
	if len(pairs) == 0 {
		return r
	}
	var hist Hist
	loads := make([]ReducerLoad, 0, len(pairs))
	for k, n := range pairs {
		r.TotalPairs += n
		if n > r.MaxPairs {
			r.MaxPairs = n
		}
		hist.observe(n)
		loads = append(loads, ReducerLoad{Key: k, Pairs: n, Time: times[k]})
	}
	r.MeanPairs = float64(r.TotalPairs) / float64(len(pairs))
	if r.MeanPairs > 0 {
		r.Imbalance = float64(r.MaxPairs) / r.MeanPairs
	} else {
		r.Imbalance = 1
	}
	if len(times) > 0 {
		var total int64
		for _, d := range times {
			ns := d.Nanoseconds()
			total += ns
			if ns > r.MaxTimeNS {
				r.MaxTimeNS = ns
			}
		}
		r.MeanTimeNS = float64(total) / float64(len(times))
		if r.MeanTimeNS > 0 {
			r.TimeImbalance = float64(r.MaxTimeNS) / r.MeanTimeNS
		} else {
			r.TimeImbalance = 1
		}
	}
	for i, n := range hist.Buckets {
		if n == 0 {
			continue
		}
		lo, hi := int64(0), int64(0)
		if i > 0 {
			lo = int64(1) << (i - 1)
			hi = int64(1)<<i - 1
		}
		r.Histogram = append(r.Histogram, SkewBucket{Lo: lo, Hi: hi, Reducers: int(n)})
	}
	sort.Slice(loads, func(i, j int) bool {
		if loads[i].Pairs != loads[j].Pairs {
			return loads[i].Pairs > loads[j].Pairs
		}
		return loads[i].Key < loads[j].Key
	})
	if topK > 0 && topK < len(loads) {
		loads = loads[:topK]
	}
	r.Top = loads
	return r
}

// WriteTable renders the report as aligned text: summary line, histogram
// with bar marks, and the straggler table.
func (r *SkewReport) WriteTable(w io.Writer) {
	fmt.Fprintf(w, "reducers=%d pairs=%d max=%d mean=%.1f imbalance=%.2f\n",
		r.Reducers, r.TotalPairs, r.MaxPairs, r.MeanPairs, r.Imbalance)
	if len(r.Histogram) > 0 {
		most := 0
		for _, b := range r.Histogram {
			if b.Reducers > most {
				most = b.Reducers
			}
		}
		fmt.Fprintf(w, "%-23s %9s\n", "pairs/reducer", "reducers")
		for _, b := range r.Histogram {
			bar := ""
			if most > 0 {
				bar = strings.Repeat("#", 1+b.Reducers*39/most)
			}
			fmt.Fprintf(w, "[%9d, %9d] %9d %s\n", b.Lo, b.Hi, b.Reducers, bar)
		}
	}
	if len(r.Top) > 0 {
		fmt.Fprintf(w, "%-12s %12s %12s %7s\n", "straggler", "pairs", "reduce", "x-mean")
		for _, l := range r.Top {
			factor := 0.0
			if r.MeanPairs > 0 {
				factor = float64(l.Pairs) / r.MeanPairs
			}
			fmt.Fprintf(w, "%-12d %12d %12s %6.1fx\n",
				l.Key, l.Pairs, l.Time.Round(time.Microsecond), factor)
		}
	}
}
