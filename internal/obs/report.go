package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"strconv"
)

// The metrics report is the machine-readable summary of a traced run:
// per-phase wall breakdowns (true unions from the tracer next to the
// engine's additive serialized-model sums), counters, histograms, and the
// reducer-skew report. It is what -metrics writes on the CLIs and what
// benchsummary -compare consumes for its per-phase wall table, so the
// field names here are a stable interchange format.

// PhaseStats is one phase category's time accounting.
type PhaseStats struct {
	// WallNS is the true wall-clock union of the phase's spans:
	// overlapping workers and pipelined cycles count once.
	WallNS int64 `json:"wall_ns"`
	// BusyNS sums the phase's span durations: total work performed, which
	// exceeds WallNS by the phase's average parallelism.
	BusyNS int64 `json:"busy_ns"`
	// Spans is the number of spans recorded in the phase.
	Spans int `json:"spans"`
}

// SerializedModel carries the engine's additive per-cycle Metrics sums —
// the "as if cycles ran back to back" accounting that Metrics.Merge has
// always produced. Under pipelining these sums double-count overlapped
// time; the Phases map holds the true unions alongside.
type SerializedModel struct {
	Cycles           int     `json:"cycles"`
	FeedNS           int64   `json:"feed_ns"`
	MapNS            int64   `json:"map_ns"`
	ReduceNS         int64   `json:"reduce_ns"`
	TotalNS          int64   `json:"total_ns"`
	PipelineNS       int64   `json:"pipeline_ns,omitempty"`
	OverlapSavedNS   int64   `json:"overlap_saved_ns,omitempty"`
	MakespanLPTNS    int64   `json:"makespan_lpt_ns,omitempty"`
	Pairs            int64   `json:"pairs"`
	PhysPairs        int64   `json:"phys_pairs"`
	Bytes            int64   `json:"bytes"`
	PhysBytes        int64   `json:"phys_bytes"`
	SpilledPairs     int64   `json:"spilled_pairs,omitempty"`
	TaskRetries      int64   `json:"task_retries,omitempty"`
	OutputRecords    int64   `json:"output_records"`
	ReplicationFact  float64 `json:"replication_factor"`
	StreamedPairs    int64   `json:"streamed_pairs,omitempty"`
	DistinctReducers int     `json:"distinct_reducers"`
}

// HistJSON is a histogram's JSON rendering: non-empty power-of-two
// buckets keyed by their lower bound.
type HistJSON struct {
	Count   int64            `json:"count"`
	Sum     int64            `json:"sum"`
	Min     int64            `json:"min"`
	Max     int64            `json:"max"`
	Mean    float64          `json:"mean"`
	Buckets map[string]int64 `json:"buckets,omitempty"`
}

// PlanInfo records the partition plan a driver chose for a run: how many
// partitions, where the boundaries came from (uniform vs equi-depth
// histogram), whether the partition count itself was auto-advised, and how
// the virtual-reducer splitter expanded the key space. It is the
// machine-readable trail of the skew-adaptive planner, so `-partitions
// auto` and `-adaptive` runs are auditable from metrics.json alone.
type PlanInfo struct {
	// Partitions is the physical partition-interval count k.
	Partitions int `json:"partitions"`
	// BoundarySource is "uniform" or "equi-depth".
	BoundarySource string `json:"boundary_source"`
	// AutoK reports whether k was chosen by cost.AdvisePartitions.
	AutoK bool `json:"auto_k,omitempty"`
	// VirtualReducers is the total reduce-key count after splitting
	// (equals Partitions when nothing was split).
	VirtualReducers int `json:"virtual_reducers"`
	// SplitPartitions counts partitions expanded into >1 virtual reducer.
	SplitPartitions int `json:"split_partitions,omitempty"`
	// Streams is the cell-cover dimensionality (input streams per join).
	Streams int `json:"streams,omitempty"`
	// SplitThreshold is the load/mean ratio beyond which a partition is
	// split; MaxVirtual caps the per-partition virtual-reducer count.
	SplitThreshold float64 `json:"split_threshold,omitempty"`
	MaxVirtual     int     `json:"max_virtual,omitempty"`
}

// CacheReport summarises the semantic segment cache over a query mix: the
// hit accounting the ijoind bench mode measures and benchsummary -cache
// tabulates (and -cachegate gates). Span ratios are over closed window
// lengths, so HitRatio is the fraction of requested time range served from
// cache rather than a per-query coin flip.
type CacheReport struct {
	// Lookups, FullHits, PartialHits and Misses count queries by how much
	// of their window the cache covered (all / some / none).
	Lookups     int64 `json:"lookups"`
	FullHits    int64 `json:"full_hits"`
	PartialHits int64 `json:"partial_hits"`
	Misses      int64 `json:"misses"`
	// HitSegments counts cached segments merged into answers.
	HitSegments int64 `json:"hit_segments"`
	// CachedRows / DeltaRows split answer rows by provenance: merged from
	// cached segments vs computed by delta-window joins.
	CachedRows int64 `json:"cached_rows"`
	DeltaRows  int64 `json:"delta_rows"`
	// SpanRequested / SpanCovered accumulate closed window lengths; their
	// ratio is the semantic hit ratio.
	SpanRequested int64   `json:"span_requested"`
	SpanCovered   int64   `json:"span_covered"`
	HitRatio      float64 `json:"hit_ratio"`
	// Insertions / Evictions / BytesInUse / BytesBudget describe the
	// byte-budgeted LRU.
	Insertions  int64 `json:"insertions"`
	Evictions   int64 `json:"evictions"`
	BytesInUse  int64 `json:"bytes_in_use"`
	BytesBudget int64 `json:"bytes_budget"`
	// ColdNS / WarmNS are mean per-query walls for the cold pass (empty
	// cache) and warm pass of the benchmark mix; Speedup is cold/warm.
	ColdNS  int64   `json:"cold_ns,omitempty"`
	WarmNS  int64   `json:"warm_ns,omitempty"`
	Speedup float64 `json:"speedup,omitempty"`
}

// Report is the metrics.json document.
type Report struct {
	Name         string                `json:"name"`
	Algorithm    string                `json:"algorithm,omitempty"`
	Phases       map[string]PhaseStats `json:"phases,omitempty"`
	Model        *SerializedModel      `json:"serialized,omitempty"`
	Counters     map[string]int64      `json:"counters,omitempty"`
	Hists        map[string]HistJSON   `json:"hists,omitempty"`
	Skew         *SkewReport           `json:"skew,omitempty"`
	Plan         *PlanInfo             `json:"plan,omitempty"`
	Cache        *CacheReport          `json:"cache,omitempty"`
	Lanes        int                   `json:"lanes"`
	DroppedSpans int64                 `json:"dropped_spans,omitempty"`
}

// NewReport summarises a snapshot: phase stats from the spans, merged
// counters and histograms. The serialized model and skew report are the
// engine's to fill (mr.BuildReport), since they come from Metrics, not
// from spans. A nil snapshot yields an empty named report.
func NewReport(name string, s *Snapshot) *Report {
	r := &Report{Name: name}
	if s == nil {
		return r
	}
	r.Lanes = len(s.Lanes)
	for _, l := range s.Lanes {
		r.DroppedSpans += l.Dropped
	}
	walls := s.PhaseWalls(0)
	r.Phases = make(map[string]PhaseStats, len(walls))
	for _, sp := range s.Spans {
		ps := r.Phases[sp.Cat]
		ps.BusyNS += sp.Dur.Nanoseconds()
		ps.Spans++
		r.Phases[sp.Cat] = ps
	}
	for cat, wall := range walls {
		ps := r.Phases[cat]
		ps.WallNS = wall.Nanoseconds()
		r.Phases[cat] = ps
	}
	if len(s.Counters) > 0 {
		r.Counters = make(map[string]int64, len(s.Counters))
		for k, v := range s.Counters {
			r.Counters[k] = v
		}
	}
	if len(s.Hists) > 0 {
		r.Hists = make(map[string]HistJSON, len(s.Hists))
		for name, h := range s.Hists {
			r.Hists[name] = histJSON(h)
		}
	}
	return r
}

func histJSON(h Hist) HistJSON {
	out := HistJSON{Count: h.Count, Sum: h.Sum, Min: h.Min, Max: h.Max, Mean: h.Mean()}
	for i, n := range h.Buckets {
		if n == 0 {
			continue
		}
		if out.Buckets == nil {
			out.Buckets = make(map[string]int64)
		}
		lo := int64(0)
		if i > 0 {
			lo = int64(1) << (i - 1)
		}
		out.Buckets[strconv.FormatInt(lo, 10)] = n
	}
	return out
}

// WriteJSON writes the report as indented JSON.
func (r *Report) WriteJSON(w io.Writer) error {
	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	_, err = w.Write(data)
	return err
}

// LoadReport reads a metrics.json file written by WriteJSON.
func LoadReport(path string) (*Report, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var r Report
	if err := json.Unmarshal(data, &r); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return &r, nil
}
