// Package cost estimates the communication volume (intermediate key-value
// pairs) of each join algorithm from per-relation statistics, in the spirit
// of the Zhang et al. cost model the paper plans to integrate ("we can
// further improve All-Matrix by using the cost models and ideas presented
// in Zhang et al.", Section 7.2; the model is extended here with the
// distribution of interval lengths, as Section 7.2 prescribes).
//
// The estimates assume uniformly distributed start points; they are meant
// for algorithm and partition-count advice, not precise prediction. The
// Advise function ranks the applicable algorithms by estimated pairs.
package cost

import (
	"cmp"
	"fmt"
	"math"
	"slices"

	"intervaljoin/internal/grid"
	"intervaljoin/internal/query"
	"intervaljoin/internal/relation"
)

// RelStats summarises one relation's join column.
type RelStats struct {
	// Count is the number of tuples.
	Count int64
	// MeanLength is the average interval length.
	MeanLength float64
	// Span is the width of the covered time range.
	Span float64
}

// Analyze computes the statistics of one attribute column.
func Analyze(r *relation.Relation, attr int) RelStats {
	s := RelStats{Count: int64(r.Len())}
	if r.Len() == 0 {
		s.Span = 1
		return s
	}
	var sum float64
	lo, hi := r.Tuples[0].Attrs[attr].Start, r.Tuples[0].Attrs[attr].End
	for _, t := range r.Tuples {
		iv := t.Attrs[attr]
		sum += float64(iv.Length())
		if iv.Start < lo {
			lo = iv.Start
		}
		if iv.End > hi {
			hi = iv.End
		}
	}
	s.MeanLength = sum / float64(r.Len())
	s.Span = float64(hi-lo) + 1
	return s
}

// CombinedSpan is the union span all single-attribute algorithms partition.
func CombinedSpan(stats []RelStats) float64 {
	span := 1.0
	for _, s := range stats {
		if s.Span > span {
			span = s.Span
		}
	}
	return span
}

// splitPairs estimates the pairs emitted by splitting a relation over k
// partitions: every interval hits its start partition plus ~len/width more.
func splitPairs(s RelStats, k int, span float64) float64 {
	width := span / float64(k)
	return float64(s.Count) * (1 + s.MeanLength/width)
}

// replicatePairs estimates the pairs emitted by replicating: a uniform
// start lands mid-range, so each interval reaches ~(k+1)/2 partitions.
func replicatePairs(s RelStats, k int) float64 {
	return float64(s.Count) * float64(k+1) / 2
}

// crossProb estimates the probability that an interval crosses a partition
// boundary: len/width, capped at 1.
func crossProb(s RelStats, k int, span float64) float64 {
	width := span / float64(k)
	return math.Min(1, s.MeanLength/width)
}

// Estimate is one algorithm's predicted communication cost.
type Estimate struct {
	// Algorithm is the algorithm name as registered by the core package.
	Algorithm string
	// Pairs is the predicted total intermediate pairs across all cycles.
	Pairs float64
	// MaxReducerLoad is the predicted pair count of the heaviest reducer —
	// the straggler that determines cluster makespan. Balanced algorithms
	// approach Pairs / reducers; All-Replicate's right-most reducer
	// receives every replicated interval.
	MaxReducerLoad float64
	// Cycles is the algorithm's MR cycle count for this query.
	Cycles int
}

// EstimateAllRep predicts All-Replicate: one relation projected when the
// order has a unique maximum (approximated: always assume one), the rest
// replicated.
func EstimateAllRep(stats []RelStats, k int) Estimate {
	var pairs, replicated float64
	var projected float64
	// Project the largest-index relation (chain convention), replicate the
	// rest.
	for i, s := range stats {
		if i == len(stats)-1 {
			pairs += float64(s.Count)
			projected = float64(s.Count)
			continue
		}
		pairs += replicatePairs(s, k)
		replicated += float64(s.Count)
	}
	// The right-most reducer receives every replicated interval plus its
	// share of the projected relation.
	maxLoad := replicated + projected/float64(k)
	return Estimate{Algorithm: "all-rep", Pairs: pairs, MaxReducerLoad: maxLoad, Cycles: 1}
}

// EstimateRCCIS predicts RCCIS: cycle 1 splits everything; cycle 2 projects
// everything and replicates the boundary-crossing participants.
// participation is the fraction of crossing intervals that actually belong
// to a consistent crossing set (1 is the safe upper bound; dense workloads
// approach it).
func EstimateRCCIS(stats []RelStats, k int, participation float64) Estimate {
	span := CombinedSpan(stats)
	var pairs float64
	for _, s := range stats {
		pairs += splitPairs(s, k, span) // cycle 1
		pairs += float64(s.Count)       // cycle 2 projections
		pairs += float64(s.Count) * crossProb(s, k, span) * participation * float64(k+1) / 2
	}
	// Uniform starts spread RCCIS's load evenly.
	return Estimate{Algorithm: "rccis", Pairs: pairs, MaxReducerLoad: pairs / float64(k), Cycles: 2}
}

// EstimateAllMatrix predicts All-Matrix exactly for the routing (the
// reduce-side join cost is workload-dependent and excluded): each tuple of
// relation d reaches every consistent cell whose d-th coordinate is its
// start partition; the expected fan-out is the exact average over start
// partitions, computed from the grid.
func EstimateAllMatrix(stats []RelStats, q *query.Query, o int) (Estimate, error) {
	m := len(stats)
	g, err := grid.NewUniform(m, o)
	if err != nil {
		return Estimate{}, err
	}
	var cons []grid.Less
	for _, p := range q.LessThanPairs() {
		cons = append(cons, grid.Less{A: p[0], B: p[1]})
	}
	var pairs float64
	for d, s := range stats {
		var totalCells int64
		for qi := 0; qi < o; qi++ {
			bounds := g.FreeBounds()
			bounds[d] = grid.Bound{Min: qi, Max: qi}
			g.Enumerate(bounds, cons, func(int64, []int) { totalCells++ })
		}
		pairs += float64(s.Count) * float64(totalCells) / float64(o)
	}
	cells := g.CountConsistent(cons)
	if cells == 0 {
		cells = 1
	}
	// The grid spreads load evenly over the consistent cells.
	return Estimate{Algorithm: "all-matrix", Pairs: pairs, MaxReducerLoad: pairs / float64(cells), Cycles: 1}, nil
}

// selectivity roughly estimates P(pred holds) for a random pair drawn from
// the two relations, using the mean lengths and the shared span.
func selectivity(pred queryPredicate, a, b RelStats, span float64) float64 {
	switch {
	case pred.IsSequence():
		return 0.5
	default:
		// Colocation: the two intervals must share a point; the paper's
		// predicates are refinements, approximated by the intersection
		// probability scaled down by 1/2 for directionality.
		p := (a.MeanLength + b.MeanLength + 1) / span / 2
		return math.Min(1, p)
	}
}

// queryPredicate is the subset of interval.Predicate behaviour the
// selectivity model needs; it keeps this package decoupled from the
// interval package's internals.
type queryPredicate interface {
	IsSequence() bool
}

// EstimateCascade predicts the 2-way cascade: each step shuffles the
// current intermediate plus the next relation, with intermediate sizes
// driven by the per-step selectivity.
func EstimateCascade(stats []RelStats, q *query.Query, k int) Estimate {
	span := CombinedSpan(stats)
	// Follow the conditions in order, mirroring planCascade's greedy plan.
	interSize := float64(stats[q.Conds[0].Left.Rel].Count)
	var pairs float64
	bound := map[int]bool{q.Conds[0].Left.Rel: true}
	cycles := 0
	for _, c := range q.Conds {
		li, ri := c.Left.Rel, c.Right.Rel
		var novel int
		switch {
		case bound[li] && bound[ri]:
			continue // filter within an existing step
		case bound[li]:
			novel = ri
		case bound[ri]:
			novel = li
		default:
			continue // disconnected; the real planner errors
		}
		cycles++
		ns := stats[novel]
		// The intermediate side is split or replicated (~2 partitions per
		// record on average for colocation, (k+1)/2 for sequence), the
		// novel side projected.
		fan := 1 + (stats[li].MeanLength/(span/float64(k)))/2
		if c.Pred.IsSequence() {
			fan = float64(k+1) / 2
		}
		pairs += interSize*fan + float64(ns.Count)
		interSize *= float64(ns.Count) * selectivity(c.Pred, stats[li], stats[ri], span)
		bound[novel] = true
	}
	return Estimate{Algorithm: "2way-cascade", Pairs: pairs, MaxReducerLoad: pairs / float64(k), Cycles: cycles}
}

// Advise ranks the applicable algorithms for the query by estimated
// communication pairs. k is the 1-D partition count and o the grid
// partitions per dimension.
func Advise(q *query.Query, rels []*relation.Relation, k, o int) ([]Estimate, error) {
	if q.Classify() == query.General {
		return nil, fmt.Errorf("cost: advice covers single-attribute queries")
	}
	stats := make([]RelStats, len(rels))
	for i, r := range rels {
		stats[i] = Analyze(r, 0)
	}
	var out []Estimate
	switch q.Classify() {
	case query.Colocation:
		out = append(out, EstimateRCCIS(stats, k, 1), EstimateAllRep(stats, k), EstimateCascade(stats, q, k))
	case query.Sequence:
		am, err := EstimateAllMatrix(stats, q, o)
		if err != nil {
			return nil, err
		}
		out = append(out, am, EstimateAllRep(stats, k), EstimateCascade(stats, q, k))
	default: // hybrid: the matrix algorithms dominate; report baselines too
		out = append(out, EstimateRCCIS(stats, k, 1), EstimateAllRep(stats, k), EstimateCascade(stats, q, k))
	}
	// Rank by the straggler load (what determines cluster makespan), then
	// by total communication.
	slices.SortFunc(out, func(a, b Estimate) int {
		if c := cmp.Compare(a.MaxReducerLoad, b.MaxReducerLoad); c != 0 {
			return c
		}
		return cmp.Compare(a.Pairs, b.Pairs)
	})
	return out, nil
}

// AdvisePartitions sweeps candidate partition counts for RCCIS and returns
// the k minimising estimated pairs: small k wastes parallelism, large k
// multiplies boundary crossings and replication.
func AdvisePartitions(rels []*relation.Relation, candidates []int) int {
	stats := make([]RelStats, len(rels))
	for i, r := range rels {
		stats[i] = Analyze(r, 0)
	}
	if len(candidates) == 0 {
		candidates = []int{4, 8, 16, 32, 64}
	}
	best, bestPairs := candidates[0], math.Inf(1)
	for _, k := range candidates {
		if est := EstimateRCCIS(stats, k, 1); est.Pairs < bestPairs {
			best, bestPairs = k, est.Pairs
		}
	}
	return best
}
