package cost

import (
	"math"

	"intervaljoin/internal/interval"
)

// Virtual-reducer planning: once boundaries are fixed, the remaining skew
// lives inside single partition-intervals — a burst of starts (or a few
// very long intervals replicated everywhere) can make one reducer's
// candidate list dwarf the mean no matter where the boundaries sit. The
// planner estimates each partition's load from an interval sample and
// recommends splitting the hot ones into V balanced virtual reducers,
// 1-Bucket-Theta style (Okcan & Riedewald; see PAPERS.md): the driver
// covers a split partition with a cell grid over its input streams so
// every output assignment still meets at exactly one (virtual) reducer.

// PartitionLoads estimates, per partition, the number of interval replicas
// a reducer for that partition would receive: each sampled interval
// contributes scale to every partition it overlaps (its Split range —
// the footprint both the projected and the replicated routing operators
// are bounded by). scale is the sample's inverse sampling rate
// (population/sample); pass 1 when the sample is the whole input.
//
// Reducer work grows at least linearly — and for joins superlinearly —
// in this count, so it is a conservative split criterion that needs no
// selectivity model.
func PartitionLoads(sample []interval.Interval, part interval.Partitioning, scale float64) []float64 {
	loads := make([]float64, part.Len())
	if scale <= 0 {
		scale = 1
	}
	for _, iv := range sample {
		first, last := part.Split(iv)
		for p := first; p <= last; p++ {
			loads[p] += scale
		}
	}
	return loads
}

// PairLoads refines replica-count loads into expected candidate-pair
// counts per partition: a reducer's join work is quadratic in its input,
// discounted by the local match probability, which for the Allen
// predicates scales with interval length over partition width. Narrow
// partitions — exactly what equi-depth boundaries produce over a dense
// region — therefore hold more work per input replica, which a linear
// count misses: under equi-depth every partition holds the same count and
// only the pair estimate still separates hot from cold. meanLength <= 0
// skips the density discount and returns plain count².
func PairLoads(loads []float64, part interval.Partitioning, meanLength float64) []float64 {
	pairs := make([]float64, len(loads))
	for i, l := range loads {
		pairs[i] = l * l
		if meanLength <= 0 {
			continue
		}
		iv := part.PartitionInterval(i)
		width := float64(iv.End-iv.Start) + 1
		if p := meanLength / width; p < 1 {
			pairs[i] *= p
		}
	}
	return pairs
}

// RecommendSplits turns per-partition load estimates into per-partition
// virtual-reducer counts: the smallest counts (each between 1 and
// maxSplit) under which no virtual reducer's share load/v exceeds
// threshold× the mean load per virtual reducer. Splitting a partition
// adds reduce keys and so lowers that mean, which can demand further
// splitting — the fixed point is reached by iterating the per-partition
// rule v = ceil(load / (threshold · total/Σv)); counts only grow, so the
// iteration converges (the maxSplit cap bounds it). threshold <= 0
// selects the default of 1.25; maxSplit <= 0 the default of 8. The
// returned slice always has len(loads) entries, each >= 1.
func RecommendSplits(loads []float64, threshold float64, maxSplit int) []int {
	if threshold <= 0 {
		threshold = DefaultSplitThreshold
	}
	if maxSplit <= 0 {
		maxSplit = DefaultMaxVirtual
	}
	counts := make([]int, len(loads))
	keys := len(loads)
	for i := range counts {
		counts[i] = 1
	}
	var total float64
	for _, l := range loads {
		total += l
	}
	if len(loads) == 0 || total == 0 {
		return counts
	}
	for {
		limit := threshold * total / float64(keys) // per-virtual-reducer budget
		grown := false
		for i, l := range loads {
			v := int(math.Ceil(l / limit))
			if v > maxSplit {
				v = maxSplit
			}
			if v > counts[i] {
				keys += v - counts[i]
				counts[i] = v
				grown = true
			}
		}
		if !grown {
			return counts
		}
	}
}

// Planner defaults: split a partition once its projected load exceeds
// 1.25× the mean (the acceptance target is max/mean <= 1.5, so acting at
// 1.25 leaves headroom for estimation error), and never fan one partition
// out beyond 8 virtual reducers — past that the replicated-side fan-out
// costs more shuffle than the balance buys.
const (
	DefaultSplitThreshold = 1.25
	DefaultMaxVirtual     = 8
)
