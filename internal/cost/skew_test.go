package cost_test

import (
	"testing"

	"intervaljoin/internal/core"
	"intervaljoin/internal/cost"
	"intervaljoin/internal/dfs"
	"intervaljoin/internal/mr"
	"intervaljoin/internal/query"
	"intervaljoin/internal/relation"
	"intervaljoin/internal/workload"
)

func zipfRel(t *testing.T, n int, seed int64) *relation.Relation {
	t.Helper()
	r, err := workload.Generate(workload.Spec{
		Name: "R", NumIntervals: n,
		StartDist: workload.Zipf, LengthDist: workload.Uniform,
		TMin: 0, TMax: 10_000, IMin: 1, IMax: 10, Seed: seed,
	})
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func uniformRel(t *testing.T, n int, seed int64) *relation.Relation {
	t.Helper()
	r, err := workload.Generate(workload.Spec{
		Name: "R", NumIntervals: n,
		StartDist: workload.Uniform, LengthDist: workload.Uniform,
		TMin: 0, TMax: 10_000, IMin: 1, IMax: 10, Seed: seed,
	})
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func TestAnalyzeHistogram(t *testing.T) {
	r := uniformRel(t, 5000, 1)
	h := cost.AnalyzeHistogram(r, 0, 32)
	if h.Total != 5000 || len(h.Counts) != 32 {
		t.Fatalf("histogram = %+v", h)
	}
	var sum int64
	for _, c := range h.Counts {
		sum += c
	}
	if sum != 5000 {
		t.Fatalf("bucket sum = %d", sum)
	}
	empty := cost.AnalyzeHistogram(relation.FromIntervals("E", nil), 0, 8)
	if empty.Total != 0 || empty.LoadImbalance(4) != 1 {
		t.Fatalf("empty histogram = %+v", empty)
	}
}

func TestLoadImbalancePredicts(t *testing.T) {
	const k = 16
	uni := cost.AnalyzeHistogram(uniformRel(t, 5000, 1), 0, 4*k).LoadImbalance(k)
	zip := cost.AnalyzeHistogram(zipfRel(t, 5000, 1), 0, 4*k).LoadImbalance(k)
	if uni > 1.5 {
		t.Fatalf("uniform data predicted imbalance %.2f", uni)
	}
	if zip < 4 {
		t.Fatalf("zipf data predicted imbalance only %.2f", zip)
	}
}

// TestPredictedImbalanceTracksMeasured: the histogram's straggler factor
// must agree with the engine's measured per-reducer imbalance within a
// factor of 2 on both workload shapes.
func TestPredictedImbalanceTracksMeasured(t *testing.T) {
	const k = 12
	q := query.MustParse("R1 overlaps R2 and R2 overlaps R3")
	for _, shape := range []string{"uniform", "zipf"} {
		rels := make([]*relation.Relation, 3)
		for i := range rels {
			if shape == "uniform" {
				rels[i] = uniformRel(t, 1200, int64(i+1))
			} else {
				rels[i] = zipfRel(t, 1200, int64(i+1))
			}
			rels[i].Schema.Name = q.Relations[i].Name
		}
		predicted := cost.AnalyzeHistogram(rels[0], 0, 4*k).LoadImbalance(k)
		engine := mr.NewEngine(mr.Config{Store: dfs.NewMem(), Workers: 4})
		ctx, err := core.NewContext(engine, q, rels, core.Options{Partitions: k})
		if err != nil {
			t.Fatal(err)
		}
		res, err := (core.RCCIS{}).Run(ctx)
		if err != nil {
			t.Fatal(err)
		}
		measured := res.Metrics.LoadImbalance()
		if r := predicted / measured; r < 0.5 || r > 2 {
			t.Errorf("%s: predicted imbalance %.2f vs measured %.2f (ratio %.2f)",
				shape, predicted, measured, r)
		}
	}
}

func TestRecommendEquiDepth(t *testing.T) {
	zipf := []*relation.Relation{zipfRel(t, 3000, 1), zipfRel(t, 3000, 2)}
	if !cost.RecommendEquiDepth(zipf, 16, 0) {
		t.Fatal("zipf workload not recommended for equi-depth")
	}
	uni := []*relation.Relation{uniformRel(t, 3000, 1), uniformRel(t, 3000, 2)}
	if cost.RecommendEquiDepth(uni, 16, 0) {
		t.Fatal("uniform workload recommended for equi-depth")
	}
	if cost.RecommendEquiDepth(nil, 16, 0) {
		t.Fatal("no relations recommended for equi-depth")
	}
}
