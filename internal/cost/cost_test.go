package cost_test

import (
	"math"
	"testing"

	"intervaljoin/internal/core"
	"intervaljoin/internal/cost"
	"intervaljoin/internal/dfs"
	"intervaljoin/internal/mr"
	"intervaljoin/internal/query"
	"intervaljoin/internal/relation"
	"intervaljoin/internal/workload"
)

func genRels(t *testing.T, q *query.Query, n int) []*relation.Relation {
	t.Helper()
	rels := make([]*relation.Relation, len(q.Relations))
	for i, s := range q.Relations {
		r, err := workload.Generate(workload.Table1Spec(s.Name, n, int64(i+1)))
		if err != nil {
			t.Fatal(err)
		}
		rels[i] = r
	}
	return rels
}

func measure(t *testing.T, alg core.Algorithm, q *query.Query, rels []*relation.Relation, opts core.Options) float64 {
	t.Helper()
	engine := mr.NewEngine(mr.Config{Store: dfs.NewMem(), Workers: 4})
	ctx, err := core.NewContext(engine, q, rels, opts)
	if err != nil {
		t.Fatal(err)
	}
	res, err := alg.Run(ctx)
	if err != nil {
		t.Fatal(err)
	}
	return float64(res.Metrics.IntermediatePairs)
}

func TestAnalyze(t *testing.T) {
	r := relation.FromIntervals("R", nil)
	s := cost.Analyze(r, 0)
	if s.Count != 0 || s.Span != 1 {
		t.Fatalf("empty stats = %+v", s)
	}
	q := query.MustParse("R1 overlaps R2")
	rels := genRels(t, q, 1000)
	st := cost.Analyze(rels[0], 0)
	if st.Count != 1000 {
		t.Fatalf("count = %d", st.Count)
	}
	// Table1Spec: lengths uniform [1,100] -> mean ~50.5; span ~100K.
	if st.MeanLength < 35 || st.MeanLength > 65 {
		t.Fatalf("mean length = %.1f, want ~50", st.MeanLength)
	}
	if st.Span < 90_000 || st.Span > 100_001 {
		t.Fatalf("span = %.0f", st.Span)
	}
}

// TestEstimatesTrackMeasurements: on uniform workloads the predicted pair
// counts must fall within a factor of 2 of the measured ones.
func TestEstimatesTrackMeasurements(t *testing.T) {
	q := query.MustParse("R1 overlaps R2 and R2 overlaps R3")
	rels := genRels(t, q, 2000)
	stats := make([]cost.RelStats, len(rels))
	for i, r := range rels {
		stats[i] = cost.Analyze(r, 0)
	}
	const k = 16
	opts := core.Options{Partitions: k}

	within := func(name string, est, got float64) {
		t.Helper()
		if est <= 0 || got <= 0 {
			t.Fatalf("%s: nonpositive est=%v got=%v", name, est, got)
		}
		if r := est / got; r < 0.5 || r > 2 {
			t.Errorf("%s: estimate %.0f vs measured %.0f (ratio %.2f) outside [0.5, 2]", name, est, got, r)
		}
	}
	within("all-rep", cost.EstimateAllRep(stats, k).Pairs, measure(t, core.AllRep{}, q, rels, opts))
	within("rccis", cost.EstimateRCCIS(stats, k, 1).Pairs, measure(t, core.RCCIS{}, q, rels, opts))
	within("cascade", cost.EstimateCascade(stats, q, k).Pairs, measure(t, core.Cascade{}, q, rels, opts))
}

func TestEstimateAllMatrixExactRouting(t *testing.T) {
	q := query.MustParse("R1 before R2 and R2 before R3")
	rels := genRels(t, q, 120)
	stats := make([]cost.RelStats, len(rels))
	for i, r := range rels {
		stats[i] = cost.Analyze(r, 0)
	}
	est, err := cost.EstimateAllMatrix(stats, q, 6)
	if err != nil {
		t.Fatal(err)
	}
	got := measure(t, core.AllMatrix{}, q, rels, core.Options{PartitionsPerDim: 6})
	if r := est.Pairs / got; r < 0.8 || r > 1.25 {
		t.Fatalf("all-matrix estimate %.0f vs measured %.0f (ratio %.2f): routing is exact in expectation",
			est.Pairs, got, r)
	}
}

func TestAdviseOrdersAlgorithms(t *testing.T) {
	q := query.MustParse("R1 overlaps R2 and R2 overlaps R3")
	rels := genRels(t, q, 2000)
	ests, err := cost.Advise(q, rels, 16, 6)
	if err != nil {
		t.Fatal(err)
	}
	if len(ests) != 3 {
		t.Fatalf("estimates = %d", len(ests))
	}
	for i := 1; i < len(ests); i++ {
		if ests[i-1].MaxReducerLoad > ests[i].MaxReducerLoad {
			t.Fatal("advice not sorted by straggler load")
		}
	}
	// RCCIS must rank above All-Rep on this workload (as measured in
	// Table 1).
	rank := map[string]int{}
	for i, e := range ests {
		rank[e.Algorithm] = i
	}
	if rank["rccis"] > rank["all-rep"] {
		t.Fatalf("advice ranks all-rep above rccis: %+v", ests)
	}
}

func TestAdviseSequence(t *testing.T) {
	q := query.MustParse("R1 before R2 and R2 before R3")
	rels := genRels(t, q, 500)
	ests, err := cost.Advise(q, rels, 16, 6)
	if err != nil {
		t.Fatal(err)
	}
	if ests[0].Algorithm != "all-matrix" {
		t.Fatalf("sequence advice = %+v, want all-matrix first", ests)
	}
}

func TestAdviseRejectsGeneral(t *testing.T) {
	q := query.MustParse("R1.I overlaps R2.I and R1.A = R2.A")
	if _, err := cost.Advise(q, nil, 16, 6); err == nil {
		t.Fatal("general query accepted")
	}
}

func TestAdvisePartitions(t *testing.T) {
	q := query.MustParse("R1 overlaps R2 and R2 overlaps R3")
	rels := genRels(t, q, 2000)
	k := cost.AdvisePartitions(rels, nil)
	if k < 4 || k > 64 {
		t.Fatalf("advised k = %d outside candidates", k)
	}
	// Long intervals relative to the span push the advice towards fewer
	// partitions (crossing costs dominate).
	longs := make([]*relation.Relation, len(rels))
	for i, s := range q.Relations {
		r, err := workload.Generate(workload.Spec{
			Name: s.Name, NumIntervals: 2000,
			StartDist: workload.Uniform, LengthDist: workload.Uniform,
			TMin: 0, TMax: 10_000, IMin: 4_000, IMax: 8_000, Seed: int64(i + 1),
		})
		if err != nil {
			t.Fatal(err)
		}
		longs[i] = r
	}
	kLong := cost.AdvisePartitions(longs, nil)
	if kLong > k {
		t.Fatalf("long intervals advised k=%d, short k=%d — crossing cost ignored", kLong, k)
	}
	if math.IsNaN(float64(kLong)) {
		t.Fatal("unreachable")
	}
}
