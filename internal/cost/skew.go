package cost

import (
	"intervaljoin/internal/interval"
	"intervaljoin/internal/relation"
)

// Skew-aware estimation: the flat RelStats model assumes uniform start
// points, which underestimates straggler load badly on skewed data. This
// file adds a start-point histogram per relation, a per-partition load
// predictor, and the equi-depth recommendation derived from it.

// Histogram is an equi-width histogram of interval start points.
type Histogram struct {
	// Lo and Hi bound the histogrammed range [Lo, Hi).
	Lo, Hi interval.Point
	// Counts holds the per-bucket start counts.
	Counts []int64
	// Total is the number of sampled starts.
	Total int64
}

// AnalyzeHistogram builds a start-point histogram of one attribute column.
func AnalyzeHistogram(r *relation.Relation, attr, buckets int) Histogram {
	h := Histogram{Counts: make([]int64, buckets)}
	if r.Len() == 0 || buckets < 1 {
		h.Hi = 1
		return h
	}
	lo, hi := r.Tuples[0].Attrs[attr].Start, r.Tuples[0].Attrs[attr].Start
	for _, t := range r.Tuples {
		s := t.Attrs[attr].Start
		if s < lo {
			lo = s
		}
		if s > hi {
			hi = s
		}
	}
	h.Lo, h.Hi = lo, hi+1
	width := float64(h.Hi-h.Lo) / float64(buckets)
	for _, t := range r.Tuples {
		b := int(float64(t.Attrs[attr].Start-h.Lo) / width)
		if b >= buckets {
			b = buckets - 1
		}
		h.Counts[b]++
		h.Total++
	}
	return h
}

// LoadImbalance predicts the max/mean ratio of per-partition start counts
// when the histogrammed column is split into k uniform-width partitions —
// the straggler factor a projecting/splitting algorithm would see. The
// histogram should have at least k buckets for a meaningful answer.
func (h Histogram) LoadImbalance(k int) float64 {
	if h.Total == 0 || k < 1 {
		return 1
	}
	buckets := len(h.Counts)
	loads := make([]int64, k)
	for b, c := range h.Counts {
		// Assign each bucket to the partition containing its midpoint.
		p := b * k / buckets
		if p >= k {
			p = k - 1
		}
		loads[p] += c
	}
	var max, sum int64
	active := 0
	for _, v := range loads {
		if v > max {
			max = v
		}
		sum += v
		if v > 0 {
			active++
		}
	}
	if active == 0 {
		return 1
	}
	mean := float64(sum) / float64(k)
	if mean == 0 {
		return 1
	}
	return float64(max) / mean
}

// RecommendEquiDepth reports whether quantile (equi-depth) partition
// boundaries are advisable for the given relations at k partitions: true
// when the predicted uniform-width straggler factor exceeds the threshold
// (2.0 is a sensible default — below it the quantile boundaries' extra
// splitting costs more than the balance buys).
func RecommendEquiDepth(rels []*relation.Relation, k int, threshold float64) bool {
	if threshold <= 0 {
		threshold = 2
	}
	worst := 1.0
	for _, r := range rels {
		if r.Schema.Arity() == 0 || r.Len() == 0 {
			continue
		}
		h := AnalyzeHistogram(r, 0, 4*k)
		if imb := h.LoadImbalance(k); imb > worst {
			worst = imb
		}
	}
	return worst > threshold
}
