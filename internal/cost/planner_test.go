package cost

import (
	"testing"

	"intervaljoin/internal/interval"
)

func TestPartitionLoads(t *testing.T) {
	part := interval.NewUniform(0, 100, 4)
	sample := []interval.Interval{
		{Start: 5, End: 10},  // partition 0
		{Start: 30, End: 80}, // partitions 1..3
		{Start: 99, End: 99}, // partition 3
	}
	loads := PartitionLoads(sample, part, 2)
	want := []float64{2, 2, 2, 4}
	if len(loads) != len(want) {
		t.Fatalf("loads = %v", loads)
	}
	for i := range want {
		if loads[i] != want[i] {
			t.Fatalf("loads = %v, want %v", loads, want)
		}
	}
	if got := PartitionLoads(nil, part, 1); len(got) != 4 {
		t.Fatalf("empty-sample loads = %v", got)
	}
}

func TestRecommendSplits(t *testing.T) {
	// The fixed point leaves no virtual reducer above 1.25x the mean per
	// key: total 16, and with the hot partition split 6 ways there are 9
	// keys, budget 1.25*16/9 = 2.2 >= 13/6.
	v := RecommendSplits([]float64{1, 1, 1, 13}, 1.25, 8)
	want := []int{1, 1, 1, 6}
	for i := range want {
		if v[i] != want[i] {
			t.Fatalf("splits = %v, want %v", v, want)
		}
	}
	// Cap at maxSplit.
	v = RecommendSplits([]float64{0, 0, 0, 100}, 1.25, 3)
	if v[3] != 3 {
		t.Fatalf("capped splits = %v", v)
	}
	// A tiny threshold forces the minimum split of 2 on anything above mean.
	v = RecommendSplits([]float64{4, 5}, 0.01, 8)
	if v[1] < 2 {
		t.Fatalf("forced splits = %v", v)
	}
	// Uniform loads never split.
	v = RecommendSplits([]float64{4, 4, 4, 4}, 1.25, 8)
	for _, k := range v {
		if k != 1 {
			t.Fatalf("uniform splits = %v", v)
		}
	}
	if got := RecommendSplits(nil, 1.25, 8); len(got) != 0 {
		t.Fatalf("nil loads split = %v", got)
	}
}
