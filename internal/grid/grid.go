// Package grid models the multi-dimensional reducer spaces of the matrix
// algorithms (Sections 7–9): an l-dimensional array of cells where dimension
// k is divided into o_k partitions. A cell is a reducer; its coordinates are
// the per-dimension partition indices. The package enumerates the cells that
// are consistent with the less-than order constraints a query imposes, and
// encodes cell coordinates into the int64 reducer keys of the MR engine.
package grid

import "fmt"

// Grid is an immutable l-dimensional cell space.
type Grid struct {
	dims    []int
	strides []int64
	cells   int64
}

// New builds a grid with dims[k] partitions along dimension k. Every
// dimension must have at least one partition.
func New(dims []int) (Grid, error) {
	if len(dims) == 0 {
		return Grid{}, fmt.Errorf("grid: no dimensions")
	}
	g := Grid{dims: make([]int, len(dims)), strides: make([]int64, len(dims)), cells: 1}
	copy(g.dims, dims)
	for k := len(dims) - 1; k >= 0; k-- {
		if dims[k] < 1 {
			return Grid{}, fmt.Errorf("grid: dimension %d has %d partitions", k, dims[k])
		}
		g.strides[k] = g.cells
		g.cells *= int64(dims[k])
	}
	return g, nil
}

// NewUniform builds an l-dimensional grid with o partitions per dimension.
func NewUniform(l, o int) (Grid, error) {
	dims := make([]int, l)
	for i := range dims {
		dims[i] = o
	}
	return New(dims)
}

// MustNew is New for tests and examples; it panics on error.
func MustNew(dims []int) Grid {
	g, err := New(dims)
	if err != nil {
		panic(err)
	}
	return g
}

// Dims returns a copy of the per-dimension partition counts.
func (g Grid) Dims() []int {
	out := make([]int, len(g.dims))
	copy(out, g.dims)
	return out
}

// NumDims is the dimensionality l.
func (g Grid) NumDims() int { return len(g.dims) }

// NumCells is the total cell count (product of dimensions).
func (g Grid) NumCells() int64 { return g.cells }

// ID encodes cell coordinates into a single reducer key. Coordinates are
// validated; out-of-range coordinates panic (they indicate a routing bug).
func (g Grid) ID(coord []int) int64 {
	if len(coord) != len(g.dims) {
		panic(fmt.Sprintf("grid: coordinate arity %d, grid arity %d", len(coord), len(g.dims)))
	}
	var id int64
	for k, c := range coord {
		if c < 0 || c >= g.dims[k] {
			panic(fmt.Sprintf("grid: coordinate %d out of range [0,%d) in dimension %d", c, g.dims[k], k))
		}
		id += int64(c) * g.strides[k]
	}
	return id
}

// Coord decodes a reducer key back into coordinates, reusing out when it has
// the right length.
func (g Grid) Coord(id int64, out []int) []int {
	if cap(out) < len(g.dims) {
		out = make([]int, len(g.dims))
	}
	out = out[:len(g.dims)]
	for k := range g.dims {
		out[k] = int(id / g.strides[k] % int64(g.dims[k]))
	}
	return out
}

// Less is a consistency constraint between two dimensions: the cell index
// along dimension A must be less than or equal to the index along dimension
// B. It encodes "component/relation A is in less-than order with B".
type Less struct {
	A, B int
}

// Bound restricts the coordinate range of one dimension during enumeration.
type Bound struct {
	Min, Max int // inclusive
}

// FreeBounds returns unconstrained bounds for the grid.
func (g Grid) FreeBounds() []Bound {
	out := make([]Bound, len(g.dims))
	for k := range out {
		out[k] = Bound{Min: 0, Max: g.dims[k] - 1}
	}
	return out
}

// Consistent reports whether coord satisfies every less constraint.
func Consistent(coord []int, cons []Less) bool {
	for _, c := range cons {
		if coord[c.A] > coord[c.B] {
			return false
		}
	}
	return true
}

// Enumerate calls fn with every cell whose coordinates lie within bounds and
// satisfy all less constraints. The coordinate slice passed to fn is reused;
// fn must not retain it. bounds may be nil for the full grid.
func (g Grid) Enumerate(bounds []Bound, cons []Less, fn func(id int64, coord []int)) {
	if bounds == nil {
		bounds = g.FreeBounds()
	}
	if len(bounds) != len(g.dims) {
		panic(fmt.Sprintf("grid: %d bounds for %d dimensions", len(bounds), len(g.dims)))
	}
	// Group constraints by the later of their two dimensions so each is
	// checked as soon as both coordinates are fixed.
	checkAt := make([][]Less, len(g.dims))
	for _, c := range cons {
		later := c.A
		if c.B > later {
			later = c.B
		}
		checkAt[later] = append(checkAt[later], c)
	}
	coord := make([]int, len(g.dims))
	var rec func(k int)
	rec = func(k int) {
		if k == len(g.dims) {
			fn(g.ID(coord), coord)
			return
		}
		lo, hi := bounds[k].Min, bounds[k].Max
		if lo < 0 {
			lo = 0
		}
		if hi > g.dims[k]-1 {
			hi = g.dims[k] - 1
		}
		for c := lo; c <= hi; c++ {
			coord[k] = c
			ok := true
			for _, cn := range checkAt[k] {
				if coord[cn.A] > coord[cn.B] {
					ok = false
					break
				}
			}
			if ok {
				rec(k + 1)
			}
		}
	}
	rec(0)
}

// EnumerateRuns calls fn with every maximal run [lo, hi] of consecutive
// cell ids whose cells lie within bounds and satisfy all less constraints.
// Enumerate visits cells in lexicographic coordinate order, which is
// strictly increasing id order, so coalescing adjacent ids loses nothing:
// whenever the innermost dimension is free, a whole row collapses to one
// run. Feeding the runs to mr.Emitter.EmitRange turns a per-cell broadcast
// into an emit-once range record.
func (g Grid) EnumerateRuns(bounds []Bound, cons []Less, fn func(lo, hi int64)) {
	// hi starts below lo-1 so the first cell can never extend the sentinel.
	lo, hi := int64(-1), int64(-2)
	g.Enumerate(bounds, cons, func(id int64, _ []int) {
		if id == hi+1 {
			hi = id
			return
		}
		if hi >= lo {
			fn(lo, hi)
		}
		lo, hi = id, id
	})
	if hi >= lo {
		fn(lo, hi)
	}
}

// ConsistentCells returns the ids of all cells satisfying the constraints —
// the "consistent reducers" of the paper. Inconsistent cells are never sent
// any data.
func (g Grid) ConsistentCells(cons []Less) []int64 {
	var out []int64
	g.Enumerate(nil, cons, func(id int64, _ []int) { out = append(out, id) })
	return out
}

// CountConsistent returns the number of consistent cells.
func (g Grid) CountConsistent(cons []Less) int64 {
	var n int64
	g.Enumerate(nil, cons, func(int64, []int) { n++ })
	return n
}
