package grid

import (
	"math/rand"
	"testing"
)

func TestNewValidation(t *testing.T) {
	if _, err := New(nil); err == nil {
		t.Error("empty dims accepted")
	}
	if _, err := New([]int{3, 0}); err == nil {
		t.Error("zero-width dimension accepted")
	}
	g, err := NewUniform(3, 6)
	if err != nil {
		t.Fatal(err)
	}
	if g.NumDims() != 3 || g.NumCells() != 216 {
		t.Fatalf("grid = %d dims, %d cells", g.NumDims(), g.NumCells())
	}
}

func TestIDCoordRoundTrip(t *testing.T) {
	g := MustNew([]int{3, 5, 2, 7})
	rng := rand.New(rand.NewSource(1))
	seen := make(map[int64]bool)
	for i := 0; i < 1000; i++ {
		coord := []int{rng.Intn(3), rng.Intn(5), rng.Intn(2), rng.Intn(7)}
		id := g.ID(coord)
		if id < 0 || id >= g.NumCells() {
			t.Fatalf("id %d out of range", id)
		}
		back := g.Coord(id, nil)
		for k := range coord {
			if back[k] != coord[k] {
				t.Fatalf("round trip %v -> %d -> %v", coord, id, back)
			}
		}
		seen[id] = true
	}
	// Distinct coordinates map to distinct ids: enumerate the whole grid.
	all := make(map[int64]bool)
	g.Enumerate(nil, nil, func(id int64, _ []int) {
		if all[id] {
			t.Fatalf("duplicate id %d during enumeration", id)
		}
		all[id] = true
	})
	if int64(len(all)) != g.NumCells() {
		t.Fatalf("enumerated %d cells, want %d", len(all), g.NumCells())
	}
}

func TestIDPanicsOutOfRange(t *testing.T) {
	g := MustNew([]int{2, 2})
	defer func() {
		if recover() == nil {
			t.Fatal("out-of-range coordinate did not panic")
		}
	}()
	g.ID([]int{0, 2})
}

func TestConsistentCellsChain(t *testing.T) {
	// A chain i0 <= i1 <= i2 over o partitions has C(o+2, 3) consistent
	// cells: multisets of size 3 from o values.
	binom := func(n, k int) int64 {
		res := int64(1)
		for i := 0; i < k; i++ {
			res = res * int64(n-i) / int64(i+1)
		}
		return res
	}
	for _, o := range []int{2, 3, 6, 11} {
		g, _ := NewUniform(3, o)
		cons := []Less{{0, 1}, {1, 2}}
		got := g.CountConsistent(cons)
		want := binom(o+2, 3)
		if got != want {
			t.Errorf("o=%d: consistent cells = %d, want %d", o, got, want)
		}
	}
	// The paper's Section 7.1 configuration: 6 partitions per dimension for
	// Q2 = R1 before R2 and R2 before R3. C(8,3) = 56 cells satisfy
	// i0<=i1<=i2; the paper reports 55 (their partitioning drops one corner
	// cell). We document the off-by-one in DESIGN.md and assert our exact
	// combinatorial count.
	g, _ := NewUniform(3, 6)
	if got := g.CountConsistent([]Less{{0, 1}, {1, 2}}); got != 56 {
		t.Errorf("6^3 chain: %d consistent cells, want 56", got)
	}
}

func TestConsistentCellsPaperTable4(t *testing.T) {
	// Q5's Gen-Matrix configuration: 4 dimensions, 5 partitions each, a
	// single order constraint C1 < C2 -> 375 of 625 cells are consistent.
	g, _ := NewUniform(4, 5)
	if got := g.CountConsistent([]Less{{0, 1}}); got != 375 {
		t.Fatalf("consistent cells = %d, want 375 (paper Table 4)", got)
	}
	if g.NumCells() != 625 {
		t.Fatalf("total cells = %d, want 625", g.NumCells())
	}
}

func TestConsistentCells2D(t *testing.T) {
	// Figure 4: 3x3 grid with i0 <= i1 -> 6 consistent reducers of 9.
	g, _ := NewUniform(2, 3)
	cells := g.ConsistentCells([]Less{{0, 1}})
	if len(cells) != 6 {
		t.Fatalf("consistent cells = %d, want 6", len(cells))
	}
	coord := make([]int, 2)
	for _, id := range cells {
		coord = g.Coord(id, coord)
		if coord[0] > coord[1] {
			t.Fatalf("inconsistent cell %v enumerated", coord)
		}
	}
}

func TestEnumerateBounds(t *testing.T) {
	g := MustNew([]int{4, 4})
	var got [][2]int
	bounds := []Bound{{Min: 2, Max: 2}, {Min: 1, Max: 3}}
	g.Enumerate(bounds, []Less{{0, 1}}, func(id int64, coord []int) {
		got = append(got, [2]int{coord[0], coord[1]})
	})
	want := [][2]int{{2, 2}, {2, 3}}
	if len(got) != len(want) {
		t.Fatalf("enumerated %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("enumerated %v, want %v", got, want)
		}
	}
}

func TestEnumerateClampsBounds(t *testing.T) {
	g := MustNew([]int{3})
	var n int
	g.Enumerate([]Bound{{Min: -5, Max: 99}}, nil, func(int64, []int) { n++ })
	if n != 3 {
		t.Fatalf("enumerated %d cells, want 3 (bounds must clamp)", n)
	}
}

func TestEnumerateMatchesBruteForce(t *testing.T) {
	g := MustNew([]int{3, 4, 3})
	cons := []Less{{0, 2}, {1, 0}} // i0<=i2 and i1<=i0
	fast := make(map[int64]bool)
	g.Enumerate(nil, cons, func(id int64, _ []int) { fast[id] = true })
	slow := 0
	for a := 0; a < 3; a++ {
		for b := 0; b < 4; b++ {
			for c := 0; c < 3; c++ {
				if a <= c && b <= a {
					slow++
					if !fast[g.ID([]int{a, b, c})] {
						t.Fatalf("cell (%d,%d,%d) missing from enumeration", a, b, c)
					}
				}
			}
		}
	}
	if len(fast) != slow {
		t.Fatalf("enumeration found %d cells, brute force %d", len(fast), slow)
	}
}

func TestConsistentHelper(t *testing.T) {
	if !Consistent([]int{1, 2}, []Less{{0, 1}}) {
		t.Error("(1,2) should satisfy i0<=i1")
	}
	if Consistent([]int{2, 1}, []Less{{0, 1}}) {
		t.Error("(2,1) should violate i0<=i1")
	}
	if !Consistent([]int{2, 1}, nil) {
		t.Error("no constraints should always be consistent")
	}
}
