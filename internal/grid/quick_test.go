package grid

import (
	"testing"
	"testing/quick"
)

// TestIDCoordQuick: for arbitrary small grids and in-range coordinates, the
// id is dense (0 <= id < NumCells) and Coord inverts ID.
func TestIDCoordQuick(t *testing.T) {
	f := func(d1, d2, d3 uint8, c1, c2, c3 uint8) bool {
		dims := []int{int(d1%5) + 1, int(d2%5) + 1, int(d3%5) + 1}
		g, err := New(dims)
		if err != nil {
			return false
		}
		coord := []int{int(c1) % dims[0], int(c2) % dims[1], int(c3) % dims[2]}
		id := g.ID(coord)
		if id < 0 || id >= g.NumCells() {
			return false
		}
		back := g.Coord(id, nil)
		for k := range coord {
			if back[k] != coord[k] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// TestEnumerateCountQuick: the number of enumerated consistent cells equals
// the brute-force count for random chain constraints.
func TestEnumerateCountQuick(t *testing.T) {
	f := func(d1, d2 uint8, flip bool) bool {
		dims := []int{int(d1%6) + 1, int(d2%6) + 1}
		g, err := New(dims)
		if err != nil {
			return false
		}
		cons := []Less{{A: 0, B: 1}}
		if flip {
			cons = []Less{{A: 1, B: 0}}
		}
		var fast int64
		g.Enumerate(nil, cons, func(int64, []int) { fast++ })
		var slow int64
		for a := 0; a < dims[0]; a++ {
			for b := 0; b < dims[1]; b++ {
				if Consistent([]int{a, b}, cons) {
					slow++
				}
			}
		}
		return fast == slow && fast == g.CountConsistent(cons)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
