package interval

import (
	"fmt"
	"slices"
	"sort"
)

// Partitioning divides a time range [T0, Tn) into contiguous partition-
// intervals p_0, p_1, ..., p_{l-1}. Partition p_i covers [bounds[i],
// bounds[i+1]) — half-open, as in Section 3 of the paper — so every point of
// the range belongs to exactly one partition. Partition indices double as
// reducer ids for the single-dimensional algorithms, and as per-dimension
// coordinates for the matrix algorithms.
type Partitioning struct {
	bounds []Point // len = numPartitions + 1; strictly increasing
}

// NewUniform builds a partitioning of [t0, tn) into n equal-width partitions
// (the last partition absorbs any remainder when the range does not divide
// evenly). It panics if n < 1 or tn <= t0.
func NewUniform(t0, tn Point, n int) Partitioning {
	p, err := MakeUniform(t0, tn, n)
	if err != nil {
		panic(err)
	}
	return p
}

// MakeUniform is the checked variant of NewUniform.
func MakeUniform(t0, tn Point, n int) (Partitioning, error) {
	if n < 1 {
		return Partitioning{}, fmt.Errorf("interval: partitioning needs at least 1 partition, got %d", n)
	}
	if tn <= t0 {
		return Partitioning{}, fmt.Errorf("interval: empty time range [%d, %d)", t0, tn)
	}
	if int64(n) > tn-t0 {
		// More partitions than points: cap so every partition is non-empty.
		n = int(tn - t0)
	}
	width := (tn - t0) / int64(n)
	bounds := make([]Point, n+1)
	for i := 0; i < n; i++ {
		bounds[i] = t0 + int64(i)*width
	}
	bounds[n] = tn
	return Partitioning{bounds: bounds}, nil
}

// NewEquiDepth builds a partitioning of [t0, tn) into at most n partitions
// whose boundaries are quantiles of the sample points, so each partition
// receives a similar number of interval start points even when the data is
// skewed. Duplicate quantiles collapse (heavily repeated points cannot be
// split), so the result may have fewer than n partitions. The sample is
// typically the start points of the staged relations, mirroring the
// sampling pass a Hadoop driver would run.
func NewEquiDepth(t0, tn Point, n int, sample []Point) (Partitioning, error) {
	if len(sample) == 0 {
		return MakeUniform(t0, tn, n)
	}
	if n < 1 {
		return Partitioning{}, fmt.Errorf("interval: partitioning needs at least 1 partition, got %d", n)
	}
	if tn <= t0 {
		return Partitioning{}, fmt.Errorf("interval: empty time range [%d, %d)", t0, tn)
	}
	sorted := make([]Point, len(sample))
	copy(sorted, sample)
	slices.Sort(sorted)
	bounds := make([]Point, 0, n+1)
	bounds = append(bounds, t0)
	for i := 1; i < n; i++ {
		q := sorted[len(sorted)*i/n]
		if q <= bounds[len(bounds)-1] || q >= tn {
			continue // collapse duplicate or out-of-range quantiles
		}
		bounds = append(bounds, q)
	}
	bounds = append(bounds, tn)
	return NewExplicit(bounds)
}

// NewExplicit builds a partitioning from explicit boundaries. bounds must be
// strictly increasing and contain at least two points; partition i covers
// [bounds[i], bounds[i+1]).
func NewExplicit(bounds []Point) (Partitioning, error) {
	if len(bounds) < 2 {
		return Partitioning{}, fmt.Errorf("interval: partitioning needs at least 2 boundaries, got %d", len(bounds))
	}
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			return Partitioning{}, fmt.Errorf("interval: boundaries not strictly increasing at index %d", i)
		}
	}
	p := Partitioning{bounds: make([]Point, len(bounds))}
	copy(p.bounds, bounds)
	return p, nil
}

// Len is the number of partition-intervals.
func (p Partitioning) Len() int { return len(p.bounds) - 1 }

// Range returns the covered time range [t0, tn).
func (p Partitioning) Range() (t0, tn Point) { return p.bounds[0], p.bounds[len(p.bounds)-1] }

// PartitionInterval returns the closed interval form of partition i:
// [bounds[i], bounds[i+1]-1].
func (p Partitioning) PartitionInterval(i int) Interval {
	return Interval{Start: p.bounds[i], End: p.bounds[i+1] - 1}
}

// IndexOf returns the partition containing point t. Points below the range
// clamp to partition 0 and points at or above the range's end clamp to the
// last partition; the algorithms rely on this so that data slightly outside
// an estimated range still routes deterministically.
func (p Partitioning) IndexOf(t Point) int {
	n := p.Len()
	if t < p.bounds[0] {
		return 0
	}
	if t >= p.bounds[n] {
		return n - 1
	}
	// sort.Search finds the first boundary strictly greater than t; the
	// partition index is one less.
	i := sort.Search(n+1, func(i int) bool { return p.bounds[i] > t }) - 1
	return i
}

// Project returns the single partition in which the interval starts
// (Section 3: one key-value pair per interval).
func (p Partitioning) Project(iv Interval) int { return p.IndexOf(iv.Start) }

// Split returns the inclusive range [first, last] of partitions having at
// least one point in common with the interval.
func (p Partitioning) Split(iv Interval) (first, last int) {
	return p.IndexOf(iv.Start), p.IndexOf(iv.End)
}

// Replicate returns the inclusive range [first, last] of partitions that
// contain at least one point greater than or equal to the interval's start:
// every partition from the start partition through the final one.
func (p Partitioning) Replicate(iv Interval) (first, last int) {
	return p.IndexOf(iv.Start), p.Len() - 1
}

// Apply returns the inclusive partition range targeted by op for iv. Project
// yields a single-element range.
func (p Partitioning) Apply(op Op, iv Interval) (first, last int) {
	switch op {
	case OpProject:
		i := p.Project(iv)
		return i, i
	case OpSplit:
		return p.Split(iv)
	case OpReplicate:
		return p.Replicate(iv)
	}
	panic(fmt.Sprintf("interval: invalid op %d", uint8(op)))
}

// PairCount returns the number of key-value pairs op generates for iv — the
// communication cost of the operation in the paper's cost accounting.
func (p Partitioning) PairCount(op Op, iv Interval) int {
	first, last := p.Apply(op, iv)
	return last - first + 1
}

// CrossesRight reports whether the interval crosses the right boundary of
// partition i: its end point lies in a partition following p_i (condition B1
// of Section 5.3).
func (p Partitioning) CrossesRight(iv Interval, i int) bool {
	return p.IndexOf(iv.End) > i
}

// CrossesLeft reports whether the interval crosses the left boundary of
// partition i: its start point lies in a partition preceding p_i (condition
// B2 of Section 5.3).
func (p Partitioning) CrossesLeft(iv Interval, i int) bool {
	return p.IndexOf(iv.Start) < i
}

// String renders the partitioning boundaries.
func (p Partitioning) String() string {
	return fmt.Sprintf("partitioning%v", p.bounds)
}
