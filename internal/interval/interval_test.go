package interval

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestMakeRejectsInverted(t *testing.T) {
	if _, err := Make(5, 4); err == nil {
		t.Fatal("Make(5, 4) succeeded, want error")
	}
	if _, err := Make(4, 4); err != nil {
		t.Fatalf("Make(4, 4) failed: %v", err)
	}
}

func TestNewPanicsOnInverted(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("New(2, 1) did not panic")
		}
	}()
	New(2, 1)
}

func TestPointInterval(t *testing.T) {
	p := PointInterval(7)
	if !p.IsPoint() || p.Start != 7 || p.End != 7 {
		t.Fatalf("PointInterval(7) = %v", p)
	}
	if p.Length() != 0 {
		t.Fatalf("point interval length = %d, want 0", p.Length())
	}
}

func TestContainsPoint(t *testing.T) {
	iv := New(3, 8)
	for _, tc := range []struct {
		p    Point
		want bool
	}{
		{2, false}, {3, true}, {5, true}, {8, true}, {9, false},
	} {
		if got := iv.ContainsPoint(tc.p); got != tc.want {
			t.Errorf("ContainsPoint(%d) = %v, want %v", tc.p, got, tc.want)
		}
	}
}

func TestIntersects(t *testing.T) {
	for _, tc := range []struct {
		a, b Interval
		want bool
	}{
		{New(0, 5), New(5, 10), true},   // touching endpoints share a point
		{New(0, 5), New(6, 10), false},  // adjacent but disjoint
		{New(0, 10), New(3, 4), true},   // containment
		{New(3, 4), New(0, 10), true},   // containment, flipped
		{New(0, 0), New(0, 0), true},    // identical points
		{New(0, 0), New(1, 1), false},   // distinct points
		{New(2, 7), New(5, 11), true},   // partial overlap
		{New(5, 11), New(2, 7), true},   // partial overlap, flipped
		{New(-5, -1), New(0, 3), false}, // negative coordinates
	} {
		if got := tc.a.Intersects(tc.b); got != tc.want {
			t.Errorf("%v.Intersects(%v) = %v, want %v", tc.a, tc.b, got, tc.want)
		}
		if got := tc.b.Intersects(tc.a); got != tc.want {
			t.Errorf("Intersects not symmetric for %v, %v", tc.a, tc.b)
		}
	}
}

func TestIntersection(t *testing.T) {
	got, ok := New(0, 5).Intersection(New(3, 9))
	if !ok || got != New(3, 5) {
		t.Fatalf("Intersection = %v, %v; want [3,5], true", got, ok)
	}
	if _, ok := New(0, 2).Intersection(New(3, 9)); ok {
		t.Fatal("disjoint intervals reported an intersection")
	}
}

func TestUnion(t *testing.T) {
	if got := New(0, 2).Union(New(5, 9)); got != New(0, 9) {
		t.Fatalf("Union = %v, want [0,9]", got)
	}
}

func TestIntersectionSymmetryQuick(t *testing.T) {
	f := func(a1, a2, b1, b2 int16) bool {
		a := normalize(int64(a1), int64(a2))
		b := normalize(int64(b1), int64(b2))
		i1, ok1 := a.Intersection(b)
		i2, ok2 := b.Intersection(a)
		if ok1 != ok2 || i1 != i2 {
			return false
		}
		if ok1 && (!a.Intersects(b) || !i1.Valid()) {
			return false
		}
		return ok1 == a.Intersects(b)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestLessThan(t *testing.T) {
	if !New(0, 10).LessThan(New(0, 2)) {
		t.Fatal("equal starts must be in less-than order")
	}
	if !New(0, 1).LessThan(New(5, 6)) {
		t.Fatal("[0,1] must be less than [5,6]")
	}
	if New(5, 6).LessThan(New(0, 100)) {
		t.Fatal("[5,6] must not be less than [0,100]")
	}
}

func TestCompare(t *testing.T) {
	for _, tc := range []struct {
		a, b Interval
		want int
	}{
		{New(0, 5), New(1, 2), -1},
		{New(1, 2), New(0, 5), 1},
		{New(0, 2), New(0, 5), -1},
		{New(0, 5), New(0, 2), 1},
		{New(0, 5), New(0, 5), 0},
	} {
		if got := tc.a.Compare(tc.b); got != tc.want {
			t.Errorf("%v.Compare(%v) = %d, want %d", tc.a, tc.b, got, tc.want)
		}
	}
}

func TestStringParseRoundTrip(t *testing.T) {
	f := func(s1, s2 int32) bool {
		iv := normalize(int64(s1), int64(s2))
		parsed, err := Parse(iv.String())
		return err == nil && parsed == iv
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestParseForms(t *testing.T) {
	for _, s := range []string{"[1,5]", "1,5", " [ 1 , 5 ] ", "[1, 5]"} {
		iv, err := Parse(s)
		if err != nil || iv != New(1, 5) {
			t.Errorf("Parse(%q) = %v, %v; want [1,5]", s, iv, err)
		}
	}
	for _, s := range []string{"", "[1]", "[a,b]", "[5,1]", "1;5"} {
		if _, err := Parse(s); err == nil {
			t.Errorf("Parse(%q) succeeded, want error", s)
		}
	}
}

func TestLeftMostRightMost(t *testing.T) {
	ivs := []Interval{New(5, 9), New(1, 20), New(7, 8), New(1, 3)}
	if got := LeftMost(ivs); got != 1 {
		t.Errorf("LeftMost = %d, want 1 (first of the tied minimal starts)", got)
	}
	if got := RightMost(ivs); got != 2 {
		t.Errorf("RightMost = %d, want 2", got)
	}
	if LeftMost(nil) != -1 || RightMost(nil) != -1 {
		t.Error("LeftMost/RightMost of empty slice must be -1")
	}
}

// normalize builds a valid interval from two arbitrary points.
func normalize(a, b int64) Interval {
	if a > b {
		a, b = b, a
	}
	return Interval{Start: a, End: b}
}

// randomProperInterval returns an interval with Start < End inside
// [0, limit).
func randomProperInterval(rng *rand.Rand, limit int64) Interval {
	s := rng.Int63n(limit - 1)
	e := s + 1 + rng.Int63n(limit-s-1)
	return Interval{Start: s, End: e}
}
