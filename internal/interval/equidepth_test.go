package interval

import (
	"math/rand"
	"testing"
)

func TestEquiDepthBalancesSkewedSample(t *testing.T) {
	// Heavily front-loaded sample: 90% of points in the first 5% of the
	// range.
	rng := rand.New(rand.NewSource(1))
	var sample []Point
	for i := 0; i < 9000; i++ {
		sample = append(sample, rng.Int63n(50))
	}
	for i := 0; i < 1000; i++ {
		sample = append(sample, 50+rng.Int63n(950))
	}
	p, err := NewEquiDepth(0, 1000, 10, sample)
	if err != nil {
		t.Fatal(err)
	}
	if p.Len() < 5 {
		t.Fatalf("equi-depth collapsed to %d partitions", p.Len())
	}
	counts := make([]int, p.Len())
	for _, s := range sample {
		counts[p.IndexOf(s)]++
	}
	max, min := counts[0], counts[0]
	for _, c := range counts {
		if c > max {
			max = c
		}
		if c < min {
			min = c
		}
	}
	// Uniform partitioning of the same data would put ~9000 points into
	// the first partition of 10 (ratio 9x the mean); equi-depth should be
	// within ~3x.
	mean := float64(len(sample)) / float64(p.Len())
	if float64(max) > 3*mean {
		t.Fatalf("equi-depth max load %d vs mean %.0f; counts=%v", max, mean, counts)
	}

	uni := NewUniform(0, 1000, 10)
	uniCounts := make([]int, uni.Len())
	for _, s := range sample {
		uniCounts[uni.IndexOf(s)]++
	}
	if uniCounts[0] < 3*max {
		t.Fatalf("uniform partitioning (%v) not much worse than equi-depth (max %d) — test data not skewed enough",
			uniCounts, max)
	}
}

func TestEquiDepthCollapsesDuplicates(t *testing.T) {
	// All sample points identical: only one boundary survives.
	sample := make([]Point, 100)
	for i := range sample {
		sample[i] = 42
	}
	p, err := NewEquiDepth(0, 100, 8, sample)
	if err != nil {
		t.Fatal(err)
	}
	if p.Len() > 2 {
		t.Fatalf("duplicate quantiles not collapsed: %d partitions", p.Len())
	}
	// Every point still routes.
	for _, pt := range []Point{0, 41, 42, 43, 99} {
		i := p.IndexOf(pt)
		if i < 0 || i >= p.Len() {
			t.Fatalf("IndexOf(%d) = %d", pt, i)
		}
	}
}

func TestEquiDepthEmptySampleFallsBack(t *testing.T) {
	p, err := NewEquiDepth(0, 100, 4, nil)
	if err != nil {
		t.Fatal(err)
	}
	if p.Len() != 4 {
		t.Fatalf("fallback partitions = %d, want uniform 4", p.Len())
	}
}

func TestEquiDepthValidation(t *testing.T) {
	if _, err := NewEquiDepth(0, 100, 0, []Point{1}); err == nil {
		t.Error("0 partitions accepted")
	}
	if _, err := NewEquiDepth(100, 100, 4, []Point{1}); err == nil {
		t.Error("empty range accepted")
	}
}

func TestEquiDepthIgnoresOutOfRangeQuantiles(t *testing.T) {
	// Sample points outside [t0, tn) must not produce invalid boundaries.
	sample := []Point{-50, -10, 5, 20, 80, 500, 900}
	p, err := NewEquiDepth(0, 100, 5, sample)
	if err != nil {
		t.Fatal(err)
	}
	lo, hi := p.Range()
	if lo != 0 || hi != 100 {
		t.Fatalf("range = [%d,%d)", lo, hi)
	}
	for i := 0; i < p.Len(); i++ {
		iv := p.PartitionInterval(i)
		if iv.Start < 0 || iv.End >= 100 {
			t.Fatalf("partition %d = %v escapes the range", i, iv)
		}
	}
}
