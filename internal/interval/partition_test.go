package interval

import (
	"math/rand"
	"testing"
)

func TestMakeUniformValidation(t *testing.T) {
	if _, err := MakeUniform(0, 100, 0); err == nil {
		t.Error("0 partitions accepted")
	}
	if _, err := MakeUniform(10, 10, 4); err == nil {
		t.Error("empty range accepted")
	}
	if _, err := MakeUniform(20, 10, 4); err == nil {
		t.Error("inverted range accepted")
	}
	p, err := MakeUniform(0, 3, 10) // more partitions than points
	if err != nil {
		t.Fatal(err)
	}
	if p.Len() != 3 {
		t.Fatalf("partition count = %d, want capped 3", p.Len())
	}
}

func TestUniformCoversRangeExactly(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 200; i++ {
		t0 := rng.Int63n(100)
		tn := t0 + 1 + rng.Int63n(1000)
		n := 1 + rng.Intn(20)
		p := NewUniform(t0, tn, n)
		gt0, gtn := p.Range()
		if gt0 != t0 || gtn != tn {
			t.Fatalf("Range = [%d,%d), want [%d,%d)", gt0, gtn, t0, tn)
		}
		// Partitions tile the range with no gaps or overlaps.
		prevEnd := t0 - 1
		for j := 0; j < p.Len(); j++ {
			pi := p.PartitionInterval(j)
			if pi.Start != prevEnd+1 {
				t.Fatalf("partition %d starts at %d, want %d", j, pi.Start, prevEnd+1)
			}
			if pi.End < pi.Start {
				t.Fatalf("partition %d empty: %v", j, pi)
			}
			prevEnd = pi.End
		}
		if prevEnd != tn-1 {
			t.Fatalf("last partition ends at %d, want %d", prevEnd, tn-1)
		}
	}
}

func TestIndexOf(t *testing.T) {
	p := NewUniform(0, 40, 4) // [0,10) [10,20) [20,30) [30,40)
	for _, tc := range []struct {
		pt   Point
		want int
	}{
		{0, 0}, {9, 0}, {10, 1}, {19, 1}, {20, 2}, {30, 3}, {39, 3},
		{-5, 0},  // clamps low
		{40, 3},  // clamps high
		{999, 3}, // clamps high
	} {
		if got := p.IndexOf(tc.pt); got != tc.want {
			t.Errorf("IndexOf(%d) = %d, want %d", tc.pt, got, tc.want)
		}
	}
}

func TestIndexOfConsistentWithPartitionInterval(t *testing.T) {
	p := NewUniform(0, 97, 7) // uneven widths: last partition absorbs remainder
	for pt := Point(0); pt < 97; pt++ {
		i := p.IndexOf(pt)
		if !p.PartitionInterval(i).ContainsPoint(pt) {
			t.Fatalf("point %d mapped to partition %d = %v which does not contain it",
				pt, i, p.PartitionInterval(i))
		}
	}
}

func TestNewExplicit(t *testing.T) {
	p, err := NewExplicit([]Point{0, 5, 50, 51})
	if err != nil {
		t.Fatal(err)
	}
	if p.Len() != 3 {
		t.Fatalf("Len = %d, want 3", p.Len())
	}
	if got := p.IndexOf(5); got != 1 {
		t.Errorf("IndexOf(5) = %d, want 1", got)
	}
	if got := p.IndexOf(50); got != 2 {
		t.Errorf("IndexOf(50) = %d, want 2", got)
	}
	if _, err := NewExplicit([]Point{1}); err == nil {
		t.Error("single boundary accepted")
	}
	if _, err := NewExplicit([]Point{0, 5, 5}); err == nil {
		t.Error("non-increasing boundaries accepted")
	}
}

// TestFigure2Example reproduces the worked example of Figure 2: a relation
// with intervals u and v over a 4-partition range, where projecting yields
// one pair each, splitting yields 2 pairs for u and 1 for v, and replicating
// yields 4 pairs for u and 3 for v.
func TestFigure2Example(t *testing.T) {
	p := NewUniform(0, 40, 4)
	u := New(2, 15)  // starts in p0, crosses into p1
	v := New(12, 18) // entirely inside p1

	if got := p.Project(u); got != 0 {
		t.Errorf("Project(u) = %d, want 0", got)
	}
	if got := p.Project(v); got != 1 {
		t.Errorf("Project(v) = %d, want 1", got)
	}
	if f, l := p.Split(u); f != 0 || l != 1 {
		t.Errorf("Split(u) = [%d,%d], want [0,1]", f, l)
	}
	if f, l := p.Split(v); f != 1 || l != 1 {
		t.Errorf("Split(v) = [%d,%d], want [1,1]", f, l)
	}
	if got := p.PairCount(OpReplicate, u); got != 4 {
		t.Errorf("Replicate(u) pair count = %d, want 4", got)
	}
	if got := p.PairCount(OpReplicate, v); got != 3 {
		t.Errorf("Replicate(v) pair count = %d, want 3", got)
	}
}

func TestApplySemantics(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	p := NewUniform(0, 200, 13)
	for i := 0; i < 5000; i++ {
		iv := randomProperInterval(rng, 200)
		// Project: exactly one pair, the partition holding the start point.
		pf, pl := p.Apply(OpProject, iv)
		if pf != pl || !p.PartitionInterval(pf).ContainsPoint(iv.Start) {
			t.Fatalf("Project(%v) = [%d,%d]", iv, pf, pl)
		}
		// Split: exactly the partitions intersecting the interval.
		sf, sl := p.Apply(OpSplit, iv)
		for j := 0; j < p.Len(); j++ {
			intersects := p.PartitionInterval(j).Intersects(iv)
			inRange := j >= sf && j <= sl
			if intersects != inRange {
				t.Fatalf("Split(%v): partition %d intersects=%v inRange=%v", iv, j, intersects, inRange)
			}
		}
		// Replicate: from the start partition through the last.
		rf, rl := p.Apply(OpReplicate, iv)
		if rf != pf || rl != p.Len()-1 {
			t.Fatalf("Replicate(%v) = [%d,%d], want [%d,%d]", iv, rf, rl, pf, p.Len()-1)
		}
		// Pair-count ordering: project <= split <= replicate.
		if p.PairCount(OpProject, iv) > p.PairCount(OpSplit, iv) ||
			p.PairCount(OpSplit, iv) > p.PairCount(OpReplicate, iv) {
			t.Fatalf("pair count ordering violated for %v", iv)
		}
	}
}

func TestCrossing(t *testing.T) {
	p := NewUniform(0, 40, 4)
	iv := New(12, 25) // starts in p1, ends in p2
	if !p.CrossesRight(iv, 1) {
		t.Error("interval ending in p2 must cross right boundary of p1")
	}
	if p.CrossesRight(iv, 2) {
		t.Error("interval ending in p2 must not cross right boundary of p2")
	}
	if !p.CrossesLeft(iv, 2) {
		t.Error("interval starting in p1 must cross left boundary of p2")
	}
	if p.CrossesLeft(iv, 1) {
		t.Error("interval starting in p1 must not cross left boundary of p1")
	}
}
