package interval

import (
	"math/rand"
	"testing"
)

func TestPredicateSetBasics(t *testing.T) {
	s := NewPredicateSet(Before, Overlaps)
	if !s.Contains(Before) || !s.Contains(Overlaps) || s.Contains(After) {
		t.Fatalf("set membership wrong: %v", s)
	}
	if s.Len() != 2 {
		t.Fatalf("Len = %d", s.Len())
	}
	if EmptySet.Len() != 0 || !EmptySet.Empty() {
		t.Fatal("EmptySet wrong")
	}
	if AllSet.Len() != NumPredicates {
		t.Fatalf("AllSet has %d members", AllSet.Len())
	}
	if got := s.Union(NewPredicateSet(After)).Len(); got != 3 {
		t.Fatalf("union len = %d", got)
	}
	if got := s.Intersect(NewPredicateSet(Before, After)); got != NewPredicateSet(Before) {
		t.Fatalf("intersect = %v", got)
	}
	if s.String() != "{before overlaps}" {
		t.Fatalf("String = %q", s.String())
	}
}

func TestPredicateSetInverse(t *testing.T) {
	s := NewPredicateSet(Before, Contains, Starts)
	inv := s.Inverse()
	want := NewPredicateSet(After, ContainedBy, StartedBy)
	if inv != want {
		t.Fatalf("Inverse = %v, want %v", inv, want)
	}
	if inv.Inverse() != s {
		t.Fatal("Inverse not involutive")
	}
}

// TestComposeProperClassicEntries checks well-known textbook cells of
// Allen's composition table over proper intervals.
func TestComposeProperClassicEntries(t *testing.T) {
	// before ∘ before = {before}: transitivity.
	if got := ComposeProper(Before, Before); got != NewPredicateSet(Before) {
		t.Errorf("before∘before = %v, want {before}", got)
	}
	// meets ∘ meets = {before}: u meets v meets w puts u strictly before w.
	if got := ComposeProper(Meets, Meets); got != NewPredicateSet(Before) {
		t.Errorf("meets∘meets = %v, want {before}", got)
	}
	// contains ∘ contains = {contains}.
	if got := ComposeProper(Contains, Contains); got != NewPredicateSet(Contains) {
		t.Errorf("contains∘contains = %v, want {contains}", got)
	}
	// equals is the identity of composition.
	for p := Predicate(0); p < NumPredicates; p++ {
		if got := ComposeProper(Equals, p); got != NewPredicateSet(p) {
			t.Errorf("equals∘%v = %v, want {%v}", p, got, p)
		}
		if got := ComposeProper(p, Equals); got != NewPredicateSet(p) {
			t.Errorf("%v∘equals = %v, want {%v}", p, got, p)
		}
	}
	// during ∘ before = {before}: inside something that is before w.
	if got := ComposeProper(ContainedBy, Before); got != NewPredicateSet(Before) {
		t.Errorf("during∘before = %v, want {before}", got)
	}
	// before ∘ after is the full set: no information.
	if got := ComposeProper(Before, After); got != AllSet {
		t.Errorf("before∘after = %v, want all thirteen", got)
	}
	// overlaps ∘ overlaps: the classic {before, meets, overlaps}.
	want := NewPredicateSet(Before, Meets, Overlaps)
	if got := ComposeProper(Overlaps, Overlaps); got != want {
		t.Errorf("overlaps∘overlaps = %v, want %v", got, want)
	}
}

// TestComposeDegenerateExtension: the point-sound canonical table is a
// superset of the proper table cell-wise, and canonical composition of
// equals stays {equals} (identical intervals compose to identity even for
// points — the degenerate multi-holding lives in CanonicalSet instead).
func TestComposeDegenerateExtension(t *testing.T) {
	for p := Predicate(0); p < NumPredicates; p++ {
		for q := Predicate(0); q < NumPredicates; q++ {
			proper := ComposeProper(p, q)
			sound := Compose(p, q)
			if proper.Intersect(sound) != proper {
				t.Fatalf("%v∘%v: proper table %v not a subset of sound table %v", p, q, proper, sound)
			}
		}
	}
	if got := Compose(Equals, Equals); got != NewPredicateSet(Equals) {
		t.Fatalf("equals∘equals = %v, want {equals}", got)
	}
	if got := ComposeProper(Equals, Equals); got != NewPredicateSet(Equals) {
		t.Fatalf("equals∘equals (proper) = %v, want {equals}", got)
	}
}

// TestRelateInverseSymmetry: the canonical relation respects operand
// swapping, which the constraint network's inverse maintenance relies on.
func TestRelateInverseSymmetry(t *testing.T) {
	var ivs []Interval
	for s := Point(0); s < 7; s++ {
		for e := s; e < 7; e++ {
			ivs = append(ivs, Interval{Start: s, End: e})
		}
	}
	for _, u := range ivs {
		for _, v := range ivs {
			if Relate(v, u) != Relate(u, v).Inverse() {
				t.Fatalf("Relate(%v,%v)=%v but Relate(%v,%v)=%v",
					u, v, Relate(u, v), v, u, Relate(v, u))
			}
		}
	}
}

// TestComposeSoundOnRandomTriples: the canonical relation between u and w
// must be in the composed set of the canonical relations of (u,v) and
// (v,w) — on proper and degenerate intervals alike — and every holding
// predicate's canonical set must contain the pair's canonical relation.
func TestComposeSoundOnRandomTriples(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	randIv := func() Interval {
		s := rng.Int63n(30)
		return Interval{Start: s, End: s + rng.Int63n(10)} // may be a point
	}
	for trial := 0; trial < 50000; trial++ {
		u, v, w := randIv(), randIv(), randIv()
		p, q, r := Relate(u, v), Relate(v, w), Relate(u, w)
		if !Compose(p, q).Contains(r) {
			t.Fatalf("Relate: %v∘%v must allow %v (u=%v v=%v w=%v)", p, q, r, u, v, w)
		}
		for hp := Predicate(0); hp < NumPredicates; hp++ {
			if hp.Eval(u, v) && !CanonicalSet(hp).Contains(p) {
				t.Fatalf("%v holds for (%v,%v) with canonical %v, but CanonicalSet(%v) = %v",
					hp, u, v, p, hp, CanonicalSet(hp))
			}
		}
	}
}

func TestCanonicalSet(t *testing.T) {
	// Proper-interval predicates with no point coincidences are exactly
	// themselves plus the point-degenerate canonicals.
	if got := CanonicalSet(Before); got != NewPredicateSet(Before) {
		t.Errorf("CanonicalSet(before) = %v, want {before}", got)
	}
	// Two equal points satisfy meets; the canonical relation is equals.
	if got := CanonicalSet(Meets); !got.Contains(Equals) || !got.Contains(Meets) {
		t.Errorf("CanonicalSet(meets) = %v, want to include meets and equals", got)
	}
	// Overlaps requires three strictly ordered distinct endpoints per
	// side, impossible to fake with points.
	if got := CanonicalSet(Overlaps); got != NewPredicateSet(Overlaps) {
		t.Errorf("CanonicalSet(overlaps) = %v, want {overlaps}", got)
	}
}

// TestComposeInverseSymmetry: Compose(p, q) inverted equals
// Compose(q', p').
func TestComposeInverseSymmetry(t *testing.T) {
	for p := Predicate(0); p < NumPredicates; p++ {
		for q := Predicate(0); q < NumPredicates; q++ {
			if Compose(p, q).Inverse() != Compose(q.Inverse(), p.Inverse()) {
				t.Fatalf("inverse symmetry broken for %v, %v", p, q)
			}
		}
	}
}

func TestComposeSets(t *testing.T) {
	a := NewPredicateSet(Before, Meets)
	b := NewPredicateSet(Before)
	got := ComposeSets(a, b)
	if got != NewPredicateSet(Before) {
		t.Fatalf("ComposeSets = %v, want {before}", got)
	}
	if ComposeSets(EmptySet, AllSet) != EmptySet {
		t.Fatal("compose with empty set must be empty")
	}
}
