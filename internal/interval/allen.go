package interval

import "fmt"

// Predicate identifies one of the thirteen relations of Allen's interval
// algebra (Allen, CACM 1983). The predicates are evaluated over closed
// integer intervals; for proper intervals (Start < End) the thirteen
// relations are jointly exhaustive and pairwise disjoint.
type Predicate uint8

// The thirteen Allen relations. Each relation P has an inverse P' such that
// P(u, v) holds exactly when P'(v, u) holds; the inverse pairs are listed
// adjacently.
const (
	Before       Predicate = iota // u entirely precedes v: u.End < v.Start
	After                         // u entirely follows v: inverse of Before
	Meets                         // u's end coincides with v's start: u.End == v.Start
	MetBy                         // inverse of Meets
	Overlaps                      // u starts first and ends within v: u.Start < v.Start, v.Start < u.End < v.End
	OverlappedBy                  // inverse of Overlaps
	Contains                      // u strictly contains v: u.Start < v.Start, v.End < u.End
	ContainedBy                   // inverse of Contains (Allen's "during")
	Starts                        // u and v start together, u ends first: u.Start == v.Start, u.End < v.End
	StartedBy                     // inverse of Starts
	Finishes                      // u and v end together, u starts later: u.End == v.End, u.Start > v.Start
	FinishedBy                    // inverse of Finishes
	Equals                        // identical endpoints
)

// NumPredicates is the number of Allen relations.
const NumPredicates = 13

var predicateNames = [NumPredicates]string{
	Before:       "before",
	After:        "after",
	Meets:        "meets",
	MetBy:        "metby",
	Overlaps:     "overlaps",
	OverlappedBy: "overlappedby",
	Contains:     "contains",
	ContainedBy:  "containedby",
	Starts:       "starts",
	StartedBy:    "startedby",
	Finishes:     "finishes",
	FinishedBy:   "finishedby",
	Equals:       "equals",
}

// String returns the lower-case name of the predicate as used by the query
// language ("overlaps", "before", ...).
func (p Predicate) String() string {
	if int(p) < len(predicateNames) {
		return predicateNames[p]
	}
	return fmt.Sprintf("predicate(%d)", uint8(p))
}

// ParsePredicate maps a name (case-insensitive, with a few aliases such as
// "during" for containedby and "=" for equals) to a Predicate.
func ParsePredicate(name string) (Predicate, error) {
	switch normalizePredicateName(name) {
	case "before", "<":
		return Before, nil
	case "after", ">":
		return After, nil
	case "meets":
		return Meets, nil
	case "metby":
		return MetBy, nil
	case "overlaps", "overlap":
		return Overlaps, nil
	case "overlappedby":
		return OverlappedBy, nil
	case "contains":
		return Contains, nil
	case "containedby", "during":
		return ContainedBy, nil
	case "starts":
		return Starts, nil
	case "startedby":
		return StartedBy, nil
	case "finishes":
		return Finishes, nil
	case "finishedby":
		return FinishedBy, nil
	case "equals", "equal", "=", "==":
		return Equals, nil
	}
	return 0, fmt.Errorf("interval: unknown Allen predicate %q", name)
}

func normalizePredicateName(name string) string {
	out := make([]byte, 0, len(name))
	for i := 0; i < len(name); i++ {
		c := name[i]
		switch {
		case c >= 'A' && c <= 'Z':
			out = append(out, c+'a'-'A')
		case c == ' ' || c == '-' || c == '_':
			// Dropped: "overlapped by" == "overlappedby".
		default:
			out = append(out, c)
		}
	}
	return string(out)
}

// Eval reports whether predicate p holds for the ordered pair (u, v).
func (p Predicate) Eval(u, v Interval) bool {
	switch p {
	case Before:
		return u.End < v.Start
	case After:
		return v.End < u.Start
	case Meets:
		return u.End == v.Start
	case MetBy:
		return v.End == u.Start
	case Overlaps:
		return u.Start < v.Start && v.Start < u.End && u.End < v.End
	case OverlappedBy:
		return v.Start < u.Start && u.Start < v.End && v.End < u.End
	case Contains:
		return u.Start < v.Start && v.End < u.End
	case ContainedBy:
		return v.Start < u.Start && u.End < v.End
	case Starts:
		return u.Start == v.Start && u.End < v.End
	case StartedBy:
		return u.Start == v.Start && v.End < u.End
	case Finishes:
		return u.End == v.End && u.Start > v.Start
	case FinishedBy:
		return u.End == v.End && v.Start > u.Start
	case Equals:
		return u.Start == v.Start && u.End == v.End
	}
	panic(fmt.Sprintf("interval: invalid predicate %d", uint8(p)))
}

// Inverse returns the predicate p' with p(u, v) == p'(v, u).
func (p Predicate) Inverse() Predicate {
	switch p {
	case Before:
		return After
	case After:
		return Before
	case Meets:
		return MetBy
	case MetBy:
		return Meets
	case Overlaps:
		return OverlappedBy
	case OverlappedBy:
		return Overlaps
	case Contains:
		return ContainedBy
	case ContainedBy:
		return Contains
	case Starts:
		return StartedBy
	case StartedBy:
		return Starts
	case Finishes:
		return FinishedBy
	case FinishedBy:
		return Finishes
	case Equals:
		return Equals
	}
	panic(fmt.Sprintf("interval: invalid predicate %d", uint8(p)))
}

// IsSequence reports whether p is a sequence-based predicate: the two
// intervals are required to be disjoint (before / after). All other Allen
// relations are colocation-based.
func (p Predicate) IsSequence() bool { return p == Before || p == After }

// IsColocation reports whether p is a colocation-based predicate, i.e. it
// requires the two intervals to share at least one point.
func (p Predicate) IsColocation() bool { return !p.IsSequence() }

// Relations returns the set of all Allen predicates holding for the ordered
// pair (u, v): exactly one for proper intervals, possibly several when an
// operand is a point (two equal points satisfy meets, starts, finishes and
// equals at once).
func Relations(u, v Interval) PredicateSet {
	var s PredicateSet
	for p := Predicate(0); p < NumPredicates; p++ {
		if p.Eval(u, v) {
			s = s.Add(p)
		}
	}
	return s
}

// Relate classifies the ordered pair (u, v) into its unique Allen relation.
// For proper intervals exactly one of the thirteen predicates holds; Relate
// returns it. For degenerate (point) intervals several relation definitions
// coincide; Relate resolves them in the fixed order Equals, Before, After,
// Meets, MetBy, Starts, StartedBy, Finishes, FinishedBy, Contains,
// ContainedBy, Overlaps, OverlappedBy.
func Relate(u, v Interval) Predicate {
	order := [NumPredicates]Predicate{
		Equals, Before, After, Meets, MetBy, Starts, StartedBy,
		Finishes, FinishedBy, Contains, ContainedBy, Overlaps, OverlappedBy,
	}
	for _, p := range order {
		if p.Eval(u, v) {
			return p
		}
	}
	panic(fmt.Sprintf("interval: no Allen relation holds for %v, %v", u, v))
}

// Order describes the less-than order a predicate enforces between its two
// operand relations (Section 5.1, Figure 1 of the paper).
type Order uint8

const (
	// LeftLess means the predicate forces the left operand to be in
	// less-than order with the right operand (left starts no later).
	LeftLess Order = iota
	// RightLess means the predicate forces the right operand to be in
	// less-than order with the left operand.
	RightLess
)

// LessThanOrder returns the less-than order predicate p enforces between its
// left and right operand relations. Every Allen predicate enforces one: if
// p(u, v) holds then the "lesser" interval starts no later than the other.
// For the symmetric-start predicates (starts, startedby, equals) both
// directions hold; the canonical direction LeftLess is returned.
func (p Predicate) LessThanOrder() Order {
	switch p {
	case Before, Meets, Overlaps, Contains, FinishedBy, Starts, StartedBy, Equals:
		return LeftLess
	case After, MetBy, OverlappedBy, ContainedBy, Finishes:
		return RightLess
	}
	panic(fmt.Sprintf("interval: invalid predicate %d", uint8(p)))
}

// Op is a map-side communication operation of Section 3: every relation in a
// 2-way join is either projected, split, or replicated over the partitioning.
type Op uint8

const (
	// OpProject sends an interval only to the partition containing its
	// start point.
	OpProject Op = iota
	// OpSplit sends an interval to every partition it intersects.
	OpSplit
	// OpReplicate sends an interval to every partition from its start
	// partition through the last partition.
	OpReplicate
)

// String names the operation.
func (op Op) String() string {
	switch op {
	case OpProject:
		return "project"
	case OpSplit:
		return "split"
	case OpReplicate:
		return "replicate"
	}
	return fmt.Sprintf("op(%d)", uint8(op))
}

// Strategy is the pair of map-side operations that computes a 2-way interval
// join for one Allen predicate (Figure 1, column 3): Left is applied to the
// left operand relation and Right to the right operand relation. The
// operations guarantee that every satisfying pair of intervals meets at the
// single reducer on which the projected ("greater") interval lands.
type Strategy struct {
	Left  Op
	Right Op
}

// JoinStrategy returns the Project/Split/Replicate assignment for a 2-way
// join on predicate p.
//
// The rule follows the paper: the relation whose intervals start later under
// the predicate's less-than order is projected; for sequence predicates the
// earlier relation is replicated (matching pairs may be arbitrarily far
// apart), while for colocation predicates it is split (the earlier interval
// is guaranteed to reach the partition in which the later one starts). When
// the predicate forces equal start points both relations are projected.
func JoinStrategy(p Predicate) Strategy {
	switch p {
	case Before:
		return Strategy{Left: OpReplicate, Right: OpProject}
	case After:
		return Strategy{Left: OpProject, Right: OpReplicate}
	case Overlaps, Contains, Meets, FinishedBy:
		return Strategy{Left: OpSplit, Right: OpProject}
	case OverlappedBy, ContainedBy, MetBy, Finishes:
		return Strategy{Left: OpProject, Right: OpSplit}
	case Starts, StartedBy, Equals:
		return Strategy{Left: OpProject, Right: OpProject}
	}
	panic(fmt.Sprintf("interval: invalid predicate %d", uint8(p)))
}
