package interval

import (
	"math/rand"
	"testing"
)

func benchPairs(n int) []Interval {
	rng := rand.New(rand.NewSource(1))
	out := make([]Interval, n)
	for i := range out {
		s := rng.Int63n(1 << 20)
		out[i] = Interval{Start: s, End: s + rng.Int63n(1024)}
	}
	return out
}

func BenchmarkPredicateEval(b *testing.B) {
	ivs := benchPairs(1024)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		u := ivs[i%len(ivs)]
		v := ivs[(i*7+3)%len(ivs)]
		for p := Predicate(0); p < NumPredicates; p++ {
			if p.Eval(u, v) {
				break
			}
		}
	}
}

func BenchmarkRelate(b *testing.B) {
	ivs := benchPairs(1024)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Relate(ivs[i%len(ivs)], ivs[(i*7+3)%len(ivs)])
	}
}

func BenchmarkPartitionSplit(b *testing.B) {
	part := NewUniform(0, 1<<20, 64)
	ivs := benchPairs(1024)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		part.Split(ivs[i%len(ivs)])
	}
}

func BenchmarkPartitionIndexOf(b *testing.B) {
	part := NewUniform(0, 1<<20, 1024)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		part.IndexOf(int64(i) % (1 << 20))
	}
}

func BenchmarkCompose(b *testing.B) {
	Compose(Before, Before) // build tables outside the loop
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Compose(Predicate(i%int(NumPredicates)), Predicate((i/13)%int(NumPredicates)))
	}
}

func BenchmarkComposeSets(b *testing.B) {
	a := NewPredicateSet(Before, Meets, Overlaps)
	c := NewPredicateSet(Contains, Overlaps)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ComposeSets(a, c)
	}
}
