package interval

import (
	"strings"
	"sync"
)

// PredicateSet is a bitmask over the thirteen Allen relations, used by the
// composition table and the query-satisfiability reasoning.
type PredicateSet uint16

// EmptySet is the set containing no relations; AllSet contains all
// thirteen.
const (
	EmptySet PredicateSet = 0
	AllSet   PredicateSet = 1<<NumPredicates - 1
)

// NewPredicateSet builds a set from the given predicates.
func NewPredicateSet(ps ...Predicate) PredicateSet {
	var s PredicateSet
	for _, p := range ps {
		s |= 1 << p
	}
	return s
}

// Contains reports whether p is in the set.
func (s PredicateSet) Contains(p Predicate) bool { return s&(1<<p) != 0 }

// Add returns the set with p added.
func (s PredicateSet) Add(p Predicate) PredicateSet { return s | 1<<p }

// Intersect returns the set intersection.
func (s PredicateSet) Intersect(o PredicateSet) PredicateSet { return s & o }

// Union returns the set union.
func (s PredicateSet) Union(o PredicateSet) PredicateSet { return s | o }

// Empty reports whether no relation is in the set.
func (s PredicateSet) Empty() bool { return s == 0 }

// Len counts the relations in the set.
func (s PredicateSet) Len() int {
	n := 0
	for p := Predicate(0); p < NumPredicates; p++ {
		if s.Contains(p) {
			n++
		}
	}
	return n
}

// Predicates lists the set's members in predicate order.
func (s PredicateSet) Predicates() []Predicate {
	out := make([]Predicate, 0, s.Len())
	for p := Predicate(0); p < NumPredicates; p++ {
		if s.Contains(p) {
			out = append(out, p)
		}
	}
	return out
}

// Inverse returns {p' : p in s}, the feasible relations with the operands
// swapped.
func (s PredicateSet) Inverse() PredicateSet {
	var out PredicateSet
	for p := Predicate(0); p < NumPredicates; p++ {
		if s.Contains(p) {
			out = out.Add(p.Inverse())
		}
	}
	return out
}

// String renders the set as "{before overlaps ...}".
func (s PredicateSet) String() string {
	var b strings.Builder
	b.WriteByte('{')
	for i, p := range s.Predicates() {
		if i > 0 {
			b.WriteByte(' ')
		}
		b.WriteString(p.String())
	}
	b.WriteByte('}')
	return b.String()
}

// composition holds Allen's 13x13 composition table over *canonical*
// relations: composition[p][q] is the set of canonical relations Relate(u,w)
// possible given Relate(u,v) == p and Relate(v,w) == q. Canonical relations
// are unique per interval pair even for degenerate (point) intervals, which
// restores the classic constraint-network semantics that multi-holding
// point relations would otherwise break. compositionProper is the textbook
// table, derived over proper intervals only (where Relate and "holds" agree
// and the table is tighter).
//
// The tables are derived, not transcribed: every triple of intervals over a
// 12-point domain is enumerated and each observed (p, q) -> r combination
// recorded. Twelve points suffice for completeness — three intervals have
// six endpoints, and any real configuration is order-isomorphic to one over
// at most 12 integers, so every realizable composition is witnessed.
var (
	composition       [NumPredicates][NumPredicates]PredicateSet
	compositionProper [NumPredicates][NumPredicates]PredicateSet
	// canonicalOf[p] is the set of canonical relations a pair can have
	// while predicate p holds for it: for proper intervals just {p}, but
	// point pairs satisfy several predicates at once (e.g. two equal
	// points satisfy both meets and equals, canonically equals).
	canonicalOf     [NumPredicates]PredicateSet
	compositionOnce sync.Once
)

func buildCompositionTables() {
	buildComposition(&composition, true)
	buildComposition(&compositionProper, false)
	const domain = 8
	for s := Point(0); s < domain; s++ {
		for e := s; e < domain; e++ {
			u := Interval{Start: s, End: e}
			for s2 := Point(0); s2 < domain; s2++ {
				for e2 := s2; e2 < domain; e2++ {
					v := Interval{Start: s2, End: e2}
					canon := Relate(u, v)
					for _, p := range Relations(u, v).Predicates() {
						canonicalOf[p] = canonicalOf[p].Add(canon)
					}
				}
			}
		}
	}
}

func buildComposition(table *[NumPredicates][NumPredicates]PredicateSet, includePoints bool) {
	const domain = 12
	var ivs []Interval
	for s := Point(0); s < domain; s++ {
		e := s
		if !includePoints {
			e = s + 1
		}
		for ; e < domain; e++ {
			ivs = append(ivs, Interval{Start: s, End: e})
		}
	}
	// Cache per-pair canonical relations to keep the triple loop cheap.
	canon := make([][]Predicate, len(ivs))
	for i := range ivs {
		canon[i] = make([]Predicate, len(ivs))
		for j := range ivs {
			canon[i][j] = Relate(ivs[i], ivs[j])
		}
	}
	for i := range ivs {
		for j := range ivs {
			p := canon[i][j]
			for k := range ivs {
				q := canon[j][k]
				table[p][q] = table[p][q].Add(canon[i][k])
			}
		}
	}
}

// Compose returns the canonical relations possible between u and w given
// canonical relations p between (u, v) and q between (v, w) — one cell of
// Allen's composition table, extended to remain sound over degenerate
// (point) intervals. For instance before∘after includes every relation, and
// equals∘equals is just {equals} (canonically; two equal points also
// *satisfy* meets, which CanonicalSet accounts for).
func Compose(p, q Predicate) PredicateSet {
	compositionOnce.Do(buildCompositionTables)
	return composition[p][q]
}

// ComposeProper is the textbook composition table, valid when all intervals
// are proper (Start < End). It can be tighter than Compose, so reasoning
// over proper-interval data proves more queries empty.
func ComposeProper(p, q Predicate) PredicateSet {
	compositionOnce.Do(buildCompositionTables)
	return compositionProper[p][q]
}

// CanonicalSet returns the canonical relations a pair of intervals can have
// while p holds for it. For proper intervals this is {p}; point pairs admit
// more (two equal points satisfy meets, starts, finishes and equals at
// once, canonically equals).
func CanonicalSet(p Predicate) PredicateSet {
	compositionOnce.Do(buildCompositionTables)
	return canonicalOf[p]
}

// ComposeSets lifts Compose to sets: the relations possible between u and w
// given that some relation in a holds for (u, v) and some relation in b for
// (v, w).
func ComposeSets(a, b PredicateSet) PredicateSet {
	return composeSets(a, b, Compose)
}

// ComposeSetsProper is ComposeSets over the proper-interval table.
func ComposeSetsProper(a, b PredicateSet) PredicateSet {
	return composeSets(a, b, ComposeProper)
}

func composeSets(a, b PredicateSet, table func(Predicate, Predicate) PredicateSet) PredicateSet {
	var out PredicateSet
	for _, p := range a.Predicates() {
		for _, q := range b.Predicates() {
			out = out.Union(table(p, q))
		}
	}
	return out
}
