// Package interval implements the interval data model used throughout the
// library: closed integer intervals [Start, End], the thirteen relations of
// Allen's interval algebra, the less-than order those relations imply, and
// the Project / Split / Replicate partitioning operations from Section 3 of
// "Processing Interval Joins On Map-Reduce" (EDBT 2014).
package interval

import (
	"errors"
	"fmt"
	"strconv"
	"strings"
)

// Point is a position on the (discrete) time line. All intervals are defined
// over Points. Real-valued attributes are modelled as degenerate intervals
// with Start == End, as the paper does ("a real-valued data point is an
// interval of length 0").
type Point = int64

// Interval is a closed interval [Start, End] on the time line. It contains
// every point p with Start <= p <= End, including both endpoints. The zero
// value is the degenerate interval [0, 0].
type Interval struct {
	Start Point
	End   Point
}

// ErrInverted reports an interval whose end precedes its start.
var ErrInverted = errors.New("interval: end precedes start")

// New returns the interval [start, end]. It panics if end < start; use Make
// for a checked constructor.
func New(start, end Point) Interval {
	iv, err := Make(start, end)
	if err != nil {
		panic(err)
	}
	return iv
}

// Make returns the interval [start, end], or ErrInverted if end < start.
func Make(start, end Point) (Interval, error) {
	if end < start {
		return Interval{}, fmt.Errorf("%w: [%d, %d]", ErrInverted, start, end)
	}
	return Interval{Start: start, End: end}, nil
}

// PointInterval returns the degenerate interval [p, p] that models the
// real-valued point p.
func PointInterval(p Point) Interval { return Interval{Start: p, End: p} }

// Valid reports whether the interval is well formed (Start <= End).
func (iv Interval) Valid() bool { return iv.Start <= iv.End }

// Length is the extent of the interval: End - Start. A point interval has
// length 0.
func (iv Interval) Length() int64 { return iv.End - iv.Start }

// IsPoint reports whether the interval is degenerate (length 0), i.e. a
// real-valued data point in the paper's terminology.
func (iv Interval) IsPoint() bool { return iv.Start == iv.End }

// ContainsPoint reports whether p lies within the closed interval.
func (iv Interval) ContainsPoint(p Point) bool {
	return iv.Start <= p && p <= iv.End
}

// Intersects reports whether the two closed intervals share at least one
// point. This is the paper's notion of colocation of two intervals.
func (iv Interval) Intersects(other Interval) bool {
	return iv.Start <= other.End && other.Start <= iv.End
}

// Intersection returns the common part of the two intervals and whether it
// is non-empty.
func (iv Interval) Intersection(other Interval) (Interval, bool) {
	s := max64(iv.Start, other.Start)
	e := min64(iv.End, other.End)
	if e < s {
		return Interval{}, false
	}
	return Interval{Start: s, End: e}, true
}

// Union returns the smallest interval covering both inputs. The inputs need
// not intersect; any gap between them is included in the result.
func (iv Interval) Union(other Interval) Interval {
	return Interval{Start: min64(iv.Start, other.Start), End: max64(iv.End, other.End)}
}

// LessThan reports whether iv is in less-than order with other, i.e. whether
// iv starts no later than other (Section 5.1 of the paper: "an interval u is
// said to be in less-than order with interval v if u's start is less than or
// equal to v's start").
func (iv Interval) LessThan(other Interval) bool { return iv.Start <= other.Start }

// Compare orders intervals by start point, breaking ties by end point. It
// returns -1, 0 or +1. Sorting a slice of intervals with Compare yields the
// less-than order used by the reducers to track consistent interval-sets.
func (iv Interval) Compare(other Interval) int {
	switch {
	case iv.Start < other.Start:
		return -1
	case iv.Start > other.Start:
		return 1
	case iv.End < other.End:
		return -1
	case iv.End > other.End:
		return 1
	}
	return 0
}

// String renders the interval as "[start,end]".
func (iv Interval) String() string {
	return "[" + strconv.FormatInt(iv.Start, 10) + "," + strconv.FormatInt(iv.End, 10) + "]"
}

// Parse parses the textual form produced by String: "[start,end]". It also
// accepts the bare form "start,end".
func Parse(s string) (Interval, error) {
	s = strings.TrimSpace(s)
	s = strings.TrimPrefix(s, "[")
	s = strings.TrimSuffix(s, "]")
	comma := strings.IndexByte(s, ',')
	if comma < 0 {
		return Interval{}, fmt.Errorf("interval: cannot parse %q: missing comma", s)
	}
	start, err := strconv.ParseInt(strings.TrimSpace(s[:comma]), 10, 64)
	if err != nil {
		return Interval{}, fmt.Errorf("interval: bad start in %q: %v", s, err)
	}
	end, err := strconv.ParseInt(strings.TrimSpace(s[comma+1:]), 10, 64)
	if err != nil {
		return Interval{}, fmt.Errorf("interval: bad end in %q: %v", s, err)
	}
	return Make(start, end)
}

// LeftMost returns the index of an interval whose start point is minimal in
// ivs, or -1 for an empty slice. When several intervals share the minimal
// start the first one is returned (the paper allows multiple left-most
// intervals; any representative suffices).
func LeftMost(ivs []Interval) int {
	best := -1
	for i, iv := range ivs {
		if best < 0 || iv.Start < ivs[best].Start {
			best = i
		}
	}
	return best
}

// RightMost returns the index of an interval whose start point is maximal in
// ivs, or -1 for an empty slice.
func RightMost(ivs []Interval) int {
	best := -1
	for i, iv := range ivs {
		if best < 0 || iv.Start > ivs[best].Start {
			best = i
		}
	}
	return best
}

func min64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}
