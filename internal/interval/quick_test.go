package interval

import (
	"testing"
	"testing/quick"
)

// TestPartitioningQuick: for arbitrary uniform partitionings and points,
// IndexOf is total, monotone, and consistent with PartitionInterval.
func TestPartitioningQuick(t *testing.T) {
	f := func(t0 int16, span uint16, nRaw uint8, p1, p2 uint16) bool {
		start := int64(t0)
		width := int64(span%5000) + 2
		n := int(nRaw%20) + 1
		part, err := MakeUniform(start, start+width, n)
		if err != nil {
			return false
		}
		a := start + int64(p1)%width
		b := start + int64(p2)%width
		ia, ib := part.IndexOf(a), part.IndexOf(b)
		if ia < 0 || ia >= part.Len() || !part.PartitionInterval(ia).ContainsPoint(a) {
			return false
		}
		// Monotonicity: larger points never map to earlier partitions.
		if a <= b && ia > ib {
			return false
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// TestOpsNestQuick: for arbitrary intervals inside the range, the project
// partition lies within the split range, which lies within the replicate
// range.
func TestOpsNestQuick(t *testing.T) {
	part := NewUniform(0, 10_000, 17)
	f := func(sRaw, lRaw uint16) bool {
		s := int64(sRaw) % 10_000
		e := s + int64(lRaw)%(10_000-s)
		iv := Interval{Start: s, End: e}
		p := part.Project(iv)
		sf, sl := part.Split(iv)
		rf, rl := part.Replicate(iv)
		return sf <= p && p <= sl && rf == sf && rl >= sl && rl == part.Len()-1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// TestPredicateSetAlgebraQuick: set operations behave like sets.
func TestPredicateSetAlgebraQuick(t *testing.T) {
	f := func(aRaw, bRaw uint16) bool {
		a := PredicateSet(aRaw) & AllSet
		b := PredicateSet(bRaw) & AllSet
		union := a.Union(b)
		inter := a.Intersect(b)
		// Inclusion-exclusion.
		if union.Len()+inter.Len() != a.Len()+b.Len() {
			return false
		}
		// Inverse distributes over union and intersection.
		if a.Inverse().Union(b.Inverse()) != union.Inverse() {
			return false
		}
		if a.Inverse().Intersect(b.Inverse()) != inter.Inverse() {
			return false
		}
		// Involution.
		return a.Inverse().Inverse() == a
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// TestPredicateInverseQuick: on arbitrary interval pairs, Inverse is an
// involution on single predicates and p(u, v) holds exactly when
// p.Inverse()(v, u) does — Allen's converse law, which the query
// normaliser's canonical rewrite (Condition swap) relies on.
func TestPredicateInverseQuick(t *testing.T) {
	f := func(s1Raw, l1Raw, s2Raw, l2Raw uint8) bool {
		u := Interval{Start: int64(s1Raw % 40), End: int64(s1Raw%40) + int64(l1Raw%20) + 1}
		v := Interval{Start: int64(s2Raw % 40), End: int64(s2Raw%40) + int64(l2Raw%20) + 1}
		for p := Predicate(0); p < NumPredicates; p++ {
			if p.Inverse().Inverse() != p {
				return false
			}
			if p.Eval(u, v) != p.Inverse().Eval(v, u) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// TestLessThanOrderTotalQuick: every predicate that can hold induces a
// consistent start-point order — checking the algebra's core invariant on
// arbitrary pairs.
func TestLessThanOrderTotalQuick(t *testing.T) {
	f := func(s1Raw, l1Raw, s2Raw, l2Raw uint8) bool {
		u := Interval{Start: int64(s1Raw % 40), End: int64(s1Raw%40) + int64(l1Raw%20) + 1}
		v := Interval{Start: int64(s2Raw % 40), End: int64(s2Raw%40) + int64(l2Raw%20) + 1}
		for p := Predicate(0); p < NumPredicates; p++ {
			if !p.Eval(u, v) {
				continue
			}
			if p.LessThanOrder() == LeftLess && u.Start > v.Start {
				return false
			}
			if p.LessThanOrder() == RightLess && v.Start > u.Start {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
