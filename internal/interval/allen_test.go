package interval

import (
	"math/rand"
	"testing"
)

func TestPredicateEvalTable(t *testing.T) {
	// Hand-picked pairs exercising every relation once.
	cases := []struct {
		p    Predicate
		u, v Interval
	}{
		{Before, New(0, 2), New(4, 6)},
		{After, New(4, 6), New(0, 2)},
		{Meets, New(0, 4), New(4, 8)},
		{MetBy, New(4, 8), New(0, 4)},
		{Overlaps, New(0, 5), New(3, 9)},
		{OverlappedBy, New(3, 9), New(0, 5)},
		{Contains, New(0, 10), New(2, 7)},
		{ContainedBy, New(2, 7), New(0, 10)},
		{Starts, New(0, 4), New(0, 9)},
		{StartedBy, New(0, 9), New(0, 4)},
		{Finishes, New(5, 9), New(0, 9)},
		{FinishedBy, New(0, 9), New(5, 9)},
		{Equals, New(3, 7), New(3, 7)},
	}
	for _, tc := range cases {
		if !tc.p.Eval(tc.u, tc.v) {
			t.Errorf("%v(%v, %v) = false, want true", tc.p, tc.u, tc.v)
		}
		// Exactly this relation must hold among all thirteen.
		for p := Predicate(0); p < NumPredicates; p++ {
			if p != tc.p && p.Eval(tc.u, tc.v) {
				t.Errorf("%v also holds for (%v, %v), expected only %v", p, tc.u, tc.v, tc.p)
			}
		}
		if got := Relate(tc.u, tc.v); got != tc.p {
			t.Errorf("Relate(%v, %v) = %v, want %v", tc.u, tc.v, got, tc.p)
		}
	}
}

// TestJEPD verifies that Allen's thirteen relations are jointly exhaustive
// and pairwise disjoint over proper intervals.
func TestJEPD(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 20000; i++ {
		u := randomProperInterval(rng, 50) // small domain provokes every relation
		v := randomProperInterval(rng, 50)
		holds := 0
		for p := Predicate(0); p < NumPredicates; p++ {
			if p.Eval(u, v) {
				holds++
			}
		}
		if holds != 1 {
			t.Fatalf("pair (%v, %v): %d relations hold, want exactly 1", u, v, holds)
		}
	}
}

// TestJEPDExhaustiveSmallDomain enumerates every pair of proper intervals
// over a tiny domain, leaving nothing to randomness.
func TestJEPDExhaustiveSmallDomain(t *testing.T) {
	const limit = 7
	var ivs []Interval
	for s := int64(0); s < limit; s++ {
		for e := s + 1; e < limit; e++ {
			ivs = append(ivs, New(s, e))
		}
	}
	for _, u := range ivs {
		for _, v := range ivs {
			holds := 0
			var which Predicate
			for p := Predicate(0); p < NumPredicates; p++ {
				if p.Eval(u, v) {
					holds++
					which = p
				}
			}
			if holds != 1 {
				t.Fatalf("pair (%v, %v): %d relations hold", u, v, holds)
			}
			if Relate(u, v) != which {
				t.Fatalf("Relate(%v, %v) = %v, want %v", u, v, Relate(u, v), which)
			}
		}
	}
}

func TestInverse(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for i := 0; i < 5000; i++ {
		u := randomProperInterval(rng, 40)
		v := randomProperInterval(rng, 40)
		for p := Predicate(0); p < NumPredicates; p++ {
			if p.Eval(u, v) != p.Inverse().Eval(v, u) {
				t.Fatalf("%v(%v,%v) != %v(%v,%v)", p, u, v, p.Inverse(), v, u)
			}
		}
	}
	for p := Predicate(0); p < NumPredicates; p++ {
		if p.Inverse().Inverse() != p {
			t.Errorf("Inverse not involutive for %v", p)
		}
	}
}

func TestSequenceColocationSplit(t *testing.T) {
	seq := 0
	for p := Predicate(0); p < NumPredicates; p++ {
		if p.IsSequence() {
			seq++
			if p.IsColocation() {
				t.Errorf("%v is both sequence and colocation", p)
			}
		} else if !p.IsColocation() {
			t.Errorf("%v is neither sequence nor colocation", p)
		}
	}
	if seq != 2 {
		t.Fatalf("found %d sequence predicates, want 2 (before, after)", seq)
	}
	// Colocation predicates require the operands to share a point; sequence
	// predicates require them disjoint.
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 5000; i++ {
		u := randomProperInterval(rng, 40)
		v := randomProperInterval(rng, 40)
		for p := Predicate(0); p < NumPredicates; p++ {
			if !p.Eval(u, v) {
				continue
			}
			if p.IsColocation() && !u.Intersects(v) {
				t.Fatalf("colocation predicate %v holds for disjoint %v, %v", p, u, v)
			}
			if p.IsSequence() && u.Intersects(v) {
				t.Fatalf("sequence predicate %v holds for intersecting %v, %v", p, u, v)
			}
		}
	}
}

// TestLessThanOrderSoundness checks the Figure 1 less-than orders: whenever
// a predicate holds, the interval on its "lesser" side starts no later.
func TestLessThanOrderSoundness(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for i := 0; i < 10000; i++ {
		u := randomProperInterval(rng, 60)
		v := randomProperInterval(rng, 60)
		for p := Predicate(0); p < NumPredicates; p++ {
			if !p.Eval(u, v) {
				continue
			}
			switch p.LessThanOrder() {
			case LeftLess:
				if !u.LessThan(v) {
					t.Fatalf("%v(%v,%v) holds but left operand is not less-than", p, u, v)
				}
			case RightLess:
				if !v.LessThan(u) {
					t.Fatalf("%v(%v,%v) holds but right operand is not less-than", p, u, v)
				}
			}
		}
	}
}

func TestParsePredicate(t *testing.T) {
	for p := Predicate(0); p < NumPredicates; p++ {
		got, err := ParsePredicate(p.String())
		if err != nil || got != p {
			t.Errorf("ParsePredicate(%q) = %v, %v", p.String(), got, err)
		}
	}
	aliases := map[string]Predicate{
		"OVERLAPS": Overlaps, "overlap": Overlaps, "during": ContainedBy,
		"overlapped-by": OverlappedBy, "overlapped_by": OverlappedBy,
		"Met By": MetBy, "=": Equals, "<": Before, ">": After,
	}
	for s, want := range aliases {
		got, err := ParsePredicate(s)
		if err != nil || got != want {
			t.Errorf("ParsePredicate(%q) = %v, %v; want %v", s, got, err, want)
		}
	}
	if _, err := ParsePredicate("sideways"); err == nil {
		t.Error("ParsePredicate(\"sideways\") succeeded, want error")
	}
}

// TestJoinStrategyColocates verifies, for every predicate and a mass of
// random pairs, that whenever the predicate holds the two map-side
// operations route both intervals to at least one common reducer — and that
// the projected side lands on exactly one reducer so the pair is produced
// exactly once.
func TestJoinStrategyColocates(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	part := NewUniform(0, 64, 8)
	for i := 0; i < 20000; i++ {
		u := randomProperInterval(rng, 64)
		v := randomProperInterval(rng, 64)
		p := Relate(u, v)
		st := JoinStrategy(p)
		lf, ll := part.Apply(st.Left, u)
		rf, rl := part.Apply(st.Right, v)
		common := 0
		for r := max(lf, rf); r <= min(ll, rl); r++ {
			common++
		}
		if common == 0 {
			t.Fatalf("predicate %v holds for (%v, %v) but strategy %v/%v yields no common reducer",
				p, u, v, st.Left, st.Right)
		}
		// At least one side must be projected (single reducer) so that the
		// output pair is generated exactly once.
		if st.Left != OpProject && st.Right != OpProject {
			t.Fatalf("strategy for %v projects neither side", p)
		}
	}
}

func TestJoinStrategyMatchesPaperTable(t *testing.T) {
	// Figure 1 column 3, with the sequence rows replicating the lesser
	// relation and the colocation rows splitting it.
	want := map[Predicate]Strategy{
		Before:       {OpReplicate, OpProject},
		After:        {OpProject, OpReplicate},
		Overlaps:     {OpSplit, OpProject},
		OverlappedBy: {OpProject, OpSplit},
		Contains:     {OpSplit, OpProject},
		ContainedBy:  {OpProject, OpSplit},
		Meets:        {OpSplit, OpProject},
		MetBy:        {OpProject, OpSplit},
		Starts:       {OpProject, OpProject},
		StartedBy:    {OpProject, OpProject},
		Finishes:     {OpProject, OpSplit},
		FinishedBy:   {OpSplit, OpProject},
		Equals:       {OpProject, OpProject},
	}
	for p, st := range want {
		if got := JoinStrategy(p); got != st {
			t.Errorf("JoinStrategy(%v) = %v, want %v", p, got, st)
		}
	}
}

func TestOpString(t *testing.T) {
	if OpProject.String() != "project" || OpSplit.String() != "split" || OpReplicate.String() != "replicate" {
		t.Error("Op.String mismatch")
	}
}
