package mr

import (
	"cmp"
	"container/heap"
	"fmt"
	"slices"
	"strconv"

	"intervaljoin/internal/dfs"
)

// External shuffle support: when a job's intermediate data exceeds the
// configured in-memory budget, each map worker writes its buffered emissions
// as lo-sorted runs on the store (what Hadoop's map-side spill does), and the
// reduce phase streams a k-way merge of the runs so only one key's value
// list is materialised at a time. Range emissions are written once per run
// and expanded only as the merge sweep crosses their covered keys.

// emission is one buffered intermediate emission: a single key-value pair
// when hi == lo, or one shared value addressed to every reduce key in
// [lo, hi] (the map side's replication run, stored once).
type emission struct {
	lo, hi int64
	value  string
}

// span is the number of reduce keys the emission addresses — its logical
// pair count.
func (p emission) span() int64 { return p.hi - p.lo + 1 }

// isRange reports whether the emission covers more than one key.
func (p emission) isRange() bool { return p.hi > p.lo }

// physBytes approximates the bytes the emission occupies in the shuffle:
// value plus one 8-byte key, or value plus two 8-byte range endpoints.
func (p emission) physBytes() int64 {
	if p.isRange() {
		return int64(len(p.value)) + 16
	}
	return int64(len(p.value)) + 8
}

// Spill records are length-prefixed. A plain pair is one byte 'A'+len(digits),
// the key's decimal digits, then the value — the reader slices the key out by
// offset instead of scanning every record for a separator byte. A range
// emission marks itself with a lowercase prefix: 'a'+len(loDigits), the lo
// digits, then 'A'+len(hiDigits), the hi digits, then the value — the value
// is written once no matter how many keys the range covers. An int64 key has
// at most 19 digits, so both prefixes stay printable.

// appendSpillRecord encodes p onto buf in the spill record format. Keys are
// expected non-negative (spillRun enforces it); hi == lo emissions encode as
// point records, so every emission has exactly one encoding.
func appendSpillRecord(buf []byte, p emission) []byte {
	base := len(buf)
	if p.isRange() {
		buf = append(buf, 0)
		buf = strconv.AppendInt(buf, p.lo, 10)
		buf[base] = 'a' + byte(len(buf)-base-1)
		mark := len(buf)
		buf = append(buf, 0)
		buf = strconv.AppendInt(buf, p.hi, 10)
		buf[mark] = 'A' + byte(len(buf)-mark-1)
	} else {
		buf = append(buf, 0)
		buf = strconv.AppendInt(buf, p.lo, 10)
		buf[base] = 'A' + byte(len(buf)-base-1)
	}
	return append(buf, p.value...)
}

// parseSpillRecord decodes one spill record. It accepts exactly the writer's
// output: anything appendSpillRecord cannot produce — short records, bad
// prefixes, signed or zero-padded digits, negative keys, range records whose
// hi does not exceed lo — is an error, so a successful parse re-encodes to
// the identical bytes.
func parseSpillRecord(rec string) (emission, error) {
	if len(rec) < 2 {
		return emission{}, fmt.Errorf("mr: malformed spill record %q", rec)
	}
	if rec[0] >= 'a' {
		// Range record: lowercase lo prefix, then uppercase hi prefix.
		nd := int(rec[0] - 'a')
		if nd < 1 || nd+1 >= len(rec) {
			return emission{}, fmt.Errorf("mr: malformed spill record %q", rec)
		}
		lo, err := parseSpillKey(rec[1:1+nd], rec)
		if err != nil {
			return emission{}, err
		}
		rest := rec[1+nd:]
		hd := int(rest[0] - 'A')
		if hd < 1 || hd > len(rest)-1 {
			return emission{}, fmt.Errorf("mr: malformed spill record %q", rec)
		}
		hi, err := parseSpillKey(rest[1:1+hd], rec)
		if err != nil {
			return emission{}, err
		}
		if hi <= lo {
			return emission{}, fmt.Errorf("mr: spill range record %q has hi <= lo", rec)
		}
		return emission{lo: lo, hi: hi, value: rest[1+hd:]}, nil
	}
	nd := int(rec[0] - 'A')
	if nd < 1 || nd > len(rec)-1 {
		return emission{}, fmt.Errorf("mr: malformed spill record %q", rec)
	}
	key, err := parseSpillKey(rec[1:1+nd], rec)
	if err != nil {
		return emission{}, err
	}
	return emission{lo: key, hi: key, value: rec[1+nd:]}, nil
}

// parseSpillKey parses one key's decimal digits, insisting on the writer's
// canonical form: non-negative, unsigned, no leading zeros.
func parseSpillKey(digits, rec string) (int64, error) {
	v, err := strconv.ParseInt(digits, 10, 64)
	if err != nil {
		return 0, fmt.Errorf("mr: malformed spill key in %q: %v", rec, err)
	}
	if v < 0 || strconv.FormatInt(v, 10) != digits {
		return 0, fmt.Errorf("mr: non-canonical spill key %q in %q", digits, rec)
	}
	return v, nil
}

// spillRun writes emissions (sorted by lo, then hi) as one run file. Spilled
// keys must be non-negative (every algorithm in this module uses partition /
// grid-cell ids, which are).
func spillRun(store dfs.Store, name string, ems []emission) error {
	slices.SortFunc(ems, func(a, b emission) int {
		if c := cmp.Compare(a.lo, b.lo); c != 0 {
			return c
		}
		return cmp.Compare(a.hi, b.hi)
	})
	w, err := store.Create(name)
	if err != nil {
		return err
	}
	buf := make([]byte, 0, 64)
	for _, p := range ems {
		if p.lo < 0 {
			w.Close()
			return fmt.Errorf("mr: spilled key %d is negative", p.lo)
		}
		buf = appendSpillRecord(buf[:0], p)
		if err := w.Write(string(buf)); err != nil {
			w.Close()
			return err
		}
	}
	return w.Close()
}

// runCursor streams one spill run.
type runCursor struct {
	it   dfs.Iterator
	head emission
	done bool
}

func openRun(store dfs.Store, name string) (*runCursor, error) {
	it, err := store.Open(name)
	if err != nil {
		return nil, err
	}
	rc := &runCursor{it: it}
	if err := rc.advance(); err != nil {
		it.Close()
		return nil, err
	}
	return rc, nil
}

func (rc *runCursor) advance() error {
	rec, ok, err := rc.it.Next()
	if err != nil {
		return err
	}
	if !ok {
		rc.done = true
		return nil
	}
	p, err := parseSpillRecord(rec)
	if err != nil {
		return err
	}
	rc.head = p
	return nil
}

func (rc *runCursor) close() error { return rc.it.Close() }

// memCursor streams an in-memory lo-sorted emission slice as if it were a
// run.
type memCursor struct {
	ems []emission
	pos int
}

func (mc *memCursor) headEmission() (emission, bool) {
	if mc.pos >= len(mc.ems) {
		return emission{}, false
	}
	return mc.ems[mc.pos], true
}

// cursor unifies run sources for the merge heap. Each cursor yields its
// emissions in ascending lo order.
type cursor interface {
	peek() (emission, bool)
	next() error
	close() error
}

func (rc *runCursor) peek() (emission, bool) { return rc.head, !rc.done }
func (rc *runCursor) next() error            { return rc.advance() }

func (mc *memCursor) peek() (emission, bool) { return mc.headEmission() }
func (mc *memCursor) next() error            { mc.pos++; return nil }
func (mc *memCursor) close() error           { return nil }

// heapEntry caches a cursor's head emission so heap comparisons are a plain
// int64 compare instead of two interface calls per Less.
type heapEntry struct {
	c    cursor
	head emission
}

// cursorHeap is a min-heap of cursors by cached head lo.
type cursorHeap []heapEntry

func (h cursorHeap) Len() int            { return len(h) }
func (h cursorHeap) Less(i, j int) bool  { return h[i].head.lo < h[j].head.lo }
func (h cursorHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *cursorHeap) Push(x interface{}) { *h = append(*h, x.(heapEntry)) }
func (h *cursorHeap) Pop() interface{} {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}

// mergeRuns sweeps the k-way merge of the cursors in ascending key order,
// invoking fn once per covered key with all its values: the point pairs
// keyed there plus one value per range emission whose [lo, hi] covers the
// key. Ranges are pulled off the heap when the sweep reaches their lo, held
// in an active set while covered, and dropped past their hi — so a range's
// value string is shared across every key it addresses instead of being
// merged r times. Keys no emission covers are skipped. fn must not retain
// the values slice.
func mergeRuns(cursors []cursor, fn func(key int64, values []string) error) error {
	h := make(cursorHeap, 0, len(cursors))
	for _, c := range cursors {
		if p, ok := c.peek(); ok {
			h = append(h, heapEntry{c: c, head: p})
		}
	}
	heap.Init(&h)
	var (
		key    int64
		active []emission // emissions covering the current key
		values []string
	)
	for h.Len() > 0 || len(active) > 0 {
		// The next key is one past the previous while a range still covers
		// it; otherwise the sweep jumps to the earliest unseen lo.
		if len(active) > 0 {
			key++
		} else {
			key = h[0].head.lo
		}
		// Pull every emission starting at or before this key. Heads are
		// sorted by lo, so this drains exactly the emissions whose coverage
		// begins here.
		for h.Len() > 0 && h[0].head.lo <= key {
			active = append(active, h[0].head)
			if err := h[0].c.next(); err != nil {
				return err
			}
			if np, ok := h[0].c.peek(); ok {
				h[0].head = np
				heap.Fix(&h, 0)
			} else {
				heap.Pop(&h)
			}
		}
		// Gather this key's values; keep only emissions extending past it.
		values = values[:0]
		live := active[:0]
		for _, em := range active {
			values = append(values, em.value)
			if em.hi > key {
				live = append(live, em)
			}
		}
		active = live
		if err := fn(key, values); err != nil {
			return err
		}
	}
	return nil
}
