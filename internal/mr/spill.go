package mr

import (
	"cmp"
	"container/heap"
	"fmt"
	"slices"
	"strconv"

	"intervaljoin/internal/dfs"
)

// External shuffle support: when a job's intermediate data exceeds the
// configured in-memory budget, each map worker writes its buffered pairs as
// key-sorted runs on the store (what Hadoop's map-side spill does), and the
// reduce phase streams a k-way merge of the runs so only one key's value
// list is materialised at a time.

// kvPair is one buffered intermediate pair.
type kvPair struct {
	key   int64
	value string
}

// Spill records are length-prefixed: one byte 'A'+len(digits), the key's
// decimal digits, then the value — so the reader slices the key out by
// offset instead of scanning every record for a separator byte. An int64
// key has at most 19 digits, so the prefix stays printable.

// spillRun writes pairs (sorted by key) as one run file and returns its
// name. Spilled keys must be non-negative (every algorithm in this module
// uses partition / grid-cell ids, which are).
func spillRun(store dfs.Store, name string, pairs []kvPair) error {
	slices.SortFunc(pairs, func(a, b kvPair) int { return cmp.Compare(a.key, b.key) })
	w, err := store.Create(name)
	if err != nil {
		return err
	}
	buf := make([]byte, 0, 64)
	for _, p := range pairs {
		if p.key < 0 {
			w.Close()
			return fmt.Errorf("mr: spilled key %d is negative", p.key)
		}
		buf = append(buf[:0], 0)
		buf = strconv.AppendInt(buf, p.key, 10)
		buf[0] = 'A' + byte(len(buf)-1)
		buf = append(buf, p.value...)
		if err := w.Write(string(buf)); err != nil {
			w.Close()
			return err
		}
	}
	return w.Close()
}

// runCursor streams one spill run.
type runCursor struct {
	it   dfs.Iterator
	head kvPair
	done bool
}

func openRun(store dfs.Store, name string) (*runCursor, error) {
	it, err := store.Open(name)
	if err != nil {
		return nil, err
	}
	rc := &runCursor{it: it}
	if err := rc.advance(); err != nil {
		it.Close()
		return nil, err
	}
	return rc, nil
}

func (rc *runCursor) advance() error {
	rec, ok, err := rc.it.Next()
	if err != nil {
		return err
	}
	if !ok {
		rc.done = true
		return nil
	}
	if len(rec) < 2 {
		return fmt.Errorf("mr: malformed spill record %q", rec)
	}
	nd := int(rec[0] - 'A')
	if nd < 1 || nd > len(rec)-1 {
		return fmt.Errorf("mr: malformed spill record %q", rec)
	}
	key, err := strconv.ParseInt(rec[1:1+nd], 10, 64)
	if err != nil {
		return fmt.Errorf("mr: malformed spill key in %q: %v", rec, err)
	}
	rc.head = kvPair{key: key, value: rec[1+nd:]}
	return nil
}

func (rc *runCursor) close() { rc.it.Close() }

// memCursor streams an in-memory sorted pair slice as if it were a run.
type memCursor struct {
	pairs []kvPair
	pos   int
}

func (mc *memCursor) headPair() (kvPair, bool) {
	if mc.pos >= len(mc.pairs) {
		return kvPair{}, false
	}
	return mc.pairs[mc.pos], true
}

// cursor unifies run sources for the merge heap.
type cursor interface {
	peek() (kvPair, bool)
	next() error
	close()
}

func (rc *runCursor) peek() (kvPair, bool) { return rc.head, !rc.done }
func (rc *runCursor) next() error          { return rc.advance() }

func (mc *memCursor) peek() (kvPair, bool) { return mc.headPair() }
func (mc *memCursor) next() error          { mc.pos++; return nil }
func (mc *memCursor) close()               {}

// heapEntry caches a cursor's head pair so heap comparisons are a plain
// int64 compare instead of two interface calls per Less.
type heapEntry struct {
	c    cursor
	head kvPair
}

// cursorHeap is a min-heap of cursors by cached head key.
type cursorHeap []heapEntry

func (h cursorHeap) Len() int            { return len(h) }
func (h cursorHeap) Less(i, j int) bool  { return h[i].head.key < h[j].head.key }
func (h cursorHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *cursorHeap) Push(x interface{}) { *h = append(*h, x.(heapEntry)) }
func (h *cursorHeap) Pop() interface{} {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}

// mergeRuns streams the k-way merge of the cursors, invoking fn once per
// distinct key with all its values. fn must not retain the values slice.
func mergeRuns(cursors []cursor, fn func(key int64, values []string) error) error {
	h := make(cursorHeap, 0, len(cursors))
	for _, c := range cursors {
		if p, ok := c.peek(); ok {
			h = append(h, heapEntry{c: c, head: p})
		}
	}
	heap.Init(&h)
	var (
		curKey int64
		values []string
		have   bool
	)
	flush := func() error {
		if !have {
			return nil
		}
		err := fn(curKey, values)
		values = values[:0]
		have = false
		return err
	}
	for h.Len() > 0 {
		p := h[0].head
		if have && p.key != curKey {
			if err := flush(); err != nil {
				return err
			}
		}
		curKey = p.key
		have = true
		values = append(values, p.value)
		if err := h[0].c.next(); err != nil {
			return err
		}
		if np, ok := h[0].c.peek(); ok {
			h[0].head = np
			heap.Fix(&h, 0)
		} else {
			heap.Pop(&h)
		}
	}
	return flush()
}
