package mr

import (
	"cmp"
	"container/heap"
	"fmt"
	"slices"
	"strconv"
	"strings"

	"intervaljoin/internal/dfs"
)

// External shuffle support: when a job's intermediate data exceeds the
// configured in-memory budget, each map worker writes its buffered pairs as
// key-sorted runs on the store (what Hadoop's map-side spill does), and the
// reduce phase streams a k-way merge of the runs so only one key's value
// list is materialised at a time.

// kvPair is one buffered intermediate pair.
type kvPair struct {
	key   int64
	value string
}

// spillRun writes pairs (sorted by key) as one run file and returns its
// name. Spilled keys must be non-negative (every algorithm in this module
// uses partition / grid-cell ids, which are).
func spillRun(store dfs.Store, name string, pairs []kvPair) error {
	slices.SortFunc(pairs, func(a, b kvPair) int { return cmp.Compare(a.key, b.key) })
	w, err := store.Create(name)
	if err != nil {
		return err
	}
	for _, p := range pairs {
		if p.key < 0 {
			w.Close()
			return fmt.Errorf("mr: spilled key %d is negative", p.key)
		}
		if err := w.Write(strconv.FormatInt(p.key, 10) + ";" + p.value); err != nil {
			w.Close()
			return err
		}
	}
	return w.Close()
}

// runCursor streams one spill run.
type runCursor struct {
	it   dfs.Iterator
	head kvPair
	done bool
}

func openRun(store dfs.Store, name string) (*runCursor, error) {
	it, err := store.Open(name)
	if err != nil {
		return nil, err
	}
	rc := &runCursor{it: it}
	if err := rc.advance(); err != nil {
		it.Close()
		return nil, err
	}
	return rc, nil
}

func (rc *runCursor) advance() error {
	rec, ok, err := rc.it.Next()
	if err != nil {
		return err
	}
	if !ok {
		rc.done = true
		return nil
	}
	sep := strings.IndexByte(rec, ';')
	if sep < 0 {
		return fmt.Errorf("mr: malformed spill record %q", rec)
	}
	key, err := strconv.ParseInt(rec[:sep], 10, 64)
	if err != nil {
		return fmt.Errorf("mr: malformed spill key in %q: %v", rec, err)
	}
	rc.head = kvPair{key: key, value: rec[sep+1:]}
	return nil
}

func (rc *runCursor) close() { rc.it.Close() }

// memCursor streams an in-memory sorted pair slice as if it were a run.
type memCursor struct {
	pairs []kvPair
	pos   int
}

func (mc *memCursor) headPair() (kvPair, bool) {
	if mc.pos >= len(mc.pairs) {
		return kvPair{}, false
	}
	return mc.pairs[mc.pos], true
}

// cursor unifies run sources for the merge heap.
type cursor interface {
	peek() (kvPair, bool)
	next() error
	close()
}

func (rc *runCursor) peek() (kvPair, bool) { return rc.head, !rc.done }
func (rc *runCursor) next() error          { return rc.advance() }

func (mc *memCursor) peek() (kvPair, bool) { return mc.headPair() }
func (mc *memCursor) next() error          { mc.pos++; return nil }
func (mc *memCursor) close()               {}

// cursorHeap is a min-heap of cursors by head key.
type cursorHeap []cursor

func (h cursorHeap) Len() int { return len(h) }
func (h cursorHeap) Less(i, j int) bool {
	a, _ := h[i].peek()
	b, _ := h[j].peek()
	return a.key < b.key
}
func (h cursorHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *cursorHeap) Push(x interface{}) { *h = append(*h, x.(cursor)) }
func (h *cursorHeap) Pop() interface{} {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}

// mergeRuns streams the k-way merge of the cursors, invoking fn once per
// distinct key with all its values. fn must not retain the values slice.
func mergeRuns(cursors []cursor, fn func(key int64, values []string) error) error {
	h := make(cursorHeap, 0, len(cursors))
	for _, c := range cursors {
		if _, ok := c.peek(); ok {
			h = append(h, c)
		}
	}
	heap.Init(&h)
	var (
		curKey int64
		values []string
		have   bool
	)
	flush := func() error {
		if !have {
			return nil
		}
		err := fn(curKey, values)
		values = values[:0]
		have = false
		return err
	}
	for h.Len() > 0 {
		c := h[0]
		p, _ := c.peek()
		if have && p.key != curKey {
			if err := flush(); err != nil {
				return err
			}
		}
		curKey = p.key
		have = true
		values = append(values, p.value)
		if err := c.next(); err != nil {
			return err
		}
		if _, ok := c.peek(); ok {
			heap.Fix(&h, 0)
		} else {
			heap.Pop(&h)
		}
	}
	return flush()
}
