package mr

import "intervaljoin/internal/obs/live"

// LiveSet is the engine's bridge into a live telemetry registry: the
// cumulative ij_engine_* series a long-running service exposes on
// /metrics. Per-run *Metrics stay the detailed post-mortem record; a
// LiveSet folds each finished run's counters into process-lifetime
// totals. A nil *LiveSet (disabled telemetry) publishes nothing at the
// cost of one nil check, matching the obs layer's contract.
type LiveSet struct {
	runs            *live.Counter
	cycles          *live.Counter
	mapInput        *live.Counter
	filtered        *live.Counter
	pairs           *live.Counter
	physPairs       *live.Counter
	bytes           *live.Counter
	physBytes       *live.Counter
	output          *live.Counter
	retries         *live.Counter
	spilledPairs    *live.Counter
	spillRuns       *live.Counter
	cleanupFailures *live.Counter
	reducePairs     *live.Hist
}

// NewLiveSet registers the engine's live series on r and returns the
// publishing handle. A nil registry yields a nil (no-op) set.
func NewLiveSet(r *live.Registry) *LiveSet {
	if r == nil {
		return nil
	}
	return &LiveSet{
		runs:            r.Counter("ij_engine_runs_total", "engine runs completed (delta joins and cold runs)"),
		cycles:          r.Counter("ij_engine_cycles_total", "MapReduce cycles executed"),
		mapInput:        r.Counter("ij_engine_map_input_records_total", "records read by map tasks"),
		filtered:        r.Counter("ij_engine_filtered_records_total", "records dropped at feed time by delta-window filters"),
		pairs:           r.Counter("ij_engine_intermediate_pairs_total", "logical map-to-reduce key-value pairs (communication volume)"),
		physPairs:       r.Counter("ij_engine_physical_pairs_total", "physically shuffled records after range coalescing"),
		bytes:           r.Counter("ij_engine_intermediate_bytes_total", "logical shuffled bytes"),
		physBytes:       r.Counter("ij_engine_physical_bytes_total", "physically shuffled bytes after range coalescing"),
		output:          r.Counter("ij_engine_output_records_total", "records written by reduce tasks"),
		retries:         r.Counter("ij_engine_task_retries_total", "task attempts that failed transiently and were re-run"),
		spilledPairs:    r.Counter("ij_engine_spilled_pairs_total", "intermediate pairs written to sorted on-store spill runs"),
		spillRuns:       r.Counter("ij_engine_spill_runs_total", "sorted spill runs written by the external shuffle"),
		cleanupFailures: r.Counter("ij_engine_cleanup_failures_total", "scratch spill files that could not be removed after a job"),
		reducePairs:     r.Hist("ij_engine_reduce_task_pairs", "values received per reduce task, across runs"),
	}
}

// Publish folds one finished run's metrics into the live series. Safe on
// a nil set or nil metrics.
func (s *LiveSet) Publish(m *Metrics) {
	if s == nil || m == nil {
		return
	}
	s.runs.Inc()
	s.cycles.Add(int64(m.Cycles))
	s.mapInput.Add(m.MapInputRecords)
	s.filtered.Add(m.FilteredRecords)
	s.pairs.Add(m.IntermediatePairs)
	s.physPairs.Add(m.PhysicalPairs)
	s.bytes.Add(m.IntermediateBytes)
	s.physBytes.Add(m.PhysicalBytes)
	s.output.Add(m.OutputRecords)
	s.retries.Add(m.TaskRetries)
	s.spilledPairs.Add(m.SpilledPairs)
	s.spillRuns.Add(int64(m.SpillRuns))
	s.cleanupFailures.Add(int64(m.CleanupFailures))
	for _, n := range m.ReducerPairs {
		s.reducePairs.Observe(n)
	}
}
