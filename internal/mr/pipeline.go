package mr

import (
	"fmt"
	"strings"
	"sync"
	"time"

	"intervaljoin/internal/obs"
)

// Pipelined chain execution. RunChain materialises every cycle boundary on
// the store and re-parses it — Hadoop's HDFS barrier between chained jobs.
// RunPipeline short-circuits those boundaries: when stage k's single-file
// output is consumed by stage k+1, each completed reduce task of stage k
// streams its records directly into stage k+1's map feed over a bounded
// channel, so k's reduce phase overlaps k+1's map phase and the store
// round-trip (write, re-open, re-parse) is elided. Fault tolerance is
// preserved because the streamed batch is the same retry unit as a file
// batch: a transient downstream map failure re-runs from the buffered
// batch, and an upstream reduce task only delivers output after its attempt
// has succeeded.
//
// Range emissions compose with streaming: a downstream stage's map emits
// ranges into its own shuffle, which keeps them coalesced until that stage's
// reduce sweep expands them — so a pipelined chain never materialises the
// per-key copies at any boundary.

// Stage is one cycle of a pipelined chain.
type Stage struct {
	// Job is the cycle's job.
	Job Job
	// Materialize forces the stage's output file to be written even when
	// its records are streamed to the next stage — for when the driver (or
	// a debugging session) reads the intermediate afterwards. Outputs that
	// are not streamed, or that a stage after the immediate successor also
	// reads, are always written regardless of this flag.
	Materialize bool
	// Tap, when non-nil, observes every output record of the stage as its
	// reduce task commits, before (or instead of) materialisation. Calls
	// are serialised by the engine. Taps let drivers compute statistics
	// over intermediates without forcing them onto the store.
	Tap func(record string)
}

// ChainStages wraps plain jobs as pipeline stages with default behaviour.
func ChainStages(jobs ...Job) []Stage {
	stages := make([]Stage, len(jobs))
	for i, j := range jobs {
		stages[i] = Stage{Job: j}
	}
	return stages
}

// sink receives the committed output of each reduce task: it feeds the
// records to the stage's Tap and, at a streamed boundary, batches them onto
// the bounded channel that the next stage's map feed consumes.
type sink struct {
	mu    sync.Mutex
	tag   int
	out   chan<- []taggedRecord
	tap   func(record string)
	pairs int64
	bytes int64
}

// deliver hands one reduce task's committed output downstream. Called only
// after the task attempt succeeded, so retried attempts never leak partial
// output past the boundary. Sends block when the channel is full — the
// backpressure that bounds how far the producer cycle can run ahead.
func (s *sink) deliver(records []string) {
	if s == nil || len(records) == 0 {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.tap != nil {
		for _, rec := range records {
			s.tap(rec)
		}
	}
	if s.out == nil {
		return
	}
	batch := batchPool.Get().([]taggedRecord)
	for _, rec := range records {
		s.pairs++
		s.bytes += int64(len(rec))
		batch = append(batch, taggedRecord{tag: s.tag, record: rec})
		if len(batch) == mapBatchSize {
			s.out <- batch
			batch = batchPool.Get().([]taggedRecord)
		}
	}
	if len(batch) > 0 {
		s.out <- batch
	} else {
		batchPool.Put(batch[:0])
	}
}

// boundaryPlan describes the edge from stage i to stage i+1.
type boundaryPlan struct {
	stream bool // reduce output of i feeds the map of i+1 directly
	tag    int  // map tag the streamed records carry downstream
}

// RunPipeline executes a chain of stages, streaming every cycle boundary it
// can and running the stages on both sides of a streamed boundary
// concurrently. It returns per-stage metrics (indexed like stages; nil for
// stages not reached after an error) and an aggregate whose PipelineWall,
// OverlapSaved and StreamedPairs/StreamedBytes fields record what the
// pipelining bought.
//
// A boundary i→i+1 streams when stage i writes a single (non-directory)
// output file that stage i+1 lists among its inputs. The file itself is
// written only if Stage.Materialize is set, Config.MaterializeBoundaries is
// set, or a stage after i+1 also reads it; otherwise the store round-trip
// is elided entirely. A boundary that does not stream is a barrier, exactly
// like RunChain.
func (e *Engine) RunPipeline(stages ...Stage) ([]*Metrics, *Metrics, error) {
	agg := newMetrics("pipeline")
	agg.Cycles = 0
	if len(stages) == 0 {
		return nil, agg, nil
	}
	n := len(stages)
	bounds := make([]boundaryPlan, n)
	write := make([]bool, n)
	for i := range write {
		write[i] = true
	}
	for i := 0; i < n-1; i++ {
		out := stages[i].Job.Output
		if out == "" || strings.HasSuffix(out, "/") {
			continue // discarded or part-file output: nothing to stream
		}
		tag, ok := consumes(stages[i+1].Job, out)
		if !ok {
			continue
		}
		bounds[i] = boundaryPlan{stream: true, tag: tag}
		write[i] = stages[i].Materialize || e.materialize || consumedLater(stages, i+2, out)
	}

	start := time.Now()
	mark := e.tracer.Now()
	chainLane := e.tracer.Acquire()
	chainStart := chainLane.Begin()
	all := make([]*Metrics, n)
	var firstErr error
	// Stages joined by streamed boundaries form a group that runs
	// concurrently; a non-streamed boundary is a barrier (the downstream
	// stage reads files from the store, so its producers must finish).
	for lo := 0; lo < n && firstErr == nil; {
		hi := lo
		for hi < n-1 && bounds[hi].stream {
			hi++
		}
		if chainLane != nil && lo > 0 {
			// A new group means the previous boundary was a store barrier,
			// not an overlapped stream.
			chainLane.Event(obs.CatBarrier, "barrier:"+stages[lo].Job.Name)
		}
		firstErr = e.runGroup(stages, bounds, write, lo, hi, all)
		lo = hi + 1
	}
	if chainLane != nil {
		chainLane.End(obs.CatChain, "pipeline", chainStart)
	}
	e.tracer.Release(chainLane)
	var sumWall time.Duration
	for _, m := range all {
		if m == nil {
			continue
		}
		agg.Merge(m)
		sumWall += m.TotalWall
	}
	agg.PipelineWall = time.Since(start)
	if sumWall > agg.PipelineWall {
		agg.OverlapSaved = sumWall - agg.PipelineWall
	}
	e.fillTrueWalls(agg, mark)
	return all, agg, firstErr
}

// runGroup runs stages lo..hi concurrently, wired together by streamed
// boundaries, and records their metrics into all.
func (e *Engine) runGroup(stages []Stage, bounds []boundaryPlan, write []bool, lo, hi int, all []*Metrics) error {
	errs := make([]error, hi-lo+1)
	var wg sync.WaitGroup
	var upstream chan []taggedRecord
	for k := lo; k <= hi; k++ {
		job := stages[k].Job
		in := upstream
		if in != nil {
			// The streamed input arrives over the channel; drop it from
			// the file inputs so it is neither re-read nor required to
			// exist on the store.
			job.Inputs = dropInput(job.Inputs, stages[k-1].Job.Output)
		}
		var snk *sink
		var out chan []taggedRecord
		if k < hi {
			out = make(chan []taggedRecord, 2*e.workers)
			snk = &sink{tag: bounds[k].tag, out: out, tap: stages[k].Tap}
		} else if stages[k].Tap != nil {
			snk = &sink{tap: stages[k].Tap}
		}
		wg.Add(1)
		go func(k int, job Job, in, out chan []taggedRecord, snk *sink, writeOut bool) {
			defer wg.Done()
			m, err := e.runJob(job, in, snk, writeOut)
			if out != nil {
				// Wake the downstream stage's feed even on failure.
				close(out)
			}
			if in != nil {
				// If the job bailed before consuming its stream, drain it
				// so the upstream stage is never blocked on a full channel.
				for range in {
				}
			}
			if m != nil && snk != nil {
				m.StreamedPairs = snk.pairs
				m.StreamedBytes = snk.bytes
			}
			all[k] = m
			if err != nil {
				errs[k-lo] = fmt.Errorf("mr: pipeline stage %d: %w", k, err)
			}
		}(k, job, in, out, snk, write[k])
		upstream = out
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// consumes reports whether job reads file as one of its inputs, returning
// that input's map tag.
func consumes(job Job, file string) (int, bool) {
	for _, in := range job.Inputs {
		if in.File == file {
			return in.Tag, true
		}
	}
	return 0, false
}

// consumedLater reports whether any stage from idx on reads file, directly
// or through a directory-input prefix — in which case a streamed boundary
// must still materialise it.
func consumedLater(stages []Stage, idx int, file string) bool {
	for i := idx; i < len(stages); i++ {
		for _, in := range stages[i].Job.Inputs {
			if in.File == file || (strings.HasSuffix(in.File, "/") && strings.HasPrefix(file, in.File)) {
				return true
			}
		}
	}
	return false
}

// dropInput returns inputs without the entries reading file.
func dropInput(inputs []Input, file string) []Input {
	out := make([]Input, 0, len(inputs))
	for _, in := range inputs {
		if in.File != file {
			out = append(out, in)
		}
	}
	return out
}
