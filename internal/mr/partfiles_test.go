package mr

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
	"testing"

	"intervaljoin/internal/dfs"
)

func TestPartFileOutput(t *testing.T) {
	store := dfs.NewMem()
	e := NewEngine(Config{Store: store, Workers: 4})
	job, recs := histogramJob(4000, 9)
	job.Output = "out/"
	if err := dfs.WriteAll(store, "in", recs); err != nil {
		t.Fatal(err)
	}
	m, err := e.Run(job)
	if err != nil {
		t.Fatal(err)
	}
	parts, err := store.List("out/")
	if err != nil {
		t.Fatal(err)
	}
	if len(parts) != 9 {
		t.Fatalf("part files = %d (%v), want one per reduce task", len(parts), parts)
	}
	// Part files are named in key order: part-r-00000 holds key 0's row.
	first, err := dfs.ReadAll(store, "out/part-r-00000")
	if err != nil {
		t.Fatal(err)
	}
	if len(first) != 1 || !strings.HasPrefix(first[0], "0:") {
		t.Fatalf("part-r-00000 = %v", first)
	}
	if m.OutputRecords != 9 {
		t.Fatalf("output records = %d", m.OutputRecords)
	}
}

func TestDirectoryInputChain(t *testing.T) {
	store := dfs.NewMem()
	e := NewEngine(Config{Store: store, Workers: 4})
	recs := make([]string, 1000)
	for i := range recs {
		recs[i] = strconv.Itoa(i)
	}
	if err := dfs.WriteAll(store, "in", recs); err != nil {
		t.Fatal(err)
	}
	// Job 1 writes part files; job 2 consumes the directory.
	first, _ := histogramJob(0, 7)
	first.Inputs = []Input{{File: "in"}}
	first.Map = func(tag int, record string, emit Emitter) error {
		v, _ := strconv.ParseInt(record, 10, 64)
		emit.Emit(v%7, record)
		return nil
	}
	first.Reduce = func(key int64, values []string, write func(string) error) error {
		for _, v := range values {
			if err := write(v); err != nil {
				return err
			}
		}
		return nil
	}
	first.Output = "stage1/"
	second := Job{
		Name:   "consume",
		Inputs: []Input{{File: "stage1/"}},
		Map: func(tag int, record string, emit Emitter) error {
			emit.Emit(0, record)
			return nil
		},
		Reduce: func(key int64, values []string, write func(string) error) error {
			return write(fmt.Sprintf("total=%d", len(values)))
		},
		Output: "final",
	}
	if _, err := e.Run(first); err != nil {
		t.Fatal(err)
	}
	m2, err := e.Run(second)
	if err != nil {
		t.Fatal(err)
	}
	if m2.MapInputRecords != 1000 {
		t.Fatalf("directory input read %d records, want 1000", m2.MapInputRecords)
	}
	out, _ := dfs.ReadAll(store, "final")
	if len(out) != 1 || out[0] != "total=1000" {
		t.Fatalf("final = %v", out)
	}
}

func TestDirectoryInputEmpty(t *testing.T) {
	store := dfs.NewMem()
	e := NewEngine(Config{Store: store, Workers: 2})
	job := Job{
		Name:   "empty-dir",
		Inputs: []Input{{File: "nothing/"}},
		Map:    func(tag int, record string, emit Emitter) error { return nil },
		Reduce: func(key int64, values []string, write func(string) error) error { return nil },
	}
	if _, err := e.Run(job); err == nil {
		t.Fatal("empty directory input accepted")
	}
}

func TestPartFileOutputMatchesSingleFile(t *testing.T) {
	for _, workers := range []int{1, 4} {
		store := dfs.NewMem()
		e := NewEngine(Config{Store: store, Workers: workers})
		job, recs := histogramJob(2000, 13)
		if err := dfs.WriteAll(store, "in", recs); err != nil {
			t.Fatal(err)
		}
		job.Output = "single"
		if _, err := e.Run(job); err != nil {
			t.Fatal(err)
		}
		job.Output = "parts/"
		if _, err := e.Run(job); err != nil {
			t.Fatal(err)
		}
		single, _ := dfs.ReadAll(store, "single")
		parts, _ := store.List("parts/")
		var combined []string
		for _, p := range parts {
			rows, err := dfs.ReadAll(store, p)
			if err != nil {
				t.Fatal(err)
			}
			combined = append(combined, rows...)
		}
		sort.Strings(single)
		sort.Strings(combined)
		if len(single) != len(combined) {
			t.Fatalf("single %d rows vs parts %d", len(single), len(combined))
		}
		for i := range single {
			if single[i] != combined[i] {
				t.Fatalf("row %d: %q vs %q", i, single[i], combined[i])
			}
		}
	}
}
