package mr

import (
	"fmt"
	"sort"
	"strconv"
	"testing"

	"intervaljoin/internal/dfs"
)

// broadcastJob routes each record to a contiguous band of reducers via
// EmitRange: record i covers keys [i%7, i%7+width-1]. Each reducer reports
// its sorted value list, so the output is sensitive to exactly which values
// reached which key.
func broadcastJob(n, width int) (Job, []string) {
	recs := make([]string, n)
	for i := range recs {
		recs[i] = strconv.Itoa(i)
	}
	return Job{
		Name:   "bcast",
		Inputs: []Input{{File: "in"}},
		Map: func(tag int, record string, emit Emitter) error {
			v, _ := strconv.ParseInt(record, 10, 64)
			lo := v % 7
			emit.EmitRange(lo, lo+int64(width)-1, record)
			return nil
		},
		Reduce: func(key int64, values []string, write func(string) error) error {
			sorted := append([]string(nil), values...)
			sort.Strings(sorted)
			return write(fmt.Sprintf("%d:%d:%s", key, len(sorted), joinMax(sorted, 5)))
		},
		Output: "out",
	}, recs
}

func joinMax(vs []string, max int) string {
	if len(vs) > max {
		vs = vs[:max]
	}
	s := ""
	for i, v := range vs {
		if i > 0 {
			s += ","
		}
		s += v
	}
	return s
}

// TestEmitRangeEquivalence checks the range-coalesced shuffle produces
// byte-identical reduce output to the eager per-key expansion, in memory and
// through the spill path, and that the logical pair metrics agree while the
// physical counts shrink.
func TestEmitRangeEquivalence(t *testing.T) {
	const n, width = 3000, 9
	for _, spill := range []int{0, 100, 4096} {
		t.Run(fmt.Sprintf("spill=%d", spill), func(t *testing.T) {
			var out [2][]string
			var met [2]*Metrics
			for i, expand := range []bool{false, true} {
				store := dfs.NewMem()
				job, recs := broadcastJob(n, width)
				if err := dfs.WriteAll(store, "in", recs); err != nil {
					t.Fatal(err)
				}
				e := NewEngine(Config{Store: store, Workers: 4,
					SpillPairThreshold: spill, ExpandRangeEmits: expand})
				m, err := e.Run(job)
				if err != nil {
					t.Fatal(err)
				}
				rows, err := dfs.ReadAll(store, "out")
				if err != nil {
					t.Fatal(err)
				}
				out[i], met[i] = rows, m
			}
			if len(out[0]) != len(out[1]) {
				t.Fatalf("range path %d rows, expanded %d", len(out[0]), len(out[1]))
			}
			for i := range out[0] {
				if out[0][i] != out[1][i] {
					t.Fatalf("row %d: range %q vs expanded %q", i, out[0][i], out[1][i])
				}
			}
			if met[0].IntermediatePairs != met[1].IntermediatePairs ||
				met[0].IntermediatePairs != int64(n*width) {
				t.Fatalf("logical pairs: range %d, expanded %d, want %d",
					met[0].IntermediatePairs, met[1].IntermediatePairs, n*width)
			}
			if met[0].DistinctKeys != met[1].DistinctKeys {
				t.Fatalf("keys: range %d, expanded %d", met[0].DistinctKeys, met[1].DistinctKeys)
			}
			if met[0].PhysicalPairs != int64(n) {
				t.Fatalf("physical pairs = %d, want one per EmitRange call (%d)", met[0].PhysicalPairs, n)
			}
			if met[1].PhysicalPairs != int64(n*width) {
				t.Fatalf("expanded physical pairs = %d, want %d", met[1].PhysicalPairs, n*width)
			}
			if rf := met[0].ReplicationFactor(); rf != float64(width) {
				t.Fatalf("replication factor = %v, want %d", rf, width)
			}
			if met[0].PhysicalBytes*2 > met[0].IntermediateBytes {
				t.Fatalf("physical bytes %d not under half of logical %d",
					met[0].PhysicalBytes, met[0].IntermediateBytes)
			}
			// Per-reducer accounting counts covered keys in both modes.
			for _, m := range met {
				var total int64
				for _, v := range m.ReducerPairs {
					total += v
				}
				if total != int64(n*width) {
					t.Fatalf("reducer pairs account for %d of %d", total, n*width)
				}
			}
		})
	}
}

// TestRangeSpillRoundtrip spills a mix of point and range emissions and reads
// them back through the run cursor.
func TestRangeSpillRoundtrip(t *testing.T) {
	store := dfs.NewMem()
	ems := []emission{
		{lo: 5, hi: 5, value: "point5"},
		{lo: 0, hi: 3, value: "range0-3"},
		{lo: 3, hi: 3, value: ""},
		{lo: 1234567890123, hi: 9876543210987, value: "wide"},
		{lo: 2, hi: 7, value: "range2-7"},
	}
	if err := spillRun(store, "run0", ems); err != nil {
		t.Fatal(err)
	}
	rc, err := openRun(store, "run0")
	if err != nil {
		t.Fatal(err)
	}
	defer rc.close()
	want := []emission{
		{0, 3, "range0-3"},
		{2, 7, "range2-7"},
		{3, 3, ""},
		{5, 5, "point5"},
		{1234567890123, 9876543210987, "wide"},
	}
	for i, w := range want {
		got, ok := rc.peek()
		if !ok {
			t.Fatalf("cursor exhausted at %d", i)
		}
		if got != w {
			t.Fatalf("emission %d = %+v, want %+v", i, got, w)
		}
		if err := rc.next(); err != nil {
			t.Fatal(err)
		}
	}
	if _, ok := rc.peek(); ok {
		t.Fatal("cursor not exhausted after all emissions")
	}
}

// TestMergeRunsRangeSweep drives the sweep directly with overlapping ranges,
// point pairs, and key gaps across multiple cursors.
func TestMergeRunsRangeSweep(t *testing.T) {
	cursors := []cursor{
		&memCursor{ems: []emission{{1, 4, "a"}, {10, 10, "x"}}},
		&memCursor{ems: []emission{{2, 2, "b"}, {3, 6, "c"}, {20, 21, "y"}}},
	}
	type row struct {
		key  int64
		vals []string
	}
	var got []row
	err := mergeRuns(cursors, func(key int64, values []string) error {
		vs := append([]string(nil), values...)
		sort.Strings(vs)
		got = append(got, row{key, vs})
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	want := []row{
		{1, []string{"a"}},
		{2, []string{"a", "b"}},
		{3, []string{"a", "c"}},
		{4, []string{"a", "c"}},
		{5, []string{"c"}},
		{6, []string{"c"}},
		{10, []string{"x"}},
		{20, []string{"y"}},
		{21, []string{"y"}},
	}
	if len(got) != len(want) {
		t.Fatalf("swept %d keys, want %d: %+v", len(got), len(want), got)
	}
	for i := range want {
		if got[i].key != want[i].key || fmt.Sprint(got[i].vals) != fmt.Sprint(want[i].vals) {
			t.Fatalf("key %d: got %+v, want %+v", i, got[i], want[i])
		}
	}
}

// TestEmitRangeCombinerExpands checks a combiner forces eager per-key
// expansion (the fold needs every key's values separately) and still counts
// correctly.
func TestEmitRangeCombinerExpands(t *testing.T) {
	store := dfs.NewMem()
	recs := make([]string, 200)
	for i := range recs {
		recs[i] = strconv.Itoa(i)
	}
	if err := dfs.WriteAll(store, "in", recs); err != nil {
		t.Fatal(err)
	}
	job := Job{
		Name:   "combrange",
		Inputs: []Input{{File: "in"}},
		Map: func(_ int, record string, emit Emitter) error {
			emit.EmitRange(0, 4, "1")
			return nil
		},
		Combine: func(key int64, values []string) []string {
			return []string{strconv.Itoa(len(values))}
		},
		Reduce: func(key int64, values []string, write func(string) error) error {
			var sum int64
			for _, v := range values {
				n, _ := strconv.ParseInt(v, 10, 64)
				sum += n
			}
			return write(fmt.Sprintf("%d:%d", key, sum))
		},
		Output: "out",
	}
	e := NewEngine(Config{Store: store, Workers: 4})
	m, err := e.Run(job)
	if err != nil {
		t.Fatal(err)
	}
	out, err := dfs.ReadAll(store, "out")
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 5 {
		t.Fatalf("output rows = %v", out)
	}
	for k := 0; k < 5; k++ {
		if out[k] != fmt.Sprintf("%d:200", k) {
			t.Fatalf("row %d = %q", k, out[k])
		}
	}
	// The combiner saw the expanded pairs.
	if m.CombineInputPairs != 1000 {
		t.Fatalf("combine input pairs = %d, want 1000", m.CombineInputPairs)
	}
	if m.PhysicalPairs != m.CombineOutputPairs {
		t.Fatalf("physical pairs %d, combine output %d — expanded ranges should shuffle per key",
			m.PhysicalPairs, m.CombineOutputPairs)
	}
}

// TestEmitRangeNegativeLo checks ranges dipping below zero fall back to
// per-key pairs (spill runs reject negative keys, so they must never coalesce).
func TestEmitRangeNegativeLo(t *testing.T) {
	store := dfs.NewMem()
	if err := dfs.WriteAll(store, "in", []string{"only"}); err != nil {
		t.Fatal(err)
	}
	job := Job{
		Name:   "negrange",
		Inputs: []Input{{File: "in"}},
		Map: func(_ int, record string, emit Emitter) error {
			emit.EmitRange(-2, 2, record)
			return nil
		},
		Reduce: func(key int64, values []string, write func(string) error) error {
			return write(fmt.Sprintf("%d:%d", key, len(values)))
		},
		Output: "out",
	}
	e := NewEngine(Config{Store: store, Workers: 2})
	m, err := e.Run(job)
	if err != nil {
		t.Fatal(err)
	}
	out, err := dfs.ReadAll(store, "out")
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 5 || m.IntermediatePairs != 5 || m.PhysicalPairs != 5 {
		t.Fatalf("out = %v, metrics = %+v", out, m)
	}
}

// TestEmitRangeEmptyAndSingle checks degenerate ranges: hi < lo is a no-op,
// hi == lo is a plain pair.
func TestEmitRangeEmptyAndSingle(t *testing.T) {
	var buf []emission
	emit := Emitter{buf: &buf}
	emit.EmitRange(5, 4, "dropped")
	emit.EmitRange(7, 7, "single")
	if len(buf) != 1 || buf[0] != (emission{7, 7, "single"}) {
		t.Fatalf("buf = %+v", buf)
	}
	if buf[0].isRange() {
		t.Fatal("degenerate range should be a point pair")
	}
}
