package mr

import (
	"io"

	"intervaljoin/internal/obs"
)

// Exporter glue: BuildReport marries the tracer's span-level view of a run
// (true per-phase walls, counters, histograms) with the engine's Metrics
// (the serialized model, per-reducer loads) into the obs.Report the CLIs
// write as metrics.json. It lives here rather than in internal/obs because
// obs must not import mr.

// skewTopK is how many stragglers a report's skew table names.
const skewTopK = 10

// BuildReport summarises a traced run. name labels the report (typically
// the algorithm or chain name); m may be a single job's metrics or a chain
// aggregate; t may be nil (untraced run), in which case the report carries
// only the serialized model and skew derived from m.
func BuildReport(name string, t *obs.Tracer, m *Metrics) *obs.Report {
	var snap *obs.Snapshot
	if t.Enabled() {
		snap = t.Snapshot()
	}
	r := obs.NewReport(name, snap)
	if m == nil {
		return r
	}
	r.Model = &obs.SerializedModel{
		Cycles:           m.Cycles,
		FeedNS:           m.FeedWall.Nanoseconds(),
		MapNS:            m.MapWall.Nanoseconds(),
		ReduceNS:         m.ReduceWall.Nanoseconds(),
		TotalNS:          m.TotalWall.Nanoseconds(),
		PipelineNS:       m.PipelineWall.Nanoseconds(),
		OverlapSavedNS:   m.OverlapSaved.Nanoseconds(),
		MakespanLPTNS:    m.MakespanLPT.Nanoseconds(),
		Pairs:            m.IntermediatePairs,
		PhysPairs:        m.PhysicalPairs,
		Bytes:            m.IntermediateBytes,
		PhysBytes:        m.PhysicalBytes,
		SpilledPairs:     m.SpilledPairs,
		TaskRetries:      m.TaskRetries,
		OutputRecords:    m.OutputRecords,
		ReplicationFact:  m.ReplicationFactor(),
		StreamedPairs:    m.StreamedPairs,
		DistinctReducers: m.DistinctKeys,
	}
	r.Skew = obs.NewSkewReport(m.ReducerPairs, m.ReducerTime, skewTopK)
	r.Plan = m.Plan
	return r
}

// WriteMetricsJSON writes a run's metrics.json document to w.
func WriteMetricsJSON(w io.Writer, name string, t *obs.Tracer, m *Metrics) error {
	return BuildReport(name, t, m).WriteJSON(w)
}

// WriteChromeTrace writes the tracer's snapshot as a Chrome trace_event
// JSON document to w — loadable in Perfetto or chrome://tracing. A nil
// tracer writes an empty (but valid) trace.
func WriteChromeTrace(w io.Writer, t *obs.Tracer) error {
	var snap *obs.Snapshot
	if t.Enabled() {
		snap = t.Snapshot()
	}
	return obs.WriteChromeTrace(w, snap)
}
