// Package mr is a from-scratch MapReduce engine that plays the role Hadoop
// plays in the paper. It executes jobs — map over tagged input files,
// shuffle by integer key, reduce per key — on a pool of worker goroutines,
// and measures exactly the quantities the paper's evaluation reasons about:
// the number of intermediate key-value pairs (map/reduce communication
// cost), per-reducer load, and a simulated makespan that models one reduce
// node per key as on a real cluster.
//
// Keys are int64 reducer ids: the paper's partition-intervals and grid cells
// map directly onto them. Values are strings (line records), so every
// intermediate result can spill to the dfs.Store between cycles just as
// Hadoop materialises cycle boundaries on HDFS.
//
// Three Hadoop behaviours are modelled beyond the basic phases: map tasks
// are record batches that are retried on transient failures (as Hadoop
// re-schedules failed task attempts), an optional combiner folds each map
// task's output before the shuffle, and an external sort-merge shuffle
// spills key-sorted runs to the store when the in-memory budget is
// exceeded, so jobs larger than RAM still run.
package mr

import (
	"cmp"
	"context"
	"errors"
	"fmt"
	"runtime"
	"runtime/pprof"
	"slices"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"intervaljoin/internal/dfs"
	"intervaljoin/internal/obs"
)

// Emitter publishes intermediate key-value pairs from a map function. Keys
// are the ids of the reduce tasks that will receive the value; they must be
// non-negative.
type Emitter struct {
	buf    *[]emission
	expand bool
}

// Emit publishes one intermediate key-value pair.
func (e Emitter) Emit(key int64, value string) {
	*e.buf = append(*e.buf, emission{lo: key, hi: key, value: value})
}

// EmitRange publishes value to every reduce key in [lo, hi] — the broadcast
// every replication-based interval-join strategy performs over a contiguous
// run of partition ids. The shuffle stores the value once and expands the
// range lazily at the consuming reduce side, so the physical shuffle cost is
// one record instead of hi-lo+1 copies, while the logical pair metrics still
// count the full span. lo must be non-negative; an empty range (hi < lo)
// emits nothing. Jobs with a combiner, and engines configured with
// ExpandRangeEmits, expand the range into per-key pairs at emit time
// instead.
func (e Emitter) EmitRange(lo, hi int64, value string) {
	if hi < lo {
		return
	}
	if e.expand || lo < 0 {
		for k := lo; k <= hi; k++ {
			*e.buf = append(*e.buf, emission{lo: k, hi: k, value: value})
		}
		return
	}
	*e.buf = append(*e.buf, emission{lo: lo, hi: hi, value: value})
}

// MapFunc transforms one input record into intermediate pairs. tag
// identifies which job input the record came from (the algorithms use it for
// the relation index), so one job can map several relations with one
// function, as Hadoop does with multiple input paths.
type MapFunc func(tag int, record string, emit Emitter) error

// ReduceFunc processes all values received by one reduce task. write appends
// a record to the job output. The values slice is scratch the engine reuses
// across tasks; implementations must not retain it past the call.
type ReduceFunc func(key int64, values []string, write func(record string) error) error

// CombineFunc folds one map task's values for a key before the shuffle
// (Hadoop's combiner). It must be semantically idempotent with the reducer:
// reducing combined values must equal reducing the originals.
type CombineFunc func(key int64, values []string) []string

// Phase identifies which phase a task attempt belongs to, for failure
// injection.
type Phase string

// The two task phases.
const (
	PhaseMap    Phase = "map"
	PhaseReduce Phase = "reduce"
)

// ErrTransient marks a task failure as retryable: the engine re-runs the
// attempt (up to Config.MaxTaskAttempts), discarding the failed attempt's
// partial output, exactly as Hadoop re-schedules failed task attempts.
// Wrap or return it from a map/reduce function (or a failure injector) to
// exercise the retry path.
var ErrTransient = errors.New("mr: transient task failure")

// Input is one input of a job, tagged for the map function. A File ending
// in "/" is a directory input: every store file under the prefix is read,
// in sorted name order — how Hadoop consumes a previous job's part files.
type Input struct {
	File string
	Tag  int
	// Where optionally filters records at feed time: only records for
	// which it returns true reach the map tasks; the rest are dropped
	// before batching and counted in Metrics.FilteredRecords. This is the
	// delta-window execution entry point: the cache service re-runs a join
	// over only the tuples intersecting an uncovered time window by
	// feeding the resident relation file through a window predicate,
	// without re-staging a filtered copy. Nil feeds every record. The
	// function must be safe for concurrent calls (one reader goroutine per
	// input file).
	Where func(record string) bool
}

// expand resolves a directory input to its member files.
func (in Input) expand(store dfs.Store) ([]string, error) {
	if !strings.HasSuffix(in.File, "/") {
		return []string{in.File}, nil
	}
	files, err := store.List(in.File)
	if err != nil {
		return nil, err
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("mr: directory input %s is empty", in.File)
	}
	return files, nil
}

// Job describes one map-reduce cycle.
type Job struct {
	// Name labels the job in metrics and errors.
	Name string
	// Inputs are the files to map over.
	Inputs []Input
	// Map is the map function. Required.
	Map MapFunc
	// Reduce is the reduce function. Required.
	Reduce ReduceFunc
	// Combine optionally folds each map task's output before the shuffle.
	Combine CombineFunc
	// Output names where the reduce output is written. Empty discards
	// output (metric-only runs). A name ending in "/" writes one part
	// file per reduce task ("<output>part-r-00000", ... in key order), as
	// Hadoop does; otherwise a single file is written.
	Output string
	// SortValues sorts each reduce task's value list before reduction,
	// making runs deterministic (Hadoop guarantees key order; this
	// additionally pins value order the way a secondary sort would).
	SortValues bool
	// Resplit, when set alongside Config.ResplitPairThreshold, lets the
	// engine re-shard an oversized reduce task's value list into sub-tasks
	// mid-job (before dispatch). The hook must return shards such that
	// reducing each shard independently and concatenating the outputs in
	// shard order produces exactly the records of reducing the whole list
	// (values may be replicated across shards to keep that true — the
	// drivers use a cell cover over the join's input streams). Returning
	// nil or a single shard declines the split. Each shard runs under the
	// task's original key with full retry semantics.
	Resplit func(key int64, values []string, parts int) [][]string
	// Meta annotates the job for observability: the tracer's cycle spans
	// and the optional pprof labels carry it, so traces and CPU profiles
	// attribute time to (algorithm, cycle, predicate family) rather than
	// to anonymous jobs. Optional; the zero value adds nothing.
	Meta JobMeta
}

// JobMeta is a job's observability annotation, set by the algorithm
// drivers.
type JobMeta struct {
	// Algorithm is the driver's name ("rccis", "all-matrix", ...).
	Algorithm string
	// Cycle is the job's 1-based position in the driver's MR chain.
	Cycle int
	// Family is the query's predicate family ("colocation", "sequence",
	// "hybrid", "general").
	Family string
}

// traceArgs renders the non-empty meta fields as span annotations.
func (jm JobMeta) traceArgs() []obs.Arg {
	args := make([]obs.Arg, 0, 3)
	if jm.Algorithm != "" {
		args = append(args, obs.Arg{Key: "algorithm", Val: jm.Algorithm})
	}
	if jm.Cycle > 0 {
		args = append(args, obs.Arg{Key: "cycle", Val: strconv.Itoa(jm.Cycle)})
	}
	if jm.Family != "" {
		args = append(args, obs.Arg{Key: "family", Val: jm.Family})
	}
	return args
}

// Config configures an Engine.
type Config struct {
	// Store holds inputs, outputs and cycle intermediates. Required.
	Store dfs.Store
	// Workers is the number of concurrent map (and reduce) tasks.
	// Defaults to GOMAXPROCS.
	Workers int
	// SpillPairThreshold bounds the intermediate pairs each map worker
	// buffers in memory; beyond it the worker spills a key-sorted run to
	// the store and the reduce phase streams a merge of the runs.
	// 0 disables spilling (fully in-memory shuffle).
	SpillPairThreshold int
	// MaxTaskAttempts bounds attempts per task (map batch or reduce key).
	// Values below 1 mean 1 (no retry). Hadoop's default is 4.
	MaxTaskAttempts int
	// FailureInjector, when non-nil, runs before every task attempt and
	// may return an error (typically wrapping ErrTransient) to simulate
	// task failures. Used by the failure-injection tests.
	FailureInjector func(phase Phase, task, attempt int) error
	// MaterializeBoundaries forces RunPipeline to write every streamed
	// cycle boundary to the store as well — Hadoop-parity behaviour for
	// debugging and post-mortem inspection of intermediates.
	MaterializeBoundaries bool
	// ExpandRangeEmits makes EmitRange materialise one pair per covered key
	// at emit time instead of shipping a single range record — the legacy
	// per-partition shuffle, kept for ablations and equivalence tests.
	ExpandRangeEmits bool
	// ResplitPairThreshold arms the mid-job re-split: a reduce task whose
	// shuffled value count reaches the threshold is re-sharded through
	// Job.Resplit (when the job provides the hook) and its shards reduced
	// concurrently on spare goroutines. 0 disables re-splitting.
	ResplitPairThreshold int
	// Tracer, when non-nil, records structured execution spans (per map
	// and reduce task, spill, shuffle merge, cycle and chain) plus
	// counters and histograms into internal/obs. A nil tracer disables
	// all recording at the cost of a nil check per instrumentation site.
	Tracer *obs.Tracer
}

// Engine executes jobs.
type Engine struct {
	store        dfs.Store
	workers      int
	spill        int
	attempts     int
	inject       func(phase Phase, task, attempt int) error
	materialize  bool
	expandRanges bool
	resplit      int
	tracer       *obs.Tracer
}

// NewEngine returns an engine over the given store.
func NewEngine(cfg Config) *Engine {
	w := cfg.Workers
	if w <= 0 {
		w = runtime.GOMAXPROCS(0)
	}
	a := cfg.MaxTaskAttempts
	if a < 1 {
		a = 1
	}
	return &Engine{
		store:        cfg.Store,
		workers:      w,
		spill:        cfg.SpillPairThreshold,
		attempts:     a,
		inject:       cfg.FailureInjector,
		materialize:  cfg.MaterializeBoundaries,
		expandRanges: cfg.ExpandRangeEmits,
		resplit:      cfg.ResplitPairThreshold,
		tracer:       cfg.Tracer,
	}
}

// Tracer returns the engine's tracer (nil when tracing is disabled).
func (e *Engine) Tracer() *obs.Tracer { return e.tracer }

// WithTracer returns a derived engine identical to e but recording into
// tr (which may be nil to disable tracing). The engine carries only
// configuration, so the copy shares the store and runs interchangeably
// with the original — this is how a service attaches a fresh per-query
// tracer to a sampled request without touching the shared engine.
func (e *Engine) WithTracer(tr *obs.Tracer) *Engine {
	d := *e
	d.tracer = tr
	return &d
}

// Store returns the engine's file store.
func (e *Engine) Store() dfs.Store { return e.store }

// Run executes one job and returns its metrics.
func (e *Engine) Run(job Job) (*Metrics, error) {
	mark := e.tracer.Now()
	m, err := e.runJob(job, nil, nil, true)
	if m != nil {
		e.fillTrueWalls(m, mark)
	}
	return m, err
}

// runJob executes one job. stream, when non-nil, feeds extra map input
// records alongside the job's file inputs (the pipelined cycle boundary);
// snk, when non-nil, observes every reduce task's committed output; writeOut
// false suppresses writing Job.Output (the records only travel through snk).
func (e *Engine) runJob(job Job, stream <-chan []taggedRecord, snk *sink, writeOut bool) (*Metrics, error) {
	if job.Map == nil || job.Reduce == nil {
		return nil, fmt.Errorf("mr: job %s: Map and Reduce are required", job.Name)
	}
	m := newMetrics(job.Name)
	jobLane := e.tracer.Acquire()
	defer e.tracer.Release(jobLane)
	jobStart := jobLane.Begin()
	start := time.Now()

	shuffle, err := e.mapPhase(job, m, stream, jobLane)
	if err != nil {
		return nil, err
	}
	if err := e.reducePhase(job, shuffle, m, snk, writeOut, jobLane); err != nil {
		return nil, err
	}
	m.CleanupFailures += shuffle.cleanup(e.store)
	m.TotalWall = time.Since(start)
	if jobLane != nil {
		jobLane.End(obs.CatCycle, "cycle:"+job.Name, jobStart, job.Meta.traceArgs()...)
	}
	return m, nil
}

// RunChain executes jobs sequentially (each typically consuming the previous
// job's output file) and returns the per-job metrics plus their aggregate.
func (e *Engine) RunChain(jobs ...Job) ([]*Metrics, *Metrics, error) {
	var all []*Metrics
	agg := newMetrics("chain")
	agg.Cycles = 0
	mark := e.tracer.Now()
	chainLane := e.tracer.Acquire()
	chainStart := chainLane.Begin()
	for i, job := range jobs {
		if i > 0 {
			// Every boundary in a sequential chain is a store barrier.
			chainLane.Event(obs.CatBarrier, "barrier:"+job.Name)
		}
		m, err := e.runJob(job, nil, nil, true)
		if err != nil {
			e.tracer.Release(chainLane)
			return all, agg, err
		}
		all = append(all, m)
		agg.Merge(m)
	}
	chainLane.End(obs.CatChain, "chain", chainStart)
	e.tracer.Release(chainLane)
	e.fillTrueWalls(agg, mark)
	return all, agg, nil
}

// fillTrueWalls sets m's tracer-measured per-phase wall clocks from the
// spans recorded since mark. No-op without a tracer; see Metrics.TrueWalls.
func (e *Engine) fillTrueWalls(m *Metrics, mark time.Duration) {
	if !e.tracer.Enabled() {
		return
	}
	walls := e.tracer.Snapshot().PhaseWalls(mark)
	m.TrueWalls = PhaseWallClock{
		Feed:    walls[obs.CatFeed],
		Map:     walls[obs.CatMap],
		Combine: walls[obs.CatCombine],
		Spill:   walls[obs.CatSpill],
		Merge:   walls[obs.CatMerge],
		Reduce:  walls[obs.CatReduce],
		Output:  walls[obs.CatOutput],
	}
}

// taggedRecord is one unit of map input.
type taggedRecord struct {
	tag    int
	record string
}

// mapBatchSize is the number of records per map task (the retry unit).
const mapBatchSize = 256

// shuffleState carries the map output to the reduce phase: either fully
// in-memory groups partitioned into key shards, or spilled sorted runs plus
// in-memory leftovers.
type shuffleState struct {
	shards   []map[int64][]string // in-memory mode, shards[shardOf(k)] holds k
	runFiles []string             // spill mode
	leftover [][]emission         // spill mode: per-worker lo-sorted tails
}

// shardOf partitions reduce keys across n shards. Map workers bucket their
// local output by shard, so the post-map merge parallelises with one merge
// task per shard and no locking.
func shardOf(key int64, n int) int { return int(uint64(key) % uint64(n)) }

// rangeShardStart returns the smallest key >= lo owned by shard p, so a
// range expansion visits only the keys of one shard. lo is non-negative
// (EmitRange expands negative ranges eagerly).
func rangeShardStart(lo int64, p, n int) int64 {
	return lo + ((int64(p)-lo)%int64(n)+int64(n))%int64(n)
}

// group returns the value list shuffled to key.
func (s *shuffleState) group(key int64) []string {
	return s.shards[shardOf(key, len(s.shards))][key]
}

func (s *shuffleState) spilled() bool { return s.runFiles != nil || s.leftover != nil }

// cleanup removes the job's scratch spill files and returns how many
// removals failed. Failures do not affect the job's result — the files are
// scratch — but the caller records them in Metrics so leaked scratch space
// is visible.
func (s *shuffleState) cleanup(store dfs.Store) int {
	failed := 0
	for _, f := range s.runFiles {
		if err := store.Remove(f); err != nil {
			failed++
		}
	}
	return failed
}

// batchPool recycles map-input batches: the feed hands each filled batch to
// a map worker, which returns it after the task completes.
var batchPool = sync.Pool{
	New: func() any { return make([]taggedRecord, 0, mapBatchSize) },
}

// valuesPool recycles the per-task value slices the streaming reduce path
// hands to reduce tasks (mirroring the sweep kernel's pooled scratch).
var valuesPool = sync.Pool{
	New: func() any { return new([]string) },
}

// recycleValues clears a pooled value slice's string references and returns
// it to the pool.
func recycleValues(vs *[]string) {
	clear(*vs)
	*vs = (*vs)[:0]
	valuesPool.Put(vs)
}

// feedFile is one resolved input file with its map tag and optional
// feed-time record filter.
type feedFile struct {
	name  string
	tag   int
	where func(string) bool
}

func (e *Engine) mapPhase(job Job, m *Metrics, stream <-chan []taggedRecord, jobLane *obs.Lane) (*shuffleState, error) {
	mapStart := time.Now()
	// Resolve every input to its file list up front so the feed can read
	// files concurrently.
	var files []feedFile
	for _, in := range job.Inputs {
		fs, err := in.expand(e.store)
		if err != nil {
			return nil, fmt.Errorf("mr: job %s: %w", job.Name, err)
		}
		for _, f := range fs {
			files = append(files, feedFile{name: f, tag: in.Tag, where: in.Where})
		}
	}

	nshards := e.workers
	work := make(chan []taggedRecord, 2*e.workers)
	errc := make(chan error, 2*e.workers)

	type workerState struct {
		local      []map[int64][]string // in-memory mode, point pairs bucketed by key shard
		ranges     []emission           // in-memory mode, buffered range emissions
		buf        []emission           // spill mode buffer
		runs       []string
		pairs      int64 // logical: one per covered key
		bytes      int64 // logical: value bytes per covered key
		physPairs  int64 // physical: one per emission record
		physBytes  int64 // physical: what the shuffle actually holds
		spilled    int64 // logical pairs inside spilled runs
		retries    int64
		combineIn  int64
		combineOut int64
		runSeq     int
	}
	states := make([]*workerState, e.workers)
	var taskSeq sync.Mutex
	nextTask := 0
	takeTask := func() int {
		taskSeq.Lock()
		defer taskSeq.Unlock()
		t := nextTask
		nextTask++
		return t
	}

	var wg sync.WaitGroup
	for w := 0; w < e.workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			lane := e.tracer.Acquire()
			defer e.tracer.Release(lane)
			var mapSpan, combineSpan, spillSpan string
			if lane != nil {
				mapSpan = "map:" + job.Name
				combineSpan = "combine:" + job.Name
				spillSpan = "spill:" + job.Name
			}
			st := &workerState{}
			if e.spill == 0 {
				st.local = make([]map[int64][]string, nshards)
				for p := range st.local {
					st.local[p] = make(map[int64][]string)
				}
			}
			states[w] = st
			var attemptBuf []emission
			for batch := range work {
				task := takeTask()
				taskStart := lane.Begin()
				var err error
				for attempt := 1; ; attempt++ {
					attemptBuf = attemptBuf[:0]
					err = e.runMapAttempt(job, batch, task, attempt, &attemptBuf)
					if err == nil {
						break
					}
					if !errors.Is(err, ErrTransient) || attempt >= e.attempts {
						errc <- fmt.Errorf("mr: job %s: map task %d: %w", job.Name, task, err)
						for range work {
						}
						return
					}
					st.retries++
					if lane != nil {
						lane.Event(obs.CatMap, "retry:"+job.Name)
						lane.Count("map_retries", 1)
					}
				}
				batchPool.Put(batch[:0])
				// Fold the attempt's pairs through the combiner, then into
				// the worker shuffle.
				pairs := attemptBuf
				if job.Combine != nil {
					combineStart := lane.Begin()
					pairs, st.combineIn, st.combineOut = combinePairs(job.Combine, pairs, st.combineIn, st.combineOut)
					lane.End(obs.CatCombine, combineSpan, combineStart)
				}
				for _, p := range pairs {
					n := p.span()
					st.pairs += n
					st.bytes += n * (int64(len(p.value)) + 8)
					st.physPairs++
					st.physBytes += p.physBytes()
					if lane != nil && p.isRange() {
						lane.Observe("range_emit_width", n)
					}
				}
				if e.spill == 0 {
					for _, p := range pairs {
						if p.isRange() {
							st.ranges = append(st.ranges, p)
							continue
						}
						shard := st.local[shardOf(p.lo, nshards)]
						shard[p.lo] = append(shard[p.lo], p.value)
					}
					lane.End(obs.CatMap, mapSpan, taskStart)
					continue
				}
				st.buf = append(st.buf, pairs...)
				if len(st.buf) >= e.spill {
					name := job.Name + "/.spill/w" + strconv.Itoa(w) + "-r" + strconv.Itoa(st.runSeq)
					st.runSeq++
					var logical int64
					for _, p := range st.buf {
						logical += p.span()
					}
					spillStart := lane.Begin()
					if err := spillRun(e.store, name, st.buf); err != nil {
						errc <- fmt.Errorf("mr: job %s: %w", job.Name, err)
						for range work {
						}
						return
					}
					if lane != nil {
						lane.End(obs.CatSpill, spillSpan, spillStart)
						lane.Count("spill_records", int64(len(st.buf)))
						lane.Count("spill_runs", 1)
					}
					st.spilled += logical
					st.runs = append(st.runs, name)
					st.buf = st.buf[:0]
				}
				lane.End(obs.CatMap, mapSpan, taskStart)
			}
		}(w)
	}

	// Feed record batches with one reader per file (bounded by the worker
	// count), so multi-file and multi-input jobs are not throttled by a
	// single reader goroutine.
	var records, filtered atomic.Int64
	feedErrc := make(chan error, len(files))
	filec := make(chan feedFile)
	readers := e.workers
	if readers > len(files) {
		readers = len(files)
	}
	var feedWG sync.WaitGroup
	for r := 0; r < readers; r++ {
		feedWG.Add(1)
		go func() {
			defer feedWG.Done()
			lane := e.tracer.Acquire()
			defer e.tracer.Release(lane)
			for f := range filec {
				fStart := lane.Begin()
				if err := e.feedFile(job, f, work, &records, &filtered); err != nil {
					feedErrc <- err
					// Keep draining so the dispatcher never blocks.
				}
				if lane != nil {
					lane.End(obs.CatFeed, "feed:"+f.name, fStart)
				}
			}
		}()
	}
	// A streamed boundary feeds upstream reduce batches straight into the
	// same work queue the file readers fill: upstream batches are already
	// the retry unit, so a failed downstream map attempt re-runs from the
	// buffered batch without touching the store.
	if stream != nil {
		feedWG.Add(1)
		go func() {
			defer feedWG.Done()
			for batch := range stream {
				records.Add(int64(len(batch)))
				work <- batch
			}
		}()
	}
	for _, f := range files {
		filec <- f
	}
	close(filec)
	feedWG.Wait()
	m.FeedWall = time.Since(mapStart)
	close(work)
	wg.Wait()
	close(errc)
	close(feedErrc)
	if err := <-feedErrc; err != nil {
		return nil, err
	}
	if err := <-errc; err != nil {
		return nil, err
	}

	m.MapInputRecords = records.Load()
	m.FilteredRecords = filtered.Load()
	m.MapWall = time.Since(mapStart)

	shuffle := &shuffleState{}
	for _, st := range states {
		if st == nil {
			continue
		}
		m.IntermediatePairs += st.pairs
		m.IntermediateBytes += st.bytes
		m.PhysicalPairs += st.physPairs
		m.PhysicalBytes += st.physBytes
		m.SpilledPairs += st.spilled
		m.TaskRetries += st.retries
		m.CombineInputPairs += st.combineIn
		m.CombineOutputPairs += st.combineOut
		if e.spill == 0 {
			continue
		}
		shuffle.runFiles = append(shuffle.runFiles, st.runs...)
		m.SpillRuns += len(st.runs)
		if len(st.buf) > 0 {
			slices.SortFunc(st.buf, func(a, b emission) int {
				if c := cmp.Compare(a.lo, b.lo); c != 0 {
					return c
				}
				return cmp.Compare(a.hi, b.hi)
			})
			shuffle.leftover = append(shuffle.leftover, st.buf)
		}
	}
	if e.spill > 0 {
		return shuffle, nil
	}

	// Merge the worker-local buckets into per-shard groups, one merge task
	// per shard on its own goroutine — no shard is touched by two tasks, so
	// the merge needs no locks. Range emissions expand here: the merge
	// appends one shared string reference per covered key, stepping through
	// the range with the shard stride so the per-shard work is proportional
	// to the keys the shard owns. A first counting pass sizes every value
	// list exactly, so one contiguous arena backs the whole shard instead of
	// one growing allocation per key.
	shuffle.shards = make([]map[int64][]string, nshards)
	mergeStart := jobLane.Begin()
	var mergeWG sync.WaitGroup
	for p := 0; p < nshards; p++ {
		mergeWG.Add(1)
		go func(p int) {
			defer mergeWG.Done()
			counts := make(map[int64]int)
			total := 0
			for _, st := range states {
				if st == nil {
					continue
				}
				for k, vs := range st.local[p] {
					counts[k] += len(vs)
					total += len(vs)
				}
				for _, r := range st.ranges {
					for k := rangeShardStart(r.lo, p, nshards); k <= r.hi; k += int64(nshards) {
						counts[k]++
						total++
					}
				}
			}
			shard := make(map[int64][]string, len(counts))
			arena := make([]string, total)
			off := 0
			for k, n := range counts {
				shard[k] = arena[off : off : off+n]
				off += n
			}
			for _, st := range states {
				if st == nil {
					continue
				}
				for k, vs := range st.local[p] {
					shard[k] = append(shard[k], vs...)
				}
				for _, r := range st.ranges {
					for k := rangeShardStart(r.lo, p, nshards); k <= r.hi; k += int64(nshards) {
						shard[k] = append(shard[k], r.value)
					}
				}
			}
			shuffle.shards[p] = shard
		}(p)
	}
	mergeWG.Wait()
	if jobLane != nil {
		jobLane.End(obs.CatMerge, "merge:"+job.Name, mergeStart)
	}
	for _, shard := range shuffle.shards {
		m.DistinctKeys += len(shard)
		for k, vs := range shard {
			m.ReducerPairs[k] = int64(len(vs))
		}
	}
	return shuffle, nil
}

// feedFile streams one input file into map batches, applying the input's
// feed-time filter (if any) before batching.
func (e *Engine) feedFile(job Job, f feedFile, work chan<- []taggedRecord, records, filtered *atomic.Int64) error {
	it, err := e.store.Open(f.name)
	if err != nil {
		return fmt.Errorf("mr: job %s: %w", job.Name, err)
	}
	defer it.Close()
	batch := batchPool.Get().([]taggedRecord)
	n, dropped := int64(0), int64(0)
	for {
		rec, ok, err := it.Next()
		if err != nil {
			batchPool.Put(batch[:0])
			return fmt.Errorf("mr: job %s: read %s: %w", job.Name, f.name, err)
		}
		if !ok {
			break
		}
		if f.where != nil && !f.where(rec) {
			dropped++
			continue
		}
		n++
		batch = append(batch, taggedRecord{tag: f.tag, record: rec})
		if len(batch) == mapBatchSize {
			work <- batch
			batch = batchPool.Get().([]taggedRecord)
		}
	}
	records.Add(n)
	filtered.Add(dropped)
	if len(batch) > 0 {
		work <- batch
	} else {
		batchPool.Put(batch[:0])
	}
	return nil
}

// runMapAttempt executes one map task attempt over a record batch,
// buffering its emissions. Jobs with a combiner expand range emissions into
// per-key pairs at emit time: the combiner's fold is defined per key, so the
// shared-value representation cannot survive it.
func (e *Engine) runMapAttempt(job Job, batch []taggedRecord, task, attempt int, buf *[]emission) error {
	if e.inject != nil {
		if err := e.inject(PhaseMap, task, attempt); err != nil {
			return err
		}
	}
	emit := Emitter{buf: buf, expand: e.expandRanges || job.Combine != nil}
	for _, tr := range batch {
		if err := job.Map(tr.tag, tr.record, emit); err != nil {
			return err
		}
	}
	return nil
}

// combinePairs groups the attempt's pairs by key and folds each group
// through the combiner. Range emissions never reach it (runMapAttempt
// expands them when a combiner is set).
func combinePairs(combine CombineFunc, pairs []emission, inAcc, outAcc int64) ([]emission, int64, int64) {
	grouped := make(map[int64][]string)
	for _, p := range pairs {
		grouped[p.lo] = append(grouped[p.lo], p.value)
	}
	out := pairs[:0]
	for k, vs := range grouped {
		inAcc += int64(len(vs))
		folded := combine(k, vs)
		outAcc += int64(len(folded))
		for _, v := range folded {
			out = append(out, emission{lo: k, hi: k, value: v})
		}
	}
	return out, inAcc, outAcc
}

// reduceResult is one reduce task's buffered output.
type reduceResult struct {
	key      int64
	output   []string
	duration time.Duration
	pairs    int64
}

func (e *Engine) reducePhase(job Job, shuffle *shuffleState, m *Metrics, snk *sink, writeOut bool, jobLane *obs.Lane) error {
	reduceStart := time.Now()
	var results []reduceResult
	var err error
	if shuffle.spilled() {
		results, err = e.reduceStreaming(job, shuffle, m, snk, jobLane)
	} else {
		results, err = e.reduceInMemory(job, shuffle, m, snk)
	}
	if err != nil {
		return err
	}
	slices.SortFunc(results, func(a, b reduceResult) int { return cmp.Compare(a.key, b.key) })

	for _, res := range results {
		m.ReducerTime[res.key] = res.duration
		if res.duration > m.MaxReducerTime {
			m.MaxReducerTime = res.duration
		}
		m.OutputRecords += int64(len(res.output))
	}
	m.MakespanKeyOrder, m.MakespanLPT = modelDispatchOrders(results, e.workers)
	if writeOut {
		outStart := jobLane.Begin()
		if err := e.writeOutput(job, results); err != nil {
			return err
		}
		if jobLane != nil {
			jobLane.End(obs.CatOutput, "output:"+job.Name, outStart)
		}
	}
	m.ReduceWall = time.Since(reduceStart)
	return nil
}

// modelDispatchOrders replays the measured reduce task durations through the
// list scheduler in ascending key order and in the longest-first order the
// engine dispatches (by shuffled value count), quantifying the straggler
// tail the LPT ordering removes.
func modelDispatchOrders(results []reduceResult, workers int) (keyOrder, lpt time.Duration) {
	durs := make([]time.Duration, len(results))
	for i, r := range results {
		durs[i] = r.duration
	}
	keyOrder = listMakespan(durs, workers)
	order := make([]int, len(results))
	for i := range order {
		order[i] = i
	}
	slices.SortFunc(order, func(a, b int) int {
		if c := cmp.Compare(results[b].pairs, results[a].pairs); c != 0 {
			return c
		}
		return cmp.Compare(results[a].key, results[b].key)
	})
	for i, oi := range order {
		durs[i] = results[oi].duration
	}
	return keyOrder, listMakespan(durs, workers)
}

// writeOutput commits the buffered reduce outputs: a single file, or — for
// directory outputs — one part file per reduce task, written in parallel.
func (e *Engine) writeOutput(job Job, results []reduceResult) error {
	if job.Output == "" {
		return nil
	}
	if !strings.HasSuffix(job.Output, "/") {
		w, err := e.store.Create(job.Output)
		if err != nil {
			return fmt.Errorf("mr: job %s: %w", job.Name, err)
		}
		for _, res := range results {
			for _, rec := range res.output {
				if err := w.Write(rec); err != nil {
					w.Close()
					return fmt.Errorf("mr: job %s: write output: %w", job.Name, err)
				}
			}
		}
		if err := w.Close(); err != nil {
			return fmt.Errorf("mr: job %s: close output: %w", job.Name, err)
		}
		return nil
	}
	// Part files, one per reduce task in key order, written concurrently.
	errc := make(chan error, e.workers)
	idxc := make(chan int, 2*e.workers)
	var wg sync.WaitGroup
	for w := 0; w < e.workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range idxc {
				name := partFileName(job.Output, i)
				pw, err := e.store.Create(name)
				if err != nil {
					errc <- fmt.Errorf("mr: job %s: %w", job.Name, err)
					for range idxc {
					}
					return
				}
				for _, rec := range results[i].output {
					if err := pw.Write(rec); err != nil {
						pw.Close()
						errc <- fmt.Errorf("mr: job %s: write %s: %w", job.Name, name, err)
						for range idxc {
						}
						return
					}
				}
				if err := pw.Close(); err != nil {
					errc <- fmt.Errorf("mr: job %s: close %s: %w", job.Name, name, err)
					for range idxc {
					}
					return
				}
			}
		}()
	}
	for i := range results {
		idxc <- i
	}
	close(idxc)
	wg.Wait()
	close(errc)
	return <-errc
}

// partFileName builds the Hadoop-style "<output>part-r-NNNNN" name with a
// five-digit zero-padded task index, append-style so the concurrent part
// writers stay off fmt.
func partFileName(output string, i int) string {
	s := strconv.Itoa(i)
	b := make([]byte, 0, len(output)+7+5+len(s))
	b = append(b, output...)
	b = append(b, "part-r-"...)
	for n := len(s); n < 5; n++ {
		b = append(b, '0')
	}
	b = append(b, s...)
	return string(b)
}

// runReduceTask executes one reduce task with retry semantics.
func (e *Engine) runReduceTask(job Job, task int, key int64, values []string, m *retryCounter, lane *obs.Lane, spanName string) (reduceResult, error) {
	taskStart := lane.Begin()
	if job.SortValues {
		slices.Sort(values)
	}
	for attempt := 1; ; attempt++ {
		var out []string
		write := func(record string) error {
			out = append(out, record)
			return nil
		}
		t0 := time.Now()
		err := func() error {
			if e.inject != nil {
				if err := e.inject(PhaseReduce, task, attempt); err != nil {
					return err
				}
			}
			return job.Reduce(key, values, write)
		}()
		if err == nil {
			if lane != nil {
				lane.End(obs.CatReduce, spanName, taskStart,
					obs.Arg{Key: "key", Val: strconv.FormatInt(key, 10)})
				lane.Observe("reduce_pairs", int64(len(values)))
			}
			return reduceResult{key: key, output: out, duration: time.Since(t0), pairs: int64(len(values))}, nil
		}
		if !errors.Is(err, ErrTransient) || attempt >= e.attempts {
			return reduceResult{}, fmt.Errorf("mr: job %s: reduce key %d: %w", job.Name, key, err)
		}
		m.add(1)
		if lane != nil {
			lane.Event(obs.CatReduce, "retry:"+job.Name)
			lane.Count("reduce_retries", 1)
		}
	}
}

// runReduceTaskSplit executes one reduce task, re-splitting it mid-job
// when its shuffled volume crossed Config.ResplitPairThreshold and the
// job opted in via Job.Resplit: the value list is re-sharded by the hook
// and the shards reduced concurrently on spare goroutines — the
// single-process analogue of re-scheduling a hot reduce task's input
// across idle cluster workers. Each shard keeps the original key and the
// full per-attempt retry machinery; the shard outputs are concatenated in
// shard order into one result, so downstream (sink delivery, output
// commit, per-key metrics) sees exactly one task whose duration is the
// wall clock of the whole split execution.
func (e *Engine) runReduceTaskSplit(job Job, task int, key int64, values []string, m *retryCounter, lane *obs.Lane, spanName string) (reduceResult, error) {
	if job.Resplit == nil || e.resplit <= 0 || len(values) < e.resplit {
		return e.runReduceTask(job, task, key, values, m, lane, spanName)
	}
	parts := (len(values) + e.resplit - 1) / e.resplit
	if parts > e.workers {
		parts = e.workers
	}
	if parts < 2 {
		parts = 2
	}
	splitStart := lane.Begin()
	t0 := time.Now()
	shards := job.Resplit(key, values, parts)
	if len(shards) <= 1 {
		return e.runReduceTask(job, task, key, values, m, lane, spanName)
	}
	results := make([]reduceResult, len(shards))
	errs := make([]error, len(shards))
	var wg sync.WaitGroup
	live := 0
	for si := range shards {
		if len(shards[si]) == 0 {
			continue
		}
		live++
		wg.Add(1)
		go func(si int) {
			defer wg.Done()
			slane := e.tracer.Acquire()
			defer e.tracer.Release(slane)
			var span string
			if slane != nil {
				span = "reduce-shard:" + job.Name
			}
			results[si], errs[si] = e.runReduceTask(job, task, key, shards[si], m, slane, span)
		}(si)
	}
	wg.Wait()
	merged := reduceResult{key: key, pairs: int64(len(values))}
	for si := range shards {
		if errs[si] != nil {
			return reduceResult{}, errs[si]
		}
		merged.output = append(merged.output, results[si].output...)
	}
	merged.duration = time.Since(t0)
	if lane != nil {
		lane.End(obs.CatResplit, "resplit:"+job.Name, splitStart,
			obs.Arg{Key: "key", Val: strconv.FormatInt(key, 10)},
			obs.Arg{Key: "shards", Val: strconv.Itoa(live)})
		lane.Count("resplit_tasks", 1)
		lane.Count("resplit_shards", int64(live))
	}
	return merged, nil
}

// withReduceLabels runs fn, labelling its goroutine for CPU profiles when
// the tracer asks for pprof labels, so profile samples attribute reduce
// time to (algorithm, cycle, job) instead of anonymous worker goroutines.
func (e *Engine) withReduceLabels(job Job, fn func()) {
	if !e.tracer.PprofLabels() {
		fn()
		return
	}
	labels := pprof.Labels(
		"mr_phase", "reduce",
		"job", job.Name,
		"algorithm", job.Meta.Algorithm,
		"cycle", strconv.Itoa(job.Meta.Cycle),
	)
	pprof.Do(context.Background(), labels, func(context.Context) { fn() })
}

// retryCounter accumulates retries across concurrent reduce tasks.
type retryCounter struct {
	mu sync.Mutex
	n  int64
}

func (rc *retryCounter) add(d int64) {
	rc.mu.Lock()
	rc.n += d
	rc.mu.Unlock()
}

func (e *Engine) reduceInMemory(job Job, shuffle *shuffleState, m *Metrics, snk *sink) ([]reduceResult, error) {
	keys := make([]int64, 0, m.DistinctKeys)
	for _, shard := range shuffle.shards {
		for k := range shard {
			keys = append(keys, k)
		}
	}
	slices.Sort(keys)

	// Dispatch longest-processing-time first (by shuffled value count):
	// classic list scheduling, which keeps the heaviest reduce task from
	// landing last and stretching the phase by a whole straggler. keys
	// stays key-sorted so results/output ordering is unaffected.
	order := make([]int, len(keys))
	for i := range order {
		order[i] = i
	}
	slices.SortFunc(order, func(a, b int) int {
		if c := cmp.Compare(len(shuffle.group(keys[b])), len(shuffle.group(keys[a]))); c != 0 {
			return c
		}
		return cmp.Compare(keys[a], keys[b])
	})

	results := make([]reduceResult, len(keys))
	errc := make(chan error, e.workers)
	keyc := make(chan int, 2*e.workers)
	var retries retryCounter
	var wg sync.WaitGroup
	for w := 0; w < e.workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			lane := e.tracer.Acquire()
			defer e.tracer.Release(lane)
			var reduceSpan string
			if lane != nil {
				reduceSpan = "reduce:" + job.Name
			}
			e.withReduceLabels(job, func() {
				for ki := range keyc {
					key := keys[ki]
					res, err := e.runReduceTaskSplit(job, ki, key, shuffle.group(key), &retries, lane, reduceSpan)
					if err != nil {
						errc <- err
						for range keyc {
						}
						return
					}
					results[ki] = res
					snk.deliver(res.output)
				}
			})
		}()
	}
	for _, ki := range order {
		keyc <- ki
	}
	close(keyc)
	wg.Wait()
	close(errc)
	if err := <-errc; err != nil {
		return nil, err
	}
	m.TaskRetries += retries.n
	return results, nil
}

// reduceStreaming merges the spilled runs and in-memory leftovers in key
// order, dispatching each key's values to the worker pool as it completes —
// only one in-flight key list per worker is materialised.
func (e *Engine) reduceStreaming(job Job, shuffle *shuffleState, m *Metrics, snk *sink, jobLane *obs.Lane) ([]reduceResult, error) {
	cursors := make([]cursor, 0, len(shuffle.runFiles)+len(shuffle.leftover))
	for _, f := range shuffle.runFiles {
		rc, err := openRun(e.store, f)
		if err != nil {
			return nil, fmt.Errorf("mr: job %s: %w", job.Name, err)
		}
		defer rc.close()
		cursors = append(cursors, rc)
	}
	for _, l := range shuffle.leftover {
		cursors = append(cursors, &memCursor{ems: l})
	}

	type task struct {
		idx    int
		key    int64
		values *[]string
	}
	taskc := make(chan task, e.workers)
	errc := make(chan error, e.workers+1)
	var (
		mu      sync.Mutex
		results []reduceResult
		retries retryCounter
		wg      sync.WaitGroup
	)
	for w := 0; w < e.workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			lane := e.tracer.Acquire()
			defer e.tracer.Release(lane)
			var reduceSpan string
			if lane != nil {
				reduceSpan = "reduce:" + job.Name
			}
			e.withReduceLabels(job, func() {
				for t := range taskc {
					res, err := e.runReduceTaskSplit(job, t.idx, t.key, *t.values, &retries, lane, reduceSpan)
					recycleValues(t.values)
					if err != nil {
						errc <- err
						for range taskc {
						}
						return
					}
					mu.Lock()
					results = append(results, res)
					mu.Unlock()
					snk.deliver(res.output)
				}
			})
		}()
	}
	idx := 0
	mergeStart := jobLane.Begin()
	mergeErr := mergeRuns(cursors, func(key int64, values []string) error {
		// The merge reuses its values slice, so each dispatched task gets a
		// pooled copy that the worker recycles once the task commits —
		// bounded scratch instead of a fresh allocation per key.
		cp := valuesPool.Get().(*[]string)
		*cp = append((*cp)[:0], values...)
		m.ReducerPairs[key] = int64(len(values))
		taskc <- task{idx: idx, key: key, values: cp}
		idx++
		return nil
	})
	if jobLane != nil {
		jobLane.End(obs.CatMerge, "merge:"+job.Name, mergeStart)
	}
	close(taskc)
	wg.Wait()
	close(errc)
	if mergeErr != nil {
		return nil, fmt.Errorf("mr: job %s: shuffle merge: %w", job.Name, mergeErr)
	}
	if err := <-errc; err != nil {
		return nil, err
	}
	m.DistinctKeys = idx
	m.TaskRetries += retries.n
	return results, nil
}
