package mr

import (
	"errors"
	"fmt"
	"sort"
	"strconv"
	"strings"
	"testing"

	"intervaljoin/internal/dfs"
)

func newTestEngine(t *testing.T, workers int) *Engine {
	t.Helper()
	return NewEngine(Config{Store: dfs.NewMem(), Workers: workers})
}

func writeInput(t *testing.T, e *Engine, name string, recs []string) {
	t.Helper()
	if err := dfs.WriteAll(e.Store(), name, recs); err != nil {
		t.Fatal(err)
	}
}

// wordCount is the canonical MR smoke test.
func TestWordCount(t *testing.T) {
	for _, workers := range []int{1, 4} {
		t.Run(fmt.Sprintf("workers=%d", workers), func(t *testing.T) {
			e := newTestEngine(t, workers)
			writeInput(t, e, "in", []string{"a b a", "c b", "a"})
			job := Job{
				Name:   "wordcount",
				Inputs: []Input{{File: "in"}},
				Map: func(tag int, record string, emit Emitter) error {
					for _, w := range strings.Fields(record) {
						emit.Emit(int64(w[0]), w)
					}
					return nil
				},
				Reduce: func(key int64, values []string, write func(string) error) error {
					return write(fmt.Sprintf("%c=%d", rune(key), len(values)))
				},
				Output: "out",
			}
			m, err := e.Run(job)
			if err != nil {
				t.Fatal(err)
			}
			out, err := dfs.ReadAll(e.Store(), "out")
			if err != nil {
				t.Fatal(err)
			}
			sort.Strings(out)
			want := []string{"a=3", "b=2", "c=1"}
			if len(out) != 3 || out[0] != want[0] || out[1] != want[1] || out[2] != want[2] {
				t.Fatalf("output = %v, want %v", out, want)
			}
			if m.MapInputRecords != 3 || m.IntermediatePairs != 6 || m.DistinctKeys != 3 || m.OutputRecords != 3 {
				t.Fatalf("metrics = %+v", m)
			}
		})
	}
}

func TestMultipleTaggedInputs(t *testing.T) {
	e := newTestEngine(t, 2)
	writeInput(t, e, "r1", []string{"x", "y"})
	writeInput(t, e, "r2", []string{"z"})
	job := Job{
		Name:   "tags",
		Inputs: []Input{{File: "r1", Tag: 0}, {File: "r2", Tag: 1}},
		Map: func(tag int, record string, emit Emitter) error {
			emit.Emit(0, fmt.Sprintf("%d:%s", tag, record))
			return nil
		},
		Reduce: func(key int64, values []string, write func(string) error) error {
			sort.Strings(values)
			return write(strings.Join(values, ","))
		},
		Output: "out",
	}
	if _, err := e.Run(job); err != nil {
		t.Fatal(err)
	}
	out, _ := dfs.ReadAll(e.Store(), "out")
	if len(out) != 1 || out[0] != "0:x,0:y,1:z" {
		t.Fatalf("output = %v", out)
	}
}

func TestSortValuesDeterminism(t *testing.T) {
	e := newTestEngine(t, 8)
	recs := make([]string, 500)
	for i := range recs {
		recs[i] = strconv.Itoa(i)
	}
	writeInput(t, e, "in", recs)
	job := Job{
		Name:   "det",
		Inputs: []Input{{File: "in"}},
		Map: func(tag int, record string, emit Emitter) error {
			emit.Emit(0, record)
			return nil
		},
		Reduce: func(key int64, values []string, write func(string) error) error {
			return write(strings.Join(values, " "))
		},
		Output:     "out",
		SortValues: true,
	}
	var first string
	for run := 0; run < 3; run++ {
		if _, err := e.Run(job); err != nil {
			t.Fatal(err)
		}
		out, _ := dfs.ReadAll(e.Store(), "out")
		if run == 0 {
			first = out[0]
		} else if out[0] != first {
			t.Fatal("SortValues run not deterministic")
		}
	}
}

func TestOutputOrderedByKey(t *testing.T) {
	e := newTestEngine(t, 4)
	writeInput(t, e, "in", []string{"5", "1", "9", "3"})
	job := Job{
		Name:   "keyorder",
		Inputs: []Input{{File: "in"}},
		Map: func(tag int, record string, emit Emitter) error {
			k, _ := strconv.ParseInt(record, 10, 64)
			emit.Emit(k, record)
			return nil
		},
		Reduce: func(key int64, values []string, write func(string) error) error {
			return write(values[0])
		},
		Output: "out",
	}
	if _, err := e.Run(job); err != nil {
		t.Fatal(err)
	}
	out, _ := dfs.ReadAll(e.Store(), "out")
	want := []string{"1", "3", "5", "9"}
	for i := range want {
		if out[i] != want[i] {
			t.Fatalf("output = %v, want %v (reduce output must be key-ordered)", out, want)
		}
	}
}

func TestMapErrorPropagates(t *testing.T) {
	e := newTestEngine(t, 4)
	writeInput(t, e, "in", []string{"a", "b", "c", "d", "e", "f"})
	boom := errors.New("boom")
	job := Job{
		Name:   "maperr",
		Inputs: []Input{{File: "in"}},
		Map: func(tag int, record string, emit Emitter) error {
			if record == "c" {
				return boom
			}
			emit.Emit(0, record)
			return nil
		},
		Reduce: func(key int64, values []string, write func(string) error) error { return nil },
	}
	if _, err := e.Run(job); err == nil || !errors.Is(err, boom) {
		t.Fatalf("err = %v, want wrapped boom", err)
	}
}

func TestReduceErrorPropagates(t *testing.T) {
	e := newTestEngine(t, 4)
	writeInput(t, e, "in", []string{"a", "b"})
	boom := errors.New("boom")
	job := Job{
		Name:   "rederr",
		Inputs: []Input{{File: "in"}},
		Map: func(tag int, record string, emit Emitter) error {
			emit.Emit(int64(record[0]), record)
			return nil
		},
		Reduce: func(key int64, values []string, write func(string) error) error {
			return boom
		},
	}
	if _, err := e.Run(job); err == nil || !errors.Is(err, boom) {
		t.Fatalf("err = %v, want wrapped boom", err)
	}
}

func TestMissingInputFile(t *testing.T) {
	e := newTestEngine(t, 2)
	job := Job{
		Name:   "missing",
		Inputs: []Input{{File: "nope"}},
		Map:    func(tag int, record string, emit Emitter) error { return nil },
		Reduce: func(key int64, values []string, write func(string) error) error { return nil },
	}
	if _, err := e.Run(job); err == nil {
		t.Fatal("missing input file not reported")
	}
}

func TestMissingFunctions(t *testing.T) {
	e := newTestEngine(t, 2)
	if _, err := e.Run(Job{Name: "nofn"}); err == nil {
		t.Fatal("job without Map/Reduce accepted")
	}
}

func TestEmptyInputProducesEmptyOutput(t *testing.T) {
	e := newTestEngine(t, 2)
	writeInput(t, e, "in", nil)
	job := Job{
		Name:   "empty",
		Inputs: []Input{{File: "in"}},
		Map: func(tag int, record string, emit Emitter) error {
			emit.Emit(0, record)
			return nil
		},
		Reduce: func(key int64, values []string, write func(string) error) error {
			return write("x")
		},
		Output: "out",
	}
	m, err := e.Run(job)
	if err != nil {
		t.Fatal(err)
	}
	if m.MapInputRecords != 0 || m.IntermediatePairs != 0 || m.OutputRecords != 0 {
		t.Fatalf("metrics = %+v", m)
	}
	out, err := dfs.ReadAll(e.Store(), "out")
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 0 {
		t.Fatalf("output = %v, want empty", out)
	}
}

func TestRunChain(t *testing.T) {
	e := newTestEngine(t, 4)
	writeInput(t, e, "in", []string{"1", "2", "3"})
	inc := Job{
		Name:   "inc",
		Inputs: []Input{{File: "in"}},
		Map: func(tag int, record string, emit Emitter) error {
			n, _ := strconv.Atoi(record)
			emit.Emit(0, strconv.Itoa(n+1))
			return nil
		},
		Reduce: func(key int64, values []string, write func(string) error) error {
			for _, v := range values {
				if err := write(v); err != nil {
					return err
				}
			}
			return nil
		},
		Output:     "mid",
		SortValues: true,
	}
	double := inc
	double.Name = "double"
	double.Inputs = []Input{{File: "mid"}}
	double.Map = func(tag int, record string, emit Emitter) error {
		n, _ := strconv.Atoi(record)
		emit.Emit(0, strconv.Itoa(n*2))
		return nil
	}
	double.Output = "out"
	per, agg, err := e.RunChain(inc, double)
	if err != nil {
		t.Fatal(err)
	}
	if len(per) != 2 || agg.Cycles != 2 {
		t.Fatalf("chain metrics: %d jobs, cycles=%d", len(per), agg.Cycles)
	}
	if agg.IntermediatePairs != 6 {
		t.Fatalf("aggregate pairs = %d, want 6", agg.IntermediatePairs)
	}
	out, _ := dfs.ReadAll(e.Store(), "out")
	sort.Strings(out)
	want := []string{"4", "6", "8"}
	for i := range want {
		if out[i] != want[i] {
			t.Fatalf("output = %v, want %v", out, want)
		}
	}
}

func TestMetricsReducerStats(t *testing.T) {
	m := newMetrics("x")
	m.ReducerPairs[0] = 10
	m.ReducerPairs[1] = 10
	m.ReducerPairs[2] = 40
	if m.MaxReducerPairs() != 40 {
		t.Fatalf("MaxReducerPairs = %d", m.MaxReducerPairs())
	}
	if got := m.MeanReducerPairs(); got != 20 {
		t.Fatalf("MeanReducerPairs = %v", got)
	}
	if got := m.LoadImbalance(); got != 2 {
		t.Fatalf("LoadImbalance = %v", got)
	}
	lv := m.ReducerLoadVector()
	if len(lv) != 3 || lv[0] != 10 || lv[2] != 40 {
		t.Fatalf("ReducerLoadVector = %v", lv)
	}
}

func TestMetricsMerge(t *testing.T) {
	a := newMetrics("a")
	a.IntermediatePairs = 5
	a.ReducerPairs[1] = 5
	b := newMetrics("b")
	b.IntermediatePairs = 7
	b.ReducerPairs[1] = 3
	b.ReducerPairs[2] = 4
	a.Merge(b)
	if a.IntermediatePairs != 12 || a.ReducerPairs[1] != 8 || a.ReducerPairs[2] != 4 {
		t.Fatalf("merged = %+v", a)
	}
	if a.Cycles != 2 {
		t.Fatalf("Cycles = %d, want 2", a.Cycles)
	}
}

func TestLoadImbalanceEmpty(t *testing.T) {
	m := newMetrics("e")
	if m.LoadImbalance() != 1 {
		t.Fatal("empty metrics should report balanced load")
	}
}

func TestLargeShuffle(t *testing.T) {
	e := newTestEngine(t, 0) // default workers
	const n = 20000
	recs := make([]string, n)
	for i := range recs {
		recs[i] = strconv.Itoa(i)
	}
	writeInput(t, e, "in", recs)
	job := Job{
		Name:   "large",
		Inputs: []Input{{File: "in"}},
		Map: func(tag int, record string, emit Emitter) error {
			v, _ := strconv.ParseInt(record, 10, 64)
			emit.Emit(v%16, record)
			return nil
		},
		Reduce: func(key int64, values []string, write func(string) error) error {
			return write(fmt.Sprintf("%d:%d", key, len(values)))
		},
		Output: "out",
	}
	m, err := e.Run(job)
	if err != nil {
		t.Fatal(err)
	}
	if m.IntermediatePairs != n || m.DistinctKeys != 16 {
		t.Fatalf("pairs=%d keys=%d", m.IntermediatePairs, m.DistinctKeys)
	}
	out, _ := dfs.ReadAll(e.Store(), "out")
	if len(out) != 16 {
		t.Fatalf("output rows = %d, want 16", len(out))
	}
	for _, row := range out {
		if !strings.HasSuffix(row, ":1250") {
			t.Fatalf("unbalanced row %q, want 20000/16=1250 each", row)
		}
	}
}
