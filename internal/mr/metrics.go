package mr

import (
	"fmt"
	"slices"
	"strings"
	"time"

	"intervaljoin/internal/obs"
)

// Metrics captures what one job (or an aggregate of chained jobs) cost. The
// paper's evaluation compares algorithms on exactly these axes: intermediate
// key-value pairs generated (communication), number of intervals replicated,
// per-reducer load balance, and end-to-end time.
type Metrics struct {
	Job string
	// Cycles is the number of MR cycles aggregated (1 for a single job).
	Cycles int
	// MapInputRecords counts records read by map tasks across inputs.
	MapInputRecords int64
	// FilteredRecords counts records dropped at feed time by Input.Where
	// before reaching any map task — the records a delta-window run skipped
	// relative to a full scan of the same inputs. Not included in
	// MapInputRecords.
	FilteredRecords int64
	// IntermediatePairs counts emitted key-value pairs — the map→reduce
	// communication volume. This is the logical count: a range emission
	// addressed to r reducers counts r pairs, exactly what the per-key emit
	// it replaces would have produced.
	IntermediatePairs int64
	// IntermediateBytes approximates the logical shuffled byte volume.
	IntermediateBytes int64
	// PhysicalPairs / PhysicalBytes count what the shuffle actually stored
	// and moved after range coalescing: one record per EmitRange call
	// instead of one per covered key. Equal to the logical counts when no
	// map function emits ranges; the logical/physical ratio is the
	// replication factor the coalescing recovered.
	PhysicalPairs int64
	PhysicalBytes int64
	// DistinctKeys is the number of reduce tasks that received data.
	DistinctKeys int
	// OutputRecords counts records written by reduce tasks.
	OutputRecords int64
	// ReducerPairs maps reduce key -> number of values received.
	ReducerPairs map[int64]int64
	// ReducerTime maps reduce key -> time spent reducing that key.
	ReducerTime map[int64]time.Duration
	// MaxReducerTime is the longest single reduce task — the straggler
	// that determines cluster makespan when each reduce task runs on its
	// own node.
	MaxReducerTime time.Duration
	// MapWall, ReduceWall and TotalWall are local wall-clock phases.
	MapWall, ReduceWall, TotalWall time.Duration
	// FeedWall is the wall-clock time the map phase spent reading input
	// records off the store — the I/O component of MapWall. The feed runs
	// one reader per input file, so this tracks the slowest file, not the
	// sum.
	FeedWall time.Duration
	// TaskRetries counts task attempts that failed transiently and were
	// re-run.
	TaskRetries int64
	// SpilledPairs counts intermediate pairs written to sorted on-store
	// runs by the external shuffle; SpillRuns is the number of runs.
	SpilledPairs int64
	SpillRuns    int
	// CleanupFailures counts scratch spill files that could not be removed
	// after the job finished. The job's result is unaffected, but leaked
	// scratch space is worth surfacing instead of silently dropping.
	CleanupFailures int
	// CombineInputPairs / CombineOutputPairs measure the map-side
	// combiner's fold (equal when no combiner is set — both zero).
	CombineInputPairs  int64
	CombineOutputPairs int64
	// PipelineWall is the wall-clock of a whole pipelined chain (set on the
	// aggregate returned by RunPipeline; zero on per-cycle metrics). Unlike
	// TotalWall, overlapping cycles are not double counted.
	PipelineWall time.Duration
	// OverlapSaved is the wall-clock recovered by overlapping cycle k's
	// reduce with cycle k+1's map: the sum of per-cycle TotalWall minus
	// PipelineWall.
	OverlapSaved time.Duration
	// StreamedPairs / StreamedBytes count reduce output records that were
	// short-circuited directly into the next cycle's map feed instead of
	// being materialised to the store and re-parsed.
	StreamedPairs int64
	StreamedBytes int64
	// MakespanKeyOrder / MakespanLPT model the reduce phase's makespan on
	// this engine's worker pool under two dispatch orders, using the
	// measured per-task durations: ascending key order (naive FIFO) versus
	// the longest-processing-time-first order the engine actually uses.
	// LPT ≤ key-order; the gap is the straggler tail the ordering shaved.
	MakespanKeyOrder time.Duration
	MakespanLPT      time.Duration
	// Plan carries the skew-adaptive partition plan the driver chose for
	// the run (boundary source, auto-advised k, virtual-reducer layout),
	// exported into metrics.json as the report's "plan" object. Nil when
	// the driver ran the plain always-uniform layout. Merge keeps the
	// first non-nil plan — a chain's cycles share one plan.
	Plan *obs.PlanInfo
	// TrueWalls holds tracer-measured per-phase wall clocks: the interval
	// union of each phase's spans, so concurrent workers and pipelined
	// cycles count once. The additive fields above (MapWall, ReduceWall,
	// FeedWall, TotalWall) keep their historical "serialized model"
	// semantics — Merge sums them as if cycles ran back to back — while
	// TrueWalls answers "how long was a map task actually running
	// somewhere". Zero unless the engine ran with a Tracer; Merge does not
	// touch it (it is set once, over the whole run, by Run / RunChain /
	// RunPipeline).
	TrueWalls PhaseWallClock
}

// PhaseWallClock is the tracer's per-phase wall-clock union for one run.
type PhaseWallClock struct {
	Feed    time.Duration
	Map     time.Duration
	Combine time.Duration
	Spill   time.Duration
	Merge   time.Duration
	Reduce  time.Duration
	Output  time.Duration
}

// Zero reports whether no phase wall was recorded (untraced run).
func (p PhaseWallClock) Zero() bool { return p == PhaseWallClock{} }

func newMetrics(job string) *Metrics {
	return &Metrics{
		Job:          job,
		Cycles:       1,
		ReducerPairs: make(map[int64]int64),
		ReducerTime:  make(map[int64]time.Duration),
	}
}

// NewMetrics returns an empty metrics value for external aggregation.
func NewMetrics(job string) *Metrics { return newMetrics(job) }

// Merge accumulates other into m. Reducer maps are merged key-wise by
// summation; this treats the same key in different cycles as the same node.
// Wall-clock fields are summed too — the "serialized model", which prices a
// chain as if its cycles ran back to back. Under pipelined execution cycles
// overlap, so these sums intentionally over-count wall time; the true
// per-phase walls live in TrueWalls, which Merge leaves alone because a
// union over overlapping cycles cannot be recovered by adding per-cycle
// values.
func (m *Metrics) Merge(other *Metrics) {
	m.MapInputRecords += other.MapInputRecords
	m.FilteredRecords += other.FilteredRecords
	m.IntermediatePairs += other.IntermediatePairs
	m.IntermediateBytes += other.IntermediateBytes
	m.PhysicalPairs += other.PhysicalPairs
	m.PhysicalBytes += other.PhysicalBytes
	m.OutputRecords = other.OutputRecords // the chain's output is the last job's
	m.MapWall += other.MapWall
	m.FeedWall += other.FeedWall
	m.ReduceWall += other.ReduceWall
	m.TotalWall += other.TotalWall
	m.MaxReducerTime += other.MaxReducerTime // stragglers serialise across cycles
	m.Cycles += other.Cycles
	m.TaskRetries += other.TaskRetries
	m.SpilledPairs += other.SpilledPairs
	m.SpillRuns += other.SpillRuns
	m.CleanupFailures += other.CleanupFailures
	m.CombineInputPairs += other.CombineInputPairs
	m.CombineOutputPairs += other.CombineOutputPairs
	m.PipelineWall += other.PipelineWall
	m.OverlapSaved += other.OverlapSaved
	m.StreamedPairs += other.StreamedPairs
	m.StreamedBytes += other.StreamedBytes
	m.MakespanKeyOrder += other.MakespanKeyOrder // cycles serialise
	m.MakespanLPT += other.MakespanLPT
	if m.Plan == nil {
		m.Plan = other.Plan
	}
	for k, v := range other.ReducerPairs {
		m.ReducerPairs[k] += v
	}
	for k, v := range other.ReducerTime {
		m.ReducerTime[k] += v
	}
	if len(m.ReducerPairs) > m.DistinctKeys {
		m.DistinctKeys = len(m.ReducerPairs)
	}
}

// ReplicationFactor is IntermediatePairs / PhysicalPairs — the average
// number of reducers each physically shuffled record addressed. 1.0 means
// no range emission coalesced anything.
func (m *Metrics) ReplicationFactor() float64 {
	if m.PhysicalPairs == 0 {
		return 1
	}
	return float64(m.IntermediatePairs) / float64(m.PhysicalPairs)
}

// MaxReducerPairs returns the heaviest reducer's pair count.
func (m *Metrics) MaxReducerPairs() int64 {
	var max int64
	for _, v := range m.ReducerPairs {
		if v > max {
			max = v
		}
	}
	return max
}

// MeanReducerPairs returns the average pair count over reducers that
// received any data.
func (m *Metrics) MeanReducerPairs() float64 {
	if len(m.ReducerPairs) == 0 {
		return 0
	}
	var sum int64
	for _, v := range m.ReducerPairs {
		sum += v
	}
	return float64(sum) / float64(len(m.ReducerPairs))
}

// LoadImbalance is max/mean of per-reducer pair counts: 1.0 is perfectly
// balanced; large values indicate a straggler (the paper's Figure 4
// motivation for All-Matrix).
func (m *Metrics) LoadImbalance() float64 {
	mean := m.MeanReducerPairs()
	if mean == 0 {
		return 1
	}
	return float64(m.MaxReducerPairs()) / mean
}

// SimulatedMakespan models execution on a cluster with one node per reduce
// task: the map phase is embarrassingly parallel (ignored), every reduce
// task runs concurrently, so the job finishes when the slowest reduce task
// does. For chained jobs, cycle stragglers add up.
func (m *Metrics) SimulatedMakespan() time.Duration { return m.MaxReducerTime }

// listMakespan models greedy list scheduling: tasks are dispatched in the
// given order, each to the worker that frees up first, and the makespan is
// the time the last worker finishes. This is how the engine's reduce pool
// behaves, so feeding it measured task durations in two different orders
// quantifies what a dispatch ordering is worth.
func listMakespan(durations []time.Duration, workers int) time.Duration {
	if workers < 1 {
		workers = 1
	}
	free := make([]time.Duration, workers)
	for _, d := range durations {
		wi := 0
		for i := 1; i < workers; i++ {
			if free[i] < free[wi] {
				wi = i
			}
		}
		free[wi] += d
	}
	var span time.Duration
	for _, f := range free {
		if f > span {
			span = f
		}
	}
	return span
}

// ReducerLoadVector returns per-reducer pair counts sorted by key — the load
// distribution plotted in Figure 4.
func (m *Metrics) ReducerLoadVector() []int64 {
	keys := make([]int64, 0, len(m.ReducerPairs))
	for k := range m.ReducerPairs {
		keys = append(keys, k)
	}
	slices.Sort(keys)
	out := make([]int64, len(keys))
	for i, k := range keys {
		out[i] = m.ReducerPairs[k]
	}
	return out
}

// String renders a one-line summary.
func (m *Metrics) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s: cycles=%d in=%d pairs=%d keys=%d out=%d wall=%s makespan=%s imbalance=%.2f",
		m.Job, m.Cycles, m.MapInputRecords, m.IntermediatePairs, m.DistinctKeys,
		m.OutputRecords, m.TotalWall.Round(time.Millisecond),
		m.SimulatedMakespan().Round(time.Millisecond), m.LoadImbalance())
	if m.PhysicalPairs > 0 && m.PhysicalPairs != m.IntermediatePairs {
		fmt.Fprintf(&b, " phys=%d repl=%.1fx", m.PhysicalPairs, m.ReplicationFactor())
	}
	if m.PipelineWall > 0 {
		fmt.Fprintf(&b, " pipeline=%s overlap=%s streamed=%d",
			m.PipelineWall.Round(time.Millisecond),
			m.OverlapSaved.Round(time.Millisecond), m.StreamedPairs)
	}
	if !m.TrueWalls.Zero() {
		fmt.Fprintf(&b, " map-wall=%s reduce-wall=%s",
			m.TrueWalls.Map.Round(time.Millisecond),
			m.TrueWalls.Reduce.Round(time.Millisecond))
	}
	return b.String()
}
