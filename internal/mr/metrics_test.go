package mr

import (
	"slices"
	"testing"
	"time"
)

func TestReducerLoadVector(t *testing.T) {
	m := newMetrics("t")
	if got := m.ReducerLoadVector(); len(got) != 0 {
		t.Fatalf("empty metrics load vector = %v, want empty", got)
	}
	m.ReducerPairs = map[int64]int64{5: 7, 0: 3, 2: 11}
	if got, want := m.ReducerLoadVector(), []int64{3, 11, 7}; !slices.Equal(got, want) {
		t.Fatalf("load vector = %v, want %v (key order)", got, want)
	}
}

func TestDerivedStatsEdgeCases(t *testing.T) {
	m := newMetrics("t")
	// Zero reducers: means are zero, imbalance defined as balanced.
	if got := m.MeanReducerPairs(); got != 0 {
		t.Fatalf("mean over no reducers = %v, want 0", got)
	}
	if got := m.MaxReducerPairs(); got != 0 {
		t.Fatalf("max over no reducers = %v, want 0", got)
	}
	if got := m.LoadImbalance(); got != 1 {
		t.Fatalf("imbalance over no reducers = %v, want 1", got)
	}
	// Single reducer: trivially balanced.
	m.ReducerPairs = map[int64]int64{3: 42}
	if got := m.MeanReducerPairs(); got != 42 {
		t.Fatalf("single-reducer mean = %v, want 42", got)
	}
	if got := m.LoadImbalance(); got != 1 {
		t.Fatalf("single-reducer imbalance = %v, want 1", got)
	}
	// Skewed vector: one reducer holds most of the load.
	m.ReducerPairs = map[int64]int64{0: 10, 1: 10, 2: 100, 3: 40}
	if got := m.MaxReducerPairs(); got != 100 {
		t.Fatalf("max = %v, want 100", got)
	}
	if got, want := m.MeanReducerPairs(), 40.0; got != want {
		t.Fatalf("mean = %v, want %v", got, want)
	}
	if got, want := m.LoadImbalance(), 2.5; got != want {
		t.Fatalf("imbalance = %v, want %v", got, want)
	}
	// All-zero loads: mean 0 must not divide; defined as balanced.
	m.ReducerPairs = map[int64]int64{0: 0, 1: 0}
	if got := m.LoadImbalance(); got != 1 {
		t.Fatalf("all-zero imbalance = %v, want 1", got)
	}
}

func TestReplicationFactorEdgeCases(t *testing.T) {
	m := newMetrics("t")
	if got := m.ReplicationFactor(); got != 1 {
		t.Fatalf("zero physical pairs factor = %v, want 1", got)
	}
	m.IntermediatePairs, m.PhysicalPairs = 120, 30
	if got := m.ReplicationFactor(); got != 4 {
		t.Fatalf("factor = %v, want 4", got)
	}
}

// TestMergeZeroValueIdempotent checks that merging a zero-value metrics
// value changes nothing observable, so empty cycles (or aggregation
// seeds) never perturb chain aggregates.
func TestMergeZeroValueIdempotent(t *testing.T) {
	m := newMetrics("chain")
	m.IntermediatePairs = 100
	m.PhysicalPairs = 25
	m.MapWall = 3 * time.Second
	m.ReduceWall = 2 * time.Second
	m.ReducerPairs = map[int64]int64{1: 60, 2: 40}
	m.ReducerTime = map[int64]time.Duration{1: time.Second}
	m.DistinctKeys = 2
	m.TrueWalls = PhaseWallClock{Map: time.Second, Reduce: time.Second}

	zero := newMetrics("empty")
	zero.Cycles = 0
	before := *m
	beforePairs := map[int64]int64{1: 60, 2: 40}
	m.Merge(zero)
	if m.IntermediatePairs != before.IntermediatePairs || m.MapWall != before.MapWall ||
		m.ReduceWall != before.ReduceWall || m.Cycles != before.Cycles ||
		m.DistinctKeys != before.DistinctKeys {
		t.Fatalf("merge of zero metrics changed scalars: %+v -> %+v", before, m)
	}
	for k, v := range beforePairs {
		if m.ReducerPairs[k] != v {
			t.Fatalf("merge of zero metrics changed ReducerPairs[%d] = %d, want %d", k, m.ReducerPairs[k], v)
		}
	}
	// TrueWalls is the tracer's union over the whole run: Merge must not
	// sum it (additive per-cycle values cannot reconstruct a union).
	if m.TrueWalls != before.TrueWalls {
		t.Fatalf("merge changed TrueWalls: %+v -> %+v", m.TrueWalls, before.TrueWalls)
	}
	if !zero.TrueWalls.Zero() {
		t.Fatal("zero-value metrics reports non-zero TrueWalls")
	}
}

func TestMergeSerializedModel(t *testing.T) {
	a := newMetrics("c1")
	a.MapWall, a.ReduceWall, a.TotalWall = time.Second, 2*time.Second, 3*time.Second
	a.IntermediatePairs = 10
	a.ReducerPairs = map[int64]int64{1: 10}
	b := newMetrics("c2")
	b.MapWall, b.ReduceWall, b.TotalWall = 4*time.Second, 5*time.Second, 9*time.Second
	b.IntermediatePairs = 20
	b.ReducerPairs = map[int64]int64{1: 5, 2: 15}
	b.TrueWalls = PhaseWallClock{Map: time.Second}

	agg := newMetrics("chain")
	agg.Cycles = 0
	agg.Merge(a)
	agg.Merge(b)
	// The serialized model sums wall clocks as if cycles ran back to back.
	if agg.MapWall != 5*time.Second || agg.TotalWall != 12*time.Second {
		t.Fatalf("summed walls = %v / %v", agg.MapWall, agg.TotalWall)
	}
	if agg.Cycles != 2 || agg.IntermediatePairs != 30 {
		t.Fatalf("cycles=%d pairs=%d", agg.Cycles, agg.IntermediatePairs)
	}
	// Same key across cycles merges onto one node.
	if agg.ReducerPairs[1] != 15 || agg.ReducerPairs[2] != 15 || agg.DistinctKeys != 2 {
		t.Fatalf("reducer pairs = %v, keys = %d", agg.ReducerPairs, agg.DistinctKeys)
	}
	// Per-cycle TrueWalls never propagate through Merge.
	if !agg.TrueWalls.Zero() {
		t.Fatalf("merge propagated TrueWalls: %+v", agg.TrueWalls)
	}
}
