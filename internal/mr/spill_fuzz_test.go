package mr

import (
	"math"
	"testing"
)

// FuzzSpillRecordRoundTrip checks the spill codec is the identity on the
// writer's domain: any non-negative [lo, hi] emission encodes to a record
// that parses back to the same emission and re-encodes to the same bytes.
func FuzzSpillRecordRoundTrip(f *testing.F) {
	f.Add(int64(0), int64(0), "v")
	f.Add(int64(7), int64(7), "")
	f.Add(int64(3), int64(9), "shared")
	f.Add(int64(0), int64(math.MaxInt64), "widest")
	f.Add(int64(math.MaxInt64), int64(math.MaxInt64), "x")
	f.Add(int64(-5), int64(5), "negative lo is mapped into the domain")
	f.Add(int64(12), int64(85), "a|b,c")
	f.Fuzz(func(t *testing.T, lo, hi int64, value string) {
		// Clamp into the writer's domain: spillRun rejects negative keys,
		// and hi < lo never reaches the codec.
		lo &= math.MaxInt64
		hi &= math.MaxInt64
		if hi < lo {
			lo, hi = hi, lo
		}
		p := emission{lo: lo, hi: hi, value: value}
		rec := string(appendSpillRecord(nil, p))
		got, err := parseSpillRecord(rec)
		if err != nil {
			t.Fatalf("parse of encoded %+v (%q) failed: %v", p, rec, err)
		}
		if got != p {
			t.Fatalf("round trip changed emission: %+v vs %+v (record %q)", p, got, rec)
		}
		if again := string(appendSpillRecord(nil, got)); again != rec {
			t.Fatalf("re-encode of %+v not stable: %q vs %q", got, again, rec)
		}
	})
}

// FuzzSpillRecordParse feeds the parser arbitrary records: it must never
// panic, never produce an emission outside the writer's domain, and accept
// only canonical encodings (whatever parses re-encodes to the same bytes).
func FuzzSpillRecordParse(f *testing.F) {
	for _, seed := range []string{
		string(appendSpillRecord(nil, emission{lo: 7, hi: 7, value: "v"})),
		string(appendSpillRecord(nil, emission{lo: 3, hi: 9, value: "shared"})),
		"B42hello", // point record, key 4, value "2hello"
		"b3B9v",    // range record, [3, 9]
		"b9B3v",    // inverted range: must be rejected
		"b3B3v",    // degenerate range: writer uses a point record instead
		"C-1x",     // signed key digits: must be rejected
		"B07x",     // zero-padded key digits: must be rejected
		"A",        // zero-length digit run
		"",
		"zzz",
		"\x00\x00",
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, rec string) {
		p, err := parseSpillRecord(rec)
		if err != nil {
			return // rejecting malformed input is the correct outcome
		}
		if p.lo < 0 || p.hi < p.lo {
			t.Fatalf("parse of %q produced out-of-domain emission %+v", rec, p)
		}
		if enc := string(appendSpillRecord(nil, p)); enc != rec {
			t.Fatalf("accepted non-canonical record %q: re-encodes to %q", rec, enc)
		}
	})
}
