package mr

import (
	"fmt"
	"strconv"
	"testing"

	"intervaljoin/internal/dfs"
)

// benchEngine runs the histogram job over n records with the given spill
// threshold, measuring end-to-end engine throughput.
func benchEngine(b *testing.B, n, spill int) {
	b.Helper()
	store := dfs.NewMem()
	recs := make([]string, n)
	for i := range recs {
		recs[i] = strconv.Itoa(i)
	}
	if err := dfs.WriteAll(store, "in", recs); err != nil {
		b.Fatal(err)
	}
	e := NewEngine(Config{Store: store, SpillPairThreshold: spill})
	job := Job{
		Name:   "bench",
		Inputs: []Input{{File: "in"}},
		Map: func(tag int, record string, emit Emitter) error {
			v, _ := strconv.ParseInt(record, 10, 64)
			emit.Emit(v%64, record)
			return nil
		},
		Reduce: func(key int64, values []string, write func(string) error) error {
			return write(fmt.Sprintf("%d:%d", key, len(values)))
		},
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := e.Run(job); err != nil {
			b.Fatal(err)
		}
	}
	b.SetBytes(int64(n))
}

func BenchmarkEngineInMemory(b *testing.B)  { benchEngine(b, 100_000, 0) }
func BenchmarkEngineSpilling(b *testing.B)  { benchEngine(b, 100_000, 4096) }
func BenchmarkEngineSmallJobs(b *testing.B) { benchEngine(b, 1_000, 0) }

func BenchmarkEngineWithCombiner(b *testing.B) {
	store := dfs.NewMem()
	const n = 100_000
	recs := make([]string, n)
	for i := range recs {
		recs[i] = strconv.Itoa(i % 64)
	}
	if err := dfs.WriteAll(store, "in", recs); err != nil {
		b.Fatal(err)
	}
	e := NewEngine(Config{Store: store})
	job := Job{
		Name:   "bench-combine",
		Inputs: []Input{{File: "in"}},
		Map: func(tag int, record string, emit Emitter) error {
			v, _ := strconv.ParseInt(record, 10, 64)
			emit.Emit(v, "1")
			return nil
		},
		Combine: func(key int64, values []string) []string {
			sum := 0
			for _, v := range values {
				x, _ := strconv.Atoi(v)
				sum += x
			}
			return []string{strconv.Itoa(sum)}
		},
		Reduce: func(key int64, values []string, write func(string) error) error {
			sum := 0
			for _, v := range values {
				x, _ := strconv.Atoi(v)
				sum += x
			}
			return write(strconv.Itoa(sum))
		},
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := e.Run(job); err != nil {
			b.Fatal(err)
		}
	}
	b.SetBytes(n)
}

// benchEngineChain measures a 3-cycle chain end-to-end, either through the
// sequential RunChain (every boundary written to the store and re-read) or
// the pipelined executor (boundaries streamed between cycles).
func benchEngineChain(b *testing.B, pipelined bool) {
	b.Helper()
	const n = 50_000
	store := dfs.NewMem()
	recs := make([]string, n)
	for i := range recs {
		recs[i] = strconv.Itoa(i)
	}
	if err := dfs.WriteAll(store, "in", recs); err != nil {
		b.Fatal(err)
	}
	e := NewEngine(Config{Store: store})
	jobs := chainJobs()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var err error
		if pipelined {
			_, _, err = e.RunPipeline(ChainStages(jobs...)...)
		} else {
			_, _, err = e.RunChain(jobs...)
		}
		if err != nil {
			b.Fatal(err)
		}
	}
	b.SetBytes(n)
}

func BenchmarkEngineChainSequential(b *testing.B) { benchEngineChain(b, false) }
func BenchmarkEngineChainPipelined(b *testing.B)  { benchEngineChain(b, true) }
