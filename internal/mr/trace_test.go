package mr

import (
	"strconv"
	"testing"
	"time"

	"intervaljoin/internal/dfs"
	"intervaljoin/internal/obs"
)

// TestTracedRunMatchesUntraced is the observability equivalence check: a
// tracer must never change what the engine computes. Both the sequential
// chain and the pipelined executor must produce byte-identical output with
// and without a tracer attached.
func TestTracedRunMatchesUntraced(t *testing.T) {
	want, _, _ := runChainOn(t, Config{Workers: 4})
	got, _, agg := runChainOn(t, Config{Workers: 4, Tracer: obs.New(obs.Options{})})
	sameLines(t, got, want)
	if agg.TrueWalls.Zero() {
		t.Fatal("traced chain aggregate has no TrueWalls")
	}

	_, gotP, _, aggP := runPipelineOn(t, Config{Workers: 4, Tracer: obs.New(obs.Options{})},
		ChainStages(chainJobs()...))
	sameLines(t, gotP, want)
	if aggP.TrueWalls.Zero() {
		t.Fatal("traced pipeline aggregate has no TrueWalls")
	}
}

// TestTraceSpansAndMeta checks the span taxonomy of a traced run: per-task
// map and reduce spans, a cycle span carrying the job's meta annotations,
// and TrueWalls bounded by the run's wall clock.
func TestTraceSpansAndMeta(t *testing.T) {
	store := dfs.NewMem()
	dfs.WriteAll(store, "in", stageInput(2000))
	tr := obs.New(obs.Options{})
	e := NewEngine(Config{Store: store, Workers: 4, Tracer: tr})
	job := chainJobs()[0]
	job.Meta = JobMeta{Algorithm: "rccis", Cycle: 1, Family: "colocation"}
	m, err := e.Run(job)
	if err != nil {
		t.Fatal(err)
	}
	s := tr.Snapshot()
	counts := map[string]int{}
	var cycleSpan *obs.Span
	for i, sp := range s.Spans {
		counts[sp.Cat]++
		if sp.Cat == obs.CatCycle {
			cycleSpan = &s.Spans[i]
		}
	}
	for _, cat := range []string{obs.CatFeed, obs.CatMap, obs.CatMerge, obs.CatReduce, obs.CatOutput, obs.CatCycle} {
		if counts[cat] == 0 {
			t.Errorf("no %s spans recorded (got %v)", cat, counts)
		}
	}
	if cycleSpan == nil {
		t.Fatal("no cycle span")
	}
	args := map[string]string{}
	for _, a := range cycleSpan.Args {
		args[a.Key] = a.Val
	}
	if args["algorithm"] != "rccis" || args["cycle"] != "1" || args["family"] != "colocation" {
		t.Fatalf("cycle span args = %v", args)
	}
	if m.TrueWalls.Zero() {
		t.Fatal("no TrueWalls on traced run")
	}
	if m.TrueWalls.Map > m.TotalWall || m.TrueWalls.Reduce > m.TotalWall {
		t.Fatalf("TrueWalls %+v exceed TotalWall %v", m.TrueWalls, m.TotalWall)
	}
	if h := s.Hists["reduce_pairs"]; h.Count != int64(m.DistinctKeys) {
		t.Fatalf("reduce_pairs hist count = %d, want %d", h.Count, m.DistinctKeys)
	}
}

// TestPipelineTraceShowsOverlap is the acceptance check for the pipelined
// trace: with a streamed boundary, a reduce span of cycle k must overlap a
// map span of cycle k+1 in time — the lanes Perfetto renders side by side.
func TestPipelineTraceShowsOverlap(t *testing.T) {
	store := dfs.NewMem()
	dfs.WriteAll(store, "in", stageInput(2000))
	passThrough := func(key int64, values []string, write func(string) error) error {
		time.Sleep(time.Millisecond) // stretch the reduce phase so overlap is visible
		for _, v := range values {
			if err := write(v); err != nil {
				return err
			}
		}
		return nil
	}
	j1 := Job{
		Name:   "p/j1",
		Inputs: []Input{{File: "in"}},
		Map: func(_ int, rec string, emit Emitter) error {
			v, _ := strconv.ParseInt(rec, 10, 64)
			emit.Emit(v%64, rec)
			return nil
		},
		Reduce: passThrough,
		Output: "p/inter",
	}
	j2 := Job{
		Name:   "p/j2",
		Inputs: []Input{{File: "p/inter"}},
		Map: func(_ int, rec string, emit Emitter) error {
			v, _ := strconv.ParseInt(rec, 10, 64)
			emit.Emit(v%8, rec)
			return nil
		},
		Reduce: func(key int64, values []string, write func(string) error) error {
			return write(strconv.Itoa(len(values)))
		},
		Output: "p/out",
	}
	tr := obs.New(obs.Options{})
	e := NewEngine(Config{Store: store, Workers: 4, Tracer: tr})
	if _, _, err := e.RunPipeline(ChainStages(j1, j2)...); err != nil {
		t.Fatal(err)
	}
	s := tr.Snapshot()
	var upstream, downstream []obs.Span
	for _, sp := range s.Spans {
		switch {
		case sp.Cat == obs.CatReduce && sp.Name == "reduce:p/j1":
			upstream = append(upstream, sp)
		case sp.Cat == obs.CatMap && sp.Name == "map:p/j2":
			downstream = append(downstream, sp)
		}
	}
	if len(upstream) == 0 || len(downstream) == 0 {
		t.Fatalf("missing spans: %d upstream reduce, %d downstream map", len(upstream), len(downstream))
	}
	for _, r := range upstream {
		for _, mp := range downstream {
			if mp.Start < r.Start+r.Dur && r.Start < mp.Start+mp.Dur {
				return // found cycle-k reduce overlapping cycle-k+1 map
			}
		}
	}
	t.Fatal("no reduce span of cycle 1 overlaps a map span of cycle 2 in the pipelined trace")
}

// TestBuildReport checks the metrics.json glue: serialized model and skew
// from Metrics, phase stats from the tracer.
func TestBuildReport(t *testing.T) {
	store := dfs.NewMem()
	dfs.WriteAll(store, "in", stageInput(1000))
	tr := obs.New(obs.Options{})
	e := NewEngine(Config{Store: store, Workers: 4, Tracer: tr})
	m, err := e.Run(chainJobs()[0])
	if err != nil {
		t.Fatal(err)
	}
	r := BuildReport("test", tr, m)
	if r.Model == nil || r.Model.Pairs != m.IntermediatePairs || r.Model.Cycles != 1 {
		t.Fatalf("model = %+v", r.Model)
	}
	if r.Skew == nil || r.Skew.Reducers != m.DistinctKeys {
		t.Fatalf("skew = %+v", r.Skew)
	}
	if r.Phases[obs.CatReduce].Spans == 0 || r.Phases[obs.CatReduce].WallNS <= 0 {
		t.Fatalf("phases = %+v", r.Phases)
	}
	// Untraced: report still carries the serialized model.
	r = BuildReport("untraced", nil, m)
	if r.Model == nil || len(r.Phases) != 0 {
		t.Fatalf("untraced report = %+v", r)
	}
}
