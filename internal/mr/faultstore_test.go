package mr

import (
	"errors"
	"fmt"
	"strconv"
	"sync"
	"testing"

	"intervaljoin/internal/dfs"
)

// faultStore wraps a Store and fails selected operations, for exercising
// the engine's storage error paths.
type faultStore struct {
	dfs.Store
	mu          sync.Mutex
	failCreate  string // file name whose Create fails
	failOpen    string // file name whose Open fails
	failWriteAt int    // fail the Nth Write on any writer (0 = off)
	writes      int
}

var errInjected = errors.New("injected storage failure")

func (f *faultStore) Create(name string) (dfs.Writer, error) {
	if f.failCreate != "" && name == f.failCreate {
		return nil, fmt.Errorf("create %s: %w", name, errInjected)
	}
	w, err := f.Store.Create(name)
	if err != nil {
		return nil, err
	}
	return &faultWriter{Writer: w, store: f}, nil
}

func (f *faultStore) Open(name string) (dfs.Iterator, error) {
	if f.failOpen != "" && name == f.failOpen {
		return nil, fmt.Errorf("open %s: %w", name, errInjected)
	}
	return f.Store.Open(name)
}

type faultWriter struct {
	dfs.Writer
	store *faultStore
}

func (w *faultWriter) Write(record string) error {
	w.store.mu.Lock()
	w.store.writes++
	n := w.store.writes
	limit := w.store.failWriteAt
	w.store.mu.Unlock()
	if limit > 0 && n >= limit {
		return fmt.Errorf("write %d: %w", n, errInjected)
	}
	return w.Writer.Write(record)
}

func identityJob(output string) Job {
	return Job{
		Name:   "identity",
		Inputs: []Input{{File: "in"}},
		Map: func(tag int, record string, emit Emitter) error {
			v, _ := strconv.ParseInt(record, 10, 64)
			emit.Emit(v%4, record)
			return nil
		},
		Reduce: func(key int64, values []string, write func(string) error) error {
			for _, v := range values {
				if err := write(v); err != nil {
					return err
				}
			}
			return nil
		},
		Output: output,
	}
}

func seedInput(t *testing.T, s dfs.Store, n int) {
	t.Helper()
	recs := make([]string, n)
	for i := range recs {
		recs[i] = strconv.Itoa(i)
	}
	if err := dfs.WriteAll(s, "in", recs); err != nil {
		t.Fatal(err)
	}
}

func TestEngineSurfacesOutputCreateFailure(t *testing.T) {
	fs := &faultStore{Store: dfs.NewMem(), failCreate: "out"}
	seedInput(t, fs, 10)
	e := NewEngine(Config{Store: fs, Workers: 2})
	if _, err := e.Run(identityJob("out")); err == nil || !errors.Is(err, errInjected) {
		t.Fatalf("err = %v, want injected create failure", err)
	}
}

func TestEngineSurfacesInputOpenFailure(t *testing.T) {
	fs := &faultStore{Store: dfs.NewMem(), failOpen: "in"}
	seedInput(t, fs, 10)
	e := NewEngine(Config{Store: fs, Workers: 2})
	if _, err := e.Run(identityJob("out")); err == nil || !errors.Is(err, errInjected) {
		t.Fatalf("err = %v, want injected open failure", err)
	}
}

func TestEngineSurfacesOutputWriteFailure(t *testing.T) {
	fs := &faultStore{Store: dfs.NewMem()}
	seedInput(t, fs, 20)
	fs.failWriteAt = fs.writes + 5 // arm after the input is staged
	e := NewEngine(Config{Store: fs, Workers: 2})
	if _, err := e.Run(identityJob("out")); err == nil || !errors.Is(err, errInjected) {
		t.Fatalf("err = %v, want injected write failure", err)
	}
}

func TestEngineSurfacesSpillFailure(t *testing.T) {
	// Spill run files live under "<job>/.spill/"; fail their creation.
	fs := &faultStore{Store: dfs.NewMem(), failCreate: "identity/.spill/w0-r0"}
	seedInput(t, fs, 2000)
	e := NewEngine(Config{Store: fs, Workers: 1, SpillPairThreshold: 16})
	if _, err := e.Run(identityJob("out")); err == nil || !errors.Is(err, errInjected) {
		t.Fatalf("err = %v, want injected spill failure", err)
	}
}
