package mr

import (
	"errors"
	"fmt"
	"sort"
	"strconv"
	"strings"
	"sync"
	"testing"

	"intervaljoin/internal/dfs"
)

// histogramJob groups n records over k keys and reports each key's count;
// used by several feature tests.
func histogramJob(n, k int) (Job, []string) {
	recs := make([]string, n)
	for i := range recs {
		recs[i] = strconv.Itoa(i)
	}
	return Job{
		Name:   "hist",
		Inputs: []Input{{File: "in"}},
		Map: func(tag int, record string, emit Emitter) error {
			v, _ := strconv.ParseInt(record, 10, 64)
			emit.Emit(v%int64(k), record)
			return nil
		},
		Reduce: func(key int64, values []string, write func(string) error) error {
			return write(fmt.Sprintf("%d:%d", key, len(values)))
		},
		Output: "out",
	}, recs
}

func TestSpillMatchesInMemory(t *testing.T) {
	const n, k = 5000, 13
	var want []string
	for _, spill := range []int{0, 100, 1, 4096, 100000} {
		t.Run(fmt.Sprintf("spill=%d", spill), func(t *testing.T) {
			store := dfs.NewMem()
			e := NewEngine(Config{Store: store, Workers: 4, SpillPairThreshold: spill})
			job, recs := histogramJob(n, k)
			if err := dfs.WriteAll(store, "in", recs); err != nil {
				t.Fatal(err)
			}
			m, err := e.Run(job)
			if err != nil {
				t.Fatal(err)
			}
			out, err := dfs.ReadAll(store, "out")
			if err != nil {
				t.Fatal(err)
			}
			if spill == 0 {
				want = out
				if m.SpillRuns != 0 || m.SpilledPairs != 0 {
					t.Fatalf("in-memory run reported spills: %+v", m)
				}
			} else {
				if len(out) != len(want) {
					t.Fatalf("spilled output %d rows, in-memory %d", len(out), len(want))
				}
				for i := range want {
					if out[i] != want[i] {
						t.Fatalf("row %d: %q vs %q", i, out[i], want[i])
					}
				}
			}
			if m.IntermediatePairs != n || m.DistinctKeys != k || m.OutputRecords != int64(k) {
				t.Fatalf("metrics = %+v", m)
			}
			if spill > 0 && spill <= n/2 && m.SpillRuns == 0 {
				t.Fatalf("threshold %d over %d pairs spilled nothing", spill, n)
			}
			// Spill scratch files are cleaned up.
			files, err := store.List(job.Name + "/.spill/")
			if err != nil {
				t.Fatal(err)
			}
			if len(files) != 0 {
				t.Fatalf("spill scratch left behind: %v", files)
			}
			// Reducer load accounting works in both modes.
			var total int64
			for _, v := range m.ReducerPairs {
				total += v
			}
			if total != n {
				t.Fatalf("reducer pairs account for %d of %d", total, n)
			}
		})
	}
}

func TestSpillOnDiskStore(t *testing.T) {
	disk, err := dfs.NewDisk(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	e := NewEngine(Config{Store: disk, Workers: 3, SpillPairThreshold: 64})
	job, recs := histogramJob(2000, 7)
	if err := dfs.WriteAll(disk, "in", recs); err != nil {
		t.Fatal(err)
	}
	m, err := e.Run(job)
	if err != nil {
		t.Fatal(err)
	}
	if m.SpillRuns == 0 {
		t.Fatal("no spill runs on disk store")
	}
	out, err := dfs.ReadAll(disk, "out")
	if err != nil || len(out) != 7 {
		t.Fatalf("output = %v, err %v", out, err)
	}
}

func TestSpillRejectsNegativeKeys(t *testing.T) {
	store := dfs.NewMem()
	e := NewEngine(Config{Store: store, Workers: 1, SpillPairThreshold: 1})
	dfs.WriteAll(store, "in", []string{"x"})
	job := Job{
		Name:   "neg",
		Inputs: []Input{{File: "in"}},
		Map: func(tag int, record string, emit Emitter) error {
			emit.Emit(-5, record)
			return nil
		},
		Reduce: func(key int64, values []string, write func(string) error) error { return nil },
	}
	if _, err := e.Run(job); err == nil {
		t.Fatal("negative key spilled without error")
	}
}

func TestCombinerFoldsMapOutput(t *testing.T) {
	store := dfs.NewMem()
	e := NewEngine(Config{Store: store, Workers: 2})
	recs := make([]string, 4000)
	for i := range recs {
		recs[i] = strconv.Itoa(i % 5) // heavy duplication per key
	}
	dfs.WriteAll(store, "in", recs)
	job := Job{
		Name:   "combine",
		Inputs: []Input{{File: "in"}},
		Map: func(tag int, record string, emit Emitter) error {
			v, _ := strconv.ParseInt(record, 10, 64)
			emit.Emit(v, "1")
			return nil
		},
		// Combiner and reducer both sum partial counts.
		Combine: func(key int64, values []string) []string {
			sum := 0
			for _, v := range values {
				n, _ := strconv.Atoi(v)
				sum += n
			}
			return []string{strconv.Itoa(sum)}
		},
		Reduce: func(key int64, values []string, write func(string) error) error {
			sum := 0
			for _, v := range values {
				n, _ := strconv.Atoi(v)
				sum += n
			}
			return write(fmt.Sprintf("%d=%d", key, sum))
		},
		Output: "out",
	}
	m, err := e.Run(job)
	if err != nil {
		t.Fatal(err)
	}
	out, _ := dfs.ReadAll(store, "out")
	sort.Strings(out)
	want := []string{"0=800", "1=800", "2=800", "3=800", "4=800"}
	for i := range want {
		if out[i] != want[i] {
			t.Fatalf("output = %v, want %v", out, want)
		}
	}
	if m.CombineInputPairs != 4000 {
		t.Fatalf("combine input pairs = %d, want 4000", m.CombineInputPairs)
	}
	if m.CombineOutputPairs >= m.CombineInputPairs {
		t.Fatalf("combiner did not fold: %d -> %d", m.CombineInputPairs, m.CombineOutputPairs)
	}
	// Shuffled pairs are the combined count, not the raw count.
	if m.IntermediatePairs != m.CombineOutputPairs {
		t.Fatalf("shuffled %d pairs, combiner emitted %d", m.IntermediatePairs, m.CombineOutputPairs)
	}
}

func TestCombinerWithSpill(t *testing.T) {
	store := dfs.NewMem()
	e := NewEngine(Config{Store: store, Workers: 2, SpillPairThreshold: 16})
	recs := make([]string, 1000)
	for i := range recs {
		recs[i] = strconv.Itoa(i % 3)
	}
	dfs.WriteAll(store, "in", recs)
	job := Job{
		Name:   "combspill",
		Inputs: []Input{{File: "in"}},
		Map: func(tag int, record string, emit Emitter) error {
			v, _ := strconv.ParseInt(record, 10, 64)
			emit.Emit(v, "1")
			return nil
		},
		Combine: func(key int64, values []string) []string {
			sum := 0
			for _, v := range values {
				n, _ := strconv.Atoi(v)
				sum += n
			}
			return []string{strconv.Itoa(sum)}
		},
		Reduce: func(key int64, values []string, write func(string) error) error {
			sum := 0
			for _, v := range values {
				n, _ := strconv.Atoi(v)
				sum += n
			}
			return write(fmt.Sprintf("%d=%d", key, sum))
		},
		Output: "out",
	}
	if _, err := e.Run(job); err != nil {
		t.Fatal(err)
	}
	out, _ := dfs.ReadAll(store, "out")
	sort.Strings(out)
	if len(out) != 3 || out[0] != "0=334" || out[1] != "1=333" || out[2] != "2=333" {
		t.Fatalf("output = %v", out)
	}
}

// flakyInjector fails each task's first attempt with a transient error.
type flakyInjector struct {
	mu     sync.Mutex
	phase  Phase
	seen   map[string]bool
	failed int
}

func (f *flakyInjector) inject(phase Phase, task, attempt int) error {
	if f.phase != "" && phase != f.phase {
		return nil
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	key := fmt.Sprintf("%s/%d", phase, task)
	if f.seen[key] {
		return nil
	}
	f.seen[key] = true
	f.failed++
	return fmt.Errorf("injected: %w", ErrTransient)
}

func TestTransientFailuresAreRetried(t *testing.T) {
	for _, phase := range []Phase{PhaseMap, PhaseReduce, ""} {
		name := string(phase)
		if name == "" {
			name = "both"
		}
		t.Run(name, func(t *testing.T) {
			inj := &flakyInjector{phase: phase, seen: make(map[string]bool)}
			store := dfs.NewMem()
			e := NewEngine(Config{
				Store: store, Workers: 4,
				MaxTaskAttempts: 3,
				FailureInjector: inj.inject,
			})
			job, recs := histogramJob(3000, 9)
			dfs.WriteAll(store, "in", recs)
			m, err := e.Run(job)
			if err != nil {
				t.Fatal(err)
			}
			if inj.failed == 0 {
				t.Fatal("injector never fired")
			}
			if m.TaskRetries != int64(inj.failed) {
				t.Fatalf("retries = %d, injected failures = %d", m.TaskRetries, inj.failed)
			}
			// Output is exactly as if nothing failed: retried attempts'
			// partial emissions were discarded.
			out, _ := dfs.ReadAll(store, "out")
			if len(out) != 9 {
				t.Fatalf("output rows = %d, want 9", len(out))
			}
			for _, row := range out {
				parts := strings.Split(row, ":")
				if parts[1] != strconv.Itoa(3000/9) && parts[1] != strconv.Itoa(3000/9+1) {
					t.Fatalf("row %q has a wrong count (duplicate or lost records)", row)
				}
			}
			var total int
			for _, row := range out {
				n, _ := strconv.Atoi(strings.Split(row, ":")[1])
				total += n
			}
			if total != 3000 {
				t.Fatalf("total count %d, want 3000 — retry duplicated or lost data", total)
			}
		})
	}
}

func TestPersistentFailureFailsJob(t *testing.T) {
	store := dfs.NewMem()
	e := NewEngine(Config{
		Store: store, Workers: 2,
		MaxTaskAttempts: 3,
		FailureInjector: func(phase Phase, task, attempt int) error {
			if phase == PhaseMap && task == 0 {
				return fmt.Errorf("always down: %w", ErrTransient)
			}
			return nil
		},
	})
	job, recs := histogramJob(100, 3)
	dfs.WriteAll(store, "in", recs)
	if _, err := e.Run(job); err == nil || !errors.Is(err, ErrTransient) {
		t.Fatalf("err = %v, want exhausted transient failure", err)
	}
}

func TestNonTransientErrorNotRetried(t *testing.T) {
	store := dfs.NewMem()
	attempts := 0
	var mu sync.Mutex
	e := NewEngine(Config{
		Store: store, Workers: 1,
		MaxTaskAttempts: 5,
		FailureInjector: func(phase Phase, task, attempt int) error {
			if phase != PhaseMap {
				return nil
			}
			mu.Lock()
			attempts++
			mu.Unlock()
			return errors.New("hard failure")
		},
	})
	job, recs := histogramJob(10, 2)
	dfs.WriteAll(store, "in", recs)
	if _, err := e.Run(job); err == nil {
		t.Fatal("hard failure swallowed")
	}
	if attempts != 1 {
		t.Fatalf("hard failure attempted %d times, want 1", attempts)
	}
}

func TestRetryWithSpillStillCorrect(t *testing.T) {
	inj := &flakyInjector{seen: make(map[string]bool)}
	store := dfs.NewMem()
	e := NewEngine(Config{
		Store: store, Workers: 4,
		SpillPairThreshold: 32,
		MaxTaskAttempts:    2,
		FailureInjector:    inj.inject,
	})
	job, recs := histogramJob(2000, 5)
	dfs.WriteAll(store, "in", recs)
	m, err := e.Run(job)
	if err != nil {
		t.Fatal(err)
	}
	if m.SpillRuns == 0 || m.TaskRetries == 0 {
		t.Fatalf("expected both spills and retries: %+v", m)
	}
	out, _ := dfs.ReadAll(store, "out")
	var total int
	for _, row := range out {
		n, _ := strconv.Atoi(strings.Split(row, ":")[1])
		total += n
	}
	if total != 2000 {
		t.Fatalf("total = %d, want 2000", total)
	}
}

func TestMergeRunsUnit(t *testing.T) {
	store := dfs.NewMem()
	if err := spillRun(store, "r1", []emission{{3, 3, "c"}, {1, 1, "a"}, {5, 5, "e"}}); err != nil {
		t.Fatal(err)
	}
	if err := spillRun(store, "r2", []emission{{1, 1, "A"}, {4, 4, "d"}}); err != nil {
		t.Fatal(err)
	}
	c1, err := openRun(store, "r1")
	if err != nil {
		t.Fatal(err)
	}
	c2, err := openRun(store, "r2")
	if err != nil {
		t.Fatal(err)
	}
	mem := &memCursor{ems: []emission{{2, 2, "b"}, {5, 5, "E"}}}
	var got []string
	err = mergeRuns([]cursor{c1, c2, mem}, func(key int64, values []string) error {
		sort.Strings(values)
		got = append(got, fmt.Sprintf("%d=%s", key, strings.Join(values, "")))
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"1=Aa", "2=b", "3=c", "4=d", "5=Ee"}
	if len(got) != len(want) {
		t.Fatalf("merge = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("merge = %v, want %v", got, want)
		}
	}
}

func TestMergeRunsEmpty(t *testing.T) {
	if err := mergeRuns(nil, func(int64, []string) error {
		t.Fatal("fn called for empty merge")
		return nil
	}); err != nil {
		t.Fatal(err)
	}
}
