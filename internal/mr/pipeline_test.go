package mr

import (
	"errors"
	"fmt"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"intervaljoin/internal/dfs"
)

// chainJobs builds a 3-cycle chain over integer records: each cycle
// transforms and re-keys every record, so the boundary traffic is
// substantial and any record lost or duplicated at a boundary shows up in
// the final histogram.
func chainJobs() []Job {
	passThrough := func(key int64, values []string, write func(string) error) error {
		for _, v := range values {
			if err := write(v); err != nil {
				return err
			}
		}
		return nil
	}
	parse := func(rec string) (int64, error) { return strconv.ParseInt(rec, 10, 64) }
	j1 := Job{
		Name:   "t/j1",
		Inputs: []Input{{File: "in"}},
		Map: func(_ int, rec string, emit Emitter) error {
			v, err := parse(rec)
			if err != nil {
				return err
			}
			emit.Emit(v%17, strconv.FormatInt(v*3+1, 10))
			return nil
		},
		Reduce:     passThrough,
		Output:     "t/inter-1",
		SortValues: true,
	}
	j2 := Job{
		Name:   "t/j2",
		Inputs: []Input{{File: "t/inter-1"}},
		Map: func(_ int, rec string, emit Emitter) error {
			v, err := parse(rec)
			if err != nil {
				return err
			}
			emit.Emit(v%13, strconv.FormatInt(v/2, 10))
			return nil
		},
		Reduce:     passThrough,
		Output:     "t/inter-2",
		SortValues: true,
	}
	j3 := Job{
		Name:   "t/j3",
		Inputs: []Input{{File: "t/inter-2"}},
		Map: func(_ int, rec string, emit Emitter) error {
			v, err := parse(rec)
			if err != nil {
				return err
			}
			emit.Emit(v%7, rec)
			return nil
		},
		Reduce: func(key int64, values []string, write func(string) error) error {
			return write(fmt.Sprintf("%d:%d", key, len(values)))
		},
		Output:     "t/out",
		SortValues: true,
	}
	return []Job{j1, j2, j3}
}

func stageInput(n int) []string {
	recs := make([]string, n)
	for i := range recs {
		recs[i] = strconv.Itoa(i)
	}
	return recs
}

func runChainOn(t *testing.T, cfg Config) ([]string, []*Metrics, *Metrics) {
	t.Helper()
	store := dfs.NewMem()
	cfg.Store = store
	dfs.WriteAll(store, "in", stageInput(5000))
	per, agg, err := NewEngine(cfg).RunChain(chainJobs()...)
	if err != nil {
		t.Fatal(err)
	}
	out, err := dfs.ReadAll(store, "t/out")
	if err != nil {
		t.Fatal(err)
	}
	return out, per, agg
}

func runPipelineOn(t *testing.T, cfg Config, stages []Stage) (dfs.Store, []string, []*Metrics, *Metrics) {
	t.Helper()
	store := dfs.NewMem()
	cfg.Store = store
	dfs.WriteAll(store, "in", stageInput(5000))
	per, agg, err := NewEngine(cfg).RunPipeline(stages...)
	if err != nil {
		t.Fatal(err)
	}
	out, err := dfs.ReadAll(store, "t/out")
	if err != nil {
		t.Fatal(err)
	}
	return store, out, per, agg
}

func sameLines(t *testing.T, got, want []string) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("output length %d, want %d", len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("output line %d = %q, want %q", i, got[i], want[i])
		}
	}
}

// TestPipelineMatchesChain is the engine-level equivalence check: the
// pipelined executor must produce byte-identical final output while never
// touching the store for the streamed boundaries.
func TestPipelineMatchesChain(t *testing.T) {
	want, _, _ := runChainOn(t, Config{Workers: 4})
	store, got, per, agg := runPipelineOn(t, Config{Workers: 4}, ChainStages(chainJobs()...))
	sameLines(t, got, want)

	for _, f := range []string{"t/inter-1", "t/inter-2"} {
		if store.Exists(f) {
			t.Errorf("boundary %s was materialised despite streaming", f)
		}
	}
	if agg.Cycles != 3 {
		t.Errorf("aggregate cycles = %d, want 3", agg.Cycles)
	}
	if agg.StreamedPairs == 0 {
		t.Error("no pairs streamed across boundaries")
	}
	if agg.PipelineWall == 0 {
		t.Error("PipelineWall not recorded")
	}
	if len(per) != 3 {
		t.Fatalf("per-cycle metrics length %d, want 3", len(per))
	}
	// Streamed counters live on the producing stages; the last stage
	// streams nothing.
	if per[0].StreamedPairs == 0 || per[1].StreamedPairs == 0 {
		t.Errorf("producer stages streamed %d / %d pairs, want > 0",
			per[0].StreamedPairs, per[1].StreamedPairs)
	}
	if per[2].StreamedPairs != 0 {
		t.Errorf("final stage streamed %d pairs, want 0", per[2].StreamedPairs)
	}
}

// TestPipelineMaterializeBoundaries checks the Hadoop-parity flag: every
// boundary is still written, and its contents equal the sequential run's.
func TestPipelineMaterializeBoundaries(t *testing.T) {
	chainStore := dfs.NewMem()
	dfs.WriteAll(chainStore, "in", stageInput(5000))
	if _, _, err := NewEngine(Config{Store: chainStore, Workers: 4}).RunChain(chainJobs()...); err != nil {
		t.Fatal(err)
	}
	store, _, _, agg := runPipelineOn(t,
		Config{Workers: 4, MaterializeBoundaries: true}, ChainStages(chainJobs()...))
	if agg.StreamedPairs == 0 {
		t.Error("materialized boundaries should still stream")
	}
	for _, f := range []string{"t/inter-1", "t/inter-2", "t/out"} {
		want, err := dfs.ReadAll(chainStore, f)
		if err != nil {
			t.Fatal(err)
		}
		got, err := dfs.ReadAll(store, f)
		if err != nil {
			t.Fatalf("boundary %s: %v", f, err)
		}
		sameLines(t, got, want)
	}
}

// TestPipelineStageMaterialize checks the per-stage override.
func TestPipelineStageMaterialize(t *testing.T) {
	stages := ChainStages(chainJobs()...)
	stages[0].Materialize = true
	store, _, _, _ := runPipelineOn(t, Config{Workers: 4}, stages)
	if !store.Exists("t/inter-1") {
		t.Error("Stage.Materialize did not write the boundary file")
	}
	if store.Exists("t/inter-2") {
		t.Error("unmarked boundary was materialised")
	}
}

// TestPipelineSpill runs the pipelined chain with the external sort-merge
// shuffle engaged in every stage.
func TestPipelineSpill(t *testing.T) {
	want, _, _ := runChainOn(t, Config{Workers: 4})
	_, got, _, agg := runPipelineOn(t,
		Config{Workers: 4, SpillPairThreshold: 200}, ChainStages(chainJobs()...))
	sameLines(t, got, want)
	if agg.SpillRuns == 0 {
		t.Error("spill threshold never triggered")
	}
	if agg.StreamedPairs == 0 {
		t.Error("no pairs streamed")
	}
}

// TestPipelineTap checks that a Tap observes every output record of its
// stage — streamed, materialised, or discarded.
func TestPipelineTap(t *testing.T) {
	var mu sync.Mutex
	counts := make([]int64, 3)
	stages := ChainStages(chainJobs()...)
	for i := range stages {
		i := i
		stages[i].Tap = func(string) {
			mu.Lock()
			counts[i]++
			mu.Unlock()
		}
	}
	_, _, per, _ := runPipelineOn(t, Config{Workers: 4}, stages)
	for i, m := range per {
		if counts[i] != m.OutputRecords {
			t.Errorf("stage %d tap saw %d records, OutputRecords = %d", i, counts[i], m.OutputRecords)
		}
	}
}

// firstAttemptInjector fails the first attempt of every task in every phase
// of every job — so both sides of every streamed boundary retry.
type firstAttemptInjector struct {
	mu     sync.Mutex
	failed int64
}

func (f *firstAttemptInjector) inject(_ Phase, _, attempt int) error {
	if attempt > 1 {
		return nil
	}
	f.mu.Lock()
	f.failed++
	f.mu.Unlock()
	return fmt.Errorf("injected: %w", ErrTransient)
}

// TestPipelineFaultInjection kills the first attempt of every map and
// reduce task mid-pipeline and checks the chain still converges to the
// sequential no-fault output: upstream reduce tasks re-run before handing
// output downstream, downstream map tasks re-run from the buffered batch.
func TestPipelineFaultInjection(t *testing.T) {
	want, _, _ := runChainOn(t, Config{Workers: 4})
	inj := &firstAttemptInjector{}
	_, got, _, agg := runPipelineOn(t,
		Config{Workers: 4, MaxTaskAttempts: 3, FailureInjector: inj.inject},
		ChainStages(chainJobs()...))
	sameLines(t, got, want)
	if inj.failed == 0 {
		t.Fatal("injector never fired")
	}
	if agg.TaskRetries != inj.failed {
		t.Errorf("retries = %d, injected failures = %d", agg.TaskRetries, inj.failed)
	}
}

// TestPipelinePersistentFailure checks a non-recoverable mid-pipeline
// failure surfaces as an error (from the failing stage) without
// deadlocking the stages around it.
func TestPipelinePersistentFailure(t *testing.T) {
	for _, phase := range []Phase{PhaseMap, PhaseReduce} {
		t.Run(string(phase), func(t *testing.T) {
			store := dfs.NewMem()
			dfs.WriteAll(store, "in", stageInput(5000))
			jobs := chainJobs()
			// Poison stage 2 only: stage 1 must still complete and stage 3
			// must not hang on its never-filled feed.
			switch phase {
			case PhaseMap:
				jobs[1].Map = func(_ int, _ string, _ Emitter) error {
					return errors.New("boom")
				}
			case PhaseReduce:
				jobs[1].Reduce = func(_ int64, _ []string, _ func(string) error) error {
					return errors.New("boom")
				}
			}
			e := NewEngine(Config{Store: store, Workers: 4})
			done := make(chan error, 1)
			go func() {
				_, _, err := e.RunPipeline(ChainStages(jobs...)...)
				done <- err
			}()
			select {
			case err := <-done:
				if err == nil || !strings.Contains(err.Error(), "boom") {
					t.Fatalf("err = %v, want the injected failure", err)
				}
			case <-time.After(30 * time.Second):
				t.Fatal("pipeline deadlocked on persistent failure")
			}
		})
	}
}

// TestPipelineBarrierBoundary checks that a non-streamable boundary (the
// downstream job does not read the upstream output) degrades to RunChain
// semantics: sequential execution with the file written.
func TestPipelineBarrierBoundary(t *testing.T) {
	jobs := chainJobs()
	// Break the 1→2 edge: job 2 reads a copy staged up front, not job 1's
	// output, so nothing can stream across.
	store := dfs.NewMem()
	dfs.WriteAll(store, "in", stageInput(2000))
	jobs[1].Inputs = []Input{{File: "side"}}
	dfs.WriteAll(store, "side", stageInput(100))
	per, agg, err := NewEngine(Config{Store: store, Workers: 4}).RunPipeline(ChainStages(jobs...)...)
	if err != nil {
		t.Fatal(err)
	}
	if !store.Exists("t/inter-1") {
		t.Error("non-streamed boundary must be materialised")
	}
	if per[0].StreamedPairs != 0 {
		t.Errorf("stage 1 streamed %d pairs across a barrier", per[0].StreamedPairs)
	}
	if per[1].StreamedPairs == 0 || agg.StreamedPairs == 0 {
		t.Error("the 2→3 boundary should still stream")
	}
}

// TestListMakespan pins the list-scheduling model used for the reduce
// dispatch-order metrics.
func TestListMakespan(t *testing.T) {
	d := func(n int) time.Duration { return time.Duration(n) }
	// LPT order: {8} | {5,3} → 8. FIFO order 3,5,8 on 2 workers: w0=3+8, w1=5 → 11.
	if got := listMakespan([]time.Duration{d(3), d(5), d(8)}, 2); got != d(11) {
		t.Errorf("key-order makespan = %d, want 11", got)
	}
	if got := listMakespan([]time.Duration{d(8), d(5), d(3)}, 2); got != d(8) {
		t.Errorf("LPT makespan = %d, want 8", got)
	}
	if got := listMakespan(nil, 4); got != 0 {
		t.Errorf("empty makespan = %d, want 0", got)
	}
}

// TestDispatchOrderMetrics checks a run records both modelled makespans and
// that the LPT model never exceeds the key-order model by construction of
// the sort (identical durations ⇒ equal).
func TestDispatchOrderMetrics(t *testing.T) {
	store := dfs.NewMem()
	dfs.WriteAll(store, "in", stageInput(3000))
	job, _ := histogramJob(3000, 9)
	dfs.WriteAll(store, "in", stageInput(3000))
	m, err := NewEngine(Config{Store: store, Workers: 4}).Run(job)
	if err != nil {
		t.Fatal(err)
	}
	if m.MakespanKeyOrder == 0 || m.MakespanLPT == 0 {
		t.Errorf("dispatch-order makespans not recorded: key=%v lpt=%v",
			m.MakespanKeyOrder, m.MakespanLPT)
	}
}
