package relation

import (
	"strings"
	"testing"
)

// FuzzDecodeTuple checks the tuple codec never panics and that every
// successfully decoded tuple re-encodes to a decodable form.
func FuzzDecodeTuple(f *testing.F) {
	for _, seed := range []string{
		"0|1,5",
		"42|1,5|7,7|-3,9",
		"",
		"|",
		"9|5,1",
		"9|a,b",
		"-1|0,0",
		"9223372036854775807|0,1",
		"1|0,1|",
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, input string) {
		tup, err := DecodeTuple(input)
		if err != nil {
			return
		}
		enc := EncodeTuple(tup)
		back, err := DecodeTuple(enc)
		if err != nil {
			t.Fatalf("re-decode of %q (from %q) failed: %v", enc, input, err)
		}
		if back.ID != tup.ID || len(back.Attrs) != len(tup.Attrs) {
			t.Fatalf("round trip changed tuple: %+v vs %+v", tup, back)
		}
		for i := range tup.Attrs {
			if back.Attrs[i] != tup.Attrs[i] {
				t.Fatalf("attribute %d changed: %v vs %v", i, tup.Attrs[i], back.Attrs[i])
			}
		}
	})
}

// FuzzReadText checks the text relation reader against arbitrary files.
func FuzzReadText(f *testing.F) {
	f.Add("0,5\n12,85\n", 1)
	f.Add("1,2|3,4\n", 2)
	f.Add("# comment\n\n5,5\n", 1)
	f.Add("garbage\n", 1)
	f.Fuzz(func(t *testing.T, input string, arity int) {
		if arity < 1 || arity > 4 {
			return
		}
		attrs := make([]string, arity)
		for i := range attrs {
			attrs[i] = string(rune('A' + i))
		}
		rel, err := ReadText(NewSchema("F", attrs...), strings.NewReader(input))
		if err != nil {
			return
		}
		if err := rel.Validate(); err != nil {
			t.Fatalf("ReadText(%q) produced invalid relation: %v", input, err)
		}
	})
}
