package relation

import (
	"path/filepath"
	"strings"
	"testing"

	"intervaljoin/internal/interval"
)

func TestReadTextSingleAttr(t *testing.T) {
	in := `
# header comment
0,5
12,85

100,100
`
	rel, err := ReadText(NewSchema("R"), strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if rel.Len() != 3 {
		t.Fatalf("tuples = %d, want 3 (comments and blanks skipped)", rel.Len())
	}
	if rel.Tuples[1].Key() != interval.New(12, 85) {
		t.Fatalf("tuple 1 = %v", rel.Tuples[1])
	}
	if rel.Tuples[2].ID != 2 {
		t.Fatalf("ids not positional: %v", rel.Tuples[2])
	}
}

func TestReadTextMultiAttr(t *testing.T) {
	rel, err := ReadText(NewSchema("R", "x", "y"), strings.NewReader("100,120|0,4\n5,6|7,8\n"))
	if err != nil {
		t.Fatal(err)
	}
	if rel.Len() != 2 || rel.Tuples[0].Attrs[1] != interval.New(0, 4) {
		t.Fatalf("parsed = %+v", rel.Tuples)
	}
}

func TestReadTextErrors(t *testing.T) {
	cases := []struct {
		schema Schema
		input  string
	}{
		{NewSchema("R"), "1,2|3,4"}, // too many attributes
		{NewSchema("R", "x", "y"), "1,2"},
		{NewSchema("R"), "a,b"},
		{NewSchema("R"), "5,1"}, // inverted
	}
	for _, tc := range cases {
		if _, err := ReadText(tc.schema, strings.NewReader(tc.input)); err == nil {
			t.Errorf("ReadText(%q) succeeded, want error", tc.input)
		}
	}
}

func TestReadTextTimestamps(t *testing.T) {
	in := `2024-03-01T09:00:00Z,2024-03-01T10:30:00Z
2024-03-01 09:00:00,2024-03-01 10:30:00
2024-03-01,2024-03-02
`
	rel, err := ReadText(NewSchema("T"), strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if rel.Len() != 3 {
		t.Fatalf("tuples = %d", rel.Len())
	}
	// RFC3339 and the space form at the same instant parse identically.
	if rel.Tuples[0].Key() != rel.Tuples[1].Key() {
		t.Fatalf("RFC3339 %v != space form %v", rel.Tuples[0].Key(), rel.Tuples[1].Key())
	}
	// 90 minutes in milliseconds.
	if got := rel.Tuples[0].Key().Length(); got != 90*60*1000 {
		t.Fatalf("duration = %d ms, want 5400000", got)
	}
	// A bare date spans exactly one day.
	if got := rel.Tuples[2].Key().Length(); got != 24*60*60*1000 {
		t.Fatalf("day span = %d ms", got)
	}
	// Mixed numeric and timestamp endpoints in one value are rejected.
	if _, err := ReadText(NewSchema("T"), strings.NewReader("0,2024-03-01\n")); err == nil {
		t.Fatal("mixed endpoint forms accepted")
	}
	// Inverted timestamps are rejected.
	if _, err := ReadText(NewSchema("T"), strings.NewReader("2024-03-02,2024-03-01\n")); err == nil {
		t.Fatal("inverted timestamp interval accepted")
	}
}

func TestTextRoundTripFile(t *testing.T) {
	rel := New(NewSchema("R", "x", "y"))
	rel.Append(interval.New(0, 5), interval.New(-3, 9))
	rel.Append(interval.New(42, 42), interval.New(7, 7))
	path := filepath.Join(t.TempDir(), "rel.txt")
	if err := SaveFile(rel, path); err != nil {
		t.Fatal(err)
	}
	back, err := LoadFile(rel.Schema, path)
	if err != nil {
		t.Fatal(err)
	}
	if back.Len() != rel.Len() {
		t.Fatalf("round trip lost tuples: %d vs %d", back.Len(), rel.Len())
	}
	for i := range rel.Tuples {
		for j := range rel.Tuples[i].Attrs {
			if back.Tuples[i].Attrs[j] != rel.Tuples[i].Attrs[j] {
				t.Fatalf("tuple %d attr %d mismatch", i, j)
			}
		}
	}
}

func TestLoadFileMissing(t *testing.T) {
	if _, err := LoadFile(NewSchema("R"), "/nonexistent/file.txt"); err == nil {
		t.Fatal("missing file loaded")
	}
}
