package relation

import (
	"fmt"
	"strconv"
	"strings"

	"intervaljoin/internal/interval"
)

// Arena is a struct-of-arrays tuple store for the reduce-side join kernel:
// ids, per-tuple attribute offsets and a single flat interval column live in
// three parallel slices, so decoding a candidate list touches no per-tuple
// heap objects and re-materialising a tuple for emission is a pair of
// subslice headers. A tuple is identified by the int32 ref Append returns;
// refs are dense (0..Len()-1) and stay valid until Reset.
//
// The offset column handles mixed arity (Gen-Matrix relations carry several
// interval attributes): tuple ref's attributes are flat[base[ref]:base[ref+1]].
// An Arena belongs to one goroutine; pooled reuse goes through Reset, which
// keeps the backing arrays.
type Arena struct {
	ids []int64
	// base is a prefix table with len(ids)+1 entries once any tuple is
	// stored: base[r] is the flat offset of tuple r's first attribute.
	base []int32
	flat []interval.Interval
}

// Len is the number of tuples stored.
func (a *Arena) Len() int { return len(a.ids) }

// Reset empties the arena, retaining capacity for reuse.
func (a *Arena) Reset() {
	a.ids = a.ids[:0]
	a.base = a.base[:0]
	a.flat = a.flat[:0]
}

func (a *Arena) initBase() {
	if len(a.base) == 0 {
		a.base = append(a.base, 0)
	}
}

// Append copies t into the arena and returns its ref.
func (a *Arena) Append(t Tuple) int32 {
	a.initBase()
	a.ids = append(a.ids, t.ID)
	a.flat = append(a.flat, t.Attrs...)
	a.base = append(a.base, int32(len(a.flat)))
	return int32(len(a.ids) - 1)
}

// AppendDecode parses one EncodeTuple record ("id|s,e|s,e|...") directly
// into the arena — the zero-copy counterpart of DecodeTuple, accepting and
// rejecting exactly the same inputs. On error the arena is unchanged.
func (a *Arena) AppendDecode(s string) (int32, error) {
	sep := strings.IndexByte(s, '|')
	if sep < 0 {
		return 0, fmt.Errorf("relation: malformed tuple record %q", s)
	}
	id, err := strconv.ParseInt(s[:sep], 10, 64)
	if err != nil {
		return 0, fmt.Errorf("relation: bad tuple id in %q: %v", s, err)
	}
	a.initBase()
	flat0 := len(a.flat)
	rest := s[sep+1:]
	for i := 0; ; i++ {
		field := rest
		last := true
		if j := strings.IndexByte(rest, '|'); j >= 0 {
			field, rest = rest[:j], rest[j+1:]
			last = false
		}
		iv, ok := parseIntervalFast(field)
		if !ok {
			var err error
			iv, err = interval.Parse(field)
			if err != nil {
				a.flat = a.flat[:flat0]
				return 0, fmt.Errorf("relation: bad attribute %d in %q: %v", i, s, err)
			}
		}
		a.flat = append(a.flat, iv)
		if last {
			break
		}
	}
	a.ids = append(a.ids, id)
	a.base = append(a.base, int32(len(a.flat)))
	return int32(len(a.ids) - 1), nil
}

// parseIntervalFast parses the canonical "start,end" field form — plain
// decimal digits with an optional leading minus, no whitespace, no
// brackets — exactly as interval.Parse would, without its normalisation
// passes. Any other shape (including start > end, so the validation error
// keeps Parse's wording) reports ok=false and the caller falls back to
// interval.Parse, which accepts a superset and agrees on every string the
// fast path accepts.
func parseIntervalFast(field string) (interval.Interval, bool) {
	c := strings.IndexByte(field, ',')
	if c < 0 {
		return interval.Interval{}, false
	}
	start, ok := parseInt64Fast(field[:c])
	if !ok {
		return interval.Interval{}, false
	}
	end, ok := parseInt64Fast(field[c+1:])
	if !ok || start > end {
		return interval.Interval{}, false
	}
	return interval.Interval{Start: start, End: end}, true
}

// parseInt64Fast parses an optionally negated run of at most 18 decimal
// digits — short enough that the accumulator cannot overflow int64. Longer
// or non-canonical numerals (a leading '+', stray bytes) return ok=false
// so strconv.ParseInt decides them.
func parseInt64Fast(s string) (int64, bool) {
	neg := false
	if len(s) > 0 && s[0] == '-' {
		neg = true
		s = s[1:]
	}
	if len(s) == 0 || len(s) > 18 {
		return 0, false
	}
	var v int64
	for i := 0; i < len(s); i++ {
		d := s[i] - '0'
		if d > 9 {
			return 0, false
		}
		v = v*10 + int64(d)
	}
	if neg {
		v = -v
	}
	return v, true
}

// ID returns the stored tuple id.
func (a *Arena) ID(ref int32) int64 { return a.ids[ref] }

// Arity returns the number of attributes of tuple ref.
func (a *Arena) Arity(ref int32) int { return int(a.base[ref+1] - a.base[ref]) }

// Attr returns one attribute interval of tuple ref.
func (a *Arena) Attr(ref int32, attr int) interval.Interval {
	lo, hi := a.base[ref], a.base[ref+1]
	if attr < 0 || int32(attr) >= hi-lo {
		panic(fmt.Sprintf("relation: arena attr %d on arity-%d tuple", attr, hi-lo))
	}
	return a.flat[lo+int32(attr)]
}

// Start returns Attr(ref, attr).Start — the endpoint column read the sweep
// kernels build their sort keys from.
func (a *Arena) Start(ref int32, attr int) int64 { return a.Attr(ref, attr).Start }

// End returns Attr(ref, attr).End.
func (a *Arena) End(ref int32, attr int) int64 { return a.Attr(ref, attr).End }

// Tuple materialises tuple ref. The returned tuple's Attrs alias the arena:
// valid until the next Reset, and not to be retained across one.
func (a *Arena) Tuple(ref int32) Tuple {
	return Tuple{ID: a.ids[ref], Attrs: a.flat[a.base[ref]:a.base[ref+1]:a.base[ref+1]]}
}
