package relation

import (
	"bufio"
	"fmt"
	"io"
	"os"
	"strings"
	"time"

	"intervaljoin/internal/interval"
)

// This file implements the text interchange format the CLI tools share:
// one tuple per line, attributes as "start,end" separated by '|', blank
// lines and '#' comments ignored, tuple ids assigned by position. Endpoints
// may also be timestamps (RFC 3339, "2006-01-02 15:04:05" or a bare date),
// which parse to Unix milliseconds, so temporal data joins without manual
// conversion:
//
//	12,85
//	100,120|0,4
//	2024-03-01T09:00:00Z,2024-03-01T10:30:00Z
//	# a comment

// ReadText parses a relation matching the schema from r.
func ReadText(schema Schema, r io.Reader) (*Relation, error) {
	rel := New(schema)
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<16), 1<<24)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Split(line, "|")
		if len(fields) != schema.Arity() {
			return nil, fmt.Errorf("relation %s: line %d has %d attributes, schema needs %d",
				schema.Name, lineNo, len(fields), schema.Arity())
		}
		attrs := make([]interval.Interval, len(fields))
		for i, f := range fields {
			iv, err := parseAttr(f)
			if err != nil {
				return nil, fmt.Errorf("relation %s: line %d: %v", schema.Name, lineNo, err)
			}
			attrs[i] = iv
		}
		rel.Append(attrs...)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return rel, nil
}

// timeLayouts are the timestamp formats parseAttr accepts, most to least
// specific.
var timeLayouts = []string{
	time.RFC3339,
	"2006-01-02 15:04:05",
	"2006-01-02",
}

// parseAttr parses one attribute value: an integer interval "s,e" or a
// timestamp pair, converted to Unix milliseconds.
func parseAttr(f string) (interval.Interval, error) {
	if iv, err := interval.Parse(f); err == nil {
		return iv, nil
	}
	comma := strings.IndexByte(f, ',')
	if comma < 0 {
		return interval.Interval{}, fmt.Errorf("relation: cannot parse attribute %q", f)
	}
	start, err := parseTimePoint(strings.TrimSpace(f[:comma]))
	if err != nil {
		return interval.Interval{}, err
	}
	end, err := parseTimePoint(strings.TrimSpace(f[comma+1:]))
	if err != nil {
		return interval.Interval{}, err
	}
	return interval.Make(start, end)
}

// parseTimePoint parses a timestamp into Unix milliseconds.
func parseTimePoint(s string) (interval.Point, error) {
	for _, layout := range timeLayouts {
		if ts, err := time.Parse(layout, s); err == nil {
			return ts.UnixMilli(), nil
		}
	}
	return 0, fmt.Errorf("relation: cannot parse %q as a number or timestamp", s)
}

// WriteText writes the relation in the format ReadText parses.
func WriteText(rel *Relation, w io.Writer) error {
	bw := bufio.NewWriter(w)
	for _, t := range rel.Tuples {
		for i, iv := range t.Attrs {
			if i > 0 {
				if err := bw.WriteByte('|'); err != nil {
					return err
				}
			}
			if _, err := fmt.Fprintf(bw, "%d,%d", iv.Start, iv.End); err != nil {
				return err
			}
		}
		if err := bw.WriteByte('\n'); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// LoadFile reads a relation from a text file.
func LoadFile(schema Schema, path string) (*Relation, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	rel, err := ReadText(schema, f)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return rel, nil
}

// SaveFile writes a relation to a text file.
func SaveFile(rel *Relation, path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := WriteText(rel, f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
