package relation

import (
	"math/rand"
	"testing"
	"testing/quick"

	"intervaljoin/internal/interval"
)

func TestSchemaDefaults(t *testing.T) {
	s := NewSchema("R1")
	if s.Arity() != 1 || s.Attrs[0] != "I" {
		t.Fatalf("default schema = %+v, want single attribute I", s)
	}
	s2 := NewSchema("R2", "I", "A", "B")
	if s2.Arity() != 3 {
		t.Fatalf("arity = %d, want 3", s2.Arity())
	}
	if s2.AttrIndex("A") != 1 || s2.AttrIndex("missing") != -1 {
		t.Error("AttrIndex misbehaves")
	}
}

func TestFromIntervals(t *testing.T) {
	ivs := []interval.Interval{interval.New(0, 5), interval.New(3, 9)}
	r := FromIntervals("R", ivs)
	if r.Len() != 2 {
		t.Fatalf("Len = %d", r.Len())
	}
	if r.Tuples[1].ID != 1 || r.Tuples[1].Key() != interval.New(3, 9) {
		t.Fatalf("tuple 1 = %+v", r.Tuples[1])
	}
	got := r.Intervals()
	for i := range ivs {
		if got[i] != ivs[i] {
			t.Fatalf("Intervals()[%d] = %v, want %v", i, got[i], ivs[i])
		}
	}
	if err := r.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
}

func TestAppendArityPanics(t *testing.T) {
	r := New(NewSchema("R", "I", "A"))
	defer func() {
		if recover() == nil {
			t.Fatal("arity mismatch did not panic")
		}
	}()
	r.Append(interval.New(0, 1))
}

func TestKeyPanicsOnMultiAttr(t *testing.T) {
	tup := Tuple{ID: 0, Attrs: []interval.Interval{interval.New(0, 1), interval.New(2, 3)}}
	defer func() {
		if recover() == nil {
			t.Fatal("Key on 2-attribute tuple did not panic")
		}
	}()
	tup.Key()
}

func TestValidateCatchesDuplicates(t *testing.T) {
	r := New(NewSchema("R"))
	r.Tuples = []Tuple{
		{ID: 1, Attrs: []interval.Interval{interval.New(0, 1)}},
		{ID: 1, Attrs: []interval.Interval{interval.New(2, 3)}},
	}
	if err := r.Validate(); err == nil {
		t.Fatal("duplicate ids not reported")
	}
}

func TestValidateCatchesBadArity(t *testing.T) {
	r := New(NewSchema("R", "I", "A"))
	r.Tuples = []Tuple{{ID: 0, Attrs: []interval.Interval{interval.New(0, 1)}}}
	if err := r.Validate(); err == nil {
		t.Fatal("arity mismatch not reported")
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	f := func(id int64, a1, a2, b1, b2 int32) bool {
		mk := func(x, y int32) interval.Interval {
			if x > y {
				x, y = y, x
			}
			return interval.New(int64(x), int64(y))
		}
		tup := Tuple{ID: id, Attrs: []interval.Interval{mk(a1, a2), mk(b1, b2)}}
		dec, err := DecodeTuple(EncodeTuple(tup))
		if err != nil || dec.ID != tup.ID || len(dec.Attrs) != 2 {
			return false
		}
		return dec.Attrs[0] == tup.Attrs[0] && dec.Attrs[1] == tup.Attrs[1]
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestDecodeErrors(t *testing.T) {
	for _, s := range []string{"", "5", "x|0,1", "5|0;1", "5|a,b"} {
		if _, err := DecodeTuple(s); err == nil {
			t.Errorf("DecodeTuple(%q) succeeded, want error", s)
		}
	}
}

func TestBounds(t *testing.T) {
	r1 := FromIntervals("R1", []interval.Interval{interval.New(5, 20)})
	r2 := FromIntervals("R2", []interval.Interval{interval.New(-3, 7), interval.New(10, 90)})
	t0, tn, ok := Bounds(r1, r2)
	if !ok || t0 != -3 || tn != 91 {
		t.Fatalf("Bounds = [%d,%d) ok=%v, want [-3,91) true", t0, tn, ok)
	}
	if _, _, ok := Bounds(New(NewSchema("E"))); ok {
		t.Fatal("Bounds of empty relation reported ok")
	}
}

func TestAttrBounds(t *testing.T) {
	r := New(NewSchema("R", "I", "A"))
	r.Append(interval.New(0, 10), interval.New(100, 100))
	r.Append(interval.New(5, 7), interval.New(42, 42))
	t0, tn, ok := AttrBounds(r, 1)
	if !ok || t0 != 42 || tn != 101 {
		t.Fatalf("AttrBounds = [%d,%d) ok=%v", t0, tn, ok)
	}
}

func TestBoundsCoverEverythingQuick(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for i := 0; i < 100; i++ {
		n := 1 + rng.Intn(50)
		ivs := make([]interval.Interval, n)
		for j := range ivs {
			s := rng.Int63n(1000) - 500
			ivs[j] = interval.New(s, s+rng.Int63n(100))
		}
		r := FromIntervals("R", ivs)
		t0, tn, ok := Bounds(r)
		if !ok {
			t.Fatal("Bounds not ok for non-empty relation")
		}
		for _, iv := range ivs {
			if iv.Start < t0 || iv.End >= tn {
				t.Fatalf("interval %v outside bounds [%d,%d)", iv, t0, tn)
			}
		}
	}
}
