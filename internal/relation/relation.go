// Package relation models the input relations of an interval join query.
//
// A relation is a named, schema-ed collection of tuples. Every attribute is
// an interval (package interval); real-valued attributes are degenerate
// intervals of length zero, exactly as the paper treats them. The common
// case of the Colocation / Sequence / Hybrid algorithms — a single interval
// attribute — is a relation whose schema has one attribute.
package relation

import (
	"fmt"
	"strconv"
	"strings"

	"intervaljoin/internal/interval"
)

// Schema describes a relation: its name and the names of its interval
// attributes, in column order.
type Schema struct {
	Name  string
	Attrs []string
}

// NewSchema builds a schema. With no attribute names, a single attribute
// named "I" is assumed (the single-interval-attribute query classes).
func NewSchema(name string, attrs ...string) Schema {
	if len(attrs) == 0 {
		attrs = []string{"I"}
	}
	return Schema{Name: name, Attrs: attrs}
}

// AttrIndex returns the position of the named attribute, or -1.
func (s Schema) AttrIndex(name string) int {
	for i, a := range s.Attrs {
		if a == name {
			return i
		}
	}
	return -1
}

// Arity is the number of attributes.
func (s Schema) Arity() int { return len(s.Attrs) }

// Tuple is one row of a relation: a unique id (unique within its relation)
// and one interval per schema attribute.
type Tuple struct {
	ID    int64
	Attrs []interval.Interval
}

// Key returns the tuple's single interval. It panics unless the tuple has
// exactly one attribute; it is the accessor used by the single-attribute
// join algorithms.
func (t Tuple) Key() interval.Interval {
	if len(t.Attrs) != 1 {
		panic(fmt.Sprintf("relation: Key on %d-attribute tuple", len(t.Attrs)))
	}
	return t.Attrs[0]
}

// Relation is a schema plus its tuples.
type Relation struct {
	Schema Schema
	Tuples []Tuple
}

// FromIntervals builds a single-attribute relation from a slice of
// intervals, assigning ids 0..n-1 in order.
func FromIntervals(name string, ivs []interval.Interval) *Relation {
	r := &Relation{Schema: NewSchema(name)}
	r.Tuples = make([]Tuple, len(ivs))
	for i, iv := range ivs {
		r.Tuples[i] = Tuple{ID: int64(i), Attrs: []interval.Interval{iv}}
	}
	return r
}

// New builds an empty relation with the given schema.
func New(schema Schema) *Relation { return &Relation{Schema: schema} }

// Append adds a tuple with the next sequential id and the given attribute
// values, returning the id. It panics if the arity does not match.
func (r *Relation) Append(attrs ...interval.Interval) int64 {
	if len(attrs) != r.Schema.Arity() {
		panic(fmt.Sprintf("relation %s: append arity %d, schema arity %d",
			r.Schema.Name, len(attrs), r.Schema.Arity()))
	}
	id := int64(len(r.Tuples))
	r.Tuples = append(r.Tuples, Tuple{ID: id, Attrs: attrs})
	return id
}

// Len is the number of tuples.
func (r *Relation) Len() int { return len(r.Tuples) }

// Intervals returns the single-attribute column as a slice. It panics for
// multi-attribute relations.
func (r *Relation) Intervals() []interval.Interval {
	if r.Schema.Arity() != 1 {
		panic(fmt.Sprintf("relation %s: Intervals on arity-%d relation", r.Schema.Name, r.Schema.Arity()))
	}
	out := make([]interval.Interval, len(r.Tuples))
	for i, t := range r.Tuples {
		out[i] = t.Attrs[0]
	}
	return out
}

// Validate checks tuple arity and interval well-formedness and id
// uniqueness, returning the first problem found.
func (r *Relation) Validate() error {
	seen := make(map[int64]struct{}, len(r.Tuples))
	for i, t := range r.Tuples {
		if len(t.Attrs) != r.Schema.Arity() {
			return fmt.Errorf("relation %s: tuple %d has arity %d, want %d",
				r.Schema.Name, i, len(t.Attrs), r.Schema.Arity())
		}
		for j, iv := range t.Attrs {
			if !iv.Valid() {
				return fmt.Errorf("relation %s: tuple %d attribute %s invalid: %v",
					r.Schema.Name, i, r.Schema.Attrs[j], iv)
			}
		}
		if _, dup := seen[t.ID]; dup {
			return fmt.Errorf("relation %s: duplicate tuple id %d", r.Schema.Name, t.ID)
		}
		seen[t.ID] = struct{}{}
	}
	return nil
}

// EncodeTuple serialises a tuple to the line format used on the distributed
// file store: "id|s,e|s,e|...". The relation name is carried by the file,
// not the record.
func EncodeTuple(t Tuple) string {
	return string(AppendTuple(make([]byte, 0, 16+24*len(t.Attrs)), t))
}

// AppendTuple appends EncodeTuple's form to dst and returns the extended
// slice — the allocation-free building block for the record codecs, which
// compose it with tags and flags in one buffer.
func AppendTuple(dst []byte, t Tuple) []byte {
	dst = strconv.AppendInt(dst, t.ID, 10)
	for _, iv := range t.Attrs {
		dst = append(dst, '|')
		dst = strconv.AppendInt(dst, iv.Start, 10)
		dst = append(dst, ',')
		dst = strconv.AppendInt(dst, iv.End, 10)
	}
	return dst
}

// DecodeTuple parses the format produced by EncodeTuple.
func DecodeTuple(s string) (Tuple, error) {
	fields := strings.Split(s, "|")
	if len(fields) < 2 {
		return Tuple{}, fmt.Errorf("relation: malformed tuple record %q", s)
	}
	id, err := strconv.ParseInt(fields[0], 10, 64)
	if err != nil {
		return Tuple{}, fmt.Errorf("relation: bad tuple id in %q: %v", s, err)
	}
	attrs := make([]interval.Interval, len(fields)-1)
	for i, f := range fields[1:] {
		iv, err := interval.Parse(f)
		if err != nil {
			return Tuple{}, fmt.Errorf("relation: bad attribute %d in %q: %v", i, s, err)
		}
		attrs[i] = iv
	}
	return Tuple{ID: id, Attrs: attrs}, nil
}

// Bounds returns the minimal half-open range [t0, tn) covering every
// attribute interval of every tuple in the given relations, suitable for
// constructing a Partitioning. ok is false when the relations contain no
// tuples.
func Bounds(rels ...*Relation) (t0, tn interval.Point, ok bool) {
	first := true
	for _, r := range rels {
		for _, t := range r.Tuples {
			for _, iv := range t.Attrs {
				if first {
					t0, tn, first = iv.Start, iv.End+1, false
					continue
				}
				if iv.Start < t0 {
					t0 = iv.Start
				}
				if iv.End+1 > tn {
					tn = iv.End + 1
				}
			}
		}
	}
	return t0, tn, !first
}

// AttrBounds returns the minimal half-open range covering one attribute
// column of one relation. ok is false for an empty relation.
func AttrBounds(r *Relation, attr int) (t0, tn interval.Point, ok bool) {
	for i, t := range r.Tuples {
		iv := t.Attrs[attr]
		if i == 0 {
			t0, tn = iv.Start, iv.End+1
			continue
		}
		if iv.Start < t0 {
			t0 = iv.Start
		}
		if iv.End+1 > tn {
			tn = iv.End + 1
		}
	}
	return t0, tn, r.Len() > 0
}
