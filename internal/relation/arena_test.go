package relation

import (
	"strings"
	"testing"

	"intervaljoin/internal/interval"
)

func TestArenaAppendAndAccessors(t *testing.T) {
	var a Arena
	t1 := Tuple{ID: 7, Attrs: []interval.Interval{{Start: 1, End: 5}}}
	t2 := Tuple{ID: -3, Attrs: []interval.Interval{{Start: 0, End: 0}, {Start: -9, End: 9}, {Start: 4, End: 4}}}
	r1 := a.Append(t1)
	r2 := a.Append(t2)
	if a.Len() != 2 {
		t.Fatalf("Len = %d, want 2", a.Len())
	}
	if a.ID(r1) != 7 || a.ID(r2) != -3 {
		t.Fatalf("IDs = %d, %d", a.ID(r1), a.ID(r2))
	}
	if a.Arity(r1) != 1 || a.Arity(r2) != 3 {
		t.Fatalf("arities = %d, %d", a.Arity(r1), a.Arity(r2))
	}
	if got := a.Attr(r2, 1); got != t2.Attrs[1] {
		t.Fatalf("Attr(r2,1) = %v, want %v", got, t2.Attrs[1])
	}
	if a.Start(r1, 0) != 1 || a.End(r1, 0) != 5 {
		t.Fatalf("Start/End(r1,0) = %d,%d", a.Start(r1, 0), a.End(r1, 0))
	}
	for ref, want := range map[int32]Tuple{r1: t1, r2: t2} {
		got := a.Tuple(ref)
		if got.ID != want.ID || len(got.Attrs) != len(want.Attrs) {
			t.Fatalf("Tuple(%d) = %+v, want %+v", ref, got, want)
		}
		for i := range want.Attrs {
			if got.Attrs[i] != want.Attrs[i] {
				t.Fatalf("Tuple(%d).Attrs[%d] = %v, want %v", ref, i, got.Attrs[i], want.Attrs[i])
			}
		}
	}
}

func TestArenaTupleAliasIsCapped(t *testing.T) {
	// The Attrs slice handed out by Tuple must not allow appends to clobber
	// the next tuple's attributes.
	var a Arena
	r1 := a.Append(Tuple{ID: 1, Attrs: []interval.Interval{{Start: 1, End: 2}}})
	a.Append(Tuple{ID: 2, Attrs: []interval.Interval{{Start: 3, End: 4}}})
	tup := a.Tuple(r1)
	_ = append(tup.Attrs, interval.Interval{Start: 99, End: 99})
	if iv := a.Attr(1, 0); iv.Start != 3 || iv.End != 4 {
		t.Fatalf("append through alias clobbered neighbour: %v", iv)
	}
}

func TestArenaReset(t *testing.T) {
	var a Arena
	a.Append(Tuple{ID: 1, Attrs: []interval.Interval{{Start: 1, End: 2}}})
	a.Reset()
	if a.Len() != 0 {
		t.Fatalf("Len after Reset = %d", a.Len())
	}
	r := a.Append(Tuple{ID: 5, Attrs: []interval.Interval{{Start: 8, End: 9}}})
	if a.ID(r) != 5 || a.Attr(r, 0) != (interval.Interval{Start: 8, End: 9}) {
		t.Fatalf("append after Reset broken: id=%d attr=%v", a.ID(r), a.Attr(r, 0))
	}
}

func TestArenaAttrPanicsOutOfRange(t *testing.T) {
	var a Arena
	r := a.Append(Tuple{ID: 1, Attrs: []interval.Interval{{Start: 1, End: 2}}})
	defer func() {
		if recover() == nil {
			t.Fatal("Attr out of range did not panic")
		}
	}()
	a.Attr(r, 1)
}

func TestArenaAppendDecodeMatchesDecodeTuple(t *testing.T) {
	cases := []string{
		"0|1,5",
		"42|1,5|7,7|-3,9",
		"-1|0,0",
		"9223372036854775807|0,1",
		"7|[1,5]|[ 2 , 3 ]",
		"",
		"|",
		"9|5,1",
		"9|a,b",
		"1|0,1|",
		"x|0,1",
		"5",
	}
	for _, s := range cases {
		var a Arena
		ref, aerr := a.AppendDecode(s)
		tup, derr := DecodeTuple(s)
		if (aerr == nil) != (derr == nil) {
			t.Fatalf("AppendDecode(%q) err=%v but DecodeTuple err=%v", s, aerr, derr)
		}
		if derr != nil {
			if aerr.Error() != derr.Error() {
				t.Errorf("AppendDecode(%q) error %q, DecodeTuple error %q", s, aerr, derr)
			}
			if a.Len() != 0 {
				t.Errorf("AppendDecode(%q) failed but left %d tuples in arena", s, a.Len())
			}
			continue
		}
		got := a.Tuple(ref)
		if got.ID != tup.ID || len(got.Attrs) != len(tup.Attrs) {
			t.Fatalf("AppendDecode(%q) = %+v, DecodeTuple = %+v", s, got, tup)
		}
		for i := range tup.Attrs {
			if got.Attrs[i] != tup.Attrs[i] {
				t.Fatalf("AppendDecode(%q) attr %d = %v, want %v", s, i, got.Attrs[i], tup.Attrs[i])
			}
		}
	}
}

func TestArenaAppendDecodeErrorLeavesArenaIntact(t *testing.T) {
	var a Arena
	if _, err := a.AppendDecode("1|2,4"); err != nil {
		t.Fatal(err)
	}
	if _, err := a.AppendDecode("2|3,5|bad"); err == nil {
		t.Fatal("want decode error")
	}
	if a.Len() != 1 {
		t.Fatalf("Len after failed decode = %d, want 1", a.Len())
	}
	r := a.Append(Tuple{ID: 9, Attrs: []interval.Interval{{Start: 6, End: 7}}})
	if a.Attr(r, 0) != (interval.Interval{Start: 6, End: 7}) || a.Arity(r) != 1 {
		t.Fatalf("arena corrupted after failed decode: %v arity %d", a.Attr(r, 0), a.Arity(r))
	}
	if a.Attr(0, 0) != (interval.Interval{Start: 2, End: 4}) {
		t.Fatalf("first tuple corrupted: %v", a.Attr(0, 0))
	}
}

// FuzzArenaDecode differentially checks the arena's zero-copy decoder
// against the reference tuple codec: same accept/reject decision, same
// error text, identical decoded contents, and a clean re-encode round trip.
func FuzzArenaDecode(f *testing.F) {
	for _, seed := range []string{
		"0|1,5",
		"42|1,5|7,7|-3,9",
		"",
		"|",
		"9|5,1",
		"9|a,b",
		"-1|0,0",
		"9223372036854775807|0,1",
		"1|0,1|",
		"7|[1,5]|[ 2 , 3 ]",
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, input string) {
		if strings.Count(input, "|") > 64 {
			return
		}
		var a Arena
		// Pre-populate so a failed decode must truncate, not just reset.
		pre, err := a.AppendDecode("11|3,9")
		if err != nil {
			t.Fatal(err)
		}
		ref, aerr := a.AppendDecode(input)
		tup, derr := DecodeTuple(input)
		if (aerr == nil) != (derr == nil) {
			t.Fatalf("AppendDecode(%q) err=%v, DecodeTuple err=%v", input, aerr, derr)
		}
		if derr != nil {
			if aerr.Error() != derr.Error() {
				t.Fatalf("error text diverged for %q: arena %q, codec %q", input, aerr, derr)
			}
			if a.Len() != 1 {
				t.Fatalf("failed decode of %q left arena at Len=%d", input, a.Len())
			}
		} else {
			got := a.Tuple(ref)
			if got.ID != tup.ID || len(got.Attrs) != len(tup.Attrs) {
				t.Fatalf("decode of %q diverged: arena %+v, codec %+v", input, got, tup)
			}
			for i := range tup.Attrs {
				if got.Attrs[i] != tup.Attrs[i] {
					t.Fatalf("attr %d of %q diverged: %v vs %v", i, input, got.Attrs[i], tup.Attrs[i])
				}
			}
			back, err := DecodeTuple(EncodeTuple(got))
			if err != nil {
				t.Fatalf("re-decode of arena tuple from %q failed: %v", input, err)
			}
			if back.ID != tup.ID {
				t.Fatalf("round trip changed id: %d vs %d", back.ID, tup.ID)
			}
		}
		if a.ID(pre) != 11 || a.Attr(pre, 0) != (interval.Interval{Start: 3, End: 9}) {
			t.Fatalf("decode of %q corrupted earlier arena contents", input)
		}
	})
}
