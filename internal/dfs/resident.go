package dfs

import (
	"fmt"
	"sort"
	"strconv"
	"sync"
)

// Residents is the resident-relation registry of a long-running store: a
// named, versioned set of record files staged once and shared read-only by
// every subsequent job. Registering a relation writes its records under a
// version-stamped file name ("resident/<name>@v<N>") and bumps the
// version; readers always address a specific version, so a re-registration
// never mutates a file a running job is scanning, and a result cache keyed
// on the version string can never serve rows computed from superseded data.
type Residents struct {
	mu       sync.Mutex
	store    Store
	versions map[string]int
}

// NewResidents makes an empty registry over the store.
func NewResidents(store Store) *Residents {
	return &Residents{store: store, versions: make(map[string]int)}
}

// ResidentFile is the store file name of version v of a resident relation.
func ResidentFile(name string, version int) string {
	return "resident/" + name + "@v" + strconv.Itoa(version)
}

// Register stages the records as the next version of the named relation and
// returns the versioned file name. Prior versions stay on the store until
// Drop removes them, so in-flight readers of the old version are safe.
func (r *Residents) Register(name string, records []string) (file string, version int, err error) {
	if name == "" {
		return "", 0, fmt.Errorf("dfs: resident relation needs a name")
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	version = r.versions[name] + 1
	file = ResidentFile(name, version)
	if err := WriteAll(r.store, file, records); err != nil {
		return "", 0, err
	}
	r.versions[name] = version
	return file, version, nil
}

// Current returns the newest registered version of the named relation.
func (r *Residents) Current(name string) (file string, version int, ok bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	version, ok = r.versions[name]
	if !ok {
		return "", 0, false
	}
	return ResidentFile(name, version), version, true
}

// Names lists the registered relation names, sorted.
func (r *Residents) Names() []string {
	r.mu.Lock()
	defer r.mu.Unlock()
	names := make([]string, 0, len(r.versions))
	for n := range r.versions {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Drop removes superseded versions of the named relation from the store,
// keeping the current one. It is the caller's compaction hook; the registry
// never removes files on its own.
func (r *Residents) Drop(name string) error {
	r.mu.Lock()
	cur := r.versions[name]
	r.mu.Unlock()
	for v := 1; v < cur; v++ {
		f := ResidentFile(name, v)
		if r.store.Exists(f) {
			if err := r.store.Remove(f); err != nil {
				return err
			}
		}
	}
	return nil
}
