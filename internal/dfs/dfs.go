// Package dfs provides the small distributed-file-system abstraction the
// MapReduce engine stores its inputs, intermediate cycle outputs and final
// results on. It plays the role HDFS plays for Hadoop in the paper: named
// files of line-oriented records. Two backends are provided: an in-memory
// store (fast, used by tests and benchmarks) and an on-disk store (used by
// the CLIs so runs survive the process and large inputs spill out of RAM).
package dfs

import (
	"bufio"
	"fmt"
	"os"
	"path/filepath"
	"slices"
	"strings"
	"sync"
)

// Writer appends records to a file. Writers are not safe for concurrent use;
// the MR engine serialises writes per output file.
type Writer interface {
	// Write appends one record. Records must not contain '\n'.
	Write(record string) error
	// Close flushes and publishes the file. A file is not readable until
	// its writer is closed.
	Close() error
}

// Iterator streams the records of a file in order.
type Iterator interface {
	// Next returns the next record. ok is false at end of file.
	Next() (record string, ok bool, err error)
	// Close releases resources; safe to call multiple times.
	Close() error
}

// Store is a flat namespace of record files.
type Store interface {
	// Create opens a new file for writing, truncating any previous file
	// of the same name.
	Create(name string) (Writer, error)
	// Open returns an iterator over the file's records.
	Open(name string) (Iterator, error)
	// List returns the names with the given prefix, sorted.
	List(prefix string) ([]string, error)
	// Remove deletes a file. Removing a missing file is an error.
	Remove(name string) error
	// Exists reports whether the file exists.
	Exists(name string) bool
	// Stat returns the number of records and total record bytes of a
	// file.
	Stat(name string) (records, bytes int64, err error)
}

// ReadAll drains a file into a slice. Intended for tests and small outputs.
func ReadAll(s Store, name string) ([]string, error) {
	it, err := s.Open(name)
	if err != nil {
		return nil, err
	}
	defer it.Close()
	var out []string
	for {
		rec, ok, err := it.Next()
		if err != nil {
			return nil, err
		}
		if !ok {
			return out, nil
		}
		out = append(out, rec)
	}
}

// WriteAll creates a file holding exactly the given records.
func WriteAll(s Store, name string, records []string) error {
	w, err := s.Create(name)
	if err != nil {
		return err
	}
	for _, r := range records {
		if err := w.Write(r); err != nil {
			w.Close()
			return err
		}
	}
	return w.Close()
}

// --- In-memory backend ---

// Mem is an in-memory Store. The zero value is not usable; construct with
// NewMem. Mem is safe for concurrent use.
type Mem struct {
	mu    sync.RWMutex
	files map[string][]string
}

// NewMem returns an empty in-memory store.
func NewMem() *Mem { return &Mem{files: make(map[string][]string)} }

type memWriter struct {
	store  *Mem
	name   string
	buf    []string
	closed bool
}

func (w *memWriter) Write(record string) error {
	if w.closed {
		return fmt.Errorf("dfs: write to closed file %s", w.name)
	}
	if strings.ContainsRune(record, '\n') {
		return fmt.Errorf("dfs: record for %s contains newline", w.name)
	}
	w.buf = append(w.buf, record)
	return nil
}

func (w *memWriter) Close() error {
	if w.closed {
		return nil
	}
	w.closed = true
	w.store.mu.Lock()
	w.store.files[w.name] = w.buf
	w.store.mu.Unlock()
	return nil
}

// Create implements Store.
func (m *Mem) Create(name string) (Writer, error) {
	if name == "" {
		return nil, fmt.Errorf("dfs: empty file name")
	}
	return &memWriter{store: m, name: name}, nil
}

type memIterator struct {
	recs []string
	pos  int
}

func (it *memIterator) Next() (string, bool, error) {
	if it.pos >= len(it.recs) {
		return "", false, nil
	}
	r := it.recs[it.pos]
	it.pos++
	return r, true, nil
}

func (it *memIterator) Close() error { return nil }

// Open implements Store.
func (m *Mem) Open(name string) (Iterator, error) {
	m.mu.RLock()
	recs, ok := m.files[name]
	m.mu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("dfs: open %s: no such file", name)
	}
	return &memIterator{recs: recs}, nil
}

// List implements Store.
func (m *Mem) List(prefix string) ([]string, error) {
	m.mu.RLock()
	defer m.mu.RUnlock()
	var out []string
	for name := range m.files {
		if strings.HasPrefix(name, prefix) {
			out = append(out, name)
		}
	}
	slices.Sort(out)
	return out, nil
}

// Remove implements Store.
func (m *Mem) Remove(name string) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if _, ok := m.files[name]; !ok {
		return fmt.Errorf("dfs: remove %s: no such file", name)
	}
	delete(m.files, name)
	return nil
}

// Exists implements Store.
func (m *Mem) Exists(name string) bool {
	m.mu.RLock()
	defer m.mu.RUnlock()
	_, ok := m.files[name]
	return ok
}

// Stat implements Store.
func (m *Mem) Stat(name string) (records, bytes int64, err error) {
	m.mu.RLock()
	defer m.mu.RUnlock()
	recs, ok := m.files[name]
	if !ok {
		return 0, 0, fmt.Errorf("dfs: stat %s: no such file", name)
	}
	for _, r := range recs {
		bytes += int64(len(r))
	}
	return int64(len(recs)), bytes, nil
}

// --- On-disk backend ---

// Disk is a Store rooted at a directory. File names may contain '/' which
// maps to subdirectories. Disk is safe for concurrent use of distinct files.
type Disk struct {
	root string
}

// NewDisk returns a store rooted at dir, creating it if needed.
func NewDisk(dir string) (*Disk, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("dfs: create root %s: %w", dir, err)
	}
	return &Disk{root: dir}, nil
}

func (d *Disk) path(name string) (string, error) {
	clean := filepath.Clean(name)
	if clean == "." || strings.HasPrefix(clean, "..") || filepath.IsAbs(clean) {
		return "", fmt.Errorf("dfs: invalid file name %q", name)
	}
	return filepath.Join(d.root, clean), nil
}

type diskWriter struct {
	f      *os.File
	tmp    string
	final  string
	bw     *bufio.Writer
	closed bool
}

func (w *diskWriter) Write(record string) error {
	if w.closed {
		return fmt.Errorf("dfs: write to closed file %s", w.final)
	}
	if strings.ContainsRune(record, '\n') {
		return fmt.Errorf("dfs: record contains newline")
	}
	if _, err := w.bw.WriteString(record); err != nil {
		return err
	}
	return w.bw.WriteByte('\n')
}

func (w *diskWriter) Close() error {
	if w.closed {
		return nil
	}
	w.closed = true
	if err := w.bw.Flush(); err != nil {
		w.f.Close()
		return err
	}
	if err := w.f.Close(); err != nil {
		return err
	}
	// Publish atomically: a file is visible only once fully written,
	// mirroring HDFS's create-then-close semantics.
	return os.Rename(w.tmp, w.final)
}

// Create implements Store.
func (d *Disk) Create(name string) (Writer, error) {
	p, err := d.path(name)
	if err != nil {
		return nil, err
	}
	if err := os.MkdirAll(filepath.Dir(p), 0o755); err != nil {
		return nil, err
	}
	tmp := p + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return nil, err
	}
	return &diskWriter{f: f, tmp: tmp, final: p, bw: bufio.NewWriterSize(f, 1<<16)}, nil
}

type diskIterator struct {
	f  *os.File
	sc *bufio.Scanner
}

func (it *diskIterator) Next() (string, bool, error) {
	if it.sc.Scan() {
		return it.sc.Text(), true, nil
	}
	if err := it.sc.Err(); err != nil {
		return "", false, err
	}
	return "", false, nil
}

func (it *diskIterator) Close() error { return it.f.Close() }

// Open implements Store.
func (d *Disk) Open(name string) (Iterator, error) {
	p, err := d.path(name)
	if err != nil {
		return nil, err
	}
	f, err := os.Open(p)
	if err != nil {
		return nil, fmt.Errorf("dfs: open %s: %w", name, err)
	}
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 1<<16), 1<<24)
	return &diskIterator{f: f, sc: sc}, nil
}

// List implements Store.
func (d *Disk) List(prefix string) ([]string, error) {
	var out []string
	err := filepath.Walk(d.root, func(path string, info os.FileInfo, err error) error {
		if err != nil || info.IsDir() || strings.HasSuffix(path, ".tmp") {
			return err
		}
		rel, err := filepath.Rel(d.root, path)
		if err != nil {
			return err
		}
		rel = filepath.ToSlash(rel)
		if strings.HasPrefix(rel, prefix) {
			out = append(out, rel)
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	slices.Sort(out)
	return out, nil
}

// Remove implements Store.
func (d *Disk) Remove(name string) error {
	p, err := d.path(name)
	if err != nil {
		return err
	}
	return os.Remove(p)
}

// Exists implements Store.
func (d *Disk) Exists(name string) bool {
	p, err := d.path(name)
	if err != nil {
		return false
	}
	_, statErr := os.Stat(p)
	return statErr == nil
}

// Stat implements Store.
func (d *Disk) Stat(name string) (records, bytes int64, err error) {
	it, err := d.Open(name)
	if err != nil {
		return 0, 0, err
	}
	defer it.Close()
	for {
		rec, ok, err := it.Next()
		if err != nil {
			return 0, 0, err
		}
		if !ok {
			return records, bytes, nil
		}
		records++
		bytes += int64(len(rec))
	}
}
