package dfs

import (
	"fmt"
	"sync"
	"testing"
)

// stores returns both backends so every test runs against each.
func stores(t *testing.T) map[string]Store {
	t.Helper()
	disk, err := NewDisk(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	return map[string]Store{"mem": NewMem(), "disk": disk}
}

func TestWriteReadRoundTrip(t *testing.T) {
	for backend, s := range stores(t) {
		t.Run(backend, func(t *testing.T) {
			recs := []string{"alpha", "", "gamma|1,2", "with spaces and | pipes"}
			if err := WriteAll(s, "r/one", recs); err != nil {
				t.Fatal(err)
			}
			got, err := ReadAll(s, "r/one")
			if err != nil {
				t.Fatal(err)
			}
			if len(got) != len(recs) {
				t.Fatalf("got %d records, want %d", len(got), len(recs))
			}
			for i := range recs {
				if got[i] != recs[i] {
					t.Fatalf("record %d = %q, want %q", i, got[i], recs[i])
				}
			}
		})
	}
}

func TestEmptyRecordPreserved(t *testing.T) {
	for backend, s := range stores(t) {
		t.Run(backend, func(t *testing.T) {
			if err := WriteAll(s, "f", []string{"", "", ""}); err != nil {
				t.Fatal(err)
			}
			got, err := ReadAll(s, "f")
			if err != nil {
				t.Fatal(err)
			}
			if len(got) != 3 {
				t.Fatalf("got %d records, want 3", len(got))
			}
		})
	}
}

func TestNewlineRejected(t *testing.T) {
	for backend, s := range stores(t) {
		t.Run(backend, func(t *testing.T) {
			w, err := s.Create("f")
			if err != nil {
				t.Fatal(err)
			}
			if err := w.Write("bad\nrecord"); err == nil {
				t.Error("newline record accepted")
			}
			w.Close()
		})
	}
}

func TestFileInvisibleUntilClose(t *testing.T) {
	for backend, s := range stores(t) {
		t.Run(backend, func(t *testing.T) {
			w, err := s.Create("pending")
			if err != nil {
				t.Fatal(err)
			}
			w.Write("x")
			if s.Exists("pending") {
				t.Error("file visible before Close")
			}
			if err := w.Close(); err != nil {
				t.Fatal(err)
			}
			if !s.Exists("pending") {
				t.Error("file missing after Close")
			}
		})
	}
}

func TestCreateTruncates(t *testing.T) {
	for backend, s := range stores(t) {
		t.Run(backend, func(t *testing.T) {
			WriteAll(s, "f", []string{"old1", "old2"})
			WriteAll(s, "f", []string{"new"})
			got, err := ReadAll(s, "f")
			if err != nil {
				t.Fatal(err)
			}
			if len(got) != 1 || got[0] != "new" {
				t.Fatalf("got %v, want [new]", got)
			}
		})
	}
}

func TestOpenMissing(t *testing.T) {
	for backend, s := range stores(t) {
		t.Run(backend, func(t *testing.T) {
			if _, err := s.Open("nope"); err == nil {
				t.Error("Open of missing file succeeded")
			}
			if err := s.Remove("nope"); err == nil {
				t.Error("Remove of missing file succeeded")
			}
			if s.Exists("nope") {
				t.Error("missing file Exists")
			}
		})
	}
}

func TestListAndRemove(t *testing.T) {
	for backend, s := range stores(t) {
		t.Run(backend, func(t *testing.T) {
			for _, name := range []string{"job1/part-0", "job1/part-1", "job2/part-0"} {
				if err := WriteAll(s, name, []string{"x"}); err != nil {
					t.Fatal(err)
				}
			}
			names, err := s.List("job1/")
			if err != nil {
				t.Fatal(err)
			}
			if len(names) != 2 || names[0] != "job1/part-0" || names[1] != "job1/part-1" {
				t.Fatalf("List(job1/) = %v", names)
			}
			all, err := s.List("")
			if err != nil {
				t.Fatal(err)
			}
			if len(all) != 3 {
				t.Fatalf("List(\"\") = %v", all)
			}
			if err := s.Remove("job1/part-0"); err != nil {
				t.Fatal(err)
			}
			if s.Exists("job1/part-0") {
				t.Error("removed file still exists")
			}
		})
	}
}

func TestStat(t *testing.T) {
	for backend, s := range stores(t) {
		t.Run(backend, func(t *testing.T) {
			WriteAll(s, "f", []string{"ab", "cde", ""})
			recs, bytes, err := s.Stat("f")
			if err != nil {
				t.Fatal(err)
			}
			if recs != 3 || bytes != 5 {
				t.Fatalf("Stat = %d recs, %d bytes; want 3, 5", recs, bytes)
			}
			if _, _, err := s.Stat("missing"); err == nil {
				t.Error("Stat of missing file succeeded")
			}
		})
	}
}

func TestDiskRejectsEscapingPaths(t *testing.T) {
	d, err := NewDisk(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"../evil", "/abs", "a/../../b"} {
		if _, err := d.Create(name); err == nil {
			t.Errorf("Create(%q) succeeded, want error", name)
		}
	}
}

func TestConcurrentDistinctFiles(t *testing.T) {
	for backend, s := range stores(t) {
		t.Run(backend, func(t *testing.T) {
			var wg sync.WaitGroup
			errs := make(chan error, 8)
			for i := 0; i < 8; i++ {
				wg.Add(1)
				go func(i int) {
					defer wg.Done()
					name := fmt.Sprintf("part-%d", i)
					recs := make([]string, 100)
					for j := range recs {
						recs[j] = fmt.Sprintf("%d:%d", i, j)
					}
					if err := WriteAll(s, name, recs); err != nil {
						errs <- err
					}
				}(i)
			}
			wg.Wait()
			close(errs)
			for err := range errs {
				t.Fatal(err)
			}
			for i := 0; i < 8; i++ {
				got, err := ReadAll(s, fmt.Sprintf("part-%d", i))
				if err != nil || len(got) != 100 {
					t.Fatalf("part-%d: %d records, err %v", i, len(got), err)
				}
			}
		})
	}
}

func TestLargeRecordOnDisk(t *testing.T) {
	d, err := NewDisk(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	big := make([]byte, 1<<20)
	for i := range big {
		big[i] = 'a' + byte(i%26)
	}
	if err := WriteAll(d, "big", []string{string(big)}); err != nil {
		t.Fatal(err)
	}
	got, err := ReadAll(d, "big")
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0] != string(big) {
		t.Fatal("large record corrupted")
	}
}
