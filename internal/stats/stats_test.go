package stats

import (
	"math"
	"strings"
	"testing"
)

func TestSummarizeEmpty(t *testing.T) {
	s := Summarize(nil)
	if s.Count != 0 || s.Max != 0 || s.CoV != 0 {
		t.Fatalf("empty summary = %+v", s)
	}
}

func TestSummarizeUniform(t *testing.T) {
	s := Summarize([]int64{10, 10, 10, 10})
	if s.Min != 10 || s.Max != 10 || s.Mean != 10 || s.Stddev != 0 {
		t.Fatalf("uniform summary = %+v", s)
	}
	if s.CoV != 0 || s.MaxOverMean != 1 || s.Gini != 0 {
		t.Fatalf("uniform balance = %+v", s)
	}
}

func TestSummarizeSkewed(t *testing.T) {
	s := Summarize([]int64{0, 0, 0, 100})
	if s.Mean != 25 || s.Max != 100 {
		t.Fatalf("skewed summary = %+v", s)
	}
	if s.MaxOverMean != 4 {
		t.Fatalf("max/mean = %v, want 4", s.MaxOverMean)
	}
	// One holder of everything among 4: Gini = (n-1)/n = 0.75.
	if math.Abs(s.Gini-0.75) > 1e-9 {
		t.Fatalf("gini = %v, want 0.75", s.Gini)
	}
}

func TestGiniOrderInvariant(t *testing.T) {
	a := Summarize([]int64{5, 1, 3, 9}).Gini
	b := Summarize([]int64{9, 5, 3, 1}).Gini
	if math.Abs(a-b) > 1e-12 {
		t.Fatalf("gini depends on order: %v vs %v", a, b)
	}
}

func TestStddev(t *testing.T) {
	s := Summarize([]int64{2, 4, 4, 4, 5, 5, 7, 9})
	if math.Abs(s.Stddev-2) > 1e-9 {
		t.Fatalf("stddev = %v, want 2", s.Stddev)
	}
}

func TestHistogram(t *testing.T) {
	h := Histogram([]int64{1, 2, 4}, 8)
	lines := strings.Split(strings.TrimRight(h, "\n"), "\n")
	if len(lines) != 3 {
		t.Fatalf("histogram lines = %d", len(lines))
	}
	if !strings.Contains(lines[2], "########") {
		t.Fatalf("max bar not full width: %q", lines[2])
	}
	if !strings.Contains(lines[0], "##") || strings.Contains(lines[0], "###") {
		t.Fatalf("scaling wrong: %q", lines[0])
	}
	// Zero width falls back to default, all-zero loads do not divide by 0.
	if Histogram([]int64{0, 0}, 0) == "" {
		t.Fatal("histogram of zeros empty")
	}
}
