// Package stats provides the summary statistics the experiment harness uses
// to quantify reducer load balance (Figure 4's comparison of All-Replicate
// versus All-Matrix) and to render small text histograms of per-reducer
// load.
package stats

import (
	"fmt"
	"math"
	"slices"
	"strings"
)

// Summary describes a load vector.
type Summary struct {
	Count  int
	Min    int64
	Max    int64
	Sum    int64
	Mean   float64
	Stddev float64
	// CoV is the coefficient of variation (stddev/mean); 0 is perfectly
	// balanced.
	CoV float64
	// MaxOverMean is the straggler factor: how much longer the heaviest
	// reducer runs than the average one.
	MaxOverMean float64
	// Gini is the Gini coefficient of the load distribution in [0, 1);
	// 0 is perfect equality.
	Gini float64
}

// Summarize computes the summary of a load vector. An empty vector yields a
// zero Summary.
func Summarize(loads []int64) Summary {
	s := Summary{Count: len(loads)}
	if len(loads) == 0 {
		return s
	}
	s.Min = loads[0]
	for _, v := range loads {
		if v < s.Min {
			s.Min = v
		}
		if v > s.Max {
			s.Max = v
		}
		s.Sum += v
	}
	s.Mean = float64(s.Sum) / float64(len(loads))
	var ss float64
	for _, v := range loads {
		d := float64(v) - s.Mean
		ss += d * d
	}
	s.Stddev = math.Sqrt(ss / float64(len(loads)))
	if s.Mean > 0 {
		s.CoV = s.Stddev / s.Mean
		s.MaxOverMean = float64(s.Max) / s.Mean
	}
	s.Gini = gini(loads)
	return s
}

// gini computes the Gini coefficient of non-negative values.
func gini(loads []int64) float64 {
	n := len(loads)
	if n == 0 {
		return 0
	}
	sorted := make([]int64, n)
	copy(sorted, loads)
	slices.Sort(sorted)
	var cum, weighted float64
	for i, v := range sorted {
		cum += float64(v)
		weighted += float64(v) * float64(i+1)
	}
	if cum == 0 {
		return 0
	}
	return (2*weighted - float64(n+1)*cum) / (float64(n) * cum)
}

// String renders the summary on one line.
func (s Summary) String() string {
	return fmt.Sprintf("n=%d min=%d max=%d mean=%.1f cov=%.2f max/mean=%.2f gini=%.2f",
		s.Count, s.Min, s.Max, s.Mean, s.CoV, s.MaxOverMean, s.Gini)
}

// Histogram renders loads as a fixed-width text bar chart, one bar per
// element, scaled to width characters — the Figure 4 visual.
func Histogram(loads []int64, width int) string {
	if width < 1 {
		width = 40
	}
	var max int64 = 1
	for _, v := range loads {
		if v > max {
			max = v
		}
	}
	var b strings.Builder
	for i, v := range loads {
		bar := int(int64(width) * v / max)
		fmt.Fprintf(&b, "%4d | %-*s %d\n", i, width, strings.Repeat("#", bar), v)
	}
	return b.String()
}
