package lint

import (
	"go/ast"
	"go/constant"
	"strings"

	"intervaljoin/internal/obs/live"
)

// MetricName enforces literal, valid registrations against the live
// telemetry registry. A metric whose name is computed at runtime can't be
// grepped, alerted on, or documented; one that fails Prometheus name
// rules, or skips the module's ij_ namespace, silently corrupts the
// /metrics exposition or collides with someone else's series; and a
// series without help text is unreadable at the scrape. The registry
// itself panics on invalid names — but only on the code path that
// registers, which may be a rarely-exercised flag combination, so the
// rule is enforced statically: every live.Registry registration call
// must pass a constant ij_-prefixed name that live.ValidName accepts,
// constant non-empty help, and (for vectors) constant valid label names.
// The validation calls live.ValidName/ValidLabel directly, so the lint
// can never drift from what the registry accepts at run time.
var MetricName = &Analyzer{
	Name: "metricname",
	Doc: "live.Registry registrations must use constant, valid, ij_-prefixed " +
		"Prometheus metric names with constant help text and constant valid " +
		"label names",
	Run: runMetricName,
}

// registryMethods maps each registration method to whether its trailing
// arguments are label names (the Vec constructors).
var registryMethods = map[string]bool{
	"Counter":    false,
	"Gauge":      false,
	"FloatGauge": false,
	"Hist":       false,
	"Latency":    false,
	"CounterVec": true,
	"GaugeVec":   true,
}

func runMetricName(pass *Pass) {
	// The registry's own package (and its fixtures) exercises invalid
	// names on purpose; everywhere else is a real registration site.
	if strings.Contains(pass.Pkg.Path(), "internal/obs/live") {
		return
	}
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			labeled, ok := registryMethods[sel.Sel.Name]
			if !ok {
				return true
			}
			recv := pass.Info.TypeOf(sel.X)
			if recv == nil || !namedTypeIs(recv, "internal/obs/live", "Registry") {
				return true
			}
			if len(call.Args) < 2 {
				return true // does not type-check anyway
			}
			checkMetricString(pass, call.Args[0], "metric name", func(name string) {
				if !live.ValidName(name) {
					pass.Reportf(call.Args[0].Pos(),
						"%q is not a valid Prometheus metric name", name)
					return
				}
				if !strings.HasPrefix(name, "ij_") {
					pass.Reportf(call.Args[0].Pos(),
						"metric %q must carry the ij_ prefix: this module's series share one namespace", name)
				}
			})
			checkMetricString(pass, call.Args[1], "help text", func(help string) {
				if help == "" {
					pass.Reportf(call.Args[1].Pos(),
						"metric help text must be a non-empty constant")
				}
			})
			if labeled {
				for _, arg := range call.Args[2:] {
					checkMetricString(pass, arg, "label name", func(label string) {
						if !live.ValidLabel(label) {
							pass.Reportf(arg.Pos(),
								"%q is not a valid Prometheus label name", label)
						}
					})
				}
			}
			return true
		})
	}
}

// checkMetricString requires arg to be a compile-time string constant and
// hands its value to check; a non-constant argument is itself the defect.
func checkMetricString(pass *Pass, arg ast.Expr, what string, check func(string)) {
	tv, ok := pass.Info.Types[arg]
	if !ok || tv.Value == nil || tv.Value.Kind() != constant.String {
		pass.Reportf(arg.Pos(),
			"registry %s must be a literal constant, not a runtime value", what)
		return
	}
	check(constant.StringVal(tv.Value))
}
