package lint

import (
	"strings"
)

// //lint:ignore support, in the staticcheck style: a comment of the form
//
//	//lint:ignore analyzer1,analyzer2 reason for the exemption
//
// on the offending line, or on the line immediately above it, suppresses
// matching findings on that line. The analyzer list may be "all". A reason
// is mandatory — an ignore without one does not suppress anything, so every
// exemption in the tree documents why it is sound.

// ignoreDirective is one parsed //lint:ignore comment.
type ignoreDirective struct {
	names  []string
	reason string
}

// matches reports whether the directive suppresses the named analyzer.
func (d ignoreDirective) matches(analyzer string) bool {
	if d.reason == "" {
		return false
	}
	for _, n := range d.names {
		if n == analyzer || n == "all" {
			return true
		}
	}
	return false
}

// parseIgnore parses a comment's text, returning ok=false for comments that
// are not lint:ignore directives.
func parseIgnore(text string) (ignoreDirective, bool) {
	rest, ok := strings.CutPrefix(strings.TrimSpace(text), "//lint:ignore")
	if !ok {
		return ignoreDirective{}, false
	}
	fields := strings.Fields(rest)
	if len(fields) == 0 {
		return ignoreDirective{}, true // malformed: no analyzer list
	}
	return ignoreDirective{
		names:  strings.Split(fields[0], ","),
		reason: strings.Join(fields[1:], " "),
	}, true
}

// filterIgnored drops diagnostics suppressed by //lint:ignore directives in
// the package's files.
func filterIgnored(pkg *Package, diags []Diagnostic) []Diagnostic {
	// Collect directives keyed by file and line.
	type key struct {
		file string
		line int
	}
	directives := make(map[key][]ignoreDirective)
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				d, ok := parseIgnore(c.Text)
				if !ok {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				directives[key{pos.Filename, pos.Line}] = append(directives[key{pos.Filename, pos.Line}], d)
			}
		}
	}
	if len(directives) == 0 {
		return diags
	}
	kept := diags[:0]
	for _, d := range diags {
		suppressed := false
		for _, line := range []int{d.Pos.Line, d.Pos.Line - 1} {
			for _, dir := range directives[key{d.Pos.Filename, line}] {
				if dir.matches(d.Analyzer) {
					suppressed = true
				}
			}
		}
		if !suppressed {
			kept = append(kept, d)
		}
	}
	return kept
}
