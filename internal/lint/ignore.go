package lint

import (
	"fmt"
	"go/token"
	"strings"
)

// //lint:ignore support, in the staticcheck style: a comment of the form
//
//	//lint:ignore analyzer1,analyzer2 reason for the exemption
//
// on the offending line, or on the line immediately above it, suppresses
// matching findings on that line. The analyzer list may be "all". A reason
// is mandatory — an ignore without one does not suppress anything, so every
// exemption in the tree documents why it is sound.

// ignoreDirective is one parsed //lint:ignore comment.
type ignoreDirective struct {
	names  []string
	reason string
}

// matches reports whether the directive suppresses the named analyzer.
func (d ignoreDirective) matches(analyzer string) bool {
	if d.reason == "" {
		return false
	}
	for _, n := range d.names {
		if n == analyzer || n == "all" {
			return true
		}
	}
	return false
}

// parseIgnore parses a comment's text, returning ok=false for comments that
// are not lint:ignore directives.
func parseIgnore(text string) (ignoreDirective, bool) {
	rest, ok := strings.CutPrefix(strings.TrimSpace(text), "//lint:ignore")
	if !ok {
		return ignoreDirective{}, false
	}
	fields := strings.Fields(rest)
	if len(fields) == 0 {
		return ignoreDirective{}, true // malformed: no analyzer list
	}
	return ignoreDirective{
		names:  strings.Split(fields[0], ","),
		reason: strings.Join(fields[1:], " "),
	}, true
}

// directiveSite is one //lint:ignore comment found in a loaded package,
// with a record of whether it suppressed anything during a run.
type directiveSite struct {
	d    ignoreDirective
	pos  token.Position
	used bool
}

// collectDirectives gathers every //lint:ignore comment of the packages.
func collectDirectives(pkgs []*Package) []*directiveSite {
	var sites []*directiveSite
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					d, ok := parseIgnore(c.Text)
					if !ok {
						continue
					}
					sites = append(sites, &directiveSite{d: d, pos: pkg.Fset.Position(c.Pos())})
				}
			}
		}
	}
	return sites
}

// applyIgnores drops diagnostics suppressed by the directives, marking
// each directive that did the suppressing.
func applyIgnores(sites []*directiveSite, diags []Diagnostic) []Diagnostic {
	if len(sites) == 0 {
		return diags
	}
	type key struct {
		file string
		line int
	}
	index := make(map[key][]*directiveSite, len(sites))
	for _, s := range sites {
		k := key{s.pos.Filename, s.pos.Line}
		index[k] = append(index[k], s)
	}
	kept := diags[:0]
	for _, d := range diags {
		suppressed := false
		for _, line := range []int{d.Pos.Line, d.Pos.Line - 1} {
			for _, s := range index[key{d.Pos.Filename, line}] {
				if s.d.matches(d.Analyzer) {
					s.used = true
					suppressed = true
				}
			}
		}
		if !suppressed {
			kept = append(kept, d)
		}
	}
	return kept
}

// unusedIgnores reports directives that suppressed nothing, in the
// staticcheck style, so burned-down suppressions cannot rot in the tree.
// A directive is only judged when the run can actually judge it: every
// analyzer it names must have been in the run set ("all" requires the
// full set), otherwise the suppressed finding may simply not have been
// looked for. Malformed directives — an unknown analyzer name, or a
// missing reason, which the matcher never honors — are always findings.
func unusedIgnores(sites []*directiveSite, ran []*Analyzer) []Diagnostic {
	ranSet := make(map[string]bool, len(ran))
	for _, a := range ran {
		ranSet[a.Name] = true
	}
	fullSet := true
	for _, a := range All() {
		if !ranSet[a.Name] {
			fullSet = false
			break
		}
	}
	var diags []Diagnostic
	report := func(s *directiveSite, format string, args ...any) {
		diags = append(diags, Diagnostic{
			Pos:      s.pos,
			Analyzer: "unusedignore",
			Message:  fmt.Sprintf(format, args...),
		})
	}
	for _, s := range sites {
		if s.used {
			continue
		}
		if len(s.d.names) == 0 {
			report(s, "//lint:ignore directive has no analyzer list; it suppresses nothing")
			continue
		}
		if s.d.reason == "" {
			report(s, "//lint:ignore directive has no reason; it suppresses nothing")
			continue
		}
		judgeable := true
		for _, n := range s.d.names {
			if n == "all" {
				if !fullSet {
					judgeable = false
				}
				continue
			}
			if ByName(n) == nil {
				report(s, "//lint:ignore names unknown analyzer %q", n)
				judgeable = false
				break
			}
			if !ranSet[n] {
				judgeable = false
			}
		}
		if judgeable {
			report(s, "//lint:ignore %s suppresses no finding; remove the stale directive", strings.Join(s.d.names, ","))
		}
	}
	return diags
}
