package lint

import (
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"

	"intervaljoin/internal/lint/flow"
)

// EmitterEscape enforces the mr.Emitter contract: an emitter handed to a
// MapFunc or combiner writes into the engine's per-attempt buffer, so it is
// only valid for the duration of that call on that goroutine. Storing it in
// a struct or global, sending it on a channel, returning it, or handing it
// to a spawned goroutine lets emissions race the engine's attempt lifecycle
// (retried attempts discard the buffer the escaped emitter still points
// at). The check is interprocedural: passing the emitter into a function
// whose own parameter escapes — directly or through further calls — is
// flagged at the call site. The analyzer also flags EmitRange calls whose
// constant bounds are provably inverted (lo > hi): such a call silently
// emits nothing.
var EmitterEscape = &Analyzer{
	Name: "emitterescape",
	Doc: "an mr.Emitter must not outlive the map/combine call it was passed " +
		"to, even through helper calls, and EmitRange constant bounds must " +
		"not be inverted",
	Run: runEmitterEscape,
}

func isEmitterType(t types.Type) bool {
	return namedTypeIs(t, "internal/mr", "Emitter")
}

func runEmitterEscape(pass *Pass) {
	esc := emitterEscapes(pass.Flow)
	for _, file := range pass.Files {
		// Escape checks run per function that receives an Emitter parameter.
		ast.Inspect(file, func(n ast.Node) bool {
			var ftype *ast.FuncType
			var body *ast.BlockStmt
			switch d := n.(type) {
			case *ast.FuncDecl:
				ftype, body = d.Type, d.Body
			case *ast.FuncLit:
				ftype, body = d.Type, d.Body
			default:
				return true
			}
			if body == nil || ftype.Params == nil {
				return true
			}
			for _, field := range ftype.Params.List {
				for _, name := range field.Names {
					obj := pass.Info.Defs[name]
					if obj == nil || !isEmitterType(obj.Type()) {
						continue
					}
					objs := emitterAliases(pass.Info, body, obj)
					walkEmitterEscapes(pass.Info, pass.Pkg.Scope(), body, objs, pass.Reportf)
				}
			}
			return true
		})

		// Interprocedural check: an emitter handed to a callee whose
		// parameter escapes is as gone as one stored directly.
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			for _, m := range pass.Flow.Callees(pass.Unit, call) {
				for i := range esc.params[m] {
					if i >= len(call.Args) || !isEmitterType(pass.Info.TypeOf(call.Args[i])) {
						continue
					}
					pass.Reportf(call.Args[i].Pos(),
						"mr.Emitter passed to %s, which lets it escape; it must not outlive the map/combine call", m.String())
				}
			}
			return true
		})

		// Constant-bound checks run over every EmitRange call site.
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok || sel.Sel.Name != "EmitRange" || len(call.Args) < 2 {
				return true
			}
			recv := pass.Info.TypeOf(sel.X)
			if recv == nil || !isEmitterType(recv) {
				return true
			}
			lo := pass.Info.Types[call.Args[0]].Value
			hi := pass.Info.Types[call.Args[1]].Value
			if lo != nil && hi != nil && constant.Compare(lo, token.GTR, hi) {
				pass.Reportf(call.Pos(),
					"EmitRange bounds are constants with lo (%s) > hi (%s): the call emits nothing", lo, hi)
			}
			return true
		})
	}
}

// emitterEscapeInfo records, per function, which Emitter-typed parameters
// escape — directly in the body, or transitively by being handed to
// another escaping parameter.
type emitterEscapeInfo struct {
	params map[*flow.Node]map[int]bool
}

func (e *emitterEscapeInfo) mark(n *flow.Node, i int) bool {
	if e.params[n] == nil {
		e.params[n] = make(map[int]bool)
	}
	if e.params[n][i] {
		return false
	}
	e.params[n][i] = true
	return true
}

// emitterEscapes computes the module-wide escaping-parameter summary once
// per graph.
func emitterEscapes(g *flow.Graph) *emitterEscapeInfo {
	return g.Memo("emitterescape", func() any {
		info := &emitterEscapeInfo{params: make(map[*flow.Node]map[int]bool)}
		aliases := make(map[*flow.Node]map[int]map[types.Object]bool)
		for _, n := range g.Nodes() {
			sig := n.Signature()
			if sig == nil || n.Body == nil {
				continue
			}
			for i := 0; i < sig.Params().Len(); i++ {
				p := sig.Params().At(i)
				if !isEmitterType(p.Type()) {
					continue
				}
				objs := emitterAliases(n.Unit.Info, n.Body, p)
				if aliases[n] == nil {
					aliases[n] = make(map[int]map[types.Object]bool)
				}
				aliases[n][i] = objs
				escaped := false
				walkEmitterEscapes(n.Unit.Info, n.Unit.Pkg.Scope(), n.Body, objs,
					func(token.Pos, string, ...any) { escaped = true })
				if escaped {
					info.mark(n, i)
				}
			}
		}
		// Transitive closure: a parameter handed to an escaping parameter
		// escapes too. Function-literal bodies are their own nodes and are
		// skipped here; a literal capturing the parameter is caught by the
		// direct goroutine/store checks instead.
		for changed := true; changed; {
			changed = false
			for n, ps := range aliases {
				for i, objs := range ps {
					if info.params[n][i] {
						continue
					}
					found := false
					summaryWalk(n.Body, func(c ast.Node) bool {
						if found {
							return false
						}
						call, ok := c.(*ast.CallExpr)
						if !ok {
							return true
						}
						for _, m := range g.Callees(n.Unit, call) {
							for j := range info.params[m] {
								if j < len(call.Args) && mentionsAnyObject(n.Unit.Info, call.Args[j], objs) {
									found = true
								}
							}
						}
						return true
					})
					if found && info.mark(n, i) {
						changed = true
					}
				}
			}
		}
		return info
	}).(*emitterEscapeInfo)
}

func mentionsAnyObject(info *types.Info, n ast.Node, objs map[types.Object]bool) bool {
	for obj := range objs {
		if usesObject(info, n, obj) {
			return true
		}
	}
	return false
}

// emitterAliases collects the parameter and its local aliases (x := emit),
// a forward fixpoint over the body: aliases of aliases in later statements
// are found on the next round.
func emitterAliases(info *types.Info, body *ast.BlockStmt, param types.Object) map[types.Object]bool {
	objs := map[types.Object]bool{param: true}
	for changed := true; changed; {
		changed = false
		ast.Inspect(body, func(n ast.Node) bool {
			as, ok := n.(*ast.AssignStmt)
			if !ok || len(as.Lhs) != len(as.Rhs) {
				return true
			}
			for i, rhs := range as.Rhs {
				id, ok := rhs.(*ast.Ident)
				if !ok || !objs[info.Uses[id]] {
					continue
				}
				if lid, ok := as.Lhs[i].(*ast.Ident); ok {
					if obj := info.Defs[lid]; obj != nil && !objs[obj] {
						objs[obj] = true
						changed = true
					}
				}
			}
			return true
		})
	}
	return objs
}

// walkEmitterEscapes walks one function body looking for ways the emitter
// object (or a local alias of it) can outlive the call, reporting each
// escape through report.
func walkEmitterEscapes(info *types.Info, pkgScope *types.Scope, body *ast.BlockStmt, objs map[types.Object]bool, report func(pos token.Pos, format string, args ...any)) {
	mentions := func(n ast.Node) bool {
		return mentionsAnyObject(info, n, objs)
	}
	ast.Inspect(body, func(n ast.Node) bool {
		switch s := n.(type) {
		case *ast.AssignStmt:
			for i, rhs := range s.Rhs {
				if i >= len(s.Lhs) || !mentions(rhs) {
					continue
				}
				switch lhs := s.Lhs[i].(type) {
				case *ast.SelectorExpr:
					report(s.Pos(), "mr.Emitter stored in a struct field or package variable; it must not outlive the map/combine call")
				case *ast.IndexExpr:
					report(s.Pos(), "mr.Emitter stored in a slice or map element; it must not outlive the map/combine call")
				case *ast.Ident:
					if obj := info.Uses[lhs]; obj != nil {
						if v, ok := obj.(*types.Var); ok && v.Parent() == pkgScope {
							report(s.Pos(), "mr.Emitter stored in package variable %s; it must not outlive the map/combine call", lhs.Name)
						}
					}
				}
			}
		case *ast.SendStmt:
			if mentions(s.Value) {
				report(s.Pos(), "mr.Emitter sent on a channel; it must not outlive the map/combine call")
			}
		case *ast.ReturnStmt:
			for _, res := range s.Results {
				if mentions(res) {
					report(s.Pos(), "mr.Emitter returned from the function it was passed to; it must not outlive the call")
				}
			}
		case *ast.GoStmt:
			if mentions(s.Call) {
				report(s.Pos(), "mr.Emitter used by a spawned goroutine; emissions would race the engine's attempt lifecycle")
				return false // already reported: skip the literal's body
			}
		case *ast.CompositeLit:
			typ := info.TypeOf(s)
			if typ != nil && isEmitterType(typ) {
				return true // constructing an Emitter is not an escape
			}
			for _, elt := range s.Elts {
				val := elt
				if kv, ok := elt.(*ast.KeyValueExpr); ok {
					val = kv.Value
				}
				if mentions(val) {
					report(elt.Pos(), "mr.Emitter stored in a composite literal; it must not outlive the map/combine call")
				}
			}
		}
		return true
	})
}
