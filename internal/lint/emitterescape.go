package lint

import (
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
)

// EmitterEscape enforces the mr.Emitter contract: an emitter handed to a
// MapFunc or combiner writes into the engine's per-attempt buffer, so it is
// only valid for the duration of that call on that goroutine. Storing it in
// a struct or global, sending it on a channel, returning it, or handing it
// to a spawned goroutine lets emissions race the engine's attempt lifecycle
// (retried attempts discard the buffer the escaped emitter still points
// at). The analyzer also flags EmitRange calls whose constant bounds are
// provably inverted (lo > hi): such a call silently emits nothing.
var EmitterEscape = &Analyzer{
	Name: "emitterescape",
	Doc: "an mr.Emitter must not outlive the map/combine call it was passed " +
		"to, and EmitRange constant bounds must not be inverted",
	Run: runEmitterEscape,
}

func runEmitterEscape(pass *Pass) {
	for _, file := range pass.Files {
		// Escape checks run per function that receives an Emitter parameter.
		ast.Inspect(file, func(n ast.Node) bool {
			var ftype *ast.FuncType
			var body *ast.BlockStmt
			switch d := n.(type) {
			case *ast.FuncDecl:
				ftype, body = d.Type, d.Body
			case *ast.FuncLit:
				ftype, body = d.Type, d.Body
			default:
				return true
			}
			if body == nil || ftype.Params == nil {
				return true
			}
			for _, field := range ftype.Params.List {
				for _, name := range field.Names {
					obj := pass.Info.Defs[name]
					if obj == nil || !namedTypeIs(obj.Type(), "internal/mr", "Emitter") {
						continue
					}
					checkEmitterEscapes(pass, body, obj)
				}
			}
			return true
		})

		// Constant-bound checks run over every EmitRange call site.
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok || sel.Sel.Name != "EmitRange" || len(call.Args) < 2 {
				return true
			}
			recv := pass.Info.TypeOf(sel.X)
			if recv == nil || !namedTypeIs(recv, "internal/mr", "Emitter") {
				return true
			}
			lo := pass.Info.Types[call.Args[0]].Value
			hi := pass.Info.Types[call.Args[1]].Value
			if lo != nil && hi != nil && constant.Compare(lo, token.GTR, hi) {
				pass.Reportf(call.Pos(),
					"EmitRange bounds are constants with lo (%s) > hi (%s): the call emits nothing", lo, hi)
			}
			return true
		})
	}
}

// checkEmitterEscapes walks one function body looking for ways the emitter
// object (or a local alias of it) can outlive the call.
func checkEmitterEscapes(pass *Pass, body *ast.BlockStmt, param types.Object) {
	objs := map[types.Object]bool{param: true}
	// Collect local aliases first (x := emit), a forward fixpoint over the
	// body: aliases of aliases in later statements are found on the next
	// round.
	for changed := true; changed; {
		changed = false
		ast.Inspect(body, func(n ast.Node) bool {
			as, ok := n.(*ast.AssignStmt)
			if !ok || len(as.Lhs) != len(as.Rhs) {
				return true
			}
			for i, rhs := range as.Rhs {
				id, ok := rhs.(*ast.Ident)
				if !ok || !objs[pass.Info.Uses[id]] {
					continue
				}
				if lid, ok := as.Lhs[i].(*ast.Ident); ok {
					if obj := pass.Info.Defs[lid]; obj != nil && !objs[obj] {
						objs[obj] = true
						changed = true
					}
				}
			}
			return true
		})
	}
	mentions := func(n ast.Node) bool {
		for obj := range objs {
			if usesObject(pass.Info, n, obj) {
				return true
			}
		}
		return false
	}
	ast.Inspect(body, func(n ast.Node) bool {
		switch s := n.(type) {
		case *ast.AssignStmt:
			for i, rhs := range s.Rhs {
				if i >= len(s.Lhs) || !mentions(rhs) {
					continue
				}
				switch lhs := s.Lhs[i].(type) {
				case *ast.SelectorExpr:
					pass.Reportf(s.Pos(), "mr.Emitter stored in a struct field or package variable; it must not outlive the map/combine call")
				case *ast.IndexExpr:
					pass.Reportf(s.Pos(), "mr.Emitter stored in a slice or map element; it must not outlive the map/combine call")
				case *ast.Ident:
					if obj := pass.Info.Uses[lhs]; obj != nil {
						if v, ok := obj.(*types.Var); ok && v.Parent() == pass.Pkg.Scope() {
							pass.Reportf(s.Pos(), "mr.Emitter stored in package variable %s; it must not outlive the map/combine call", lhs.Name)
						}
					}
				}
			}
		case *ast.SendStmt:
			if mentions(s.Value) {
				pass.Reportf(s.Pos(), "mr.Emitter sent on a channel; it must not outlive the map/combine call")
			}
		case *ast.ReturnStmt:
			for _, res := range s.Results {
				if mentions(res) {
					pass.Reportf(s.Pos(), "mr.Emitter returned from the function it was passed to; it must not outlive the call")
				}
			}
		case *ast.GoStmt:
			if mentions(s.Call) {
				pass.Reportf(s.Pos(), "mr.Emitter used by a spawned goroutine; emissions would race the engine's attempt lifecycle")
				return false // already reported: skip the literal's body
			}
		case *ast.CompositeLit:
			typ := pass.Info.TypeOf(s)
			if typ != nil && namedTypeIs(typ, "internal/mr", "Emitter") {
				return true // constructing an Emitter is not an escape
			}
			for _, elt := range s.Elts {
				val := elt
				if kv, ok := elt.(*ast.KeyValueExpr); ok {
					val = kv.Value
				}
				if mentions(val) {
					pass.Reportf(elt.Pos(), "mr.Emitter stored in a composite literal; it must not outlive the map/combine call")
				}
			}
		}
		return true
	})
}
