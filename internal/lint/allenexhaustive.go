package lint

import (
	"go/ast"
	"go/constant"
	"strings"
)

// AllenExhaustive enforces the Figure-1 contract of the paper: any switch
// over interval.Predicate must either cover all 13 Allen relations or carry
// an explicit panicking default. A silently-falling-through predicate
// switch is how a new driver quietly mishandles a relation class — the
// compiler cannot see it, this analyzer can.
var AllenExhaustive = &Analyzer{
	Name: "allenexhaustive",
	Doc: "switches over interval.Predicate must cover all 13 Allen relations " +
		"or carry a panicking default",
	Run: runAllenExhaustive,
}

// allenNames mirrors interval.predicateNames (index = Predicate value).
// NumPredicates is 13 by Allen's algebra; a mismatch with the interval
// package would be caught by the analyzer's own fixture suite.
var allenNames = [13]string{
	"before", "after", "meets", "metby", "overlaps", "overlappedby",
	"contains", "containedby", "starts", "startedby", "finishes",
	"finishedby", "equals",
}

func runAllenExhaustive(pass *Pass) {
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			sw, ok := n.(*ast.SwitchStmt)
			if !ok || sw.Tag == nil {
				return true
			}
			tagType := pass.Info.TypeOf(sw.Tag)
			if tagType == nil || !namedTypeIs(tagType, "internal/interval", "Predicate") {
				return true
			}
			covered := make(map[int64]bool)
			nonConst := false
			var defaultClause *ast.CaseClause
			for _, stmt := range sw.Body.List {
				cc, ok := stmt.(*ast.CaseClause)
				if !ok {
					continue
				}
				if cc.List == nil {
					defaultClause = cc
					continue
				}
				for _, expr := range cc.List {
					tv := pass.Info.Types[expr]
					if tv.Value == nil || tv.Value.Kind() != constant.Int {
						nonConst = true
						continue
					}
					if v, ok := constant.Int64Val(tv.Value); ok {
						covered[v] = true
					}
				}
			}
			if nonConst {
				// Case guards computed at run time (e.g. p.Inverse()) defeat
				// static counting; stay silent rather than guess.
				return true
			}
			if len(covered) >= len(allenNames) {
				return true
			}
			if defaultClause != nil {
				if clausePanics(pass, defaultClause) {
					return true
				}
				pass.Reportf(sw.Switch,
					"switch on interval.Predicate covers %d of 13 Allen relations and its default does not panic (missing: %s)",
					len(covered), missingAllen(covered))
				return true
			}
			pass.Reportf(sw.Switch,
				"switch on interval.Predicate covers %d of 13 Allen relations and has no default (missing: %s); add the missing cases or a panicking default",
				len(covered), missingAllen(covered))
			return true
		})
	}
}

// clausePanics reports whether the case clause's body reaches a call to the
// panic builtin (anywhere in the clause, including nested blocks).
func clausePanics(pass *Pass, cc *ast.CaseClause) bool {
	panics := false
	for _, stmt := range cc.Body {
		ast.Inspect(stmt, func(n ast.Node) bool {
			if call, ok := n.(*ast.CallExpr); ok && isBuiltin(pass.Info, call, "panic") {
				panics = true
			}
			return !panics
		})
	}
	return panics
}

// missingAllen lists the uncovered relation names.
func missingAllen(covered map[int64]bool) string {
	var missing []string
	for i, name := range allenNames {
		if !covered[int64(i)] {
			missing = append(missing, name)
		}
	}
	return strings.Join(missing, ", ")
}
