package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// TimeNowLoop bans raw clock reads inside per-pair inner loops of the
// hot-path packages. The engine's phase timing reads the clock once per
// task (loop depth 1: the per-batch/per-key loops) — that is allowed. A
// time.Now() or time.Since() at syntactic for-nesting depth >= 2 sits in a
// per-pair loop (per value, per emission, per join candidate) where a
// clock read per iteration dwarfs the work being timed; such timing
// belongs in the obs tracer's per-task spans instead. The depth is counted
// per innermost function: a closure's body starts again at depth 0,
// because the closure itself is the unit handed to the engine.
var TimeNowLoop = &Analyzer{
	Name: "timenowloop",
	Doc: "raw time.Now()/time.Since() inside per-pair inner loops (for-nesting " +
		"depth >= 2) of internal/core and internal/mr; use per-task spans instead",
	Run: runTimeNowLoop,
}

// innerLoopDepth is the for-nesting depth at which a clock read counts as
// per-pair.
const innerLoopDepth = 2

func runTimeNowLoop(pass *Pass) {
	inScope := false
	for _, s := range HotPathScope {
		if strings.Contains(pass.Pkg.Path(), s) {
			inScope = true
			break
		}
	}
	if !inScope {
		return
	}
	for _, file := range pass.Files {
		enclosingFuncs(file, func(body *ast.BlockStmt) {
			scanClockReads(pass, body)
		})
	}
}

// scanClockReads walks one function body tracking for-loop nesting via a
// stack of enclosing loop End positions (ast.Inspect is pre-order, so a
// node past the top loop's End has left that loop). Nested function
// literals are skipped: enclosingFuncs hands each body over separately,
// resetting the depth.
func scanClockReads(pass *Pass, body *ast.BlockStmt) {
	var ends []token.Pos
	ast.Inspect(body, func(n ast.Node) bool {
		if n == nil {
			return true
		}
		for len(ends) > 0 && n.Pos() >= ends[len(ends)-1] {
			ends = ends[:len(ends)-1]
		}
		switch s := n.(type) {
		case *ast.FuncLit:
			return false // its own body is scanned separately, depth reset
		case *ast.ForStmt:
			ends = append(ends, s.End())
		case *ast.RangeStmt:
			ends = append(ends, s.End())
		case *ast.CallExpr:
			if len(ends) >= innerLoopDepth {
				if name, ok := timeClockRead(pass.Info, s); ok {
					pass.Reportf(s.Pos(),
						"time.%s in a per-pair inner loop (for-nesting depth %d); time the task once and use the tracer's spans",
						name, len(ends))
				}
			}
		}
		return true
	})
}

// timeClockRead reports whether the call reads the wall clock via the time
// package (Now or Since), resolving through the type info so a local
// identifier named "time" is not mistaken for the package.
func timeClockRead(info *types.Info, call *ast.CallExpr) (string, bool) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return "", false
	}
	fn, ok := info.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "time" {
		return "", false
	}
	if fn.Name() == "Now" || fn.Name() == "Since" {
		return fn.Name(), true
	}
	return "", false
}
