package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// ColKernel keeps the columnar reduce kernels columnar. The specialized
// inner loops of internal/core (the kernel* functions dispatched per Allen
// family) exist to scan the struct-of-arrays endpoint columns with nothing
// but int64 compares; materialising a relation.Tuple or chasing a map
// bucket inside them reintroduces exactly the per-pair pointer traffic the
// layout removed. Tuple materialisation belongs at the assignment leaf, and
// any map-keyed state must be hoisted to plan/seal time.
var ColKernel = &Analyzer{
	Name: "colkernel",
	Doc: "relation.Tuple field/method access or map lookups inside the columnar " +
		"reduce kernels (kernel* functions) of internal/core; scan the " +
		"struct-of-arrays columns and hoist lookups to seal time",
	Run: runColKernel,
}

func runColKernel(pass *Pass) {
	if !strings.Contains(pass.Pkg.Path(), "internal/core") {
		return
	}
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil || !strings.HasPrefix(fd.Name.Name, "kernel") {
				continue
			}
			scanKernelBody(pass, fd)
		}
	}
}

// scanKernelBody flags, anywhere in one kernel function (closures
// included — they run per iteration too), selector expressions whose
// receiver is a relation.Tuple and index expressions over a map.
func scanKernelBody(pass *Pass, fd *ast.FuncDecl) {
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch e := n.(type) {
		case *ast.SelectorExpr:
			if t := pass.Info.TypeOf(e.X); t != nil && namedTypeIs(t, "internal/relation", "Tuple") {
				pass.Reportf(e.Sel.Pos(),
					"relation.Tuple access in columnar kernel %s; read the arena's struct-of-arrays columns instead",
					fd.Name.Name)
			}
		case *ast.IndexExpr:
			if t := pass.Info.TypeOf(e.X); t != nil {
				if _, ok := t.Underlying().(*types.Map); ok {
					pass.Reportf(e.Pos(),
						"map lookup in columnar kernel %s; hoist the lookup out of the specialized loop",
						fd.Name.Name)
				}
			}
		}
		return true
	})
}
