// Package fixture exercises the partitionbounds analyzer: the
// partitioning constructors validate their boundary arguments and report
// violations through the error result, so every call site must check it.
package fixture

import "intervaljoin/internal/interval"

// checkedCall handles the error: allowed — this is the required shape.
func checkedCall() interval.Partitioning {
	p, err := interval.MakeUniform(0, 100, 4)
	if err != nil {
		panic(err)
	}
	return p
}

// propagated returns the pair unchanged: allowed, the caller checks.
func propagated(bounds []int64) (interval.Partitioning, error) {
	return interval.NewExplicit(bounds)
}

// discarded drops both results on the floor: flagged.
func discarded() {
	interval.MakeUniform(0, 100, 4) // want `result of interval\.MakeUniform discarded`
}

// blankedError keeps the partitioning but blanks the error: flagged.
func blankedError(sample []int64) interval.Partitioning {
	p, _ := interval.NewEquiDepth(0, 100, 4, sample) // want `error from interval\.NewEquiDepth blanked`
	return p
}

// doubleBlank blanks everything: flagged on the error slot.
func doubleBlank(bounds []int64) {
	_, _ = interval.NewExplicit(bounds) // want `error from interval\.NewExplicit blanked`
}

// suppressed demonstrates the escape hatch; the reason is mandatory.
func suppressed() {
	//lint:ignore partitionbounds fixture demonstrates the annotated escape hatch
	interval.MakeUniform(0, 100, 4)
}

// lookalike is an unrelated MakeUniform on a local type: not flagged, the
// analyzer resolves the callee to the interval package through type info.
type lookalike struct{}

func (lookalike) MakeUniform(t0, tn int64, n int) {}

func notTheCtor() {
	var l lookalike
	l.MakeUniform(0, 100, 4)
}

// panicVariant is the unchecked-by-design constructor: not the analyzer's
// target, it has no error result.
func panicVariant() interval.Partitioning {
	return interval.NewUniform(0, 100, 4)
}

var _ = []any{checkedCall, propagated, discarded, blankedError, doubleBlank,
	suppressed, notTheCtor, panicVariant}
