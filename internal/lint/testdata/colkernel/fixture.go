// Package fixture exercises the colkernel analyzer. The harness loads it
// under an import path inside internal/core, which puts it in scope; a
// second load under a neutral path checks the scoping.
package fixture

import (
	"intervaljoin/internal/relation"
)

type prepared struct {
	lo, hi []int64
	refs   []int32
	tuples []relation.Tuple
	cats   map[int64]int
	arena  relation.Arena
}

// kernelTupleAccess materialises tuples per iteration: flagged on both the
// field read and the method call.
func (p *prepared) kernelTupleAccess(from int, sHi int64) int64 {
	var n int64
	for k := from; k < len(p.tuples); k++ {
		t := p.tuples[k]
		if t.Attrs[0].Start > sHi { // want `relation\.Tuple access in columnar kernel kernelTupleAccess`
			break
		}
		n += t.ID       // want `relation\.Tuple access in columnar kernel kernelTupleAccess`
		_ = t.Key().End // want `relation\.Tuple access in columnar kernel kernelTupleAccess`
	}
	return n
}

// kernelMapLookup chases a map bucket per candidate: flagged.
func (p *prepared) kernelMapLookup(from int) int {
	n := 0
	for k := from; k < len(p.lo); k++ {
		n += p.cats[p.lo[k]] // want `map lookup in columnar kernel kernelMapLookup`
	}
	return n
}

// kernelClosure hides the access inside a literal; still per-iteration,
// still flagged.
func (p *prepared) kernelClosure(from int) int64 {
	var n int64
	score := func(t relation.Tuple) int64 { return t.ID } // want `relation\.Tuple access in columnar kernel kernelClosure`
	for k := from; k < len(p.tuples); k++ {
		n += score(p.tuples[k])
	}
	return n
}

// kernelColumnar is the shape the analyzer demands: pure column scans.
func (p *prepared) kernelColumnar(from int, sHi, eLo, eHi int64) int {
	n := 0
	for k := from; k < len(p.lo) && p.lo[k] <= sHi; k++ {
		if e := p.hi[k]; e < eLo || e > eHi {
			continue
		}
		n += int(p.refs[k])
	}
	return n
}

// kernelSuppressed demonstrates the annotated escape hatch.
func (p *prepared) kernelSuppressed(ref int32) int64 {
	//lint:ignore colkernel fixture demonstrates the annotated escape hatch
	return p.arena.Tuple(ref).ID
}

// materialize is not a kernel: tuple access at the assignment leaf is the
// intended place for it, so the analyzer stays silent here.
func materialize(a *relation.Arena, ref int32) int64 {
	t := a.Tuple(ref)
	return t.ID + (t.Attrs[0].End - t.Attrs[0].Start)
}
