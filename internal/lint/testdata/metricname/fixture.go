// Fixture for the metricname analyzer: registrations against the live
// telemetry registry need constant, valid, ij_-prefixed names, constant
// help, and constant valid label names.
package fixture

import "intervaljoin/internal/obs/live"

const (
	goodName = "ij_fixture_rows_total"
	goodHelp = "rows processed by the fixture"
)

func register(r *live.Registry, runtimeName, runtimeLabel string) {
	r.Counter("ij_requests_total", "requests served")
	r.Counter(goodName, goodHelp) // named constants are constants too
	r.Gauge("ij_inflight", "queries in flight")
	r.FloatGauge("ij_hit_ratio", "cache hit ratio")
	r.Hist("ij_rows", "rows per answer")
	r.Latency("ij_latency_seconds", "query latency")
	r.CounterVec("ij_codes_total", "requests by status", "code")

	r.Counter("bad name", "spaces are not allowed")     // want `not a valid Prometheus metric name`
	r.Gauge("2ij_leading_digit", "starts with a digit") // want `not a valid Prometheus metric name`
	r.Counter("requests_total", "missing namespace")    // want `must carry the ij_ prefix`
	r.Counter(runtimeName, "computed at runtime")       // want `must be a literal constant`
	r.Hist("ij_unhelpful", "")                          // want `non-empty constant`
	r.Latency("ij_lat_"+runtimeName, "concatenated")    // want `must be a literal constant`

	r.CounterVec("ij_vec_total", "labelled series", "le!") // want `not a valid Prometheus label name`
	r.GaugeVec("ij_gvec", "labelled gauge", runtimeLabel)  // want `must be a literal constant`
}

// Methods named like registrations on unrelated types stay out of scope.
type notRegistry struct{}

func (notRegistry) Counter(name, help string) {}

func otherReceiver(n notRegistry, dyn string) {
	n.Counter(dyn, "")
}
