// Package goroutineleak exercises the provable-join analyzer: every go
// statement must be joined by a WaitGroup, a channel handoff the spawner
// completes, or a bounding context.
package goroutineleak

import (
	"context"
	"sync"
)

func work() {}

// leakPlain spawns a goroutine with no join at all.
func leakPlain() {
	go work() // want `goroutine has no provable join: use a WaitGroup, a channel handoff, or a bounding context`
}

// joinedWG is the canonical Add/Done/Wait balance.
func joinedWG() {
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		work()
	}()
	wg.Wait()
}

// missingWait calls Done but the spawner never waits.
func missingWait() {
	var wg sync.WaitGroup
	wg.Add(1)
	go func() { // want `goroutine calls Done but no Wait on the same WaitGroup is reachable after the go statement`
		defer wg.Done()
		work()
	}()
}

// missingAdd waits, but no Add reaches the go statement, so Wait may
// return before the goroutine even starts.
func missingAdd() {
	var wg sync.WaitGroup
	go func() { // want `goroutine joins a WaitGroup but no Add on it reaches the go statement`
		defer wg.Done()
		work()
	}()
	wg.Wait()
}

// joinedChan hands its result off on a channel the spawner drains.
func joinedChan() int {
	ch := make(chan int)
	go func() { ch <- 1 }()
	return <-ch
}

// chanNoRecv sends on a channel nobody ever receives from.
func chanNoRecv() {
	ch := make(chan int, 1)
	go func() { ch <- 1 }() // want `goroutine uses a channel but the spawner never completes the handoff after the go statement`
}

// rangeWorker drains a channel the spawner closes after feeding it: the
// close completes the handoff.
func rangeWorker() {
	ch := make(chan int)
	go func() {
		for range ch {
			work()
		}
	}()
	ch <- 1
	close(ch)
}

// ctxBound is bounded by context cancellation.
func ctxBound(ctx context.Context) {
	go func() {
		<-ctx.Done()
	}()
}

func worker(wg *sync.WaitGroup) {
	defer wg.Done()
	work()
}

// joinedCrossFunc proves the join through worker's summary: the Done on
// the parameter maps back to the spawner's WaitGroup.
func joinedCrossFunc() {
	var wg sync.WaitGroup
	wg.Add(1)
	go worker(&wg)
	wg.Wait()
}

func pseudoWorker(wg *sync.WaitGroup) {
	wg.Add(1) // adds, never signals completion
}

// leakCrossFunc looks joined but the helper never calls Done.
func leakCrossFunc() {
	var wg sync.WaitGroup
	go pseudoWorker(&wg) // want `goroutine has no provable join: use a WaitGroup, a channel handoff, or a bounding context`
	wg.Wait()
}

// spawnArg spawns a function value the analysis cannot resolve: nothing
// in the module flows into f.
func spawnArg(f func()) {
	go f() // want `goroutine spawns a function outside the analysis scope; no join can be proven`
}

var _ = []any{leakPlain, joinedWG, missingWait, missingAdd, joinedChan,
	chanNoRecv, rangeWorker, ctxBound, joinedCrossFunc, leakCrossFunc, spawnArg}
