// Fixture for the cachekey analyzer: cache.Key literals in the cache's
// packages must set Plan, Family and Versions.
package fixture

import "intervaljoin/internal/cache"

func buildKeys(plan, family, versions string) []cache.Key {
	complete := cache.Key{Plan: plan, Family: family, Versions: versions}
	positional := cache.Key{plan, family, versions}
	noVersions := cache.Key{Plan: plan, Family: family}   // want `omits Versions`
	noFamily := cache.Key{Plan: plan, Versions: versions} // want `omits Family`
	planOnly := cache.Key{Plan: plan}                     // want `omits Family, Versions`
	zero := cache.Key{}                                   // want `omits Plan, Family, Versions`
	return []cache.Key{complete, positional, noVersions, noFamily, planOnly, zero}
}

func lookupByKey(c *cache.Cache, plan, family, versions string) {
	// Keys used for lookups under-specify just as dangerously as inserts.
	c.Lookup(cache.Key{Plan: plan, Family: family}, cache.Window{Lo: 0, Hi: 10}) // want `omits Versions`
	c.Lookup(cache.Key{Plan: plan, Family: family, Versions: versions}, cache.Window{Lo: 0, Hi: 10})
}
