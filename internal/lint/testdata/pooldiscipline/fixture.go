// Package fixture exercises the pooldiscipline analyzer: Gets need a
// matching Put or a visible hand-off, no use-after-Put, and pooled slices
// are length-reset at Put.
package fixture

import "sync"

var bufPool = sync.Pool{New: func() any { return make([]byte, 0, 64) }}

// sink keeps the compiler honest about values the fixtures retain.
var sink []byte

// leak Gets and never Puts or hands off: flagged at the Get.
func leak() {
	b := bufPool.Get().([]byte) // want `bufPool\.Get without a matching Put or hand-off`
	_ = b
}

// putNoReset recycles a slice at full length: flagged at the Put argument.
func putNoReset() {
	b := bufPool.Get().([]byte)
	b = append(b, 'x')
	bufPool.Put(b) // want `slice handed to Put without a length reset`
}

// useAfterPut touches the slice after recycling it: flagged.
func useAfterPut() {
	b := bufPool.Get().([]byte)
	bufPool.Put(b[:0])
	sink = b // want `b is used after it was handed to Put`
}

// roundTrip is the engine's contract: Get, use, Put with a length reset.
func roundTrip() int {
	b := bufPool.Get().([]byte)
	b = append(b, 'x')
	n := len(b)
	bufPool.Put(b[:0])
	return n
}

// handOff transfers ownership by returning the bound value: compliant.
func handOff() []byte {
	b := bufPool.Get().([]byte)
	return b
}

// directHandOff returns the pooled value without binding it: compliant.
func directHandOff() []byte {
	return bufPool.Get().([]byte)
}

// reassigned rebinds the variable after Put, which ends the
// use-after-Put window: compliant.
func reassigned() {
	b := bufPool.Get().([]byte)
	bufPool.Put(b[:0])
	b = make([]byte, 4)
	sink = b
}

var _ = []any{leak, putNoReset, useAfterPut, roundTrip, handOff, directHandOff, reassigned}
