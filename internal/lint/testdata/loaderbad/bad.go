// Package loaderbad fails to type-check: the loader must report the
// error, not panic.
package loaderbad

var X = notDefinedAnywhere + 1
