// Package unusedfixture exercises unused-//lint:ignore reporting: the
// directive suppressing a real finding stays silent, every other shape
// below is itself a finding under RunModule.
package unusedfixture

import "fmt"

// formatAll carries the one legitimate suppression: the Sprintf sits in a
// loop inside a hot-path package, and the directive suppresses it.
func formatAll(vs []int) string {
	out := ""
	for _, v := range vs {
		//lint:ignore hotpathban diagnostic formatting, measured off the hot loop
		out = fmt.Sprintf("%s,%d", out, v)
	}
	return out
}

//lint:ignore hotpathban nothing on this line ever triggered the analyzer
func quiet() {}

//lint:ignore
func noList() {}

//lint:ignore hotpathban
func noReason() {}

//lint:ignore nosuch because the analyzer was renamed away
func unknownName() {}

var _ = []any{formatAll, quiet, noList, noReason, unknownName}
