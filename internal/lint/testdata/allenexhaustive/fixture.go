// Package fixture exercises the allenexhaustive analyzer: switches over
// interval.Predicate must cover all 13 Allen relations or carry a
// panicking default.
package fixture

import "intervaljoin/internal/interval"

// twelveNoDefault misses equals and has no default: flagged.
func twelveNoDefault(p interval.Predicate) int {
	switch p { // want `covers 12 of 13 Allen relations and has no default \(missing: equals\)`
	case interval.Before:
		return 0
	case interval.After:
		return 1
	case interval.Meets:
		return 2
	case interval.MetBy:
		return 3
	case interval.Overlaps:
		return 4
	case interval.OverlappedBy:
		return 5
	case interval.Contains:
		return 6
	case interval.ContainedBy:
		return 7
	case interval.Starts:
		return 8
	case interval.StartedBy:
		return 9
	case interval.Finishes:
		return 10
	case interval.FinishedBy:
		return 11
	}
	return -1
}

// lazyDefault covers three relations and falls through silently: flagged.
func lazyDefault(p interval.Predicate) bool {
	switch p { // want `covers 3 of 13 Allen relations and its default does not panic`
	case interval.Before, interval.After:
		return false
	case interval.Equals:
		return true
	default:
		return false
	}
}

// full covers all 13 relations: compliant.
func full(p interval.Predicate) int {
	switch p {
	case interval.Before, interval.After, interval.Meets, interval.MetBy:
		return 0
	case interval.Overlaps, interval.OverlappedBy, interval.Contains, interval.ContainedBy:
		return 1
	case interval.Starts, interval.StartedBy, interval.Finishes, interval.FinishedBy:
		return 2
	case interval.Equals:
		return 3
	}
	return -1
}

// partialPanicking panics for everything it does not handle: compliant.
func partialPanicking(p interval.Predicate) bool {
	switch p {
	case interval.Before:
		return true
	default:
		panic("fixture: unhandled predicate")
	}
}

// runtimeCases uses a computed case guard; static counting is impossible,
// so the analyzer stays silent rather than guess.
func runtimeCases(p, q interval.Predicate) bool {
	switch p {
	case q.Inverse():
		return true
	}
	return false
}

// untagged switches are outside the contract.
func untagged(p interval.Predicate) bool {
	switch {
	case p == interval.Equals:
		return true
	}
	return false
}

var _ = []any{twelveNoDefault, lazyDefault, full, partialPanicking, runtimeCases, untagged}
