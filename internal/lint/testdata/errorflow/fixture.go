// Package errfixture exercises the error-flow analyzer. The harness
// loads it under an import path inside internal/core, where the
// discipline is enforced; the scope test reloads it under a neutral path
// and expects silence.
package errfixture

import "strings"

type fault struct{ msg string }

func (f *fault) Error() string { return f.msg }

func mightFail() error { return nil }

func twoRet() (int, error) { return 0, nil }

type closer struct{ open bool }

func (c *closer) close() error {
	c.open = false
	return nil
}

// discard blanks an error result outright.
func discard() {
	_ = mightFail() // want `error result of mightFail discarded with _`
}

// tupleDiscard blanks the error slot of a multi-result call.
func tupleDiscard() int {
	v, _ := twoRet() // want `error result of twoRet discarded with _`
	return v
}

// commaOkForms are not calls; blanking their second slot is fine.
func commaOkForms(m map[string]int, x any) int {
	v, _ := m["k"]
	s, _ := x.(int)
	return v + s
}

// bareDrop calls for effect and lets the error fall on the floor.
func bareDrop(c *closer) {
	c.close() // want `call to c\.close drops its error result`
}

// cleanupPath drops a close on a failure path: the real error is already
// heading for the return statement, so best-effort cleanup is fine.
func cleanupPath(c *closer) error {
	if err := mightFail(); err != nil {
		c.close()
		return err
	}
	return c.close()
}

// deferredClose is the idiomatic read-side close; defers are exempt.
func deferredClose(c *closer) {
	defer c.close()
}

// builderWrites never fail; both method calls and Fprint-style writes
// into a builder are exempt.
func builderWrites() string {
	var b strings.Builder
	b.WriteString("ok")
	return b.String()
}

// checked consults the error.
func checked(c *closer) error {
	if err := c.close(); err != nil {
		return err
	}
	return nil
}

// overwritten assigns an error and clobbers it before any read.
func overwritten() error {
	err := mightFail() // want `error assigned to err is overwritten before it is consulted`
	err = mightFail()
	return err
}

// retried reads the error between assignments; no dead store.
func retried() error {
	err := mightFail()
	if err == nil {
		return nil
	}
	err = mightFail()
	return err
}

// sinkParam ignores its error parameter entirely.
func sinkParam(kind string, err error) string { return kind }

// viaSink hands a live error to a function that provably drops it.
func viaSink() {
	if err := mightFail(); err != nil {
		sinkParam("cleanup", err) // want `error passed to .*sinkParam, which never consults that parameter`
	}
}

// nilToSink passes an explicit nil; there is no error to lose.
func nilToSink() {
	sinkParam("noop", nil)
}

// observer's signature is pinned by an interface: an unused error
// parameter there is contractual, not a sink.
type observer interface {
	Observe(err error)
}

type nopObserver struct{}

func (nopObserver) Observe(err error) {}

func notify(o observer, err error) {
	o.Observe(err)
}

var _ = []any{discard, tupleDiscard, commaOkForms, bareDrop, cleanupPath,
	deferredClose, builderWrites, checked, overwritten, retried, viaSink,
	nilToSink, notify, (*fault)(nil)}
