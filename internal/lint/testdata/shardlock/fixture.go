// Package fixture exercises the shardlock analyzer: fields of
// mutex-carrying shard structs must be written with the owning lock held.
package fixture

import "sync"

// shard mirrors the engine's sharded shuffle state: a mutex guarding
// sibling fields.
type shard struct {
	mu   sync.Mutex
	rows map[int][]string
	n    int
}

// table is the RWMutex variant.
type table struct {
	mu    sync.RWMutex
	files map[string]string
}

// unguarded writes a field with no lock anywhere: flagged.
func unguarded(s *shard) {
	s.n++ // want `write to s\.n \(struct shard carries lock mu\) without s\.mu\.Lock\(\)`
}

// unguardedMap writes through a map index with no lock: flagged.
func unguardedMap(s *shard) {
	s.rows[1] = append(s.rows[1], "x") // want `write to s\.rows`
}

// unguardedDelete deletes with no lock: flagged.
func unguardedDelete(t *table) {
	delete(t.files, "k") // want `write to t\.files`
}

// wrongLock holds another instance's lock: flagged.
func wrongLock(a, b *shard) {
	a.mu.Lock()
	defer a.mu.Unlock()
	b.n++ // want `write to b\.n`
}

// goroutineWrite spawns a writer; the literal is its own frame, so the
// outer Lock does not excuse it: flagged.
func goroutineWrite(s *shard) {
	s.mu.Lock()
	defer s.mu.Unlock()
	go func() {
		s.n++ // want `write to s\.n`
	}()
}

// guarded takes the owning lock first: compliant.
func guarded(s *shard) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.n++
	s.rows[2] = append(s.rows[2], "y")
	delete(s.rows, 3)
}

// guardedWrite is the RWMutex write path: compliant.
func guardedWrite(t *table, k, v string) {
	t.mu.Lock()
	t.files[k] = v
	t.mu.Unlock()
}

// construct initialises a freshly built value before publication: exempt.
func construct() *shard {
	s := &shard{rows: make(map[int][]string)}
	s.n = 1
	return s
}

var _ = []any{unguarded, unguardedMap, unguardedDelete, wrongLock, goroutineWrite, guarded, guardedWrite, construct}
