// Package lockorder exercises the canonical-lock-order analyzer. The
// test harness appends this package's lock classes to CanonicalLockOrder
// in the order: acct.mu, ledger.mu, alpha.mu, beta.mu, gamma.mu,
// delta.mu, sigma.mu. ping.m, pong.m and stats.mu stay unlisted.
//
// Each scenario uses its own struct types: lock classes are module-wide,
// so sharing a type between a compliant and a violating shape would let
// one scenario's edges turn another's into a cycle.
package lockorder

import "sync"

type acct struct {
	mu  sync.Mutex
	bal int
}

type ledger struct {
	mu  sync.Mutex
	log []string
}

// inOrder nests in the canonical direction: acct before ledger.
func inOrder(a *acct, l *ledger) {
	a.mu.Lock()
	defer a.mu.Unlock()
	l.mu.Lock()
	l.log = append(l.log, "ok")
	l.mu.Unlock()
	a.bal++
}

// unlockFirst releases before acquiring; no nesting, no edge.
func unlockFirst(a *acct, l *ledger) {
	l.mu.Lock()
	l.log = append(l.log, "ok")
	l.mu.Unlock()
	a.mu.Lock()
	a.bal++
	a.mu.Unlock()
}

// spawnEmptyHeld: a goroutine starts with an empty held set, so locking
// the spawner's class inside it is not a re-acquisition edge.
func spawnEmptyHeld(a *acct) {
	a.mu.Lock()
	defer a.mu.Unlock()
	done := make(chan struct{})
	go func() {
		var b acct
		b.mu.Lock()
		b.bal++
		b.mu.Unlock()
		close(done)
	}()
	<-done
}

type alpha struct{ mu sync.Mutex }
type beta struct{ mu sync.Mutex }

// reversed acquires alpha while holding beta — alpha is earlier in the
// canonical order, so this inverts it. (This is the only alpha/beta
// nesting, so it is a plain order violation, not a cycle.)
func reversed(x *alpha, y *beta) {
	y.mu.Lock()
	x.mu.Lock() // want `lock lintfixture/lockorder\.alpha\.mu acquired while holding lintfixture/lockorder\.beta\.mu, which is later in the canonical lock order`
	x.mu.Unlock()
	y.mu.Unlock()
}

type gamma struct{ mu sync.Mutex }
type delta struct{ mu sync.Mutex }

func lockGamma(g *gamma) {
	g.mu.Lock()
	defer g.mu.Unlock()
}

// viaHelper holds delta and calls a helper that acquires gamma: the
// violating edge crosses the function boundary and is reported at the
// call site.
func viaHelper(g *gamma, d *delta) {
	d.mu.Lock()
	defer d.mu.Unlock()
	lockGamma(g) // want `lock lintfixture/lockorder\.gamma\.mu acquired while holding lintfixture/lockorder\.delta\.mu, which is later in the canonical lock order \(via call to`
}

type selfy struct{ mu sync.Mutex }

// handOverHand re-acquires a held class on a second instance.
func handOverHand(a, b *selfy) {
	a.mu.Lock()
	b.mu.Lock() // want `lock lintfixture/lockorder\.selfy\.mu acquired while an instance of it is already held`
	a.mu.Unlock()
	b.mu.Unlock()
}

func lockAcct(a *acct) {
	a.mu.Lock()
	defer a.mu.Unlock()
}

// relockVia re-acquires a held class through a helper call.
func relockVia(a, b *acct) {
	a.mu.Lock()
	defer a.mu.Unlock()
	lockAcct(b) // want `lock lintfixture/lockorder\.acct\.mu acquired while an instance of it is already held \(via call to`
}

type ping struct{ m sync.Mutex }
type pong struct{ m sync.Mutex }

// pingThenPong and pongThenPing acquire the pair in both orders: a
// deadlock cycle, reported at both inner acquisitions.
func pingThenPong(p *ping, q *pong) {
	p.m.Lock()
	q.m.Lock() // want `lock-order cycle: lintfixture/lockorder\.ping\.m and lintfixture/lockorder\.pong\.m are acquired in both orders`
	q.m.Unlock()
	p.m.Unlock()
}

func pongThenPing(p *ping, q *pong) {
	q.m.Lock()
	p.m.Lock() // want `lock-order cycle: lintfixture/lockorder\.pong\.m and lintfixture/lockorder\.ping\.m are acquired in both orders`
	p.m.Unlock()
	q.m.Unlock()
}

type sigma struct{ mu sync.Mutex }
type stats struct{ mu sync.Mutex }

// nestUnlisted nests a class that is missing from CanonicalLockOrder.
func nestUnlisted(s *sigma, st *stats) {
	s.mu.Lock()
	st.mu.Lock() // want `lock lintfixture/lockorder\.stats\.mu nests with lintfixture/lockorder\.sigma\.mu but is not in CanonicalLockOrder`
	st.mu.Unlock()
	s.mu.Unlock()
}

var _ = []any{inOrder, unlockFirst, spawnEmptyHeld, reversed, viaHelper,
	handOverHand, relockVia, pingThenPong, pongThenPing, nestUnlisted}
