// Package fixture exercises the emitterescape analyzer: an mr.Emitter is
// only valid for the duration of the map/combine call it was passed to.
package fixture

import "intervaljoin/internal/mr"

var saved mr.Emitter

type holder struct {
	emit mr.Emitter
}

// storeField parks the emitter in a struct: flagged.
func storeField(h *holder, emit mr.Emitter) {
	h.emit = emit // want `stored in a struct field or package variable`
}

// storeGlobal parks the emitter in a package variable: flagged.
func storeGlobal(tag int, record string, emit mr.Emitter) error {
	saved = emit // want `stored in package variable saved`
	return nil
}

// storeViaAlias launders the emitter through a local first: still flagged.
func storeViaAlias(emit mr.Emitter) {
	e := emit
	saved = e // want `stored in package variable saved`
}

// spawn hands the emitter to a goroutine: flagged.
func spawn(emit mr.Emitter) {
	go func() { // want `used by a spawned goroutine`
		emit.Emit(1, "x")
	}()
}

// leak returns the emitter from the call it was passed to: flagged.
func leak(emit mr.Emitter) mr.Emitter {
	return emit // want `returned`
}

// send pushes the emitter on a channel: flagged.
func send(ch chan mr.Emitter, emit mr.Emitter) {
	ch <- emit // want `sent on a channel`
}

// pack embeds the emitter in a composite literal: flagged.
func pack(emit mr.Emitter) {
	_ = holder{emit: emit} // want `stored in a composite literal`
}

// invertedRange has provably inverted constant bounds: flagged.
func invertedRange(emit mr.Emitter) {
	emit.EmitRange(5, 3, "v") // want `EmitRange bounds are constants with lo \(5\) > hi \(3\)`
}

// stashField parks its parameter in a package-level holder: the direct
// escape is flagged here, and every call site handing an emitter in is
// flagged at the caller.
func stashField(h *holder, emit mr.Emitter) {
	h.emit = emit // want `stored in a struct field or package variable`
}

// launder forwards its emitter into an escaping parameter: flagged at the
// call, and launder's own parameter becomes escaping in turn.
func launder(h *holder, emit mr.Emitter) {
	stashField(h, emit) // want `mr\.Emitter passed to .*stashField, which lets it escape`
}

// deep escapes only through two levels of calls.
func deep(h *holder, emit mr.Emitter) {
	deepMid(h, emit) // want `mr\.Emitter passed to .*deepMid, which lets it escape`
}

func deepMid(h *holder, emit mr.Emitter) {
	launder(h, emit) // want `mr\.Emitter passed to .*launder, which lets it escape`
}

// forwardSafe hands the emitter to a helper that only emits: compliant.
func forwardSafe(emit mr.Emitter) {
	emitPair(emit, 1, "a")
	emitPair(emit, 2, "b")
}

func emitPair(emit mr.Emitter, key int64, value string) {
	emit.Emit(key, value)
}

// wellBehaved uses the emitter only within the call: compliant. Runtime
// EmitRange bounds are never second-guessed.
func wellBehaved(tag int, record string, emit mr.Emitter) error {
	emit.Emit(7, record)
	emit.EmitRange(3, 5, "v")
	lo, hi := bounds(record)
	emit.EmitRange(lo, hi, record)
	return nil
}

func bounds(string) (int64, int64) { return 2, 1 }

var _ = []any{storeField, storeGlobal, storeViaAlias, spawn, leak, send, pack,
	stashField, launder, deep, deepMid, forwardSafe, invertedRange, wellBehaved}
