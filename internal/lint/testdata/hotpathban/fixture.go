// Package fixture exercises the hotpathban analyzer. The harness loads it
// under an import path inside internal/core, which puts it in the
// hot-path scope; a second load under a neutral path checks the scoping.
package fixture

import (
	"fmt"
	"reflect"
	"slices"
	"sort"
	"strconv"
)

// sortBanned uses closure-driven sort.Slice in the hot path: flagged.
func sortBanned(xs []int) {
	sort.Slice(xs, func(i, j int) bool { return xs[i] < xs[j] }) // want `sort\.Slice is banned in hot-path package`
}

// sprintfBanned formats with fmt in the hot path: flagged.
func sprintfBanned(n int) string {
	return fmt.Sprintf("n=%d", n) // want `fmt\.Sprintf is banned in hot-path package`
}

// deepEqualBanned compares with reflection: flagged.
func deepEqualBanned(a, b []int) bool {
	return reflect.DeepEqual(a, b) // want `reflect\.DeepEqual is banned in hot-path package`
}

// suppressed demonstrates the escape hatch; the reason is mandatory.
func suppressed(n int) string {
	//lint:ignore hotpathban fixture demonstrates the annotated cold-path escape hatch
	return fmt.Sprintf("cold=%d", n)
}

// compliant uses the replacements the diagnostics suggest.
func compliant(xs []int, n int) string {
	slices.Sort(xs)
	return "n=" + strconv.Itoa(n)
}

// errorsAllowed shows fmt.Errorf is not on the ban list.
func errorsAllowed(n int) error {
	return fmt.Errorf("bad n: %d", n)
}

var _ = []any{sortBanned, sprintfBanned, deepEqualBanned, suppressed, compliant, errorsAllowed}
