//go:build never

// This file must be excluded by its build constraint: it references an
// undefined symbol, so accidentally including it fails the whole load.
package loaderfix

var Skipped = definedNowhere
