// Package loaderfix is the loader's edge-case fixture.
package loaderfix

// Kept is defined in the unconditional file.
const Kept = 1
