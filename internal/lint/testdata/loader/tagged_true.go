//go:build gc || !gc

package loaderfix

// Tagged is defined in a file whose constraint is a tautology, so it must
// be included on every toolchain.
const Tagged = 2
