// _test.go files are never loaded; an undefined symbol here must not
// break the package.
package loaderfix

var FromTest = definedNowhereEither
