// Package fixture exercises the timenowloop analyzer. The harness loads
// it under an import path inside internal/mr, which puts it in the
// hot-path scope.
package fixture

import "time"

// perTaskTiming reads the clock once per outer task iteration: allowed,
// this is exactly how the engine times map and reduce tasks.
func perTaskTiming(tasks [][]int) time.Duration {
	var total time.Duration
	for _, task := range tasks {
		t0 := time.Now()
		sum := 0
		for _, v := range task {
			sum += v
		}
		total += time.Since(t0)
	}
	return total
}

// perPairTiming reads the clock inside the inner per-pair loop: flagged.
func perPairTiming(tasks [][]int) time.Duration {
	var total time.Duration
	for _, task := range tasks {
		for range task {
			t0 := time.Now() // want `time\.Now in a per-pair inner loop \(for-nesting depth 2\)`
			total += time.Since(t0) // want `time\.Since in a per-pair inner loop \(for-nesting depth 2\)`
		}
	}
	return total
}

// deeplyNested is flagged at depth 3 too.
func deeplyNested(cube [][][]int) (n int64) {
	for _, plane := range cube {
		for _, row := range plane {
			for range row {
				n += time.Now().UnixNano() // want `time\.Now in a per-pair inner loop \(for-nesting depth 3\)`
			}
		}
	}
	return n
}

// closureResetsDepth: the literal handed to the engine is its own
// function, so its body starts again at depth 0 — one read per call is
// the per-task pattern, not per-pair.
func closureResetsDepth(tasks [][]int) func() time.Time {
	var fn func() time.Time
	for range tasks {
		for range tasks {
			fn = func() time.Time {
				return time.Now()
			}
		}
	}
	return fn
}

// closureInnerLoop: depth inside the closure counts on its own; a
// per-pair read within the closure is still flagged.
func closureInnerLoop(tasks [][]int) func() time.Duration {
	return func() time.Duration {
		var total time.Duration
		for _, task := range tasks {
			for range task {
				t0 := time.Now() // want `time\.Now in a per-pair inner loop`
				total += time.Since(t0) // want `time\.Since in a per-pair inner loop`
			}
		}
		return total
	}
}

// suppressed demonstrates the escape hatch; the reason is mandatory.
func suppressed(tasks [][]int) (n int64) {
	for range tasks {
		for range tasks {
			//lint:ignore timenowloop fixture demonstrates the annotated escape hatch
			n += time.Now().UnixNano()
		}
	}
	return n
}

// otherTimeCallsAllowed: non-clock time functions are fine at any depth.
func otherTimeCallsAllowed(tasks [][]int) time.Duration {
	var total time.Duration
	for range tasks {
		for range tasks {
			total += 3 * time.Millisecond
			total = total.Round(time.Duration(len(tasks)))
		}
	}
	return total
}

var _ = []any{perTaskTiming, perPairTiming, deeplyNested, closureResetsDepth,
	closureInnerLoop, suppressed, otherTimeCallsAllowed}
