package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"intervaljoin/internal/lint/flow"
)

// LockOrder derives the module's mutex-acquisition graph — which locks
// are taken while which others are held, across function and package
// boundaries — and enforces the canonical acquisition order below. It
// flags re-acquisition of a held lock, any pair of locks taken in both
// orders (a deadlock cycle), any acquisition that contradicts the
// canonical order, and any nesting lock missing from the order (so the
// documented order stays total over the locks that actually nest).
//
// A lock class is a sync.Mutex or sync.RWMutex field of a named struct;
// every instance of the field shares the class, so the analysis is about
// lock *types*, not individual locks. Function-scoped mutexes (a local
// `var mu sync.Mutex` coordinating one function's goroutines) never
// participate in cross-function ordering and are out of scope. Deferred
// unlocks are modeled as "held to function end"; deferred calls into
// other functions contribute their acquisitions to the caller's summary.
var LockOrder = &Analyzer{
	Name: "lockorder",
	Doc: "mutex acquisitions must respect the canonical lock order; no lock " +
		"cycles, no re-acquisition, no undocumented nesting locks",
	Run: runLockOrder,
}

// CanonicalLockOrder is the module's documented mutex-acquisition order,
// outermost first: a lock may only be acquired while every already-held
// lock sits strictly earlier in this list. Entries are
// "pkg/path.Type.field" with the package path suffix-matched, so the
// order survives vendoring. Locks that never nest with another lock need
// no entry; the analyzer forces any newly nesting lock to be added here.
var CanonicalLockOrder = []string{
	"internal/cache.Service.runMu",
	"internal/cache.Service.mu",
	"internal/cache.Cache.mu",
	"internal/dfs.Residents.mu",
	"internal/mr.sink.mu",
	"internal/mr.retryCounter.mu",
	"internal/dfs.Mem.mu",
	"internal/obs.Tracer.mu",
}

// lockClass identifies one mutex field of a named struct.
type lockClass struct {
	pkg   string // full package path of the owning type
	typ   string
	field string
}

// id is the class's map key; display is the diagnostic-facing name with
// the module prefix trimmed.
func (c lockClass) id() string { return c.pkg + "." + c.typ + "." + c.field }

func (c lockClass) display() string {
	pkg := c.pkg
	if i := strings.Index(pkg, "/"); i >= 0 {
		pkg = pkg[i+1:]
	}
	return pkg + "." + c.typ + "." + c.field
}

// canonicalIndex returns the class's position in CanonicalLockOrder, or
// -1 when unlisted.
func canonicalIndex(c lockClass) int {
	for i, entry := range CanonicalLockOrder {
		dot := strings.LastIndex(entry, ".")
		if dot < 0 {
			continue
		}
		typDot := strings.LastIndex(entry[:dot], ".")
		if typDot < 0 {
			continue
		}
		pkg, typ, field := entry[:typDot], entry[typDot+1:dot], entry[dot+1:]
		if c.typ == typ && c.field == field && (c.pkg == pkg || hasPathSuffix(c.pkg, pkg)) {
			return i
		}
	}
	return -1
}

// lockEdge records "inner acquired while outer held" at pos. via is the
// callee whose transitive acquisition created the edge, nil for a direct
// Lock call.
type lockEdge struct {
	outer, inner string
	pos          token.Pos
	unit         *flow.Unit
	via          *flow.Node
}

type lockAnalysis struct {
	edges   []lockEdge
	classes map[string]lockClass
	// cyclic[a][b] reports a lock-order cycle through the a→b edge.
	cyclic map[string]map[string]bool
}

func runLockOrder(pass *Pass) {
	a := pass.Flow.Memo("lockorder", func() any {
		return buildLockAnalysis(pass.Flow)
	}).(*lockAnalysis)

	seen := make(map[string]bool)
	for _, e := range a.edges {
		if e.unit != pass.Unit {
			continue
		}
		key := fmt.Sprintf("%d|%s|%s", e.pos, e.outer, e.inner)
		if seen[key] {
			continue
		}
		seen[key] = true
		outer, inner := a.classes[e.outer], a.classes[e.inner]
		via := ""
		if e.via != nil {
			via = " (via call to " + e.via.String() + ")"
		}
		switch {
		case e.outer == e.inner:
			pass.Reportf(e.pos, "lock %s acquired while an instance of it is already held%s: self-deadlock or shard hand-over-hand, neither is allowed",
				inner.display(), via)
		case a.cyclic[e.outer][e.inner]:
			pass.Reportf(e.pos, "lock-order cycle: %s and %s are acquired in both orders%s",
				outer.display(), inner.display(), via)
		default:
			oi, ii := canonicalIndex(outer), canonicalIndex(inner)
			switch {
			case oi >= 0 && ii >= 0 && ii < oi:
				pass.Reportf(e.pos, "lock %s acquired while holding %s, which is later in the canonical lock order%s",
					inner.display(), outer.display(), via)
			case oi < 0 || ii < 0:
				missing := outer
				if ii < 0 {
					missing = inner
				}
				pass.Reportf(e.pos, "lock %s nests with %s but is not in CanonicalLockOrder%s: add it so the order stays total",
					missing.display(), other(outer, inner, missing).display(), via)
			}
		}
	}
}

func other(a, b, not lockClass) lockClass {
	if a == not {
		return b
	}
	return a
}

// buildLockAnalysis computes the module-wide nesting edges once.
func buildLockAnalysis(g *flow.Graph) *lockAnalysis {
	a := &lockAnalysis{classes: make(map[string]lockClass)}

	// Transitive acquisition summaries: acq[n] is every class n may
	// acquire, directly or through synchronous callees (including
	// deferred calls, which run before the caller's caller resumes).
	acq := make(map[*flow.Node]map[string]bool)
	callees := make(map[*flow.Node]map[*flow.Node]bool)
	for _, n := range g.Nodes() {
		acq[n] = make(map[string]bool)
		callees[n] = make(map[*flow.Node]bool)
		n := n
		summaryWalk(n.Body, func(c ast.Node) bool {
			call, ok := c.(*ast.CallExpr)
			if !ok {
				return true
			}
			if class, op, ok := lockOp(n.Unit, call); ok {
				if op == lockAcquire {
					a.classes[class.id()] = class
					acq[n][class.id()] = true
				}
				return true
			}
			for _, m := range g.Callees(n.Unit, call) {
				callees[n][m] = true
			}
			return true
		})
	}
	for changed := true; changed; {
		changed = false
		for n, ms := range callees {
			for m := range ms {
				for c := range acq[m] {
					if !acq[n][c] {
						acq[n][c] = true
						changed = true
					}
				}
			}
		}
	}

	// Held-set dataflow per function, then edges at acquisition and call
	// sites. Defer and go statements transfer nothing: deferred unlocks
	// keep the lock held to function end, and a spawned goroutine starts
	// with an empty held set (it is its own graph node).
	for _, n := range g.Nodes() {
		n := n
		cfg := g.CFG(n)
		xfer := func(f flow.Facts, node ast.Node) flow.Facts {
			switch node.(type) {
			case *ast.DeferStmt, *ast.GoStmt:
				return f
			}
			flow.WalkExprs(node, func(c ast.Node) bool {
				if call, ok := c.(*ast.CallExpr); ok {
					if class, op, ok := lockOp(n.Unit, call); ok {
						if op == lockAcquire {
							f[class.id()] = true
						} else {
							delete(f, class.id())
						}
					}
				}
				return true
			})
			return f
		}
		before := flow.ForwardFacts(cfg, flow.Facts{}, xfer)
		for _, b := range cfg.Blocks {
			for _, node := range b.Nodes {
				switch node.(type) {
				case *ast.DeferStmt, *ast.GoStmt:
					continue
				}
				held := before[node].Clone()
				flow.WalkExprs(node, func(c ast.Node) bool {
					call, ok := c.(*ast.CallExpr)
					if !ok {
						return true
					}
					if class, op, ok := lockOp(n.Unit, call); ok {
						if op == lockAcquire {
							for h := range held {
								a.edges = append(a.edges, lockEdge{outer: h, inner: class.id(), pos: call.Pos(), unit: n.Unit})
							}
							held[class.id()] = true
						} else {
							delete(held, class.id())
						}
						return true
					}
					if len(held) == 0 {
						return true
					}
					for _, m := range g.Callees(n.Unit, call) {
						for c := range acq[m] {
							for h := range held {
								a.edges = append(a.edges, lockEdge{outer: h, inner: c, pos: call.Pos(), unit: n.Unit, via: m})
							}
						}
					}
					return true
				})
			}
		}
	}

	// Cycle detection over the distinct-class nesting digraph: the a→b
	// edge is cyclic when b can reach a.
	adj := make(map[string]map[string]bool)
	for _, e := range a.edges {
		if e.outer == e.inner {
			continue
		}
		if adj[e.outer] == nil {
			adj[e.outer] = make(map[string]bool)
		}
		adj[e.outer][e.inner] = true
	}
	reaches := func(from, to string) bool {
		seen := map[string]bool{}
		stack := []string{from}
		for len(stack) > 0 {
			c := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			if seen[c] {
				continue
			}
			seen[c] = true
			if c == to {
				return true
			}
			for next := range adj[c] {
				stack = append(stack, next)
			}
		}
		return false
	}
	a.cyclic = make(map[string]map[string]bool)
	for outer, inners := range adj {
		for inner := range inners {
			if reaches(inner, outer) {
				if a.cyclic[outer] == nil {
					a.cyclic[outer] = make(map[string]bool)
				}
				a.cyclic[outer][inner] = true
			}
		}
	}
	return a
}

// summaryWalk visits a body without descending into function literals or
// go statements: literals are their own nodes, and a spawned goroutine's
// acquisitions are not synchronous with the caller.
func summaryWalk(body *ast.BlockStmt, visit func(ast.Node) bool) {
	ast.Inspect(body, func(c ast.Node) bool {
		switch c.(type) {
		case *ast.FuncLit, *ast.GoStmt:
			return false
		case nil:
			return false
		}
		return visit(c)
	})
}

const (
	lockAcquire = "acquire"
	lockRelease = "release"
)

// lockOp decides whether call is a Lock/RLock/TryLock (acquire) or
// Unlock/RUnlock (release) on a classifiable mutex: a sync.Mutex or
// sync.RWMutex field of a named struct, selected directly or reached as a
// promoted method of an embedded mutex.
func lockOp(u *flow.Unit, call *ast.CallExpr) (lockClass, string, bool) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return lockClass{}, "", false
	}
	var op string
	switch sel.Sel.Name {
	case "Lock", "RLock", "TryLock", "TryRLock":
		op = lockAcquire
	case "Unlock", "RUnlock":
		op = lockRelease
	default:
		return lockClass{}, "", false
	}
	fn, ok := u.Info.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "sync" {
		return lockClass{}, "", false
	}
	// Direct field selection: base.field.Lock().
	if xsel, ok := ast.Unparen(sel.X).(*ast.SelectorExpr); ok {
		if fs, ok := u.Info.Selections[xsel]; ok && fs.Kind() == types.FieldVal {
			if owner, field := fieldOwner(fs.Recv(), fs.Index()); field != nil && owner != nil && isSyncMutex(field.Type()) {
				return lockClass{pkg: owner.Obj().Pkg().Path(), typ: owner.Obj().Name(), field: field.Name()}, op, true
			}
		}
		return lockClass{}, "", false
	}
	// Promoted method of an embedded mutex: s.Lock().
	if ms, ok := u.Info.Selections[sel]; ok && len(ms.Index()) > 1 {
		if owner, field := fieldOwner(ms.Recv(), ms.Index()[:len(ms.Index())-1]); field != nil && owner != nil && isSyncMutex(derefType(field.Type())) {
			return lockClass{pkg: owner.Obj().Pkg().Path(), typ: owner.Obj().Name(), field: field.Name()}, op, true
		}
	}
	return lockClass{}, "", false
}

// fieldOwner walks a selection index path and returns the named struct
// owning the final field, with the field itself.
func fieldOwner(recv types.Type, index []int) (*types.Named, *types.Var) {
	t := recv
	var owner *types.Named
	var field *types.Var
	for _, i := range index {
		t = derefType(t)
		named, _ := t.(*types.Named)
		st, ok := t.Underlying().(*types.Struct)
		if !ok || i >= st.NumFields() {
			return nil, nil
		}
		owner = named
		field = st.Field(i)
		t = field.Type()
	}
	if owner == nil || field == nil || owner.Obj().Pkg() == nil {
		return nil, nil
	}
	return owner, field
}

func derefType(t types.Type) types.Type {
	if ptr, ok := t.(*types.Pointer); ok {
		return ptr.Elem()
	}
	return t
}
