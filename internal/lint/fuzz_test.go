package lint

import (
	"strings"
	"testing"
)

// FuzzParseIgnore hammers the //lint:ignore parser with arbitrary comment
// text and checks its invariants: recognition is exactly the trimmed
// prefix test, a directive without a reason never suppresses anything,
// and a positive match is always backed by an explicit name or "all".
func FuzzParseIgnore(f *testing.F) {
	f.Add("//lint:ignore hotpathban reason text")
	f.Add("//lint:ignore a,b reason")
	f.Add("//lint:ignore all everything is fine here")
	f.Add("//lint:ignore")
	f.Add("//lint:ignore noreason")
	f.Add("// plain comment")
	f.Add("//lint:ignore ,,, odd names")
	f.Add("  //lint:ignore padded directive names")
	f.Add("//lint:ignoreXtrailing junk")
	f.Fuzz(func(t *testing.T, text string) {
		d, ok := parseIgnore(text)
		if ok != strings.HasPrefix(strings.TrimSpace(text), "//lint:ignore") {
			t.Fatalf("parseIgnore(%q) recognition = %v, disagrees with the prefix rule", text, ok)
		}
		if !ok {
			return
		}
		for _, name := range []string{"hotpathban", "errorflow", "x"} {
			if !d.matches(name) {
				continue
			}
			if d.reason == "" {
				t.Fatalf("parseIgnore(%q): matches(%q) with an empty reason", text, name)
			}
			backed := false
			for _, n := range d.names {
				if n == name || n == "all" {
					backed = true
				}
			}
			if !backed {
				t.Fatalf("parseIgnore(%q): matches(%q) without a backing name", text, name)
			}
		}
	})
}
