package lint

import (
	"path/filepath"
	"strings"
	"testing"
)

// TestLoadDirBuildTags checks the loader's file filtering: an impossible
// //go:build constraint excludes its file (which would otherwise fail the
// load — it references an undefined symbol), a tautological constraint
// keeps its file, and _test.go files never load.
func TestLoadDirBuildTags(t *testing.T) {
	pkg, err := fixtureLoader(t).LoadDir(filepath.Join("testdata", "loader"), "intervaljoin/lintfixture/loaderfix")
	if err != nil {
		t.Fatalf("LoadDir: %v", err)
	}
	scope := pkg.Types.Scope()
	if scope.Lookup("Kept") == nil {
		t.Error("unconditional file was not loaded: Kept is missing")
	}
	if scope.Lookup("Tagged") == nil {
		t.Error("tautologically-tagged file was not loaded: Tagged is missing")
	}
	if scope.Lookup("Skipped") != nil {
		t.Error("file tagged //go:build never was loaded")
	}
	if scope.Lookup("FromTest") != nil {
		t.Error("_test.go file was loaded")
	}
	if len(pkg.Files) != 2 {
		t.Errorf("loaded %d files, want 2", len(pkg.Files))
	}
}

// TestLoadDirTypeError checks that a package that fails type-checking is
// reported as an error rather than a panic or a silent partial package.
func TestLoadDirTypeError(t *testing.T) {
	_, err := fixtureLoader(t).LoadDir(filepath.Join("testdata", "loaderbad"), "intervaljoin/lintfixture/loaderbad")
	if err == nil {
		t.Fatal("LoadDir on a broken package returned nil error")
	}
	if !strings.Contains(err.Error(), "type-checking") {
		t.Errorf("error %q does not mention type-checking", err)
	}
}

// TestBuildTagSatisfied pins the evaluator's semantics for the tags the
// module can encounter.
func TestBuildTagSatisfied(t *testing.T) {
	if !buildTagSatisfied("gc") {
		t.Error("gc must be satisfied")
	}
	if buildTagSatisfied("never") {
		t.Error("custom tags must not be satisfied")
	}
	if buildTagSatisfied("go1.9999") {
		t.Error("future release tags must not be satisfied")
	}
	if !buildTagSatisfied("go1.1") {
		t.Error("ancient release tags must be satisfied")
	}
}
