package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// ShardLock enforces the sharded shuffle's locking discipline: a struct
// that embeds a sync.Mutex / sync.RWMutex next to shared state (the shard
// pattern — mr's sink and retryCounter, dfs's Mem) must only have its
// non-mutex fields written while the owning lock is held. The heuristic is
// flow-insensitive, as races demand nothing subtler to sneak in: a write
// to such a field is compliant when the same function has already called
// Lock() on the struct's mutex through the same base expression, and
// flagged otherwise. Freshly constructed values (x := S{...} / &S{...} /
// new(S) in the same function) are exempt — initialisation before
// publication needs no lock.
var ShardLock = &Analyzer{
	Name: "shardlock",
	Doc: "fields of mutex-carrying shard structs must be written with the " +
		"owning lock held (flow-insensitive)",
	Run: runShardLock,
}

func runShardLock(pass *Pass) {
	lockable := lockableStructs(pass)
	if len(lockable) == 0 {
		return
	}
	for _, file := range pass.Files {
		enclosingFuncs(file, func(body *ast.BlockStmt) {
			checkShardFunc(pass, body, lockable)
		})
	}
}

// lockableStructs maps the package's mutex-carrying named struct types to
// the names of their mutex fields.
func lockableStructs(pass *Pass) map[*types.Named][]string {
	out := make(map[*types.Named][]string)
	scope := pass.Pkg.Scope()
	for _, name := range scope.Names() {
		tn, ok := scope.Lookup(name).(*types.TypeName)
		if !ok {
			continue
		}
		named, ok := tn.Type().(*types.Named)
		if !ok {
			continue
		}
		st, ok := named.Underlying().(*types.Struct)
		if !ok {
			continue
		}
		var mutexes []string
		for i := 0; i < st.NumFields(); i++ {
			f := st.Field(i)
			if isSyncMutex(f.Type()) {
				mutexes = append(mutexes, f.Name())
			}
		}
		if len(mutexes) > 0 {
			out[named] = mutexes
		}
	}
	return out
}

// isSyncMutex reports whether t is sync.Mutex or sync.RWMutex.
func isSyncMutex(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj != nil && obj.Pkg() != nil && obj.Pkg().Path() == "sync" &&
		(obj.Name() == "Mutex" || obj.Name() == "RWMutex")
}

// fieldWrite describes one write to a lockable struct's field.
type fieldWrite struct {
	pos      ast.Node
	base     ast.Expr // expression the field is selected from
	named    *types.Named
	field    string
	writeVia string // "assignment", "delete", ...
}

// checkShardFunc flags unguarded field writes within one function body.
// The walk is shallow: a nested function literal is its own frame (the
// caller visits it separately), so a goroutine that writes shared state
// must take the lock inside its own body, not inherit it lexically.
func checkShardFunc(pass *Pass, body *ast.BlockStmt, lockable map[*types.Named][]string) {
	var writes []fieldWrite
	walkShallow(body, func(n ast.Node) {
		switch s := n.(type) {
		case *ast.AssignStmt:
			for _, lhs := range s.Lhs {
				if w, ok := resolveFieldWrite(pass, lhs, lockable); ok {
					w.pos = s
					writes = append(writes, w)
				}
			}
		case *ast.IncDecStmt:
			if w, ok := resolveFieldWrite(pass, s.X, lockable); ok {
				w.pos = s
				writes = append(writes, w)
			}
		case *ast.CallExpr:
			if isBuiltin(pass.Info, s, "delete") && len(s.Args) > 0 {
				if w, ok := resolveFieldWrite(pass, s.Args[0], lockable); ok {
					w.pos = s
					w.writeVia = "delete"
					writes = append(writes, w)
				}
			}
		}
	})
	for _, w := range writes {
		baseStr := types.ExprString(w.base)
		if constructedLocally(pass, body, w.base) {
			continue
		}
		if lockHeldBefore(pass, body, baseStr, lockable[w.named], w.pos) {
			continue
		}
		pass.Reportf(w.pos.Pos(),
			"write to %s.%s (struct %s carries lock %s) without %s.%s.Lock() earlier in this function",
			baseStr, w.field, w.named.Obj().Name(), strings.Join(lockable[w.named], "/"),
			baseStr, lockable[w.named][0])
	}
}

// resolveFieldWrite recognises expr as a write target rooted in a lockable
// struct's non-mutex field: base.f, base.f[k], or base.f[k1][k2]...
func resolveFieldWrite(pass *Pass, expr ast.Expr, lockable map[*types.Named][]string) (fieldWrite, bool) {
	for {
		if idx, ok := expr.(*ast.IndexExpr); ok {
			expr = idx.X
			continue
		}
		break
	}
	sel, ok := expr.(*ast.SelectorExpr)
	if !ok {
		return fieldWrite{}, false
	}
	selection := pass.Info.Selections[sel]
	if selection == nil || selection.Kind() != types.FieldVal {
		return fieldWrite{}, false
	}
	recv := selection.Recv()
	if ptr, ok := recv.(*types.Pointer); ok {
		recv = ptr.Elem()
	}
	named, ok := recv.(*types.Named)
	if !ok {
		return fieldWrite{}, false
	}
	mutexes, ok := lockable[named]
	if !ok {
		return fieldWrite{}, false
	}
	field := sel.Sel.Name
	for _, m := range mutexes {
		if field == m {
			return fieldWrite{}, false // locking the lock is not a data write
		}
	}
	return fieldWrite{base: sel.X, named: named, field: field, writeVia: "assignment"}, true
}

// lockHeldBefore reports whether base.<mutex>.Lock() is called before pos
// in the same function body.
func lockHeldBefore(pass *Pass, body *ast.BlockStmt, baseStr string, mutexes []string, pos ast.Node) bool {
	held := false
	ast.Inspect(body, func(n ast.Node) bool {
		if held {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Pos() >= pos.Pos() {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok || sel.Sel.Name != "Lock" {
			return true
		}
		lockSel, ok := sel.X.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		for _, m := range mutexes {
			if lockSel.Sel.Name == m && types.ExprString(lockSel.X) == baseStr {
				held = true
			}
		}
		return !held
	})
	return held
}

// constructedLocally reports whether base is an identifier bound in this
// function to a freshly constructed value (composite literal, address of
// one, or new(T)) — pre-publication initialisation.
func constructedLocally(pass *Pass, body *ast.BlockStmt, base ast.Expr) bool {
	id, ok := base.(*ast.Ident)
	if !ok {
		return false
	}
	obj := pass.Info.Uses[id]
	if obj == nil {
		return false
	}
	fresh := false
	ast.Inspect(body, func(n ast.Node) bool {
		if fresh {
			return false
		}
		as, ok := n.(*ast.AssignStmt)
		if !ok {
			return true
		}
		for i, lhs := range as.Lhs {
			lid, ok := lhs.(*ast.Ident)
			if !ok || (pass.Info.Defs[lid] != obj && pass.Info.Uses[lid] != obj) {
				continue
			}
			if i >= len(as.Rhs) {
				continue
			}
			if isFreshValue(pass, as.Rhs[i]) {
				fresh = true
			}
		}
		return !fresh
	})
	return fresh
}

// isFreshValue recognises S{...}, &S{...} and new(S).
func isFreshValue(pass *Pass, e ast.Expr) bool {
	switch v := e.(type) {
	case *ast.CompositeLit:
		return true
	case *ast.UnaryExpr:
		_, ok := v.X.(*ast.CompositeLit)
		return ok
	case *ast.CallExpr:
		return isBuiltin(pass.Info, v, "new")
	}
	return false
}
