package lint

import (
	"path/filepath"
	"strings"
	"testing"
	"time"

	"intervaljoin/internal/interval"
)

func TestAllenExhaustive(t *testing.T) {
	runFixture(t, "allenexhaustive", "intervaljoin/lintfixture/allen")
}

func TestEmitterEscape(t *testing.T) {
	runFixture(t, "emitterescape", "intervaljoin/lintfixture/emitter")
}

func TestPoolDiscipline(t *testing.T) {
	runFixture(t, "pooldiscipline", "intervaljoin/lintfixture/pool")
}

func TestShardLock(t *testing.T) {
	runFixture(t, "shardlock", "intervaljoin/lintfixture/shard")
}

func TestHotPathBan(t *testing.T) {
	runFixture(t, "hotpathban", "intervaljoin/internal/core/lintfixture")
}

func TestTimeNowLoop(t *testing.T) {
	runFixture(t, "timenowloop", "intervaljoin/internal/mr/lintfixture")
}

func TestPartitionBounds(t *testing.T) {
	runFixture(t, "partitionbounds", "intervaljoin/lintfixture/bounds")
}

func TestCacheKey(t *testing.T) {
	// The import path must sit under internal/cache: the analyzer scopes to
	// the cache's packages, like hotpathban scopes to core and mr.
	runFixture(t, "cachekey", "intervaljoin/internal/cache/lintfixture")
}

// TestCacheKeyScope reloads the fixture under a neutral import path:
// outside the cache's packages a partial cache.Key literal may be a
// legitimate sentinel or test scaffold, so the analyzer must stay silent.
func TestCacheKeyScope(t *testing.T) {
	pkg, err := fixtureLoader(t).LoadDir(filepath.Join("testdata", "cachekey"), "intervaljoin/lintfixture/notcache")
	if err != nil {
		t.Fatalf("loading fixture: %v", err)
	}
	diags := RunAnalyzers(pkg, []*Analyzer{CacheKey})
	for _, d := range diags {
		t.Errorf("diagnostic outside the cache scope: %s", d)
	}
}

func TestColKernel(t *testing.T) {
	// Distinct from hotpathban's fixture path: the loader caches packages
	// by import path, so sharing it would hand this test the wrong fixture.
	runFixture(t, "colkernel", "intervaljoin/internal/core/colfixture")
}

// TestColKernelScope reloads the kernel fixture under a neutral import
// path: outside internal/core the kernel* naming convention means nothing,
// so the analyzer must stay silent.
func TestColKernelScope(t *testing.T) {
	pkg, err := fixtureLoader(t).LoadDir(filepath.Join("testdata", "colkernel"), "intervaljoin/lintfixture/notcore")
	if err != nil {
		t.Fatalf("loading fixture: %v", err)
	}
	diags := RunAnalyzers(pkg, []*Analyzer{ColKernel})
	for _, d := range diags {
		t.Errorf("diagnostic outside the core scope: %s", d)
	}
}

// TestTimeNowLoopScope reloads the timing fixture under a neutral import
// path: outside the hot-path packages per-pair clock reads are fine, so
// the analyzer must stay silent.
func TestTimeNowLoopScope(t *testing.T) {
	pkg, err := fixtureLoader(t).LoadDir(filepath.Join("testdata", "timenowloop"), "intervaljoin/lintfixture/nothot")
	if err != nil {
		t.Fatalf("loading fixture: %v", err)
	}
	diags := RunAnalyzers(pkg, []*Analyzer{TimeNowLoop})
	for _, d := range diags {
		t.Errorf("diagnostic outside the hot-path scope: %s", d)
	}
}

// TestHotPathBanScope reloads the same fixture under a neutral import path:
// outside internal/core and internal/mr the banned calls are fine, so the
// analyzer must stay silent.
func TestHotPathBanScope(t *testing.T) {
	pkg, err := fixtureLoader(t).LoadDir(filepath.Join("testdata", "hotpathban"), "intervaljoin/lintfixture/nothot")
	if err != nil {
		t.Fatalf("loading fixture: %v", err)
	}
	diags := RunAnalyzers(pkg, []*Analyzer{HotPathBan})
	for _, d := range diags {
		t.Errorf("diagnostic outside the hot-path scope: %s", d)
	}
}

// TestAllenNames pins the analyzer's relation table to the interval
// package: a new Allen constant (or a renamed one) must update both.
func TestAllenNames(t *testing.T) {
	if len(allenNames) != interval.NumPredicates {
		t.Fatalf("allenNames has %d entries, interval.NumPredicates is %d", len(allenNames), interval.NumPredicates)
	}
	for i, name := range allenNames {
		if got := interval.Predicate(i).String(); got != name {
			t.Errorf("allenNames[%d] = %q, interval names it %q", i, name, got)
		}
	}
}

func TestIgnoreDirectives(t *testing.T) {
	cases := []struct {
		text     string
		analyzer string
		want     bool
	}{
		{"//lint:ignore hotpathban cold path", "hotpathban", true},
		{"//lint:ignore hotpathban cold path", "shardlock", false},
		{"//lint:ignore hotpathban,shardlock startup only", "shardlock", true},
		{"//lint:ignore all bootstrap code", "pooldiscipline", true},
		{"//lint:ignore hotpathban", "hotpathban", false}, // reason is mandatory
		{"// plain comment", "hotpathban", false},
	}
	for _, c := range cases {
		d, ok := parseIgnore(c.text)
		if !ok {
			if c.want {
				t.Errorf("parseIgnore(%q): not recognised as a directive", c.text)
			}
			continue
		}
		if got := d.matches(c.analyzer); got != c.want {
			t.Errorf("%q matches(%s) = %v, want %v", c.text, c.analyzer, got, c.want)
		}
	}
}

// TestLockOrder appends the fixture's lock classes to the canonical
// order (restoring it afterwards) so the fixture exercises violations,
// cycles, self-deadlocks, and the unlisted-class ratchet without
// touching the real module's order.
func TestLockOrder(t *testing.T) {
	saved := CanonicalLockOrder
	CanonicalLockOrder = append(append([]string(nil), saved...),
		"lintfixture/lockorder.acct.mu",
		"lintfixture/lockorder.ledger.mu",
		"lintfixture/lockorder.alpha.mu",
		"lintfixture/lockorder.beta.mu",
		"lintfixture/lockorder.gamma.mu",
		"lintfixture/lockorder.delta.mu",
		"lintfixture/lockorder.sigma.mu",
	)
	defer func() { CanonicalLockOrder = saved }()
	runFixture(t, "lockorder", "intervaljoin/lintfixture/lockorder")
}

func TestGoroutineLeak(t *testing.T) {
	runFixture(t, "goroutineleak", "intervaljoin/lintfixture/goroutineleak")
}

func TestErrorFlow(t *testing.T) {
	// The path sits inside internal/core so the scoped analyzer fires.
	runFixture(t, "errorflow", "intervaljoin/internal/core/errfixture")
}

func TestMetricName(t *testing.T) {
	runFixture(t, "metricname", "intervaljoin/lintfixture/metricname")
}

// TestMetricNameSkipsLivePackage reloads the fixture under the registry's
// own import path: the live package (and its fixtures) exercises invalid
// names on purpose, so the analyzer must stay silent there.
func TestMetricNameSkipsLivePackage(t *testing.T) {
	pkg, err := fixtureLoader(t).LoadDir(filepath.Join("testdata", "metricname"), "intervaljoin/internal/obs/live/lintfixture")
	if err != nil {
		t.Fatalf("loading fixture: %v", err)
	}
	diags := RunAnalyzers(pkg, []*Analyzer{MetricName})
	for _, d := range diags {
		t.Errorf("diagnostic inside the live package scope: %s", d)
	}
}

// TestErrorFlowScope reloads the fixture under a neutral import path:
// outside the engine packages the discipline is not enforced.
func TestErrorFlowScope(t *testing.T) {
	pkg, err := fixtureLoader(t).LoadDir(filepath.Join("testdata", "errorflow"), "intervaljoin/lintfixture/noterr")
	if err != nil {
		t.Fatalf("loading fixture: %v", err)
	}
	diags := RunAnalyzers(pkg, []*Analyzer{ErrorFlow})
	for _, d := range diags {
		t.Errorf("diagnostic outside the errorflow scope: %s", d)
	}
}

// TestUnusedIgnore runs the full analyzer set through RunModule over a
// fixture whose directives cover every unused-ignore shape: one live
// suppression (silent), one stale, one with no analyzer list, one with no
// reason, one naming an unknown analyzer.
func TestUnusedIgnore(t *testing.T) {
	pkg, err := fixtureLoader(t).LoadDir(filepath.Join("testdata", "unusedignore"), "intervaljoin/internal/core/unusedfixture")
	if err != nil {
		t.Fatalf("loading fixture: %v", err)
	}
	diags, _ := RunModule([]*Package{pkg}, All())
	wantSubstrings := []string{
		"has no analyzer list",
		"has no reason",
		`names unknown analyzer "nosuch"`,
		"//lint:ignore hotpathban suppresses no finding",
	}
	for _, d := range diags {
		if d.Analyzer != "unusedignore" {
			t.Errorf("unexpected diagnostic: %s", d)
			continue
		}
		matched := false
		for i, sub := range wantSubstrings {
			if sub != "" && strings.Contains(d.Message, sub) {
				wantSubstrings[i] = ""
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("unexpected unusedignore diagnostic: %s", d)
		}
	}
	for _, sub := range wantSubstrings {
		if sub != "" {
			t.Errorf("no unusedignore diagnostic contained %q", sub)
		}
	}
}

// TestRunAnalyzersSkipsUnusedIgnore pins the single-package entry point's
// contract: fixtures and editors run analyzers over packages whose ignores
// legitimately suppress nothing there, so only RunModule judges them.
func TestRunAnalyzersSkipsUnusedIgnore(t *testing.T) {
	pkg, err := fixtureLoader(t).LoadDir(filepath.Join("testdata", "unusedignore"), "intervaljoin/lintfixture/notjudged")
	if err != nil {
		t.Fatalf("loading fixture: %v", err)
	}
	for _, d := range RunAnalyzers(pkg, All()) {
		t.Errorf("RunAnalyzers reported: %s", d)
	}
}

// TestModuleIsClean runs every analyzer over every module package — the
// in-process equivalent of `go run ./cmd/ijlint ./...` exiting 0, which
// keeps the tree's burned-down state from regressing even when check.sh
// is bypassed.
func TestModuleIsClean(t *testing.T) {
	if testing.Short() {
		t.Skip("full-module analysis is not short")
	}
	l := fixtureLoader(t)
	paths, err := l.Expand(nil)
	if err != nil {
		t.Fatalf("Expand: %v", err)
	}
	var pkgs []*Package
	for _, path := range paths {
		pkg, err := l.Load(path)
		if err != nil {
			t.Fatalf("loading %s: %v", path, err)
		}
		pkgs = append(pkgs, pkg)
	}
	diags, timings := RunModule(pkgs, All())
	for _, d := range diags {
		t.Errorf("finding on the shipped tree: %s", d)
	}
	// The informal perf gate from check.sh, enforced loosely here: no single
	// analyzer may eat the whole lint budget.
	for _, tm := range timings {
		t.Logf("%-16s %v", tm.Analyzer, tm.Wall)
		if tm.Wall > 10*time.Second {
			t.Errorf("analyzer %s took %v, over the 10s budget", tm.Analyzer, tm.Wall)
		}
	}
}
