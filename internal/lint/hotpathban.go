package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// HotPathBan is the forbid-list that keeps the PR-1 hot-path migrations
// from silently regressing: reflection-driven and allocation-heavy stdlib
// helpers are banned from the engine packages (internal/core, internal/mr)
// outside tests. The list and scope are variables so the ijlint driver can
// extend them from the command line.
var HotPathBan = &Analyzer{
	Name: "hotpathban",
	Doc: "banned calls (sort.Slice, fmt.Sprintf, reflect.DeepEqual, ...) in " +
		"the hot-path packages internal/core and internal/mr",
	Run: runHotPathBan,
}

// BannedCalls maps "pkgpath.Func" to the replacement the diagnostic
// suggests. The ijlint -ban flag appends to it.
var BannedCalls = map[string]string{
	"sort.Slice":        "slices.SortFunc with a concrete comparator",
	"fmt.Sprintf":       "strconv append-style formatting onto a byte buffer",
	"reflect.DeepEqual": "a hand-written comparison",
}

// HotPathScope lists the package-path substrings the ban applies to. The
// ijlint -hotpaths flag overrides it.
var HotPathScope = []string{"internal/core", "internal/mr"}

func runHotPathBan(pass *Pass) {
	inScope := false
	for _, s := range HotPathScope {
		if strings.Contains(pass.Pkg.Path(), s) {
			inScope = true
			break
		}
	}
	if !inScope {
		return
	}
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			fn, ok := pass.Info.Uses[sel.Sel].(*types.Func)
			if !ok || fn.Pkg() == nil {
				return true
			}
			full := fn.Pkg().Path() + "." + fn.Name()
			if alt, banned := BannedCalls[full]; banned {
				pass.Reportf(call.Pos(),
					"%s is banned in hot-path package %s; use %s", full, pass.Pkg.Path(), alt)
			}
			return true
		})
	}
}
