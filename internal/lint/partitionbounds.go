package lint

import (
	"go/ast"
	"go/types"
)

// PartitionBounds enforces error handling on the partitioning
// constructors. interval.MakeUniform, interval.NewEquiDepth and
// interval.NewExplicit validate their boundary arguments (ordering,
// emptiness, t0 < tn) and report violations through their error result —
// the returned Partitioning is unusable when the error is non-nil. A call
// that discards the whole result, or blanks the error with `_`, turns a
// malformed boundary set into a later panic (or, worse, a silently wrong
// key layout) far from the call site; the adaptive planner builds
// candidate boundary sets from data-derived samples, so these errors are
// reachable, not theoretical.
var PartitionBounds = &Analyzer{
	Name: "partitionbounds",
	Doc: "interval.MakeUniform/NewEquiDepth/NewExplicit call sites must check " +
		"the error result; boundary validation failures are data-reachable",
	Run: runPartitionBounds,
}

// partitionCtors are the error-returning partitioning constructors.
var partitionCtors = map[string]bool{
	"MakeUniform":  true,
	"NewEquiDepth": true,
	"NewExplicit":  true,
}

func runPartitionBounds(pass *Pass) {
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch s := n.(type) {
			case *ast.ExprStmt:
				if name, ok := partitionCtorCall(pass.Info, s.X); ok {
					pass.Reportf(s.Pos(),
						"result of interval.%s discarded; the error reports invalid partition boundaries",
						name)
				}
			case *ast.AssignStmt:
				// part, _ := interval.MakeUniform(...) — the error slot
				// (last LHS position) blanked on a constructor call.
				if len(s.Rhs) != 1 || len(s.Lhs) < 2 {
					return true
				}
				name, ok := partitionCtorCall(pass.Info, s.Rhs[0])
				if !ok {
					return true
				}
				if id, isIdent := s.Lhs[len(s.Lhs)-1].(*ast.Ident); isIdent && id.Name == "_" {
					pass.Reportf(id.Pos(),
						"error from interval.%s blanked; check it — boundary validation failures are data-reachable",
						name)
				}
			}
			return true
		})
	}
}

// partitionCtorCall reports whether the expression is a call to one of the
// partitioning constructors of the interval package, resolving the callee
// through the type info so an unrelated NewExplicit is not mistaken for it.
func partitionCtorCall(info *types.Info, e ast.Expr) (string, bool) {
	call, ok := e.(*ast.CallExpr)
	if !ok {
		return "", false
	}
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return "", false
	}
	fn, ok := info.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Pkg() == nil || !partitionCtors[fn.Name()] {
		return "", false
	}
	path := fn.Pkg().Path()
	if path != "internal/interval" && !hasPathSuffix(path, "internal/interval") {
		return "", false
	}
	return fn.Name(), true
}
