package lint

import (
	"go/ast"
	"go/token"
	"go/types"

	"intervaljoin/internal/lint/flow"
)

// GoroutineLeak demands a provable join for every go statement: the
// spawner (or a function it demonstrably calls) must observe the
// goroutine's termination before its own scope completes. Three proof
// shapes are accepted, checked through the CFG and the call graph:
//
//   - WaitGroup: the goroutine calls Done (possibly inside a helper it
//     was handed the WaitGroup through), an Add on the same WaitGroup
//     reaches the go statement, and a Wait on it is reachable after.
//   - Channel handoff: the goroutine sends on or closes a channel the
//     spawner receives from after the go statement — or receives from a
//     channel the spawner later sends on or closes (worker feeding).
//   - Context: the goroutine receives from a context's Done channel, so
//     cancellation bounds its lifetime.
//
// WaitGroups and channels reached through struct fields may be joined by
// a different method than the spawner (start/stop object patterns); for
// those the Wait/receive may live anywhere in the module. A goroutine
// with none of these is a leak: in a long-running service it outlives
// its task, and in the coming multi-node runtime it becomes a silent
// zombie worker.
var GoroutineLeak = &Analyzer{
	Name: "goroutineleak",
	Doc: "every go statement needs a provable join: WaitGroup Add/Done/Wait " +
		"balance, a channel handoff the spawner completes, or a bounding context",
	Run: runGoroutineLeak,
}

type joinKind int

const (
	jDone joinKind = iota
	jAdd
	jWait
	jSend
	jRecv
	joinKinds
)

// joinSummary is one function's join-relevant behavior: the WaitGroup
// and channel objects it touches (roots), the same facts expressed over
// its own parameters (params, mapped through call sites), and whether it
// receives from a context's Done channel.
type joinSummary struct {
	roots  [joinKinds]map[types.Object]bool
	params [joinKinds]map[int]bool
	ctx    bool
}

func (s *joinSummary) addRoot(kind joinKind, obj types.Object) bool {
	if obj == nil {
		return false
	}
	if s.roots[kind] == nil {
		s.roots[kind] = make(map[types.Object]bool)
	}
	if s.roots[kind][obj] {
		return false
	}
	s.roots[kind][obj] = true
	return true
}

func (s *joinSummary) addParam(kind joinKind, i int) bool {
	if s.params[kind] == nil {
		s.params[kind] = make(map[int]bool)
	}
	if s.params[kind][i] {
		return false
	}
	s.params[kind][i] = true
	return true
}

type leakAnalysis struct {
	sums map[*flow.Node]*joinSummary
	// Join facts on field and package-level objects, anywhere in the
	// module: the transferred-join fallback for start/stop patterns.
	fieldOps [joinKinds]map[types.Object]bool
}

func runGoroutineLeak(pass *Pass) {
	g := pass.Flow
	a := g.Memo("goroutineleak", func() any { return buildLeakAnalysis(g) }).(*leakAnalysis)
	for _, n := range g.Nodes() {
		if n.Unit != pass.Unit {
			continue
		}
		checkGoStmts(pass, a, n)
	}
}

func checkGoStmts(pass *Pass, a *leakAnalysis, n *flow.Node) {
	g := pass.Flow
	cfg := g.CFG(n)

	// The spawner's own join facts, one entry per CFG node, with
	// deferred facts flagged: a deferred Wait or close runs at function
	// exit, which is always "after" the go statement.
	type nodeFacts struct {
		node     ast.Node
		deferred bool
		ops      [joinKinds]map[types.Object]bool
	}
	var facts []nodeFacts
	for _, b := range cfg.Blocks {
		for _, node := range b.Nodes {
			if _, ok := node.(*ast.GoStmt); ok {
				continue
			}
			nf := nodeFacts{node: node}
			_, nf.deferred = node.(*ast.DeferStmt)
			collect := func(kind joinKind, obj types.Object) {
				if obj == nil {
					return
				}
				if nf.ops[kind] == nil {
					nf.ops[kind] = make(map[types.Object]bool)
				}
				nf.ops[kind][obj] = true
			}
			nodeJoinOps(n.Unit, g, a, node, collect)
			facts = append(facts, nf)
		}
	}

	for _, b := range cfg.Blocks {
		for _, node := range b.Nodes {
			gs, ok := node.(*ast.GoStmt)
			if !ok {
				continue
			}
			callees := g.Callees(n.Unit, gs.Call)
			if len(callees) == 0 {
				pass.Reportf(gs.Pos(), "goroutine spawns a function outside the analysis scope; no join can be proven")
				continue
			}
			var G joinSummary
			for _, m := range callees {
				mapSummary(&G, a.sums[m], n.Unit, gs.Call.Args)
			}
			if G.ctx {
				continue
			}
			afterHas := func(kind joinKind, obj types.Object) bool {
				for _, nf := range facts {
					if nf.ops[kind][obj] && (nf.deferred || cfg.Reaches(gs, nf.node)) {
						return true
					}
				}
				return false
			}
			beforeHas := func(kind joinKind, obj types.Object) bool {
				for _, nf := range facts {
					if nf.ops[kind][obj] && !nf.deferred && cfg.Reaches(nf.node, gs) {
						return true
					}
				}
				return false
			}
			proven := false
			sawWG, sawWait := false, false
			for wg := range G.roots[jDone] {
				sawWG = true
				waitOK := afterHas(jWait, wg) || (sharedJoinObject(wg) && a.fieldOps[jWait][wg])
				addOK := beforeHas(jAdd, wg) || (sharedJoinObject(wg) && a.fieldOps[jAdd][wg])
				if waitOK {
					sawWait = true
				}
				if waitOK && addOK {
					proven = true
					break
				}
			}
			for ch := range G.roots[jSend] {
				if proven {
					break
				}
				if afterHas(jRecv, ch) || (sharedJoinObject(ch) && a.fieldOps[jRecv][ch]) {
					proven = true
				}
			}
			for ch := range G.roots[jRecv] {
				if proven {
					break
				}
				if afterHas(jSend, ch) || (sharedJoinObject(ch) && a.fieldOps[jSend][ch]) {
					proven = true
				}
			}
			if proven {
				continue
			}
			switch {
			case sawWG && !sawWait:
				pass.Reportf(gs.Pos(), "goroutine calls Done but no Wait on the same WaitGroup is reachable after the go statement")
			case sawWG:
				pass.Reportf(gs.Pos(), "goroutine joins a WaitGroup but no Add on it reaches the go statement")
			case len(G.roots[jSend]) > 0 || len(G.roots[jRecv]) > 0:
				pass.Reportf(gs.Pos(), "goroutine uses a channel but the spawner never completes the handoff after the go statement")
			default:
				pass.Reportf(gs.Pos(), "goroutine has no provable join: use a WaitGroup, a channel handoff, or a bounding context")
			}
		}
	}
}

// nodeJoinOps reports one CFG node's join facts, resolving calls into
// module functions through their summaries.
func nodeJoinOps(u *flow.Unit, g *flow.Graph, a *leakAnalysis, node ast.Node, collect func(joinKind, types.Object)) {
	if rs, ok := node.(*ast.RangeStmt); ok {
		if isChanType(u.Info.TypeOf(rs.X)) {
			collect(jRecv, joinRoot(u, rs.X))
		}
	}
	flow.WalkExprs(node, func(c ast.Node) bool {
		switch x := c.(type) {
		case *ast.CallExpr:
			if kind, obj, ok := wgOp(u, x); ok {
				collect(kind, obj)
				return true
			}
			if isBuiltin(u.Info, x, "close") && len(x.Args) == 1 {
				collect(jSend, joinRoot(u, x.Args[0]))
				return true
			}
			for _, m := range g.Callees(u, x) {
				var mapped joinSummary
				mapSummary(&mapped, a.sums[m], u, x.Args)
				for kind := joinKind(0); kind < joinKinds; kind++ {
					for obj := range mapped.roots[kind] {
						collect(kind, obj)
					}
				}
			}
		case *ast.SendStmt:
			collect(jSend, joinRoot(u, x.Chan))
		case *ast.UnaryExpr:
			if x.Op == token.ARROW && !isCtxDone(u, x.X) {
				collect(jRecv, joinRoot(u, x.X))
			}
		}
		return true
	})
}

// mapSummary unions src into dst, rewriting src's parameter facts
// through the call's arguments.
func mapSummary(dst *joinSummary, src *joinSummary, u *flow.Unit, args []ast.Expr) {
	if src == nil {
		return
	}
	dst.ctx = dst.ctx || src.ctx
	for kind := joinKind(0); kind < joinKinds; kind++ {
		for obj := range src.roots[kind] {
			dst.addRoot(kind, obj)
		}
		for i := range src.params[kind] {
			if i < len(args) {
				dst.addRoot(kind, joinRoot(u, args[i]))
			}
		}
	}
}

// buildLeakAnalysis computes join summaries for every module function to
// a fixed point over the call graph.
func buildLeakAnalysis(g *flow.Graph) *leakAnalysis {
	a := &leakAnalysis{sums: make(map[*flow.Node]*joinSummary)}

	type callSite struct {
		call    *ast.CallExpr
		callees []*flow.Node
	}
	sites := make(map[*flow.Node][]callSite)
	paramIdx := make(map[*flow.Node]map[types.Object]int)

	for _, n := range g.Nodes() {
		n := n
		sum := &joinSummary{}
		a.sums[n] = sum
		idx := make(map[types.Object]int)
		params := n.Signature().Params()
		for i := 0; i < params.Len(); i++ {
			idx[params.At(i)] = i
		}
		paramIdx[n] = idx
		record := func(kind joinKind, obj types.Object) bool {
			if obj == nil {
				return false
			}
			if i, ok := idx[obj]; ok {
				return sum.addParam(kind, i)
			}
			return sum.addRoot(kind, obj)
		}
		summaryWalk(n.Body, func(c ast.Node) bool {
			switch x := c.(type) {
			case *ast.CallExpr:
				if kind, obj, ok := wgOp(n.Unit, x); ok {
					record(kind, obj)
					return true
				}
				if isBuiltin(n.Unit.Info, x, "close") && len(x.Args) == 1 {
					record(jSend, joinRoot(n.Unit, x.Args[0]))
					return true
				}
				if ms := g.Callees(n.Unit, x); len(ms) > 0 {
					sites[n] = append(sites[n], callSite{x, ms})
				}
			case *ast.SendStmt:
				record(jSend, joinRoot(n.Unit, x.Chan))
			case *ast.UnaryExpr:
				if x.Op == token.ARROW {
					if isCtxDone(n.Unit, x.X) {
						sum.ctx = true
					} else {
						record(jRecv, joinRoot(n.Unit, x.X))
					}
				}
			case *ast.RangeStmt:
				if isChanType(n.Unit.Info.TypeOf(x.X)) {
					record(jRecv, joinRoot(n.Unit, x.X))
				}
			}
			return true
		})
	}

	for changed := true; changed; {
		changed = false
		for n, ss := range sites {
			sum := a.sums[n]
			idx := paramIdx[n]
			record := func(kind joinKind, obj types.Object) bool {
				if obj == nil {
					return false
				}
				if i, ok := idx[obj]; ok {
					return sum.addParam(kind, i)
				}
				return sum.addRoot(kind, obj)
			}
			for _, s := range ss {
				for _, m := range s.callees {
					ms := a.sums[m]
					if ms == nil {
						continue
					}
					if ms.ctx && !sum.ctx {
						sum.ctx = true
						changed = true
					}
					for kind := joinKind(0); kind < joinKinds; kind++ {
						for obj := range ms.roots[kind] {
							if record(kind, obj) {
								changed = true
							}
						}
						for i := range ms.params[kind] {
							if i < len(s.call.Args) {
								if record(kind, joinRoot(n.Unit, s.call.Args[i])) {
									changed = true
								}
							}
						}
					}
				}
			}
		}
	}

	for kind := joinKind(0); kind < joinKinds; kind++ {
		a.fieldOps[kind] = make(map[types.Object]bool)
		for _, sum := range a.sums {
			for obj := range sum.roots[kind] {
				if sharedJoinObject(obj) {
					a.fieldOps[kind][obj] = true
				}
			}
		}
	}
	return a
}

// sharedJoinObject reports whether the WaitGroup or channel lives in a
// struct field or package variable — join resources whose Wait side may
// legitimately be a different function than the spawner.
func sharedJoinObject(obj types.Object) bool {
	v, ok := obj.(*types.Var)
	if !ok {
		return false
	}
	return v.IsField() || (v.Parent() != nil && v.Parent().Parent() == types.Universe)
}

// wgOp classifies a sync.WaitGroup Add/Done/Wait method call and
// resolves the receiver to its root object.
func wgOp(u *flow.Unit, call *ast.CallExpr) (joinKind, types.Object, bool) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return 0, nil, false
	}
	var kind joinKind
	switch sel.Sel.Name {
	case "Add":
		kind = jAdd
	case "Done":
		kind = jDone
	case "Wait":
		kind = jWait
	default:
		return 0, nil, false
	}
	fn, ok := u.Info.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "sync" {
		return 0, nil, false
	}
	if t := u.Info.TypeOf(sel.X); t == nil || !namedTypeIs(t, "sync", "WaitGroup") {
		return 0, nil, false
	}
	return kind, joinRoot(u, sel.X), true
}

// joinRoot resolves an expression to the object identifying its join
// resource: a local variable, a parameter, a struct field, or a package
// variable. Field identity is the field object itself, shared by every
// instance — coarse, and exactly what the transferred-join rule needs.
func joinRoot(u *flow.Unit, e ast.Expr) types.Object {
	switch x := ast.Unparen(e).(type) {
	case *ast.Ident:
		if o := u.Info.Uses[x]; o != nil {
			return o
		}
		return u.Info.Defs[x]
	case *ast.UnaryExpr:
		if x.Op == token.AND {
			return joinRoot(u, x.X)
		}
	case *ast.StarExpr:
		return joinRoot(u, x.X)
	case *ast.SelectorExpr:
		if sel, ok := u.Info.Selections[x]; ok && sel.Kind() == types.FieldVal {
			return sel.Obj()
		}
		return u.Info.Uses[x.Sel]
	}
	return nil
}

// isCtxDone reports whether e is a context's Done() call.
func isCtxDone(u *flow.Unit, e ast.Expr) bool {
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok {
		return false
	}
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "Done" {
		return false
	}
	t := u.Info.TypeOf(sel.X)
	return t != nil && namedTypeIs(t, "context", "Context")
}

func isChanType(t types.Type) bool {
	if t == nil {
		return false
	}
	_, ok := t.Underlying().(*types.Chan)
	return ok
}
