package lint

import (
	"go/ast"
	"strings"
)

// CacheKey enforces complete cache-key construction in the semantic
// segment cache. A cache.Key identifies a result space by canonical plan,
// predicate family, and resident-relation versions; a keyed composite
// literal that omits Versions serves stale rows after a relation is
// re-registered, and one that omits Family lets two queries whose plans
// render identically but classify differently share segments. Both bugs
// are silent — the cache returns plausible rows — so the construction
// rule is enforced mechanically: every keyed cache.Key literal in the
// cache's packages must set Plan, Family and Versions explicitly
// (positional literals necessarily set all fields and pass).
var CacheKey = &Analyzer{
	Name: "cachekey",
	Doc: "cache.Key literals in internal/cache must set Plan, Family and " +
		"Versions; a key missing the relation versions or predicate family " +
		"serves stale or cross-family cached rows",
	Run: runCacheKey,
}

// cacheKeyScope limits the check to the packages that construct live cache
// keys; the ijlint driver scopes per package path, mirroring hotpathban.
var cacheKeyScope = []string{"internal/cache"}

func runCacheKey(pass *Pass) {
	inScope := false
	for _, s := range cacheKeyScope {
		if strings.Contains(pass.Pkg.Path(), s) {
			inScope = true
			break
		}
	}
	if !inScope {
		return
	}
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			lit, ok := n.(*ast.CompositeLit)
			if !ok {
				return true
			}
			tv, ok := pass.Info.Types[lit]
			if !ok || !namedTypeIs(tv.Type, "internal/cache", "Key") {
				return true
			}
			// A positional literal must supply every field to compile, so
			// only keyed (or empty) literals can under-specify the key.
			if len(lit.Elts) > 0 {
				if _, keyed := lit.Elts[0].(*ast.KeyValueExpr); !keyed {
					return true
				}
			}
			set := make(map[string]bool, len(lit.Elts))
			for _, e := range lit.Elts {
				if kv, ok := e.(*ast.KeyValueExpr); ok {
					if id, ok := kv.Key.(*ast.Ident); ok {
						set[id.Name] = true
					}
				}
			}
			var missing []string
			for _, field := range []string{"Plan", "Family", "Versions"} {
				if !set[field] {
					missing = append(missing, field)
				}
			}
			if len(missing) > 0 {
				pass.Reportf(lit.Pos(),
					"cache.Key literal omits %s; a key must carry the canonical plan, predicate family and relation versions",
					strings.Join(missing, ", "))
			}
			return true
		})
	}
}
