// Package lint is ijlint's analysis framework plus the thirteen
// domain-specific analyzers that mechanically enforce the engine's
// invariants (exhaustive Allen-predicate switches, emitter escape
// discipline, sync.Pool hygiene, shard-lock guarding, the hot-path
// forbid-list, the per-pair-loop clock-read ban, the columnar-kernel
// purity rule, checked partition-boundary construction, complete
// semantic-cache key construction, canonical lock ordering, provable
// goroutine joins, error-flow discipline, and literal validated
// telemetry registrations).
//
// Since the interprocedural layer landed, analyzers also get flow facts:
// a module-wide call graph, per-function CFGs, and a forward dataflow
// engine (internal/lint/flow), exposed on the Pass. The last four
// analyzers are built on it; the rest remain single-file AST walks.
//
// The framework mirrors the shape of golang.org/x/tools/go/analysis —
// an Analyzer runs over a type-checked Pass and reports Diagnostics —
// but is built purely on the standard library (go/ast, go/types and the
// source importer), because this module deliberately carries no external
// dependencies. Analyzers written here would port to x/tools analyzers
// nearly mechanically if the module ever grows that dependency.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"time"

	"intervaljoin/internal/lint/flow"
)

// Analyzer is one named static check.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and //lint:ignore
	// directives. Lower-case, no spaces.
	Name string
	// Doc is a one-paragraph description of what the analyzer enforces.
	Doc string
	// Run inspects the package held by pass and reports findings via
	// pass.Reportf.
	Run func(pass *Pass)
}

// Pass carries one type-checked package through an analyzer run.
type Pass struct {
	// Analyzer is the check being run.
	Analyzer *Analyzer
	// Fset maps token positions to file locations.
	Fset *token.FileSet
	// Files are the package's parsed (non-test) files.
	Files []*ast.File
	// Pkg is the type-checked package.
	Pkg *types.Package
	// Info holds the type-checker's recordings for the package.
	Info *types.Info
	// Flow is the interprocedural fact layer: the static call graph over
	// every package of the run (the whole module under RunModule, just
	// this package under RunAnalyzers) plus per-function CFGs and the
	// dataflow engine.
	Flow *flow.Graph
	// Unit is this package's view inside Flow.
	Unit *flow.Unit

	diags *[]Diagnostic
}

// Diagnostic is one finding.
type Diagnostic struct {
	Pos      token.Position
	Analyzer string
	Message  string
}

// String renders the diagnostic in the conventional file:line:col form.
func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: %s [%s]", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Message, d.Analyzer)
}

// Reportf records one finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	*p.diags = append(*p.diags, Diagnostic{
		Pos:      p.Fset.Position(pos),
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// All returns the thirteen ijlint analyzers in their canonical order.
func All() []*Analyzer {
	return []*Analyzer{
		AllenExhaustive,
		EmitterEscape,
		PoolDiscipline,
		ShardLock,
		HotPathBan,
		TimeNowLoop,
		ColKernel,
		PartitionBounds,
		CacheKey,
		LockOrder,
		GoroutineLeak,
		ErrorFlow,
		MetricName,
	}
}

// ByName resolves an analyzer by its Name, or nil.
func ByName(name string) *Analyzer {
	for _, a := range All() {
		if a.Name == name {
			return a
		}
	}
	return nil
}

// unit builds the package's flow view.
func (pkg *Package) unit() *flow.Unit {
	return &flow.Unit{Fset: pkg.Fset, Files: pkg.Files, Pkg: pkg.Types, Info: pkg.Info}
}

// RunAnalyzers applies the analyzers to one package and returns the
// findings that are not suppressed by //lint:ignore directives, sorted by
// position. Interprocedural facts are scoped to the package; use
// RunModule for whole-module resolution and for unused-ignore findings.
func RunAnalyzers(pkg *Package, analyzers []*Analyzer) []Diagnostic {
	unit := pkg.unit()
	g := flow.Build([]*flow.Unit{unit})
	var diags []Diagnostic
	for _, a := range analyzers {
		pass := &Pass{
			Analyzer: a,
			Fset:     pkg.Fset,
			Files:    pkg.Files,
			Pkg:      pkg.Types,
			Info:     pkg.Info,
			Flow:     g,
			Unit:     unit,
			diags:    &diags,
		}
		a.Run(pass)
	}
	diags = applyIgnores(collectDirectives([]*Package{pkg}), diags)
	sortDiagnostics(diags)
	return diags
}

// Timing is one analyzer's wall-clock cost over a RunModule call, summed
// across packages. The pseudo-entry "(callgraph)" reports the shared
// interprocedural graph construction.
type Timing struct {
	Analyzer string
	Wall     time.Duration
}

// RunModule applies the analyzers to every package over one module-wide
// call graph, so interprocedural analyzers see cross-package flows. On
// top of the analyzers' own findings it reports //lint:ignore directives
// that suppressed nothing (analyzer name "unusedignore"), so burned-down
// suppressions cannot rot in the tree.
func RunModule(pkgs []*Package, analyzers []*Analyzer) ([]Diagnostic, []Timing) {
	units := make([]*flow.Unit, len(pkgs))
	for i, pkg := range pkgs {
		units[i] = pkg.unit()
	}
	start := time.Now()
	g := flow.Build(units)
	timings := []Timing{{Analyzer: "(callgraph)", Wall: time.Since(start)}}
	var diags []Diagnostic
	for _, a := range analyzers {
		t0 := time.Now()
		for i, pkg := range pkgs {
			pass := &Pass{
				Analyzer: a,
				Fset:     pkg.Fset,
				Files:    pkg.Files,
				Pkg:      pkg.Types,
				Info:     pkg.Info,
				Flow:     g,
				Unit:     units[i],
				diags:    &diags,
			}
			a.Run(pass)
		}
		timings = append(timings, Timing{Analyzer: a.Name, Wall: time.Since(t0)})
	}
	sites := collectDirectives(pkgs)
	diags = applyIgnores(sites, diags)
	diags = append(diags, unusedIgnores(sites, analyzers)...)
	sortDiagnostics(diags)
	return diags, timings
}

func sortDiagnostics(diags []Diagnostic) {
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i].Pos, diags[j].Pos
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		return a.Column < b.Column
	})
}

// namedTypeIs reports whether t (after stripping one level of pointer) is
// the named type pkgPathSuffix.name — suffix-matched on the package path so
// the check is robust to the module being vendored or renamed.
func namedTypeIs(t types.Type, pkgPathSuffix, name string) bool {
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	if obj == nil || obj.Pkg() == nil || obj.Name() != name {
		return false
	}
	path := obj.Pkg().Path()
	return path == pkgPathSuffix || hasPathSuffix(path, pkgPathSuffix)
}

// hasPathSuffix reports whether path ends in "/"+suffix.
func hasPathSuffix(path, suffix string) bool {
	return len(path) > len(suffix)+1 &&
		path[len(path)-len(suffix)-1] == '/' &&
		path[len(path)-len(suffix):] == suffix
}

// isBuiltin reports whether the call invokes the named builtin (panic,
// delete, ...), resolving through the type info so shadowed identifiers are
// not mistaken for the builtin.
func isBuiltin(info *types.Info, call *ast.CallExpr, name string) bool {
	id, ok := call.Fun.(*ast.Ident)
	if !ok || id.Name != name {
		return false
	}
	_, builtin := info.Uses[id].(*types.Builtin)
	return builtin
}

// enclosingFuncs yields every function body in file: declarations and
// literals, each paired with the node whose Body holds the statements.
func enclosingFuncs(file *ast.File, fn func(body *ast.BlockStmt)) {
	ast.Inspect(file, func(n ast.Node) bool {
		switch d := n.(type) {
		case *ast.FuncDecl:
			if d.Body != nil {
				fn(d.Body)
			}
		case *ast.FuncLit:
			fn(d.Body)
		}
		return true
	})
}

// usesObject reports whether the expression subtree mentions obj.
func usesObject(info *types.Info, n ast.Node, obj types.Object) bool {
	found := false
	ast.Inspect(n, func(c ast.Node) bool {
		if id, ok := c.(*ast.Ident); ok && info.Uses[id] == obj {
			found = true
		}
		return !found
	})
	return found
}
