package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"intervaljoin/internal/lint/flow"
)

// ErrorFlowScope lists the package-path fragments on which the errorflow
// analyzer is enforced. The engine path must never swallow an error: every
// error value has to reach a return, a Metrics counter, an error channel,
// or a panic. Presentation helpers (String methods and the like) outside
// these packages are free to drop never-failing writer errors.
var ErrorFlowScope = []string{
	"internal/core",
	"internal/mr",
	"internal/dfs",
	"internal/cache",
}

// ErrorFlow enforces error-flow discipline on the engine path.
var ErrorFlow = &Analyzer{
	Name: "errorflow",
	Doc: "Errors on the engine path must be consulted: no blank-discarding " +
		"an error result, no dropping one by calling for side effects only " +
		"(unless the statement sits on a failure path that already returns, " +
		"sends, or panics an error), no assigning an error that is never " +
		"read or is overwritten unread, and no passing a live error into a " +
		"function that ignores its error parameter.",
	Run: runErrorFlow,
}

var errorIface = types.Universe.Lookup("error").Type()

// isErrorType reports whether t is exactly the error interface.
func isErrorType(t types.Type) bool {
	return t != nil && types.Identical(t, errorIface)
}

func errorFlowInScope(path string) bool {
	for _, s := range ErrorFlowScope {
		if strings.Contains(path, s) {
			return true
		}
	}
	return false
}

func runErrorFlow(pass *Pass) {
	if !errorFlowInScope(pass.Pkg.Path()) {
		return
	}
	sinks := errorSinks(pass.Flow)
	for _, file := range pass.Files {
		checkErrorDiscards(pass, file)
		checkDeadErrors(pass, file)
		checkStmtLists(pass, file)
		checkErrorSinkCalls(pass, file, sinks)
	}
}

// checkErrorDiscards flags assignments that blank an error produced by a
// call: `_ = f()` and `v, _ := g()` where the blanked slot is error-typed.
// Type assertions and map lookups (`v, _ := x.(T)`) are not calls and are
// untouched.
func checkErrorDiscards(pass *Pass, file *ast.File) {
	ast.Inspect(file, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok {
			return true
		}
		if len(as.Rhs) == 1 && len(as.Lhs) > 1 {
			// Tuple form: one call, several results.
			call, ok := ast.Unparen(as.Rhs[0]).(*ast.CallExpr)
			if !ok {
				return true
			}
			tup, ok := pass.Info.TypeOf(call).(*types.Tuple)
			if !ok {
				return true
			}
			for i, lhs := range as.Lhs {
				if isBlankIdent(lhs) && i < tup.Len() && isErrorType(tup.At(i).Type()) {
					pass.Reportf(lhs.Pos(), "error result of %s discarded with _; errors on the engine path must reach a return, Metrics, or a panic", callName(call))
				}
			}
			return true
		}
		for i, lhs := range as.Lhs {
			if !isBlankIdent(lhs) || i >= len(as.Rhs) {
				continue
			}
			call, ok := ast.Unparen(as.Rhs[i]).(*ast.CallExpr)
			if !ok {
				continue
			}
			if tv, ok := pass.Info.Types[call.Fun]; ok && tv.IsType() {
				continue // conversion, not a call
			}
			if isErrorType(pass.Info.TypeOf(call)) {
				pass.Reportf(lhs.Pos(), "error result of %s discarded with _; errors on the engine path must reach a return, Metrics, or a panic", callName(call))
			}
		}
		return true
	})
}

func isBlankIdent(e ast.Expr) bool {
	id, ok := e.(*ast.Ident)
	return ok && id.Name == "_"
}

// callName renders a short name for the called function, for messages.
func callName(call *ast.CallExpr) string {
	switch f := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		return f.Name
	case *ast.SelectorExpr:
		if x, ok := ast.Unparen(f.X).(*ast.Ident); ok {
			return x.Name + "." + f.Sel.Name
		}
		return f.Sel.Name
	}
	return "the call"
}

// checkStmtLists walks every statement list of the file (block bodies and
// switch/select clause bodies) and applies the two list-local rules: bare
// error-dropping call statements, and error assignments overwritten before
// any read.
func checkStmtLists(pass *Pass, file *ast.File) {
	ast.Inspect(file, func(n ast.Node) bool {
		var list []ast.Stmt
		switch s := n.(type) {
		case *ast.BlockStmt:
			list = s.List
		case *ast.CaseClause:
			list = s.Body
		case *ast.CommClause:
			list = s.Body
		default:
			return true
		}
		checkBareDrops(pass, list)
		checkErrorOverwrites(pass, list)
		return true
	})
}

// checkBareDrops flags expression statements whose call returns an error
// that nothing receives. Exemptions: calls on never-failing writers
// (strings.Builder, bytes.Buffer), and statements on a failure path — a
// later statement in the same block returns an error, sends an error on a
// channel, or panics, so the drop is best-effort cleanup with the real
// error already in flight.
func checkBareDrops(pass *Pass, list []ast.Stmt) {
	for i, s := range list {
		es, ok := s.(*ast.ExprStmt)
		if !ok {
			continue
		}
		call, ok := ast.Unparen(es.X).(*ast.CallExpr)
		if !ok {
			continue
		}
		if tv, ok := pass.Info.Types[call.Fun]; ok && tv.IsType() {
			continue
		}
		if !resultHasError(pass.Info.TypeOf(call)) {
			continue
		}
		if neverFailsReceiver(pass.Info, call) {
			continue
		}
		if failureExitFollows(pass.Info, list[i+1:]) {
			continue
		}
		pass.Reportf(es.Pos(), "call to %s drops its error result; check it or route it to a return, Metrics, or a panic", callName(call))
	}
}

// resultHasError reports whether the call's result type includes an error.
func resultHasError(t types.Type) bool {
	if tup, ok := t.(*types.Tuple); ok {
		for i := 0; i < tup.Len(); i++ {
			if isErrorType(tup.At(i).Type()) {
				return true
			}
		}
		return false
	}
	return isErrorType(t)
}

// neverFailsReceiver reports whether the call is a method on a writer whose
// error result is documented to always be nil, or an fmt.Fprint* call whose
// destination is such a writer.
func neverFailsReceiver(info *types.Info, call *ast.CallExpr) bool {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return false
	}
	if x, ok := ast.Unparen(sel.X).(*ast.Ident); ok {
		if pn, ok := info.Uses[x].(*types.PkgName); ok {
			if pn.Imported().Path() == "fmt" && strings.HasPrefix(sel.Sel.Name, "Fprint") && len(call.Args) > 0 {
				return infallibleWriter(info.TypeOf(call.Args[0]))
			}
			return false
		}
	}
	return infallibleWriter(info.TypeOf(sel.X))
}

// infallibleWriter reports whether t (possibly a pointer) is a writer that
// never returns a non-nil error.
func infallibleWriter(t types.Type) bool {
	return namedTypeIs(t, "strings", "Builder") || namedTypeIs(t, "bytes", "Buffer")
}

// failureExitFollows reports whether any of the statements returns an
// error-typed value, sends an error-typed value, or panics.
func failureExitFollows(info *types.Info, rest []ast.Stmt) bool {
	for _, s := range rest {
		switch s := s.(type) {
		case *ast.ReturnStmt:
			for _, r := range s.Results {
				if isErrorType(info.TypeOf(r)) && !info.Types[r].IsNil() {
					return true
				}
			}
		case *ast.SendStmt:
			if isErrorType(info.TypeOf(s.Value)) {
				return true
			}
		case *ast.ExprStmt:
			if call, ok := ast.Unparen(s.X).(*ast.CallExpr); ok && isBuiltin(info, call, "panic") {
				return true
			}
		}
	}
	return false
}

// checkDeadErrors flags error variables defined from a call and never read
// anywhere in the function. Reads are uses outside assignment left-hand
// sides, so `err = f()` alone does not count as consulting err.
func checkDeadErrors(pass *Pass, file *ast.File) {
	// Idents appearing as the target of an assignment.
	lhsIdents := make(map[*ast.Ident]bool)
	ast.Inspect(file, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok {
			return true
		}
		for _, lhs := range as.Lhs {
			if id, ok := ast.Unparen(lhs).(*ast.Ident); ok {
				lhsIdents[id] = true
			}
		}
		return true
	})
	reads := make(map[types.Object]int)
	ast.Inspect(file, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok || lhsIdents[id] {
			return true
		}
		if obj := pass.Info.Uses[id]; obj != nil {
			reads[obj]++
		}
		return true
	})
	ast.Inspect(file, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || as.Tok != token.DEFINE {
			return true
		}
		for i, lhs := range as.Lhs {
			id, ok := lhs.(*ast.Ident)
			if !ok || id.Name == "_" {
				continue
			}
			obj := pass.Info.Defs[id]
			if obj == nil || !isErrorType(obj.Type()) || reads[obj] > 0 {
				continue
			}
			if !rhsHasCall(as, i) {
				continue
			}
			pass.Reportf(id.Pos(), "error assigned to %s is never consulted", id.Name)
		}
		return true
	})
}

// rhsHasCall reports whether slot i of the assignment is produced by a call.
func rhsHasCall(as *ast.AssignStmt, i int) bool {
	var rhs ast.Expr
	if len(as.Rhs) == 1 {
		rhs = as.Rhs[0]
	} else if i < len(as.Rhs) {
		rhs = as.Rhs[i]
	} else {
		return false
	}
	_, ok := ast.Unparen(rhs).(*ast.CallExpr)
	return ok
}

// checkErrorOverwrites flags an error assignment whose value is overwritten
// by the next statement that mentions the variable, without any read in
// between: the first result can never influence control flow.
func checkErrorOverwrites(pass *Pass, list []ast.Stmt) {
	for i, s := range list {
		as, ok := s.(*ast.AssignStmt)
		if !ok {
			continue
		}
		for k, lhs := range as.Lhs {
			id, ok := lhs.(*ast.Ident)
			if !ok || id.Name == "_" || !rhsHasCall(as, k) {
				continue
			}
			obj := assignTarget(pass.Info, id)
			if obj == nil || !isErrorType(obj.Type()) {
				continue
			}
			// Another slot of the same statement may read obj (rare but
			// possible via a function call argument); treat as a read.
			for j := i + 1; j < len(list); j++ {
				next := list[j]
				if !mentionsObject(pass.Info, next, obj) {
					continue
				}
				if pureReassign(pass.Info, next, obj) {
					pass.Reportf(id.Pos(), "error assigned to %s is overwritten before it is consulted", id.Name)
				}
				break
			}
		}
	}
}

// assignTarget resolves the object an assignment's LHS ident denotes,
// whether the statement defines it or reuses it.
func assignTarget(info *types.Info, id *ast.Ident) types.Object {
	if obj := info.Defs[id]; obj != nil {
		return obj
	}
	return info.Uses[id]
}

// mentionsObject reports whether the statement references obj at all,
// as a definition or a use.
func mentionsObject(info *types.Info, n ast.Node, obj types.Object) bool {
	found := false
	ast.Inspect(n, func(c ast.Node) bool {
		if id, ok := c.(*ast.Ident); ok {
			if info.Uses[id] == obj || info.Defs[id] == obj {
				found = true
			}
		}
		return !found
	})
	return found
}

// pureReassign reports whether the statement assigns to obj without also
// reading it: every mention of obj is an assignment LHS ident.
func pureReassign(info *types.Info, n ast.Node, obj types.Object) bool {
	as, ok := n.(*ast.AssignStmt)
	if !ok {
		return false
	}
	total, lhs := 0, 0
	ast.Inspect(n, func(c ast.Node) bool {
		if id, ok := c.(*ast.Ident); ok && (info.Uses[id] == obj || info.Defs[id] == obj) {
			total++
		}
		return true
	})
	for _, l := range as.Lhs {
		if id, ok := ast.Unparen(l).(*ast.Ident); ok && (info.Uses[id] == obj || info.Defs[id] == obj) {
			lhs++
		}
	}
	return lhs > 0 && total == lhs
}

// errSinkSummary records, per function, the indices of error-typed
// parameters the body never consults.
type errSinkSummary struct {
	sinks map[*flow.Node][]int
}

// errorSinks computes (memoized on the graph) which module functions ignore
// an error-typed parameter. Methods whose name matches a method of any
// module interface are skipped: their signature is contractual, an unused
// parameter there is the interface's business, not the caller's.
func errorSinks(g *flow.Graph) *errSinkSummary {
	return g.Memo("errorflow", func() any {
		ifaceMethods := make(map[string]bool)
		for _, u := range g.Units {
			scope := u.Pkg.Scope()
			for _, name := range scope.Names() {
				tn, ok := scope.Lookup(name).(*types.TypeName)
				if !ok {
					continue
				}
				iface, ok := tn.Type().Underlying().(*types.Interface)
				if !ok {
					continue
				}
				for i := 0; i < iface.NumMethods(); i++ {
					ifaceMethods[iface.Method(i).Name()] = true
				}
			}
		}
		s := &errSinkSummary{sinks: make(map[*flow.Node][]int)}
		for _, n := range g.Nodes() {
			sig := n.Signature()
			if sig == nil || n.Body == nil {
				continue
			}
			if fn := n.Func; fn != nil && sig.Recv() != nil && ifaceMethods[fn.Name()] {
				continue
			}
			for i := 0; i < sig.Params().Len(); i++ {
				p := sig.Params().At(i)
				if !isErrorType(p.Type()) {
					continue
				}
				if p.Name() != "_" && p.Name() != "" && usesObject(n.Unit.Info, n.Body, p) {
					continue
				}
				s.sinks[n] = append(s.sinks[n], i)
			}
		}
		return s
	}).(*errSinkSummary)
}

// checkErrorSinkCalls flags call sites that pass a non-nil error expression
// into a parameter the callee provably ignores.
func checkErrorSinkCalls(pass *Pass, file *ast.File, sinks *errSinkSummary) {
	if len(sinks.sinks) == 0 {
		return
	}
	ast.Inspect(file, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		for _, callee := range pass.Flow.Callees(pass.Unit, call) {
			idxs := sinks.sinks[callee]
			if len(idxs) == 0 {
				continue
			}
			sig := callee.Signature()
			for _, i := range idxs {
				argi := i
				if sig.Recv() != nil {
					// Method expressions take the receiver as the first
					// argument, shifting the parameters right by one.
					if se, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
						if sel, selOK := pass.Unit.Info.Selections[se]; selOK && sel.Kind() == types.MethodExpr {
							argi = i + 1
						}
					}
				}
				if argi >= len(call.Args) || sig.Variadic() && argi >= sig.Params().Len()-1 {
					continue
				}
				arg := call.Args[argi]
				if tv, ok := pass.Info.Types[arg]; ok && tv.IsNil() {
					continue
				}
				if !isErrorType(pass.Info.TypeOf(arg)) {
					continue
				}
				pass.Reportf(arg.Pos(), "error passed to %s, which never consults that parameter: the value is silently dropped", callee.String())
			}
		}
		return true
	})
}
