package lint

import (
	"path/filepath"
	"regexp"
	"sync"
	"testing"
)

// The fixture harness mirrors x/tools' analysistest: fixture packages
// under testdata/<analyzer>/ carry "// want `regexp`" comments on the
// lines where the analyzer must report, and the test fails on any
// unmatched expectation or unexpected diagnostic. Fixtures import real
// module packages (interval, mr) through the same loader ijlint uses, so
// they type-check against the true engine API and break loudly if it
// drifts.

var (
	loaderOnce sync.Once
	loaderVal  *Loader
	loaderErr  error
)

// fixtureLoader shares one Loader across all tests: the expensive part of
// a load is type-checking the standard library through the source
// importer, and the shared cache makes that a one-time cost.
func fixtureLoader(t *testing.T) *Loader {
	t.Helper()
	loaderOnce.Do(func() { loaderVal, loaderErr = NewLoader(".") })
	if loaderErr != nil {
		t.Fatalf("NewLoader: %v", loaderErr)
	}
	return loaderVal
}

var wantRE = regexp.MustCompile("// want `([^`]+)`")

type want struct {
	file    string
	line    int
	re      *regexp.Regexp
	matched bool
}

// collectWants parses the fixture package's want comments.
func collectWants(t *testing.T, pkg *Package) []*want {
	t.Helper()
	var wants []*want
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := wantRE.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				re, err := regexp.Compile(m[1])
				if err != nil {
					t.Fatalf("bad want pattern %q: %v", m[1], err)
				}
				pos := pkg.Fset.Position(c.Pos())
				wants = append(wants, &want{file: pos.Filename, line: pos.Line, re: re})
			}
		}
	}
	return wants
}

// runFixture loads testdata/<analyzer> under importPath, runs just that
// analyzer, and reconciles the diagnostics against the want comments.
func runFixture(t *testing.T, analyzer, importPath string) {
	t.Helper()
	a := ByName(analyzer)
	if a == nil {
		t.Fatalf("no analyzer named %q", analyzer)
	}
	pkg, err := fixtureLoader(t).LoadDir(filepath.Join("testdata", analyzer), importPath)
	if err != nil {
		t.Fatalf("loading fixture: %v", err)
	}
	wants := collectWants(t, pkg)
	if len(wants) == 0 {
		t.Fatalf("fixture %s has no want comments", analyzer)
	}
	diags := RunAnalyzers(pkg, []*Analyzer{a})
	for _, d := range diags {
		found := false
		for _, w := range wants {
			if !w.matched && w.file == d.Pos.Filename && w.line == d.Pos.Line && w.re.MatchString(d.Message) {
				w.matched = true
				found = true
				break
			}
		}
		if !found {
			t.Errorf("unexpected diagnostic: %s", d)
		}
	}
	for _, w := range wants {
		if !w.matched {
			t.Errorf("%s:%d: no diagnostic matched want `%s`", w.file, w.line, w.re)
		}
	}
}
